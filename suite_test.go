// Suite-level integration test: the full Fig. 6 experiment across all 25
// workloads. Skipped under -short; the per-workload tests in internal/sim
// cover the mechanics quickly.
package ptguard

import (
	"testing"

	"ptguard/internal/sim"
	"ptguard/internal/workload"
)

func TestFig6FullSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full 25-workload sweep; run without -short")
	}
	const (
		warmup = 120_000
		instr  = 240_000
		seed   = 42
	)
	modes := []sim.Mode{sim.PTGuard, sim.PTGuardOptimized}
	cmps := make([]sim.Comparison, 0, 25)
	for _, prof := range workload.Profiles() {
		cmp, err := sim.Compare(prof, warmup, instr, seed, 10, modes)
		if err != nil {
			t.Fatalf("%s: %v", prof.Name, err)
		}
		cmps = append(cmps, cmp)
		// Invariants per workload: protection never speeds things up
		// beyond noise, never blows past the paper's envelope, and the
		// optimized design is never slower than the base design.
		base := cmp.SlowdownPct[sim.PTGuard]
		opt := cmp.SlowdownPct[sim.PTGuardOptimized]
		if base < -0.2 || base > 6 {
			t.Errorf("%s: PT-Guard slowdown %.2f%% outside [-0.2, 6]", prof.Name, base)
		}
		if opt > base+0.2 {
			t.Errorf("%s: optimized (%.2f%%) slower than base (%.2f%%)", prof.Name, opt, base)
		}
		if cmp.Results[sim.PTGuard].CheckFails != 0 {
			t.Errorf("%s: spurious integrity failures", prof.Name)
		}
	}
	base, err := sim.Summarize(cmps, sim.PTGuard)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := sim.Summarize(cmps, sim.PTGuardOptimized)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Fig 6: PT-Guard AMEAN %.2f%% (paper 1.3%%), worst %s %.2f%% (paper xalancbmk 3.6%%); optimized AMEAN %.2f%% (paper 0.2%%)",
		base.MeanPct, base.WorstName, base.WorstPct, opt.MeanPct)
	// The headline reproduction bands.
	if base.MeanPct < 0.6 || base.MeanPct > 2.2 {
		t.Errorf("AMEAN slowdown %.2f%% outside the paper's band (~1.3%%)", base.MeanPct)
	}
	if base.WorstName != "xalancbmk" {
		t.Errorf("worst workload = %s, want xalancbmk", base.WorstName)
	}
	if opt.MeanPct > 0.5 {
		t.Errorf("optimized AMEAN %.2f%% above the paper's 0.2%% band", opt.MeanPct)
	}
}
