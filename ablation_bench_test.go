// Ablation benchmarks for the design choices DESIGN.md §5 calls out:
// MAC width (§VII-A), the identifier and MAC-zero optimizations (§V), the
// soft-match budget k (§VI-C), and the individual correction guess
// strategies (§VI-D).
package ptguard

import (
	"testing"

	"ptguard/internal/attack"
	"ptguard/internal/mac"
	"ptguard/internal/sim"
	"ptguard/internal/workload"
)

// BenchmarkAblationMACWidth compares the 96-bit design against the §VII-A
// 64-bit alternative: correction rate at the LPDDR4 fault rate plus the
// analytic security of each width.
func BenchmarkAblationMACWidth(b *testing.B) {
	for _, width := range []int{64, 96} {
		width := width
		b.Run(map[int]string{64: "64bit", 96: "96bit"}[width], func(b *testing.B) {
			var corrected float64
			for i := 0; i < b.N; i++ {
				res, err := attack.RunCorrection(attack.CorrectionConfig{
					FlipProb: 1.0 / 128,
					Lines:    120,
					Seed:     uint64(i) + 1,
					TagBits:  width,
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Miscorrected != 0 {
					b.Fatal("miscorrection")
				}
				corrected = res.CorrectedPct()
			}
			nEff, err := mac.EffectiveMACBits(width, 4, mac.GMaxPaper)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(corrected, "corrected-%")
			b.ReportMetric(nEff, "effective-mac-bits")
		})
	}
}

// BenchmarkAblationOptimizations isolates the §V optimizations: base
// PT-Guard vs the identifier+MAC-zero design on the same workload.
func BenchmarkAblationOptimizations(b *testing.B) {
	prof, err := workload.ProfileByName("mcf")
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []sim.Mode{sim.PTGuard, sim.PTGuardOptimized} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			var slowdown float64
			var macComputes uint64
			for i := 0; i < b.N; i++ {
				cmp, cerr := sim.Compare(prof, 60_000, 120_000, uint64(i), 10, []sim.Mode{mode})
				if cerr != nil {
					b.Fatal(cerr)
				}
				slowdown = cmp.SlowdownPct[mode]
				macComputes = cmp.Results[mode].Guard.ReadMACComputes
			}
			b.ReportMetric(slowdown, "slowdown-%")
			b.ReportMetric(float64(macComputes), "read-mac-computes")
		})
	}
}

// BenchmarkAblationSoftMatchK sweeps the fault-tolerance budget: higher k
// corrects more MAC faults but costs effective security (§VI-E trade-off).
func BenchmarkAblationSoftMatchK(b *testing.B) {
	for _, k := range []int{1, 4, 8} {
		k := k
		b.Run(map[int]string{1: "k1", 4: "k4", 8: "k8"}[k], func(b *testing.B) {
			var corrected float64
			for i := 0; i < b.N; i++ {
				res, err := attack.RunCorrection(attack.CorrectionConfig{
					FlipProb:   1.0 / 128,
					Lines:      120,
					Seed:       uint64(i) + 1,
					SoftMatchK: k,
				})
				if err != nil {
					b.Fatal(err)
				}
				corrected = res.CorrectedPct()
			}
			nEff, err := mac.EffectiveMACBits(96, k, mac.GMaxPaper)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(corrected, "corrected-%")
			b.ReportMetric(nEff, "effective-mac-bits")
		})
	}
}

// BenchmarkAblationGuessStrategies disables one §VI-D strategy at a time to
// measure its contribution to the Fig. 9 correction rate.
func BenchmarkAblationGuessStrategies(b *testing.B) {
	cases := []struct {
		name   string
		mutate func(*attack.CorrectionConfig)
	}{
		{name: "full", mutate: func(*attack.CorrectionConfig) {}},
		{name: "no-flip-and-check", mutate: func(c *attack.CorrectionConfig) { c.DisableFlipAndCheck = true }},
		{name: "no-zero-reset", mutate: func(c *attack.CorrectionConfig) { c.DisableZeroReset = true }},
		{name: "no-flag-vote", mutate: func(c *attack.CorrectionConfig) { c.DisableFlagVote = true }},
		{name: "no-contiguity", mutate: func(c *attack.CorrectionConfig) { c.DisableContiguity = true }},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var corrected float64
			for i := 0; i < b.N; i++ {
				cfg := attack.CorrectionConfig{
					FlipProb: 1.0 / 128,
					Lines:    120,
					Seed:     uint64(i) + 1,
				}
				tc.mutate(&cfg)
				res, err := attack.RunCorrection(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.Miscorrected != 0 {
					b.Fatal("miscorrection")
				}
				corrected = res.CorrectedPct()
			}
			b.ReportMetric(corrected, "corrected-%")
		})
	}
}
