// Package ptguard is a simulation library reproducing PT-Guard
// (Saxena et al., DSN 2023): integrity-protected page tables that defend
// against breakthrough Rowhammer attacks by embedding a 96-bit MAC in the
// unused PFN bits of each PTE cacheline.
//
// The package exposes three layers:
//
//   - Guard: the memory-controller mechanism itself — opportunistic MAC
//     embedding on writes, verification on page-table walks, MAC stripping
//     on reads, collision tracking, the identifier/MAC-zero optimizations
//     (§V) and best-effort correction (§VI). It operates on raw 64-byte
//     line images plus their physical address.
//
//   - Full-system simulation: RunWorkload / CompareWorkload replay the
//     paper's SPEC-2017 and GAP evaluation (§III, Fig. 6/7) on the bundled
//     gem5-like memory-system model.
//
//   - Analysis: the analytic security model of §VI-E (Eqs. 1 and 2) and
//     end-to-end Rowhammer attack demos.
package ptguard

import (
	"errors"
	"fmt"

	"ptguard/internal/attack"
	"ptguard/internal/core"
	"ptguard/internal/mac"
	"ptguard/internal/pte"
	"ptguard/internal/sim"
	"ptguard/internal/workload"
)

// LineBytes is the cacheline size the guard operates on.
const LineBytes = pte.LineBytes

// KeySize is the secret key size in bytes (32 bytes of SRAM, §IV-F).
const KeySize = mac.KeySize

// ErrIntegrityViolation is returned when a page-table walk reads a tampered
// PTE line that correction (if enabled) could not repair; hardware raises
// the PTECheckFailed exception (§IV-F).
var ErrIntegrityViolation = errors.New("ptguard: PTE integrity violation")

// ErrCollisionBufferFull signals the CTB overflowed and the system must
// re-key (§IV-F, §VII-B).
var ErrCollisionBufferFull = core.ErrCTBFull

// Option configures a Guard.
type Option func(*options)

type options struct {
	physAddrBits int
	tagBits      int
	macLatency   int
	ctbEntries   int
	identifier   uint64
	optIdent     bool
	optZero      bool
	correction   bool
	softK        int
	useQARMA64   bool
}

// WithPhysAddrBits sets M, the machine's physical address width (default 40,
// i.e. 1 TB — the largest client configuration, Table IV).
func WithPhysAddrBits(m int) Option { return func(o *options) { o.physAddrBits = m } }

// WithMACWidth sets the MAC width in bits (default 96; §VII-A discusses 64).
func WithMACWidth(bits int) Option { return func(o *options) { o.tagBits = bits } }

// WithMACLatency sets the MAC computation latency in CPU cycles (default 10).
func WithMACLatency(cycles int) Option { return func(o *options) { o.macLatency = cycles } }

// WithQARMA64MAC computes MACs with the lower-latency QARMA-64 cipher; the
// MAC width defaults to 64 bits (§VII-A design point).
func WithQARMA64MAC() Option { return func(o *options) { o.useQARMA64 = true } }

// WithCTBEntries sizes the Collision Tracking Buffer (default 4).
func WithCTBEntries(n int) Option { return func(o *options) { o.ctbEntries = n } }

// WithIdentifier enables the §V-A identifier optimization with the given
// 56-bit random identifier.
func WithIdentifier(id uint64) Option {
	return func(o *options) { o.optIdent, o.identifier = true, id }
}

// WithZeroMAC enables the §V-B precomputed MAC-zero optimization.
func WithZeroMAC() Option { return func(o *options) { o.optZero = true } }

// WithCorrection enables §VI best-effort correction with a soft-match
// budget of k MAC bit-faults (the paper uses 4).
func WithCorrection(k int) Option {
	return func(o *options) { o.correction, o.softK = true, k }
}

// Guard is a PT-Guard instance: the logic the paper adds to the memory
// controller. Not safe for concurrent use.
type Guard struct {
	inner *core.Guard
}

// New builds a Guard with the given 32-byte secret key.
func New(key []byte, opts ...Option) (*Guard, error) {
	o := options{physAddrBits: 40}
	for _, opt := range opts {
		opt(&o)
	}
	format, err := pte.FormatX86(o.physAddrBits)
	if err != nil {
		return nil, err
	}
	cfg := core.Config{
		Format:           format,
		Key:              key,
		TagBits:          o.tagBits,
		UseQARMA64:       o.useQARMA64,
		MACLatencyCycles: o.macLatency,
		CTBEntries:       o.ctbEntries,
		OptIdentifier:    o.optIdent,
		Identifier:       o.identifier,
		OptZeroMAC:       o.optZero,
		EnableCorrection: o.correction,
		SoftMatchK:       o.softK,
	}
	inner, err := core.NewGuard(cfg)
	if err != nil {
		return nil, err
	}
	return &Guard{inner: inner}, nil
}

// WriteInfo describes what happened on the DRAM write path.
type WriteInfo struct {
	// Protected reports the line matched the PTE bit pattern and carries
	// an embedded MAC (and identifier, if enabled).
	Protected bool
	// CollisionTracked reports the line's data collides with its own MAC
	// and was recorded in the CTB.
	CollisionTracked bool
}

// ProtectOnWrite processes a 64-byte line on its way to DRAM (§IV-B): if
// its pattern bits are zero, the MAC is embedded. The returned image is
// what DRAM should store. ErrCollisionBufferFull demands a re-key.
func (g *Guard) ProtectOnWrite(line [LineBytes]byte, addr uint64) ([LineBytes]byte, WriteInfo, error) {
	res, err := g.inner.OnWrite(pte.LineFromBytes(line), addr)
	info := WriteInfo{Protected: res.Protected, CollisionTracked: res.CollisionTracked}
	return res.Line.Bytes(), info, err
}

// WalkInfo describes a verified page-table-walk read.
type WalkInfo struct {
	// Corrected reports the correction engine repaired bit-flips.
	Corrected bool
	// Guesses is the number of correction guesses spent.
	Guesses int
}

// VerifyWalkRead processes a PTE line arriving from DRAM on a page-table
// walk (§IV-C): the MAC is verified and stripped. A tampered line yields
// ErrIntegrityViolation and must not be consumed.
func (g *Guard) VerifyWalkRead(line [LineBytes]byte, addr uint64) ([LineBytes]byte, WalkInfo, error) {
	res := g.inner.OnRead(pte.LineFromBytes(line), addr, true)
	if res.CheckFailed {
		return [LineBytes]byte{}, WalkInfo{Guesses: res.Guesses}, ErrIntegrityViolation
	}
	return res.Line.Bytes(), WalkInfo{Corrected: res.Corrected, Guesses: res.Guesses}, nil
}

// FilterDataRead processes a regular data read (§IV-C/E): if the line
// carries an embedded MAC it is stripped; otherwise the line passes through
// untouched. stripped reports which happened.
func (g *Guard) FilterDataRead(line [LineBytes]byte, addr uint64) (out [LineBytes]byte, stripped bool) {
	res := g.inner.OnRead(pte.LineFromBytes(line), addr, false)
	return res.Line.Bytes(), res.Stripped
}

// ReleaseCollision untracks a colliding line after the OS overwrote it with
// benign data (§VII-B).
func (g *Guard) ReleaseCollision(addr uint64) { g.inner.CTBRelease(addr) }

// SRAMBytes returns the hardware SRAM budget: 52 bytes for the base design,
// 71 with both optimizations (§V-E).
func (g *Guard) SRAMBytes() int { return g.inner.SRAMBytes() }

// MaxCorrectionGuesses returns G_max (372 for x86_64 with M=40, §VI-D).
func (g *Guard) MaxCorrectionGuesses() int { return g.inner.GMax() }

// Counters exposes the guard's activity counters.
func (g *Guard) Counters() core.Counters { return g.inner.Counters() }

// --- Full-system simulation -------------------------------------------------

// Mode selects the protection configuration for simulations.
type Mode = sim.Mode

// Simulation modes.
const (
	// ModeBaseline is the unprotected system.
	ModeBaseline = sim.Baseline
	// ModePTGuard is the base design (§IV).
	ModePTGuard = sim.PTGuard
	// ModePTGuardOptimized adds the §V optimizations.
	ModePTGuardOptimized = sim.PTGuardOptimized
)

// SimResult is one simulated run's measurements.
type SimResult = sim.Result

// WorkloadNames lists the paper's 25 evaluation benchmarks (§III).
func WorkloadNames() []string {
	profiles := workload.Profiles()
	names := make([]string, len(profiles))
	for i, p := range profiles {
		names[i] = p.Name
	}
	return names
}

// RunWorkload simulates `instructions` of the named benchmark after a
// warm-up of warmup instructions under the given mode.
func RunWorkload(name string, mode Mode, warmup, instructions int, seed uint64) (SimResult, error) {
	prof, err := workload.ProfileByName(name)
	if err != nil {
		return SimResult{}, err
	}
	s, err := sim.NewSystem(sim.Config{Mode: mode, Seed: seed}, prof)
	if err != nil {
		return SimResult{}, err
	}
	if warmup > 0 {
		if _, err := s.Run(warmup); err != nil {
			return SimResult{}, err
		}
		s.ResetStats()
	}
	return s.Run(instructions)
}

// CompareWorkload measures the named benchmark's slowdown under the
// requested modes against the unprotected baseline (the Fig. 6/7 unit).
func CompareWorkload(name string, warmup, instructions int, seed uint64, macLatency int, modes ...Mode) (sim.Comparison, error) {
	prof, err := workload.ProfileByName(name)
	if err != nil {
		return sim.Comparison{}, err
	}
	return sim.Compare(prof, warmup, instructions, seed, macLatency, modes)
}

// --- Security analysis -------------------------------------------------------

// EffectiveMACBits returns n_eff for an n-bit MAC tolerating k faults over
// gMax correction guesses (Eq. 1; 96/4/372 → ~66 bits).
func EffectiveMACBits(n, k, gMax int) (float64, error) {
	return mac.EffectiveMACBits(n, k, gMax)
}

// UncorrectableMACProb returns Eq. 2: P(more than k flips in an n-bit MAC)
// at per-bit flip probability p.
func UncorrectableMACProb(n, k int, p float64) (float64, error) {
	return mac.UncorrectableMACProb(n, k, p)
}

// AttackYears estimates the expected attack time against an effective
// nEff-bit MAC at attemptNs nanoseconds per attempt (§IV-G).
func AttackYears(nEff, attemptNs float64) float64 { return mac.AttackYears(nEff, attemptNs) }

// --- Attack demos ------------------------------------------------------------

// AttackOutcome reports an end-to-end exploit attempt.
type AttackOutcome struct {
	// Detected reports PT-Guard caught the tampering.
	Detected bool
	// ExploitSucceeded reports the attacker obtained a tampered
	// translation or permission.
	ExploitSucceeded bool
	// Description explains the outcome.
	Description string
}

// DemoPrivilegeEscalation mounts the Fig. 1 Rowhammer exploit against a
// simulated victim, with or without PT-Guard at the memory controller.
func DemoPrivilegeEscalation(protected bool, seed uint64) (AttackOutcome, error) {
	w, err := attack.NewWorld(protected, false, seed)
	if err != nil {
		return AttackOutcome{}, err
	}
	out, err := w.PrivilegeEscalation(attack.VictimVBase)
	if err != nil {
		return AttackOutcome{}, err
	}
	return AttackOutcome(out), nil
}

// DemoMetadataAttack flips a PTE metadata bit (e.g. user/supervisor) on a
// victim mapping and reports whether the tampered permission was consumed.
func DemoMetadataAttack(protected bool, bit int, seed uint64) (AttackOutcome, error) {
	if bit < 0 || bit > 63 {
		return AttackOutcome{}, fmt.Errorf("ptguard: bit %d outside [0, 63]", bit)
	}
	w, err := attack.NewWorld(protected, false, seed)
	if err != nil {
		return AttackOutcome{}, err
	}
	out, err := w.MetadataAttack(attack.VictimVBase, bit)
	if err != nil {
		return AttackOutcome{}, err
	}
	return AttackOutcome(out), nil
}
