module ptguard

go 1.22
