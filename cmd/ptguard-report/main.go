// Command ptguard-report prints the paper's static tables: the x86_64 and
// ARMv8 PTE layouts (Tables I, II), the baseline system configuration
// (Table III), the MAC-protected bit map (Table IV), and the SRAM/storage
// budget (§V-E).
package main

import (
	"flag"
	"fmt"
	"os"

	"ptguard/internal/core"
	"ptguard/internal/mac"
	"ptguard/internal/pte"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-report:", err)
		os.Exit(1)
	}
}

func run() error {
	which := flag.String("table", "all", "table to print: pte, armv8, config, protected, storage, all")
	flag.Parse()

	printers := map[string]func() error{
		"pte":       tableI,
		"armv8":     tableII,
		"config":    tableIII,
		"protected": tableIV,
		"storage":   storage,
	}
	if *which == "all" {
		for _, name := range []string{"pte", "armv8", "config", "protected", "storage"} {
			if err := printers[name](); err != nil {
				return err
			}
			fmt.Println()
		}
		return nil
	}
	p, ok := printers[*which]
	if !ok {
		return fmt.Errorf("unknown table %q", *which)
	}
	return p()
}

func tableI() error {
	t := report.New("Table I — x86_64 page table entry", "bit(s)", "purpose")
	for _, row := range [][2]string{
		{"0", "Present"}, {"1", "Writable"}, {"2", "User Accessible"},
		{"3", "Write Through"}, {"4", "Cache Disable"}, {"5", "Accessed"},
		{"6", "Dirty"}, {"7", "2 MB Page"}, {"8", "Global"},
		{"11:9", "Usable by OS"}, {"51:12", "PFN"}, {"58:52", "Ignored"},
		{"62:59", "Memory Protection Keys"}, {"63", "No Execute"},
	} {
		t.AddRow(row[0], row[1])
	}
	return t.Render(os.Stdout)
}

func tableII() error {
	t := report.New("Table II — ARMv8 page table entry", "bit(s)", "purpose")
	for _, row := range [][2]string{
		{"0", "Valid"}, {"1", "Block (HP)"}, {"5:2", "Memory Attributes"},
		{"7:6", "Access Permissions"}, {"9:8", "PFN[39:38]"}, {"10", "Accessed"},
		{"11", "Caching"}, {"49:12", "PFN[37:0]"}, {"50", "Reserved"},
		{"51", "Dirty"}, {"52", "Contiguous"}, {"54:53", "Execute-Never"},
		{"58:55", "Ignored"}, {"62:59", "Hardware Attributes"}, {"63", "Reserved"},
	} {
		t.AddRow(row[0], row[1])
	}
	return t.Render(os.Stdout)
}

func tableIII() error {
	t := report.New("Table III — baseline system configuration", "component", "setting")
	for _, row := range [][2]string{
		{"Core", "In-order, 3 GHz, x86_64 ISA"},
		{"TLB", "64 entry, fully associative"},
		{"MMU cache", "8 KB, 4-way"},
		{"L1-I/D cache", "32 KB, 8-way"},
		{"L2 / L3 cache", "256 KB / 2 MB, 16-way"},
		{"DRAM", "4 GB DDR4"},
	} {
		t.AddRow(row[0], row[1])
	}
	return t.Render(os.Stdout)
}

func tableIV() error {
	f, err := pte.FormatX86(40)
	if err != nil {
		return err
	}
	t := report.New("Table IV — bits protected by the MAC (M = 40)", "bits", "description", "protected")
	for _, row := range [][3]string{
		{"8:0", "Flags", "yes (except accessed bit)"},
		{"11:9", "Programmable", "yes"},
		{"39:12", "PFN", "yes"},
		{"51:40", "MAC (1/8th portion)", "-"},
		{"58:52", "Identifier / ignored", "-"},
		{"63:59", "Prot. Keys / NX flag", "yes"},
	} {
		t.AddRow(row[0], row[1], row[2])
	}
	if err := t.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("derived: %d protected bits/PTE, %d-bit MAC/line, %d-bit identifier/line\n",
		f.ProtectedBitsPerPTE(), f.MACBitsPerLine(), f.IdentifierBitsPerLine())
	return nil
}

func storage() error {
	format, err := pte.FormatX86(40)
	if err != nil {
		return err
	}
	key := make([]byte, mac.KeySize)
	base, err := core.NewGuard(core.Config{Format: format, Key: key})
	if err != nil {
		return err
	}
	opt, err := core.NewGuard(core.Config{
		Format: format, Key: key,
		OptIdentifier: true, Identifier: 1, OptZeroMAC: true,
	})
	if err != nil {
		return err
	}
	t := report.New("§V-E — storage budget", "design", "SRAM bytes", "DRAM overhead")
	t.AddRow("PT-Guard", report.I(base.SRAMBytes()), "0")
	t.AddRow("Optimized PT-Guard", report.I(opt.SRAMBytes()), "0")
	t.AddRow("conventional MAC region (§II-F)", "-", "12.5% of memory")
	return t.Render(os.Stdout)
}
