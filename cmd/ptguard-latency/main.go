// Command ptguard-latency regenerates Fig. 7: average and worst-case
// slowdown of PT-Guard and Optimized PT-Guard as the MAC computation
// latency sweeps from 5 to 20 cycles.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ptguard/internal/report"
	"ptguard/internal/sim"
	"ptguard/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-latency:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		warmup    = flag.Int("warmup", 150_000, "warm-up instructions per run")
		instr     = flag.Int("instructions", 300_000, "measured instructions per run")
		seed      = flag.Uint64("seed", 42, "random seed")
		latencies = flag.String("latencies", "5,10,15,20", "comma-separated MAC latencies (cycles)")
		csv       = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut   = flag.Bool("json", false, "emit JSON instead of a table")
	)
	flag.Parse()

	lats, err := parseInts(*latencies)
	if err != nil {
		return err
	}
	modes := []sim.Mode{sim.PTGuard, sim.PTGuardOptimized}
	tbl := report.New("Fig. 7 — slowdown vs MAC computation latency",
		"MAC latency", "ptguard avg", "ptguard worst", "optimized avg", "optimized worst")

	for _, lat := range lats {
		cmps := make([]sim.Comparison, 0, 25)
		for _, prof := range workload.Profiles() {
			cmp, cerr := sim.Compare(prof, *warmup, *instr, *seed, lat, modes)
			if cerr != nil {
				return cerr
			}
			cmps = append(cmps, cmp)
			fmt.Fprintf(os.Stderr, ".")
		}
		base, serr := sim.Summarize(cmps, sim.PTGuard)
		if serr != nil {
			return serr
		}
		opt, serr := sim.Summarize(cmps, sim.PTGuardOptimized)
		if serr != nil {
			return serr
		}
		tbl.AddRow(
			fmt.Sprintf("%d cycles", lat),
			report.Pct(base.MeanPct), report.Pct(base.WorstPct),
			report.Pct(opt.MeanPct), report.Pct(opt.WorstPct),
		)
	}
	fmt.Fprintln(os.Stderr)

	return report.Emit(os.Stdout, tbl, report.Format(*csv, *jsonOut))
}

func parseInts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("invalid latency %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}
