// Command ptguard-ablation runs the design-choice ablations of DESIGN.md §5:
// the contribution of each §VI-D correction guess strategy, the soft-match
// budget k trade-off, and the 96-bit vs 64-bit MAC design point (§VII-A).
// Configurations fan out over the internal/harness worker pool.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ptguard/internal/harness"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-ablation:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		lines   = flag.Int("lines", 400, "faulty lines per configuration")
		seed    = flag.Uint64("seed", 42, "campaign seed (per-job seeds derive from it)")
		prob    = flag.Float64("p", 1.0/128, "per-bit flip probability")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonOut = flag.Bool("json", false, "emit JSON instead of tables")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	spec := harness.AblationSpec{Lines: *lines, FlipProb: *prob}
	jobs, err := spec.Jobs(*seed)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := harness.Run(ctx, jobs, harness.Options{
		Workers:  *workers,
		Progress: os.Stderr,
	})
	if err != nil {
		return err
	}
	results, err := rep.Results()
	if err != nil {
		return err
	}
	tables, err := harness.AblationTables(results, spec)
	if err != nil {
		return err
	}
	return report.EmitAll(os.Stdout, tables, report.Format(*csv, *jsonOut))
}
