// Command ptguard-ablation runs the design-choice ablations of DESIGN.md §5:
// the contribution of each §VI-D correction guess strategy, the soft-match
// budget k trade-off, and the 96-bit vs 64-bit MAC design point (§VII-A).
package main

import (
	"flag"
	"fmt"
	"os"

	"ptguard/internal/attack"
	"ptguard/internal/mac"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-ablation:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		lines = flag.Int("lines", 400, "faulty lines per configuration")
		seed  = flag.Uint64("seed", 42, "random seed")
		prob  = flag.Float64("p", 1.0/128, "per-bit flip probability")
		csv   = flag.Bool("csv", false, "emit CSV instead of tables")
	)
	flag.Parse()

	render := func(t *report.Table) error {
		if *csv {
			return t.RenderCSV(os.Stdout)
		}
		if err := t.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		return nil
	}

	base := func() attack.CorrectionConfig {
		return attack.CorrectionConfig{FlipProb: *prob, Lines: *lines, Seed: *seed}
	}

	// 1. Guess-strategy contributions (§VI-D).
	steps := report.New(
		fmt.Sprintf("Correction guess strategies (p=%.5f, %d lines)", *prob, *lines),
		"configuration", "corrected %", "coverage %")
	for _, tc := range []struct {
		name   string
		mutate func(*attack.CorrectionConfig)
	}{
		{name: "full §VI-D algorithm", mutate: func(*attack.CorrectionConfig) {}},
		{name: "without flip-and-check", mutate: func(c *attack.CorrectionConfig) { c.DisableFlipAndCheck = true }},
		{name: "without zero-PTE reset", mutate: func(c *attack.CorrectionConfig) { c.DisableZeroReset = true }},
		{name: "without flag majority vote", mutate: func(c *attack.CorrectionConfig) { c.DisableFlagVote = true }},
		{name: "without PFN contiguity", mutate: func(c *attack.CorrectionConfig) { c.DisableContiguity = true }},
	} {
		cfg := base()
		tc.mutate(&cfg)
		res, err := attack.RunCorrection(cfg)
		if err != nil {
			return err
		}
		steps.AddRow(tc.name, report.Pct(res.CorrectedPct()), report.Pct(res.CoveragePct()))
		fmt.Fprintf(os.Stderr, ".")
	}
	if err := render(steps); err != nil {
		return err
	}

	// 2. Soft-match budget k: correction vs security (§VI-C/E).
	kTbl := report.New("Soft-match budget k trade-off",
		"k", "corrected %", "effective MAC bits", "attack years")
	for _, k := range []int{1, 2, 4, 6, 8} {
		cfg := base()
		cfg.SoftMatchK = k
		res, err := attack.RunCorrection(cfg)
		if err != nil {
			return err
		}
		nEff, err := mac.EffectiveMACBits(96, k, mac.GMaxPaper)
		if err != nil {
			return err
		}
		kTbl.AddRow(report.I(k), report.Pct(res.CorrectedPct()),
			report.F(nEff, 1), fmt.Sprintf("%.3g", mac.AttackYears(nEff, 50)))
		fmt.Fprintf(os.Stderr, ".")
	}
	if err := render(kTbl); err != nil {
		return err
	}

	// 3. MAC width (§VII-A).
	wTbl := report.New("MAC width design point (§VII-A)",
		"width", "corrected %", "effective MAC bits (k=4)")
	for _, width := range []int{64, 80, 96} {
		cfg := base()
		cfg.TagBits = width
		res, err := attack.RunCorrection(cfg)
		if err != nil {
			return err
		}
		nEff, err := mac.EffectiveMACBits(width, 4, mac.GMaxPaper)
		if err != nil {
			return err
		}
		wTbl.AddRow(fmt.Sprintf("%d-bit", width), report.Pct(res.CorrectedPct()), report.F(nEff, 1))
		fmt.Fprintf(os.Stderr, ".")
	}
	fmt.Fprintln(os.Stderr)
	return render(wTbl)
}
