// Command ptguard-faults runs the fault-model taxonomy campaign: every flip
// model (uniform, exact-N-bit, burst, DQ-pin, polarity, row-severity,
// targeted) crossed with the detection-only and correction-enabled Guard,
// fanned out over the internal/harness worker pool. Every injected flip is
// recorded by a ground-truth oracle, and every Guard verdict is classified
// into a confusion matrix: detected, corrected, miscorrected, or silent
// corruption.
//
// The campaign is deterministic in its seed, and -journal checkpoints
// completed jobs so an interrupted run resumes where it left off.
//
// Example:
//
//	ptguard-faults -lines 2000 -models 1bit,2bit,3bit -modes correct
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptguard/internal/dist"
	"ptguard/internal/fault"
	"ptguard/internal/harness"
	"ptguard/internal/obs"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-faults:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Uint64("seed", 42, "campaign seed (per-job seeds derive from it)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		journal = flag.String("journal", "", "JSONL checkpoint path; resuming with the same path skips completed jobs")
		format  = flag.String("format", "table", "output format: table, csv or json")
		timeout = flag.Duration("timeout", 10*time.Minute, "per-job wall-clock timeout (0 = none)")
		retries = flag.Int("retries", 1, "re-attempts per failed or panicked job")
		quiet   = flag.Bool("quiet", false, "suppress the stderr progress reporter")

		models = flag.String("models", "", "comma-separated fault.Parse model specs (empty = full taxonomy)")
		modes  = flag.String("modes", "detect,correct", "comma-separated Guard modes: detect and/or correct")
		lines  = flag.Int("lines", 400, "faulty PTE cachelines per (model, mode) cell")
		softK  = flag.Int("soft-k", 0, "soft-match fault budget k (0 = paper's 4)")
		tag    = flag.Int("tag-bits", 0, "MAC width in bits (0 = 96; small widths expose miscorrections)")
		list   = flag.Bool("list-models", false, "print the supported model specs and exit")

		// Observability (internal/obs).
		metricsOut = flag.String("metrics-out", "", "write per-campaign time-series snapshots to this path (JSONL, or CSV when it ends in .csv)")
		traceOut   = flag.String("trace-out", "", "write a merged Chrome trace_event JSON to this path (open in Perfetto)")
		snapEvery  = flag.Int("snapshot-every", 0, "trials between snapshots (0 = lines/4 when -metrics-out is set)")
		traceCap   = flag.Int("trace-capacity", 0, "per-campaign trace ring capacity (0 = default 65536)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address during the campaign")
	)
	distFlags := dist.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		for _, s := range fault.Specs() {
			fmt.Println(s)
		}
		return nil
	}

	spec := harness.FaultSpec{
		Models:     splitModels(*models),
		Modes:      splitCSV(*modes),
		Lines:      *lines,
		SoftMatchK: *softK,
		TagBits:    *tag,
	}
	if *metricsOut != "" || *traceOut != "" {
		every := *snapEvery
		if every == 0 {
			every = *lines / 4
		}
		spec.Obs = &harness.ObsSpec{
			SnapshotEvery: every,
			TraceCapacity: *traceCap,
			IncludeTrace:  *traceOut != "",
		}
	}

	opts := harness.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		Retries:     *retries,
		JournalPath: *journal,
		Fingerprint: harness.Fingerprint("faults", *seed, spec),
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	if *debugAddr != "" {
		live := &harness.LiveStatus{}
		opts.LiveStatus = live
		srv, derr := obs.StartDebugServer(*debugAddr)
		if derr != nil {
			return derr
		}
		defer srv.Close()
		obs.PublishFunc("ptguard.campaign", func() any { return live.Snapshot() })
		fmt.Fprintf(os.Stderr, "ptguard-faults: debug endpoint at http://%s/debug/vars\n", srv.Addr())
	}

	// SIGINT/SIGTERM cancel the campaign; the journal keeps what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	jobs, err := spec.Jobs(*seed)
	if err != nil {
		return err
	}
	co, err := distFlags.Start(dist.Campaign{Kind: dist.KindFaults, Spec: spec, Seed: *seed}, &opts, nil)
	if err != nil {
		return err
	}
	if co != nil {
		dist.Publish(co)
		defer co.Close()
	}
	rep, err := harness.Run(ctx, jobs, opts)
	if err != nil {
		return err
	}
	results, err := rep.Results()
	if err != nil {
		return err
	}
	tables, err := harness.FaultTables(results, spec)
	if err != nil {
		return err
	}
	if err := writeObsOutputs(results, *metricsOut, *traceOut); err != nil {
		return err
	}
	return report.EmitAll(os.Stdout, tables, *format)
}

// writeObsOutputs merges per-campaign observability data into the
// -metrics-out time series and the -trace-out Chrome trace, one labelled
// series/track per (model, mode) campaign.
func writeObsOutputs(results []fault.CampaignResult, metricsOut, traceOut string) error {
	if metricsOut == "" && traceOut == "" {
		return nil
	}
	var points []obs.SeriesPoint
	var tracks []obs.TraceTrack
	for _, r := range results {
		if r.Obs == nil {
			continue
		}
		label := r.Model + "/" + r.Mode
		for _, p := range r.Obs.Series {
			p.Job = label
			points = append(points, p)
		}
		if len(r.Obs.Trace) > 0 {
			tracks = append(tracks, obs.TraceTrack{Name: label, Events: r.Obs.Trace})
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(metricsOut, ".csv") {
			err = obs.WriteSeriesCSV(f, points)
		} else {
			err = obs.WriteSeriesJSONL(f, points)
		}
		if err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, tracks); err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// splitModels splits a comma-separated list of model specs. Spec parameters
// themselves use commas (burst:p=0.9,run=4), so a part that is a bare
// key=value — an '=' with no ':' before it — continues the previous spec
// rather than starting a new one.
func splitModels(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part == "" {
			continue
		}
		eq, colon := strings.IndexByte(part, '='), strings.IndexByte(part, ':')
		if eq >= 0 && (colon < 0 || eq < colon) && len(out) > 0 {
			out[len(out)-1] += "," + part
			continue
		}
		out = append(out, part)
	}
	return out
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
