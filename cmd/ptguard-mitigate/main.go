// Command ptguard-mitigate runs the mitigation head-to-head campaign:
// every in-DRAM mitigation plugin (none, trr, softtrr, graphene, para,
// oracle) crossed with every TRR-aware attack pattern (classic,
// half-double, many-sided) with PT-Guard off and on, fanned out over the
// internal/harness worker pool. Each cell plays the pattern against the
// victim's page-table row through the mitigation and classifies every
// victim-page walk as detected, faulted, silently corrupted, or intact —
// the matrix the paper's §II-B argument rests on: dedicated trackers fall
// to tracker-aware patterns one by one, while PT-Guard's integrity check
// is pattern-agnostic.
//
// The campaign is deterministic in its seed at any worker count, and
// -journal checkpoints completed cells so an interrupted run resumes.
//
// Example:
//
//	ptguard-mitigate -mitigations trr,graphene -patterns classic,half-double -trials 5
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ptguard/internal/dist"
	"ptguard/internal/dram"
	"ptguard/internal/harness"
	"ptguard/internal/mitigate"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-mitigate:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Uint64("seed", 42, "campaign seed (per-cell seeds derive from it)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		journal = flag.String("journal", "", "JSONL checkpoint path; resuming with the same path skips completed cells")
		format  = flag.String("format", "table", "output format: table, csv or json")
		timeout = flag.Duration("timeout", 10*time.Minute, "per-job wall-clock timeout (0 = none)")
		retries = flag.Int("retries", 1, "re-attempts per failed or panicked job")
		quiet   = flag.Bool("quiet", false, "suppress the stderr progress reporter")

		mitigations = flag.String("mitigations", "", "comma-separated mitigation plugins (empty = whole registry)")
		patterns    = flag.String("patterns", "", "comma-separated attack patterns (empty = all)")
		guard       = flag.String("guard", "off,on", "comma-separated PT-Guard modes: off and/or on")
		trials      = flag.Int("trials", 3, "trials per matrix cell")
		correction  = flag.Bool("correction", false, "enable the §VI correction engine on protected trials")
		threshold   = flag.Int("threshold", 0, "scaled charge-loss flip threshold (0 = 64)")
		sampler     = flag.Int("sampler", 0, "tracker detection threshold (0 = threshold/2)")
		tableSize   = flag.Int("table-size", 0, "tracker table entries (0 = per-tracker default)")
		acts        = flag.Int("acts", 0, "aggressor activations per trial (0 = 40000)")
		windowActs  = flag.Int("window-acts", 0, "auto-refresh period in activations (0 = 8192, negative disables)")
		budget      = flag.Int("budget", 0, "mitigative refreshes allowed per scaled tREFI (0 = unlimited)")
		list        = flag.Bool("list", false, "print the registered mitigations and patterns and exit")
	)
	distFlags := dist.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println("mitigations:", strings.Join(mitigate.Names(), " "))
		fmt.Println("patterns:   ", strings.Join(dram.PatternNames(), " "))
		return nil
	}

	spec := harness.MitigateSpec{
		Mitigations:     splitCSV(*mitigations),
		Patterns:        splitCSV(*patterns),
		Guard:           splitCSV(*guard),
		Trials:          *trials,
		Correction:      *correction,
		Threshold:       *threshold,
		Sampler:         *sampler,
		TableSize:       *tableSize,
		Acts:            *acts,
		WindowActs:      *windowActs,
		BudgetPerWindow: *budget,
	}

	opts := harness.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		Retries:     *retries,
		JournalPath: *journal,
		Fingerprint: harness.Fingerprint("mitigate", *seed, spec),
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	// SIGINT/SIGTERM cancel the campaign; the journal keeps what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	jobs, err := spec.Jobs(*seed)
	if err != nil {
		return err
	}
	co, err := distFlags.Start(dist.Campaign{Kind: dist.KindMitigate, Spec: spec, Seed: *seed}, &opts, nil)
	if err != nil {
		return err
	}
	if co != nil {
		dist.Publish(co)
		defer co.Close()
	}
	rep, err := harness.Run(ctx, jobs, opts)
	if err != nil {
		return err
	}
	results, err := rep.Results()
	if err != nil {
		return err
	}
	tables, err := harness.MitigateTables(results, spec)
	if err != nil {
		return err
	}
	return report.EmitAll(os.Stdout, tables, *format)
}

func splitCSV(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
