// Command ptguard-multicore reproduces §VII-C: PT-Guard's slowdown on a
// 4-core system with out-of-order cores and a contended memory channel,
// over SAME mixes (four copies of one benchmark) and MIX mixes (four random
// benchmarks). Mixes fan out over the internal/harness worker pool.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ptguard/internal/harness"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-multicore:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		warmup  = flag.Int("warmup", 100_000, "warm-up instructions per core")
		instr   = flag.Int("instructions", 200_000, "measured instructions per core")
		seed    = flag.Uint64("seed", 42, "campaign seed (mix membership and per-job seeds derive from it)")
		sameN   = flag.Int("same", 18, "number of SAME mixes (paper: 18)")
		mixN    = flag.Int("mix", 16, "number of MIX mixes (paper: 16)")
		macLat  = flag.Int("mac-latency", 10, "MAC latency in cycles")
		model   = flag.String("model", "shared", "contention model: shared (one DRAM device, real row-buffer interference) or analytic (constant queueing delay)")
		csvFlag = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut = flag.Bool("json", false, "emit JSON instead of a table")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	spec := harness.MulticoreSpec{
		SameMixes:    *sameN,
		MixMixes:     *mixN,
		Warmup:       *warmup,
		Instructions: *instr,
		MACLatency:   *macLat,
		Model:        *model,
	}
	jobs, err := spec.Jobs(*seed)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := harness.Run(ctx, jobs, harness.Options{
		Workers:  *workers,
		Progress: os.Stderr,
	})
	if err != nil {
		return err
	}
	results, err := rep.Results()
	if err != nil {
		return err
	}
	tbl, err := harness.MulticoreTable(results)
	if err != nil {
		return err
	}
	return report.Emit(os.Stdout, tbl, report.Format(*csvFlag, *jsonOut))
}
