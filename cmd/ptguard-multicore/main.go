// Command ptguard-multicore reproduces §VII-C: PT-Guard's slowdown on a
// 4-core system with out-of-order cores and a contended memory channel,
// over SAME mixes (four copies of one benchmark) and MIX mixes (four random
// benchmarks).
package main

import (
	"flag"
	"fmt"
	"os"

	"ptguard/internal/report"
	"ptguard/internal/sim"
	"ptguard/internal/stats"
	"ptguard/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-multicore:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		warmup  = flag.Int("warmup", 100_000, "warm-up instructions per core")
		instr   = flag.Int("instructions", 200_000, "measured instructions per core")
		seed    = flag.Uint64("seed", 42, "random seed")
		sameN   = flag.Int("same", 18, "number of SAME mixes (paper: 18)")
		mixN    = flag.Int("mix", 16, "number of MIX mixes (paper: 16)")
		macLat  = flag.Int("mac-latency", 10, "MAC latency in cycles")
		model   = flag.String("model", "shared", "contention model: shared (one DRAM device, real row-buffer interference) or analytic (constant queueing delay)")
		csvFlag = flag.Bool("csv", false, "emit CSV instead of a table")
	)
	flag.Parse()

	profiles := workload.Profiles()
	r := stats.NewRNG(*seed)
	var mixes []sim.MulticoreMix

	// SAME mixes: four copies of each of the first -same benchmarks.
	for i := 0; i < *sameN && i < len(profiles); i++ {
		p := profiles[i]
		mixes = append(mixes, sim.MulticoreMix{
			Name:      p.Name + "-SAME",
			Workloads: []workload.Profile{p, p, p, p},
		})
	}
	// MIX mixes: four random distinct benchmarks.
	for i := 0; i < *mixN; i++ {
		perm := r.Perm(len(profiles))
		mixes = append(mixes, sim.MulticoreMix{
			Name: fmt.Sprintf("MIX-%02d", i+1),
			Workloads: []workload.Profile{
				profiles[perm[0]], profiles[perm[1]], profiles[perm[2]], profiles[perm[3]],
			},
		})
	}

	tbl := report.New("§VII-C — 4-core slowdown (O3 cores, contended channel)",
		"mix", "slowdown")
	slowdowns := make([]float64, 0, len(mixes))
	worst, worstName := 0.0, ""
	compare := sim.CompareMulticoreShared
	switch *model {
	case "shared":
	case "analytic":
		compare = sim.CompareMulticore
	default:
		return fmt.Errorf("unknown model %q", *model)
	}
	for _, mix := range mixes {
		res, err := compare(mix, *warmup, *instr, *seed, *macLat)
		if err != nil {
			return err
		}
		slowdowns = append(slowdowns, res.SlowdownPct)
		if res.SlowdownPct > worst {
			worst, worstName = res.SlowdownPct, res.Mix
		}
		tbl.AddRow(res.Mix, report.Pct(res.SlowdownPct))
		fmt.Fprintf(os.Stderr, ".")
	}
	fmt.Fprintln(os.Stderr)
	mean, err := stats.Mean(slowdowns)
	if err != nil {
		return err
	}
	tbl.AddRow("AVERAGE", report.Pct(mean))
	tbl.AddRow("WORST ("+worstName+")", report.Pct(worst))

	if *csvFlag {
		return tbl.RenderCSV(os.Stdout)
	}
	return tbl.Render(os.Stdout)
}
