// ptguard-worker is the execution half of the distributed campaign
// backend: a coordinator (any campaign CLI run with -backend=proc or
// -backend=tcp) hands it a campaign (kind, spec, seed) over a CRC-framed
// JSONL session, and it expands the identical job set locally and
// executes the keys it is dealt.
//
// With no flags it serves exactly one session over stdin/stdout — the
// mode coordinators spawn subprocesses in. With -listen it serves TCP
// sessions instead, one session per connection, so campaigns can shard
// across machines:
//
//	ptguard-worker -listen :9723            # on each worker box
//	ptguard-sweep -backend tcp -connect hostA:9723,hostB:9723 ...
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"ptguard/internal/dist"
)

func main() {
	var (
		listen    = flag.String("listen", "", "serve TCP sessions on this address (host:port) instead of one stdio session")
		listKinds = flag.Bool("list-kinds", false, "print the registered campaign spec kinds and exit")
	)
	flag.Parse()

	if *listKinds {
		for _, k := range dist.Kinds() {
			fmt.Println(k)
		}
		return
	}

	if *listen == "" {
		if err := dist.Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "ptguard-worker: %v\n", err)
			os.Exit(1)
		}
		return
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fmt.Fprintf(os.Stderr, "ptguard-worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "ptguard-worker: listening on %s\n", ln.Addr())
	for {
		conn, err := ln.Accept()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ptguard-worker: accept: %v\n", err)
			os.Exit(1)
		}
		go func() {
			defer conn.Close()
			if err := dist.Serve(conn, conn); err != nil {
				fmt.Fprintf(os.Stderr, "ptguard-worker: session %s: %v\n", conn.RemoteAddr(), err)
			}
		}()
	}
}
