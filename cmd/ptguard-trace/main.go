// Command ptguard-trace runs the trace-driven variant of the Fig. 9
// correction experiment: page-table-walk traces are extracted from the
// full-system simulation (the paper's §VI-F methodology) and the traced PTE
// cachelines receive uniform bit-flips.
package main

import (
	"flag"
	"fmt"
	"os"

	"ptguard/internal/report"
	"ptguard/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		workload = flag.String("workload", "mcf", "benchmark whose walk trace to use")
		instr    = flag.Int("instructions", 300_000, "trace-collection window")
		trials   = flag.Int("trials", 500, "faulty lines per probability")
		seed     = flag.Uint64("seed", 42, "random seed")
		csv      = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut  = flag.Bool("json", false, "emit JSON instead of a table")
	)
	flag.Parse()

	tbl := report.New(
		fmt.Sprintf("Fig. 9 (trace-driven) — %s walk trace, %d instructions", *workload, *instr),
		"p_flip", "trace lines", "erroneous", "corrected %", "coverage %", "miscorrected")
	for _, p := range []struct {
		label string
		v     float64
	}{
		{label: "1/512", v: 1.0 / 512},
		{label: "1/256", v: 1.0 / 256},
		{label: "1/128", v: 1.0 / 128},
	} {
		res, err := sim.RunTraceCorrection(sim.TraceCorrectionConfig{
			Workload:     *workload,
			Instructions: *instr,
			FlipProb:     p.v,
			Trials:       *trials,
			Seed:         *seed,
		})
		if err != nil {
			return err
		}
		tbl.AddRow(p.label, report.I(res.TraceLines), report.I(res.Erroneous),
			report.Pct(res.CorrectedPct()), report.Pct(res.CoveragePct()),
			report.I(res.Miscorrected))
		fmt.Fprintf(os.Stderr, ".")
	}
	fmt.Fprintln(os.Stderr)
	return report.Emit(os.Stdout, tbl, report.Format(*csv, *jsonOut))
}
