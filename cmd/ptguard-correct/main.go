// Command ptguard-correct regenerates Fig. 9: the percentage of faulty PTE
// cachelines the best-effort correction engine repairs at each bit-flip
// probability, alongside the 100%-coverage and zero-miscorrection claims.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"ptguard/internal/attack"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-correct:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		lines   = flag.Int("lines", 1000, "faulty PTE cachelines per probability")
		seed    = flag.Uint64("seed", 42, "random seed")
		probs   = flag.String("probs", "1/512,1/256,1/128", "comma-separated flip probabilities (fractions)")
		softK   = flag.Int("soft-k", 4, "tolerated MAC bit-faults (soft match)")
		csv     = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut = flag.Bool("json", false, "emit JSON instead of a table")
	)
	flag.Parse()

	ps, err := parseProbs(*probs)
	if err != nil {
		return fmt.Errorf("-probs: %w", err)
	}
	tbl := report.New("Fig. 9 — best-effort correction of faulty PTE cachelines",
		"p_flip", "erroneous", "corrected", "detected", "miscorrected", "corrected %", "coverage %", "guesses")
	for _, p := range ps {
		res, rerr := attack.RunCorrection(attack.CorrectionConfig{
			FlipProb:   p.value,
			Lines:      *lines,
			Seed:       *seed,
			SoftMatchK: *softK,
		})
		if rerr != nil {
			return fmt.Errorf("correction sweep at p=%s: %w", p.label, rerr)
		}
		tbl.AddRow(p.label,
			report.I(res.Erroneous), report.I(res.Corrected),
			report.I(res.Detected), report.I(res.Miscorrected),
			report.Pct(res.CorrectedPct()), report.Pct(res.CoveragePct()),
			report.U(res.Guesses))
		fmt.Fprintf(os.Stderr, ".")
	}
	fmt.Fprintln(os.Stderr)
	return report.Emit(os.Stdout, tbl, report.Format(*csv, *jsonOut))
}

type prob struct {
	label string
	value float64
}

func parseProbs(s string) ([]prob, error) {
	parts := strings.Split(s, ",")
	out := make([]prob, 0, len(parts))
	for _, raw := range parts {
		raw = strings.TrimSpace(raw)
		var v float64
		if num, den, ok := strings.Cut(raw, "/"); ok {
			n, err1 := strconv.ParseFloat(num, 64)
			d, err2 := strconv.ParseFloat(den, 64)
			if err1 != nil || err2 != nil || d == 0 {
				return nil, fmt.Errorf("invalid probability %q", raw)
			}
			v = n / d
		} else {
			f, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return nil, fmt.Errorf("invalid probability %q", raw)
			}
			v = f
		}
		if v <= 0 || v >= 1 {
			return nil, fmt.Errorf("probability %q outside (0, 1)", raw)
		}
		out = append(out, prob{label: raw, value: v})
	}
	return out, nil
}
