// Command ptguard-sweep runs the paper's full evaluation campaign — the
// Fig. 6/7 slowdown grid, the §VII-C multicore mixes, the DESIGN.md §5
// ablations, and the Fig. 9 correction sweep — as one declarative spec
// fanned out over the internal/harness worker pool.
//
// The campaign is deterministic in its seed: every job derives its
// simulation seed from (campaign seed, job key), so the aggregated report
// is byte-identical whether it ran on 1 worker or 8. With -journal the
// campaign checkpoints every completed job to a JSONL file; a killed run
// re-invoked with the same journal path skips the finished jobs and picks
// up where it left off.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ptguard/internal/attack"
	"ptguard/internal/dist"
	"ptguard/internal/harness"
	"ptguard/internal/obs"
	"ptguard/internal/report"
	"ptguard/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Uint64("seed", 42, "campaign seed (per-job seeds derive from it)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		journal  = flag.String("journal", "", "JSONL checkpoint path; resuming with the same path skips completed jobs")
		format   = flag.String("format", "table", "output format: table, csv or json")
		sections = flag.String("sections", "slowdown,multicore,ablation,correction",
			"comma-separated campaign sections to run (also available: mitigate)")
		timeout = flag.Duration("timeout", 10*time.Minute, "per-job wall-clock timeout (0 = none)")
		retries = flag.Int("retries", 1, "re-attempts per failed or panicked job")
		quiet   = flag.Bool("quiet", false, "suppress the stderr progress reporter")

		// Fig. 6/7 grid.
		warmup    = flag.Int("warmup", 200_000, "slowdown: warm-up instructions per run")
		instr     = flag.Int("instructions", 400_000, "slowdown: measured instructions per run")
		macLats   = flag.String("mac-latencies", "10", "slowdown: comma-separated MAC latency sweep (Fig. 7)")
		workloads = flag.String("workloads", "", "slowdown: comma-separated benchmark filter (empty = all 25)")

		// §VII-C mixes.
		mcWarmup = flag.Int("mc-warmup", 100_000, "multicore: warm-up instructions per core")
		mcInstr  = flag.Int("mc-instructions", 200_000, "multicore: measured instructions per core")
		sameN    = flag.Int("same", 18, "multicore: SAME mixes (paper: 18)")
		mixN     = flag.Int("mix", 16, "multicore: MIX mixes (paper: 16)")
		mcModel  = flag.String("mc-model", "shared", "multicore: contention model (shared or analytic)")

		// Ablations and Fig. 9.
		ablLines = flag.Int("ablation-lines", 400, "ablation: faulty lines per configuration")
		flipProb = flag.Float64("flip-prob", 1.0/128, "ablation: per-bit flip probability")
		corLines = flag.Int("correction-lines", 400, "correction: faulty lines per probability")

		// Mitigation head-to-head (opt-in via -sections mitigate).
		mitigation = flag.String("mitigation", "", "mitigate: comma-separated mitigation plugins from the internal/mitigate registry (empty = all)")
		mitTrials  = flag.Int("mitigate-trials", 3, "mitigate: trials per matrix cell")
		mitActs    = flag.Int("mitigate-acts", 0, "mitigate: aggressor activations per trial (0 = 40000)")

		// Observability (internal/obs; slowdown section only).
		metricsOut = flag.String("metrics-out", "", "write per-run time-series snapshots to this path (JSONL, or CSV when it ends in .csv)")
		traceOut   = flag.String("trace-out", "", "write a merged Chrome trace_event JSON to this path (open in Perfetto)")
		snapEvery  = flag.Int("snapshot-every", 0, "instructions between snapshots (0 = instructions/4 when -metrics-out is set)")
		traceCap   = flag.Int("trace-capacity", 0, "per-run trace ring capacity (0 = default 65536)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address during the campaign")
	)
	distFlags := dist.AddFlags(flag.CommandLine)
	flag.Parse()

	lats, err := parseInts(*macLats)
	if err != nil {
		return fmt.Errorf("-mac-latencies: %w", err)
	}
	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}

	slowdownSpec := harness.SlowdownSpec{
		Workloads: names, Warmup: *warmup, Instructions: *instr, MACLatencies: lats,
	}
	if *metricsOut != "" || *traceOut != "" {
		every := *snapEvery
		if every == 0 {
			every = *instr / 4
		}
		slowdownSpec.Obs = &harness.ObsSpec{
			SnapshotEvery: every,
			TraceCapacity: *traceCap,
			IncludeTrace:  *traceOut != "",
		}
	}
	multicoreSpec := harness.MulticoreSpec{
		SameMixes: *sameN, MixMixes: *mixN,
		Warmup: *mcWarmup, Instructions: *mcInstr, Model: *mcModel,
	}
	ablationSpec := harness.AblationSpec{Lines: *ablLines, FlipProb: *flipProb}
	correctionSpec := harness.CorrectionSpec{Lines: *corLines}
	mitigateSpec := harness.MitigateSpec{
		Mitigations: splitNames(*mitigation),
		Trials:      *mitTrials,
		Acts:        *mitActs,
	}

	// The fingerprint digests every section's spec (not just the ones
	// -sections selects) because all sections share one journal file, and
	// it deliberately excludes execution knobs — backend, worker count,
	// timeouts — so a journal written locally resumes under -backend=proc
	// at any width (see harness.Fingerprint).
	allSpecs := struct {
		Slowdown   harness.SlowdownSpec
		Multicore  harness.MulticoreSpec
		Ablation   harness.AblationSpec
		Correction harness.CorrectionSpec
		Mitigate   harness.MitigateSpec
	}{slowdownSpec, multicoreSpec, ablationSpec, correctionSpec, mitigateSpec}
	opts := harness.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		Retries:     *retries,
		JournalPath: *journal,
		Fingerprint: harness.Fingerprint("sweep-v2", *seed, allSpecs),
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	if *debugAddr != "" {
		live := &harness.LiveStatus{}
		opts.LiveStatus = live
		srv, derr := obs.StartDebugServer(*debugAddr)
		if derr != nil {
			return derr
		}
		defer srv.Close()
		obs.PublishFunc("ptguard.campaign", func() any { return live.Snapshot() })
		fmt.Fprintf(os.Stderr, "ptguard-sweep: debug endpoint at http://%s/debug/vars\n", srv.Addr())
	}

	// SIGINT/SIGTERM cancel the campaign; the journal keeps what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var slowdownResults []harness.SlowdownResult
	var tables []*report.Table
	for _, section := range strings.Split(*sections, ",") {
		var (
			sectionTables []*report.Table
			serr          error
		)
		switch strings.TrimSpace(section) {
		case "":
			continue
		case "slowdown":
			sectionTables, serr = runSection(ctx, opts, *seed, distFlags,
				dist.KindSlowdown, slowdownSpec,
				slowdownSpec.Jobs,
				func(rs []harness.SlowdownResult) ([]*report.Table, error) {
					slowdownResults = rs
					return harness.SlowdownTables(rs, nil)
				})
		case "multicore":
			sectionTables, serr = runSection(ctx, opts, *seed, distFlags,
				dist.KindMulticore, multicoreSpec,
				multicoreSpec.Jobs,
				func(rs []sim.MulticoreResult) ([]*report.Table, error) {
					tbl, err := harness.MulticoreTable(rs)
					return []*report.Table{tbl}, err
				})
		case "ablation":
			sectionTables, serr = runSection(ctx, opts, *seed, distFlags,
				dist.KindAblation, ablationSpec,
				ablationSpec.Jobs,
				func(rs []harness.AblationResult) ([]*report.Table, error) {
					return harness.AblationTables(rs, ablationSpec)
				})
		case "correction":
			sectionTables, serr = runSection(ctx, opts, *seed, distFlags,
				dist.KindCorrection, correctionSpec,
				correctionSpec.Jobs,
				func(rs []harness.CorrectionPoint) ([]*report.Table, error) {
					tbl, err := harness.CorrectionTable(rs, correctionSpec)
					return []*report.Table{tbl}, err
				})
		case "mitigate":
			sectionTables, serr = runSection(ctx, opts, *seed, distFlags,
				dist.KindMitigate, mitigateSpec,
				mitigateSpec.Jobs,
				func(rs []attack.MitigationTrialResult) ([]*report.Table, error) {
					return harness.MitigateTables(rs, mitigateSpec)
				})
		default:
			return fmt.Errorf("unknown section %q (want slowdown, multicore, ablation, correction or mitigate)", section)
		}
		if serr != nil {
			return fmt.Errorf("section %s: %w", section, serr)
		}
		tables = append(tables, sectionTables...)
	}
	if err := writeObsOutputs(slowdownResults, *metricsOut, *traceOut); err != nil {
		return err
	}
	return report.EmitAll(os.Stdout, tables, *format)
}

// writeObsOutputs merges the per-job observability data of the slowdown
// section into the -metrics-out time series and the -trace-out Chrome trace,
// one labelled series/track per (workload, MAC latency, mode) run.
func writeObsOutputs(results []harness.SlowdownResult, metricsOut, traceOut string) error {
	if metricsOut == "" && traceOut == "" {
		return nil
	}
	var points []obs.SeriesPoint
	var tracks []obs.TraceTrack
	for _, r := range results {
		modes := make([]string, 0, len(r.Obs))
		for m := range r.Obs {
			modes = append(modes, m)
		}
		sort.Strings(modes)
		for _, m := range modes {
			rm := r.Obs[m]
			if rm == nil {
				continue
			}
			label := fmt.Sprintf("%s/mac%d/%s", r.Comparison.Workload, r.MACLatency, m)
			for _, p := range rm.Series {
				p.Job = label
				points = append(points, p)
			}
			if len(rm.Trace) > 0 {
				tracks = append(tracks, obs.TraceTrack{Name: label, Events: rm.Trace})
			}
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(metricsOut, ".csv") {
			err = obs.WriteSeriesCSV(f, points)
		} else {
			err = obs.WriteSeriesJSONL(f, points)
		}
		if err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, tracks); err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// runSection expands one campaign section into jobs, runs them through the
// harness, and aggregates the results into tables. Each section is its own
// distributed campaign: with -backend=proc/tcp a fresh coordinator (and
// worker pool) is started for the section and torn down after it.
func runSection[R any](
	ctx context.Context,
	opts harness.Options,
	seed uint64,
	distFlags *dist.Flags,
	kind string,
	spec any,
	jobsFn func(uint64) ([]harness.Job[R], error),
	aggregate func([]R) ([]*report.Table, error),
) ([]*report.Table, error) {
	jobs, err := jobsFn(seed)
	if err != nil {
		return nil, err
	}
	co, err := distFlags.Start(dist.Campaign{Kind: kind, Spec: spec, Seed: seed}, &opts, nil)
	if err != nil {
		return nil, err
	}
	if co != nil {
		dist.Publish(co)
		defer func() {
			dist.Publish(nil)
			co.Close()
		}()
	}
	rep, err := harness.Run(ctx, jobs, opts)
	if err != nil {
		return nil, err
	}
	results, err := rep.Results()
	if err != nil {
		return nil, err
	}
	return aggregate(results)
}

func splitNames(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
