// Command ptguard-sweep runs the paper's full evaluation campaign — the
// Fig. 6/7 slowdown grid, the §VII-C multicore mixes, the DESIGN.md §5
// ablations, and the Fig. 9 correction sweep — as one declarative spec
// fanned out over the internal/harness worker pool.
//
// The campaign is deterministic in its seed: every job derives its
// simulation seed from (campaign seed, job key), so the aggregated report
// is byte-identical whether it ran on 1 worker or 8. With -journal the
// campaign checkpoints every completed job to a JSONL file; a killed run
// re-invoked with the same journal path skips the finished jobs and picks
// up where it left off.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ptguard/internal/harness"
	"ptguard/internal/report"
	"ptguard/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-sweep:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed     = flag.Uint64("seed", 42, "campaign seed (per-job seeds derive from it)")
		workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		journal  = flag.String("journal", "", "JSONL checkpoint path; resuming with the same path skips completed jobs")
		format   = flag.String("format", "table", "output format: table, csv or json")
		sections = flag.String("sections", "slowdown,multicore,ablation,correction",
			"comma-separated campaign sections to run")
		timeout = flag.Duration("timeout", 10*time.Minute, "per-job wall-clock timeout (0 = none)")
		retries = flag.Int("retries", 1, "re-attempts per failed or panicked job")
		quiet   = flag.Bool("quiet", false, "suppress the stderr progress reporter")

		// Fig. 6/7 grid.
		warmup    = flag.Int("warmup", 200_000, "slowdown: warm-up instructions per run")
		instr     = flag.Int("instructions", 400_000, "slowdown: measured instructions per run")
		macLats   = flag.String("mac-latencies", "10", "slowdown: comma-separated MAC latency sweep (Fig. 7)")
		workloads = flag.String("workloads", "", "slowdown: comma-separated benchmark filter (empty = all 25)")

		// §VII-C mixes.
		mcWarmup = flag.Int("mc-warmup", 100_000, "multicore: warm-up instructions per core")
		mcInstr  = flag.Int("mc-instructions", 200_000, "multicore: measured instructions per core")
		sameN    = flag.Int("same", 18, "multicore: SAME mixes (paper: 18)")
		mixN     = flag.Int("mix", 16, "multicore: MIX mixes (paper: 16)")
		mcModel  = flag.String("mc-model", "shared", "multicore: contention model (shared or analytic)")

		// Ablations and Fig. 9.
		ablLines = flag.Int("ablation-lines", 400, "ablation: faulty lines per configuration")
		flipProb = flag.Float64("flip-prob", 1.0/128, "ablation: per-bit flip probability")
		corLines = flag.Int("correction-lines", 400, "correction: faulty lines per probability")
	)
	flag.Parse()

	lats, err := parseInts(*macLats)
	if err != nil {
		return fmt.Errorf("-mac-latencies: %w", err)
	}
	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}

	slowdownSpec := harness.SlowdownSpec{
		Workloads: names, Warmup: *warmup, Instructions: *instr, MACLatencies: lats,
	}
	multicoreSpec := harness.MulticoreSpec{
		SameMixes: *sameN, MixMixes: *mixN,
		Warmup: *mcWarmup, Instructions: *mcInstr, Model: *mcModel,
	}
	ablationSpec := harness.AblationSpec{Lines: *ablLines, FlipProb: *flipProb}
	correctionSpec := harness.CorrectionSpec{Lines: *corLines}

	opts := harness.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		Retries:     *retries,
		JournalPath: *journal,
		Fingerprint: fmt.Sprintf(
			"sweep-v1 seed=%d warmup=%d instr=%d lats=%s workloads=%s mc=%d/%d/%d/%d/%s abl=%d/%g cor=%d",
			*seed, *warmup, *instr, *macLats, *workloads,
			*sameN, *mixN, *mcWarmup, *mcInstr, *mcModel, *ablLines, *flipProb, *corLines),
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	// SIGINT/SIGTERM cancel the campaign; the journal keeps what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var tables []*report.Table
	for _, section := range strings.Split(*sections, ",") {
		var (
			sectionTables []*report.Table
			serr          error
		)
		switch strings.TrimSpace(section) {
		case "":
			continue
		case "slowdown":
			sectionTables, serr = runSection(ctx, opts, *seed,
				slowdownSpec.Jobs,
				func(rs []harness.SlowdownResult) ([]*report.Table, error) {
					return harness.SlowdownTables(rs, nil)
				})
		case "multicore":
			sectionTables, serr = runSection(ctx, opts, *seed,
				multicoreSpec.Jobs,
				func(rs []sim.MulticoreResult) ([]*report.Table, error) {
					tbl, err := harness.MulticoreTable(rs)
					return []*report.Table{tbl}, err
				})
		case "ablation":
			sectionTables, serr = runSection(ctx, opts, *seed,
				ablationSpec.Jobs,
				func(rs []harness.AblationResult) ([]*report.Table, error) {
					return harness.AblationTables(rs, ablationSpec)
				})
		case "correction":
			sectionTables, serr = runSection(ctx, opts, *seed,
				correctionSpec.Jobs,
				func(rs []harness.CorrectionPoint) ([]*report.Table, error) {
					tbl, err := harness.CorrectionTable(rs, correctionSpec)
					return []*report.Table{tbl}, err
				})
		default:
			return fmt.Errorf("unknown section %q (want slowdown, multicore, ablation or correction)", section)
		}
		if serr != nil {
			return fmt.Errorf("section %s: %w", section, serr)
		}
		tables = append(tables, sectionTables...)
	}
	return renderTables(os.Stdout, tables, *format)
}

// runSection expands one campaign section into jobs, runs them through the
// harness, and aggregates the results into tables.
func runSection[R any](
	ctx context.Context,
	opts harness.Options,
	seed uint64,
	jobsFn func(uint64) ([]harness.Job[R], error),
	aggregate func([]R) ([]*report.Table, error),
) ([]*report.Table, error) {
	jobs, err := jobsFn(seed)
	if err != nil {
		return nil, err
	}
	rep, err := harness.Run(ctx, jobs, opts)
	if err != nil {
		return nil, err
	}
	results, err := rep.Results()
	if err != nil {
		return nil, err
	}
	return aggregate(results)
}

// renderTables writes all campaign tables in the requested format; json
// emits a single document holding every table's machine-readable Results.
func renderTables(w io.Writer, tables []*report.Table, format string) error {
	switch format {
	case "json":
		all := make([]report.Results, len(tables))
		for i, t := range tables {
			all[i] = t.Results()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(all)
	case "csv":
		for _, t := range tables {
			if err := t.RenderCSV(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	case "table":
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
			fmt.Fprintln(w)
		}
		return nil
	default:
		return fmt.Errorf("unknown format %q (want table, csv or json)", format)
	}
}

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
