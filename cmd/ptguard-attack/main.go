// Command ptguard-attack runs the end-to-end Rowhammer exploit scenarios of
// §II-C / §IV-G against the simulated memory system — privilege escalation,
// metadata flips, the known-plaintext CTB DoS — and, with -compare, the
// detection-coverage comparison against prior defenses (§II-E, §VIII).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"ptguard/internal/attack"
	"ptguard/internal/core"
	"ptguard/internal/obs"
	"ptguard/internal/pte"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Uint64("seed", 42, "random seed")
		compare = flag.Bool("compare", false, "run the defense-coverage comparison")
		trials  = flag.Int("trials", 500, "coverage trials (with -compare)")
		flips   = flag.Int("max-flips", 8, "max random flips per trial (with -compare)")
		csv     = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut = flag.Bool("json", false, "emit JSON instead of a table")

		// Observability (internal/obs; scenario mode only).
		metricsOut = flag.String("metrics-out", "", "write per-scenario metric snapshots to this path (JSONL, or CSV when it ends in .csv)")
		traceOut   = flag.String("trace-out", "", "write a merged Chrome trace_event JSON to this path (open in Perfetto)")
		traceCap   = flag.Int("trace-capacity", 0, "per-scenario trace ring capacity (0 = default 65536)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address while running")
	)
	flag.Parse()

	if *debugAddr != "" {
		srv, err := obs.StartDebugServer(*debugAddr)
		if err != nil {
			return fmt.Errorf("-debug-addr: %w", err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "ptguard-attack: debug endpoint at http://%s/debug/vars\n", srv.Addr())
	}

	format := report.Format(*csv, *jsonOut)
	if *compare {
		// Coverage is one monolithic call that cannot observe a context;
		// leave default signal handling so Ctrl-C still kills it.
		return runCoverage(*seed, *trials, *flips, format)
	}

	// Drain cleanly on SIGINT/SIGTERM: finish the scenario in flight, skip
	// the rest, and still flush any observability outputs gathered so far.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sink := &obsSink{
		metricsOut: *metricsOut,
		traceOut:   *traceOut,
		traceCap:   *traceCap,
	}
	if err := runScenarios(ctx, *seed, format, sink); err != nil {
		if werr := sink.write(); werr != nil {
			return errors.Join(err, werr)
		}
		return err
	}
	return sink.write()
}

// obsSink accumulates the per-scenario observability data behind the
// -metrics-out and -trace-out flags. A sink with neither output configured
// hands out nil observers, keeping the scenarios on the zero-overhead path.
type obsSink struct {
	metricsOut string
	traceOut   string
	traceCap   int

	points []obs.SeriesPoint
	tracks []obs.TraceTrack
}

func (s *obsSink) enabled() bool {
	return s.metricsOut != "" || s.traceOut != ""
}

// observer builds a fresh Observer for one scenario, or nil when disabled.
func (s *obsSink) observer() *obs.Observer {
	if !s.enabled() {
		return nil
	}
	return obs.New(obs.Options{TraceCapacity: s.traceCap})
}

// collect snapshots one finished scenario's world into the sink.
func (s *obsSink) collect(label string, w *attack.World, o *obs.Observer) {
	if o == nil {
		return
	}
	w.PublishObs(o.Registry())
	o.Snapshot(o.Now(), 0)
	rm := o.RunMetrics(s.traceOut != "")
	for _, p := range rm.Series {
		p.Job = label
		s.points = append(s.points, p)
	}
	if len(rm.Trace) > 0 {
		s.tracks = append(s.tracks, obs.TraceTrack{Name: label, Events: rm.Trace})
	}
}

func (s *obsSink) write() error {
	if s.metricsOut != "" {
		f, err := os.Create(s.metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(s.metricsOut, ".csv") {
			err = obs.WriteSeriesCSV(f, s.points)
		} else {
			err = obs.WriteSeriesJSONL(f, s.points)
		}
		if err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if s.traceOut != "" {
		f, err := os.Create(s.traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, s.tracks); err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func runScenarios(ctx context.Context, seed uint64, format string, sink *obsSink) error {
	tbl := report.New("Rowhammer exploit scenarios (end to end)",
		"scenario", "system", "exploit succeeded", "detected", "notes")

	scenario := func(name string, protected bool, f func(*attack.World) (attack.Outcome, error)) error {
		system := "unprotected"
		if protected {
			system = "pt-guard"
		}
		w, err := attack.NewWorld(protected, false, seed)
		if err != nil {
			return fmt.Errorf("scenario %q (%s): building world: %w", name, system, err)
		}
		o := sink.observer()
		w.Observe(o)
		out, err := f(w)
		if err != nil {
			return fmt.Errorf("scenario %q (%s): %w", name, system, err)
		}
		sink.collect(name+"/"+system, w, o)
		tbl.AddRow(name, system,
			fmt.Sprintf("%t", out.ExploitSucceeded),
			fmt.Sprintf("%t", out.Detected), out.Description)
		return nil
	}

	privesc := func(w *attack.World) (attack.Outcome, error) {
		return w.PrivilegeEscalation(attack.VictimVBase)
	}
	usBit := func(w *attack.World) (attack.Outcome, error) {
		return w.MetadataAttack(attack.VictimVBase, pte.BitUserAccessible)
	}
	nxBit := func(w *attack.World) (attack.Outcome, error) {
		return w.MetadataAttack(attack.VictimVBase, pte.BitNX)
	}
	for _, s := range []struct {
		name      string
		protected bool
		f         func(*attack.World) (attack.Outcome, error)
	}{
		{name: "privilege escalation (PFN flip)", protected: false, f: privesc},
		{name: "privilege escalation (PFN flip)", protected: true, f: privesc},
		{name: "user/supervisor flip", protected: false, f: usBit},
		{name: "user/supervisor flip", protected: true, f: usBit},
		{name: "W^X bypass (NX flip)", protected: false, f: nxBit},
		{name: "W^X bypass (NX flip)", protected: true, f: nxBit},
	} {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("interrupted: %w", err)
		}
		if err := scenario(s.name, s.protected, s.f); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("interrupted: %w", err)
	}

	// Known-plaintext CTB DoS (§VII-B): needs a protected world.
	w, err := attack.NewWorld(true, false, seed)
	if err != nil {
		return fmt.Errorf("scenario %q: building world: %w", "known-plaintext CTB DoS", err)
	}
	o := sink.observer()
	w.Observe(o)
	tracked, err := w.CTBOverflowDoS(seed)
	switch {
	case errors.Is(err, core.ErrCTBFull):
		tbl.AddRow("known-plaintext CTB DoS", "pt-guard", "false", "true",
			fmt.Sprintf("CTB overflowed after %d collisions: re-key signalled", tracked))
	case err != nil:
		return fmt.Errorf("scenario %q: %w", "known-plaintext CTB DoS", err)
	default:
		tbl.AddRow("known-plaintext CTB DoS", "pt-guard", "false", "false",
			fmt.Sprintf("%d collisions tracked without overflow", tracked))
	}
	sink.collect("known-plaintext CTB DoS/pt-guard", w, o)
	return report.Emit(os.Stdout, tbl, format)
}

func runCoverage(seed uint64, trials, flips int, format string) error {
	res, err := attack.RunCoverage(seed, trials, flips)
	if err != nil {
		return fmt.Errorf("coverage comparison (%d trials, <=%d flips): %w", trials, flips, err)
	}
	tbl := report.New(
		fmt.Sprintf("Defense coverage over %d random 1..%d-bit PTE fault patterns", res.Trials, flips),
		"defense", "outcome", "count", "rate")
	tbl.AddRow("pt-guard", "detected (must be all)", report.I(res.PTGuardDetected),
		report.Pct(100*float64(res.PTGuardDetected)/float64(res.Trials)))
	tbl.AddRow("secwalk 25-bit EDC", "missed", report.I(res.SecWalkMissed),
		report.Pct(100*float64(res.SecWalkMissed)/float64(res.Trials)))
	tbl.AddRow("secded ECC", "silent wrong data", report.I(res.SECDEDSilent),
		report.Pct(100*float64(res.SECDEDSilent)/float64(res.Trials)))
	tbl.AddRow("monotonic pointers", "pattern unprotected", report.I(res.MonotonicUnprotected),
		report.Pct(100*float64(res.MonotonicUnprotected)/float64(res.Trials)))
	return report.Emit(os.Stdout, tbl, format)
}
