// Command ptguard-attack runs the end-to-end Rowhammer exploit scenarios of
// §II-C / §IV-G against the simulated memory system — privilege escalation,
// metadata flips, the known-plaintext CTB DoS — and, with -compare, the
// detection-coverage comparison against prior defenses (§II-E, §VIII).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"ptguard/internal/attack"
	"ptguard/internal/core"
	"ptguard/internal/pte"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-attack:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Uint64("seed", 42, "random seed")
		compare = flag.Bool("compare", false, "run the defense-coverage comparison")
		trials  = flag.Int("trials", 500, "coverage trials (with -compare)")
		flips   = flag.Int("max-flips", 8, "max random flips per trial (with -compare)")
	)
	flag.Parse()

	if *compare {
		return runCoverage(*seed, *trials, *flips)
	}
	return runScenarios(*seed)
}

func runScenarios(seed uint64) error {
	tbl := report.New("Rowhammer exploit scenarios (end to end)",
		"scenario", "system", "exploit succeeded", "detected", "notes")

	scenario := func(name string, protected bool, f func(*attack.World) (attack.Outcome, error)) error {
		system := "unprotected"
		if protected {
			system = "pt-guard"
		}
		w, err := attack.NewWorld(protected, false, seed)
		if err != nil {
			return fmt.Errorf("scenario %q (%s): building world: %w", name, system, err)
		}
		out, err := f(w)
		if err != nil {
			return fmt.Errorf("scenario %q (%s): %w", name, system, err)
		}
		tbl.AddRow(name, system,
			fmt.Sprintf("%t", out.ExploitSucceeded),
			fmt.Sprintf("%t", out.Detected), out.Description)
		return nil
	}

	privesc := func(w *attack.World) (attack.Outcome, error) {
		return w.PrivilegeEscalation(attack.VictimVBase)
	}
	usBit := func(w *attack.World) (attack.Outcome, error) {
		return w.MetadataAttack(attack.VictimVBase, pte.BitUserAccessible)
	}
	nxBit := func(w *attack.World) (attack.Outcome, error) {
		return w.MetadataAttack(attack.VictimVBase, pte.BitNX)
	}
	for _, s := range []struct {
		name      string
		protected bool
		f         func(*attack.World) (attack.Outcome, error)
	}{
		{name: "privilege escalation (PFN flip)", protected: false, f: privesc},
		{name: "privilege escalation (PFN flip)", protected: true, f: privesc},
		{name: "user/supervisor flip", protected: false, f: usBit},
		{name: "user/supervisor flip", protected: true, f: usBit},
		{name: "W^X bypass (NX flip)", protected: false, f: nxBit},
		{name: "W^X bypass (NX flip)", protected: true, f: nxBit},
	} {
		if err := scenario(s.name, s.protected, s.f); err != nil {
			return err
		}
	}

	// Known-plaintext CTB DoS (§VII-B): needs a protected world.
	w, err := attack.NewWorld(true, false, seed)
	if err != nil {
		return fmt.Errorf("scenario %q: building world: %w", "known-plaintext CTB DoS", err)
	}
	tracked, err := w.CTBOverflowDoS(seed)
	switch {
	case errors.Is(err, core.ErrCTBFull):
		tbl.AddRow("known-plaintext CTB DoS", "pt-guard", "false", "true",
			fmt.Sprintf("CTB overflowed after %d collisions: re-key signalled", tracked))
	case err != nil:
		return fmt.Errorf("scenario %q: %w", "known-plaintext CTB DoS", err)
	default:
		tbl.AddRow("known-plaintext CTB DoS", "pt-guard", "false", "false",
			fmt.Sprintf("%d collisions tracked without overflow", tracked))
	}
	return tbl.Render(os.Stdout)
}

func runCoverage(seed uint64, trials, flips int) error {
	res, err := attack.RunCoverage(seed, trials, flips)
	if err != nil {
		return fmt.Errorf("coverage comparison (%d trials, <=%d flips): %w", trials, flips, err)
	}
	tbl := report.New(
		fmt.Sprintf("Defense coverage over %d random 1..%d-bit PTE fault patterns", res.Trials, flips),
		"defense", "outcome", "count", "rate")
	tbl.AddRow("pt-guard", "detected (must be all)", report.I(res.PTGuardDetected),
		report.Pct(100*float64(res.PTGuardDetected)/float64(res.Trials)))
	tbl.AddRow("secwalk 25-bit EDC", "missed", report.I(res.SecWalkMissed),
		report.Pct(100*float64(res.SecWalkMissed)/float64(res.Trials)))
	tbl.AddRow("secded ECC", "silent wrong data", report.I(res.SECDEDSilent),
		report.Pct(100*float64(res.SECDEDSilent)/float64(res.Trials)))
	tbl.AddRow("monotonic pointers", "pattern unprotected", report.I(res.MonotonicUnprotected),
		report.Pct(100*float64(res.MonotonicUnprotected)/float64(res.Trials)))
	return tbl.Render(os.Stdout)
}
