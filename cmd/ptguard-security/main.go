// Command ptguard-security evaluates the analytic security model of §VI-E:
// Eq. 1 (effective MAC strength under fault-tolerant matching and
// correction guesses) and Eq. 2 (uncorrectable-MAC probability), plus the
// attack-time estimates of §IV-G. With -mitigation it adds an empirical
// residual-exposure table: the named in-DRAM mitigation (resolved through
// the internal/mitigate registry) faces every TRR-aware attack pattern
// with PT-Guard off and on, showing which patterns slip past the tracker
// and whether the integrity check catches what does.
package main

import (
	"flag"
	"fmt"
	"os"

	"ptguard/internal/attack"
	"ptguard/internal/dram"
	"ptguard/internal/mac"
	"ptguard/internal/mitigate"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-security:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n          = flag.Int("mac-bits", 96, "MAC width n")
		gMax       = flag.Int("gmax", mac.GMaxPaper, "maximum correction guesses")
		attemptNs  = flag.Float64("attempt-ns", 50, "nanoseconds per attack attempt")
		mitigation = flag.String("mitigation", "", "add an empirical exposure table for this internal/mitigate plugin (e.g. trr, graphene, oracle)")
		seed       = flag.Uint64("seed", 42, "trial seed for -mitigation")
		csv        = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonOut    = flag.Bool("json", false, "emit JSON instead of tables")
	)
	flag.Parse()

	if *mitigation != "" {
		if _, err := mitigate.New(*mitigation, mitigate.Config{Banks: 1, RowsPerBank: 2, Threshold: 2}); err != nil {
			return fmt.Errorf("-mitigation: %w", err)
		}
	}

	eq1 := report.New(
		fmt.Sprintf("Eq. 1 — effective MAC strength (n=%d, G_max=%d)", *n, *gMax),
		"k (tolerated MAC faults)", "n_eff (bits)", "security loss (bits)", "attack time (years)")
	for k := 0; k <= 8; k++ {
		nEff, err := mac.EffectiveMACBits(*n, k, *gMax)
		if err != nil {
			return err
		}
		eq1.AddRow(report.I(k), report.F(nEff, 1),
			report.F(float64(*n)-nEff, 1),
			fmt.Sprintf("%.3g", mac.AttackYears(nEff, *attemptNs)))
	}

	eq2 := report.New(
		fmt.Sprintf("Eq. 2 — uncorrectable MAC probability (n=%d)", *n),
		"p_flip", "lowest k for <1% uncorrectable", "P(>k flips) at that k")
	for _, p := range []struct {
		label string
		v     float64
	}{
		{label: "1/512 (DDR4 worst case)", v: 1.0 / 512},
		{label: "1/256", v: 1.0 / 256},
		{label: "1/128 (LPDDR4 worst case)", v: 1.0 / 128},
		{label: "0.01 (paper's 1% operating point)", v: 0.01},
	} {
		k, err := mac.PickSoftMatchBudget(*n, p.v, 0.01)
		if err != nil {
			return err
		}
		pu, err := mac.UncorrectableMACProb(*n, k, p.v)
		if err != nil {
			return err
		}
		eq2.AddRow(p.label, report.I(k), fmt.Sprintf("%.4g", pu))
	}

	tables := []*report.Table{eq1, eq2}
	if *mitigation != "" {
		exposure, err := exposureTable(*mitigation, *seed)
		if err != nil {
			return err
		}
		tables = append(tables, exposure)
	}
	return report.EmitAll(os.Stdout, tables, report.Format(*csv, *jsonOut))
}

// exposureTable plays every attack pattern against the named mitigation
// with PT-Guard off and on: the empirical counterpart to Eq. 1 — the
// tracker bounds which patterns reach the page tables, the MAC bounds
// what an attacker gains when one does.
func exposureTable(mitigation string, seed uint64) (*report.Table, error) {
	tbl := report.New(
		fmt.Sprintf("Residual exposure — %s tracker vs TRR-aware patterns (%d victim pages)",
			mitigation, attack.VictimPages),
		"pattern", "guard", "row flips", "detected", "faulted", "silent", "verdict")
	for _, pattern := range dram.PatternNames() {
		for _, protected := range []bool{false, true} {
			res, err := attack.RunMitigationTrial(attack.MitigationTrialConfig{
				Mitigation: mitigation,
				Pattern:    pattern,
				Protected:  protected,
				Seed:       seed,
			})
			if err != nil {
				return nil, err
			}
			guard := "off"
			if protected {
				guard = "on"
			}
			verdict := "defended"
			switch {
			case res.Silent > 0:
				verdict = "DEFEATED"
			case res.Faulted > 0:
				verdict = "crashed"
			case res.RowsFlipped == 0:
				verdict = "no flips"
			}
			tbl.AddRow(res.Pattern, guard, report.I(res.RowsFlipped),
				report.I(res.Detected), report.I(res.Faulted), report.I(res.Silent), verdict)
		}
	}
	return tbl, nil
}
