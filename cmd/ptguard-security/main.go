// Command ptguard-security evaluates the analytic security model of §VI-E:
// Eq. 1 (effective MAC strength under fault-tolerant matching and
// correction guesses) and Eq. 2 (uncorrectable-MAC probability), plus the
// attack-time estimates of §IV-G.
package main

import (
	"flag"
	"fmt"
	"os"

	"ptguard/internal/mac"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-security:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n         = flag.Int("mac-bits", 96, "MAC width n")
		gMax      = flag.Int("gmax", mac.GMaxPaper, "maximum correction guesses")
		attemptNs = flag.Float64("attempt-ns", 50, "nanoseconds per attack attempt")
		csv       = flag.Bool("csv", false, "emit CSV instead of tables")
		jsonOut   = flag.Bool("json", false, "emit JSON instead of tables")
	)
	flag.Parse()

	eq1 := report.New(
		fmt.Sprintf("Eq. 1 — effective MAC strength (n=%d, G_max=%d)", *n, *gMax),
		"k (tolerated MAC faults)", "n_eff (bits)", "security loss (bits)", "attack time (years)")
	for k := 0; k <= 8; k++ {
		nEff, err := mac.EffectiveMACBits(*n, k, *gMax)
		if err != nil {
			return err
		}
		eq1.AddRow(report.I(k), report.F(nEff, 1),
			report.F(float64(*n)-nEff, 1),
			fmt.Sprintf("%.3g", mac.AttackYears(nEff, *attemptNs)))
	}

	eq2 := report.New(
		fmt.Sprintf("Eq. 2 — uncorrectable MAC probability (n=%d)", *n),
		"p_flip", "lowest k for <1% uncorrectable", "P(>k flips) at that k")
	for _, p := range []struct {
		label string
		v     float64
	}{
		{label: "1/512 (DDR4 worst case)", v: 1.0 / 512},
		{label: "1/256", v: 1.0 / 256},
		{label: "1/128 (LPDDR4 worst case)", v: 1.0 / 128},
		{label: "0.01 (paper's 1% operating point)", v: 0.01},
	} {
		k, err := mac.PickSoftMatchBudget(*n, p.v, 0.01)
		if err != nil {
			return err
		}
		pu, err := mac.UncorrectableMACProb(*n, k, p.v)
		if err != nil {
			return err
		}
		eq2.AddRow(p.label, report.I(k), fmt.Sprintf("%.4g", pu))
	}

	return report.EmitAll(os.Stdout, []*report.Table{eq1, eq2}, report.Format(*csv, *jsonOut))
}
