// Command ptguard-bench converts `go test -bench -benchmem` output into a
// numbered BENCH_<n>.json baseline so the repo's performance trajectory is
// tracked run over run (`make bench-json`). It can also diff two baselines:
//
//	go test -bench=. -benchmem -run='^$' | ptguard-bench -out .
//	ptguard-bench -compare BENCH_0.json,BENCH_1.json
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"ptguard/internal/benchfmt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	in := flag.String("in", "-", "benchmark output to parse ('-' for stdin)")
	out := flag.String("out", ".", "directory to write the next BENCH_<n>.json into")
	compare := flag.String("compare", "", "two BENCH_*.json files, comma-separated: print before->after table instead of ingesting")
	threshold := flag.Float64("threshold", 10, "with -compare: fail (exit non-zero) when any shared benchmark's ns/op rises, or a */sec throughput metric drops, by more than this percentage")
	flag.Parse()

	if *compare != "" {
		return runCompare(*compare, *threshold)
	}

	r := os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	parsed, err := benchfmt.Parse(r)
	if err != nil {
		return err
	}
	path, err := nextPath(*out)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := parsed.Encode(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("%s: %d benchmarks\n", path, len(parsed.Results))
	return nil
}

// nextPath returns dir/BENCH_<n>.json for the smallest n not yet taken.
func nextPath(dir string) (string, error) {
	for n := 0; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path, nil
		} else if err != nil {
			return "", err
		}
	}
}

func runCompare(spec string, thresholdPct float64) error {
	parts := strings.Split(spec, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-compare wants before,after; got %q", spec)
	}
	files := make([]*benchfmt.File, 2)
	for i, p := range parts {
		f, err := os.Open(strings.TrimSpace(p))
		if err != nil {
			return err
		}
		parsed, err := benchfmt.Decode(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", p, err)
		}
		files[i] = parsed
	}
	fmt.Print(benchfmt.Compare(files[0], files[1]))
	regs := benchfmt.Regressions(files[0], files[1], thresholdPct)
	if len(regs) == 0 {
		return nil
	}
	for _, r := range regs {
		// Pct is normalised so that bigger is always worse; spell out the
		// direction per unit family (ns/op rose, throughput fell).
		dir := "+"
		if strings.HasSuffix(r.Unit, "/sec") {
			dir = "-"
		}
		fmt.Fprintf(os.Stderr, "REGRESSION %s: %.4g -> %.4g %s (%s%.1f%%)\n", r.Name, r.Before, r.After, r.Unit, dir, r.Pct)
	}
	return fmt.Errorf("%d benchmark metric(s) regressed more than %g%%", len(regs), thresholdPct)
}
