// Command ptguard-slowdown regenerates Fig. 6: per-workload normalized IPC
// (slowdown) under PT-Guard and Optimized PT-Guard, next to each workload's
// LLC MPKI, over the 25 SPEC-2017 and GAP benchmarks. Workloads fan out
// over the internal/harness worker pool; the report is identical for any
// -workers value.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"ptguard/internal/harness"
	"ptguard/internal/report"
	"ptguard/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-slowdown:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		warmup     = flag.Int("warmup", 200_000, "warm-up instructions per run")
		instr      = flag.Int("instructions", 400_000, "measured instructions per run")
		seed       = flag.Uint64("seed", 42, "campaign seed (per-job seeds derive from it)")
		macLatency = flag.Int("mac-latency", 10, "MAC computation latency in cycles")
		csv        = flag.Bool("csv", false, "emit CSV instead of a table")
		jsonOut    = flag.Bool("json", false, "emit JSON instead of a table")
		optimized  = flag.Bool("optimized", true, "also run Optimized PT-Guard")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	modes := []sim.Mode{sim.PTGuard}
	if *optimized {
		modes = append(modes, sim.PTGuardOptimized)
	}
	spec := harness.SlowdownSpec{
		Modes:        modes,
		Warmup:       *warmup,
		Instructions: *instr,
		MACLatencies: []int{*macLatency},
	}
	jobs, err := spec.Jobs(*seed)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rep, err := harness.Run(ctx, jobs, harness.Options{
		Workers:  *workers,
		Progress: os.Stderr,
	})
	if err != nil {
		return err
	}
	results, err := rep.Results()
	if err != nil {
		return err
	}
	tables, err := harness.SlowdownTables(results, modes)
	if err != nil {
		return err
	}
	return report.EmitAll(os.Stdout, tables, report.Format(*csv, *jsonOut))
}
