// Command ptguard-slowdown regenerates Fig. 6: per-workload normalized IPC
// (slowdown) under PT-Guard and Optimized PT-Guard, next to each workload's
// LLC MPKI, over the 25 SPEC-2017 and GAP benchmarks.
package main

import (
	"flag"
	"fmt"
	"os"

	"ptguard/internal/report"
	"ptguard/internal/sim"
	"ptguard/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-slowdown:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		warmup     = flag.Int("warmup", 200_000, "warm-up instructions per run")
		instr      = flag.Int("instructions", 400_000, "measured instructions per run")
		seed       = flag.Uint64("seed", 42, "random seed")
		macLatency = flag.Int("mac-latency", 10, "MAC computation latency in cycles")
		csv        = flag.Bool("csv", false, "emit CSV instead of a table")
		optimized  = flag.Bool("optimized", true, "also run Optimized PT-Guard")
	)
	flag.Parse()

	modes := []sim.Mode{sim.PTGuard}
	if *optimized {
		modes = append(modes, sim.PTGuardOptimized)
	}
	headers := []string{"workload", "suite", "LLC MPKI", "ptguard slowdown"}
	if *optimized {
		headers = append(headers, "optimized slowdown")
	}
	tbl := report.New("Fig. 6 — PT-Guard slowdown vs unprotected baseline", headers...)

	cmps := make([]sim.Comparison, 0, 25)
	for _, prof := range workload.Profiles() {
		cmp, err := sim.Compare(prof, *warmup, *instr, *seed, *macLatency, modes)
		if err != nil {
			return err
		}
		cmps = append(cmps, cmp)
		row := []string{
			prof.Name, prof.Suite,
			report.F(cmp.LLCMPKI, 1),
			report.Pct(cmp.SlowdownPct[sim.PTGuard]),
		}
		if *optimized {
			row = append(row, report.Pct(cmp.SlowdownPct[sim.PTGuardOptimized]))
		}
		tbl.AddRow(row...)
		fmt.Fprintf(os.Stderr, ".")
	}
	fmt.Fprintln(os.Stderr)

	sums := make(map[sim.Mode]sim.SuiteSummary, len(modes))
	for _, mode := range modes {
		sum, err := sim.Summarize(cmps, mode)
		if err != nil {
			return err
		}
		sums[mode] = sum
	}
	amean := []string{"AMEAN", "", "", report.Pct(sums[sim.PTGuard].MeanPct)}
	gmean := []string{"GMEAN IPC", "", "", report.F(sums[sim.PTGuard].GeoMeanIPC, 4)}
	worst := []string{"WORST", "", sums[sim.PTGuard].WorstName, report.Pct(sums[sim.PTGuard].WorstPct)}
	if *optimized {
		amean = append(amean, report.Pct(sums[sim.PTGuardOptimized].MeanPct))
		gmean = append(gmean, report.F(sums[sim.PTGuardOptimized].GeoMeanIPC, 4))
		worst = append(worst, report.Pct(sums[sim.PTGuardOptimized].WorstPct))
	}
	tbl.AddRow(amean...)
	tbl.AddRow(gmean...)
	tbl.AddRow(worst...)

	if *csv {
		return tbl.RenderCSV(os.Stdout)
	}
	return tbl.Render(os.Stdout)
}
