// Command ptguard-vm runs the inter-VM Rowhammer campaign on the nested
// paging substrate: tenant-fleet sizes crossed with PT-Guard placements
// (none, guest tables only, stage-2/EPT only, both) and attack targets (the
// victim's guest tables vs the hypervisor's stage-2 tables), fanned out
// over the internal/harness worker pool. Each trial builds a multi-tenant
// host, double-sided hammers the rows holding the victim VM's targeted
// table layer, then classifies every post-attack 2-D page walk as detected,
// faulted, silently corrupted, or intact.
//
// The campaign is deterministic in its seed, and -journal checkpoints
// completed jobs so an interrupted run resumes where it left off.
//
// Example:
//
//	ptguard-vm -tenants 4,16,120 -placements none,both -targets guest,stage2
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"ptguard/internal/attack"
	"ptguard/internal/dist"
	"ptguard/internal/harness"
	"ptguard/internal/obs"
	"ptguard/internal/report"
	"ptguard/internal/virt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-vm:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		seed    = flag.Uint64("seed", 42, "campaign seed (per-job seeds derive from it)")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		journal = flag.String("journal", "", "JSONL checkpoint path; resuming with the same path skips completed jobs")
		format  = flag.String("format", "table", "output format: table, csv or json")
		timeout = flag.Duration("timeout", 10*time.Minute, "per-job wall-clock timeout (0 = none)")
		retries = flag.Int("retries", 1, "re-attempts per failed or panicked job")
		quiet   = flag.Bool("quiet", false, "suppress the stderr progress reporter")

		tenants    = flag.String("tenants", "4", "comma-separated tenant-fleet sizes to sweep")
		placements = flag.String("placements", "", "comma-separated guard placements: none, guest, stage2, both (empty = all)")
		targets    = flag.String("targets", "", "comma-separated attack targets: guest, stage2 (empty = both)")
		trials     = flag.Int("trials", 3, "trials per (tenants, target, placement) cell")
		pages      = flag.Int("pages", 0, "leaf mappings per tenant VM (0 = default 16)")
		threshold  = flag.Int("threshold", 0, "charge-loss flip threshold in activations (0 = scaled default)")
		acts       = flag.Int("acts", 0, "double-sided activations per hammered row (0 = scaled default)")
		correction = flag.Bool("correction", false, "enable the correction engine on guarded layers")
		list       = flag.Bool("list", false, "print the guard placements and attack targets, then exit")

		// Observability (internal/obs).
		metricsOut = flag.String("metrics-out", "", "write per-trial time-series snapshots to this path (JSONL, or CSV when it ends in .csv)")
		traceOut   = flag.String("trace-out", "", "write a merged Chrome trace_event JSON to this path (open in Perfetto)")
		snapEvery  = flag.Int("snapshot-every", 0, "instructions between snapshots (0 = run-final snapshot only)")
		traceCap   = flag.Int("trace-capacity", 0, "per-trial trace ring capacity (0 = default 65536)")
		debugAddr  = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address during the campaign")
	)
	distFlags := dist.AddFlags(flag.CommandLine)
	flag.Parse()

	if *list {
		fmt.Println("placements:", strings.Join(virt.PlacementNames(), ", "))
		fmt.Println("targets:   ", strings.Join(attack.VMTargetNames(), ", "))
		return nil
	}

	fleet, err := splitInts(*tenants)
	if err != nil {
		return fmt.Errorf("-tenants: %w", err)
	}
	spec := harness.VirtSpec{
		Tenants:    fleet,
		Placements: splitCSV(*placements),
		Targets:    splitCSV(*targets),
		Trials:     *trials,
		PagesPerVM: *pages,
		Correction: *correction,
		Threshold:  *threshold,
		Acts:       *acts,
	}
	if *metricsOut != "" || *traceOut != "" {
		spec.Obs = &harness.ObsSpec{
			SnapshotEvery: *snapEvery,
			TraceCapacity: *traceCap,
			IncludeTrace:  *traceOut != "",
		}
	}

	opts := harness.Options{
		Workers:     *workers,
		Timeout:     *timeout,
		Retries:     *retries,
		JournalPath: *journal,
		Fingerprint: harness.Fingerprint("vm", *seed, spec),
	}
	if !*quiet {
		opts.Progress = os.Stderr
	}

	if *debugAddr != "" {
		live := &harness.LiveStatus{}
		opts.LiveStatus = live
		srv, derr := obs.StartDebugServer(*debugAddr)
		if derr != nil {
			return derr
		}
		defer srv.Close()
		obs.PublishFunc("ptguard.campaign", func() any { return live.Snapshot() })
		fmt.Fprintf(os.Stderr, "ptguard-vm: debug endpoint at http://%s/debug/vars\n", srv.Addr())
	}

	// SIGINT/SIGTERM cancel the campaign; the journal keeps what finished.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	jobs, err := spec.Jobs(*seed)
	if err != nil {
		return err
	}
	co, err := distFlags.Start(dist.Campaign{Kind: dist.KindVirt, Spec: spec, Seed: *seed}, &opts, nil)
	if err != nil {
		return err
	}
	if co != nil {
		dist.Publish(co)
		defer co.Close()
	}
	rep, err := harness.Run(ctx, jobs, opts)
	if err != nil {
		return err
	}
	results, err := rep.Results()
	if err != nil {
		return err
	}
	tables, err := harness.VirtTables(results, spec)
	if err != nil {
		return err
	}
	if err := writeObsOutputs(results, *metricsOut, *traceOut); err != nil {
		return err
	}
	return report.EmitAll(os.Stdout, tables, *format)
}

// writeObsOutputs merges per-trial observability data into the -metrics-out
// time series and the -trace-out Chrome trace, one labelled series/track
// per trial cell.
func writeObsOutputs(results []attack.VMTrialResult, metricsOut, traceOut string) error {
	if metricsOut == "" && traceOut == "" {
		return nil
	}
	var points []obs.SeriesPoint
	var tracks []obs.TraceTrack
	for _, r := range results {
		if r.Obs == nil {
			continue
		}
		label := fmt.Sprintf("t%03d/%s/%s", r.Tenants, r.Target, r.Placement)
		for _, p := range r.Obs.Series {
			p.Job = label
			points = append(points, p)
		}
		if len(r.Obs.Trace) > 0 {
			tracks = append(tracks, obs.TraceTrack{Name: label, Events: r.Obs.Trace})
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if strings.HasSuffix(metricsOut, ".csv") {
			err = obs.WriteSeriesCSV(f, points)
		} else {
			err = obs.WriteSeriesJSONL(f, points)
		}
		if err != nil {
			return fmt.Errorf("-metrics-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := obs.WriteChromeTrace(f, tracks); err != nil {
			return fmt.Errorf("-trace-out: %w", err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func splitInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitCSV(s) {
		n, err := strconv.Atoi(part)
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
