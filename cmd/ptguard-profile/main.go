// Command ptguard-profile regenerates Fig. 8: the distribution of PTE PFN
// values (zero / contiguous / non-contiguous) across a synthetic process
// population calibrated to the paper's 623-process Ubuntu measurement
// (64.13% zero, 23.73% contiguous, >99% flag uniformity).
package main

import (
	"flag"
	"fmt"
	"os"

	"ptguard/internal/ostable"
	"ptguard/internal/pte"
	"ptguard/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-profile:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		processes = flag.Int("processes", 623, "number of processes to synthesise")
		memGB     = flag.Int("mem-gb", 16, "physical memory size in GiB")
		seed      = flag.Uint64("seed", 42, "random seed")
		csv       = flag.Bool("csv", false, "emit per-process CSV instead of the summary")
		jsonOut   = flag.Bool("json", false, "emit the summary as JSON instead of a table")
	)
	flag.Parse()

	frames := uint64(*memGB) << 30 / pte.PageSize
	alloc, err := ostable.NewFrameAllocator(4096, frames-4096)
	if err != nil {
		return err
	}
	cfg := ostable.DefaultSynthConfig()
	cfg.Seed = *seed
	pop, err := ostable.NewPopulation(cfg, alloc)
	if err != nil {
		return err
	}
	perProc, err := ostable.RunPopulation(pop, *processes)
	if err != nil {
		return err
	}
	sum, err := ostable.Summarize(perProc)
	if err != nil {
		return err
	}

	if *csv {
		tbl := report.New("", "rank", "zero", "contiguous", "non-contiguous")
		for i, p := range sum.PerProcess {
			tbl.AddRow(report.I(i+1), report.Pct(p.ZeroPct()),
				report.Pct(p.ContiguousPct()), report.Pct(p.NonContiguousPct()))
		}
		return report.Emit(os.Stdout, tbl, report.FormatCSV)
	}

	tbl := report.New(
		fmt.Sprintf("Fig. 8 — PTE PFN categories over %d processes (%d PTEs)",
			sum.Processes, sum.TotalPTEs),
		"category", "mean", "std err", "paper")
	tbl.AddRow("zero PFNs", report.Pct(sum.ZeroMean), report.F(sum.ZeroStdErr, 3), "64.13%")
	tbl.AddRow("contiguous PFNs", report.Pct(sum.ContigMean), report.F(sum.ContigSE, 3), "23.73%")
	tbl.AddRow("non-contiguous PFNs", report.Pct(sum.NonContMean), "", "12.14%")
	tbl.AddRow("flag-uniform lines", report.Pct(sum.FlagUniform), "", ">99%")
	return report.Emit(os.Stdout, tbl, report.Format(false, *jsonOut))
}
