// Command ptguard-soak is the standing proof that the harness's
// checkpoint/resume is exact under faults: it loops a deterministic
// correction campaign, interleaving chaos-injected legs (process kills,
// torn journal writes, fsync failures, disk-full, worker panics, hung
// jobs — the full internal/chaos catalog) and deliberate mid-file journal
// corruption with resumed legs, and asserts that the final merged report
// is byte-identical to the same-seed uninterrupted run.
//
// Each disrupted leg runs as a child process (this binary re-executed with
// -child), so an injected kill is a real SIGKILL-style process death, not
// a simulation of one. The parent resumes the journal until a leg runs
// clean, then compares its report bytes against the in-process reference.
// Any divergence is a durability bug and exits non-zero.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ptguard/internal/chaos"
	"ptguard/internal/dist"
	"ptguard/internal/harness"
	"ptguard/internal/obs"
	"ptguard/internal/report"
	"ptguard/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ptguard-soak:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		rounds  = flag.Int("rounds", 1, "soak rounds (each cycles every selected fault point)")
		seed    = flag.Uint64("seed", 42, "campaign seed (per-job seeds and chaos schedules derive from it)")
		lines   = flag.Int("lines", 40, "correction campaign: faulty lines per probability")
		jobs    = flag.Int("jobs", 12, "correction campaign: number of flip-probability grid points")
		workers = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		faults  = flag.String("faults", "all",
			fmt.Sprintf("comma-separated fault points to cycle, or \"all\" (catalog: %v)", chaos.Points()))
		maxLegs = flag.Int("max-legs", 6, "disrupted legs per fault point before the final clean leg")
		timeout = flag.Duration("timeout", 15*time.Second, "per-job wall-clock timeout in each leg")
		backoff = flag.Duration("retry-backoff", 50*time.Millisecond, "base retry backoff (deterministic jitter)")
		drain   = flag.Duration("drain-grace", 2*time.Second, "grace for in-flight jobs on SIGINT/SIGTERM")
		format  = flag.String("format", "table", "summary output format: table, csv or json")
		quiet   = flag.Bool("quiet", false, "suppress per-leg progress on stderr")
		keep    = flag.Bool("keep", false, "keep the journal artifact directory")
		dirFlag = flag.String("dir", "", "journal artifact directory (default: a temp dir)")

		debugAddr = flag.String("debug-addr", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) with live soak counters")

		// Child-leg mode (internal; the parent re-executes itself with these).
		child     = flag.Bool("child", false, "internal: run one campaign leg and print the report")
		journal   = flag.String("journal", "", "internal: child journal path")
		chaosSpec = flag.String("chaos", "", "internal: child chaos schedule spec")
		chaosSeed = flag.Uint64("chaos-seed", 0, "internal: child chaos schedule seed")
	)
	distFlags := dist.AddFlags(flag.CommandLine)
	flag.Parse()

	cfg := legConfig{
		seed: *seed, lines: *lines, jobs: *jobs, workers: *workers,
		timeout: *timeout, backoff: *backoff, drain: *drain, quiet: *quiet,
		dist: distFlags,
	}
	if *child {
		return runChildLeg(cfg, *journal, *chaosSpec, *chaosSeed)
	}

	points, err := selectPoints(*faults)
	if err != nil {
		return err
	}

	dir := *dirFlag
	if dir == "" {
		dir, err = os.MkdirTemp("", "ptguard-soak-*")
		if err != nil {
			return err
		}
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if !*keep {
		defer os.RemoveAll(dir)
	} else {
		defer fmt.Fprintf(os.Stderr, "ptguard-soak: artifacts kept in %s\n", dir)
	}

	status := &soakStatus{}
	if *debugAddr != "" {
		srv, derr := obs.StartDebugServer(*debugAddr)
		if derr != nil {
			return derr
		}
		defer srv.Close()
		obs.PublishFunc("ptguard.soak", func() any { return status.snapshot() })
		fmt.Fprintf(os.Stderr, "ptguard-soak: debug endpoint at http://%s/debug/vars\n", srv.Addr())
	}

	// First SIGINT/SIGTERM stops scheduling new legs (in-flight children
	// drain via their own handlers); a second one kills outright.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// The uninterrupted same-seed reference, computed once in-process.
	ref, err := referenceReport(ctx, cfg)
	if err != nil {
		return fmt.Errorf("reference run: %w", err)
	}

	self, err := os.Executable()
	if err != nil {
		return err
	}

	tbl := report.New(
		fmt.Sprintf("Crash-safe soak — resumed report vs uninterrupted run (%d jobs, %d lines, seed %d)",
			cfg.jobs, cfg.lines, cfg.seed),
		"round", "fault point", "schedule", "legs", "kills", "corrupted", "verdict")
	failures := 0
	for round := 1; round <= *rounds && ctx.Err() == nil; round++ {
		for _, p := range points {
			if ctx.Err() != nil {
				break
			}
			res, err := runFaultCycle(ctx, self, dir, cfg, round, p, *maxLegs, *quiet)
			if err != nil {
				return fmt.Errorf("round %d, %s: %w", round, p, err)
			}
			verdict := fmt.Sprintf("byte-identical (%d bytes)", len(res.out))
			if !bytes.Equal(res.out, ref) {
				verdict = "MISMATCH"
				failures++
				status.mismatches.Add(1)
				if !*quiet {
					fmt.Fprintf(os.Stderr, "ptguard-soak: round %d %s: report diverged:\n%s",
						round, p, firstDiff(ref, res.out))
				}
			} else {
				status.matches.Add(1)
			}
			status.legs.Add(int64(res.legs))
			status.kills.Add(int64(res.kills))
			status.corruptions.Add(int64(res.corrupted))
			tbl.AddRow(report.I(round), string(p), res.schedule, report.I(res.legs),
				report.I(res.kills), report.I(res.corrupted), verdict)
		}
		status.rounds.Add(1)
	}
	if err := report.Emit(os.Stdout, tbl, *format); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("soak interrupted: %w", err)
	}
	if failures > 0 {
		return fmt.Errorf("%d fault cycle(s) produced a report that was not byte-identical", failures)
	}
	return nil
}

// legConfig is everything a leg (parent reference or child) needs to build
// the identical campaign.
type legConfig struct {
	seed           uint64
	lines, jobs    int
	workers        int
	timeout        time.Duration
	backoff, drain time.Duration
	quiet          bool
	// dist selects the execution backend for the disrupted legs; the
	// reference run always stays in-process, so a -backend=proc soak also
	// proves cross-backend byte-identity, and a worker.kill schedule gets
	// absorbed by the coordinator's crash-requeue rather than killing the
	// leg.
	dist *dist.Flags
}

// spec builds the correction campaign: a geometric-ish grid of flip
// probabilities, dense enough that kills land mid-campaign.
func (c legConfig) spec() harness.CorrectionSpec {
	probs := make([]float64, c.jobs)
	for i := range probs {
		probs[i] = 1.0 / float64(64*(i+2))
	}
	return harness.CorrectionSpec{Lines: c.lines, Probs: probs}
}

func (c legConfig) fingerprint() string {
	// Backend-invariant on purpose: a journal written by a local leg must
	// resume under -backend=proc and vice versa.
	return harness.Fingerprint("soak", c.seed, c.spec())
}

// render produces the canonical report bytes every leg is compared by.
func (c legConfig) render(results []harness.CorrectionPoint) ([]byte, error) {
	tbl, err := harness.CorrectionTable(results, c.spec())
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := report.Emit(&buf, tbl, "table"); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// options assembles the harness options shared by every leg.
func (c legConfig) options(journalPath string, inj *chaos.Injector) harness.Options {
	opts := harness.Options{
		Workers:     c.workers,
		Timeout:     c.timeout,
		Retries:     2,
		Backoff:     c.backoff,
		DrainGrace:  c.drain,
		JournalPath: journalPath,
		Fingerprint: c.fingerprint(),
		Chaos:       inj,
	}
	if !c.quiet {
		opts.Progress = os.Stderr
	}
	return opts
}

// referenceReport runs the campaign once, uninterrupted and unjournaled.
func referenceReport(ctx context.Context, cfg legConfig) ([]byte, error) {
	jb, err := cfg.spec().Jobs(cfg.seed)
	if err != nil {
		return nil, err
	}
	opts := cfg.options("", nil)
	rep, err := harness.Run(ctx, jb, opts)
	if err != nil {
		return nil, err
	}
	results, err := rep.Results()
	if err != nil {
		return nil, err
	}
	return cfg.render(results)
}

// runChildLeg is one campaign leg in a child process: resume the journal,
// run under the given chaos schedule, print the report to stdout. An
// injected proc.kill or short-write crash exits with chaos.KillExitCode
// from inside the harness; every other failure exits 1 via main.
func runChildLeg(cfg legConfig, journalPath, spec string, chaosSeed uint64) error {
	if journalPath == "" {
		return errors.New("-child requires -journal")
	}
	inj, err := chaos.Parse(spec, chaosSeed)
	if err != nil {
		return err
	}
	jb, err := cfg.spec().Jobs(cfg.seed)
	if err != nil {
		return err
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	opts := cfg.options(journalPath, inj)
	co, err := cfg.dist.Start(dist.Campaign{Kind: dist.KindCorrection, Spec: cfg.spec(), Seed: cfg.seed}, &opts, inj)
	if err != nil {
		return err
	}
	if co != nil {
		defer co.Close()
	}
	rep, err := harness.Run(ctx, jb, opts)
	if err != nil {
		return err
	}
	results, err := rep.Results()
	if err != nil {
		return err
	}
	out, err := cfg.render(results)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(out)
	return err
}

// cycleResult summarises one (round, fault point) kill/corrupt/resume
// cycle.
type cycleResult struct {
	out       []byte
	schedule  string
	legs      int
	kills     int
	corrupted int
}

// runFaultCycle drives one fault point: disrupted legs under a
// deterministic schedule (with one mid-file journal corruption after the
// first leg), resumed until a leg runs clean — chaos is dropped after
// maxLegs so the cycle always terminates — and returns the clean leg's
// report bytes.
func runFaultCycle(ctx context.Context, self, dir string, cfg legConfig, round int, p chaos.Point, maxLegs int, quiet bool) (cycleResult, error) {
	journalPath := filepath.Join(dir,
		fmt.Sprintf("round%d-%s.jsonl", round, strings.ReplaceAll(string(p), ".", "-")))
	// The firing position walks the campaign deterministically with the
	// round, so successive rounds fault different operations.
	after := 1 + int(stats.DeriveSeed(cfg.seed, fmt.Sprintf("soak/%d/%s", round, p))%uint64(cfg.jobs))
	schedule := fmt.Sprintf("%s:after=%d", p, after)
	chaosSeed := stats.DeriveSeed(cfg.seed, fmt.Sprintf("soak-chaos/%d/%s", round, p))

	res := cycleResult{schedule: schedule}
	for leg := 1; ; leg++ {
		if err := ctx.Err(); err != nil {
			return res, err
		}
		spec := schedule
		if leg > maxLegs {
			spec = "" // final clean leg: always converges
		}
		res.legs++
		cmd := exec.CommandContext(ctx, self,
			"-child",
			"-journal", journalPath,
			"-chaos", spec,
			"-chaos-seed", fmt.Sprint(chaosSeed),
			"-seed", fmt.Sprint(cfg.seed),
			"-lines", fmt.Sprint(cfg.lines),
			"-jobs", fmt.Sprint(cfg.jobs),
			"-workers", fmt.Sprint(cfg.workers),
			"-timeout", cfg.timeout.String(),
			"-retry-backoff", cfg.backoff.String(),
			"-drain-grace", cfg.drain.String(),
			"-quiet=true",
			"-backend", cfg.dist.Backend,
			"-dist-workers", fmt.Sprint(cfg.dist.Workers),
			"-connect", cfg.dist.Connect,
			"-worker-bin", cfg.dist.WorkerBin,
		)
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		if err == nil {
			res.out = stdout.Bytes()
			return res, nil
		}
		code := -1
		var xerr *exec.ExitError
		if errors.As(err, &xerr) {
			code = xerr.ExitCode()
		} else {
			return res, fmt.Errorf("leg %d: %w", leg, err)
		}
		if code == chaos.KillExitCode {
			res.kills++
		}
		if !quiet {
			fmt.Fprintf(os.Stderr, "ptguard-soak: round %d %s leg %d: exit %d (%s), resuming\n",
				round, p, leg, code, strings.TrimSpace(firstLine(stderr.String())))
		}
		if leg > maxLegs {
			return res, fmt.Errorf("clean leg failed (exit %d): %s", code, stderr.String())
		}
		// After the first disrupted leg, corrupt the journal mid-file once:
		// the resumed leg must quarantine the record and re-run its job.
		if leg == 1 {
			if corruptJournal(journalPath, cfg.seed, round, p) {
				res.corrupted++
			}
		}
	}
}

// corruptJournal deterministically flips one byte inside a middle record
// of the journal, if it has enough records to corrupt. Reports whether a
// flip happened.
func corruptJournal(path string, seed uint64, round int, p chaos.Point) bool {
	data, err := os.ReadFile(path)
	if err != nil {
		return false
	}
	lines := bytes.Split(data, []byte("\n"))
	// Candidate record lines: everything after the header, non-empty.
	var idx []int
	for i := 1; i < len(lines); i++ {
		if len(lines[i]) > 8 {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return false
	}
	h := stats.DeriveSeed(seed, fmt.Sprintf("soak-corrupt/%d/%s", round, p))
	line := lines[idx[h%uint64(len(idx))]]
	line[len(line)/2] ^= 0x55
	return os.WriteFile(path, bytes.Join(lines, []byte("\n")), 0o644) == nil
}

// selectPoints parses the -faults flag against the chaos catalog.
func selectPoints(csv string) ([]chaos.Point, error) {
	if strings.TrimSpace(csv) == "" || csv == "all" {
		return chaos.Points(), nil
	}
	catalog := make(map[chaos.Point]bool)
	for _, p := range chaos.Points() {
		catalog[p] = true
	}
	var out []chaos.Point
	for _, name := range strings.Split(csv, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		p := chaos.Point(name)
		if !catalog[p] {
			return nil, fmt.Errorf("unknown fault point %q (catalog: %v)", name, chaos.Points())
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, errors.New("-faults selected no fault points")
	}
	return out, nil
}

// soakStatus is the live counter set published on -debug-addr.
type soakStatus struct {
	rounds, legs, kills, corruptions, matches, mismatches atomic.Int64
}

func (s *soakStatus) snapshot() map[string]int64 {
	return map[string]int64{
		"rounds":      s.rounds.Load(),
		"legs":        s.legs.Load(),
		"kills":       s.kills.Load(),
		"corruptions": s.corruptions.Load(),
		"matches":     s.matches.Load(),
		"mismatches":  s.mismatches.Load(),
	}
}

// firstDiff renders the first divergent line of two reports.
func firstDiff(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if w[i] != g[i] {
			return fmt.Sprintf("line %d:\n  want: %s\n  got:  %s\n", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("length differs: want %d lines, got %d\n", len(w), len(g))
}

func firstLine(s string) string {
	line, _, _ := strings.Cut(s, "\n")
	return line
}
