package ptguard_test

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ptguard"
)

func demoLine(basePFN uint64) [ptguard.LineBytes]byte {
	var line [ptguard.LineBytes]byte
	for i := 0; i < 8; i++ {
		entry := uint64(0x7) | (basePFN+uint64(i))<<12
		binary.LittleEndian.PutUint64(line[i*8:], entry)
	}
	return line
}

// Protect a PTE cacheline, verify it on a walk, and catch tampering.
func Example() {
	key := make([]byte, ptguard.KeySize)
	guard, err := ptguard.New(key)
	if err != nil {
		panic(err)
	}

	line := demoLine(0xABC00)
	stored, info, err := guard.ProtectOnWrite(line, 0x4000)
	if err != nil {
		panic(err)
	}
	fmt.Println("protected:", info.Protected)

	clean, _, err := guard.VerifyWalkRead(stored, 0x4000)
	fmt.Println("verified:", err == nil && clean == line)

	stored[2] ^= 0x04 // Rowhammer flips the user/supervisor bit
	_, _, err = guard.VerifyWalkRead(stored, 0x4000)
	fmt.Println("tampering detected:", errors.Is(err, ptguard.ErrIntegrityViolation))
	// Output:
	// protected: true
	// verified: true
	// tampering detected: true
}

// Enable best-effort correction: single flips are repaired transparently.
func ExampleWithCorrection() {
	key := make([]byte, ptguard.KeySize)
	guard, err := ptguard.New(key, ptguard.WithCorrection(4))
	if err != nil {
		panic(err)
	}
	line := demoLine(0x55AA0)
	stored, _, err := guard.ProtectOnWrite(line, 0x8000)
	if err != nil {
		panic(err)
	}
	stored[13] ^= 0x10 // a PFN bit flip
	fixed, info, err := guard.VerifyWalkRead(stored, 0x8000)
	if err != nil {
		panic(err)
	}
	fmt.Println("corrected:", info.Corrected)
	fmt.Println("payload intact:", fixed == line)
	// Output:
	// corrected: true
	// payload intact: true
}

// The analytic security model of §VI-E.
func ExampleEffectiveMACBits() {
	nEff, err := ptguard.EffectiveMACBits(96, 4, 372)
	if err != nil {
		panic(err)
	}
	fmt.Printf("effective MAC strength: %.0f bits\n", nEff)
	// Output:
	// effective MAC strength: 66 bits
}

// SRAM budgets of the two design points (§V-E).
func ExampleNew_optimized() {
	key := make([]byte, ptguard.KeySize)
	base, err := ptguard.New(key)
	if err != nil {
		panic(err)
	}
	opt, err := ptguard.New(key,
		ptguard.WithIdentifier(0xA5A5A5A5A5A5A5),
		ptguard.WithZeroMAC())
	if err != nil {
		panic(err)
	}
	fmt.Println("base SRAM bytes:", base.SRAMBytes())
	fmt.Println("optimized SRAM bytes:", opt.SRAMBytes())
	// Output:
	// base SRAM bytes: 52
	// optimized SRAM bytes: 71
}
