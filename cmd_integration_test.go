// End-to-end CLI test: builds every cmd/ binary once and runs it with
// minimal parameters, verifying exit status and that the headline table
// appears. Skipped under -short (it compiles eleven binaries).
package ptguard

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs all eleven binaries; run without -short")
	}
	binDir := t.TempDir()
	build := exec.Command("go", "build", "-o", binDir, "./cmd/...")
	build.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}

	tests := []struct {
		bin  string
		args []string
		want []string
	}{
		{
			bin:  "ptguard-report",
			args: []string{"-table=storage"},
			want: []string{"52", "71", "12.5%"},
		},
		{
			bin:  "ptguard-security",
			args: nil,
			want: []string{"Eq. 1", "Eq. 2", "65.7"},
		},
		{
			bin:  "ptguard-profile",
			args: []string{"-processes", "8"},
			want: []string{"zero PFNs", "contiguous PFNs", "flag-uniform"},
		},
		{
			bin:  "ptguard-correct",
			args: []string{"-lines", "40", "-probs", "1/512"},
			want: []string{"corrected %", "100.00%"},
		},
		{
			bin:  "ptguard-attack",
			args: nil,
			want: []string{"privilege escalation", "PTECheckFailed", "re-key"},
		},
		{
			bin:  "ptguard-attack",
			args: []string{"-compare", "-trials", "40"},
			want: []string{"pt-guard", "100.00%"},
		},
		{
			bin:  "ptguard-slowdown",
			args: []string{"-warmup", "2000", "-instructions", "4000", "-optimized=false"},
			want: []string{"xalancbmk", "AMEAN", "WORST"},
		},
		{
			bin:  "ptguard-latency",
			args: []string{"-warmup", "2000", "-instructions", "4000", "-latencies", "10"},
			want: []string{"10 cycles"},
		},
		{
			bin:  "ptguard-multicore",
			args: []string{"-warmup", "1000", "-instructions", "2000", "-same", "1", "-mix", "1"},
			want: []string{"AVERAGE", "WORST"},
		},
		{
			bin:  "ptguard-trace",
			args: []string{"-instructions", "30000", "-trials", "30"},
			want: []string{"trace lines", "coverage %"},
		},
		{
			bin:  "ptguard-ablation",
			args: []string{"-lines", "30"},
			want: []string{"zero-PTE reset", "Soft-match budget", "MAC width"},
		},
		{
			bin: "ptguard-sweep",
			args: []string{"-sections", "slowdown", "-workloads", "leela,povray",
				"-warmup", "1000", "-instructions", "2000", "-workers", "2", "-quiet"},
			want: []string{"Fig. 6", "leela", "povray", "AMEAN", "WORST"},
		},
		{
			bin: "ptguard-sweep",
			args: []string{"-sections", "correction", "-correction-lines", "30",
				"-format", "json", "-quiet"},
			want: []string{`"headers"`, "Fig. 9", "corrected %"},
		},
	}
	for _, tt := range tests {
		name := tt.bin + strings.Join(tt.args, "_")
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(binDir, tt.bin), tt.args...)
			out, err := cmd.Output()
			if err != nil {
				t.Fatalf("%s %v: %v", tt.bin, tt.args, err)
			}
			for _, want := range tt.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", tt.bin, want, out)
				}
			}
		})
	}

	// Flag validation: a bad flag must exit non-zero.
	cmd := exec.Command(filepath.Join(binDir, "ptguard-report"), "-table=nonsense")
	if err := cmd.Run(); err == nil {
		t.Error("ptguard-report accepted an unknown table")
	}
}
