// End-to-end CLI test: builds every cmd/ binary once and runs it with
// minimal parameters, verifying exit status and that the headline table
// appears. Skipped under -short (it compiles every cmd/ binary).
package ptguard

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and runs every cmd/ binary; run without -short")
	}
	binDir := t.TempDir()
	build := exec.Command("go", "build", "-o", binDir, "./cmd/...")
	build.Env = append(os.Environ(), "GOFLAGS=-mod=mod")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build ./cmd/...: %v\n%s", err, out)
	}

	tests := []struct {
		bin  string
		args []string
		want []string
	}{
		{
			bin:  "ptguard-report",
			args: []string{"-table=storage"},
			want: []string{"52", "71", "12.5%"},
		},
		{
			bin:  "ptguard-security",
			args: nil,
			want: []string{"Eq. 1", "Eq. 2", "65.7"},
		},
		{
			bin:  "ptguard-profile",
			args: []string{"-processes", "8"},
			want: []string{"zero PFNs", "contiguous PFNs", "flag-uniform"},
		},
		{
			bin:  "ptguard-correct",
			args: []string{"-lines", "40", "-probs", "1/512"},
			want: []string{"corrected %", "100.00%"},
		},
		{
			bin:  "ptguard-attack",
			args: nil,
			want: []string{"privilege escalation", "PTECheckFailed", "re-key"},
		},
		{
			bin:  "ptguard-attack",
			args: []string{"-compare", "-trials", "40"},
			want: []string{"pt-guard", "100.00%"},
		},
		{
			bin:  "ptguard-slowdown",
			args: []string{"-warmup", "2000", "-instructions", "4000", "-optimized=false"},
			want: []string{"xalancbmk", "AMEAN", "WORST"},
		},
		{
			bin:  "ptguard-latency",
			args: []string{"-warmup", "2000", "-instructions", "4000", "-latencies", "10"},
			want: []string{"10 cycles"},
		},
		{
			bin:  "ptguard-multicore",
			args: []string{"-warmup", "1000", "-instructions", "2000", "-same", "1", "-mix", "1"},
			want: []string{"AVERAGE", "WORST"},
		},
		{
			bin:  "ptguard-trace",
			args: []string{"-instructions", "30000", "-trials", "30"},
			want: []string{"trace lines", "coverage %"},
		},
		{
			bin:  "ptguard-ablation",
			args: []string{"-lines", "30"},
			want: []string{"zero-PTE reset", "Soft-match budget", "MAC width"},
		},
		{
			bin: "ptguard-sweep",
			args: []string{"-sections", "slowdown", "-workloads", "leela,povray",
				"-warmup", "1000", "-instructions", "2000", "-workers", "2", "-quiet"},
			want: []string{"Fig. 6", "leela", "povray", "AMEAN", "WORST"},
		},
		{
			bin: "ptguard-sweep",
			args: []string{"-sections", "correction", "-correction-lines", "30",
				"-format", "json", "-quiet"},
			want: []string{`"headers"`, "Fig. 9", "corrected %"},
		},
		{
			bin: "ptguard-mitigate",
			args: []string{"-mitigations", "none,trr", "-patterns", "classic,many-sided",
				"-trials", "1", "-acts", "4096", "-workers", "2", "-quiet"},
			want: []string{"Mitigation head-to-head", "DEFEATED", "defended", "coverage %"},
		},
		{
			bin:  "ptguard-mitigate",
			args: []string{"-list"},
			want: []string{"graphene", "oracle", "para", "half-double", "many-sided"},
		},
		{
			bin:  "ptguard-security",
			args: []string{"-mitigation", "oracle"},
			want: []string{"Residual exposure", "oracle", "no flips"},
		},
		{
			bin: "ptguard-sweep",
			args: []string{"-sections", "mitigate", "-mitigation", "oracle",
				"-mitigate-trials", "1", "-mitigate-acts", "4096", "-quiet"},
			want: []string{"Mitigation head-to-head", "oracle", "no flips"},
		},
		{
			bin: "ptguard-soak",
			args: []string{"-faults", "worker.panic", "-lines", "20", "-jobs", "6",
				"-timeout", "30s", "-quiet"},
			want: []string{"Crash-safe soak", "worker.panic", "byte-identical"},
		},
		{
			bin: "ptguard-vm",
			args: []string{"-tenants", "4", "-placements", "none,both",
				"-targets", "guest,stage2", "-trials", "1", "-pages", "8",
				"-acts", "4096", "-workers", "2", "-quiet"},
			want: []string{"Inter-VM", "guest", "stage2", "coverage %", "defended"},
		},
		{
			bin:  "ptguard-vm",
			args: []string{"-list"},
			want: []string{"none", "guest", "stage2", "both"},
		},
		{
			bin:  "ptguard-worker",
			args: []string{"-list-kinds"},
			want: []string{"ablation", "correction", "faults", "mitigate",
				"multicore", "slowdown", "synthetic", "virt"},
		},
		{
			// A whole campaign sharded over worker subprocesses; the
			// coordinator discovers ptguard-worker next to its own binary.
			bin: "ptguard-mitigate",
			args: []string{"-mitigations", "none", "-patterns", "classic",
				"-trials", "1", "-acts", "4096", "-quiet",
				"-backend", "proc", "-dist-workers", "2"},
			want: []string{"Mitigation head-to-head", "DEFEATED"},
		},
	}
	for _, tt := range tests {
		name := tt.bin + strings.Join(tt.args, "_")
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(binDir, tt.bin), tt.args...)
			out, err := cmd.Output()
			if err != nil {
				t.Fatalf("%s %v: %v", tt.bin, tt.args, err)
			}
			for _, want := range tt.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("%s output missing %q:\n%s", tt.bin, want, out)
				}
			}
		})
	}

	// Flag validation: a bad flag must exit non-zero.
	cmd := exec.Command(filepath.Join(binDir, "ptguard-report"), "-table=nonsense")
	if err := cmd.Run(); err == nil {
		t.Error("ptguard-report accepted an unknown table")
	}
	if err := exec.Command(filepath.Join(binDir, "ptguard-soak"),
		"-faults", "nonsense.point").Run(); err == nil {
		t.Error("ptguard-soak accepted an unknown fault point")
	}

	// Kill-resume determinism: a soak cycle that really SIGKILLs the
	// campaign mid-journal-write (short write included) and corrupts the
	// journal between legs must still converge to a report byte-identical
	// to the uninterrupted run, with at least one real process kill and
	// one corruption exercised per fault point.
	t.Run("ptguard-soak_kill_resume_determinism", func(t *testing.T) {
		cmd := exec.Command(filepath.Join(binDir, "ptguard-soak"),
			"-faults", "proc.kill,journal.short-write",
			"-lines", "20", "-jobs", "6", "-timeout", "30s",
			"-format", "csv", "-quiet")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("ptguard-soak: %v\n%s", err, out)
		}
		rows := strings.Split(strings.TrimSpace(string(out)), "\n")
		if len(rows) != 3 { // header + one row per fault point
			t.Fatalf("want 3 CSV rows, got %d:\n%s", len(rows), out)
		}
		for _, row := range rows[1:] {
			cells := strings.Split(row, ",")
			if len(cells) != 7 {
				t.Fatalf("malformed CSV row %q", row)
			}
			point, kills, corrupted, verdict := cells[1], cells[4], cells[5], cells[6]
			if !strings.Contains(verdict, "byte-identical") {
				t.Errorf("%s: resumed report diverged: %q", point, verdict)
			}
			if kills == "0" {
				t.Errorf("%s: cycle finished without a real process kill", point)
			}
			if corrupted == "0" {
				t.Errorf("%s: cycle finished without exercising journal corruption", point)
			}
		}
	})

	// Inter-VM kill-resume determinism: SIGKILL a journaled ptguard-vm
	// campaign mid-run, resume it against the same journal, and require
	// output byte-identical to an uninterrupted run with the same seed.
	// (If the first leg finishes before the kill lands, the resume leg is a
	// pure journal replay and the check still holds.)
	t.Run("ptguard-vm_kill_resume_determinism", func(t *testing.T) {
		dir := t.TempDir()
		vmArgs := func(journal string) []string {
			return []string{"-seed", "7", "-tenants", "4,6",
				"-targets", "guest,stage2", "-trials", "2", "-pages", "8",
				"-workers", "2", "-quiet", "-format", "csv",
				"-journal", journal}
		}
		ref, err := exec.Command(filepath.Join(binDir, "ptguard-vm"),
			vmArgs(filepath.Join(dir, "ref.jsonl"))...).Output()
		if err != nil {
			t.Fatalf("reference run: %v", err)
		}

		journal := filepath.Join(dir, "resume.jsonl")
		first := exec.Command(filepath.Join(binDir, "ptguard-vm"), vmArgs(journal)...)
		if err := first.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(400 * time.Millisecond)
		_ = first.Process.Kill()
		_ = first.Wait()

		out, err := exec.Command(filepath.Join(binDir, "ptguard-vm"), vmArgs(journal)...).Output()
		if err != nil {
			t.Fatalf("resumed run: %v", err)
		}
		if !bytes.Equal(out, ref) {
			t.Errorf("resumed report diverged from uninterrupted run:\n--- resumed\n%s\n--- reference\n%s", out, ref)
		}
	})

	// Distributed-backend determinism: the same sweep section run in-process
	// and sharded over worker subprocesses must emit byte-identical reports.
	t.Run("ptguard-sweep_proc_backend_determinism", func(t *testing.T) {
		args := []string{"-sections", "correction", "-correction-lines", "20",
			"-format", "csv", "-quiet"}
		local, err := exec.Command(filepath.Join(binDir, "ptguard-sweep"), args...).Output()
		if err != nil {
			t.Fatalf("local run: %v", err)
		}
		proc, err := exec.Command(filepath.Join(binDir, "ptguard-sweep"),
			append(args, "-backend", "proc", "-dist-workers", "3")...).Output()
		if err != nil {
			t.Fatalf("proc run: %v", err)
		}
		if !bytes.Equal(proc, local) {
			t.Errorf("proc report diverged from local:\n--- proc\n%s\n--- local\n%s", proc, local)
		}
	})

	// Distributed kill-resume determinism: SIGKILL a journaled -backend=proc
	// campaign mid-run (taking its worker subprocesses down with it), resume
	// against the same journal at a different worker count, and require
	// output byte-identical to the in-process run — the journal, not the
	// backend, is the source of truth. (If the first leg finishes before the
	// kill lands, the resume is a pure journal replay and the check holds.)
	t.Run("ptguard-faults_proc_kill_resume_determinism", func(t *testing.T) {
		dir := t.TempDir()
		faultsArgs := func(journal string, extra ...string) []string {
			return append([]string{"-seed", "7", "-models", "1bit,2bit,burst",
				"-modes", "detect,correct", "-lines", "60",
				"-quiet", "-format", "csv", "-journal", journal}, extra...)
		}
		ref, err := exec.Command(filepath.Join(binDir, "ptguard-faults"),
			faultsArgs(filepath.Join(dir, "ref.jsonl"))...).Output()
		if err != nil {
			t.Fatalf("reference run: %v", err)
		}

		journal := filepath.Join(dir, "resume.jsonl")
		first := exec.Command(filepath.Join(binDir, "ptguard-faults"),
			faultsArgs(journal, "-backend", "proc", "-dist-workers", "2")...)
		if err := first.Start(); err != nil {
			t.Fatal(err)
		}
		time.Sleep(600 * time.Millisecond)
		_ = first.Process.Kill()
		_ = first.Wait()

		out, err := exec.Command(filepath.Join(binDir, "ptguard-faults"),
			faultsArgs(journal, "-backend", "proc", "-dist-workers", "4")...).Output()
		if err != nil {
			t.Fatalf("resumed proc run: %v", err)
		}
		if !bytes.Equal(out, ref) {
			t.Errorf("resumed proc report diverged from local reference:\n--- resumed\n%s\n--- reference\n%s", out, ref)
		}
	})

	// Soak under the proc backend: the kill/corrupt/resume cycle runs its
	// disrupted legs on worker subprocesses while the reference stays
	// in-process, so byte-identical verdicts prove cross-backend identity
	// under chaos. worker.kill is coordinator-side (absorbed by
	// crash-requeue, leg still exits clean); proc.kill takes the whole leg
	// down and must show real process kills.
	t.Run("ptguard-soak_proc_backend", func(t *testing.T) {
		cmd := exec.Command(filepath.Join(binDir, "ptguard-soak"),
			"-faults", "worker.kill,proc.kill",
			"-lines", "20", "-jobs", "6", "-timeout", "30s",
			"-backend", "proc", "-dist-workers", "2",
			"-worker-bin", filepath.Join(binDir, "ptguard-worker"),
			"-format", "csv", "-quiet")
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("ptguard-soak: %v\n%s", err, out)
		}
		rows := strings.Split(strings.TrimSpace(string(out)), "\n")
		if len(rows) != 3 { // header + one row per fault point
			t.Fatalf("want 3 CSV rows, got %d:\n%s", len(rows), out)
		}
		for _, row := range rows[1:] {
			cells := strings.Split(row, ",")
			if len(cells) != 7 {
				t.Fatalf("malformed CSV row %q", row)
			}
			point, kills, verdict := cells[1], cells[4], cells[6]
			if !strings.Contains(verdict, "byte-identical") {
				t.Errorf("%s: resumed report diverged: %q", point, verdict)
			}
			if point == "proc.kill" && kills == "0" {
				t.Errorf("%s: cycle finished without a real process kill", point)
			}
		}
	})

	// Observability outputs: one sweep point with -metrics-out/-trace-out
	// must yield a JSONL time series with at least two snapshots per run
	// and a parseable Chrome trace_event document.
	t.Run("ptguard-sweep_obs_outputs", func(t *testing.T) {
		outDir := t.TempDir()
		metrics := filepath.Join(outDir, "metrics.jsonl")
		trace := filepath.Join(outDir, "trace.json")
		cmd := exec.Command(filepath.Join(binDir, "ptguard-sweep"),
			"-sections", "slowdown", "-workloads", "leela",
			"-warmup", "1000", "-instructions", "4000", "-quiet",
			"-metrics-out", metrics, "-trace-out", trace,
			"-snapshot-every", "1000")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("sweep with obs outputs: %v\n%s", err, out)
		}

		f, err := os.Open(metrics)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		perJob := map[string]int{}
		sc := bufio.NewScanner(f)
		for sc.Scan() {
			var p struct {
				Job          string            `json:"job"`
				Instructions uint64            `json:"instructions"`
				Counters     map[string]uint64 `json:"counters"`
			}
			if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
				t.Fatalf("metrics line is not JSON: %v\n%s", err, sc.Text())
			}
			if p.Counters["cpu.instructions"] == 0 {
				t.Errorf("snapshot without cpu.instructions: %s", sc.Text())
			}
			perJob[p.Job]++
		}
		if len(perJob) == 0 {
			t.Fatal("metrics file is empty")
		}
		for job, n := range perJob {
			if n < 2 {
				t.Errorf("run %q has %d snapshots, want >= 2", job, n)
			}
		}

		raw, err := os.ReadFile(trace)
		if err != nil {
			t.Fatal(err)
		}
		var doc struct {
			TraceEvents []struct {
				Ph string `json:"ph"`
			} `json:"traceEvents"`
		}
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("trace is not Chrome trace JSON: %v", err)
		}
		var complete bool
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" {
				complete = true
				break
			}
		}
		if !complete {
			t.Error("trace holds no complete events")
		}
	})
}
