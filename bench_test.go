// Benchmarks regenerating every table and figure of the paper (see
// DESIGN.md §3 for the experiment index). Each benchmark runs a scaled-down
// instance of the corresponding experiment per iteration and reports the
// headline quantity via b.ReportMetric; the cmd/ binaries run the
// full-scale versions.
package ptguard

import (
	"testing"

	"ptguard/internal/attack"
	"ptguard/internal/core"
	"ptguard/internal/mac"
	"ptguard/internal/ostable"
	"ptguard/internal/pte"
	"ptguard/internal/sim"
	"ptguard/internal/stats"
	"ptguard/internal/workload"
)

// BenchmarkTableIVProtectedBitMap covers Tables I/IV: deriving the x86_64
// protected-bit map and packing a PTE line.
func BenchmarkTableIVProtectedBitMap(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := pte.FormatX86(40)
		if err != nil {
			b.Fatal(err)
		}
		if f.MACBitsPerLine() != 96 {
			b.Fatal("wrong MAC capacity")
		}
	}
}

// BenchmarkFig6Slowdown regenerates a Fig. 6 point: the worst-case workload
// (xalancbmk) compared against the unprotected baseline.
func BenchmarkFig6Slowdown(b *testing.B) {
	prof, err := workload.ProfileByName("xalancbmk")
	if err != nil {
		b.Fatal(err)
	}
	var last sim.Comparison
	for i := 0; i < b.N; i++ {
		last, err = sim.Compare(prof, 60_000, 120_000, uint64(i), 10, []sim.Mode{sim.PTGuard})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.SlowdownPct[sim.PTGuard], "slowdown-%")
	b.ReportMetric(last.LLCMPKI, "llc-mpki")
}

// BenchmarkFig6SlowdownOptimized is the Optimized PT-Guard series of Fig. 6.
func BenchmarkFig6SlowdownOptimized(b *testing.B) {
	prof, err := workload.ProfileByName("xalancbmk")
	if err != nil {
		b.Fatal(err)
	}
	var last sim.Comparison
	for i := 0; i < b.N; i++ {
		last, err = sim.Compare(prof, 60_000, 120_000, uint64(i), 10, []sim.Mode{sim.PTGuardOptimized})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.SlowdownPct[sim.PTGuardOptimized], "slowdown-%")
}

// BenchmarkFig7LatencySweep regenerates Fig. 7's end points: slowdown at 5
// and 20 MAC cycles on a memory-intensive workload.
func BenchmarkFig7LatencySweep(b *testing.B) {
	prof, err := workload.ProfileByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	var s5, s20 float64
	for i := 0; i < b.N; i++ {
		c5, cerr := sim.Compare(prof, 60_000, 120_000, uint64(i), 5, []sim.Mode{sim.PTGuard})
		if cerr != nil {
			b.Fatal(cerr)
		}
		c20, cerr := sim.Compare(prof, 60_000, 120_000, uint64(i), 20, []sim.Mode{sim.PTGuard})
		if cerr != nil {
			b.Fatal(cerr)
		}
		s5, s20 = c5.SlowdownPct[sim.PTGuard], c20.SlowdownPct[sim.PTGuard]
	}
	b.ReportMetric(s5, "slowdown-5cyc-%")
	b.ReportMetric(s20, "slowdown-20cyc-%")
}

// BenchmarkFig8Profile regenerates Fig. 8: synthesising and classifying a
// slice of the process population.
func BenchmarkFig8Profile(b *testing.B) {
	var zero, contig float64
	for i := 0; i < b.N; i++ {
		alloc, err := ostable.NewFrameAllocator(0x1000, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		cfg := ostable.DefaultSynthConfig()
		cfg.Seed = uint64(i) + 1
		pop, err := ostable.NewPopulation(cfg, alloc)
		if err != nil {
			b.Fatal(err)
		}
		perProc, err := ostable.RunPopulation(pop, 10)
		if err != nil {
			b.Fatal(err)
		}
		sum, err := ostable.Summarize(perProc)
		if err != nil {
			b.Fatal(err)
		}
		zero, contig = sum.ZeroMean, sum.ContigMean
	}
	b.ReportMetric(zero, "zero-pte-%")
	b.ReportMetric(contig, "contig-pfn-%")
}

// BenchmarkFig9Correction regenerates a Fig. 9 point: correction rate at
// the LPDDR4 worst-case flip probability.
func BenchmarkFig9Correction(b *testing.B) {
	var last attack.CorrectionResult
	for i := 0; i < b.N; i++ {
		res, err := attack.RunCorrection(attack.CorrectionConfig{
			FlipProb: 1.0 / 128,
			Lines:    150,
			Seed:     uint64(i) + 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Miscorrected != 0 {
			b.Fatal("miscorrection observed")
		}
		last = res
	}
	b.ReportMetric(last.CorrectedPct(), "corrected-%")
	b.ReportMetric(last.CoveragePct(), "coverage-%")
}

// BenchmarkSecurityModel regenerates the §VI-E analytics (Eqs. 1 and 2).
func BenchmarkSecurityModel(b *testing.B) {
	var nEff float64
	for i := 0; i < b.N; i++ {
		var err error
		nEff, err = mac.EffectiveMACBits(96, 4, mac.GMaxPaper)
		if err != nil {
			b.Fatal(err)
		}
		if _, err = mac.UncorrectableMACProb(96, 4, 0.01); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(nEff, "effective-mac-bits")
}

// BenchmarkDetectionCoverage regenerates the §VI-F / §VIII comparison:
// PT-Guard vs prior defenses on identical fault patterns.
func BenchmarkDetectionCoverage(b *testing.B) {
	var last attack.CoverageResult
	for i := 0; i < b.N; i++ {
		res, err := attack.RunCoverage(uint64(i)+1, 60, 8)
		if err != nil {
			b.Fatal(err)
		}
		if res.PTGuardDetected != res.Trials {
			b.Fatal("PT-Guard missed a fault")
		}
		last = res
	}
	b.ReportMetric(100, "ptguard-detect-%")
	b.ReportMetric(float64(last.MonotonicUnprotected)/float64(last.Trials)*100, "monotonic-unprot-%")
}

// BenchmarkMulticore regenerates §VII-C: a 4-core SAME mix under PT-Guard.
func BenchmarkMulticore(b *testing.B) {
	prof, err := workload.ProfileByName("lbm")
	if err != nil {
		b.Fatal(err)
	}
	mix := sim.MulticoreMix{Name: "lbm-SAME", Workloads: []workload.Profile{prof, prof, prof, prof}}
	var last sim.MulticoreResult
	for i := 0; i < b.N; i++ {
		last, err = sim.CompareMulticore(mix, 30_000, 60_000, uint64(i), 10)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(last.SlowdownPct, "slowdown-%")
}

// BenchmarkGuardWrite measures the mechanism's write path (pattern match +
// MAC embed), the §V-E energy discussion's unit of work.
func BenchmarkGuardWrite(b *testing.B) {
	g := benchGuard(b)
	line := benchPTELine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.OnWrite(line, uint64(i)<<6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGuardWalkRead measures the verification path charged on every
// page-table walk (the 10-cycle MAC unit's software stand-in).
func BenchmarkGuardWalkRead(b *testing.B) {
	g := benchGuard(b)
	line := benchPTELine()
	res, err := g.OnWrite(line, 0x4000)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rd := g.OnRead(res.Line, 0x4000, true); rd.CheckFailed {
			b.Fatal("clean line failed")
		}
	}
}

func benchGuard(b *testing.B) *core.Guard {
	b.Helper()
	f, err := pte.FormatX86(40)
	if err != nil {
		b.Fatal(err)
	}
	key := make([]byte, mac.KeySize)
	r := stats.NewRNG(0xBE7C)
	for i := range key {
		key[i] = byte(r.Uint64())
	}
	g, err := core.NewGuard(core.Config{Format: f, Key: key})
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchPTELine() pte.Line {
	var l pte.Line
	for i := range l {
		l[i] = pte.Entry(0x107).WithPFN(0xBEEF00 + uint64(i))
	}
	return l
}
