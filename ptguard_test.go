package ptguard

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

func demoKey() []byte {
	key := make([]byte, KeySize)
	for i := range key {
		key[i] = byte(i*7 + 3)
	}
	return key
}

// demoPTELine builds a kernel-style PTE line image: eight present entries
// with contiguous PFNs and the pattern bits zeroed.
func demoPTELine(basePFN uint64) [LineBytes]byte {
	var line [LineBytes]byte
	for i := 0; i < 8; i++ {
		entry := uint64(0x7) | (basePFN+uint64(i))<<12 // P|W|U
		binary.LittleEndian.PutUint64(line[i*8:], entry)
	}
	return line
}

func TestPublicRoundTrip(t *testing.T) {
	g, err := New(demoKey())
	if err != nil {
		t.Fatal(err)
	}
	line := demoPTELine(0x1234)
	img, info, err := g.ProtectOnWrite(line, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Protected {
		t.Fatal("PTE line not protected")
	}
	got, winfo, err := g.VerifyWalkRead(img, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if got != line {
		t.Error("round trip mismatch")
	}
	if winfo.Corrected {
		t.Error("clean line reported corrected")
	}
}

func TestPublicDetection(t *testing.T) {
	g, err := New(demoKey())
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := g.ProtectOnWrite(demoPTELine(0x9999), 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	img[2] ^= 0x04 // flip the user-accessible bit of PTE 0
	if _, _, err := g.VerifyWalkRead(img, 0x8000); !errors.Is(err, ErrIntegrityViolation) {
		t.Errorf("err = %v, want ErrIntegrityViolation", err)
	}
}

func TestPublicCorrection(t *testing.T) {
	g, err := New(demoKey(), WithCorrection(4))
	if err != nil {
		t.Fatal(err)
	}
	line := demoPTELine(0x4242)
	img, _, err := g.ProtectOnWrite(line, 0xC000)
	if err != nil {
		t.Fatal(err)
	}
	img[13] ^= 0x10 // PFN bit flip in PTE 1
	got, info, err := g.VerifyWalkRead(img, 0xC000)
	if err != nil {
		t.Fatalf("correctable flip rejected: %v", err)
	}
	if !info.Corrected || got != line {
		t.Error("correction failed or wrong payload")
	}
	if g.MaxCorrectionGuesses() != 372 {
		t.Errorf("GMax = %d, want 372", g.MaxCorrectionGuesses())
	}
}

func TestPublicDataPath(t *testing.T) {
	g, err := New(demoKey(), WithIdentifier(0xA5A5A5A5A5A5A5), WithZeroMAC())
	if err != nil {
		t.Fatal(err)
	}
	if g.SRAMBytes() != 71 {
		t.Errorf("SRAM = %d, want 71 (§V-E)", g.SRAMBytes())
	}
	var data [LineBytes]byte
	data[0] = 0xFF
	data[6] = 0xEE // non-zero MAC-field byte: not a pattern match
	img, info, err := g.ProtectOnWrite(data, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if info.Protected {
		t.Error("dense data line wrongly protected")
	}
	out, stripped := g.FilterDataRead(img, 0x2000)
	if stripped || out != data {
		t.Error("data line altered on read")
	}
}

func TestPublicOptionValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil key accepted")
	}
	if _, err := New(demoKey(), WithPhysAddrBits(99)); err == nil {
		t.Error("bad phys bits accepted")
	}
	if _, err := New(demoKey(), WithMACWidth(1000)); err == nil {
		t.Error("bad MAC width accepted")
	}
}

func TestPublicSecurityModel(t *testing.T) {
	nEff, err := EffectiveMACBits(96, 4, 372)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nEff-66) > 1 {
		t.Errorf("n_eff = %v, want ~66", nEff)
	}
	p, err := UncorrectableMACProb(96, 4, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p >= 0.01 {
		t.Errorf("uncorrectable = %v, want < 1%%", p)
	}
	if y := AttackYears(66, 50); y < 1e4 {
		t.Errorf("attack years = %v, want > 1e4", y)
	}
}

func TestPublicWorkloads(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 25 {
		t.Fatalf("workloads = %d, want 25", len(names))
	}
	res, err := RunWorkload("leela", ModeBaseline, 20_000, 50_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Instructions != 50_000 || res.IPC <= 0 {
		t.Errorf("result = %+v", res)
	}
	if _, err := RunWorkload("doom", ModeBaseline, 0, 1000, 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestPublicCompareWorkload(t *testing.T) {
	cmp, err := CompareWorkload("xalancbmk", 50_000, 100_000, 7, 0, ModePTGuard)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.SlowdownPct[ModePTGuard] <= 0 {
		t.Errorf("slowdown = %v, want positive", cmp.SlowdownPct[ModePTGuard])
	}
}

func TestPublicAttackDemos(t *testing.T) {
	out, err := DemoPrivilegeEscalation(false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ExploitSucceeded {
		t.Errorf("unprotected exploit failed: %s", out.Description)
	}
	out, err = DemoPrivilegeEscalation(true, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected || out.ExploitSucceeded {
		t.Errorf("PT-Guard demo outcome: %+v", out)
	}
	out, err = DemoMetadataAttack(true, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Detected {
		t.Errorf("metadata attack not detected: %s", out.Description)
	}
	if _, err := DemoMetadataAttack(true, 99, 1); err == nil {
		t.Error("bad bit accepted")
	}
}

func TestPublicQARMA64Option(t *testing.T) {
	g, err := New(demoKey(), WithQARMA64MAC())
	if err != nil {
		t.Fatal(err)
	}
	line := demoPTELine(0x1111)
	img, info, err := g.ProtectOnWrite(line, 0x6000)
	if err != nil || !info.Protected {
		t.Fatalf("protect: %v", err)
	}
	got, _, err := g.VerifyWalkRead(img, 0x6000)
	if err != nil || got != line {
		t.Fatal("QARMA-64 public round trip failed")
	}
	img[0] ^= 2
	if _, _, err := g.VerifyWalkRead(img, 0x6000); !errors.Is(err, ErrIntegrityViolation) {
		t.Error("QARMA-64 public guard missed tampering")
	}
}
