package ostable

import (
	"errors"
	"fmt"
	"sort"

	"ptguard/internal/pte"
)

// tableLevels is the x86_64 page-table depth.
const tableLevels = 4

// linesPerTable is the number of cachelines in one 4 KB table page.
const linesPerTable = pte.PageSize / pte.LineBytes

// PageTables builds and holds one process's 4-level x86_64 page tables in a
// shadow store of 64-byte lines, exactly as the trusted kernel would write
// them to memory (unused PFN bits and reserved bits zeroed, so PT-Guard's
// bit-pattern match succeeds on every table line).
// Not safe for concurrent use.
type PageTables struct {
	alloc *FrameAllocator
	root  uint64 // physical address of the PML4 page

	// lines maps line-aligned physical addresses to table content for
	// every allocated table page.
	lines map[uint64]pte.Line
	// tablePages records allocated table page frames per level for
	// profiling and teardown; tablePages[3] are leaf PT pages.
	tablePages [tableLevels][]uint64

	// owned records data frames whose lifetime is tied to this process
	// (used by the population synthesiser for teardown).
	owned []uint64

	// parents maps each non-root table page's base address to the
	// physical address of the parent entry referencing it, enabling the
	// §IV-G row-remap recovery.
	parents map[uint64]uint64

	mapped uint64 // leaf mappings installed
}

// NewPageTables allocates an empty root table from alloc.
func NewPageTables(alloc *FrameAllocator) (*PageTables, error) {
	if alloc == nil {
		return nil, errors.New("ostable: nil allocator")
	}
	p := &PageTables{
		alloc:   alloc,
		lines:   make(map[uint64]pte.Line),
		parents: make(map[uint64]uint64),
	}
	rootPFN, err := p.allocTable(0)
	if err != nil {
		return nil, err
	}
	p.root = rootPFN << pte.PageShift
	return p, nil
}

// Root returns the physical address of the PML4 (the CR3 value).
func (p *PageTables) Root() uint64 { return p.root }

// MappedPages returns the number of installed leaf mappings.
func (p *PageTables) MappedPages() uint64 { return p.mapped }

// LeafTablePages returns the physical page addresses of all leaf PT pages.
func (p *PageTables) LeafTablePages() []uint64 {
	out := make([]uint64, len(p.tablePages[tableLevels-1]))
	copy(out, p.tablePages[tableLevels-1])
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TablePageCount returns the number of table pages at each level.
func (p *PageTables) TablePageCount() [tableLevels]int {
	var n [tableLevels]int
	for l := range p.tablePages {
		n[l] = len(p.tablePages[l])
	}
	return n
}

func (p *PageTables) allocTable(level int) (uint64, error) {
	pfn, err := p.alloc.AllocFrame()
	if err != nil {
		return 0, err
	}
	base := pfn << pte.PageShift
	for i := 0; i < linesPerTable; i++ {
		p.lines[base+uint64(i*pte.LineBytes)] = pte.Line{}
	}
	p.tablePages[level] = append(p.tablePages[level], base)
	return pfn, nil
}

func (p *PageTables) entry(ea uint64) pte.Entry {
	line := p.lines[ea&^uint64(pte.LineBytes-1)]
	return line[ea/8%pte.PTEsPerLine]
}

func (p *PageTables) setEntry(ea uint64, e pte.Entry) {
	key := ea &^ uint64(pte.LineBytes-1)
	line := p.lines[key]
	line[ea/8%pte.PTEsPerLine] = e
	p.lines[key] = line
}

func entryAddress(tableBase, vaddr uint64, level int) uint64 {
	shift := uint(12 + 9*(tableLevels-1-level))
	return tableBase + (vaddr>>shift&0x1FF)*8
}

// tableFlags are the flags the kernel sets on intermediate entries.
var tableFlags = pte.Entry(0).
	SetBit(pte.BitPresent, true).
	SetBit(pte.BitWritable, true).
	SetBit(pte.BitUserAccessible, true)

// Map installs vaddr -> pfn with the given leaf entry flags, creating
// intermediate tables on demand.
func (p *PageTables) Map(vaddr, pfn uint64, flags pte.Entry) error {
	if vaddr%pte.PageSize != 0 {
		return fmt.Errorf("ostable: unaligned vaddr %#x", vaddr)
	}
	base := p.root
	for level := 0; level < tableLevels-1; level++ {
		ea := entryAddress(base, vaddr, level)
		e := p.entry(ea)
		if !e.Present() {
			newPFN, err := p.allocTable(level + 1)
			if err != nil {
				return err
			}
			e = tableFlags.WithPFN(newPFN)
			p.setEntry(ea, e)
			p.parents[newPFN<<pte.PageShift] = ea
		}
		base = e.PFN() << pte.PageShift
	}
	leafEA := entryAddress(base, vaddr, tableLevels-1)
	if p.entry(leafEA).Present() {
		return fmt.Errorf("ostable: vaddr %#x already mapped", vaddr)
	}
	p.setEntry(leafEA, flags.SetBit(pte.BitPresent, true).WithPFN(pfn))
	p.mapped++
	return nil
}

// HugePageSize is the 2 MB large-page size (PDE with the PS bit set).
const HugePageSize = 2 << 20

// hugePFNSpan is the number of 4 KB frames a huge page covers.
const hugePFNSpan = HugePageSize / pte.PageSize

// MapHuge installs a 2 MB mapping at the PD level (§III notes larger pages
// reduce page-table-walk frequency). vaddr must be 2 MB aligned and pfn
// must be the 2 MB-aligned base frame.
func (p *PageTables) MapHuge(vaddr, pfn uint64, flags pte.Entry) error {
	if vaddr%HugePageSize != 0 {
		return fmt.Errorf("ostable: unaligned huge vaddr %#x", vaddr)
	}
	if pfn%hugePFNSpan != 0 {
		return fmt.Errorf("ostable: unaligned huge pfn %#x", pfn)
	}
	base := p.root
	for level := 0; level < tableLevels-2; level++ {
		ea := entryAddress(base, vaddr, level)
		e := p.entry(ea)
		if !e.Present() {
			newPFN, err := p.allocTable(level + 1)
			if err != nil {
				return err
			}
			e = tableFlags.WithPFN(newPFN)
			p.setEntry(ea, e)
			p.parents[newPFN<<pte.PageShift] = ea
		}
		base = e.PFN() << pte.PageShift
	}
	pdEA := entryAddress(base, vaddr, tableLevels-2)
	if p.entry(pdEA).Present() {
		return fmt.Errorf("ostable: vaddr %#x already mapped", vaddr)
	}
	leaf := flags.
		SetBit(pte.BitPresent, true).
		SetBit(pte.BitHugePage, true).
		WithPFN(pfn)
	p.setEntry(pdEA, leaf)
	p.mapped += hugePFNSpan
	return nil
}

// Translate performs a software walk, mirroring what the hardware walker
// should conclude. Huge mappings resolve to the covering 4 KB frame.
func (p *PageTables) Translate(vaddr uint64) (uint64, bool) {
	base := p.root
	for level := 0; level < tableLevels; level++ {
		e := p.entry(entryAddress(base, vaddr&^uint64(pte.PageSize-1), level))
		if !e.Present() {
			return 0, false
		}
		if level == tableLevels-2 && e.Bit(pte.BitHugePage) {
			return e.PFN() + vaddr>>pte.PageShift&(hugePFNSpan-1), true
		}
		if level == tableLevels-1 {
			return e.PFN(), true
		}
		base = e.PFN() << pte.PageShift
	}
	return 0, false
}

// Remap points an existing 4 KB mapping at a new frame (the kernel moving a
// page, e.g. during compaction or after a fault). It returns the physical
// address of the leaf PTE line that changed, so callers can write the
// updated line back through the memory controller.
func (p *PageTables) Remap(vaddr, newPFN uint64) (uint64, error) {
	ea, ok := p.LeafEntryAddr(vaddr)
	if !ok {
		return 0, fmt.Errorf("ostable: vaddr %#x not mapped", vaddr)
	}
	e := p.entry(ea)
	if !e.Present() {
		return 0, fmt.Errorf("ostable: vaddr %#x not present", vaddr)
	}
	p.setEntry(ea, e.WithPFN(newPFN))
	return ea &^ uint64(pte.LineBytes-1), nil
}

// LineAt returns the architectural content of the table cacheline at addr,
// ok=false when addr is not a table line of this process.
func (p *PageTables) LineAt(addr uint64) (pte.Line, bool) {
	line, ok := p.lines[addr&^uint64(pte.LineBytes-1)]
	return line, ok
}

// LeafEntryAddr returns the physical address of the leaf PTE mapping vaddr,
// ok=false when the walk hits a non-present entry. Attack experiments use
// it to aim bit-flips at a victim's translation.
func (p *PageTables) LeafEntryAddr(vaddr uint64) (uint64, bool) {
	base := p.root
	va := vaddr &^ uint64(pte.PageSize-1)
	for level := 0; level < tableLevels-1; level++ {
		e := p.entry(entryAddress(base, va, level))
		if !e.Present() {
			return 0, false
		}
		base = e.PFN() << pte.PageShift
	}
	return entryAddress(base, va, tableLevels-1), true
}

// Lines calls fn for every table cacheline (address, content), in address
// order. Used to flush the tables into simulated DRAM through the memory
// controller, which embeds the MACs; the deterministic order keeps DRAM
// row-buffer state reproducible across runs.
func (p *PageTables) Lines(fn func(addr uint64, line pte.Line)) {
	addrs := make([]uint64, 0, len(p.lines))
	for addr := range p.lines {
		addrs = append(addrs, addr)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		fn(addr, p.lines[addr])
	}
}

// LeafLines calls fn for every cacheline of every leaf PT page in address
// order: the PTE lines whose locality Fig. 8 profiles and Fig. 9 corrupts.
func (p *PageTables) LeafLines(fn func(addr uint64, line pte.Line)) {
	for _, page := range p.LeafTablePages() {
		for i := 0; i < linesPerTable; i++ {
			addr := page + uint64(i*pte.LineBytes)
			fn(addr, p.lines[addr])
		}
	}
}

// Own ties n data frames starting at pfn to this process's lifetime, so
// Free returns them to the allocator.
func (p *PageTables) Own(pfn uint64, n int) {
	for i := 0; i < n; i++ {
		p.owned = append(p.owned, pfn+uint64(i))
	}
}

// Free releases every table page — and every owned data frame — back to the
// allocator (process teardown in the streaming population synthesiser).
func (p *PageTables) Free() {
	for level := range p.tablePages {
		for _, page := range p.tablePages[level] {
			// Errors cannot occur for frames we allocated.
			_ = p.alloc.FreeOrder(page>>pte.PageShift, 0)
		}
		p.tablePages[level] = nil
	}
	for _, pfn := range p.owned {
		_ = p.alloc.FreeOrder(pfn, 0)
	}
	p.owned = nil
	p.lines = make(map[uint64]pte.Line)
}

// PageLines calls fn for each of the 64 cachelines of the table page at
// base, in address order. Recovery uses it to re-flush a migrated page
// through the memory controller.
func (p *PageTables) PageLines(base uint64, fn func(addr uint64, line pte.Line)) {
	base &^= uint64(pte.PageSize - 1)
	for i := 0; i < linesPerTable; i++ {
		addr := base + uint64(i*pte.LineBytes)
		if line, ok := p.lines[addr]; ok {
			fn(addr, line)
		}
	}
}

// ParentEntryAddr returns the physical address of the parent entry
// referencing the table page at base, ok=false for the root (which has no
// parent and cannot be remapped).
func (p *PageTables) ParentEntryAddr(base uint64) (uint64, bool) {
	ea, ok := p.parents[base&^uint64(pte.PageSize-1)]
	return ea, ok
}

// RemapTablePage implements the OS response of §IV-G: after PT-Guard
// reports bit-flips in a row, the kernel migrates the affected table page
// to a fresh frame and repoints the parent entry, taking the vulnerable row
// out of service. It returns the new page base address. The caller must
// re-flush the process's table lines to memory and shoot down stale TLB/MMU
// cache state.
func (p *PageTables) RemapTablePage(oldPage uint64) (uint64, error) {
	oldPage &^= uint64(pte.PageSize - 1)
	parentEA, ok := p.parents[oldPage]
	if !ok {
		return 0, fmt.Errorf("ostable: %#x is not a remappable table page", oldPage)
	}
	newPFN, err := p.alloc.AllocFrame()
	if err != nil {
		return 0, err
	}
	newPage := newPFN << pte.PageShift
	// Move the 64 cachelines of content.
	for i := 0; i < linesPerTable; i++ {
		off := uint64(i * pte.LineBytes)
		p.lines[newPage+off] = p.lines[oldPage+off]
		delete(p.lines, oldPage+off)
	}
	// Repoint the parent entry.
	parent := p.entry(parentEA)
	p.setEntry(parentEA, parent.WithPFN(newPFN))
	// Fix bookkeeping: the page's slot in tablePages, its own parent
	// record, and the parent records of its children (their parent EA
	// moved with the page).
	for level := range p.tablePages {
		for i, page := range p.tablePages[level] {
			if page == oldPage {
				p.tablePages[level][i] = newPage
			}
		}
	}
	delete(p.parents, oldPage)
	p.parents[newPage] = parentEA
	for child, ea := range p.parents {
		if ea >= oldPage && ea < oldPage+pte.PageSize {
			p.parents[child] = newPage + (ea - oldPage)
		}
	}
	// The poisoned frame stays allocated forever: the kernel quarantines
	// the vulnerable row rather than returning it to the pool.
	return newPage, nil
}
