package ostable

import (
	"errors"
	"sort"

	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// ProcessStats classifies one process's leaf PTEs into the three Fig. 8
// categories.
type ProcessStats struct {
	// Total is the number of leaf PTE slots (including zeros).
	Total int
	// Zero counts all-zero PTEs.
	Zero int
	// Contiguous counts PTEs whose PFN is ±1 of a nearest non-zero
	// neighbour within the same cacheline.
	Contiguous int
	// NonContiguous counts the remaining non-zero PTEs.
	NonContiguous int
	// UniformFlagLines / NonZeroLines measure per-line flag uniformity
	// (Insight 3: >99% of lines have identical flags on non-zero PTEs).
	UniformFlagLines int
	NonZeroLines     int
}

// ZeroPct returns the zero-PTE percentage.
func (s ProcessStats) ZeroPct() float64 { return pct(s.Zero, s.Total) }

// ContiguousPct returns the contiguous-PFN percentage.
func (s ProcessStats) ContiguousPct() float64 { return pct(s.Contiguous, s.Total) }

// NonContiguousPct returns the non-contiguous-PFN percentage.
func (s ProcessStats) NonContiguousPct() float64 { return pct(s.NonContiguous, s.Total) }

// FlagUniformityPct returns the share of non-zero lines with uniform flags.
func (s ProcessStats) FlagUniformityPct() float64 { return pct(s.UniformFlagLines, s.NonZeroLines) }

func pct(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return 100 * float64(n) / float64(d)
}

// ProfileProcess classifies every leaf PTE of the process (the Fig. 8
// methodology: nearest non-zero neighbour within the same cacheline).
func ProfileProcess(pt *PageTables) ProcessStats {
	var s ProcessStats
	pt.LeafLines(func(_ uint64, line pte.Line) {
		s.Total += pte.PTEsPerLine
		flagsSeen := map[uint64]bool{}
		nonZero := 0
		for i, e := range line {
			if e == 0 {
				s.Zero++
				continue
			}
			nonZero++
			flagsSeen[uint64(e)&0x1FF|uint64(e)>>59<<9] = true
			if isContiguous(line, i) {
				s.Contiguous++
			} else {
				s.NonContiguous++
			}
		}
		if nonZero > 0 {
			s.NonZeroLines++
			if len(flagsSeen) == 1 {
				s.UniformFlagLines++
			}
		}
	})
	return s
}

// isContiguous reports whether entry i's PFN is ±1 of its nearest non-zero
// neighbour on either side within the line.
func isContiguous(line pte.Line, i int) bool {
	pfn := int64(line[i].PFN())
	for j := i - 1; j >= 0; j-- {
		if line[j] != 0 {
			d := pfn - int64(line[j].PFN())
			if d == 1 || d == -1 {
				return true
			}
			break
		}
	}
	for j := i + 1; j < pte.PTEsPerLine; j++ {
		if line[j] != 0 {
			d := pfn - int64(line[j].PFN())
			if d == 1 || d == -1 {
				return true
			}
			break
		}
	}
	return false
}

// PopulationSummary aggregates per-process percentages, matching the
// paper's n=623 presentation (mean and standard error per category).
type PopulationSummary struct {
	Processes   int
	TotalPTEs   int
	ZeroMean    float64
	ZeroStdErr  float64
	ContigMean  float64
	ContigSE    float64
	NonContMean float64
	FlagUniform float64
	// PerProcess is sorted by contiguous percentage, the Fig. 8 x-axis.
	PerProcess []ProcessStats
}

// Summarize aggregates process profiles.
func Summarize(perProc []ProcessStats) (PopulationSummary, error) {
	if len(perProc) == 0 {
		return PopulationSummary{}, errors.New("ostable: empty population")
	}
	zero := make([]float64, len(perProc))
	contig := make([]float64, len(perProc))
	nonc := make([]float64, len(perProc))
	flag := make([]float64, 0, len(perProc))
	total := 0
	for i, s := range perProc {
		zero[i] = s.ZeroPct()
		contig[i] = s.ContiguousPct()
		nonc[i] = s.NonContiguousPct()
		if s.NonZeroLines > 0 {
			flag = append(flag, s.FlagUniformityPct())
		}
		total += s.Total
	}
	sorted := make([]ProcessStats, len(perProc))
	copy(sorted, perProc)
	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].ContiguousPct() > sorted[j].ContiguousPct()
	})
	zm, _ := stats.Mean(zero)
	cm, _ := stats.Mean(contig)
	nm, _ := stats.Mean(nonc)
	fm, _ := stats.Mean(flag)
	sum := PopulationSummary{
		Processes:   len(perProc),
		TotalPTEs:   total,
		ZeroMean:    zm,
		ContigMean:  cm,
		NonContMean: nm,
		FlagUniform: fm,
		PerProcess:  sorted,
	}
	if len(perProc) >= 2 {
		sum.ZeroStdErr, _ = stats.StdErr(zero)
		sum.ContigSE, _ = stats.StdErr(contig)
	}
	return sum, nil
}

// RunPopulation streams n synthetic processes: build, profile, free. The
// shared allocator keeps inter-process fragmentation realistic while memory
// stays bounded.
func RunPopulation(p *Population, n int) ([]ProcessStats, error) {
	if n <= 0 {
		return nil, errors.New("ostable: population size must be positive")
	}
	out := make([]ProcessStats, 0, n)
	for i := 0; i < n; i++ {
		pt, err := p.SynthesizeProcess()
		if err != nil {
			return nil, err
		}
		out = append(out, ProfileProcess(pt))
		pt.Free()
	}
	return out, nil
}
