package ostable

import (
	"errors"
	"fmt"

	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// SynthConfig tunes the synthetic process population. The defaults are
// calibrated so the population reproduces the paper's measured PTE value
// locality (§VI-B): 64.13% zero PTEs, 23.73% contiguous PFNs, and >99%
// flag uniformity within PTE cachelines.
type SynthConfig struct {
	// Seed drives the deterministic generator.
	Seed uint64
	// MinVMAs/MaxVMAs bound the memory regions per process (text, heap,
	// stacks, libraries, anonymous mmaps).
	MinVMAs, MaxVMAs int
	// MaxVMAPages caps a region's size; sizes are log-uniform in
	// [1, MaxVMAPages], giving the many small and few huge regions of
	// real processes.
	MaxVMAPages int
	// FragProb is the probability that a physical allocation cluster is
	// a single frame rather than a buddy run; it controls the
	// non-contiguous PFN fraction.
	FragProb float64
	// MaxClusterPages caps a contiguous buddy run.
	MaxClusterPages int
}

// DefaultSynthConfig returns the calibrated population parameters.
func DefaultSynthConfig() SynthConfig {
	return SynthConfig{
		MinVMAs:         20,
		MaxVMAs:         120,
		MaxVMAPages:     1400,
		FragProb:        0.82,
		MaxClusterPages: 16,
	}
}

func (c SynthConfig) validate() error {
	if c.MinVMAs <= 0 || c.MaxVMAs < c.MinVMAs {
		return fmt.Errorf("ostable: bad VMA bounds [%d, %d]", c.MinVMAs, c.MaxVMAs)
	}
	if c.MaxVMAPages <= 0 {
		return errors.New("ostable: MaxVMAPages must be positive")
	}
	if c.FragProb < 0 || c.FragProb > 1 {
		return errors.New("ostable: FragProb outside [0, 1]")
	}
	if c.MaxClusterPages < 2 {
		return errors.New("ostable: MaxClusterPages must be >= 2")
	}
	return nil
}

// vmaFlagSets are the per-region leaf flag archetypes: writable data,
// read-execute text, read-only data, and stack. Flags are constant within a
// region, which is what produces the paper's >99% per-line flag uniformity.
var vmaFlagSets = []pte.Entry{
	pte.Entry(0).SetBit(pte.BitWritable, true).SetBit(pte.BitUserAccessible, true).SetBit(pte.BitNX, true),
	pte.Entry(0).SetBit(pte.BitUserAccessible, true),
	pte.Entry(0).SetBit(pte.BitUserAccessible, true).SetBit(pte.BitNX, true),
	pte.Entry(0).SetBit(pte.BitWritable, true).SetBit(pte.BitUserAccessible, true).SetBit(pte.BitNX, true).SetBit(pte.BitGlobal, false),
}

// Population synthesises processes one at a time against a shared frame
// allocator, so physical fragmentation evolves across processes as on a
// live system.
type Population struct {
	cfg   SynthConfig
	alloc *FrameAllocator
	rng   *stats.RNG

	// scatter holds single frames handed out for fragmented allocations.
	// A live system's free lists are scrambled by churn, so two back-to-
	// back single-frame allocations rarely return adjacent PFNs; a fresh
	// buddy allocator would. The pool refills from a buddy block whose
	// frames are emitted in a stride permutation to break adjacency.
	scatter []uint64
}

// NewPopulation builds a population over the given allocator.
func NewPopulation(cfg SynthConfig, alloc *FrameAllocator) (*Population, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if alloc == nil {
		return nil, errors.New("ostable: nil allocator")
	}
	return &Population{cfg: cfg, alloc: alloc, rng: stats.NewRNG(cfg.Seed)}, nil
}

// logUniform returns a value in [1, max] distributed uniformly in log space.
func (p *Population) logUniform(max int) int {
	if max <= 1 {
		return 1
	}
	lo, hi := 0.0, float64(bitsLen(max))
	e := lo + p.rng.Float64()*(hi-lo)
	v := 1 << uint(e)
	extra := p.rng.Intn(v) // smooth within the octave
	n := v + extra
	if n > max {
		n = max
	}
	return n
}

func bitsLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}

// SynthesizeProcess builds one process's page tables. Virtual regions are
// placed at randomised, page-table-page-misaligned bases (ASLR), so leaf PT
// pages are partially filled and zero PTEs dominate, as on real systems.
func (p *Population) SynthesizeProcess() (*PageTables, error) {
	pt, err := NewPageTables(p.alloc)
	if err != nil {
		return nil, err
	}
	nVMAs := p.cfg.MinVMAs + p.rng.Intn(p.cfg.MaxVMAs-p.cfg.MinVMAs+1)
	// Partition the canonical user half by VMA index to avoid overlap:
	// each VMA gets a 1 GB-aligned slot with a random offset inside.
	for v := 0; v < nVMAs; v++ {
		pages := p.logUniform(p.cfg.MaxVMAPages)
		slot := uint64(v+1) << 30
		offset := uint64(p.rng.Intn(1<<17)) * pte.PageSize
		base := slot + offset
		if err := p.populateVMA(pt, base, pages, vmaFlagSets[p.rng.Intn(len(vmaFlagSets))]); err != nil {
			if errors.Is(err, ErrOutOfMemory) {
				break // partially built process is still valid
			}
			return nil, err
		}
	}
	return pt, nil
}

// populateVMA maps `pages` consecutive virtual pages starting at base,
// backing them with physical clusters: with probability FragProb a single
// frame, otherwise a contiguous buddy run of 2..MaxClusterPages frames.
func (p *Population) populateVMA(pt *PageTables, base uint64, pages int, flags pte.Entry) error {
	vaddr := base
	remaining := pages
	for remaining > 0 {
		cluster := 1
		if !p.rng.Bernoulli(p.cfg.FragProb) {
			cluster = 2 + p.rng.Intn(p.cfg.MaxClusterPages-1)
		}
		if cluster > remaining {
			cluster = remaining
		}
		var pfn uint64
		var err error
		if cluster == 1 {
			pfn, err = p.scatterFrame()
		} else {
			pfn, err = p.alloc.AllocContiguous(cluster)
		}
		if err != nil {
			return err
		}
		pt.Own(pfn, cluster)
		for i := 0; i < cluster; i++ {
			if err := pt.Map(vaddr, pfn+uint64(i), flags); err != nil {
				return err
			}
			vaddr += pte.PageSize
		}
		remaining -= cluster
	}
	return nil
}

// scatterFrame returns a single frame from the fragmented pool.
func (p *Population) scatterFrame() (uint64, error) {
	if len(p.scatter) == 0 {
		const order = 6 // 64-frame refill
		block, err := p.alloc.AllocOrder(order)
		if err != nil {
			// Memory too fragmented for a block: fall back to
			// whatever single frame remains.
			return p.alloc.AllocFrame()
		}
		n := 1 << order
		// Stride 17 is coprime with 64: a permutation where
		// successive frames differ by 17 PFNs.
		for i := 0; i < n; i++ {
			p.scatter = append(p.scatter, block+uint64(i*17%n))
		}
	}
	pfn := p.scatter[len(p.scatter)-1]
	p.scatter = p.scatter[:len(p.scatter)-1]
	return pfn, nil
}
