package ostable

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestAllocExactMaxOrder covers the largest-block edge: an allocator sized
// to exactly one MaxOrder block serves exactly one MaxOrder allocation, and
// freeing it restores full capacity.
func TestAllocExactMaxOrder(t *testing.T) {
	const frames = 1 << MaxOrder
	a, err := NewFrameAllocator(0, frames)
	if err != nil {
		t.Fatal(err)
	}
	block, err := a.AllocOrder(MaxOrder)
	if err != nil {
		t.Fatal(err)
	}
	if block != 0 {
		t.Fatalf("block = %#x, want 0", block)
	}
	if a.FreeFrames() != 0 {
		t.Fatalf("free = %d, want 0", a.FreeFrames())
	}
	if _, err := a.AllocFrame(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("alloc on exhausted allocator = %v, want ErrOutOfMemory", err)
	}
	if err := a.FreeOrder(block, MaxOrder); err != nil {
		t.Fatal(err)
	}
	if a.FreeFrames() != frames {
		t.Fatalf("free after release = %d, want %d", a.FreeFrames(), frames)
	}
	if _, err := a.AllocOrder(MaxOrder); err != nil {
		t.Fatalf("re-alloc after free: %v", err)
	}
}

// TestAllocOOMAtEveryOrder exhausts the allocator and checks every order
// reports ErrOutOfMemory (not a panic, not a wrong block).
func TestAllocOOMAtEveryOrder(t *testing.T) {
	a, err := NewFrameAllocator(0, 1<<MaxOrder)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.AllocOrder(MaxOrder); err != nil {
		t.Fatal(err)
	}
	for order := 0; order <= MaxOrder; order++ {
		if _, err := a.AllocOrder(order); !errors.Is(err, ErrOutOfMemory) {
			t.Fatalf("order %d on exhausted allocator = %v, want ErrOutOfMemory", order, err)
		}
	}
	// A small, unaligned arena can never satisfy a MaxOrder request.
	small, err := NewFrameAllocator(3, (1<<MaxOrder)-1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := small.AllocOrder(MaxOrder); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("oversized order on small arena = %v, want ErrOutOfMemory", err)
	}
	// Order bounds are validation errors, not OOM.
	if _, err := a.AllocOrder(MaxOrder + 1); err == nil || errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("order beyond MaxOrder = %v, want a validation error", err)
	}
	if _, err := a.AllocOrder(-1); err == nil || errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("negative order = %v, want a validation error", err)
	}
}

// TestSplitCoalesceRoundTrip splits a MaxOrder block all the way down to
// single frames and rebuilds it: after freeing every frame, the buddies
// must have coalesced back into one MaxOrder block.
func TestSplitCoalesceRoundTrip(t *testing.T) {
	const frames = 1 << MaxOrder
	a, err := NewFrameAllocator(0, frames)
	if err != nil {
		t.Fatal(err)
	}
	var pfns []uint64
	for i := 0; i < frames; i++ {
		pfn, aerr := a.AllocFrame()
		if aerr != nil {
			t.Fatalf("frame %d: %v", i, aerr)
		}
		pfns = append(pfns, pfn)
	}
	// Lowest-address-first selection makes single-frame allocation sweep
	// the arena in order.
	for i, pfn := range pfns {
		if pfn != uint64(i) {
			t.Fatalf("frame %d allocated at %#x, want %#x", i, pfn, uint64(i))
		}
	}
	// Free in a scrambled (but deterministic) order to exercise merges in
	// both buddy directions.
	r := rand.New(rand.NewSource(1))
	r.Shuffle(len(pfns), func(i, j int) { pfns[i], pfns[j] = pfns[j], pfns[i] })
	for _, pfn := range pfns {
		if ferr := a.FreeOrder(pfn, 0); ferr != nil {
			t.Fatal(ferr)
		}
	}
	if a.FreeFrames() != frames {
		t.Fatalf("free = %d, want %d", a.FreeFrames(), frames)
	}
	// Fully coalesced: a MaxOrder allocation succeeds again.
	if _, err := a.AllocOrder(MaxOrder); err != nil {
		t.Fatalf("post-coalesce MaxOrder alloc: %v", err)
	}
}

// TestAllocFreeQuickProperty drives random alloc/free sequences through a
// small arena and checks the invariants a buddy allocator must keep: frame
// accounting balances, no block is handed out twice, every allocation is
// properly aligned and in bounds, and draining everything coalesces back to
// full MaxOrder blocks.
func TestAllocFreeQuickProperty(t *testing.T) {
	type step struct {
		Alloc bool
		Order uint8
	}
	property := func(seed int64, steps []step) bool {
		const frames = 4 << MaxOrder
		a, err := NewFrameAllocator(0, frames)
		if err != nil {
			return false
		}
		type held struct {
			block uint64
			order int
		}
		var live []held
		r := rand.New(rand.NewSource(seed))
		for _, s := range steps {
			if s.Alloc || len(live) == 0 {
				order := int(s.Order) % (MaxOrder + 1)
				block, aerr := a.AllocOrder(order)
				if aerr != nil {
					if !errors.Is(aerr, ErrOutOfMemory) {
						t.Logf("unexpected alloc error: %v", aerr)
						return false
					}
					continue
				}
				size := uint64(1) << uint(order)
				if block%size != 0 || block+size > frames {
					t.Logf("misaligned or out-of-bounds block %#x order %d", block, order)
					return false
				}
				for _, h := range live {
					hsize := uint64(1) << uint(h.order)
					if block < h.block+hsize && h.block < block+size {
						t.Logf("block %#x/%d overlaps live %#x/%d", block, order, h.block, h.order)
						return false
					}
				}
				live = append(live, held{block, order})
			} else {
				i := r.Intn(len(live))
				h := live[i]
				live = append(live[:i], live[i+1:]...)
				if ferr := a.FreeOrder(h.block, h.order); ferr != nil {
					t.Logf("free %#x/%d: %v", h.block, h.order, ferr)
					return false
				}
			}
			var outstanding uint64
			for _, h := range live {
				outstanding += uint64(1) << uint(h.order)
			}
			if a.UsedFrames() != outstanding {
				t.Logf("used = %d, outstanding = %d", a.UsedFrames(), outstanding)
				return false
			}
		}
		// Drain and verify full coalescing: every MaxOrder block is whole
		// again.
		for _, h := range live {
			if ferr := a.FreeOrder(h.block, h.order); ferr != nil {
				t.Logf("drain free: %v", ferr)
				return false
			}
		}
		if a.FreeFrames() != frames {
			t.Logf("drained free = %d, want %d", a.FreeFrames(), frames)
			return false
		}
		for i := 0; i < frames>>MaxOrder; i++ {
			if _, aerr := a.AllocOrder(MaxOrder); aerr != nil {
				t.Logf("post-drain MaxOrder alloc %d: %v", i, aerr)
				return false
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
