package ostable

import (
	"testing"
	"testing/quick"

	"ptguard/internal/pte"
)

func testAlloc(tb testing.TB, frames uint64) *FrameAllocator {
	tb.Helper()
	a, err := NewFrameAllocator(0x100, frames)
	if err != nil {
		tb.Fatal(err)
	}
	return a
}

func TestAllocatorBasic(t *testing.T) {
	a := testAlloc(t, 1<<12)
	f1, err := a.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	f2, err := a.AllocFrame()
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f2 {
		t.Fatal("double allocation")
	}
	if a.UsedFrames() != 2 {
		t.Errorf("used = %d, want 2", a.UsedFrames())
	}
	if err := a.FreeOrder(f1, 0); err != nil {
		t.Fatal(err)
	}
	if a.UsedFrames() != 1 {
		t.Errorf("used after free = %d, want 1", a.UsedFrames())
	}
}

func TestAllocatorContiguity(t *testing.T) {
	a := testAlloc(t, 1<<12)
	base, err := a.AllocContiguous(13)
	if err != nil {
		t.Fatal(err)
	}
	// 13 frames from a 16-frame block; the 3-frame tail must be reusable.
	if a.UsedFrames() != 13 {
		t.Errorf("used = %d, want 13", a.UsedFrames())
	}
	if base%16 != 0 {
		t.Errorf("base %#x not block-aligned", base)
	}
}

func TestAllocatorExhaustion(t *testing.T) {
	a := testAlloc(t, 4)
	for i := 0; i < 4; i++ {
		if _, err := a.AllocFrame(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.AllocFrame(); err != ErrOutOfMemory {
		t.Errorf("err = %v, want ErrOutOfMemory", err)
	}
}

func TestAllocatorNoDoubleAllocationProperty(t *testing.T) {
	f := func(orders [32]uint8) bool {
		a := testAlloc(t, 1<<14)
		seen := make(map[uint64]bool)
		for _, ob := range orders {
			o := int(ob) % 5
			block, err := a.AllocOrder(o)
			if err != nil {
				continue
			}
			for f := block; f < block+1<<uint(o); f++ {
				if seen[f] {
					return false
				}
				seen[f] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAllocatorCoalescing(t *testing.T) {
	// Base 0 keeps the whole range order-10 aligned so full coalescing
	// can rebuild one maximal block.
	a, err := NewFrameAllocator(0, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([]uint64, 0, 1<<10)
	for {
		b, err := a.AllocFrame()
		if err != nil {
			break
		}
		blocks = append(blocks, b)
	}
	for _, b := range blocks {
		if err := a.FreeOrder(b, 0); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything, a max-order allocation must succeed:
	// buddies coalesced all the way up.
	if _, err := a.AllocOrder(MaxOrder); err != nil {
		t.Errorf("max-order alloc after full free: %v", err)
	}
}

func TestAllocatorValidation(t *testing.T) {
	if _, err := NewFrameAllocator(0, 0); err == nil {
		t.Error("zero frames accepted")
	}
	a := testAlloc(t, 64)
	if _, err := a.AllocOrder(-1); err == nil {
		t.Error("negative order accepted")
	}
	if _, err := a.AllocOrder(MaxOrder + 1); err == nil {
		t.Error("oversized order accepted")
	}
	if err := a.FreeOrder(0x3, 1); err == nil {
		t.Error("misaligned free accepted")
	}
	if _, err := a.AllocContiguous(0); err == nil {
		t.Error("zero-length contiguous accepted")
	}
}

func TestPageTablesMapTranslate(t *testing.T) {
	a := testAlloc(t, 1<<14)
	pt, err := NewPageTables(a)
	if err != nil {
		t.Fatal(err)
	}
	const vaddr, pfn = 0x7f00_1234_5000, 0xABCD
	if err := pt.Map(vaddr, pfn, pte.Entry(0).SetBit(pte.BitWritable, true)); err != nil {
		t.Fatal(err)
	}
	got, ok := pt.Translate(vaddr)
	if !ok || got != pfn {
		t.Errorf("Translate = %#x,%v want %#x", got, ok, pfn)
	}
	if _, ok := pt.Translate(vaddr + pte.PageSize); ok {
		t.Error("unmapped page translated")
	}
	if err := pt.Map(vaddr, pfn, 0); err == nil {
		t.Error("double map accepted")
	}
	if err := pt.Map(vaddr+1, pfn, 0); err == nil {
		t.Error("unaligned map accepted")
	}
}

func TestPageTablesStructure(t *testing.T) {
	a := testAlloc(t, 1<<14)
	pt, _ := NewPageTables(a)
	// Two pages in the same leaf table, one far away.
	mustMap := func(v, p uint64) {
		t.Helper()
		if err := pt.Map(v, p, 0); err != nil {
			t.Fatal(err)
		}
	}
	mustMap(0x4000_0000_0000, 1)
	mustMap(0x4000_0000_1000, 2)
	mustMap(0x2000_0000_0000, 3)
	counts := pt.TablePageCount()
	if counts[0] != 1 {
		t.Errorf("PML4 pages = %d, want 1", counts[0])
	}
	if counts[3] != 2 {
		t.Errorf("leaf PT pages = %d, want 2", counts[3])
	}
	if got := len(pt.LeafTablePages()); got != 2 {
		t.Errorf("LeafTablePages = %d, want 2", got)
	}
}

func TestPageTablesLinesMatchProtectionPattern(t *testing.T) {
	// Kernel-written table lines must have zero MAC and identifier
	// fields, or PT-Guard's write pattern match would skip them.
	a := testAlloc(t, 1<<14)
	pt, _ := NewPageTables(a)
	for v := uint64(0); v < 64; v++ {
		if err := pt.Map(0x5000_0000_0000+v*pte.PageSize, 0x100+v, 0); err != nil {
			t.Fatal(err)
		}
	}
	pt.Lines(func(addr uint64, line pte.Line) {
		for i, e := range line {
			if uint64(e)&(pte.MaskMAC|pte.MaskIdentifier) != 0 {
				t.Fatalf("table line %#x entry %d uses reserved bits: %#x", addr, i, uint64(e))
			}
		}
	})
}

func TestPageTablesFreeReleasesFrames(t *testing.T) {
	a := testAlloc(t, 1<<14)
	before := a.UsedFrames()
	pt, _ := NewPageTables(a)
	for v := uint64(0); v < 10; v++ {
		if err := pt.Map(0x6000_0000_0000+v<<30, 0x200+v, 0); err != nil {
			t.Fatal(err)
		}
	}
	pt.Free()
	// Leaf data frames are owned by the caller in this model; only table
	// pages are freed, so usage returns to the baseline.
	if a.UsedFrames() != before {
		t.Errorf("used = %d after Free, want %d", a.UsedFrames(), before)
	}
}

func TestSynthConfigValidation(t *testing.T) {
	a := testAlloc(t, 1<<16)
	bad := DefaultSynthConfig()
	bad.FragProb = 1.5
	if _, err := NewPopulation(bad, a); err == nil {
		t.Error("bad FragProb accepted")
	}
	if _, err := NewPopulation(DefaultSynthConfig(), nil); err == nil {
		t.Error("nil allocator accepted")
	}
}

func TestPopulationMatchesPaperLocality(t *testing.T) {
	// Fig. 8 ground truth: 64.13% zero, 23.73% contiguous; Insight 3:
	// >99% flag uniformity. The synthetic population must land close.
	a, err := NewFrameAllocator(0x1000, 1<<20) // 4 GB of frames
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultSynthConfig()
	cfg.Seed = 42
	pop, err := NewPopulation(cfg, a)
	if err != nil {
		t.Fatal(err)
	}
	perProc, err := RunPopulation(pop, 40)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := Summarize(perProc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("zero=%.1f%% contig=%.1f%% noncontig=%.1f%% flagUniform=%.2f%% over %d PTEs",
		sum.ZeroMean, sum.ContigMean, sum.NonContMean, sum.FlagUniform, sum.TotalPTEs)
	if sum.ZeroMean < 54 || sum.ZeroMean > 74 {
		t.Errorf("zero PTE mean = %.1f%%, want ~64%%", sum.ZeroMean)
	}
	if sum.ContigMean < 16 || sum.ContigMean > 32 {
		t.Errorf("contiguous mean = %.1f%%, want ~24%%", sum.ContigMean)
	}
	if sum.FlagUniform < 99 {
		t.Errorf("flag uniformity = %.2f%%, want > 99%%", sum.FlagUniform)
	}
	if sum.Processes != 40 || len(sum.PerProcess) != 40 {
		t.Error("summary process count wrong")
	}
	// Fig. 8 orders processes by contiguous share.
	for i := 1; i < len(sum.PerProcess); i++ {
		if sum.PerProcess[i].ContiguousPct() > sum.PerProcess[i-1].ContiguousPct()+1e-9 {
			t.Fatal("PerProcess not sorted by contiguous percentage")
		}
	}
}

func TestProfileClassification(t *testing.T) {
	a := testAlloc(t, 1<<14)
	pt, _ := NewPageTables(a)
	flags := pte.Entry(0).SetBit(pte.BitWritable, true)
	// One leaf table: 3 contiguous, 1 isolated, rest zero.
	base := uint64(0x7000_0000_0000)
	for i, pfn := range []uint64{0x500, 0x501, 0x502, 0x900} {
		if err := pt.Map(base+uint64(i)*pte.PageSize, pfn, flags); err != nil {
			t.Fatal(err)
		}
	}
	s := ProfileProcess(pt)
	if s.Total != 512 {
		t.Errorf("total = %d, want 512", s.Total)
	}
	if s.Zero != 508 {
		t.Errorf("zero = %d, want 508", s.Zero)
	}
	if s.Contiguous != 3 {
		t.Errorf("contiguous = %d, want 3", s.Contiguous)
	}
	if s.NonContiguous != 1 {
		t.Errorf("non-contiguous = %d, want 1", s.NonContiguous)
	}
	if s.FlagUniformityPct() != 100 {
		t.Errorf("flag uniformity = %v, want 100", s.FlagUniformityPct())
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Error("empty summary accepted")
	}
	if _, err := RunPopulation(nil, 0); err == nil {
		t.Error("zero population accepted")
	}
}

func TestMapHugeTranslate(t *testing.T) {
	a := testAlloc(t, 1<<14)
	pt, _ := NewPageTables(a)
	const vaddr = 0x7f40_0000_0000 // 2 MB aligned
	const basePFN = 0x40000        // 2 MB aligned frame
	if err := pt.MapHuge(vaddr, basePFN, pte.Entry(0).SetBit(pte.BitWritable, true)); err != nil {
		t.Fatal(err)
	}
	// Every 4 KB page inside the huge mapping translates.
	for _, off := range []uint64{0, pte.PageSize, HugePageSize - pte.PageSize} {
		got, ok := pt.Translate(vaddr + off)
		want := basePFN + off/pte.PageSize
		if !ok || got != want {
			t.Fatalf("Translate(+%#x) = %#x,%v want %#x", off, got, ok, want)
		}
	}
	if _, ok := pt.Translate(vaddr + HugePageSize); ok {
		t.Error("address beyond the huge page translated")
	}
	if pt.MappedPages() != hugePFNSpan {
		t.Errorf("mapped pages = %d, want %d", pt.MappedPages(), hugePFNSpan)
	}
	// No leaf PT page is allocated for a huge mapping.
	if got := pt.TablePageCount()[3]; got != 0 {
		t.Errorf("leaf PT pages = %d, want 0", got)
	}
}

func TestMapHugeValidation(t *testing.T) {
	a := testAlloc(t, 1<<14)
	pt, _ := NewPageTables(a)
	if err := pt.MapHuge(0x1000, 0x40000, 0); err == nil {
		t.Error("unaligned huge vaddr accepted")
	}
	if err := pt.MapHuge(0x40_0000_0000, 0x40001, 0); err == nil {
		t.Error("unaligned huge pfn accepted")
	}
	if err := pt.MapHuge(0x40_0000_0000, 0x40000, 0); err != nil {
		t.Fatal(err)
	}
	if err := pt.MapHuge(0x40_0000_0000, 0x40000, 0); err == nil {
		t.Error("double huge map accepted")
	}
}
