// Package ostable is the OS page-table substrate: a buddy physical-frame
// allocator, an x86_64 4-level page-table builder, a synthetic process
// population whose PTE value locality matches the paper's measurements
// (§VI-B, Fig. 8), and the profiler that classifies PTEs into
// zero / contiguous / non-contiguous PFN categories.
package ostable

import (
	"errors"
	"fmt"
	"math/bits"
)

// MaxOrder is the largest buddy block: 2^10 frames = 4 MB.
const MaxOrder = 10

// ErrOutOfMemory is returned when no free block can satisfy a request.
var ErrOutOfMemory = errors.New("ostable: out of physical memory")

// FrameAllocator is a classic buddy allocator over physical page frames.
// Physical contiguity of its allocations is what produces the contiguous
// PFNs the paper's correction insight 2 exploits.
// Not safe for concurrent use.
type FrameAllocator struct {
	base   uint64 // first allocatable PFN
	frames uint64 // total allocatable frames
	// free[o] holds the base PFNs of free blocks of 2^o frames.
	free [MaxOrder + 1]map[uint64]bool
	used uint64
}

// NewFrameAllocator manages `frames` frames starting at PFN base.
func NewFrameAllocator(base, frames uint64) (*FrameAllocator, error) {
	if frames == 0 {
		return nil, errors.New("ostable: zero frames")
	}
	a := &FrameAllocator{base: base, frames: frames}
	for o := range a.free {
		a.free[o] = make(map[uint64]bool)
	}
	// Seed free lists with maximal aligned blocks.
	pfn := base
	end := base + frames
	for pfn < end {
		o := MaxOrder
		for o > 0 {
			size := uint64(1) << uint(o)
			if pfn%size == 0 && pfn+size <= end {
				break
			}
			o--
		}
		a.free[o][pfn] = true
		pfn += uint64(1) << uint(o)
	}
	return a, nil
}

// FreeFrames returns the number of unallocated frames.
func (a *FrameAllocator) FreeFrames() uint64 { return a.frames - a.used }

// UsedFrames returns the number of allocated frames.
func (a *FrameAllocator) UsedFrames() uint64 { return a.used }

// AllocOrder allocates a 2^order-frame block, returning its base PFN.
func (a *FrameAllocator) AllocOrder(order int) (uint64, error) {
	if order < 0 || order > MaxOrder {
		return 0, fmt.Errorf("ostable: order %d outside [0, %d]", order, MaxOrder)
	}
	o := order
	for o <= MaxOrder && len(a.free[o]) == 0 {
		o++
	}
	if o > MaxOrder {
		return 0, ErrOutOfMemory
	}
	// Take the lowest-addressed free block, as a real buddy allocator's
	// free-list head would. Deterministic selection matters: physical
	// frame assignment feeds simulated cache indices and line contents,
	// and campaign runs must be reproducible from their seed alone.
	var block uint64
	first := true
	for b := range a.free[o] {
		if first || b < block {
			block = b
			first = false
		}
	}
	delete(a.free[o], block)
	// Split down to the requested order, returning buddies to the lists.
	for o > order {
		o--
		buddy := block + uint64(1)<<uint(o)
		a.free[o][buddy] = true
	}
	a.used += uint64(1) << uint(order)
	return block, nil
}

// AllocContiguous allocates n physically contiguous frames (rounded up to a
// power-of-two block internally; the excess is freed back).
func (a *FrameAllocator) AllocContiguous(n int) (uint64, error) {
	if n <= 0 {
		return 0, errors.New("ostable: non-positive allocation")
	}
	order := bits.Len(uint(n - 1))
	if order > MaxOrder {
		return 0, fmt.Errorf("ostable: %d frames exceeds max block", n)
	}
	block, err := a.AllocOrder(order)
	if err != nil {
		return 0, err
	}
	// Free the tail beyond n.
	for f := block + uint64(n); f < block+uint64(1)<<uint(order); f++ {
		a.used--
		a.freeOne(f)
	}
	return block, nil
}

// AllocFrame allocates a single frame.
func (a *FrameAllocator) AllocFrame() (uint64, error) { return a.AllocOrder(0) }

// FreeOrder releases a block previously returned by AllocOrder.
func (a *FrameAllocator) FreeOrder(block uint64, order int) error {
	if order < 0 || order > MaxOrder {
		return fmt.Errorf("ostable: order %d outside [0, %d]", order, MaxOrder)
	}
	size := uint64(1) << uint(order)
	if block < a.base || block+size > a.base+a.frames || block%size != 0 {
		return fmt.Errorf("ostable: invalid block %#x order %d", block, order)
	}
	a.used -= size
	a.coalesce(block, order)
	return nil
}

func (a *FrameAllocator) freeOne(pfn uint64) { a.coalesce(pfn, 0) }

// coalesce inserts a free block and merges buddies upward.
func (a *FrameAllocator) coalesce(block uint64, order int) {
	for order < MaxOrder {
		size := uint64(1) << uint(order)
		buddy := block ^ size
		if !a.free[order][buddy] {
			break
		}
		delete(a.free[order], buddy)
		if buddy < block {
			block = buddy
		}
		order++
	}
	a.free[order][block] = true
}
