package attack

import (
	"errors"

	"ptguard/internal/baseline"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// CoverageResult reports each defense's behaviour over the same set of
// injected fault patterns (the §II-E / §VIII comparison).
type CoverageResult struct {
	Trials int
	// PTGuardDetected counts faults PT-Guard caught (it must equal
	// Trials: 100% coverage, §VI-F).
	PTGuardDetected int
	// SecWalkMissed counts faults the 25-bit EDC accepted.
	SecWalkMissed int
	// SECDEDSilent counts faults SECDED silently miscorrected or passed.
	SECDEDSilent int
	// MonotonicUnprotected counts single-bit faults outside the
	// monotonic-pointer defense's PFN coverage.
	MonotonicUnprotected int
}

// RunCoverage injects `trials` random fault patterns of 1..maxFlips bits
// into protected PTE lines and scores every defense on the same patterns.
// PT-Guard is exercised end to end through the memory controller; the
// per-PTE defenses (SecWalk, SECDED, monotonic pointers) are scored on the
// corresponding 64-bit entry corruption.
func RunCoverage(seed uint64, trials, maxFlips int) (CoverageResult, error) {
	if trials <= 0 || maxFlips <= 0 || maxFlips > 512 {
		return CoverageResult{}, errors.New("attack: invalid coverage parameters")
	}
	w, err := NewWorld(true, false, seed)
	if err != nil {
		return CoverageResult{}, err
	}
	var sw baseline.SecWalk
	var ecc baseline.SECDED
	mono, err := baseline.NewMonotonicPointers(0x80000)
	if err != nil {
		return CoverageResult{}, err
	}
	r := stats.NewRNG(seed ^ 0xC0BE)
	res := CoverageResult{Trials: trials}

	// Faults target the security-relevant bits: everything the MAC covers
	// plus the embedded MAC itself. (Flips confined to the accessed bit
	// or the ignored field are architecturally meaningless.)
	format := w.guard.Config().Format
	var relevantBits []int
	for b := 0; b < 64; b++ {
		if (format.ProtectedMask|format.MACMask)>>uint(b)&1 == 1 {
			relevantBits = append(relevantBits, b)
		}
	}
	if maxFlips > len(relevantBits) {
		return CoverageResult{}, errors.New("attack: maxFlips exceeds relevant bits per PTE")
	}

	for trial := 0; trial < trials; trial++ {
		vaddr := VictimVBase + uint64(r.Intn(VictimPages))*pte.PageSize
		ea, ok := w.Tables.LeafEntryAddr(vaddr)
		if !ok {
			return res, errors.New("attack: victim entry missing")
		}
		lineAddr := ea &^ uint64(pte.LineBytes-1)
		entryIdx := int(ea / 8 % pte.PTEsPerLine)
		origLine := w.Dev.ReadLine(lineAddr)
		origEntry := origLine[entryIdx]

		nFlips := 1 + r.Intn(maxFlips)
		lineBits := make([]int, 0, nFlips)
		entryBits := make([]int, 0, nFlips)
		seen := map[int]bool{}
		for len(lineBits) < nFlips {
			b := relevantBits[r.Intn(len(relevantBits))]
			if seen[b] {
				continue
			}
			seen[b] = true
			entryBits = append(entryBits, b)
			lineBits = append(lineBits, entryIdx*64+b)
		}

		// PT-Guard, end to end.
		w.Hammer.FlipLineBits(lineAddr, lineBits)
		if _, _, ok := w.Ctrl.ReadLine(lineAddr, true); !ok {
			res.PTGuardDetected++
		}
		// Restore for the next trial.
		w.Dev.WriteLine(lineAddr, origLine)

		// SecWalk on the same entry corruption.
		if !sw.Detects(origEntry, entryBits) {
			res.SecWalkMissed++
		}

		// SECDED over the 64-bit entry.
		cw := ecc.Encode(uint64(origEntry))
		for _, b := range entryBits {
			// Map data-bit index to codeword position: data bit d
			// lives at the (d+1)-th non-check position.
			cw = cw.Flip(dataPosToCodeword(b))
		}
		got, status, derr := ecc.Decode(cw)
		if derr == nil && status != baseline.DecodeUncorrectable && got != uint64(origEntry) {
			res.SECDEDSilent++
		}

		// Monotonic pointers: score single-bit cases only (its threat
		// model); any flipped metadata bit breaks it.
		for _, b := range entryBits {
			if !mono.EvaluateFlip(origEntry, b).Prevented {
				res.MonotonicUnprotected++
				break
			}
		}
	}
	return res, nil
}

// dataPosToCodeword maps a 64-bit data bit index to its (72,64) codeword
// position (skipping the check-bit positions 1,2,4,...,64 and 72).
func dataPosToCodeword(d int) int {
	seen := 0
	for p := 1; p <= baseline.CodewordBits; p++ {
		if p == 72 || p&(p-1) == 0 {
			continue
		}
		if seen == d {
			return p
		}
		seen++
	}
	return baseline.CodewordBits
}
