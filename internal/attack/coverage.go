package attack

import (
	"errors"
	"strconv"

	"ptguard/internal/baseline"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// CoverageResult reports each defense's behaviour over the same set of
// injected fault patterns (the §II-E / §VIII comparison).
type CoverageResult struct {
	Trials int
	// PTGuardDetected counts faults PT-Guard caught (it must equal
	// Trials: 100% coverage, §VI-F).
	PTGuardDetected int
	// SecWalkMissed counts faults the 25-bit EDC accepted.
	SecWalkMissed int
	// SECDEDSilent counts faults SECDED silently miscorrected or passed.
	SECDEDSilent int
	// MonotonicUnprotected counts single-bit faults outside the
	// monotonic-pointer defense's PFN coverage.
	MonotonicUnprotected int
}

// coverageWorker is one shard's private state for the coverage trials: its
// own protected world plus the baseline defenses scored alongside.
type coverageWorker struct {
	w    *World
	sw   baseline.SecWalk
	ecc  baseline.SECDED
	mono baseline.MonotonicPointers
}

// coverageVerdict is one trial's per-defense outcome.
type coverageVerdict struct {
	ptguardDetected bool
	secWalkMissed   bool
	secdedSilent    bool
	monoUnprotected bool
}

// RunCoverage injects `trials` random fault patterns of 1..maxFlips bits
// into protected PTE lines and scores every defense on the same patterns.
// PT-Guard is exercised end to end through the memory controller; the
// per-PTE defenses (SecWalk, SECDED, monotonic pointers) are scored on the
// corresponding 64-bit entry corruption.
//
// Trials are sharded across GOMAXPROCS goroutines, each with its own world
// (identically constructed from seed) and a per-trial DeriveSeed RNG, so
// the result is bit-identical at any parallelism.
func RunCoverage(seed uint64, trials, maxFlips int) (CoverageResult, error) {
	if trials <= 0 || maxFlips <= 0 || maxFlips > 512 {
		return CoverageResult{}, errors.New("attack: invalid coverage parameters")
	}
	// Probe world: validates parameters and derives the relevant bit set
	// before any shard spins up.
	probe, err := NewWorld(true, false, seed)
	if err != nil {
		return CoverageResult{}, err
	}

	// Faults target the security-relevant bits: everything the MAC covers
	// plus the embedded MAC itself. (Flips confined to the accessed bit
	// or the ignored field are architecturally meaningless.)
	format := probe.guard.Config().Format
	var relevantBits []int
	for b := 0; b < 64; b++ {
		if (format.ProtectedMask|format.MACMask)>>uint(b)&1 == 1 {
			relevantBits = append(relevantBits, b)
		}
	}
	if maxFlips > len(relevantBits) {
		return CoverageResult{}, errors.New("attack: maxFlips exceeds relevant bits per PTE")
	}

	verdicts, err := stats.ShardTrials(trials,
		func() (*coverageWorker, error) {
			w, werr := NewWorld(true, false, seed)
			if werr != nil {
				return nil, werr
			}
			mono, merr := baseline.NewMonotonicPointers(0x80000)
			if merr != nil {
				return nil, merr
			}
			return &coverageWorker{w: w, mono: mono}, nil
		},
		func(cw *coverageWorker, trial int) (coverageVerdict, error) {
			return cw.runTrial(stats.NewRNG(stats.DeriveSeed(seed, "coverage/trial/"+strconv.Itoa(trial))), relevantBits, maxFlips)
		})
	if err != nil {
		return CoverageResult{}, err
	}
	res := CoverageResult{Trials: trials}
	for _, v := range verdicts {
		if v.ptguardDetected {
			res.PTGuardDetected++
		}
		if v.secWalkMissed {
			res.SecWalkMissed++
		}
		if v.secdedSilent {
			res.SECDEDSilent++
		}
		if v.monoUnprotected {
			res.MonotonicUnprotected++
		}
	}
	return res, nil
}

// runTrial injects one fault pattern drawn from r and scores each defense.
// The world is restored before returning, so trials are independent.
func (cw *coverageWorker) runTrial(r *stats.RNG, relevantBits []int, maxFlips int) (coverageVerdict, error) {
	w := cw.w
	var res coverageVerdict
	{
		vaddr := VictimVBase + uint64(r.Intn(VictimPages))*pte.PageSize
		ea, ok := w.Tables.LeafEntryAddr(vaddr)
		if !ok {
			return res, errors.New("attack: victim entry missing")
		}
		lineAddr := ea &^ uint64(pte.LineBytes-1)
		entryIdx := int(ea / 8 % pte.PTEsPerLine)
		origLine := w.Dev.ReadLine(lineAddr)
		origEntry := origLine[entryIdx]

		nFlips := 1 + r.Intn(maxFlips)
		lineBits := make([]int, 0, nFlips)
		entryBits := make([]int, 0, nFlips)
		seen := map[int]bool{}
		for len(lineBits) < nFlips {
			b := relevantBits[r.Intn(len(relevantBits))]
			if seen[b] {
				continue
			}
			seen[b] = true
			entryBits = append(entryBits, b)
			lineBits = append(lineBits, entryIdx*64+b)
		}

		// PT-Guard, end to end.
		w.Hammer.FlipLineBits(lineAddr, lineBits)
		if _, _, ok := w.Ctrl.ReadLine(lineAddr, true); !ok {
			res.ptguardDetected = true
		}
		// Restore for the next trial.
		w.Dev.WriteLine(lineAddr, origLine)

		// SecWalk on the same entry corruption.
		if !cw.sw.Detects(origEntry, entryBits) {
			res.secWalkMissed = true
		}

		// SECDED over the 64-bit entry.
		codeword := cw.ecc.Encode(uint64(origEntry))
		for _, b := range entryBits {
			// Map data-bit index to codeword position: data bit d
			// lives at the (d+1)-th non-check position.
			codeword = codeword.Flip(dataPosToCodeword(b))
		}
		got, status, derr := cw.ecc.Decode(codeword)
		if derr == nil && status != baseline.DecodeUncorrectable && got != uint64(origEntry) {
			res.secdedSilent = true
		}

		// Monotonic pointers: score single-bit cases only (its threat
		// model); any flipped metadata bit breaks it.
		for _, b := range entryBits {
			if !cw.mono.EvaluateFlip(origEntry, b).Prevented {
				res.monoUnprotected = true
				break
			}
		}
	}
	return res, nil
}

// dataPosToCodeword maps a 64-bit data bit index to its (72,64) codeword
// position (skipping the check-bit positions 1,2,4,...,64 and 72).
func dataPosToCodeword(d int) int {
	seen := 0
	for p := 1; p <= baseline.CodewordBits; p++ {
		if p == 72 || p&(p-1) == 0 {
			continue
		}
		if seen == d {
			return p
		}
		seen++
	}
	return baseline.CodewordBits
}
