package attack

import (
	"fmt"

	"ptguard/internal/dram"
	"ptguard/internal/mitigate"
	"ptguard/internal/obs"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// Scaled-down defaults for mitigation head-to-head trials: a real DDR4
// threshold (10K activations) makes every cell of the mitigation × pattern
// matrix cost tens of millions of activations, so the trials shrink the
// flip threshold and window proportionally. Relative orderings (which
// tracker stops which pattern) are threshold-scale-invariant because every
// tracker's detection threshold scales with the same knob.
const (
	// DefaultTrialThreshold is the scaled charge-loss flip threshold.
	DefaultTrialThreshold = 64
	// DefaultTrialActs is the total aggressor activations per trial —
	// enough for many threshold crossings at the scaled threshold.
	DefaultTrialActs = 40_000
	// DefaultTrialWindowActs is the scaled tREFW auto-refresh period.
	DefaultTrialWindowActs = 8192
	// DefaultBudgetWindow is the scaled tREFI the refresh budget charges
	// against when a budget is requested.
	DefaultBudgetWindow = 64
)

// MitigationTrialConfig declares one cell of the head-to-head matrix: a
// mitigation plugin from the registry, an attack pattern, and the PT-Guard
// toggle, plus the scaled physics knobs.
type MitigationTrialConfig struct {
	// Mitigation names a mitigate registry plugin ("none", "trr",
	// "softtrr", "graphene", "para", "oracle").
	Mitigation string
	// Pattern names a dram attack pattern ("classic", "half-double",
	// "many-sided").
	Pattern string
	// Protected selects PT-Guard at the memory controller; Correction
	// additionally enables the §VI correction engine.
	Protected  bool
	Correction bool
	// Seed drives every RNG in the trial (fault model, PARA schedule).
	Seed uint64
	// Threshold is the charge-loss flip threshold; 0 selects
	// DefaultTrialThreshold.
	Threshold int
	// Sampler is the tracker's detection threshold; 0 selects
	// Threshold/2 (detect before the flip lands, the regime every
	// deployed mitigation targets).
	Sampler int
	// TableSize bounds the tracker's table (TRR sampler, Graphene); 0
	// keeps each tracker's default.
	TableSize int
	// Acts is the total aggressor activations; 0 selects
	// DefaultTrialActs.
	Acts int
	// WindowActs is the auto-refresh period in activations; 0 selects
	// DefaultTrialWindowActs, negative disables the window.
	WindowActs int
	// BudgetPerWindow, when positive, caps mitigative refreshes per
	// DefaultBudgetWindow activations (the tREFI starvation model).
	BudgetPerWindow int
	// FlipProb is the per-bit flip probability on a threshold crossing;
	// 0 selects the LPDDR4 worst case (sparse flips: a crossing corrupts
	// a few PTE bits rather than inverting whole lines, so unprotected
	// walks split between silent corruption and faults like §II-C).
	FlipProb float64
	// Obs, when non-nil, receives the trial's mitigation and world
	// counters (nil-safe, zero overhead when disabled).
	Obs *obs.Registry
}

func (c MitigationTrialConfig) withDefaults() MitigationTrialConfig {
	if c.Threshold == 0 {
		c.Threshold = DefaultTrialThreshold
	}
	if c.Sampler == 0 {
		c.Sampler = c.Threshold / 2
	}
	if c.Acts == 0 {
		c.Acts = DefaultTrialActs
	}
	if c.WindowActs == 0 {
		c.WindowActs = DefaultTrialWindowActs
	}
	if c.WindowActs < 0 {
		c.WindowActs = 0
	}
	if c.FlipProb == 0 {
		c.FlipProb = dram.FlipProbLPDDR4
	}
	return c
}

// MitigationTrialResult is one matrix cell's outcome.
type MitigationTrialResult struct {
	// Mitigation, Pattern, Protected echo the trial configuration.
	Mitigation string
	Pattern    string
	Protected  bool
	// RowsFlipped counts flip bursts into rows holding victim PTE lines.
	RowsFlipped int
	// WalksChecked is the number of victim pages walked post-attack.
	WalksChecked int
	// Detected counts walks that raised PTECheckFailed (PT-Guard caught
	// the corruption before the translation was consumed).
	Detected int
	// Faulted counts walks that hit a non-present entry (corruption
	// visible as a crash, not an exploit).
	Faulted int
	// Silent counts walks that consumed a tampered translation — the
	// attacker's win condition.
	Silent int
	// Intact counts walks that returned the original translation.
	Intact int
	// Stats is the mitigation engine's counter snapshot (refreshes,
	// tracker table activity, budget starvation).
	Stats dram.MitigationStats
}

// Defeated reports the attacker got at least one silent corruption.
func (r MitigationTrialResult) Defeated() bool { return r.Silent > 0 }

// CoveragePct is the share of corrupted walks PT-Guard caught.
func (r MitigationTrialResult) CoveragePct() float64 {
	bad := r.Detected + r.Silent
	if bad == 0 {
		return 100
	}
	return 100 * float64(r.Detected) / float64(bad)
}

// RunMitigationTrial plays one attack pattern against one mitigation with
// PT-Guard on or off: build a sandbox world with the scaled flip
// threshold, aim the pattern at the victim's leaf-PTE row through a
// MitigatedHammerer running the named tracker, then walk every victim page
// and classify each walk as detected, faulted, silently corrupted, or
// intact.
func RunMitigationTrial(cfg MitigationTrialConfig) (MitigationTrialResult, error) {
	cfg = cfg.withDefaults()
	w, err := NewWorldWith(WorldConfig{
		Protected:  cfg.Protected,
		Correction: cfg.Correction,
		Seed:       cfg.Seed,
		Hammer:     dram.HammerConfig{Threshold: cfg.Threshold, FlipProb: cfg.FlipProb, Seed: cfg.Seed},
	})
	if err != nil {
		return MitigationTrialResult{}, err
	}
	geo := w.Dev.Geometry()

	mit, err := mitigate.New(cfg.Mitigation, mitigate.Config{
		Banks:       geo.Channels * geo.BanksPerChannel,
		RowsPerBank: geo.RowsPerBank,
		Threshold:   cfg.Sampler,
		TableSize:   cfg.TableSize,
		Seed:        stats.DeriveSeed(cfg.Seed, "attack/mitigation/"+cfg.Mitigation),
	})
	if err != nil {
		return MitigationTrialResult{}, err
	}
	// Software mitigations that track only registered rows (SoftTRR) get
	// told where the page tables live, exactly like the OS hook would.
	if reg, ok := mit.(mitigate.RowRegistrar); ok {
		seen := make(map[int]bool)
		w.Tables.Lines(func(addr uint64, _ pte.Line) {
			loc := w.Dev.Locate(addr)
			bankIdx := loc.Channel*geo.BanksPerChannel + loc.Bank
			key := bankIdx*geo.RowsPerBank + loc.Row
			if !seen[key] {
				seen[key] = true
				reg.RegisterRow(bankIdx, loc.Row)
			}
		})
	}
	var budget *mitigate.Budget
	if cfg.BudgetPerWindow > 0 {
		budget, err = mitigate.NewBudget(cfg.BudgetPerWindow, DefaultBudgetWindow)
		if err != nil {
			return MitigationTrialResult{}, err
		}
	}
	mh, err := dram.NewMitigatedHammerer(w.Dev, w.Hammer, dram.MitigationConfig{
		Mitigator:  mit,
		Budget:     budget,
		WindowActs: cfg.WindowActs,
	})
	if err != nil {
		return MitigationTrialResult{}, err
	}

	pattern, err := dram.PatternByName(cfg.Pattern)
	if err != nil {
		return MitigationTrialResult{}, err
	}
	ea, ok := w.Tables.LeafEntryAddr(VictimVBase)
	if !ok {
		return MitigationTrialResult{}, fmt.Errorf("attack: victim vaddr %#x not mapped", uint64(VictimVBase))
	}
	victimLine := ea &^ uint64(pte.LineBytes-1)
	flipped, err := mh.HammerPattern(pattern, victimLine, cfg.Acts)
	if err != nil {
		return MitigationTrialResult{}, err
	}

	res := MitigationTrialResult{
		Mitigation:  cfg.Mitigation,
		Pattern:     cfg.Pattern,
		Protected:   cfg.Protected,
		RowsFlipped: len(flipped),
		Stats:       mh.Stats(),
	}
	for i := 0; i < VictimPages; i++ {
		vaddr := uint64(VictimVBase) + uint64(i)*pte.PageSize
		want, ok := w.Tables.Translate(vaddr)
		if !ok {
			continue
		}
		res.WalksChecked++
		walk := w.Walker.Walk(w.Tables.Root(), vaddr)
		switch {
		case walk.CheckFailed:
			res.Detected++
		case walk.Fault:
			res.Faulted++
		case walk.PFN != want:
			res.Silent++
		default:
			res.Intact++
		}
	}
	if cfg.Obs != nil {
		mh.PublishObs(cfg.Obs)
		w.PublishObs(cfg.Obs)
	}
	return res, nil
}
