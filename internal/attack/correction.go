package attack

import (
	"errors"

	"ptguard/internal/core"
	"ptguard/internal/dram"
	"ptguard/internal/mac"
	"ptguard/internal/memctrl"
	"ptguard/internal/ostable"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// Fig. 9's fault probabilities (§VI-F): the worst-case Rowhammer per-bit
// flip rates for DDR4 (1/512) through LPDDR4 (1/128).
var Fig9FlipProbs = []float64{1.0 / 512, 1.0 / 256, 1.0 / 128}

// CorrectionConfig parameterises the §VI-F experiment.
type CorrectionConfig struct {
	// FlipProb is the uniform per-bit fault probability.
	FlipProb float64
	// Lines is the number of faulty PTE cachelines to evaluate.
	Lines int
	// Seed drives the population synthesiser and fault injector.
	Seed uint64
	// SoftMatchK overrides the MAC fault budget; 0 selects the paper's 4.
	SoftMatchK int
	// TagBits overrides the MAC width; 0 selects 96 (§VII-A ablation).
	TagBits int
	// Ablation switches mirror core.Config: disable individual guess
	// strategies to measure their contribution (DESIGN.md §5.5).
	DisableFlipAndCheck bool
	DisableZeroReset    bool
	DisableFlagVote     bool
	DisableContiguity   bool
}

// CorrectionResult is the Fig. 9 measurement.
type CorrectionResult struct {
	FlipProb float64
	// Erroneous counts lines that actually received >= 1 flip.
	Erroneous int
	// Corrected counts erroneous lines whose walk served the original
	// (architectural) payload, via soft match or the correction engine.
	Corrected int
	// Detected counts erroneous lines that raised PTECheckFailed.
	Detected int
	// Miscorrected counts walks that served a wrong payload: must be 0.
	Miscorrected int
	// Guesses is the total correction guesses spent.
	Guesses uint64
}

// CorrectedPct returns the Fig. 9 y-axis: corrected / erroneous.
func (r CorrectionResult) CorrectedPct() float64 {
	if r.Erroneous == 0 {
		return 0
	}
	return 100 * float64(r.Corrected) / float64(r.Erroneous)
}

// CoveragePct returns detected-or-corrected / erroneous: the paper's 100%
// detection claim.
func (r CorrectionResult) CoveragePct() float64 {
	if r.Erroneous == 0 {
		return 0
	}
	return 100 * float64(r.Corrected+r.Detected) / float64(r.Erroneous)
}

// RunCorrection reproduces the Fig. 9 methodology: synthesise page tables
// with realistic value locality (§VI-B), protect them through the memory
// controller, flip each bit of each PTE cacheline with probability
// FlipProb, and replay page-table walks through the correction-enabled
// guard.
func RunCorrection(cfg CorrectionConfig) (CorrectionResult, error) {
	if cfg.FlipProb <= 0 || cfg.FlipProb >= 1 {
		return CorrectionResult{}, errors.New("attack: FlipProb outside (0, 1)")
	}
	if cfg.Lines <= 0 {
		return CorrectionResult{}, errors.New("attack: Lines must be positive")
	}
	k := cfg.SoftMatchK
	if k == 0 {
		k = 4
	}
	dev, err := dram.NewDevice(dram.Geometry{}, dram.Timing{})
	if err != nil {
		return CorrectionResult{}, err
	}
	format, err := pte.FormatX86(40)
	if err != nil {
		return CorrectionResult{}, err
	}
	key := make([]byte, mac.KeySize)
	kr := stats.NewRNG(cfg.Seed ^ 0xF19)
	for i := range key {
		key[i] = byte(kr.Uint64())
	}
	guard, err := core.NewGuard(core.Config{
		Format:              format,
		Key:                 key,
		TagBits:             cfg.TagBits,
		EnableCorrection:    true,
		SoftMatchK:          k,
		DisableFlipAndCheck: cfg.DisableFlipAndCheck,
		DisableZeroReset:    cfg.DisableZeroReset,
		DisableFlagVote:     cfg.DisableFlagVote,
		DisableContiguity:   cfg.DisableContiguity,
	})
	if err != nil {
		return CorrectionResult{}, err
	}
	ctrl, err := memctrl.New(dev, guard, 0)
	if err != nil {
		return CorrectionResult{}, err
	}
	alloc, err := ostable.NewFrameAllocator(4096, dev.Geometry().Capacity()/pte.PageSize-4096)
	if err != nil {
		return CorrectionResult{}, err
	}
	pop, err := ostable.NewPopulation(popConfig(cfg.Seed), alloc)
	if err != nil {
		return CorrectionResult{}, err
	}
	hmr, err := dram.NewHammerer(dev, dram.HammerConfig{Seed: cfg.Seed ^ 0xFA17})
	if err != nil {
		return CorrectionResult{}, err
	}

	// Build a fixed pool of protected PTE lines from several synthetic
	// processes, so every flip probability is evaluated over the same
	// line population (no sample-composition bias between sweep points).
	type pooled struct {
		addr      uint64
		arch      pte.Line
		protected pte.Line
	}
	const poolProcesses = 6
	var pool []pooled
	for p := 0; p < poolProcesses; p++ {
		tables, serr := pop.SynthesizeProcess()
		if serr != nil {
			return CorrectionResult{}, serr
		}
		var flushErr error
		tables.Lines(func(addr uint64, line pte.Line) {
			if _, werr := ctrl.WriteLine(addr, line); werr != nil && flushErr == nil {
				flushErr = werr
			}
		})
		if flushErr != nil {
			return CorrectionResult{}, flushErr
		}
		tables.LeafLines(func(addr uint64, archLine pte.Line) {
			pool = append(pool, pooled{addr: addr, arch: archLine, protected: dev.ReadLine(addr)})
		})
		// Keep tables alive: freeing would recycle frames and alias
		// pool addresses across processes.
	}
	if len(pool) == 0 {
		return CorrectionResult{}, errors.New("attack: empty line pool")
	}
	// Shuffle deterministically (independent of FlipProb) so small runs
	// sample a representative mix of zero-heavy and dense lines, and all
	// sweep points visit the same lines in the same order.
	shuf := stats.NewRNG(cfg.Seed ^ 0x5F0F)
	for i := len(pool) - 1; i > 0; i-- {
		j := shuf.Intn(i + 1)
		pool[i], pool[j] = pool[j], pool[i]
	}

	res := CorrectionResult{FlipProb: cfg.FlipProb}
	for i := 0; res.Erroneous < cfg.Lines; i++ {
		entry := pool[i%len(pool)]
		dev.WriteLine(entry.addr, entry.protected)
		if hmr.InjectLineFaults(entry.addr, cfg.FlipProb) == 0 {
			continue
		}
		res.Erroneous++
		before := guard.Counters().CorrectionGuesses
		got, _, ok := ctrl.ReadLine(entry.addr, true)
		res.Guesses += guard.Counters().CorrectionGuesses - before
		switch {
		case !ok:
			res.Detected++
		case payloadMatches(got, entry.arch, format):
			res.Corrected++
		default:
			res.Miscorrected++
		}
		// Restore the pristine protected image for the next pass.
		dev.WriteLine(entry.addr, entry.protected)
	}
	return res, nil
}

func popConfig(seed uint64) ostable.SynthConfig {
	c := ostable.DefaultSynthConfig()
	c.Seed = seed
	return c
}

// payloadMatches compares the MAC-covered bits of the served line against
// the architectural original (the accessed bit and the base design's
// ignored field are uncovered by construction, Table IV).
func payloadMatches(got, want pte.Line, format pte.Format) bool {
	for i := range got {
		if uint64(got[i])&format.ProtectedMask != uint64(want[i])&format.ProtectedMask {
			return false
		}
	}
	return true
}
