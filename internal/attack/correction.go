package attack

import (
	"errors"
	"strconv"

	"ptguard/internal/core"
	"ptguard/internal/dram"
	"ptguard/internal/mac"
	"ptguard/internal/memctrl"
	"ptguard/internal/ostable"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// Fig. 9's fault probabilities (§VI-F): the worst-case Rowhammer per-bit
// flip rates for DDR4 (1/512) through LPDDR4 (1/128).
var Fig9FlipProbs = []float64{1.0 / 512, 1.0 / 256, 1.0 / 128}

// CorrectionConfig parameterises the §VI-F experiment.
type CorrectionConfig struct {
	// FlipProb is the uniform per-bit fault probability.
	FlipProb float64
	// Lines is the number of faulty PTE cachelines to evaluate.
	Lines int
	// Seed drives the population synthesiser and fault injector.
	Seed uint64
	// SoftMatchK overrides the MAC fault budget; 0 selects the paper's 4.
	SoftMatchK int
	// TagBits overrides the MAC width; 0 selects 96 (§VII-A ablation).
	TagBits int
	// Ablation switches mirror core.Config: disable individual guess
	// strategies to measure their contribution (DESIGN.md §5.5).
	DisableFlipAndCheck bool
	DisableZeroReset    bool
	DisableFlagVote     bool
	DisableContiguity   bool
}

// CorrectionResult is the Fig. 9 measurement.
type CorrectionResult struct {
	FlipProb float64
	// Erroneous counts lines that actually received >= 1 flip.
	Erroneous int
	// Corrected counts erroneous lines whose walk served the original
	// (architectural) payload, via soft match or the correction engine.
	Corrected int
	// Detected counts erroneous lines that raised PTECheckFailed.
	Detected int
	// Miscorrected counts walks that served a wrong payload: must be 0.
	Miscorrected int
	// Guesses is the total correction guesses spent.
	Guesses uint64
}

// CorrectedPct returns the Fig. 9 y-axis: corrected / erroneous.
func (r CorrectionResult) CorrectedPct() float64 {
	if r.Erroneous == 0 {
		return 0
	}
	return 100 * float64(r.Corrected) / float64(r.Erroneous)
}

// CoveragePct returns detected-or-corrected / erroneous: the paper's 100%
// detection claim.
func (r CorrectionResult) CoveragePct() float64 {
	if r.Erroneous == 0 {
		return 0
	}
	return 100 * float64(r.Corrected+r.Detected) / float64(r.Erroneous)
}

// RunCorrection reproduces the Fig. 9 methodology: synthesise page tables
// with realistic value locality (§VI-B), protect them through the memory
// controller, flip each bit of each PTE cacheline with probability
// FlipProb, and replay page-table walks through the correction-enabled
// guard.
//
// The trial loop is sharded across GOMAXPROCS goroutines: each trial draws
// its faults from an RNG seeded by DeriveSeed(Seed, trial index) and runs
// against a shard-local guard, so the result is bit-identical however many
// shards execute it (see stats.ShardTrials).
func RunCorrection(cfg CorrectionConfig) (CorrectionResult, error) {
	if cfg.FlipProb <= 0 || cfg.FlipProb >= 1 {
		return CorrectionResult{}, errors.New("attack: FlipProb outside (0, 1)")
	}
	if cfg.Lines <= 0 {
		return CorrectionResult{}, errors.New("attack: Lines must be positive")
	}
	k := cfg.SoftMatchK
	if k == 0 {
		k = 4
	}
	dev, err := dram.NewDevice(dram.Geometry{}, dram.Timing{})
	if err != nil {
		return CorrectionResult{}, err
	}
	format, err := pte.FormatX86(40)
	if err != nil {
		return CorrectionResult{}, err
	}
	key := make([]byte, mac.KeySize)
	kr := stats.NewRNG(cfg.Seed ^ 0xF19)
	for i := range key {
		key[i] = byte(kr.Uint64())
	}
	guardCfg := core.Config{
		Format:              format,
		Key:                 key,
		TagBits:             cfg.TagBits,
		EnableCorrection:    true,
		SoftMatchK:          k,
		DisableFlipAndCheck: cfg.DisableFlipAndCheck,
		DisableZeroReset:    cfg.DisableZeroReset,
		DisableFlagVote:     cfg.DisableFlagVote,
		DisableContiguity:   cfg.DisableContiguity,
	}
	guard, err := core.NewGuard(guardCfg)
	if err != nil {
		return CorrectionResult{}, err
	}
	ctrl, err := memctrl.New(dev, guard, 0)
	if err != nil {
		return CorrectionResult{}, err
	}
	alloc, err := ostable.NewFrameAllocator(4096, dev.Geometry().Capacity()/pte.PageSize-4096)
	if err != nil {
		return CorrectionResult{}, err
	}
	pop, err := ostable.NewPopulation(popConfig(cfg.Seed), alloc)
	if err != nil {
		return CorrectionResult{}, err
	}
	// Build a fixed pool of protected PTE lines from several synthetic
	// processes, so every flip probability is evaluated over the same
	// line population (no sample-composition bias between sweep points).
	type pooled struct {
		addr      uint64
		arch      pte.Line
		protected pte.Line
	}
	const poolProcesses = 6
	var pool []pooled
	for p := 0; p < poolProcesses; p++ {
		tables, serr := pop.SynthesizeProcess()
		if serr != nil {
			return CorrectionResult{}, serr
		}
		var flushAddrs []uint64
		var flushLines []pte.Line
		tables.Lines(func(addr uint64, line pte.Line) {
			flushAddrs = append(flushAddrs, addr)
			flushLines = append(flushLines, line)
		})
		if _, werr := ctrl.WriteLinesBatch(flushAddrs, flushLines); werr != nil {
			return CorrectionResult{}, werr
		}
		tables.LeafLines(func(addr uint64, archLine pte.Line) {
			pool = append(pool, pooled{addr: addr, arch: archLine, protected: dev.ReadLine(addr)})
		})
		// Keep tables alive: freeing would recycle frames and alias
		// pool addresses across processes.
	}
	if len(pool) == 0 {
		return CorrectionResult{}, errors.New("attack: empty line pool")
	}
	// Shuffle deterministically (independent of FlipProb) so small runs
	// sample a representative mix of zero-heavy and dense lines, and all
	// sweep points visit the same lines in the same order.
	shuf := stats.NewRNG(cfg.Seed ^ 0x5F0F)
	for i := len(pool) - 1; i > 0; i-- {
		j := shuf.Intn(i + 1)
		pool[i], pool[j] = pool[j], pool[i]
	}

	// Sharded trial loop. Each trial is a pure function of (pool entry,
	// trial seed): flip bits of the protected image with a per-trial RNG
	// (redrawing until at least one bit flips, so every trial is an
	// erroneous line, matching the skip-and-retry of the serial
	// methodology) and replay the walk through a shard-local guard.
	trials, err := stats.ShardTrials(cfg.Lines,
		func() (*core.Guard, error) { return core.NewGuard(guardCfg) },
		func(g *core.Guard, t int) (trialVerdict, error) {
			entry := pool[t%len(pool)]
			rng := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "fig9/trial/"+strconv.Itoa(t)))
			faulty := flipLineBernoulli(entry.protected, cfg.FlipProb, rng)
			before := g.Counters().CorrectionGuesses
			rd := g.OnRead(faulty, entry.addr, true)
			v := trialVerdict{guesses: g.Counters().CorrectionGuesses - before}
			switch {
			case rd.CheckFailed:
				v.detected = true
			case payloadMatches(rd.Line, entry.arch, format):
				v.corrected = true
			}
			return v, nil
		})
	if err != nil {
		return CorrectionResult{}, err
	}
	res := CorrectionResult{FlipProb: cfg.FlipProb, Erroneous: len(trials)}
	for _, v := range trials {
		res.Guesses += v.guesses
		switch {
		case v.detected:
			res.Detected++
		case v.corrected:
			res.Corrected++
		default:
			res.Miscorrected++
		}
	}
	return res, nil
}

// trialVerdict is one Fig. 9 trial's classification.
type trialVerdict struct {
	detected  bool
	corrected bool
	guesses   uint64
}

// flipLineBernoulli flips each bit of line independently with probability
// p, redrawing the whole pattern until at least one bit flips: the §VI-F
// per-line fault injection, conditioned on the line being erroneous.
func flipLineBernoulli(line pte.Line, p float64, rng *stats.RNG) pte.Line {
	for {
		flipped := false
		out := line
		for bit := 0; bit < pte.LineBytes*8; bit++ {
			if rng.Bernoulli(p) {
				out[bit/64] = pte.Entry(uint64(out[bit/64]) ^ 1<<uint(bit%64))
				flipped = true
			}
		}
		if flipped {
			return out
		}
	}
}

func popConfig(seed uint64) ostable.SynthConfig {
	c := ostable.DefaultSynthConfig()
	c.Seed = seed
	return c
}

// payloadMatches compares the MAC-covered bits of the served line against
// the architectural original (the accessed bit and the base design's
// ignored field are uncovered by construction, Table IV).
func payloadMatches(got, want pte.Line, format pte.Format) bool {
	for i := range got {
		if uint64(got[i])&format.ProtectedMask != uint64(want[i])&format.ProtectedMask {
			return false
		}
	}
	return true
}
