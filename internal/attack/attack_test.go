package attack

import (
	"errors"
	"testing"

	"ptguard/internal/baseline"
	"ptguard/internal/core"
	"ptguard/internal/dram"
	"ptguard/internal/pte"
	"ptguard/internal/tlb"
)

func TestPrivilegeEscalationSucceedsUnprotected(t *testing.T) {
	w, err := NewWorld(false, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.PrivilegeEscalation(VictimVBase)
	if err != nil {
		t.Fatal(err)
	}
	if !out.ExploitSucceeded {
		t.Fatalf("exploit failed on unprotected system: %s", out.Description)
	}
	if out.Detected {
		t.Error("unprotected system claims detection")
	}
}

func TestPrivilegeEscalationDetectedByPTGuard(t *testing.T) {
	w, err := NewWorld(true, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.PrivilegeEscalation(VictimVBase)
	if err != nil {
		t.Fatal(err)
	}
	if out.ExploitSucceeded {
		t.Fatalf("exploit succeeded despite PT-Guard: %s", out.Description)
	}
	if !out.Detected {
		t.Errorf("PT-Guard did not detect: %s", out.Description)
	}
}

func TestPrivilegeEscalationThwartedByCorrection(t *testing.T) {
	// With correction enabled, a small exploit flip may be *repaired*
	// instead of raising an exception; either way the attacker never gets
	// the tampered translation.
	w, err := NewWorld(true, true, 5)
	if err != nil {
		t.Fatal(err)
	}
	out, err := w.PrivilegeEscalation(VictimVBase + 3*pte.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if out.ExploitSucceeded {
		t.Fatalf("exploit succeeded despite correction: %s", out.Description)
	}
}

func TestMetadataAttacks(t *testing.T) {
	bits := []struct {
		name string
		bit  int
	}{
		{name: "user-accessible", bit: pte.BitUserAccessible},
		{name: "writable", bit: pte.BitWritable},
		{name: "nx", bit: pte.BitNX},
		{name: "mpk", bit: 60},
	}
	for _, tt := range bits {
		t.Run(tt.name, func(t *testing.T) {
			unprot, err := NewWorld(false, false, 9)
			if err != nil {
				t.Fatal(err)
			}
			out, err := unprot.MetadataAttack(VictimVBase, tt.bit)
			if err != nil {
				t.Fatal(err)
			}
			if !out.ExploitSucceeded {
				t.Errorf("unprotected metadata attack failed: %s", out.Description)
			}

			prot, err := NewWorld(true, false, 9)
			if err != nil {
				t.Fatal(err)
			}
			out, err = prot.MetadataAttack(VictimVBase, tt.bit)
			if err != nil {
				t.Fatal(err)
			}
			if out.ExploitSucceeded || !out.Detected {
				t.Errorf("PT-Guard missed metadata attack: %s", out.Description)
			}
		})
	}
}

func TestHarvestMACLeaksTagButNotForgery(t *testing.T) {
	w, err := NewWorld(true, false, 33)
	if err != nil {
		t.Fatal(err)
	}
	h, err := w.HarvestMAC(0x200000, 7)
	if err != nil {
		t.Fatal(err)
	}
	empty := true
	for _, e := range h.MACField {
		if e != 0 {
			empty = false
		}
	}
	if empty {
		t.Fatal("harvest leaked no MAC bits")
	}
	// The leaked MAC is address-bound: replaying the forged line at a
	// different address must NOT collide (the guard key is never
	// exposed, so the attacker cannot recompute).
	forged := h.ForgeCollidingLine()
	res, err := w.Ctrl.WriteLine(h.Addr+0x40000, forged)
	_ = res
	if err != nil {
		t.Fatalf("replay write errored: %v", err)
	}
	if w.Guard().CTBLen() != 0 {
		t.Error("address-replayed forgery collided; MAC is not address-bound")
	}
}

func TestCTBOverflowDoSSignalsRekey(t *testing.T) {
	w, err := NewWorld(true, false, 44)
	if err != nil {
		t.Fatal(err)
	}
	tracked, err := w.CTBOverflowDoS(5)
	if !errors.Is(err, core.ErrCTBFull) {
		t.Fatalf("err = %v, want ErrCTBFull after overflow", err)
	}
	if tracked != core.DefaultCTBEntries {
		t.Errorf("tracked = %d, want %d before overflow", tracked, core.DefaultCTBEntries)
	}
}

func TestHarvestRequiresProtection(t *testing.T) {
	w, err := NewWorld(false, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.HarvestMAC(0x1000, 1); err == nil {
		t.Error("harvest on unprotected world accepted")
	}
	if _, err := w.CTBOverflowDoS(1); err == nil {
		t.Error("DoS on unprotected world accepted")
	}
}

func TestRunCoverage(t *testing.T) {
	res, err := RunCoverage(77, 150, 8)
	if err != nil {
		t.Fatal(err)
	}
	// §VI-F: PT-Guard detects 100% of injected faults.
	if res.PTGuardDetected != res.Trials {
		t.Errorf("PT-Guard detected %d/%d", res.PTGuardDetected, res.Trials)
	}
	// Monotonic pointers leave most patterns unprotected (metadata bits
	// or 0->1-free patterns are common).
	if res.MonotonicUnprotected == 0 {
		t.Error("monotonic pointers reported full coverage; model wrong")
	}
	t.Logf("coverage over %d trials: ptguard=%d secwalkMissed=%d secdedSilent=%d monotonicUnprot=%d",
		res.Trials, res.PTGuardDetected, res.SecWalkMissed, res.SECDEDSilent, res.MonotonicUnprotected)
}

func TestRunCoverageValidation(t *testing.T) {
	if _, err := RunCoverage(1, 0, 4); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunCoverage(1, 10, 0); err == nil {
		t.Error("zero flips accepted")
	}
	if _, err := RunCoverage(1, 10, 400); err == nil {
		t.Error("excessive flips accepted")
	}
}

func TestCraftedSecWalkEscapeCaughtByPTGuard(t *testing.T) {
	// The §II-E surgical pattern that fools SecWalk must still trip
	// PT-Guard's cryptographic check, end to end.
	w, err := NewWorld(true, false, 55)
	if err != nil {
		t.Fatal(err)
	}
	var sw baseline.SecWalk
	pattern, err := sw.CraftEscape(10)
	if err != nil {
		t.Fatal(err)
	}
	ea, ok := w.Tables.LeafEntryAddr(VictimVBase)
	if !ok {
		t.Fatal("victim unmapped")
	}
	lineAddr := ea &^ uint64(pte.LineBytes-1)
	entryIdx := int(ea / 8 % pte.PTEsPerLine)
	lineBits := make([]int, len(pattern))
	for i, b := range pattern {
		lineBits[i] = entryIdx*64 + b
	}
	w.Hammer.FlipLineBits(lineAddr, lineBits)
	if _, _, ok := w.Ctrl.ReadLine(lineAddr, true); ok {
		t.Error("SecWalk-escaping pattern passed PT-Guard")
	}
}

func TestRunCorrectionFig9(t *testing.T) {
	// Fig. 9 ground truth: ~93% corrected at p=1/512, ~70% at p=1/128,
	// 100% coverage (every erroneous line corrected or detected), zero
	// miscorrections.
	low, err := RunCorrection(CorrectionConfig{FlipProb: 1.0 / 512, Lines: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	high, err := RunCorrection(CorrectionConfig{FlipProb: 1.0 / 128, Lines: 400, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("p=1/512: corrected %.1f%% coverage %.1f%%; p=1/128: corrected %.1f%% coverage %.1f%%",
		low.CorrectedPct(), low.CoveragePct(), high.CorrectedPct(), high.CoveragePct())
	if low.Miscorrected != 0 || high.Miscorrected != 0 {
		t.Fatalf("miscorrections: %d + %d, want 0", low.Miscorrected, high.Miscorrected)
	}
	if low.CoveragePct() != 100 || high.CoveragePct() != 100 {
		t.Errorf("coverage must be 100%%: got %.1f%% and %.1f%%", low.CoveragePct(), high.CoveragePct())
	}
	if low.CorrectedPct() < 80 {
		t.Errorf("p=1/512 corrected %.1f%%, want ~93%%", low.CorrectedPct())
	}
	if high.CorrectedPct() < 55 || high.CorrectedPct() > 85 {
		t.Errorf("p=1/128 corrected %.1f%%, want ~70%%", high.CorrectedPct())
	}
	if low.CorrectedPct() <= high.CorrectedPct() {
		t.Error("correction rate must fall as flip probability rises")
	}
}

func TestRunCorrectionValidation(t *testing.T) {
	if _, err := RunCorrection(CorrectionConfig{FlipProb: 0, Lines: 10}); err == nil {
		t.Error("zero FlipProb accepted")
	}
	if _, err := RunCorrection(CorrectionConfig{FlipProb: 0.01, Lines: 0}); err == nil {
		t.Error("zero Lines accepted")
	}
}

func TestUpperLevelTableTampering(t *testing.T) {
	// PT-Guard protects all page-table levels (§IV-F). Corrupt the PML4
	// entry's line and confirm the walk aborts at level 0.
	w, err := NewWorld(true, false, 66)
	if err != nil {
		t.Fatal(err)
	}
	root := w.Tables.Root()
	// The victim's PML4 index: bits 47:39 of the VA.
	idx := attackIndex(VictimVBase, 0)
	ea := root + idx*8
	lineAddr := ea &^ uint64(pte.LineBytes-1)
	entryIdx := int(ea / 8 % pte.PTEsPerLine)
	w.Hammer.FlipLineBits(lineAddr, []int{entryIdx*64 + 15}) // PFN flip in PML4E
	res := w.Walker.Walk(root, VictimVBase)
	if !res.CheckFailed {
		t.Fatalf("PML4 tampering not detected: %+v", res)
	}
	if res.MemAccesses != 1 {
		t.Errorf("walk continued past the poisoned root: %d accesses", res.MemAccesses)
	}
}

func attackIndex(vaddr uint64, level int) uint64 {
	shift := uint(12 + 9*(3-level))
	return vaddr >> shift & 0x1FF
}

func TestDoubleSidedHammerOnPageTableRow(t *testing.T) {
	// Geometry-accurate attack: locate the DRAM row physically holding
	// the victim's leaf page table, double-side hammer its neighbours
	// past the threshold, and verify every poisoned PTE line in the row
	// is caught on its next walk.
	w, err := NewWorld(true, false, 88)
	if err != nil {
		t.Fatal(err)
	}
	// Re-arm the hammerer with a high flip probability so the row is
	// visibly corrupted within one hammering session.
	h, err := dram.NewHammerer(w.Dev, dram.HammerConfig{
		Threshold: dram.ThresholdDDR4,
		FlipProb:  0.25,
		Seed:      88,
	})
	if err != nil {
		t.Fatal(err)
	}
	ea, ok := w.Tables.LeafEntryAddr(VictimVBase)
	if !ok {
		t.Fatal("victim unmapped")
	}
	lineAddr := ea &^ uint64(pte.LineBytes-1)
	if flips := h.DoubleSided(lineAddr, dram.ThresholdDDR4); flips == 0 {
		t.Fatal("double-sided hammering induced no flips")
	}
	// Every protected PTE line stored in the hammered row must now fail
	// its walk check (or be absent, if the row held nothing there).
	rowBase, linesPerRow := w.Dev.RowBase(lineAddr)
	failed, present := 0, 0
	for c := 0; c < linesPerRow; c++ {
		addr := rowBase + uint64(c*pte.LineBytes)
		if _, isTable := w.Tables.LineAt(addr); !isTable {
			continue
		}
		present++
		if _, _, ok := w.Ctrl.ReadLine(addr, true); !ok {
			failed++
		}
	}
	if present == 0 {
		t.Fatal("hammered row held no table lines; geometry mapping broken")
	}
	// At p=0.25 per bit, a 512-bit line survives with probability ~1e-64.
	if failed != present {
		t.Errorf("only %d/%d poisoned table lines detected", failed, present)
	}
}

func TestDetectRemapRecoverWorkflow(t *testing.T) {
	// The full §IV-G OS response: PT-Guard detects flips in a table row,
	// the kernel migrates the table page to a fresh frame (quarantining
	// the vulnerable row), re-flushes it through the controller, and the
	// system resumes with intact translations.
	w, err := NewWorld(true, false, 99)
	if err != nil {
		t.Fatal(err)
	}
	ea, ok := w.Tables.LeafEntryAddr(VictimVBase)
	if !ok {
		t.Fatal("victim unmapped")
	}
	wantPFN, _ := w.Tables.Translate(VictimVBase)
	oldPage := ea &^ uint64(pte.PageSize-1)

	// Rowhammer corrupts the leaf table page; the walk detects it.
	w.Hammer.FlipLineBits(ea&^uint64(pte.LineBytes-1), []int{14, 30})
	if res := w.Walker.Walk(w.Tables.Root(), VictimVBase); !res.CheckFailed {
		t.Fatal("corruption not detected")
	}

	// OS response: migrate the page, re-flush ALL table lines (the moved
	// page and the updated parent), shoot down stale walker state.
	newPage, err := w.Tables.RemapTablePage(oldPage)
	if err != nil {
		t.Fatal(err)
	}
	if newPage == oldPage {
		t.Fatal("remap returned the same frame")
	}
	var flushErr error
	w.Tables.Lines(func(addr uint64, line pte.Line) {
		if _, werr := w.Ctrl.WriteLine(addr, line); werr != nil && flushErr == nil {
			flushErr = werr
		}
	})
	if flushErr != nil {
		t.Fatal(flushErr)
	}
	fresh, err := tlb.NewWalker(func(addr uint64) (pte.Line, bool) {
		line, _, ok := w.Ctrl.ReadLine(addr, true)
		return line, ok
	})
	if err != nil {
		t.Fatal(err)
	}
	res := fresh.Walk(w.Tables.Root(), VictimVBase)
	if res.CheckFailed || res.Fault {
		t.Fatalf("post-recovery walk failed: %+v", res)
	}
	if res.PFN != wantPFN {
		t.Errorf("post-recovery PFN = %#x, want %#x", res.PFN, wantPFN)
	}
	// Every other victim page must still translate too.
	for i := 0; i < VictimPages; i++ {
		va := VictimVBase + uint64(i)*pte.PageSize
		if r := fresh.Walk(w.Tables.Root(), va); r.CheckFailed || r.Fault {
			t.Fatalf("page %d broken after recovery: %+v", i, r)
		}
	}
}

func TestRemapValidation(t *testing.T) {
	w, err := NewWorld(false, false, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Tables.RemapTablePage(w.Tables.Root()); err == nil {
		t.Error("remapping the root accepted")
	}
	if _, err := w.Tables.RemapTablePage(0xDEAD000); err == nil {
		t.Error("remapping a non-table page accepted")
	}
}
