package attack

import (
	"runtime"
	"testing"
)

// withGOMAXPROCS runs f at the given parallelism and restores the old value.
func withGOMAXPROCS(n int, f func()) {
	old := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(old)
	f()
}

// TestRunCorrectionShardDeterminism: the Fig. 9 trial loop is sharded
// across GOMAXPROCS goroutines; the same config must give bit-identical
// results serial vs parallel (each trial's RNG is derived from its index,
// never from a shared stream).
func TestRunCorrectionShardDeterminism(t *testing.T) {
	cfg := CorrectionConfig{FlipProb: 1.0 / 256, Lines: 150, Seed: 31}
	var serial, parallel CorrectionResult
	var serr, perr error
	withGOMAXPROCS(1, func() { serial, serr = RunCorrection(cfg) })
	withGOMAXPROCS(8, func() { parallel, perr = RunCorrection(cfg) })
	if serr != nil {
		t.Fatal(serr)
	}
	if perr != nil {
		t.Fatal(perr)
	}
	if serial != parallel {
		t.Errorf("serial vs GOMAXPROCS=8 diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}

// TestRunCoverageShardDeterminism: same property for the defense-coverage
// comparison, whose shard workers each rebuild their own world from the
// seed.
func TestRunCoverageShardDeterminism(t *testing.T) {
	var serial, parallel CoverageResult
	var serr, perr error
	withGOMAXPROCS(1, func() { serial, serr = RunCoverage(77, 200, 6) })
	withGOMAXPROCS(8, func() { parallel, perr = RunCoverage(77, 200, 6) })
	if serr != nil {
		t.Fatal(serr)
	}
	if perr != nil {
		t.Fatal(perr)
	}
	if serial != parallel {
		t.Errorf("serial vs GOMAXPROCS=8 diverged:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
