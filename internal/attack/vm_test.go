package attack

import (
	"testing"

	"ptguard/internal/obs"
	"ptguard/internal/virt"
)

func TestRunVMTrialValidation(t *testing.T) {
	if _, err := RunVMTrial(VMTrialConfig{Tenants: 1, Placement: "none", Target: VMTargetGuest}); err == nil {
		t.Fatal("accepted a single-tenant trial (no attacker possible)")
	}
	if _, err := RunVMTrial(VMTrialConfig{Tenants: 2, Placement: "ept", Target: VMTargetGuest}); err == nil {
		t.Fatal("accepted an unknown placement")
	}
	if _, err := RunVMTrial(VMTrialConfig{Tenants: 2, Placement: "none", Target: "hypervisor"}); err == nil {
		t.Fatal("accepted an unknown target")
	}
}

func TestRunVMTrialDistinctRoles(t *testing.T) {
	for seed := uint64(0); seed < 8; seed++ {
		r, err := RunVMTrial(VMTrialConfig{
			Tenants: 3, PagesPerVM: 4, Placement: "none", Target: VMTargetGuest,
			Seed: seed, Acts: 64,
		})
		if err != nil {
			t.Fatal(err)
		}
		if r.VictimVM == r.AttackerVM {
			t.Fatalf("seed %d: attacker and victim are the same VM %d", seed, r.VictimVM)
		}
		if r.VictimVM < 0 || r.VictimVM >= 3 || r.AttackerVM < 0 || r.AttackerVM >= 3 {
			t.Fatalf("seed %d: roles out of range: victim %d attacker %d", seed, r.VictimVM, r.AttackerVM)
		}
	}
}

// TestVMTrialGuardPlacements drives enough activations to flip victim table
// rows and checks the taxonomy tracks the guard placement. Guarding the
// targeted layer eliminates silent corruption; leaving it unguarded lets
// corruption through as silent flips or faults. One asymmetry is real and
// pinned here: under guest-only protection a stage-2 attack can still be
// *detected* — a silently corrupted stage-2 pointer sends the guest
// dimension to a host line the guest guard never MACed — but the final
// data-page stage-2 walk stays exploitable, so silent corruption survives.
func TestVMTrialGuardPlacements(t *testing.T) {
	for _, tc := range []struct {
		placement string
		target    string
		// wantNoSilent: the targeted layer is guarded, so no walk may
		// consume a tampered frame. wantNoDetect: nothing on the walk
		// path carries a MAC that the corruption can trip.
		wantNoSilent bool
		wantNoDetect bool
	}{
		{"none", VMTargetGuest, false, true},
		{"none", VMTargetStage2, false, true},
		{"guest", VMTargetGuest, true, false},
		{"stage2", VMTargetStage2, true, false},
		{"stage2", VMTargetGuest, false, true},
		{"guest", VMTargetStage2, false, false},
		{"both", VMTargetGuest, true, false},
		{"both", VMTargetStage2, true, false},
	} {
		t.Run(tc.placement+"/"+tc.target, func(t *testing.T) {
			var detected, silent, faulted, flipped int
			for seed := uint64(0); seed < 6; seed++ {
				r, err := RunVMTrial(VMTrialConfig{
					Tenants: 4, PagesPerVM: 8, Placement: tc.placement, Target: tc.target,
					Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				detected += r.Detected
				silent += r.Silent
				faulted += r.Faulted
				flipped += r.RowsFlipped
				if r.MaxWalkAccesses > 24 {
					t.Fatalf("seed %d: walk cost %d exceeds the 2-D bound", seed, r.MaxWalkAccesses)
				}
				if r.WalksChecked != 8 {
					t.Fatalf("seed %d: checked %d walks, want 8", seed, r.WalksChecked)
				}
			}
			if flipped == 0 {
				t.Fatal("no rows flipped across 6 seeds; trial knobs too weak to exercise the taxonomy")
			}
			if tc.wantNoSilent {
				if silent != 0 {
					t.Fatalf("guarded target leaked %d silent corruptions", silent)
				}
				if detected == 0 {
					t.Fatal("guarded target detected nothing despite flips")
				}
			} else if silent+faulted == 0 {
				t.Fatal("unguarded target produced no visible corruption across 6 seeds")
			}
			if tc.wantNoDetect && detected != 0 {
				t.Fatalf("no MAC on the corrupted path, yet %d detections", detected)
			}
		})
	}
}

func TestVMTrialStage2Attribution(t *testing.T) {
	var s2det, det int
	for seed := uint64(0); seed < 6; seed++ {
		r, err := RunVMTrial(VMTrialConfig{
			Tenants: 4, PagesPerVM: 8, Placement: "both", Target: VMTargetStage2, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		det += r.Detected
		s2det += r.DetectedStage2
	}
	if det == 0 {
		t.Fatal("no detections to attribute")
	}
	if s2det != det {
		t.Fatalf("stage-2 attack: %d of %d detections attributed to stage-2, want all", s2det, det)
	}
}

func TestVMTrialDeterministic(t *testing.T) {
	cfg := VMTrialConfig{
		Tenants: 5, PagesPerVM: 6, Placement: "guest", Target: VMTargetGuest, Seed: 99,
	}
	a, err := RunVMTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunVMTrial(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

func TestVMTrialPublishesObs(t *testing.T) {
	r, err := RunVMTrial(VMTrialConfig{
		Tenants: 2, PagesPerVM: 4, Placement: "both", Target: VMTargetGuest,
		Seed: 1, Acts: 256, Obs: &obs.Options{},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Obs == nil {
		t.Fatal("trial with Obs set returned no RunMetrics")
	}
	for _, key := range []string{"walker2d.walks", "virt.guest.reads", "virt.stage2.reads",
		"tlb.misses", "attack.vm.rows_hammered",
		"attack.vm.audit_guest_lines", "attack.vm.audit_stage2_dirty"} {
		if _, ok := r.Obs.Counters[key]; !ok {
			t.Fatalf("metrics missing %q after trial", key)
		}
	}
	// Obs off must stay off (zero-overhead default).
	r2, err := RunVMTrial(VMTrialConfig{
		Tenants: 2, PagesPerVM: 4, Placement: "both", Target: VMTargetGuest,
		Seed: 1, Acts: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Obs != nil {
		t.Fatal("trial without Obs returned RunMetrics")
	}
}

func TestVMTrialTableAudit(t *testing.T) {
	var dirty, detected int
	for seed := uint64(0); seed < 6; seed++ {
		r, err := RunVMTrial(VMTrialConfig{
			Tenants: 4, PagesPerVM: 8, Placement: "guest", Target: VMTargetGuest, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !r.TableAudit.Guest.Audited || r.TableAudit.Stage2.Audited {
			t.Fatalf("seed %d: audit flags %+v do not match placement guest", seed, r.TableAudit)
		}
		if r.TableAudit.Guest.Lines == 0 {
			t.Fatalf("seed %d: guest audit swept no lines", seed)
		}
		// Every detected walk read a table line whose MAC check failed; the
		// pre-walk audit must have seen that line dirty.
		if r.Detected > 0 && r.TableAudit.Guest.Dirty == 0 {
			t.Fatalf("seed %d: %d detections but the table audit saw no dirty lines", seed, r.Detected)
		}
		dirty += r.TableAudit.Guest.Dirty
		detected += r.Detected
	}
	if dirty == 0 || detected == 0 {
		t.Fatalf("across 6 seeds: %d dirty lines, %d detections; knobs too weak to exercise the audit", dirty, detected)
	}
}

func TestVMTargetNamesParse(t *testing.T) {
	if len(VMTargetNames()) != 2 {
		t.Fatal("want exactly two inter-VM targets")
	}
	for _, p := range virt.PlacementNames() {
		if _, err := virt.ParsePlacement(p); err != nil {
			t.Fatal(err)
		}
	}
}
