package attack

import (
	"fmt"

	"ptguard/internal/dram"
	"ptguard/internal/obs"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
	"ptguard/internal/virt"
)

// Inter-VM attack target surfaces: which layer's page tables the attacker
// VM hammers rows adjacent to.
const (
	// VMTargetGuest aims at the victim tenant's own guest page tables.
	VMTargetGuest = "guest"
	// VMTargetStage2 aims at the hypervisor's stage-2/EPT tables for the
	// victim — the cross-privilege escalation surface nested paging adds.
	VMTargetStage2 = "stage2"
)

// VMTargetNames lists the attack targets in sweep order.
func VMTargetNames() []string { return []string{VMTargetGuest, VMTargetStage2} }

// VMTrialConfig declares one inter-VM Rowhammer trial: a multi-tenant host
// under one guard placement, one attacker VM hammering rows adjacent to one
// victim VM's chosen table layer.
type VMTrialConfig struct {
	// Tenants is the VM fleet size (at least 2: attacker and victim).
	Tenants int
	// PagesPerVM is each tenant's leaf mapping count; 0 selects the virt
	// default.
	PagesPerVM int
	// Placement names the guarded layers ("none", "guest", "stage2",
	// "both").
	Placement string
	// Target names the hammered surface (VMTargetGuest or VMTargetStage2).
	Target string
	// Correction enables the §VI correction engine on guarded layers.
	Correction bool
	// Seed drives everything: host layout, victim/attacker pick, fault
	// model.
	Seed uint64
	// Threshold is the charge-loss flip threshold; 0 selects
	// DefaultTrialThreshold.
	Threshold int
	// Acts is the per-row double-sided activation count; 0 selects
	// DefaultTrialActs.
	Acts int
	// FlipProb is the per-bit flip probability on a threshold crossing; 0
	// selects the LPDDR4 worst case.
	FlipProb float64
	// Obs, when non-nil, enables observability: controller/DRAM events are
	// traced, the host's counters are published, and the collected
	// RunMetrics land in VMTrialResult.Obs.
	Obs *obs.Options
}

func (c VMTrialConfig) withDefaults() VMTrialConfig {
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.Threshold == 0 {
		c.Threshold = DefaultTrialThreshold
	}
	if c.Acts == 0 {
		c.Acts = DefaultTrialActs
	}
	if c.FlipProb == 0 {
		c.FlipProb = dram.FlipProbLPDDR4
	}
	return c
}

// VMTrialResult is one inter-VM trial's outcome, classified with the same
// detected/faulted/silent/intact taxonomy as the 1-D campaigns.
type VMTrialResult struct {
	// Tenants, Placement, Target echo the configuration.
	Tenants   int
	Placement string
	Target    string
	// VictimVM and AttackerVM are the seed-chosen tenants.
	VictimVM   int
	AttackerVM int
	// RowsHammered is the number of distinct DRAM rows holding victim
	// table lines that were double-sided hammered; RowsFlipped counts how
	// many took at least one flip.
	RowsHammered int
	RowsFlipped  int
	// WalksChecked is the number of victim pages translated post-attack.
	WalksChecked int
	// Detected counts walks aborted by a PT-Guard integrity exception;
	// DetectedStage2 is the subset caught in the stage-2 dimension.
	Detected       int
	DetectedStage2 int
	// Faulted counts walks that hit a non-present entry (a crash).
	Faulted int
	// Silent counts walks that consumed a tampered host frame — the
	// attacker's cross-VM win condition.
	Silent int
	// Intact counts walks that returned the pristine translation.
	Intact int
	// MaxWalkAccesses is the costliest 2-D walk observed (≤ 24).
	MaxWalkAccesses int
	// TableAudit is the post-hammer batch integrity audit of the victim's
	// stored table lines in both layers (virt.Host.AuditTables), taken
	// before the walk classification touches — and possibly corrects — the
	// tables: Dirty counts lines a guarded layer would flag on a walk.
	TableAudit virt.TablesAudit
	// Obs carries the trial's observability data when the config asked for
	// it (metrics, time series, trace).
	Obs *obs.RunMetrics `json:"obs,omitempty"`
}

// Defeated reports the attacker got at least one silent corruption.
func (r VMTrialResult) Defeated() bool { return r.Silent > 0 }

// CoveragePct is the share of corrupted walks PT-Guard caught.
func (r VMTrialResult) CoveragePct() float64 {
	bad := r.Detected + r.Silent
	if bad == 0 {
		return 100
	}
	return 100 * float64(r.Detected) / float64(bad)
}

// RunVMTrial plays one inter-VM Rowhammer scenario: build a multi-tenant
// host under the given guard placement, pick a victim and a distinct
// attacker from the seed, double-sided hammer every DRAM row holding the
// victim's targeted table layer (the attacker only needs row adjacency, not
// access — the Rowhammer threat model), then translate every victim page
// and classify each walk.
func RunVMTrial(cfg VMTrialConfig) (VMTrialResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Tenants < 2 {
		return VMTrialResult{}, fmt.Errorf("attack: inter-VM trial needs at least 2 tenants, got %d", cfg.Tenants)
	}
	placement, err := virt.ParsePlacement(cfg.Placement)
	if err != nil {
		return VMTrialResult{}, err
	}
	switch cfg.Target {
	case VMTargetGuest, VMTargetStage2:
	default:
		return VMTrialResult{}, fmt.Errorf("attack: unknown inter-VM target %q (want %q or %q)",
			cfg.Target, VMTargetGuest, VMTargetStage2)
	}

	host, err := virt.NewHost(virt.Config{
		Tenants:    cfg.Tenants,
		PagesPerVM: cfg.PagesPerVM,
		Placement:  placement,
		Correction: cfg.Correction,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return VMTrialResult{}, err
	}
	var observer *obs.Observer
	if cfg.Obs != nil {
		observer = obs.New(*cfg.Obs)
		host.SetObserver(observer)
	}

	pick := stats.NewRNG(stats.DeriveSeed(cfg.Seed, "attack/vm/victim"))
	victim := int(pick.Uint64() % uint64(cfg.Tenants))
	attacker := int(pick.Uint64() % uint64(cfg.Tenants-1))
	if attacker >= victim {
		attacker++
	}

	var lines []uint64
	if cfg.Target == VMTargetGuest {
		lines, err = host.GuestTableLines(victim)
	} else {
		lines, err = host.Stage2TableLines(victim)
	}
	if err != nil {
		return VMTrialResult{}, err
	}

	hammer, err := dram.NewHammerer(host.Dev, dram.HammerConfig{
		Threshold: cfg.Threshold,
		FlipProb:  cfg.FlipProb,
		Seed:      stats.DeriveSeed(cfg.Seed, "attack/vm/hammer"),
	})
	if err != nil {
		return VMTrialResult{}, err
	}

	res := VMTrialResult{
		Tenants:   cfg.Tenants,
		Placement: string(placement),
		Target:    cfg.Target,
		VictimVM:  victim, AttackerVM: attacker,
	}

	// One double-sided burst per distinct row holding victim table lines,
	// in first-seen (ascending line address) order for determinism.
	seenRows := make(map[uint64]bool)
	for _, addr := range lines {
		base, _ := host.Dev.RowBase(addr)
		if seenRows[base] {
			continue
		}
		seenRows[base] = true
		res.RowsHammered++
		if hammer.DoubleSided(addr, cfg.Acts) > 0 {
			res.RowsFlipped++
		}
	}

	// Caches would mask stale translations: shoot everything down, as the
	// hypervisor's next scheduling tick would.
	host.FlushAll()

	// Batch-audit the victim's stored tables before any walk can correct
	// them: the guard-side ground truth the per-walk classification below is
	// compared against.
	if res.TableAudit, err = host.AuditTables(victim); err != nil {
		return VMTrialResult{}, err
	}

	for i := 0; i < host.VMs[victim].Pages(); i++ {
		vaddr := uint64(virt.GuestVBase) + uint64(i)*pte.PageSize
		want, ok := host.SoftTranslate(victim, vaddr)
		if !ok {
			continue
		}
		res.WalksChecked++
		tr, terr := host.Translate(victim, vaddr)
		if terr != nil {
			return VMTrialResult{}, terr
		}
		switch {
		case tr.CheckFailed:
			res.Detected++
			if tr.Stage2 {
				res.DetectedStage2++
			}
		case tr.Fault:
			res.Faulted++
		case tr.HostPFN != want:
			res.Silent++
		default:
			res.Intact++
		}
		if tr.MemAccesses > res.MaxWalkAccesses {
			res.MaxWalkAccesses = tr.MemAccesses
		}
	}

	if observer != nil {
		reg := observer.Registry()
		host.PublishObs(reg)
		reg.SetCounter("attack.vm.rows_hammered", uint64(res.RowsHammered))
		reg.SetCounter("attack.vm.rows_flipped", uint64(res.RowsFlipped))
		reg.SetCounter("attack.vm.audit_guest_lines", uint64(res.TableAudit.Guest.Lines))
		reg.SetCounter("attack.vm.audit_guest_dirty", uint64(res.TableAudit.Guest.Dirty))
		reg.SetCounter("attack.vm.audit_stage2_lines", uint64(res.TableAudit.Stage2.Lines))
		reg.SetCounter("attack.vm.audit_stage2_dirty", uint64(res.TableAudit.Stage2.Dirty))
		observer.Snapshot(observer.Now(), uint64(res.WalksChecked))
		res.Obs = observer.RunMetrics(true)
	}
	return res, nil
}
