// Package attack implements the Rowhammer exploit scenarios of §II-C and
// §IV-G end to end against the simulated memory system: privilege
// escalation through PFN flips, metadata (user/supervisor, W^X, MPK) flips,
// the known-plaintext MAC-harvesting attack, and the CTB-overflow
// denial-of-service, each evaluated with and without PT-Guard.
package attack

import (
	"errors"
	"fmt"
	"math/bits"

	"ptguard/internal/core"
	"ptguard/internal/dram"
	"ptguard/internal/mac"
	"ptguard/internal/memctrl"
	"ptguard/internal/obs"
	"ptguard/internal/ostable"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
	"ptguard/internal/tlb"
)

// VictimPages is the size of the victim mapping each world sets up.
const VictimPages = 64

// VictimVBase is the victim region's virtual base.
const VictimVBase = 0x40_0000_0000

// World is a self-contained attack sandbox: a DRAM device with a victim
// process's page tables flushed through a (possibly PT-Guard-equipped)
// memory controller, plus a hammerer aimed at it.
type World struct {
	Dev    *dram.Device
	Ctrl   *memctrl.Controller
	Alloc  *ostable.FrameAllocator
	Tables *ostable.PageTables
	Hammer *dram.Hammerer
	Walker *tlb.Walker

	guard *core.Guard
}

// WorldConfig parameterises NewWorldWith beyond the NewWorld defaults.
type WorldConfig struct {
	// Protected selects PT-Guard at the memory controller.
	Protected bool
	// Correction enables the §VI correction engine (implies Protected).
	Correction bool
	// Seed feeds the key and fault RNGs.
	Seed uint64
	// Hammer overrides the disturbance model; a zero Seed inherits Seed,
	// zero Threshold/FlipProb keep the dram defaults. Mitigation
	// campaigns use this to scale the flip threshold down to tractable
	// activation counts.
	Hammer dram.HammerConfig
}

// NewWorld builds the sandbox. protected selects PT-Guard at the
// controller; correction enables the §VI engine.
func NewWorld(protected, correction bool, seed uint64) (*World, error) {
	return NewWorldWith(WorldConfig{Protected: protected, Correction: correction, Seed: seed})
}

// NewWorldWith builds the sandbox from an explicit configuration.
func NewWorldWith(cfg WorldConfig) (*World, error) {
	protected, correction, seed := cfg.Protected, cfg.Correction, cfg.Seed
	dev, err := dram.NewDevice(dram.Geometry{}, dram.Timing{})
	if err != nil {
		return nil, err
	}
	var guard *core.Guard
	if protected {
		format, ferr := pte.FormatX86(40)
		if ferr != nil {
			return nil, ferr
		}
		key := make([]byte, mac.KeySize)
		kr := stats.NewRNG(seed ^ 0x6B65)
		for i := range key {
			key[i] = byte(kr.Uint64())
		}
		guard, err = core.NewGuard(core.Config{
			Format:           format,
			Key:              key,
			EnableCorrection: correction,
			SoftMatchK:       softK(correction),
		})
		if err != nil {
			return nil, err
		}
	}
	ctrl, err := memctrl.New(dev, guard, 0)
	if err != nil {
		return nil, err
	}
	alloc, err := ostable.NewFrameAllocator(4096, dev.Geometry().Capacity()/pte.PageSize-4096)
	if err != nil {
		return nil, err
	}
	tables, err := ostable.NewPageTables(alloc)
	if err != nil {
		return nil, err
	}
	flags := pte.Entry(0).SetBit(pte.BitWritable, true).SetBit(pte.BitUserAccessible, true)
	for i := 0; i < VictimPages; i++ {
		pfn, aerr := alloc.AllocFrame()
		if aerr != nil {
			return nil, aerr
		}
		if merr := tables.Map(VictimVBase+uint64(i)*pte.PageSize, pfn, flags); merr != nil {
			return nil, merr
		}
	}
	var flushAddrs []uint64
	var flushLines []pte.Line
	tables.Lines(func(addr uint64, line pte.Line) {
		flushAddrs = append(flushAddrs, addr)
		flushLines = append(flushLines, line)
	})
	if _, werr := ctrl.WriteLinesBatch(flushAddrs, flushLines); werr != nil {
		return nil, werr
	}
	hcfg := cfg.Hammer
	if hcfg.Seed == 0 {
		hcfg.Seed = seed
	}
	hammer, err := dram.NewHammerer(dev, hcfg)
	if err != nil {
		return nil, err
	}
	w := &World{Dev: dev, Ctrl: ctrl, Alloc: alloc, Tables: tables, Hammer: hammer, guard: guard}
	w.Walker, err = tlb.NewWalker(func(addr uint64) (pte.Line, bool) {
		line, _, ok := ctrl.ReadLine(addr, true)
		return line, ok
	})
	if err != nil {
		return nil, err
	}
	return w, nil
}

func softK(correction bool) int {
	if correction {
		return 4
	}
	return 0
}

// Outcome summarises one attack attempt.
type Outcome struct {
	// Detected reports PT-Guard raised PTECheckFailed (or the correction
	// engine repaired the line, also thwarting the exploit).
	Detected bool
	// ExploitSucceeded reports the attacker obtained the tampered
	// translation or permission.
	ExploitSucceeded bool
	// Description explains what happened.
	Description string
}

// PrivilegeEscalation mounts the Fig. 1/Fig. 3 exploit: flip PFN bits in
// the victim's own leaf PTE so it points at a page-table page, giving the
// attacker read/write access to PTEs.
func (w *World) PrivilegeEscalation(victimVaddr uint64) (Outcome, error) {
	ea, ok := w.Tables.LeafEntryAddr(victimVaddr)
	if !ok {
		return Outcome{}, fmt.Errorf("attack: vaddr %#x not mapped", victimVaddr)
	}
	origPFN, ok := w.Tables.Translate(victimVaddr)
	if !ok {
		return Outcome{}, errors.New("attack: victim translation missing")
	}
	// Target: the leaf page-table page itself (self-referencing PTE).
	targetPFN := ea >> pte.PageShift
	diff := (origPFN ^ targetPFN) & 0xFFFFFFF
	var flipBits []int
	entryIdx := int(ea / 8 % pte.PTEsPerLine)
	for diff != 0 {
		b := bits.TrailingZeros64(diff)
		diff &= diff - 1
		flipBits = append(flipBits, entryIdx*64+pte.PageShift+b)
	}
	if len(flipBits) == 0 {
		return Outcome{}, errors.New("attack: victim already self-referencing")
	}
	lineAddr := ea &^ uint64(pte.LineBytes-1)
	w.Hammer.FlipLineBits(lineAddr, flipBits)

	res := w.Walker.Walk(w.Tables.Root(), victimVaddr)
	switch {
	case res.CheckFailed:
		return Outcome{Detected: true, Description: "PTECheckFailed raised on the poisoned walk"}, nil
	case res.Fault:
		return Outcome{Description: "walk faulted; exploit failed without detection"}, nil
	case res.PFN == targetPFN:
		return Outcome{
			ExploitSucceeded: true,
			Description:      "translation now maps a page-table page: attacker controls PTEs",
		}, nil
	case res.PFN == origPFN:
		return Outcome{
			Detected:    w.guard != nil,
			Description: "original translation served (flips corrected)",
		}, nil
	default:
		return Outcome{Description: fmt.Sprintf("unexpected PFN %#x", res.PFN)}, nil
	}
}

// MetadataAttack flips a non-PFN PTE field — e.g. the user-accessible bit
// on a supervisor page, or NX to make injected stack code executable
// (§II-C) — and checks whether the tampered permission is consumed.
func (w *World) MetadataAttack(victimVaddr uint64, bit int) (Outcome, error) {
	ea, ok := w.Tables.LeafEntryAddr(victimVaddr)
	if !ok {
		return Outcome{}, fmt.Errorf("attack: vaddr %#x not mapped", victimVaddr)
	}
	entryIdx := int(ea / 8 % pte.PTEsPerLine)
	lineAddr := ea &^ uint64(pte.LineBytes-1)
	before := w.Dev.ReadLine(lineAddr)[entryIdx]
	w.Hammer.FlipLineBits(lineAddr, []int{entryIdx*64 + bit})

	res := w.Walker.Walk(w.Tables.Root(), victimVaddr)
	switch {
	case res.CheckFailed:
		return Outcome{Detected: true, Description: "metadata flip detected on walk"}, nil
	case res.Fault:
		return Outcome{Description: "walk faulted"}, nil
	case res.Entry.Bit(bit) != before.Bit(bit):
		return Outcome{
			ExploitSucceeded: true,
			Description:      fmt.Sprintf("tampered bit %d consumed by the walker", bit),
		}, nil
	default:
		return Outcome{
			Detected:    w.guard != nil,
			Description: "original metadata served (flips corrected)",
		}, nil
	}
}

// Guard exposes the world's PT-Guard instance (nil when unprotected).
func (w *World) Guard() *core.Guard { return w.guard }

// Observe attaches the observability subsystem to the sandbox's memory
// controller (and through it the guard and DRAM device), so hammering and
// verification emit trace events and PublishObs can snapshot the counters.
func (w *World) Observe(o *obs.Observer) { w.Ctrl.SetObserver(o) }

// PublishObs feeds the sandbox's controller/guard/device counters into the
// metric registry (a nil registry is a no-op).
func (w *World) PublishObs(r *obs.Registry) {
	w.Ctrl.PublishObs(r)
	w.Walker.PublishObs(r)
}

// Shootdown models the TLB/MMU-cache shootdown the OS performs after
// modifying page tables (e.g. the §IV-G row-remap): the walker's cached
// upper-level entries are discarded so subsequent walks re-read memory.
func (w *World) Shootdown() error {
	walker, err := tlb.NewWalker(func(addr uint64) (pte.Line, bool) {
		line, _, ok := w.Ctrl.ReadLine(addr, true)
		return line, ok
	})
	if err != nil {
		return err
	}
	w.Walker = walker
	return nil
}
