package attack

import (
	"errors"
	"fmt"

	"ptguard/internal/core"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// HarvestedMAC is the result of the §IV-G known-plaintext attack: the
// attacker has learned the MAC for chosen data at a chosen address without
// ever holding the key.
type HarvestedMAC struct {
	// Data is the attacker-chosen line (MAC field zeroed).
	Data pte.Line
	// MACField is the leaked MAC bit pattern for Data at Addr.
	MACField pte.Line
	// Addr is the physical address the MAC is bound to.
	Addr uint64
}

// HarvestMAC executes the known-plaintext flow against a protected world:
//
//  1. write attacker data whose MAC-field bits are zero, so PT-Guard embeds
//     a MAC;
//  2. hammer one payload bit so the read-path MAC compare fails;
//  3. read the line back: PT-Guard forwards it unchanged, MAC included;
//  4. undo the known flip — the attacker now holds (data, MAC, addr).
//
// The paper argues (and the tests verify) this is harmless for forgery —
// MACs resist known-plaintext attacks — but it enables the CTB-overflow
// nuisance below.
func (w *World) HarvestMAC(addr uint64, seed uint64) (HarvestedMAC, error) {
	if w.guard == nil {
		return HarvestedMAC{}, errors.New("attack: known-plaintext needs a protected world")
	}
	r := stats.NewRNG(seed)
	var data pte.Line
	for i := range data {
		// Attacker-chosen content with the pattern bits zeroed.
		data[i] = pte.Entry(r.Uint64() &^ (pte.MaskMAC | pte.MaskIdentifier))
	}
	if _, err := w.Ctrl.WriteLine(addr, data); err != nil {
		return HarvestedMAC{}, err
	}
	// Step 2: one payload flip (bit 1 of entry 0).
	const flipBit = 1
	w.Hammer.FlipLineBits(addr, []int{flipBit})
	// Step 3: regular data read; the MAC mismatch forwards the raw line.
	leaked, _, ok := w.Ctrl.ReadLine(addr, false)
	if !ok {
		return HarvestedMAC{}, errors.New("attack: data read unexpectedly failed closed")
	}
	// Step 4: undo the known flip.
	leaked[0] = pte.Entry(uint64(leaked[0]) ^ 1<<flipBit)
	var macOnly pte.Line
	for i := range leaked {
		macOnly[i] = pte.Entry(uint64(leaked[i]) & pte.MaskMAC)
	}
	return HarvestedMAC{Data: data, MACField: macOnly, Addr: addr}, nil
}

// ForgeCollidingLine combines harvested data with its MAC into a line whose
// stored MAC-field bits equal the MAC the read path computes: a colliding
// line the CTB must track (§VII-B).
func (h HarvestedMAC) ForgeCollidingLine() pte.Line {
	var line pte.Line
	for i := range line {
		line[i] = pte.Entry(uint64(h.Data[i]) | uint64(h.MACField[i]))
	}
	return line
}

// CTBOverflowDoS mounts the §VII-B performance-degradation attack: the
// attacker forges colliding lines at distinct addresses until the CTB
// overflows, forcing the system into re-keying. It returns the number of
// collisions tracked before the overflow signal fired.
func (w *World) CTBOverflowDoS(seed uint64) (tracked int, err error) {
	if w.guard == nil {
		return 0, errors.New("attack: DoS needs a protected world")
	}
	capEntries := w.guard.Config().CTBEntries
	for i := 0; i <= capEntries; i++ {
		addr := uint64(0x100000 + i*pte.LineBytes)
		h, herr := w.HarvestMAC(addr, seed+uint64(i))
		if herr != nil {
			return tracked, herr
		}
		_, werr := w.Ctrl.WriteLine(h.Addr, h.ForgeCollidingLine())
		switch {
		case werr == nil:
			tracked = w.guard.CTBLen()
		case errors.Is(werr, core.ErrCTBFull):
			return tracked, core.ErrCTBFull
		default:
			return tracked, fmt.Errorf("attack: forge write: %w", werr)
		}
	}
	return tracked, nil
}
