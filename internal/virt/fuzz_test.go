package virt

import (
	"testing"

	"ptguard/internal/dram"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// FuzzNestedWalk drives random guest-virtual addresses and random table
// corruption through the 2-D walker and pins its safety contract: a walk
// never panics whatever garbage the tables hold, and a walk that raised an
// integrity exception never yields a usable host frame.
func FuzzNestedWalk(f *testing.F) {
	f.Add(uint64(GuestVBase), uint64(0), uint8(0))
	f.Add(uint64(GuestVBase)+pte.PageSize, uint64(1), uint8(3))
	f.Add(uint64(0), uint64(42), uint8(255))
	f.Add(^uint64(0), uint64(7), uint8(16))
	f.Fuzz(func(t *testing.T, vaddr, corrSeed uint64, nflips uint8) {
		h, err := NewHost(Config{Tenants: 2, PagesPerVM: 4, Placement: PlacementBoth, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		// Corrupt random bits of random victim table lines, both layers.
		var lines []uint64
		for vmid := 0; vmid < 2; vmid++ {
			g, _ := h.GuestTableLines(vmid)
			s, _ := h.Stage2TableLines(vmid)
			lines = append(lines, g...)
			lines = append(lines, s...)
		}
		hammer, err := dram.NewHammerer(h.Dev, dram.HammerConfig{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		rng := stats.NewRNG(corrSeed)
		for i := 0; i < int(nflips); i++ {
			addr := lines[rng.Uint64()%uint64(len(lines))]
			hammer.FlipLineBits(addr, []int{int(rng.Uint64() % (pte.LineBytes * 8))})
		}
		h.FlushAll()
		tr, err := h.Translate(0, vaddr)
		if err != nil {
			t.Fatal(err)
		}
		if tr.CheckFailed && (tr.OK || tr.HostPFN != 0) {
			t.Fatalf("integrity exception yielded a translation: %+v", tr)
		}
		if tr.OK && tr.CheckFailed {
			t.Fatalf("walk both OK and check-failed: %+v", tr)
		}
		// A second walk must also be safe (MMU caches now warm/poisoned).
		if tr2, _ := h.Translate(0, vaddr); tr2.CheckFailed && tr2.HostPFN != 0 {
			t.Fatalf("second walk leaked a PFN past a failed check: %+v", tr2)
		}
	})
}
