// Package virt is the nested-paging substrate for multi-tenant campaigns:
// each tenant VM owns a guest-physical address space backed by its own
// 4-level guest page tables (built on internal/ostable), and a hypervisor
// maps guest-physical to host-physical through per-VM stage-2/EPT tables.
// Guest and stage-2 table lines live in the same simulated DRAM but are
// served by two independent memory controllers, so PT-Guard can protect
// either layer, both, or neither — the guard-placement matrix the paper
// never evaluates and the inter-VM Rowhammer campaigns sweep.
package virt

import (
	"errors"
	"fmt"
	"sort"

	"ptguard/internal/core"
	"ptguard/internal/dram"
	"ptguard/internal/mac"
	"ptguard/internal/memctrl"
	"ptguard/internal/obs"
	"ptguard/internal/ostable"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
	"ptguard/internal/tlb"
)

// GuestVBase is every tenant's guest-virtual mapping base (each VM has its
// own guest address space, so the bases may coincide across VMs).
const GuestVBase = 0x40_0000_0000

// guestFrameBase is the first allocatable guest-physical frame; GPA 0 stays
// unmapped so a zeroed entry never aliases a live guest frame.
const guestFrameBase = 16

// The hypervisor carves host memory into two slab pools, as real VMMs do
// for EPT pages: stage-2 table frames from one region, guest-owned frames
// (guest table pages and data) from another. The pools are DRAM-row
// disjoint, so a Rowhammer burst into one layer's rows cannot collaterally
// flip the other layer's lines — which keeps the guard-placement matrix
// meaningful (row blast radius is the whole 8 KB row, two 4 KB frames).
const (
	// hostFrameBase matches the attack sandbox: low host frames are
	// reserved. The stage-2 slab starts here.
	hostFrameBase = 4096
	// guestHostFrameBase starts the guest-owned frame pool (row-aligned).
	guestHostFrameBase = 1 << 18
)

// Placement selects which paging layers PT-Guard protects.
type Placement string

// The guard-placement matrix.
const (
	// PlacementNone leaves both layers unprotected.
	PlacementNone Placement = "none"
	// PlacementGuest protects only the tenants' guest page tables.
	PlacementGuest Placement = "guest"
	// PlacementStage2 protects only the hypervisor's stage-2/EPT tables.
	PlacementStage2 Placement = "stage2"
	// PlacementBoth protects both layers (with independent keys).
	PlacementBoth Placement = "both"
)

// PlacementNames lists the guard placements in sweep order.
func PlacementNames() []string {
	return []string{string(PlacementNone), string(PlacementGuest), string(PlacementStage2), string(PlacementBoth)}
}

// ParsePlacement validates a placement name.
func ParsePlacement(s string) (Placement, error) {
	switch p := Placement(s); p {
	case PlacementNone, PlacementGuest, PlacementStage2, PlacementBoth:
		return p, nil
	}
	return "", fmt.Errorf("virt: unknown guard placement %q (want none, guest, stage2 or both)", s)
}

// GuestProtected reports whether the guest layer carries a guard.
func (p Placement) GuestProtected() bool { return p == PlacementGuest || p == PlacementBoth }

// Stage2Protected reports whether the stage-2 layer carries a guard.
func (p Placement) Stage2Protected() bool { return p == PlacementStage2 || p == PlacementBoth }

// Config parameterises a Host.
type Config struct {
	// Tenants is the number of VMs; 0 selects 4.
	Tenants int
	// PagesPerVM is each tenant's leaf mappings; 0 selects 16.
	PagesPerVM int
	// Placement selects the guarded layers; empty selects none.
	Placement Placement
	// Correction enables the §VI correction engine on guarded layers.
	Correction bool
	// Seed feeds the guard keys (guest and stage-2 keys derive
	// independently, as a hypervisor and its tenants would provision them).
	Seed uint64
	// TLBEntries sizes the combined-mapping TLB; 0 selects the default 64.
	TLBEntries int
}

func (c Config) withDefaults() Config {
	if c.Tenants == 0 {
		c.Tenants = 4
	}
	if c.PagesPerVM == 0 {
		c.PagesPerVM = 16
	}
	if c.Placement == "" {
		c.Placement = PlacementNone
	}
	return c
}

// VM is one tenant: its guest page tables (addresses are guest-physical)
// and the hypervisor's stage-2 tables for it (addresses are host-physical).
type VM struct {
	// ID is the tenant's VMID, tagging its TLB entries.
	ID int
	// GuestPT maps guest-virtual to guest-physical; its table pages live
	// at guest-physical addresses and are materialised in host DRAM
	// through the stage-2 mapping.
	GuestPT *ostable.PageTables
	// Stage2 maps guest-physical to host-physical; its table pages are
	// host frames written to DRAM directly.
	Stage2 *ostable.PageTables

	guestAlloc *ostable.FrameAllocator
	pages      int
}

// Pages returns the tenant's leaf mapping count.
func (v *VM) Pages() int { return v.pages }

// Host is the hypervisor: host physical memory, the two (differently
// guarded) controllers, the combined-mapping TLB, the 2-D walker, and the
// tenant fleet.
type Host struct {
	Dev *dram.Device
	// GuestCtrl serves guest-table lines; S2Ctrl serves stage-2 lines.
	// Each carries a guard iff the placement protects its layer.
	GuestCtrl *memctrl.Controller
	S2Ctrl    *memctrl.Controller
	// Alloc hands out stage-2 table frames; GuestAlloc hands out
	// guest-owned host frames (guest table pages and data). Separate,
	// row-disjoint slabs — see the frame-base constants.
	Alloc      *ostable.FrameAllocator
	GuestAlloc *ostable.FrameAllocator
	TLB        *tlb.TLB
	Walker    *tlb.NestedWalker
	VMs       []*VM

	cfg Config
}

// NewHost builds the hypervisor and its tenant fleet.
func NewHost(cfg Config) (*Host, error) {
	cfg = cfg.withDefaults()
	if cfg.Tenants < 1 {
		return nil, errors.New("virt: need at least one tenant")
	}
	if cfg.PagesPerVM < 1 || cfg.PagesPerVM > 8192 {
		return nil, fmt.Errorf("virt: pages per VM %d outside [1, 8192]", cfg.PagesPerVM)
	}
	dev, err := dram.NewDevice(dram.Geometry{}, dram.Timing{})
	if err != nil {
		return nil, err
	}
	guestGuard, err := newGuard(cfg.Placement.GuestProtected(), cfg.Correction, cfg.Seed, "virt/key/guest")
	if err != nil {
		return nil, err
	}
	s2Guard, err := newGuard(cfg.Placement.Stage2Protected(), cfg.Correction, cfg.Seed, "virt/key/stage2")
	if err != nil {
		return nil, err
	}
	guestCtrl, err := memctrl.New(dev, guestGuard, 0)
	if err != nil {
		return nil, err
	}
	s2Ctrl, err := memctrl.New(dev, s2Guard, 0)
	if err != nil {
		return nil, err
	}
	alloc, err := ostable.NewFrameAllocator(hostFrameBase, guestHostFrameBase-hostFrameBase)
	if err != nil {
		return nil, err
	}
	guestAlloc, err := ostable.NewFrameAllocator(guestHostFrameBase,
		dev.Geometry().Capacity()/pte.PageSize-guestHostFrameBase)
	if err != nil {
		return nil, err
	}
	t, err := tlb.New(cfg.TLBEntries)
	if err != nil {
		return nil, err
	}
	h := &Host{Dev: dev, GuestCtrl: guestCtrl, S2Ctrl: s2Ctrl, Alloc: alloc, GuestAlloc: guestAlloc, TLB: t, cfg: cfg}
	h.Walker, err = tlb.NewNestedWalker(
		func(addr uint64) (pte.Line, bool) {
			line, _, ok := guestCtrl.ReadLine(addr, true)
			return line, ok
		},
		func(addr uint64) (pte.Line, bool) {
			line, _, ok := s2Ctrl.ReadLine(addr, true)
			return line, ok
		},
	)
	if err != nil {
		return nil, err
	}
	for id := 0; id < cfg.Tenants; id++ {
		vm, berr := h.buildVM(id)
		if berr != nil {
			return nil, fmt.Errorf("virt: tenant %d: %w", id, berr)
		}
		h.VMs = append(h.VMs, vm)
	}
	return h, nil
}

// newGuard builds a PT-Guard instance for one layer, or nil when the
// placement leaves the layer unprotected.
func newGuard(protected, correction bool, seed uint64, salt string) (*core.Guard, error) {
	if !protected {
		return nil, nil
	}
	format, err := pte.FormatX86(40)
	if err != nil {
		return nil, err
	}
	key := make([]byte, mac.KeySize)
	kr := stats.NewRNG(stats.DeriveSeed(seed, salt))
	for i := range key {
		key[i] = byte(kr.Uint64())
	}
	softK := 0
	if correction {
		softK = 4
	}
	return core.NewGuard(core.Config{
		Format:           format,
		Key:              key,
		EnableCorrection: correction,
		SoftMatchK:       softK,
		// The §V-B zero-cacheline optimization: all-zero lines carry
		// MAC-zero and verify without a computation. Essential here —
		// a silently corrupted pointer in the *other* (unguarded) layer
		// can send a guarded walk to an absent line, which must read as
		// a clean non-present entry (a fault), not a spurious integrity
		// exception in the guarded layer.
		OptZeroMAC: true,
	})
}

// buildVM constructs one tenant: guest tables in a private guest-physical
// space, stage-2 mappings for every guest frame in use, and both layers
// flushed into DRAM through their controllers.
func (h *Host) buildVM(id int) (*VM, error) {
	guestFrames := uint64(h.cfg.PagesPerVM) + 64 // data frames + table-page headroom
	guestAlloc, err := ostable.NewFrameAllocator(guestFrameBase, guestFrames)
	if err != nil {
		return nil, err
	}
	guestPT, err := ostable.NewPageTables(guestAlloc)
	if err != nil {
		return nil, err
	}
	flags := pte.Entry(0).SetBit(pte.BitWritable, true).SetBit(pte.BitUserAccessible, true)
	dataGPFNs := make([]uint64, 0, h.cfg.PagesPerVM)
	for i := 0; i < h.cfg.PagesPerVM; i++ {
		gpfn, aerr := guestAlloc.AllocFrame()
		if aerr != nil {
			return nil, aerr
		}
		if merr := guestPT.Map(GuestVBase+uint64(i)*pte.PageSize, gpfn, flags); merr != nil {
			return nil, merr
		}
		dataGPFNs = append(dataGPFNs, gpfn)
	}

	// Stage-2: one mapping per guest frame in use — the guest's table
	// pages (so the 2-D walker can find them) and its data frames (so leaf
	// translations resolve). Deterministic order keeps host-frame
	// assignment, and with it DRAM row layout, reproducible from the seed.
	s2, err := ostable.NewPageTables(h.Alloc)
	if err != nil {
		return nil, err
	}
	var gframes []uint64
	seen := make(map[uint64]bool)
	guestPT.Lines(func(gaddr uint64, _ pte.Line) {
		page := gaddr &^ uint64(pte.PageSize-1)
		if !seen[page] {
			seen[page] = true
			gframes = append(gframes, page>>pte.PageShift)
		}
	})
	sort.Slice(gframes, func(i, j int) bool { return gframes[i] < gframes[j] })
	gframes = append(gframes, dataGPFNs...)
	for _, gpfn := range gframes {
		hpfn, aerr := h.GuestAlloc.AllocFrame()
		if aerr != nil {
			return nil, aerr
		}
		if merr := s2.Map(gpfn<<pte.PageShift, hpfn, flags); merr != nil {
			return nil, merr
		}
	}

	vm := &VM{ID: id, GuestPT: guestPT, Stage2: s2, guestAlloc: guestAlloc, pages: h.cfg.PagesPerVM}

	// Materialise both layers in DRAM: stage-2 lines at their own host
	// addresses, guest-table lines at the host frames stage-2 assigns. Each
	// layer flushes as one batch through its controller's MAC engine.
	var flushAddrs []uint64
	var flushLines []pte.Line
	s2.Lines(func(addr uint64, line pte.Line) {
		flushAddrs = append(flushAddrs, addr)
		flushLines = append(flushLines, line)
	})
	if _, werr := h.S2Ctrl.WriteLinesBatch(flushAddrs, flushLines); werr != nil {
		return nil, werr
	}
	flushAddrs, flushLines = flushAddrs[:0], flushLines[:0]
	var flushErr error
	guestPT.Lines(func(gaddr uint64, line pte.Line) {
		haddr, ok := vm.hostAddr(gaddr)
		if !ok {
			if flushErr == nil {
				flushErr = fmt.Errorf("virt: guest table line %#x has no stage-2 mapping", gaddr)
			}
			return
		}
		flushAddrs = append(flushAddrs, haddr)
		flushLines = append(flushLines, line)
	})
	if flushErr != nil {
		return nil, flushErr
	}
	if _, werr := h.GuestCtrl.WriteLinesBatch(flushAddrs, flushLines); werr != nil {
		return nil, werr
	}
	return vm, nil
}

// hostAddr software-translates a guest-physical address through the VM's
// stage-2 tables.
func (v *VM) hostAddr(gpa uint64) (uint64, bool) {
	hpfn, ok := v.Stage2.Translate(gpa)
	if !ok {
		return 0, false
	}
	return hpfn<<pte.PageShift | gpa&(pte.PageSize-1), true
}

// Translation is the outcome of one hosted translation request.
type Translation struct {
	// HostPFN is the host frame (valid only when OK).
	HostPFN uint64
	// OK reports a usable translation (TLB hit or clean full walk).
	OK bool
	// TLBHit reports the combined-mapping TLB served it without a walk.
	TLBHit bool
	// Fault, CheckFailed and Stage2 mirror the walk result on a miss.
	Fault, CheckFailed, Stage2 bool
	// MemAccesses is the walk's memory cost (0 on a TLB hit).
	MemAccesses int
}

// Translate resolves a tenant's guest-virtual address: combined-mapping TLB
// first, then the 2-D walk, installing clean results VMID-tagged.
func (h *Host) Translate(vmid int, vaddr uint64) (Translation, error) {
	vm, err := h.vm(vmid)
	if err != nil {
		return Translation{}, err
	}
	vpn := vaddr >> pte.PageShift
	if hpfn, ok := h.TLB.LookupVM(vmid, vpn); ok {
		return Translation{HostPFN: hpfn, OK: true, TLBHit: true}, nil
	}
	res := h.Walker.Walk(vm.Stage2.Root(), vm.GuestPT.Root(), vaddr)
	tr := Translation{
		Fault: res.Fault, CheckFailed: res.CheckFailed, Stage2: res.Stage2,
		MemAccesses: res.MemAccesses,
	}
	if res.Fault || res.CheckFailed {
		return tr, nil
	}
	tr.HostPFN, tr.OK = res.HostPFN, true
	h.TLB.InsertVM(vmid, vpn, res.HostPFN)
	return tr, nil
}

// SoftTranslate walks the trusted shadow tables (ground truth, untouched by
// DRAM disturbance): guest-virtual → guest-physical → host frame.
func (h *Host) SoftTranslate(vmid int, vaddr uint64) (uint64, bool) {
	vm, err := h.vm(vmid)
	if err != nil {
		return 0, false
	}
	gpfn, ok := vm.GuestPT.Translate(vaddr)
	if !ok {
		return 0, false
	}
	return vm.Stage2.Translate(gpfn << pte.PageShift)
}

func (h *Host) vm(vmid int) (*VM, error) {
	if vmid < 0 || vmid >= len(h.VMs) {
		return nil, fmt.Errorf("virt: no VM %d (have %d tenants)", vmid, len(h.VMs))
	}
	return h.VMs[vmid], nil
}

// GuestTableLines returns the host-physical line addresses backing one
// tenant's guest page tables, in ascending order: the Rowhammer target
// surface of the "guest" attack.
func (h *Host) GuestTableLines(vmid int) ([]uint64, error) {
	vm, err := h.vm(vmid)
	if err != nil {
		return nil, err
	}
	var out []uint64
	vm.GuestPT.Lines(func(gaddr uint64, _ pte.Line) {
		if haddr, ok := vm.hostAddr(gaddr); ok {
			out = append(out, haddr)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Stage2TableLines returns the host-physical line addresses of one
// tenant's stage-2/EPT tables, in ascending order: the hypervisor-owned
// target surface of the "stage2" attack.
func (h *Host) Stage2TableLines(vmid int) ([]uint64, error) {
	vm, err := h.vm(vmid)
	if err != nil {
		return nil, err
	}
	var out []uint64
	vm.Stage2.Lines(func(addr uint64, _ pte.Line) { out = append(out, addr) })
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// LayerAudit is one paging layer's batch-verify outcome.
type LayerAudit struct {
	// Audited is false when the layer carries no guard: there is nothing
	// to verify and Lines/Dirty stay zero.
	Audited bool
	// Lines is the number of stored table lines swept; Dirty counts those
	// that would fail the page-table-walk integrity check.
	Lines, Dirty int
}

// TablesAudit pairs the two layers' audits for one tenant.
type TablesAudit struct {
	Guest, Stage2 LayerAudit
}

// AuditTables sweeps one tenant's stored table lines in both layers through
// the guards' batch scrub path (core.Guard.AuditBatch): every line is
// re-read from DRAM and batch-verified without perturbing guard counters,
// CTB state or corrections — the post-attack classification campaigns run
// after hammering to tell silent table corruption from detected corruption.
func (h *Host) AuditTables(vmid int) (TablesAudit, error) {
	gaddrs, err := h.GuestTableLines(vmid)
	if err != nil {
		return TablesAudit{}, err
	}
	s2addrs, err := h.Stage2TableLines(vmid)
	if err != nil {
		return TablesAudit{}, err
	}
	return TablesAudit{
		Guest:  h.auditLayer(h.GuestCtrl, gaddrs),
		Stage2: h.auditLayer(h.S2Ctrl, s2addrs),
	}, nil
}

func (h *Host) auditLayer(ctrl *memctrl.Controller, addrs []uint64) LayerAudit {
	g := ctrl.Guard()
	if g == nil {
		return LayerAudit{}
	}
	lines := make([]pte.Line, len(addrs))
	for i, a := range addrs {
		lines[i] = h.Dev.ReadLine(a)
	}
	ok := make([]bool, len(addrs))
	g.AuditBatch(ok, lines, addrs)
	audit := LayerAudit{Audited: true, Lines: len(addrs)}
	for _, clean := range ok {
		if !clean {
			audit.Dirty++
		}
	}
	return audit
}

// Shootdown flushes one tenant's TLB entries and both walker MMU caches
// (the hypervisor's response to modifying that tenant's tables). Other
// tenants' TLB entries stay warm — the VMID-tag payoff.
func (h *Host) Shootdown(vmid int) error {
	if _, err := h.vm(vmid); err != nil {
		return err
	}
	h.TLB.FlushVM(vmid)
	h.Walker.Flush()
	return nil
}

// FlushAll drops every cached translation (TLB and both MMU caches).
func (h *Host) FlushAll() {
	h.TLB.Flush()
	h.Walker.Flush()
}

// SetObserver attaches the observability subsystem to both memory
// controllers (and, through them, the guards and the shared DRAM device).
// A nil observer detaches.
func (h *Host) SetObserver(o *obs.Observer) {
	h.GuestCtrl.SetObserver(o)
	h.S2Ctrl.SetObserver(o)
}

// Tenants returns the fleet size.
func (h *Host) Tenants() int { return len(h.VMs) }

// Config returns the host's (defaulted) configuration.
func (h *Host) Config() Config { return h.cfg }

// PublishObs feeds the virtualization counters into the metric registry:
// TLB and 2-D walker pressure plus per-layer controller/guard activity
// under "virt.guest." and "virt.stage2." (a nil registry is a no-op).
func (h *Host) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetGauge("virt.tenants", float64(len(h.VMs)))
	h.TLB.PublishObs(r)
	h.Walker.PublishObs(r)
	for _, layer := range []struct {
		prefix string
		ctrl   *memctrl.Controller
	}{{"virt.guest.", h.GuestCtrl}, {"virt.stage2.", h.S2Ctrl}} {
		st := layer.ctrl.Stats()
		r.SetCounter(layer.prefix+"reads", st.Reads)
		r.SetCounter(layer.prefix+"writes", st.Writes)
		r.SetCounter(layer.prefix+"check_failures", st.CheckFailures)
		r.SetCounter(layer.prefix+"corrected_reads", st.CorrectedReads)
		r.SetCounter(layer.prefix+"read_mac_cycles", st.ReadMACCycles)
	}
}
