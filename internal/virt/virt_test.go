package virt

import (
	"testing"

	"ptguard/internal/dram"
	"ptguard/internal/pte"
	"ptguard/internal/tlb"
)

func TestNestedTranslationMatchesShadow(t *testing.T) {
	h, err := NewHost(Config{Tenants: 3, PagesPerVM: 8, Placement: PlacementBoth, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for vmid := 0; vmid < h.Tenants(); vmid++ {
		for i := 0; i < 8; i++ {
			vaddr := uint64(GuestVBase) + uint64(i)*pte.PageSize
			want, ok := h.SoftTranslate(vmid, vaddr)
			if !ok {
				t.Fatalf("vm %d page %d: no shadow translation", vmid, i)
			}
			tr, terr := h.Translate(vmid, vaddr)
			if terr != nil {
				t.Fatal(terr)
			}
			if !tr.OK || tr.HostPFN != want {
				t.Fatalf("vm %d page %d: Translate = %+v, want host pfn %#x", vmid, i, tr, want)
			}
			if tr.MemAccesses > tlb.MaxNestedAccesses {
				t.Fatalf("vm %d page %d: %d accesses exceeds the 2-D bound %d",
					vmid, i, tr.MemAccesses, tlb.MaxNestedAccesses)
			}
			again, _ := h.Translate(vmid, vaddr)
			if !again.TLBHit || again.HostPFN != want {
				t.Fatalf("vm %d page %d: second translate = %+v, want TLB hit", vmid, i, again)
			}
		}
	}
	// Distinct tenants must resolve the same guest-virtual page to
	// distinct host frames.
	a, _ := h.SoftTranslate(0, GuestVBase)
	b, _ := h.SoftTranslate(1, GuestVBase)
	if a == b {
		t.Fatalf("tenants 0 and 1 share host frame %#x", a)
	}
}

func TestShootdownIsPerVM(t *testing.T) {
	h, err := NewHost(Config{Tenants: 2, PagesPerVM: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for vmid := 0; vmid < 2; vmid++ {
		if _, err := h.Translate(vmid, GuestVBase); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Shootdown(0); err != nil {
		t.Fatal(err)
	}
	tr1, _ := h.Translate(1, GuestVBase)
	if !tr1.TLBHit {
		t.Fatal("vm1's TLB entry did not survive vm0's shootdown")
	}
	tr0, _ := h.Translate(0, GuestVBase)
	if tr0.TLBHit {
		t.Fatal("vm0's TLB entry survived its own shootdown")
	}
	if !tr0.OK {
		t.Fatalf("vm0 re-walk failed: %+v", tr0)
	}
}

func TestColdWalkAccessAccounting(t *testing.T) {
	h, err := NewHost(Config{Tenants: 1, PagesPerVM: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h.FlushAll()
	tr, err := h.Translate(0, GuestVBase)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.OK {
		t.Fatalf("cold translate failed: %+v", tr)
	}
	st := h.Walker.Stats()
	if st.GuestAccesses != 4 {
		t.Fatalf("cold walk made %d guest accesses, want 4 (one per level)", st.GuestAccesses)
	}
	// The first stage-2 walk is cold (4 accesses); the later ones hit the
	// stage-2 MMU cache for upper levels. 5 stage-2 walks in total.
	if st.S2Accesses < 5+3 || st.S2Accesses > 5*4 {
		t.Fatalf("cold walk made %d stage-2 accesses, want within [8, 20]", st.S2Accesses)
	}
	if tr.MemAccesses != int(st.GuestAccesses+st.S2Accesses) {
		t.Fatalf("result accesses %d != walker total %d", tr.MemAccesses, st.GuestAccesses+st.S2Accesses)
	}
	if st.MaxAccesses > tlb.MaxNestedAccesses {
		t.Fatalf("max accesses %d exceeds bound %d", st.MaxAccesses, tlb.MaxNestedAccesses)
	}
}

// flipGuestLeafPFN flips the low PFN bit of the victim's guest leaf entry
// for vaddr, in DRAM (the shadow tables stay pristine).
func flipGuestLeafPFN(t *testing.T, h *Host, vmid int, vaddr uint64) {
	t.Helper()
	vm := h.VMs[vmid]
	gea, ok := vm.GuestPT.LeafEntryAddr(vaddr)
	if !ok {
		t.Fatal("victim vaddr not mapped")
	}
	hea, ok := vm.hostAddr(gea)
	if !ok {
		t.Fatal("guest leaf table has no stage-2 mapping")
	}
	hammer, err := dram.NewHammerer(h.Dev, dram.HammerConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	entryIdx := int(hea / 8 % pte.PTEsPerLine)
	hammer.FlipLineBits(hea&^uint64(pte.LineBytes-1), []int{entryIdx*64 + pte.PageShift})
}

// flipStage2LeafPFN flips the low PFN bit of the stage-2 leaf entry mapping
// the victim's data page.
func flipStage2LeafPFN(t *testing.T, h *Host, vmid int, vaddr uint64) {
	t.Helper()
	vm := h.VMs[vmid]
	gpfn, ok := vm.GuestPT.Translate(vaddr)
	if !ok {
		t.Fatal("victim vaddr not mapped")
	}
	ea, ok := vm.Stage2.LeafEntryAddr(gpfn << pte.PageShift)
	if !ok {
		t.Fatal("victim gpa not stage-2 mapped")
	}
	hammer, err := dram.NewHammerer(h.Dev, dram.HammerConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	entryIdx := int(ea / 8 % pte.PTEsPerLine)
	hammer.FlipLineBits(ea&^uint64(pte.LineBytes-1), []int{entryIdx*64 + pte.PageShift})
}

func TestGuardPlacementMatrix(t *testing.T) {
	for _, tc := range []struct {
		placement    Placement
		target       string // which layer gets corrupted
		wantDetected bool
		wantStage2   bool
	}{
		{PlacementNone, "guest", false, false},
		{PlacementNone, "stage2", false, false},
		{PlacementGuest, "guest", true, false},
		{PlacementGuest, "stage2", false, false},
		{PlacementStage2, "guest", false, false},
		{PlacementStage2, "stage2", true, true},
		{PlacementBoth, "guest", true, false},
		{PlacementBoth, "stage2", true, true},
	} {
		t.Run(string(tc.placement)+"/"+tc.target, func(t *testing.T) {
			h, err := NewHost(Config{Tenants: 2, PagesPerVM: 4, Placement: tc.placement, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			const victim = 1
			if tc.target == "guest" {
				flipGuestLeafPFN(t, h, victim, GuestVBase)
			} else {
				flipStage2LeafPFN(t, h, victim, GuestVBase)
			}
			h.FlushAll()
			want, _ := h.SoftTranslate(victim, GuestVBase)
			tr, err := h.Translate(victim, GuestVBase)
			if err != nil {
				t.Fatal(err)
			}
			if tr.CheckFailed != tc.wantDetected {
				t.Fatalf("CheckFailed = %v, want %v (%+v)", tr.CheckFailed, tc.wantDetected, tr)
			}
			if tc.wantDetected {
				if tr.OK || tr.HostPFN != 0 {
					t.Fatalf("detected walk still yielded a PFN: %+v", tr)
				}
				if tr.Stage2 != tc.wantStage2 {
					t.Fatalf("Stage2 = %v, want %v", tr.Stage2, tc.wantStage2)
				}
			} else if tr.OK && tr.HostPFN == want {
				t.Fatal("flip had no effect: translation still clean")
			}
			// The untouched tenant must stay fully functional.
			other, _ := h.SoftTranslate(0, GuestVBase)
			tr0, err := h.Translate(0, GuestVBase)
			if err != nil {
				t.Fatal(err)
			}
			if !tr0.OK || tr0.HostPFN != other {
				t.Fatalf("bystander tenant broken: %+v want %#x", tr0, other)
			}
		})
	}
}

func TestHostDeterminism(t *testing.T) {
	build := func() *Host {
		h, err := NewHost(Config{Tenants: 5, PagesPerVM: 6, Placement: PlacementBoth, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return h
	}
	a, b := build(), build()
	for vmid := 0; vmid < 5; vmid++ {
		ga, _ := a.GuestTableLines(vmid)
		gb, _ := b.GuestTableLines(vmid)
		if len(ga) != len(gb) {
			t.Fatalf("vm %d: guest line counts differ: %d vs %d", vmid, len(ga), len(gb))
		}
		for i := range ga {
			if ga[i] != gb[i] {
				t.Fatalf("vm %d: guest line %d differs: %#x vs %#x", vmid, i, ga[i], gb[i])
			}
		}
		sa, _ := a.Stage2TableLines(vmid)
		sb, _ := b.Stage2TableLines(vmid)
		for i := range sa {
			if sa[i] != sb[i] {
				t.Fatalf("vm %d: stage-2 line %d differs", vmid, i)
			}
		}
		for i := 0; i < 6; i++ {
			va := uint64(GuestVBase) + uint64(i)*pte.PageSize
			pa, _ := a.SoftTranslate(vmid, va)
			pb, _ := b.SoftTranslate(vmid, va)
			if pa != pb {
				t.Fatalf("vm %d page %d: host frames differ: %#x vs %#x", vmid, i, pa, pb)
			}
		}
	}
}

func TestPlacementParsing(t *testing.T) {
	for _, name := range PlacementNames() {
		if _, err := ParsePlacement(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ParsePlacement("ept"); err == nil {
		t.Fatal("ParsePlacement accepted an unknown name")
	}
	if !PlacementBoth.GuestProtected() || !PlacementBoth.Stage2Protected() {
		t.Fatal("both must protect both layers")
	}
	if PlacementGuest.Stage2Protected() || PlacementStage2.GuestProtected() {
		t.Fatal("single placements must protect exactly one layer")
	}
}

func TestAuditTables(t *testing.T) {
	h, err := NewHost(Config{Tenants: 2, PagesPerVM: 8, Placement: PlacementGuest, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	audit, err := h.AuditTables(0)
	if err != nil {
		t.Fatal(err)
	}
	if !audit.Guest.Audited || audit.Stage2.Audited {
		t.Fatalf("placement guest: audit flags wrong: %+v", audit)
	}
	if audit.Guest.Lines == 0 || audit.Guest.Dirty != 0 {
		t.Fatalf("pristine tables: guest audit = %+v, want clean lines", audit.Guest)
	}

	// Flip a protected bit in one stored guest table line: exactly one line
	// must audit dirty.
	addrs, err := h.GuestTableLines(0)
	if err != nil {
		t.Fatal(err)
	}
	line := h.Dev.ReadLine(addrs[0])
	line[0] = pte.Entry(uint64(line[0]) ^ 1<<20)
	h.Dev.WriteLine(addrs[0], line)
	audit, err = h.AuditTables(0)
	if err != nil {
		t.Fatal(err)
	}
	if audit.Guest.Dirty != 1 {
		t.Fatalf("after one flip: guest audit = %+v, want 1 dirty line", audit.Guest)
	}
	// The audit is pure: the other tenant and the guard's counters must be
	// untouched, and re-auditing gives the same answer.
	before := h.GuestCtrl.Guard().Counters()
	if again, _ := h.AuditTables(0); again != audit {
		t.Fatalf("re-audit diverges: %+v vs %+v", again, audit)
	}
	if h.GuestCtrl.Guard().Counters() != before {
		t.Fatal("AuditTables perturbed guard counters")
	}
	other, err := h.AuditTables(1)
	if err != nil {
		t.Fatal(err)
	}
	if other.Guest.Dirty != 0 {
		t.Fatalf("tenant 1 audit dirtied by tenant 0 flip: %+v", other)
	}
}
