package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"

	"ptguard/internal/harness"
)

// A campaign crosses the process boundary as (kind, spec JSON, seed):
// job closures cannot be serialised, but every harness spec is
// declarative — Jobs(seed) is a pure function — so the worker re-expands
// the identical job set from the identical inputs and a bare job key
// names the same computation on both sides. The registry maps the kind
// string to that expansion.

// jobSet is one expanded campaign on the worker side: the job keys in
// spec order, and a runner per key that executes the job and marshals
// its result.
type jobSet struct {
	keys []string
	run  map[string]func(ctx context.Context) (json.RawMessage, error)
}

// expander turns (spec JSON, seed) into a jobSet.
type expander func(spec json.RawMessage, seed uint64) (*jobSet, error)

var registry = map[string]expander{}

// register wires one spec kind: S's Jobs method (passed as a method
// expression) expands the spec, and results marshal through R — the same
// type the coordinator-side harness decodes them back into.
func register[S any, R any](kind string, jobs func(S, uint64) ([]harness.Job[R], error)) {
	if _, dup := registry[kind]; dup {
		panic(fmt.Sprintf("dist: duplicate spec kind %q", kind))
	}
	registry[kind] = func(raw json.RawMessage, seed uint64) (*jobSet, error) {
		var spec S
		if err := json.Unmarshal(raw, &spec); err != nil {
			return nil, fmt.Errorf("dist: decode %s spec: %w", kind, err)
		}
		list, err := jobs(spec, seed)
		if err != nil {
			return nil, fmt.Errorf("dist: expand %s campaign: %w", kind, err)
		}
		js := &jobSet{run: make(map[string]func(context.Context) (json.RawMessage, error), len(list))}
		for _, j := range list {
			j := j
			if _, dup := js.run[j.Key]; dup {
				return nil, fmt.Errorf("dist: %s campaign has duplicate job key %q", kind, j.Key)
			}
			js.keys = append(js.keys, j.Key)
			js.run[j.Key] = func(ctx context.Context) (json.RawMessage, error) {
				v, err := j.Run(ctx)
				if err != nil {
					return nil, err
				}
				raw, err := json.Marshal(v)
				if err != nil {
					return nil, fmt.Errorf("dist: marshal result of %q: %w", j.Key, err)
				}
				return raw, nil
			}
		}
		return js, nil
	}
}

// Kinds returns the registered spec kinds, sorted.
func Kinds() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// expand resolves a kind and expands its campaign.
func expand(kind string, spec json.RawMessage, seed uint64) (*jobSet, error) {
	exp, ok := registry[kind]
	if !ok {
		return nil, fmt.Errorf("dist: unknown spec kind %q (known: %v)", kind, Kinds())
	}
	return exp(spec, seed)
}
