package dist

import (
	"flag"
	"fmt"
	"strings"
	"sync/atomic"

	"ptguard/internal/chaos"
	"ptguard/internal/harness"
	"ptguard/internal/obs"
)

// Flags is the shared CLI surface for backend selection; every campaign
// CLI (ptguard-sweep, -faults, -mitigate, -vm, -soak) registers it so
// the same -backend/-dist-workers/-connect flags mean the same thing
// everywhere.
type Flags struct {
	Backend   string
	Workers   int
	Connect   string
	WorkerBin string
}

// AddFlags registers the backend flags on fs and returns the bundle to
// pass to Start after parsing.
func AddFlags(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.StringVar(&f.Backend, "backend", harness.BackendLocal,
		"execution backend: local (in-process pool), proc (ptguard-worker subprocesses), tcp (remote workers via -connect)")
	fs.IntVar(&f.Workers, "dist-workers", 2, "worker processes to spawn for -backend=proc")
	fs.StringVar(&f.Connect, "connect", "",
		"comma-separated host:port list of `ptguard-worker -listen` endpoints for -backend=tcp")
	fs.StringVar(&f.WorkerBin, "worker-bin", "",
		"path to the ptguard-worker binary (default: next to this binary, then $PATH)")
	return f
}

// Start builds the coordinator the flags select and installs it into the
// harness options: Backend and Executor are set, and Workers is resized
// to the pool width so each worker session stays saturated without idle
// queueing. For the local backend it is a no-op returning (nil, nil).
// The caller must Close a non-nil coordinator after the campaign.
//
// inj arms the worker.kill chaos point on the coordinator; pass the same
// injector the harness uses so one -faults schedule spans both layers.
func (f *Flags) Start(campaign Campaign, hopts *harness.Options, inj *chaos.Injector) (*Coordinator, error) {
	switch f.Backend {
	case "", harness.BackendLocal:
		return nil, nil
	case "proc":
		co, err := Start(campaign, Options{Workers: f.Workers, WorkerBin: f.WorkerBin, Chaos: inj})
		if err != nil {
			return nil, err
		}
		f.install(co, hopts)
		return co, nil
	case "tcp":
		var addrs []string
		for _, a := range strings.Split(f.Connect, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		if len(addrs) == 0 {
			return nil, fmt.Errorf("dist: -backend=tcp requires -connect host:port[,host:port...]")
		}
		co, err := Start(campaign, Options{Connect: addrs, Chaos: inj})
		if err != nil {
			return nil, err
		}
		f.install(co, hopts)
		return co, nil
	default:
		return nil, fmt.Errorf("dist: unknown backend %q (want local, proc, or tcp)", f.Backend)
	}
}

func (f *Flags) install(co *Coordinator, hopts *harness.Options) {
	hopts.Backend = f.Backend
	hopts.Executor = co
	hopts.Workers = co.Width()
}

// published holds the coordinator the expvar callback reads; CLIs that
// run several campaigns sequentially (ptguard-sweep sections) swap it
// per section.
var published atomic.Pointer[Coordinator]

// Publish exposes co's Status on the -debug-addr expvar endpoint as
// "ptguard.dist" (alongside the harness "ptguard.campaign" snapshot).
// Safe to call per campaign section; the latest coordinator wins. A nil
// co clears the slot (status reads as empty between sections).
func Publish(co *Coordinator) {
	published.Store(co)
	obs.PublishFunc("ptguard.dist", func() any {
		if c := published.Load(); c != nil {
			return c.Status()
		}
		return Status{}
	})
}
