package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"strings"
	"testing"

	"ptguard/internal/chaos"
	"ptguard/internal/harness"
)

// TestMain doubles as the worker binary: the coordinator tests re-exec
// this test executable with PTGUARD_DIST_WORKER=1, which routes straight
// into Serve instead of the test runner — so the real subprocess
// machinery (spawn, pipes, kill, respawn) is exercised without needing
// ptguard-worker on $PATH.
func TestMain(m *testing.M) {
	if os.Getenv("PTGUARD_DIST_WORKER") == "1" {
		if err := Serve(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startProc spawns a proc-backend coordinator whose workers are this
// test binary in worker mode.
func startProc(t *testing.T, c Campaign, workers int, inj *chaos.Injector) *Coordinator {
	t.Helper()
	co, err := Start(c, Options{
		Workers:       workers,
		WorkerCommand: []string{os.Args[0]},
		WorkerEnv:     []string{"PTGUARD_DIST_WORKER=1"},
		Chaos:         inj,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	t.Cleanup(co.Close)
	return co
}

// runCampaign runs jobs through the harness and returns the marshalled
// results — the byte-identity currency of every determinism test here.
func runCampaign[R any](t *testing.T, jobs []harness.Job[R], opts harness.Options) []byte {
	t.Helper()
	rep, err := harness.Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatalf("harness.Run: %v", err)
	}
	results, err := rep.Results()
	if err != nil {
		t.Fatalf("Results: %v", err)
	}
	raw, err := json.Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// procOpts wires a coordinator into harness options.
func procOpts(co *Coordinator) harness.Options {
	return harness.Options{Backend: "proc", Executor: co, Workers: co.Width()}
}

// TestProcBackendDeterminismSlowdown pins the tentpole guarantee on a
// real simulation campaign: report.Results bytes are identical whether
// the campaign ran in-process or sharded across 1 or 4 worker processes.
func TestProcBackendDeterminismSlowdown(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := harness.SlowdownSpec{
		Workloads: []string{"leela", "povray"}, Warmup: 500, Instructions: 1000,
	}
	const seed = 42
	jobs, err := spec.Jobs(seed)
	if err != nil {
		t.Fatal(err)
	}
	campaign := Campaign{Kind: KindSlowdown, Spec: spec, Seed: seed}

	local := runCampaign(t, jobs, harness.Options{Workers: 4})
	for _, workers := range []int{1, 4} {
		co := startProc(t, campaign, workers, nil)
		got := runCampaign(t, jobs, procOpts(co))
		if string(got) != string(local) {
			t.Errorf("proc-%d results diverge from local:\nlocal: %.200s\nproc:  %.200s", workers, local, got)
		}
		st := co.Status()
		if st.Completed != int64(len(jobs)) {
			t.Errorf("proc-%d: Completed = %d, want %d", workers, st.Completed, len(jobs))
		}
	}
}

// TestProcBackendDeterminismFaults repeats the byte-identity check on a
// fault-injection campaign (different result type, error-carrying jobs).
func TestProcBackendDeterminismFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := harness.FaultSpec{
		Models: []string{"1bit", "2bit"}, Modes: []string{"detect"}, Lines: 20,
	}
	const seed = 7
	jobs, err := spec.Jobs(seed)
	if err != nil {
		t.Fatal(err)
	}
	local := runCampaign(t, jobs, harness.Options{Workers: 2})
	co := startProc(t, Campaign{Kind: KindFaults, Spec: spec, Seed: seed}, 4, nil)
	got := runCampaign(t, jobs, procOpts(co))
	if string(got) != string(local) {
		t.Errorf("proc results diverge from local:\nlocal: %.200s\nproc:  %.200s", local, got)
	}
}

// TestWorkerKillRequeue arms the worker.kill chaos point: the
// coordinator kills a leased worker right after dispatch, and the
// crash-requeue path must respawn, re-dispatch, and still produce the
// local report — without burning harness retries (Retries: 0 here, so
// any surfaced failure would fail the run).
func TestWorkerKillRequeue(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := SyntheticSpec{JobCount: 8, CostMS: 2}
	const seed = 99
	jobs, err := spec.Jobs(seed)
	if err != nil {
		t.Fatal(err)
	}
	local := runCampaign(t, jobs, harness.Options{Workers: 2})

	inj, err := chaos.Parse("worker.kill:after=2,times=2", seed)
	if err != nil {
		t.Fatal(err)
	}
	co := startProc(t, Campaign{Kind: KindSynthetic, Spec: spec, Seed: seed}, 2, inj)
	opts := procOpts(co)
	opts.Retries = 0
	got := runCampaign(t, jobs, opts)
	if string(got) != string(local) {
		t.Errorf("results diverge after worker kills:\nlocal: %s\nproc:  %s", local, got)
	}
	st := co.Status()
	if st.Requeues < 2 {
		t.Errorf("Requeues = %d, want >= 2 (two injected kills)", st.Requeues)
	}
	if st.Spawns < int64(co.Width())+2 {
		t.Errorf("Spawns = %d, want >= %d (pool + respawns)", st.Spawns, co.Width()+2)
	}
	if got := inj.Injected()[chaos.WorkerKill]; got != 2 {
		t.Errorf("worker.kill fired %d times, want 2", got)
	}
}

// TestTCPBackend serves workers over TCP from in-process goroutines —
// the same Serve loop ptguard-worker -listen runs — and checks
// byte-identity and multi-session fan-out.
func TestTCPBackend(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				Serve(conn, conn)
			}()
		}
	}()

	spec := SyntheticSpec{JobCount: 10, CostMS: 1}
	const seed = 5
	jobs, err := spec.Jobs(seed)
	if err != nil {
		t.Fatal(err)
	}
	local := runCampaign(t, jobs, harness.Options{Workers: 2})

	addr := ln.Addr().String()
	co, err := Start(Campaign{Kind: KindSynthetic, Spec: spec, Seed: seed},
		Options{Connect: []string{addr, addr, addr}})
	if err != nil {
		t.Fatalf("Start tcp: %v", err)
	}
	defer co.Close()
	if co.Backend() != "tcp" || co.Width() != 3 {
		t.Fatalf("Backend/Width = %s/%d, want tcp/3", co.Backend(), co.Width())
	}
	opts := procOpts(co)
	opts.Backend = "tcp"
	got := runCampaign(t, jobs, opts)
	if string(got) != string(local) {
		t.Errorf("tcp results diverge from local:\nlocal: %s\ntcp:   %s", local, got)
	}
}

// TestJournalResumeAcrossBackends writes a journal with a local run,
// drops its tail records, and resumes under the proc backend: the
// replayed-plus-reexecuted report must be byte-identical, proving the
// journal (and its backend-invariant fingerprint) transfers between
// execution backends.
func TestJournalResumeAcrossBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	spec := harness.CorrectionSpec{Lines: 10, Probs: []float64{1.0 / 128, 1.0 / 192, 1.0 / 256}}
	const seed = 11
	jobs, err := spec.Jobs(seed)
	if err != nil {
		t.Fatal(err)
	}
	fp := harness.Fingerprint("resume-test", seed, spec)
	journal := t.TempDir() + "/journal.jsonl"

	localOpts := harness.Options{Workers: 2, JournalPath: journal, Fingerprint: fp}
	local := runCampaign(t, jobs, localOpts)

	// Drop the last record so the resumed run must re-execute one job.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	trunc := strings.Join(lines[:len(lines)-1], "\n") + "\n"
	if err := os.WriteFile(journal, []byte(trunc), 0o644); err != nil {
		t.Fatal(err)
	}

	co := startProc(t, Campaign{Kind: KindCorrection, Spec: spec, Seed: seed}, 2, nil)
	opts := procOpts(co)
	opts.JournalPath = journal
	opts.Fingerprint = fp
	got := runCampaign(t, jobs, opts)
	if string(got) != string(local) {
		t.Errorf("resumed proc results diverge from local:\nlocal: %s\nproc:  %s", local, got)
	}
	if st := co.Status(); st.Completed != 1 {
		t.Errorf("proc resume executed %d jobs, want 1 (rest from journal)", st.Completed)
	}
}

// TestExecutorRequiredForRemoteBackends pins the harness-side guard.
func TestExecutorRequiredForRemoteBackends(t *testing.T) {
	jobs, err := SyntheticSpec{JobCount: 1, CostMS: 1}.Jobs(1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = harness.Run(context.Background(), jobs, harness.Options{Backend: "proc"})
	if err == nil || !strings.Contains(err.Error(), "requires an Executor") {
		t.Fatalf("Run without Executor: err = %v", err)
	}
}
