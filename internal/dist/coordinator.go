package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"ptguard/internal/chaos"
)

// Campaign names the work a coordinator shards: a registered spec kind,
// the spec value (marshalled to JSON for the wire), and the campaign
// seed. Identical (Kind, Spec, Seed) expand to identical job sets on
// every worker.
type Campaign struct {
	Kind string
	Spec any
	Seed uint64
}

// Options configures a coordinator.
type Options struct {
	// Workers is the number of worker subprocesses to spawn (proc mode).
	// Ignored when Connect is non-empty. Default 2.
	Workers int
	// Connect lists remote `ptguard-worker -listen` endpoints
	// (host:port); non-empty selects TCP mode with one session per
	// endpoint.
	Connect []string
	// WorkerBin is the worker binary for proc mode; empty discovers
	// `ptguard-worker` next to the running executable, then on $PATH.
	WorkerBin string
	// WorkerCommand overrides the full worker argv (tests re-exec the
	// test binary with an env hook). Takes precedence over WorkerBin.
	WorkerCommand []string
	// WorkerEnv appends to the spawned workers' environment.
	WorkerEnv []string
	// Heartbeat is the cadence workers prove liveness at while running a
	// job; default 200ms.
	Heartbeat time.Duration
	// HeartbeatGrace is how long the coordinator tolerates silence from
	// a busy worker before declaring it dead and requeueing the job;
	// default 10s. Must comfortably exceed Heartbeat.
	HeartbeatGrace time.Duration
	// MaxRequeues bounds how many times one job survives worker crashes
	// before the loss is surfaced to the harness as a job failure;
	// default 3. Crash requeues below this cap are absorbed here and do
	// NOT burn harness retries — a killed worker is an infrastructure
	// fault, not evidence against the job.
	MaxRequeues int
	// Chaos, when set, arms the worker.kill fault point: the schedule
	// kills a leased worker right after a job is dispatched to it.
	Chaos *chaos.Injector
	// Stderr receives spawned workers' stderr; default os.Stderr.
	Stderr io.Writer
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.Heartbeat <= 0 {
		o.Heartbeat = 200 * time.Millisecond
	}
	if o.HeartbeatGrace <= 0 {
		o.HeartbeatGrace = 10 * time.Second
	}
	if o.MaxRequeues <= 0 {
		o.MaxRequeues = 3
	}
	if o.Stderr == nil {
		o.Stderr = os.Stderr
	}
	return o
}

// Coordinator owns a pool of worker sessions and implements
// harness.Executor over them: each Execute leases one session, ships the
// job key, and waits for the result under a heartbeat deadline. Worker
// death at any point — crash, injected kill, heartbeat silence —
// respawns the session and requeues the job transparently, so the
// harness above sees remote execution with exactly the local pool's
// semantics.
type Coordinator struct {
	campaign  Campaign
	specJSON  json.RawMessage
	opts      Options
	tcp       bool
	addrs     []string
	handshake time.Duration

	pool chan *session

	mu       sync.Mutex
	sessions map[int]*session
	nextID   int
	closed   bool

	queueDepth        atomic.Int64
	completed         atomic.Int64
	requeues          atomic.Int64
	heartbeatTimeouts atomic.Int64
	spawns            atomic.Int64
}

// session is one live worker: a subprocess (proc mode) or a TCP
// connection (tcp mode). A session is owned by exactly one Execute call
// between lease and release, so message routing needs no correlation
// IDs.
type session struct {
	id      int
	addr    string // "" for proc mode, endpoint for tcp
	cmd     *exec.Cmd
	conn    net.Conn
	stdin   io.Closer
	w       *frameWriter
	msgs    chan Message
	started time.Time
	jobs    atomic.Int64
	dead    atomic.Bool
}

// Start builds the worker pool and handshakes every session. The
// returned coordinator is ready to be installed as harness
// Options.Executor; call Close after the campaign.
func Start(c Campaign, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	specJSON, err := json.Marshal(c.Spec)
	if err != nil {
		return nil, fmt.Errorf("dist: marshal %s spec: %w", c.Kind, err)
	}
	co := &Coordinator{
		campaign:  c,
		specJSON:  specJSON,
		opts:      opts,
		tcp:       len(opts.Connect) > 0,
		addrs:     opts.Connect,
		handshake: 30 * time.Second,
		sessions:  make(map[int]*session),
	}
	width := opts.Workers
	if co.tcp {
		width = len(opts.Connect)
	}
	co.pool = make(chan *session, width)
	for i := 0; i < width; i++ {
		addr := ""
		if co.tcp {
			addr = co.addrs[i]
		}
		s, err := co.spawn(addr)
		if err != nil {
			co.Close()
			return nil, err
		}
		co.pool <- s
	}
	return co, nil
}

// Width is the number of worker sessions; CLIs size the harness worker
// pool to it so every session stays busy without idle queueing.
func (c *Coordinator) Width() int {
	return cap(c.pool)
}

// Backend names the transport for status display.
func (c *Coordinator) Backend() string {
	if c.tcp {
		return "tcp"
	}
	return "proc"
}

// workerArgv resolves the worker command for proc mode.
func (c *Coordinator) workerArgv() ([]string, error) {
	if len(c.opts.WorkerCommand) > 0 {
		return c.opts.WorkerCommand, nil
	}
	bin := c.opts.WorkerBin
	if bin == "" {
		if self, err := os.Executable(); err == nil {
			cand := filepath.Join(filepath.Dir(self), "ptguard-worker")
			if _, err := os.Stat(cand); err == nil {
				bin = cand
			}
		}
	}
	if bin == "" {
		path, err := exec.LookPath("ptguard-worker")
		if err != nil {
			return nil, fmt.Errorf("dist: ptguard-worker not found beside %q or on $PATH (build cmd/ptguard-worker or pass -worker-bin)", os.Args[0])
		}
		bin = path
	}
	return []string{bin}, nil
}

// spawn starts one worker session (subprocess or TCP dial) and runs the
// handshake.
func (c *Coordinator) spawn(addr string) (*session, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, fmt.Errorf("dist: coordinator closed")
	}
	c.nextID++
	id := c.nextID
	c.mu.Unlock()

	s := &session{id: id, addr: addr, started: time.Now(), msgs: make(chan Message, 8)}
	var r io.Reader
	if addr != "" {
		conn, err := net.DialTimeout("tcp", addr, c.handshake)
		if err != nil {
			return nil, fmt.Errorf("dist: connect worker %s: %w", addr, err)
		}
		s.conn = conn
		s.w = newFrameWriter(conn)
		s.stdin = conn
		r = conn
	} else {
		argv, err := c.workerArgv()
		if err != nil {
			return nil, err
		}
		cmd := exec.Command(argv[0], argv[1:]...)
		cmd.Env = append(os.Environ(), c.opts.WorkerEnv...)
		cmd.Stderr = c.opts.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			return nil, fmt.Errorf("dist: worker stdin: %w", err)
		}
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			return nil, fmt.Errorf("dist: worker stdout: %w", err)
		}
		if err := cmd.Start(); err != nil {
			return nil, fmt.Errorf("dist: start worker: %w", err)
		}
		s.cmd = cmd
		s.w = newFrameWriter(stdin)
		s.stdin = stdin
		r = stdout
	}
	c.spawns.Add(1)

	// Route every inbound frame to the session channel; channel close
	// signals worker death to whoever holds the lease.
	go func() {
		in := newFrameReader(r)
		for {
			m, err := in.Read()
			if err != nil {
				close(s.msgs)
				if s.cmd != nil {
					s.cmd.Wait()
				}
				return
			}
			s.msgs <- m
		}
	}()

	hello := Message{
		Type: MsgHello, Magic: Magic, Version: Version,
		Kind: c.campaign.Kind, Spec: c.specJSON, Seed: c.campaign.Seed,
		HeartbeatMS: c.opts.Heartbeat.Milliseconds(),
	}
	if err := s.w.Write(hello); err != nil {
		s.kill()
		return nil, fmt.Errorf("dist: worker %d hello: %w", id, err)
	}
	select {
	case m, ok := <-s.msgs:
		if !ok {
			s.kill()
			return nil, fmt.Errorf("dist: worker %d died during handshake", id)
		}
		if m.Type == MsgError {
			s.kill()
			return nil, fmt.Errorf("dist: worker %d rejected campaign: %s", id, m.Error)
		}
		if m.Type != MsgReady {
			s.kill()
			return nil, fmt.Errorf("dist: worker %d sent %q before ready", id, m.Type)
		}
	case <-time.After(c.handshake):
		s.kill()
		return nil, fmt.Errorf("dist: worker %d handshake timed out after %s", id, c.handshake)
	}

	c.mu.Lock()
	c.sessions[id] = s
	c.mu.Unlock()
	return s, nil
}

// kill tears a session down hard (SIGKILL / connection close).
func (s *session) kill() {
	if !s.dead.CompareAndSwap(false, true) {
		return
	}
	if s.stdin != nil {
		s.stdin.Close()
	}
	if s.conn != nil {
		s.conn.Close()
	}
	if s.cmd != nil && s.cmd.Process != nil {
		s.cmd.Process.Kill()
	}
}

// drop unregisters a dead session.
func (c *Coordinator) drop(s *session) {
	s.kill()
	c.mu.Lock()
	delete(c.sessions, s.id)
	c.mu.Unlock()
}

// Execute implements harness.Executor: lease a worker, dispatch the job
// key, wait for its result under the heartbeat deadline. Worker loss is
// absorbed by respawn-and-requeue up to MaxRequeues; only then does the
// loss surface as an error (burning a harness retry, exactly like a
// local failure would).
func (c *Coordinator) Execute(ctx context.Context, key string) (json.RawMessage, error) {
	c.queueDepth.Add(1)
	var s *session
	select {
	case s = <-c.pool:
		c.queueDepth.Add(-1)
	case <-ctx.Done():
		c.queueDepth.Add(-1)
		return nil, ctx.Err()
	}

	requeues := 0
	for {
		if err := s.w.Write(Message{Type: MsgJob, Key: key}); err != nil {
			var rerr error
			s, rerr = c.requeue(s, key, &requeues)
			if rerr != nil {
				return nil, rerr
			}
			continue
		}
		// Injected fault: kill the leased worker right after dispatch,
		// forcing the crash-requeue path mid-flight.
		if c.opts.Chaos.Fire(chaos.WorkerKill) {
			fmt.Fprintf(c.opts.Stderr, "chaos: injected worker kill after dispatching %q to worker %d\n", key, s.id)
			s.kill()
		}

		timer := time.NewTimer(c.opts.HeartbeatGrace)
	wait:
		for {
			select {
			case <-ctx.Done():
				// The attempt was abandoned (job timeout or campaign
				// cancel). The worker may still be chewing on the job,
				// so retire it and restock the pool asynchronously.
				timer.Stop()
				c.drop(s)
				go c.restock(s.addr)
				return nil, ctx.Err()
			case m, ok := <-s.msgs:
				if !ok {
					timer.Stop()
					var rerr error
					s, rerr = c.requeue(s, key, &requeues)
					if rerr != nil {
						return nil, rerr
					}
					break wait
				}
				switch m.Type {
				case MsgHeartbeat:
					if !timer.Stop() {
						<-timer.C
					}
					timer.Reset(c.opts.HeartbeatGrace)
				case MsgResult:
					timer.Stop()
					s.jobs.Add(1)
					c.completed.Add(1)
					c.pool <- s
					if m.Error != "" {
						return nil, fmt.Errorf("%s", m.Error)
					}
					return m.Result, nil
				default:
					// Protocol violation: treat like a crash.
					timer.Stop()
					s.kill()
					var rerr error
					s, rerr = c.requeue(s, key, &requeues)
					if rerr != nil {
						return nil, rerr
					}
					break wait
				}
			case <-timer.C:
				c.heartbeatTimeouts.Add(1)
				fmt.Fprintf(c.opts.Stderr, "dist: worker %d silent for %s running %q; killing and requeueing\n", s.id, c.opts.HeartbeatGrace, key)
				s.kill()
				var rerr error
				s, rerr = c.requeue(s, key, &requeues)
				if rerr != nil {
					return nil, rerr
				}
				break wait
			}
		}
	}
}

// requeue handles a lost worker mid-job: drop the dead session, spawn a
// replacement, and hand it back for redispatch. Past MaxRequeues the
// replacement still goes back to the pool but the job's loss is
// surfaced as an error.
func (c *Coordinator) requeue(dead *session, key string, requeues *int) (*session, error) {
	c.drop(dead)
	fresh, err := c.spawn(dead.addr)
	if err != nil {
		return nil, fmt.Errorf("dist: worker lost running %q and respawn failed: %w", key, err)
	}
	*requeues++
	c.requeues.Add(1)
	if *requeues > c.opts.MaxRequeues {
		c.pool <- fresh
		return nil, fmt.Errorf("dist: job %q lost its worker %d times (MaxRequeues %d)", key, *requeues, c.opts.MaxRequeues)
	}
	return fresh, nil
}

// restock asynchronously replaces a retired session so the pool keeps
// its width; used on the abandon path where no Execute is waiting.
func (c *Coordinator) restock(addr string) {
	for attempt := 0; attempt < 3; attempt++ {
		s, err := c.spawn(addr)
		if err == nil {
			c.pool <- s
			return
		}
		c.mu.Lock()
		closed := c.closed
		c.mu.Unlock()
		if closed {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(c.opts.Stderr, "dist: failed to restock worker pool; running short\n")
}

// Close shuts every worker down (polite bye, then hard kill) and marks
// the coordinator unusable.
func (c *Coordinator) Close() {
	c.mu.Lock()
	c.closed = true
	sessions := make([]*session, 0, len(c.sessions))
	for _, s := range c.sessions {
		sessions = append(sessions, s)
	}
	c.mu.Unlock()
	for _, s := range sessions {
		s.w.Write(Message{Type: MsgBye})
	}
	for _, s := range sessions {
		s.kill()
	}
	c.mu.Lock()
	for id := range c.sessions {
		delete(c.sessions, id)
	}
	c.mu.Unlock()
}

// WorkerStatus is one session's live counters.
type WorkerStatus struct {
	ID         int     `json:"id"`
	Addr       string  `json:"addr,omitempty"`
	Jobs       int64   `json:"jobs"`
	JobsPerSec float64 `json:"jobs_per_sec"`
	UptimeMS   int64   `json:"uptime_ms"`
}

// Status is a point-in-time view of the coordinator, published over the
// -debug-addr expvar endpoint next to the harness LiveStatus.
type Status struct {
	Backend           string         `json:"backend"`
	Width             int            `json:"width"`
	QueueDepth        int64          `json:"queue_depth"`
	Completed         int64          `json:"completed"`
	Requeues          int64          `json:"requeues"`
	HeartbeatTimeouts int64          `json:"heartbeat_timeouts"`
	Spawns            int64          `json:"spawns"`
	Workers           []WorkerStatus `json:"workers"`
}

// Status snapshots the coordinator's counters.
func (c *Coordinator) Status() Status {
	st := Status{
		Backend:           c.Backend(),
		Width:             c.Width(),
		QueueDepth:        c.queueDepth.Load(),
		Completed:         c.completed.Load(),
		Requeues:          c.requeues.Load(),
		HeartbeatTimeouts: c.heartbeatTimeouts.Load(),
		Spawns:            c.spawns.Load(),
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, s := range c.sessions {
		up := time.Since(s.started)
		ws := WorkerStatus{ID: s.id, Addr: s.addr, Jobs: s.jobs.Load(), UptimeMS: up.Milliseconds()}
		if up > 0 {
			ws.JobsPerSec = float64(ws.Jobs) / up.Seconds()
		}
		st.Workers = append(st.Workers, ws)
	}
	sort.Slice(st.Workers, func(i, j int) bool { return st.Workers[i].ID < st.Workers[j].ID })
	return st
}
