// Package dist shards one harness campaign across processes and
// machines: a coordinator (implementing harness.Executor) dispatches job
// keys to ptguard-worker subprocesses over stdin/stdout — or to remote
// `ptguard-worker -listen` endpoints over TCP — and each worker expands
// the same declarative spec from the same campaign seed, so a job key
// alone identifies the work and the merged report is byte-identical to
// the in-process run at any worker/process count.
//
// The wire format reuses the harness journal's v2 idea: one JSON message
// per line, framed as {"crc":"<crc32-hex>","m":{...}} with the CRC
// computed over the message bytes. A worker killed mid-write leaves a
// torn line the coordinator rejects deterministically (and treats as a
// worker crash, requeueing the job), never a half-parsed message.
package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

const (
	// Magic identifies the protocol in the handshake.
	Magic = "ptguard-dist"
	// Version is the protocol version; coordinator and worker must agree
	// exactly (the handshake rejects a mismatch before any job runs).
	Version = 1
)

// Message types.
const (
	// MsgHello opens a session: coordinator -> worker, carrying the
	// campaign (kind, spec JSON, seed) and the heartbeat cadence.
	MsgHello = "hello"
	// MsgReady acknowledges the hello: worker -> coordinator, carrying
	// the worker's version and how many jobs the spec expanded into.
	MsgReady = "ready"
	// MsgJob dispatches one job key: coordinator -> worker.
	MsgJob = "job"
	// MsgHeartbeat flows worker -> coordinator while a job runs, proving
	// the worker is alive (silence past the grace window means a dead or
	// wedged worker and the job is requeued).
	MsgHeartbeat = "heartbeat"
	// MsgResult returns a finished job: the job's JSON result, or its
	// error string (a job error, not a worker failure — it burns a
	// harness retry exactly like a local failure).
	MsgResult = "result"
	// MsgError reports a session-level worker failure (bad handshake,
	// unknown kind); the session is dead after it.
	MsgError = "error"
	// MsgBye closes a session cleanly: coordinator -> worker.
	MsgBye = "bye"
)

// Message is one protocol message; which fields are meaningful depends
// on Type.
type Message struct {
	Type string `json:"type"`

	// Handshake (hello/ready).
	Magic       string          `json:"magic,omitempty"`
	Version     int             `json:"version,omitempty"`
	Kind        string          `json:"kind,omitempty"`
	Spec        json.RawMessage `json:"spec,omitempty"`
	Seed        uint64          `json:"seed,omitempty"`
	HeartbeatMS int64           `json:"heartbeat_ms,omitempty"`
	Jobs        int             `json:"jobs,omitempty"`

	// Job dispatch and completion (job/heartbeat/result).
	Key       string          `json:"key,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms,omitempty"`

	// Error carries a job error (on result) or a session error (on
	// error).
	Error string `json:"error,omitempty"`
}

// frame is the on-wire line: the message bytes plus their CRC32, the
// same shape as the journal's v2 record framing.
type frame struct {
	CRC string          `json:"crc"`
	Msg json.RawMessage `json:"m"`
}

func frameCRC(msg []byte) string {
	return fmt.Sprintf("%08x", crc32.ChecksumIEEE(msg))
}

// EncodeFrame serialises one message as a CRC-framed line (including the
// trailing newline).
func EncodeFrame(m Message) ([]byte, error) {
	raw, err := json.Marshal(m)
	if err != nil {
		return nil, fmt.Errorf("dist: marshal %s message: %w", m.Type, err)
	}
	line, err := json.Marshal(frame{CRC: frameCRC(raw), Msg: raw})
	if err != nil {
		return nil, fmt.Errorf("dist: frame %s message: %w", m.Type, err)
	}
	return append(line, '\n'), nil
}

// DecodeFrame parses one framed line back into a message, verifying the
// CRC. It never panics on arbitrary input (FuzzDistFrame pins that); any
// defect — bad JSON, missing fields, CRC mismatch, empty type — is an
// error, because on this wire a malformed line means a torn write from a
// dying worker, and the caller must treat the session as lost.
func DecodeFrame(line []byte) (Message, error) {
	var fr frame
	if err := json.Unmarshal(line, &fr); err != nil {
		return Message{}, fmt.Errorf("dist: frame is not valid JSON: %w", err)
	}
	if len(fr.Msg) == 0 {
		return Message{}, fmt.Errorf("dist: frame has no message")
	}
	if want := frameCRC(fr.Msg); fr.CRC != want {
		return Message{}, fmt.Errorf("dist: frame CRC mismatch (stored %s, computed %s)", fr.CRC, want)
	}
	var m Message
	if err := json.Unmarshal(fr.Msg, &m); err != nil {
		return Message{}, fmt.Errorf("dist: framed message is not valid JSON: %w", err)
	}
	if m.Type == "" {
		return Message{}, fmt.Errorf("dist: framed message has no type")
	}
	return m, nil
}

// maxFrame bounds one wire line; a SlowdownResult with embedded obs
// series stays far below this, and an unbounded line would let a corrupt
// peer OOM the reader.
const maxFrame = 64 << 20

// frameReader reads framed messages off a byte stream.
type frameReader struct {
	br *bufio.Reader
}

func newFrameReader(r io.Reader) *frameReader {
	return &frameReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next message. io.EOF (possibly wrapping a torn
// trailing line) means the peer is gone.
func (fr *frameReader) Read() (Message, error) {
	var line []byte
	for {
		chunk, err := fr.br.ReadSlice('\n')
		line = append(line, chunk...)
		if err == nil {
			break
		}
		if err == bufio.ErrBufferFull {
			if len(line) > maxFrame {
				return Message{}, fmt.Errorf("dist: frame exceeds %d bytes", maxFrame)
			}
			continue
		}
		if err == io.EOF && len(line) > 0 {
			// Torn trailing line from a dying peer: report EOF, the
			// session is over either way.
			return Message{}, io.EOF
		}
		return Message{}, err
	}
	return DecodeFrame(line[:len(line)-1])
}

// frameWriter serialises messages onto a byte stream; safe for
// concurrent use (heartbeats interleave with results).
type frameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: w}
}

func (fw *frameWriter) Write(m Message) error {
	line, err := EncodeFrame(m)
	if err != nil {
		return err
	}
	fw.mu.Lock()
	defer fw.mu.Unlock()
	_, err = fw.w.Write(line)
	return err
}
