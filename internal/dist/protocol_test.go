package dist

import (
	"bytes"
	"encoding/json"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundtrip(t *testing.T) {
	msgs := []Message{
		{Type: MsgHello, Magic: Magic, Version: Version, Kind: KindCorrection,
			Spec: json.RawMessage(`{"Lines":10}`), Seed: 42, HeartbeatMS: 200},
		{Type: MsgReady, Magic: Magic, Version: Version, Jobs: 12},
		{Type: MsgJob, Key: "correction/p0"},
		{Type: MsgHeartbeat, Key: "correction/p0"},
		{Type: MsgResult, Key: "correction/p0", Result: json.RawMessage(`{"x":1}`), ElapsedMS: 1.5},
		{Type: MsgResult, Key: "correction/p1", Error: "boom"},
		{Type: MsgError, Error: "bad handshake"},
		{Type: MsgBye},
	}
	var buf bytes.Buffer
	for _, m := range msgs {
		line, err := EncodeFrame(m)
		if err != nil {
			t.Fatalf("EncodeFrame(%v): %v", m.Type, err)
		}
		buf.Write(line)
	}
	r := newFrameReader(&buf)
	for i, want := range msgs {
		got, err := r.Read()
		if err != nil {
			t.Fatalf("Read #%d: %v", i, err)
		}
		gj, _ := json.Marshal(got)
		wj, _ := json.Marshal(want)
		if !bytes.Equal(gj, wj) {
			t.Errorf("message %d: got %s, want %s", i, gj, wj)
		}
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("after all messages: got %v, want io.EOF", err)
	}
}

// TestGoldenFrames pins the wire format byte for byte: a coordinator and
// worker from different builds must agree on these exact lines.
func TestGoldenFrames(t *testing.T) {
	cases := []struct {
		msg    Message
		golden string
	}{
		{
			Message{Type: MsgJob, Key: "slowdown/leela/mac10"},
			`{"crc":"d85fb7ef","m":{"type":"job","key":"slowdown/leela/mac10"}}` + "\n",
		},
		{
			Message{Type: MsgHello, Magic: Magic, Version: Version, Kind: KindSynthetic,
				Spec: json.RawMessage(`{"jobs":2,"cost_ms":1}`), Seed: 7, HeartbeatMS: 200},
			`{"crc":"aab76543","m":{"type":"hello","magic":"ptguard-dist","version":1,"kind":"synthetic","spec":{"jobs":2,"cost_ms":1},"seed":7,"heartbeat_ms":200}}` + "\n",
		},
	}
	for _, c := range cases {
		line, err := EncodeFrame(c.msg)
		if err != nil {
			t.Fatalf("EncodeFrame: %v", err)
		}
		if string(line) != c.golden {
			t.Errorf("wire format drifted:\n got  %s want %s", line, c.golden)
		}
		if _, err := DecodeFrame([]byte(strings.TrimSuffix(c.golden, "\n"))); err != nil {
			t.Errorf("golden line does not decode: %v", err)
		}
	}
}

func TestDecodeFrameRejects(t *testing.T) {
	good, err := EncodeFrame(Message{Type: MsgBye})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"not json":       `{"crc":"00000000","m"`,
		"no message":     `{"crc":"00000000"}`,
		"crc mismatch":   `{"crc":"00000000","m":{"type":"bye"}}`,
		"no type":        `{"crc":"a3a6bf43","m":{}}`,
		"torn good line": string(good[:len(good)/2]),
	}
	for name, line := range cases {
		if _, err := DecodeFrame([]byte(line)); err == nil {
			t.Errorf("%s: DecodeFrame accepted %q", name, line)
		}
	}
	// Sanity: the intact good line still decodes.
	if _, err := DecodeFrame(bytes.TrimSuffix(good, []byte("\n"))); err != nil {
		t.Fatalf("good line rejected: %v", err)
	}
}

// serveInMemory runs Serve over in-memory pipes and returns a writer for
// coordinator->worker frames and a reader for worker->coordinator ones.
func serveInMemory(t *testing.T) (*frameWriter, *frameReader, chan error) {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	errc := make(chan error, 1)
	go func() {
		errc <- Serve(inR, outW)
		outW.Close()
	}()
	t.Cleanup(func() { inW.Close() })
	return newFrameWriter(inW), newFrameReader(outR), errc
}

func TestServeRejectsVersionMismatch(t *testing.T) {
	w, r, errc := serveInMemory(t)
	hello := Message{Type: MsgHello, Magic: Magic, Version: Version + 1,
		Kind: KindSynthetic, Spec: json.RawMessage(`{}`), Seed: 1}
	if err := w.Write(hello); err != nil {
		t.Fatal(err)
	}
	reply, err := r.Read()
	if err != nil {
		t.Fatalf("read reply: %v", err)
	}
	if reply.Type != MsgError || !strings.Contains(reply.Error, "version mismatch") {
		t.Fatalf("got %+v, want version-mismatch error frame", reply)
	}
	if err := <-errc; err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("Serve returned %v, want version-mismatch error", err)
	}
}

func TestServeRejectsBadMagicAndUnknownKind(t *testing.T) {
	w, r, errc := serveInMemory(t)
	if err := w.Write(Message{Type: MsgHello, Magic: "nope", Version: Version}); err != nil {
		t.Fatal(err)
	}
	reply, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgError || !strings.Contains(reply.Error, "bad magic") {
		t.Fatalf("got %+v, want bad-magic error frame", reply)
	}
	if err := <-errc; err == nil {
		t.Fatal("Serve accepted a bad magic")
	}

	w, r, errc = serveInMemory(t)
	hello := Message{Type: MsgHello, Magic: Magic, Version: Version,
		Kind: "no-such-kind", Spec: json.RawMessage(`{}`), Seed: 1}
	if err := w.Write(hello); err != nil {
		t.Fatal(err)
	}
	reply, err = r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if reply.Type != MsgError || !strings.Contains(reply.Error, "unknown spec kind") {
		t.Fatalf("got %+v, want unknown-kind error frame", reply)
	}
	if err := <-errc; err == nil {
		t.Fatal("Serve accepted an unknown kind")
	}
}

// TestServeSession drives a whole session in-memory: handshake, one job,
// clean bye.
func TestServeSession(t *testing.T) {
	w, r, errc := serveInMemory(t)
	spec, _ := json.Marshal(SyntheticSpec{JobCount: 3, CostMS: 1})
	if err := w.Write(Message{Type: MsgHello, Magic: Magic, Version: Version,
		Kind: KindSynthetic, Spec: spec, Seed: 42}); err != nil {
		t.Fatal(err)
	}
	ready, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if ready.Type != MsgReady || ready.Jobs != 3 {
		t.Fatalf("ready = %+v, want 3 jobs", ready)
	}
	if err := w.Write(Message{Type: MsgJob, Key: "synthetic/0001"}); err != nil {
		t.Fatal(err)
	}
	res, err := r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.Type != MsgResult || res.Key != "synthetic/0001" || res.Error != "" {
		t.Fatalf("result = %+v", res)
	}
	var sr SyntheticResult
	if err := json.Unmarshal(res.Result, &sr); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	if sr.Index != 1 {
		t.Fatalf("result index = %d, want 1", sr.Index)
	}
	// Unknown keys come back as job errors, not session errors.
	if err := w.Write(Message{Type: MsgJob, Key: "synthetic/9999"}); err != nil {
		t.Fatal(err)
	}
	res, err = r.Read()
	if err != nil {
		t.Fatal(err)
	}
	if res.Type != MsgResult || !strings.Contains(res.Error, "unknown job key") {
		t.Fatalf("unknown key result = %+v", res)
	}
	if err := w.Write(Message{Type: MsgBye}); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("Serve: %v", err)
	}
}

func TestKindsCoverAllCampaigns(t *testing.T) {
	want := []string{KindAblation, KindCorrection, KindFaults, KindMitigate,
		KindMulticore, KindSlowdown, KindSynthetic, KindVirt}
	got := Kinds()
	if len(got) != len(want) {
		t.Fatalf("Kinds() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Kinds() = %v, want %v", got, want)
		}
	}
}
