package dist

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"time"
)

// Serve runs one worker session over a byte stream pair: handshake,
// expand the campaign, then execute dispatched jobs until the
// coordinator says bye or the stream closes (a dead coordinator closes
// our stdin, which lands here as io.EOF — the worker must die with it,
// never linger as an orphan).
//
// Serve is the whole body of `ptguard-worker`: stdio mode passes
// os.Stdin/os.Stdout, TCP mode passes the accepted connection.
func Serve(r io.Reader, w io.Writer) error {
	in := newFrameReader(r)
	out := newFrameWriter(w)

	hello, err := in.Read()
	if err != nil {
		return fmt.Errorf("dist: worker handshake read: %w", err)
	}
	if err := checkHello(hello); err != nil {
		// Best-effort error frame so the coordinator logs the cause
		// rather than a bare disconnect.
		out.Write(Message{Type: MsgError, Error: err.Error()})
		return err
	}
	js, err := expand(hello.Kind, hello.Spec, hello.Seed)
	if err != nil {
		out.Write(Message{Type: MsgError, Error: err.Error()})
		return err
	}
	if err := out.Write(Message{Type: MsgReady, Magic: Magic, Version: Version, Jobs: len(js.keys)}); err != nil {
		return fmt.Errorf("dist: worker handshake write: %w", err)
	}

	heartbeat := time.Duration(hello.HeartbeatMS) * time.Millisecond
	for {
		msg, err := in.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("dist: worker read: %w", err)
		}
		switch msg.Type {
		case MsgBye:
			return nil
		case MsgJob:
			res := runJob(js, msg.Key, out, heartbeat)
			if err := out.Write(res); err != nil {
				return fmt.Errorf("dist: worker result write: %w", err)
			}
		default:
			return fmt.Errorf("dist: worker got unexpected %q message", msg.Type)
		}
	}
}

func checkHello(m Message) error {
	if m.Type != MsgHello {
		return fmt.Errorf("dist: expected hello, got %q", m.Type)
	}
	if m.Magic != Magic {
		return fmt.Errorf("dist: bad magic %q (want %q)", m.Magic, Magic)
	}
	if m.Version != Version {
		return fmt.Errorf("dist: protocol version mismatch: coordinator v%d, worker v%d", m.Version, Version)
	}
	return nil
}

// runJob executes one dispatched job, streaming heartbeats while it
// runs. A panic inside the job becomes a job error on the result frame
// (mirroring the local pool's recover), so a poisoned job burns harness
// retries instead of killing the worker.
func runJob(js *jobSet, key string, out *frameWriter, heartbeat time.Duration) Message {
	run, ok := js.run[key]
	if !ok {
		return Message{Type: MsgResult, Key: key, Error: fmt.Sprintf("dist: unknown job key %q", key)}
	}

	stop := make(chan struct{})
	beatDone := make(chan struct{})
	go func() {
		defer close(beatDone)
		if heartbeat <= 0 {
			return
		}
		tick := time.NewTicker(heartbeat)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				// A failed heartbeat write means the coordinator is
				// gone; the main loop will see EOF soon enough.
				out.Write(Message{Type: MsgHeartbeat, Key: key})
			}
		}
	}()

	start := time.Now()
	raw, err := func() (raw []byte, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("dist: job %q panicked: %v\n%s", key, r, debug.Stack())
			}
		}()
		return run(context.Background())
	}()
	close(stop)
	<-beatDone

	res := Message{Type: MsgResult, Key: key, Result: raw, ElapsedMS: float64(time.Since(start)) / float64(time.Millisecond)}
	if err != nil {
		res.Result, res.Error = nil, err.Error()
	}
	return res
}
