package dist

import (
	"context"
	"fmt"
	"time"

	"ptguard/internal/harness"
	"ptguard/internal/stats"
)

// The spec-kind catalog: every harness campaign a CLI can run is
// registered here, so any of them can be handed to a worker process by
// name. The kind strings are part of the wire protocol and of journal
// fingerprints — never reuse or rename one.
const (
	KindSlowdown   = "slowdown"
	KindMulticore  = "multicore"
	KindAblation   = "ablation"
	KindCorrection = "correction"
	KindFaults     = "faults"
	KindMitigate   = "mitigate"
	KindVirt       = "virt"
	KindSynthetic  = "synthetic"
)

func init() {
	register(KindSlowdown, harness.SlowdownSpec.Jobs)
	register(KindMulticore, harness.MulticoreSpec.Jobs)
	register(KindAblation, harness.AblationSpec.Jobs)
	register(KindCorrection, harness.CorrectionSpec.Jobs)
	register(KindFaults, harness.FaultSpec.Jobs)
	register(KindMitigate, harness.MitigateSpec.Jobs)
	register(KindVirt, harness.VirtSpec.Jobs)
	register(KindSynthetic, SyntheticSpec.Jobs)
}

// SyntheticSpec is a fixed-cost calibration campaign: each job sleeps
// CostMS and returns a seed-derived token. Because the per-job cost is
// wall-clock rather than CPU, campaign throughput scales with worker
// processes even on a single-core box — which is exactly what the
// BENCH_2 scaling benchmarks need to measure (coordinator dispatch and
// pipeline overlap) without conflating it with core count.
type SyntheticSpec struct {
	// Jobs is the number of jobs; 0 selects 16.
	JobCount int `json:"jobs"`
	// CostMS is the fixed wall-clock cost per job; 0 selects 10ms.
	CostMS int `json:"cost_ms"`
}

// SyntheticResult is one synthetic job's output; Token is a pure
// function of (campaign seed, job key), so cross-backend determinism
// tests can pin it.
type SyntheticResult struct {
	Index int    `json:"index"`
	Token uint64 `json:"token"`
}

// Jobs expands the synthetic campaign.
func (s SyntheticSpec) Jobs(campaignSeed uint64) ([]harness.Job[SyntheticResult], error) {
	n := s.JobCount
	if n <= 0 {
		n = 16
	}
	cost := time.Duration(s.CostMS) * time.Millisecond
	if cost <= 0 {
		cost = 10 * time.Millisecond
	}
	jobs := make([]harness.Job[SyntheticResult], 0, n)
	for i := 0; i < n; i++ {
		i := i
		key := fmt.Sprintf("synthetic/%04d", i)
		seed := harness.DeriveSeed(campaignSeed, key)
		jobs = append(jobs, harness.Job[SyntheticResult]{
			Key: key,
			Run: func(ctx context.Context) (SyntheticResult, error) {
				select {
				case <-time.After(cost):
				case <-ctx.Done():
					return SyntheticResult{}, ctx.Err()
				}
				rng := stats.NewRNG(seed)
				return SyntheticResult{Index: i, Token: rng.Uint64()}, nil
			},
		})
	}
	return jobs, nil
}
