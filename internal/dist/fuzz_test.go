package dist

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzDistFrame throws arbitrary bytes at the wire-format decoder: it
// must never panic, and any line it does accept must re-encode to a
// semantically identical message (the coordinator treats decoded frames
// as trusted, so acceptance has to imply integrity).
func FuzzDistFrame(f *testing.F) {
	seedMsgs := []Message{
		{Type: MsgHello, Magic: Magic, Version: Version, Kind: KindCorrection,
			Spec: json.RawMessage(`{"Lines":10}`), Seed: 42, HeartbeatMS: 200},
		{Type: MsgJob, Key: "correction/p0"},
		{Type: MsgResult, Key: "correction/p0", Result: json.RawMessage(`{"x":1}`), ElapsedMS: 2.5},
		{Type: MsgError, Error: "boom"},
	}
	for _, m := range seedMsgs {
		line, err := EncodeFrame(m)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bytes.TrimSuffix(line, []byte("\n")))
	}
	f.Add([]byte(`{"crc":"00000000","m":{"type":"bye"}}`))
	f.Add([]byte(`{"crc":"bad`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, line []byte) {
		m, err := DecodeFrame(line)
		if err != nil {
			return
		}
		if m.Type == "" {
			t.Fatal("DecodeFrame accepted a message with no type")
		}
		re, err := EncodeFrame(m)
		if err != nil {
			t.Fatalf("accepted message does not re-encode: %v", err)
		}
		m2, err := DecodeFrame(bytes.TrimSuffix(re, []byte("\n")))
		if err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		j1, _ := json.Marshal(m)
		j2, _ := json.Marshal(m2)
		if !bytes.Equal(j1, j2) {
			t.Fatalf("roundtrip drift: %s vs %s", j1, j2)
		}
	})
}
