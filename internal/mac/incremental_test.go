package mac

import (
	"testing"

	"ptguard/internal/stats"
)

// TestComputeDeltaMatchesCompute: the incremental path must be
// byte-identical to the full recompute for any candidate, however many
// chunks are dirty, and must report exactly the dirty-chunk encryptions.
func TestComputeDeltaMatchesCompute(t *testing.T) {
	for _, tc := range []struct {
		name      string
		opts      []Option
		chunkSize int
	}{
		{name: "qarma128", chunkSize: 16},
		{name: "qarma64", opts: []Option{WithQARMA64()}, chunkSize: 8},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := testAuth(t, tc.opts...)
			r := stats.NewRNG(0xD17A)
			nChunks := LineBytes / tc.chunkSize
			for trial := 0; trial < 200; trial++ {
				base := randLine(r)
				addr := r.Uint64() &^ 0x3F
				cc := a.Precompute(base, addr)

				// Dirty 0..nChunks distinct chunks with random byte edits.
				cand := base
				dirty := map[int]bool{}
				for i, n := 0, r.Intn(nChunks+1); i < n; i++ {
					c := r.Intn(nChunks)
					if dirty[c] {
						continue
					}
					dirty[c] = true
					off := c*tc.chunkSize + r.Intn(tc.chunkSize)
					cand[off] ^= byte(1 + r.Intn(255))
				}

				got, enc := a.ComputeDelta(&cc, &cand)
				want := a.Compute(cand, addr)
				if !got.Equal(want) {
					t.Fatalf("trial %d: ComputeDelta != Compute with %d dirty chunks", trial, len(dirty))
				}
				if enc != len(dirty) {
					t.Fatalf("trial %d: %d chunk encryptions reported, want %d", trial, enc, len(dirty))
				}
			}
		})
	}
}

// TestComputeDeltaCleanCandidateIsFree: a candidate equal to the base costs
// zero cipher work (the §VI-D step-1 soft retry rides the cache for free).
func TestComputeDeltaCleanCandidateIsFree(t *testing.T) {
	a := testAuth(t)
	line := randLine(stats.NewRNG(7))
	cc := a.Precompute(line, 0x4000)
	got, enc := a.ComputeDelta(&cc, &line)
	if enc != 0 {
		t.Errorf("clean candidate cost %d encryptions, want 0", enc)
	}
	if want := a.Compute(line, 0x4000); !got.Equal(want) {
		t.Error("clean candidate tag mismatch")
	}
}

var sinkTag Tag

// AllocsPerRun gates: the MAC unit is the simulator's hottest loop and must
// never touch the heap.
func TestComputeZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{name: "qarma128"},
		{name: "qarma64", opts: []Option{WithQARMA64()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := testAuth(t, tc.opts...)
			line := randLine(stats.NewRNG(3))
			if n := testing.AllocsPerRun(200, func() { sinkTag = a.Compute(line, 0x8040) }); n != 0 {
				t.Errorf("Compute allocates %.1f objects/op, want 0", n)
			}
		})
	}
}

func TestComputeDeltaZeroAlloc(t *testing.T) {
	a := testAuth(t)
	r := stats.NewRNG(9)
	base := randLine(r)
	cc := a.Precompute(base, 0xC0C0)
	cand := base
	cand[17] ^= 0x10 // one dirty chunk
	if n := testing.AllocsPerRun(200, func() { sinkTag, _ = a.ComputeDelta(&cc, &cand) }); n != 0 {
		t.Errorf("ComputeDelta allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		cc2 := a.Precompute(base, 0xC0C0)
		sinkTag, _ = a.ComputeDelta(&cc2, &cand)
	}); n != 0 {
		t.Errorf("Precompute allocates %.1f objects/op, want 0", n)
	}
}

// TestRawAndAppendBytesMatchBytes: the zero-alloc accessors must expose
// exactly the bytes Bytes returns.
func TestRawAndAppendBytesMatchBytes(t *testing.T) {
	a := testAuth(t)
	tag := a.Compute(randLine(stats.NewRNG(11)), 0x77C0)
	want := tag.Bytes()
	if got := tag.SizeBytes(); got != len(want) {
		t.Fatalf("SizeBytes = %d, want %d", got, len(want))
	}
	raw := tag.Raw()
	for i, b := range want {
		if raw[i] != b {
			t.Fatalf("Raw[%d] = %#x, want %#x", i, raw[i], b)
		}
	}
	for i := tag.SizeBytes(); i < len(raw); i++ {
		if raw[i] != 0 {
			t.Fatalf("Raw[%d] = %#x beyond SizeBytes, want 0", i, raw[i])
		}
	}
	got := tag.AppendBytes(make([]byte, 0, 16))
	if len(got) != len(want) {
		t.Fatalf("AppendBytes length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AppendBytes[%d] = %#x, want %#x", i, got[i], want[i])
		}
	}
}
