package mac

import (
	"math"
	"testing"
	"testing/quick"

	"ptguard/internal/stats"
)

func testAuth(tb testing.TB, opts ...Option) *Authenticator {
	tb.Helper()
	key := make([]byte, KeySize)
	r := stats.NewRNG(0xBEEF)
	for i := range key {
		key[i] = byte(r.Uint64())
	}
	a, err := New(key, opts...)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	return a
}

func randLine(r *stats.RNG) [LineBytes]byte {
	var l [LineBytes]byte
	for i := range l {
		l[i] = byte(r.Uint64())
	}
	return l
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		keyLen  int
		opts    []Option
		wantErr bool
	}{
		{name: "default", keyLen: 32},
		{name: "bad key", keyLen: 16, wantErr: true},
		{name: "64-bit tag", keyLen: 32, opts: []Option{WithTagBits(64)}},
		{name: "zero tag", keyLen: 32, opts: []Option{WithTagBits(0)}, wantErr: true},
		{name: "oversized tag", keyLen: 32, opts: []Option{WithTagBits(129)}, wantErr: true},
		{name: "bad rounds", keyLen: 32, opts: []Option{WithRounds(2)}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(make([]byte, tt.keyLen), tt.opts...)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestComputeDeterministic(t *testing.T) {
	a := testAuth(t)
	r := stats.NewRNG(1)
	line := randLine(r)
	t1 := a.Compute(line, 0x1000)
	t2 := a.Compute(line, 0x1000)
	if !t1.Equal(t2) {
		t.Error("same line and address produced different MACs")
	}
	if t1.Bits() != DefaultTagBits {
		t.Errorf("tag width = %d, want %d", t1.Bits(), DefaultTagBits)
	}
}

func TestComputeAddressBinding(t *testing.T) {
	// §IV-G: the address is a MAC input, so relocating a line must change
	// its MAC (prevents splicing a valid PTE line to another address).
	a := testAuth(t)
	r := stats.NewRNG(2)
	line := randLine(r)
	if a.Compute(line, 0x1000).Equal(a.Compute(line, 0x2000)) {
		t.Error("MAC identical at different addresses")
	}
}

func TestComputeDataSensitivity(t *testing.T) {
	a := testAuth(t)
	r := stats.NewRNG(3)
	for trial := 0; trial < 50; trial++ {
		line := randLine(r)
		base := a.Compute(line, 0x4000)
		bit := r.Intn(512)
		line[bit/8] ^= 1 << (bit % 8)
		got := a.Compute(line, 0x4000)
		d, err := base.HammingDistance(got)
		if err != nil {
			t.Fatal(err)
		}
		if d == 0 {
			t.Fatal("single data bit flip left MAC unchanged")
		}
	}
}

func TestComputeChunkPermutationSensitive(t *testing.T) {
	// The per-chunk address binding must prevent swapping two 16-byte
	// chunks without changing the MAC.
	a := testAuth(t)
	r := stats.NewRNG(4)
	line := randLine(r)
	swapped := line
	copy(swapped[0:16], line[16:32])
	copy(swapped[16:32], line[0:16])
	if a.Compute(line, 0x8000).Equal(a.Compute(swapped, 0x8000)) {
		t.Error("chunk swap left MAC unchanged")
	}
}

func TestKeySeparation(t *testing.T) {
	a1 := testAuth(t)
	key2 := make([]byte, KeySize)
	key2[0] = 1
	a2, err := New(key2)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRNG(5)
	line := randLine(r)
	if a1.Compute(line, 0).Equal(a2.Compute(line, 0)) {
		t.Error("different keys produced same MAC")
	}
}

func TestZeroLineTagStable(t *testing.T) {
	a := testAuth(t)
	z1, z2 := a.ZeroLineTag(), a.ZeroLineTag()
	if !z1.Equal(z2) {
		t.Error("ZeroLineTag not deterministic")
	}
	var zero Tag
	zero.bits = DefaultTagBits
	if z1.Equal(zero) {
		t.Error("ZeroLineTag is all-zero: chunk outputs cancelled")
	}
}

func TestTagBitsOption(t *testing.T) {
	a := testAuth(t, WithTagBits(64))
	r := stats.NewRNG(6)
	tag := a.Compute(randLine(r), 0)
	if tag.Bits() != 64 {
		t.Errorf("Bits = %d, want 64", tag.Bits())
	}
	for i := 64; i < 128; i++ {
		if tag.Bit(i) != 0 {
			t.Fatalf("bit %d beyond width is set", i)
		}
	}
	if got := len(tag.Bytes()); got != 8 {
		t.Errorf("Bytes len = %d, want 8", got)
	}
}

func TestSoftMatch(t *testing.T) {
	a := testAuth(t)
	r := stats.NewRNG(7)
	tag := a.Compute(randLine(r), 0x10)

	flipped := tag
	for i := 0; i < 4; i++ {
		flipped = flipped.FlipBit(i * 7)
	}
	tests := []struct {
		name string
		k    int
		want bool
	}{
		{name: "k=3 rejects 4 flips", k: 3, want: false},
		{name: "k=4 accepts 4 flips", k: 4, want: true},
		{name: "k=0 exact rejects", k: 0, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tag.SoftMatch(flipped, tt.k)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.want {
				t.Errorf("SoftMatch(k=%d) = %v, want %v", tt.k, got, tt.want)
			}
		})
	}
	if ok, err := tag.SoftMatch(tag, 0); err != nil || !ok {
		t.Error("exact SoftMatch with itself failed")
	}
}

func TestSoftMatchWidthMismatch(t *testing.T) {
	t96, _ := TagFromBytes([]byte{1}, 96)
	t64, _ := TagFromBytes([]byte{1}, 64)
	if _, err := t96.SoftMatch(t64, 1); err == nil {
		t.Error("width mismatch must error")
	}
}

func TestTagFromBytesMasksHighBits(t *testing.T) {
	raw := make([]byte, 16)
	for i := range raw {
		raw[i] = 0xFF
	}
	tag, err := TagFromBytes(raw, 96)
	if err != nil {
		t.Fatal(err)
	}
	for i := 96; i < 128; i++ {
		if tag.Bit(i) != 0 {
			t.Fatalf("bit %d not masked", i)
		}
	}
	if _, err := TagFromBytes(raw, 0); err == nil {
		t.Error("zero width must error")
	}
}

func TestFlipBitRoundTrip(t *testing.T) {
	f := func(raw [12]byte, bit uint8) bool {
		tag, err := TagFromBytes(raw[:], 96)
		if err != nil {
			return false
		}
		b := int(bit) % 96
		return tag.FlipBit(b).FlipBit(b).Equal(tag)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEscapeProbabilityEq1(t *testing.T) {
	// Paper §VI-E: n=96, k=4, G_max=372 → effective 66-bit MAC.
	nEff, err := EffectiveMACBits(96, 4, GMaxPaper)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(nEff-66) > 1.0 {
		t.Errorf("n_eff = %.2f, want ~66", nEff)
	}
	// Without correction (k=0, one guess) the MAC keeps its full width.
	full, err := EffectiveMACBits(96, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(full-96) > 1e-9 {
		t.Errorf("n_eff(k=0,g=1) = %v, want 96", full)
	}
}

func TestEscapeProbabilityValidation(t *testing.T) {
	if _, err := EscapeProbability(0, 0, 1); err == nil {
		t.Error("n=0 must error")
	}
	if _, err := EscapeProbability(96, -1, 1); err == nil {
		t.Error("k<0 must error")
	}
	if _, err := EscapeProbability(96, 97, 1); err == nil {
		t.Error("k>n must error")
	}
	if _, err := EscapeProbability(96, 4, 0); err == nil {
		t.Error("gMax=0 must error")
	}
}

func TestPickSoftMatchBudgetEq2(t *testing.T) {
	// Paper: at p_flip=1% on a 96-bit MAC, k=4 is the lowest budget with
	// <1% uncorrectable MACs.
	k, err := PickSoftMatchBudget(96, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if k != 4 {
		t.Errorf("k = %d, want 4", k)
	}
	// At the DDR4-like p=1/512, a smaller budget suffices.
	k512, err := PickSoftMatchBudget(96, 1.0/512, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if k512 > 4 {
		t.Errorf("k(p=1/512) = %d, want <= 4", k512)
	}
}

func TestUncorrectableMACProbMonotonic(t *testing.T) {
	prev := 1.0
	for k := 0; k <= 8; k++ {
		p, err := UncorrectableMACProb(96, k, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		if p > prev {
			t.Fatalf("tail not monotonic at k=%d", k)
		}
		prev = p
	}
}

func TestAttackYearsPaperClaims(t *testing.T) {
	// §IV-G: 96-bit MAC at 50ns per attempt → >1e14 years.
	if y := AttackYears(96, 50); y < 1e14 {
		t.Errorf("96-bit attack time = %.3g years, want > 1e14", y)
	}
	// §VI-C: 66-bit effective MAC → >1e4 years.
	if y := AttackYears(66, 50); y < 1e4 {
		t.Errorf("66-bit attack time = %.3g years, want > 1e4", y)
	}
}

func BenchmarkCompute(b *testing.B) {
	a := testAuth(b)
	r := stats.NewRNG(9)
	line := randLine(r)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Compute(line, uint64(i)<<6)
	}
}

// TestMACBitUniformity checks the PRF quality the security analysis assumes
// (§IV-G "uniformly random hash values"): across many (line, address)
// inputs, every tag bit is set close to half the time, and adjacent-address
// tags are uncorrelated.
func TestMACBitUniformity(t *testing.T) {
	a := testAuth(t)
	r := stats.NewRNG(31337)
	const samples = 3000
	counts := make([]int, DefaultTagBits)
	var prev Tag
	agree := 0
	for i := 0; i < samples; i++ {
		tag := a.Compute(randLine(r), uint64(i)*64)
		for b := 0; b < DefaultTagBits; b++ {
			if tag.Bit(b) == 1 {
				counts[b]++
			}
		}
		if i > 0 {
			d, err := tag.HammingDistance(prev)
			if err != nil {
				t.Fatal(err)
			}
			agree += DefaultTagBits - d
		}
		prev = tag
	}
	// Each bit should be near 50%: allow ±5 sigma of Binomial(3000, .5).
	for b, c := range counts {
		dev := float64(c) - samples/2
		if dev < 0 {
			dev = -dev
		}
		if dev > 5*27.4 { // sigma = sqrt(3000*0.25) ≈ 27.4
			t.Errorf("tag bit %d set %d/%d times", b, c, samples)
		}
	}
	// Consecutive tags agree on ~half their bits.
	meanAgree := float64(agree) / float64(samples-1)
	if meanAgree < 42 || meanAgree > 54 {
		t.Errorf("mean inter-tag agreement = %.1f/96 bits, want ~48", meanAgree)
	}
}

func TestQARMA64Authenticator(t *testing.T) {
	a := testAuth(t, WithQARMA64())
	if a.TagBits() != 64 {
		t.Fatalf("tag bits = %d, want 64", a.TagBits())
	}
	r := stats.NewRNG(8)
	line := randLine(r)
	t1 := a.Compute(line, 0x1000)
	if !t1.Equal(a.Compute(line, 0x1000)) {
		t.Error("not deterministic")
	}
	if t1.Equal(a.Compute(line, 0x1040)) {
		t.Error("not address-bound")
	}
	flipped := line
	flipped[33] ^= 1
	if t1.Equal(a.Compute(flipped, 0x1000)) {
		t.Error("not data-sensitive")
	}
	// Chunk swap must change the tag (per-chunk address binding).
	swapped := line
	copy(swapped[0:8], line[8:16])
	copy(swapped[8:16], line[0:8])
	if t1.Equal(a.Compute(swapped, 0x1000)) {
		t.Error("chunk swap left QARMA-64 MAC unchanged")
	}
	z := a.ZeroLineTag()
	if !z.Equal(a.ZeroLineTag()) {
		t.Error("zero tag not deterministic")
	}
	var zeroTag Tag
	zeroTag.bits = 64
	if z.Equal(zeroTag) {
		t.Error("zero tag cancelled to all-zero")
	}
}

func TestQARMA64WidthValidation(t *testing.T) {
	if _, err := New(make([]byte, KeySize), WithQARMA64(), WithTagBits(96)); err == nil {
		t.Error("96-bit tag with QARMA-64 accepted")
	}
	if _, err := New(make([]byte, KeySize), WithQARMA64(), WithTagBits(48)); err != nil {
		t.Errorf("48-bit tag with QARMA-64 rejected: %v", err)
	}
}
