package mac

import "ptguard/internal/qarma"

// This file holds the batch MAC engine: many 64-byte lines are MAC'd per
// call by feeding all their chunk encryptions through the bit-sliced
// qarma.EncryptBlocks kernel (64 cipher lanes per pass). Every entry point
// is bit-identical to its scalar counterpart (pinned by the
// testing/quick property in batch_test.go and FuzzBatchMAC) and performs
// zero heap allocations (all lane marshalling lives on the stack).

const (
	// groupLines128 and groupLines64 are how many lines fill one 64-lane
	// sliced pass: 16 lines of 4 sixteen-byte chunks under QARMA-128,
	// 8 lines of 8 eight-byte chunks under QARMA-64.
	groupLines128 = 64 / chunks128
	groupLines64  = 64 / chunks64

	// deltaGroup is the candidate group size of ComputeDeltaBatch; with at
	// most Chunks() dirty chunks per candidate the pending-lane buffers
	// stay bounded on the stack.
	deltaGroup = 64
)

// BatchGroupLines returns how many lines fill one sliced cipher pass — the
// natural batch granularity callers should aim for (multiples of it keep
// every pass full).
func (a *Authenticator) BatchGroupLines() int {
	if a.cipher64 != nil {
		return groupLines64
	}
	return groupLines128
}

// ComputeBatch computes dst[i] = Compute(lines[i], addrs[i]) for every i
// through the sliced kernel. The three slices must have equal length.
func (a *Authenticator) ComputeBatch(dst []Tag, lines [][LineBytes]byte, addrs []uint64) {
	if len(dst) != len(lines) || len(addrs) != len(lines) {
		panic("mac: ComputeBatch slice lengths differ")
	}
	if a.cipher64 != nil {
		a.computeBatch64(dst, lines, addrs)
		return
	}
	var src, tw [64]qarma.Block
	for base := 0; base < len(lines); base += groupLines128 {
		n := len(lines) - base
		if n > groupLines128 {
			n = groupLines128
		}
		nb := n * chunks128
		for j := 0; j < n; j++ {
			marshalChunks128(&src, &tw, j*chunks128, &lines[base+j], addrs[base+j])
		}
		a.cipher.EncryptBlocks(src[:nb], src[:nb], tw[:nb])
		for j := 0; j < n; j++ {
			acc := src[j*chunks128]
			for i := 1; i < chunks128; i++ {
				acc = xorBlock(acc, src[j*chunks128+i])
			}
			dst[base+j] = a.tagFromBlock(acc)
		}
	}
}

func (a *Authenticator) computeBatch64(dst []Tag, lines [][LineBytes]byte, addrs []uint64) {
	var src, tw [64]uint64
	for base := 0; base < len(lines); base += groupLines64 {
		n := len(lines) - base
		if n > groupLines64 {
			n = groupLines64
		}
		nb := n * chunks64
		for j := 0; j < n; j++ {
			marshalChunks64(&src, &tw, j*chunks64, &lines[base+j], addrs[base+j])
		}
		a.cipher64.EncryptBlocks(src[:nb], src[:nb], tw[:nb])
		for j := 0; j < n; j++ {
			acc := src[j*chunks64]
			for i := 1; i < chunks64; i++ {
				acc ^= src[j*chunks64+i]
			}
			dst[base+j] = a.tagFromUint64(acc)
		}
	}
}

// marshalChunks128 loads one line's four tweak-XORed chunks and tweaks into
// lanes k..k+3, matching encryptChunk's input construction.
func marshalChunks128(src, tw *[64]qarma.Block, k int, line *[LineBytes]byte, addr uint64) {
	for i := 0; i < chunks128; i++ {
		chunkAddr := addr + uint64(i*qarma.BlockSize)
		var tweak qarma.Block
		for b := 0; b < 8; b++ {
			tweak[b] = byte(chunkAddr >> (8 * b))
		}
		var chunk qarma.Block
		copy(chunk[:], line[i*qarma.BlockSize:(i+1)*qarma.BlockSize])
		src[k+i] = xorBlock(chunk, tweak)
		tw[k+i] = tweak
	}
}

// marshalChunks64 is the QARMA-64 counterpart of marshalChunks128,
// matching encryptChunk64.
func marshalChunks64(src, tw *[64]uint64, k int, line *[LineBytes]byte, addr uint64) {
	for i := 0; i < chunks64; i++ {
		var chunk uint64
		for b := 0; b < 8; b++ {
			chunk |= uint64(line[i*qarma.Block64Size+b]) << (8 * b)
		}
		chunkAddr := addr + uint64(i*qarma.Block64Size)
		src[k+i] = chunk ^ chunkAddr
		tw[k+i] = chunkAddr
	}
}

// VerifyBatch sets ok[i] to whether want[i] equals the freshly computed MAC
// of lines[i] at addrs[i]. All four slices must have equal length.
func (a *Authenticator) VerifyBatch(ok []bool, want []Tag, lines [][LineBytes]byte, addrs []uint64) {
	if len(ok) != len(lines) || len(want) != len(lines) || len(addrs) != len(lines) {
		panic("mac: VerifyBatch slice lengths differ")
	}
	var tags [64]Tag
	for base := 0; base < len(lines); base += len(tags) {
		n := len(lines) - base
		if n > len(tags) {
			n = len(tags)
		}
		a.ComputeBatch(tags[:n], lines[base:base+n], addrs[base:base+n])
		for j := 0; j < n; j++ {
			ok[base+j] = want[base+j].Equal(tags[j])
		}
	}
}

// PrecomputeBatch primes dst[i] with the chunk cache of lines[i] at
// addrs[i] — batch-enciphered, otherwise identical to per-line Precompute.
func (a *Authenticator) PrecomputeBatch(dst []ChunkCache, lines [][LineBytes]byte, addrs []uint64) {
	if len(dst) != len(lines) || len(addrs) != len(lines) {
		panic("mac: PrecomputeBatch slice lengths differ")
	}
	use64 := a.cipher64 != nil
	var src, tw [64]qarma.Block
	var src64, tw64 [64]uint64
	group := groupLines128
	if use64 {
		group = groupLines64
	}
	for base := 0; base < len(lines); base += group {
		n := len(lines) - base
		if n > group {
			n = group
		}
		if use64 {
			nb := n * chunks64
			for j := 0; j < n; j++ {
				marshalChunks64(&src64, &tw64, j*chunks64, &lines[base+j], addrs[base+j])
			}
			a.cipher64.EncryptBlocks(src64[:nb], src64[:nb], tw64[:nb])
		} else {
			nb := n * chunks128
			for j := 0; j < n; j++ {
				marshalChunks128(&src, &tw, j*chunks128, &lines[base+j], addrs[base+j])
			}
			a.cipher.EncryptBlocks(src[:nb], src[:nb], tw[:nb])
		}
		for j := 0; j < n; j++ {
			cc := &dst[base+j]
			cc.base = lines[base+j]
			cc.addr = addrs[base+j]
			cc.use64 = use64
			if use64 {
				copy(cc.out64[:], src64[j*chunks64:(j+1)*chunks64])
			} else {
				copy(cc.out[:], src[j*chunks128:(j+1)*chunks128])
			}
		}
	}
}

// ComputeDeltaBatch scores many candidate line images against one primed
// chunk cache: dst[i] is byte-identical to ComputeDelta(cc, &cands[i])'s
// tag, and enc[i] (when non-nil) receives that candidate's dirty-chunk
// encryption count. Dirty chunks from up to 64 candidates are pooled into
// shared sliced passes, amortising the cipher across the whole candidate
// set; the return value is the total number of chunk encryptions performed.
func (a *Authenticator) ComputeDeltaBatch(dst []Tag, enc []int, cc *ChunkCache, cands [][LineBytes]byte) int {
	if len(dst) != len(cands) || (enc != nil && len(enc) != len(cands)) {
		panic("mac: ComputeDeltaBatch slice lengths differ")
	}
	total := 0
	if cc.use64 {
		var acc, src, tw [deltaGroup * chunks64]uint64
		var owner [deltaGroup * chunks64]uint8
		for base := 0; base < len(cands); base += deltaGroup {
			n := len(cands) - base
			if n > deltaGroup {
				n = deltaGroup
			}
			m := 0
			for j := 0; j < n; j++ {
				cand := &cands[base+j]
				acc[j] = 0
				e := 0
				for i := 0; i < chunks64; i++ {
					if chunkEqual(cand, &cc.base, i*qarma.Block64Size, qarma.Block64Size) {
						acc[j] ^= cc.out64[i]
						continue
					}
					var chunk uint64
					for b := 0; b < 8; b++ {
						chunk |= uint64(cand[i*qarma.Block64Size+b]) << (8 * b)
					}
					chunkAddr := cc.addr + uint64(i*qarma.Block64Size)
					src[m] = chunk ^ chunkAddr
					tw[m] = chunkAddr
					owner[m] = uint8(j)
					m++
					e++
				}
				if enc != nil {
					enc[base+j] = e
				}
			}
			a.cipher64.EncryptBlocks(src[:m], src[:m], tw[:m])
			for k := 0; k < m; k++ {
				acc[owner[k]] ^= src[k]
			}
			for j := 0; j < n; j++ {
				dst[base+j] = a.tagFromUint64(acc[j])
			}
			total += m
		}
		return total
	}
	var acc [deltaGroup]qarma.Block
	var src, tw [deltaGroup * chunks128]qarma.Block
	var owner [deltaGroup * chunks128]uint8
	for base := 0; base < len(cands); base += deltaGroup {
		n := len(cands) - base
		if n > deltaGroup {
			n = deltaGroup
		}
		m := 0
		for j := 0; j < n; j++ {
			cand := &cands[base+j]
			acc[j] = qarma.Block{}
			e := 0
			for i := 0; i < chunks128; i++ {
				if chunkEqual(cand, &cc.base, i*qarma.BlockSize, qarma.BlockSize) {
					acc[j] = xorBlock(acc[j], cc.out[i])
					continue
				}
				chunkAddr := cc.addr + uint64(i*qarma.BlockSize)
				var tweak qarma.Block
				for b := 0; b < 8; b++ {
					tweak[b] = byte(chunkAddr >> (8 * b))
				}
				var chunk qarma.Block
				copy(chunk[:], cand[i*qarma.BlockSize:(i+1)*qarma.BlockSize])
				src[m] = xorBlock(chunk, tweak)
				tw[m] = tweak
				owner[m] = uint8(j)
				m++
				e++
			}
			if enc != nil {
				enc[base+j] = e
			}
		}
		a.cipher.EncryptBlocks(src[:m], src[:m], tw[:m])
		for k := 0; k < m; k++ {
			acc[owner[k]] = xorBlock(acc[owner[k]], src[k])
		}
		for j := 0; j < n; j++ {
			dst[base+j] = a.tagFromBlock(acc[j])
		}
		total += m
	}
	return total
}
