package mac

import (
	"errors"
	"fmt"
	"math"
	"math/big"

	"ptguard/internal/stats"
)

// GMaxPaper is the paper's maximum number of correction guesses (§VI-D):
// 1 (soft retry) + 352 (flip-and-check) + 1 (zero reset) + 18
// (flag majority vote and PFN contiguity, independently and together).
const GMaxPaper = 372

// EscapeProbability implements Eq. (1): the probability that a tampered PTE
// escapes detection when the verifier tolerates up to k faulty MAC bits and
// performs up to gMax correction guesses:
//
//	p_escape = gMax * sum_{h=0}^{k} C(n, h) / 2^n
func EscapeProbability(n, k, gMax int) (*big.Float, error) {
	if n <= 0 || k < 0 || k > n || gMax <= 0 {
		return nil, fmt.Errorf("mac: invalid escape parameters n=%d k=%d gMax=%d", n, k, gMax)
	}
	const prec = 256
	num := new(big.Float).SetPrec(prec).SetInt(stats.CombSum(n, k))
	num.Mul(num, big.NewFloat(float64(gMax)))
	den := new(big.Float).SetPrec(prec).SetInt(new(big.Int).Lsh(big.NewInt(1), uint(n)))
	return num.Quo(num, den), nil
}

// EffectiveMACBits returns n_eff = -log2(p_escape), the security of the
// fault-tolerant MAC expressed as an equivalent exact-match MAC width.
// For n=96, k=4, gMax=372 the paper reports 66 bits.
func EffectiveMACBits(n, k, gMax int) (float64, error) {
	p, err := EscapeProbability(n, k, gMax)
	if err != nil {
		return 0, err
	}
	l, err := stats.Log2Big(p)
	if err != nil {
		return 0, err
	}
	return -l, nil
}

// UncorrectableMACProb implements Eq. (2): the probability that an n-bit MAC
// suffers more than k bit-flips at per-bit flip probability pFlip, making
// the MAC itself uncorrectable.
func UncorrectableMACProb(n, k int, pFlip float64) (float64, error) {
	if n <= 0 || k < 0 || pFlip < 0 || pFlip > 1 {
		return 0, errors.New("mac: invalid uncorrectable parameters")
	}
	v, _ := stats.BinomialTail(n, k, pFlip).Float64()
	return v, nil
}

// PickSoftMatchBudget returns the lowest k such that the fraction of
// uncorrectable MACs stays below target at flip probability pFlip. The
// paper picks k=4 for n=96 at pFlip=1% with target 1% (§VI-E).
func PickSoftMatchBudget(n int, pFlip, target float64) (int, error) {
	if target <= 0 || target >= 1 {
		return 0, errors.New("mac: target must be in (0, 1)")
	}
	for k := 0; k <= n; k++ {
		p, err := UncorrectableMACProb(n, k, pFlip)
		if err != nil {
			return 0, err
		}
		if p < target {
			return k, nil
		}
	}
	return 0, errors.New("mac: no budget satisfies target")
}

// SecondsPerYear converts attack-time estimates.
const SecondsPerYear = 365.25 * 24 * 3600

// AttackYears returns the expected time, in years, for an attacker to slip a
// tampered PTE past an effective nEff-bit MAC when each attempt costs
// attemptNs nanoseconds (the paper assumes one 50 ns DRAM access with a bit
// flip per attempt; §IV-G reports >1e14 years for 96 bits and §VI-C reports
// >1e4 years for the 66-bit effective MAC).
func AttackYears(nEff float64, attemptNs float64) float64 {
	return math.Exp2(nEff) * attemptNs * 1e-9 / SecondsPerYear
}
