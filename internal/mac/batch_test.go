package mac

import (
	"testing"
	"testing/quick"

	"ptguard/internal/qarma"
	"ptguard/internal/stats"
)

// batchAuth builds an Authenticator from a derived key for the batch
// equivalence properties.
func batchAuth(tb testing.TB, seed uint64, opts ...Option) *Authenticator {
	tb.Helper()
	key := make([]byte, KeySize)
	r := stats.NewRNG(seed)
	for i := range key {
		key[i] = byte(r.Uint64())
	}
	a, err := New(key, opts...)
	if err != nil {
		tb.Fatalf("New: %v", err)
	}
	return a
}

// TestBatchMatchesScalarQuick is the batch/scalar equivalence property:
// ComputeBatch, VerifyBatch and PrecomputeBatch must match their per-line
// scalar counterparts bit-for-bit across tag widths (64/96/128), round
// counts, both ciphers, and ragged batch tails (1..lanes-1 lines as well
// as multi-group lengths).
func TestBatchMatchesScalarQuick(t *testing.T) {
	prop := func(seed uint64, nSel, use64Sel, roundSel, widthSel uint8) bool {
		use64 := use64Sel&1 == 1
		var opts []Option
		if use64 {
			opts = append(opts, WithQARMA64(),
				WithRounds(4+int(roundSel)%(qarma.MaxRounds64-3)),
				WithTagBits(64))
		} else {
			widths := []int{64, 96, 128}
			opts = append(opts,
				WithRounds(4+int(roundSel)%(qarma.MaxRounds-3)),
				WithTagBits(widths[int(widthSel)%len(widths)]))
		}
		a := batchAuth(t, seed|1, opts...)

		// Sweep the ragged range around one sliced group plus a tail.
		lanes := a.BatchGroupLines()
		n := 1 + int(nSel)%(2*lanes+3)
		r := stats.NewRNG(seed ^ 0xBA7C4)
		lines := make([][LineBytes]byte, n)
		addrs := make([]uint64, n)
		for i := range lines {
			lines[i] = randLine(r)
			addrs[i] = r.Uint64() &^ 0x3F
		}

		tags := make([]Tag, n)
		a.ComputeBatch(tags, lines, addrs)
		want := make([]Tag, n)
		for i := range lines {
			want[i] = a.Compute(lines[i], addrs[i])
			if !tags[i].Equal(want[i]) {
				t.Logf("ComputeBatch line %d/%d diverges from Compute", i, n)
				return false
			}
		}

		// VerifyBatch must agree with Equal on both matching and corrupted
		// tags.
		ok := make([]bool, n)
		if n > 1 {
			want[0] = want[0].FlipBit(0)
		}
		a.VerifyBatch(ok, want, lines, addrs)
		for i := range lines {
			if ok[i] != want[i].Equal(tags[i]) {
				t.Logf("VerifyBatch line %d/%d wrong verdict", i, n)
				return false
			}
		}

		// PrecomputeBatch caches must behave exactly like Precompute's.
		ccs := make([]ChunkCache, n)
		a.PrecomputeBatch(ccs, lines, addrs)
		for i := range lines {
			cand := lines[i]
			cand[int(seed>>8)%LineBytes] ^= byte(seed>>16) | 1
			gotTag, gotEnc := a.ComputeDelta(&ccs[i], &cand)
			ref := a.Precompute(lines[i], addrs[i])
			wantTag, wantEnc := a.ComputeDelta(&ref, &cand)
			if !gotTag.Equal(wantTag) || gotEnc != wantEnc {
				t.Logf("PrecomputeBatch cache %d/%d diverges from Precompute", i, n)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestComputeDeltaBatchMatchesScalar: pooled candidate scoring must return
// the same tags and per-candidate encryption counts as sequential
// ComputeDelta calls, for both ciphers and candidate sets spanning multiple
// pooled groups.
func TestComputeDeltaBatchMatchesScalar(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{name: "qarma128"},
		{name: "qarma64", opts: []Option{WithQARMA64()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := testAuth(t, tc.opts...)
			r := stats.NewRNG(0xDE17A)
			base := randLine(r)
			addr := r.Uint64() &^ 0x3F
			cc := a.Precompute(base, addr)

			for _, n := range []int{1, 2, deltaGroup - 1, deltaGroup, deltaGroup + 5, 3 * deltaGroup} {
				cands := make([][LineBytes]byte, n)
				for i := range cands {
					cands[i] = base
					// 0..3 random byte edits: clean, single- and
					// multi-chunk candidates all appear.
					for k, e := 0, r.Intn(4); k < e; k++ {
						cands[i][r.Intn(LineBytes)] ^= byte(1 + r.Intn(255))
					}
				}
				tags := make([]Tag, n)
				enc := make([]int, n)
				total := a.ComputeDeltaBatch(tags, enc, &cc, cands)
				sum := 0
				for i := range cands {
					wantTag, wantEnc := a.ComputeDelta(&cc, &cands[i])
					if !tags[i].Equal(wantTag) {
						t.Fatalf("n=%d cand %d: tag mismatch", n, i)
					}
					if enc[i] != wantEnc {
						t.Fatalf("n=%d cand %d: enc=%d want %d", n, i, enc[i], wantEnc)
					}
					sum += wantEnc
				}
				if total != sum {
					t.Fatalf("n=%d: total=%d want %d", n, total, sum)
				}
			}
		})
	}
}

// Zero-allocation gates for every batch entry point, both ciphers.
func TestBatchZeroAlloc(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{name: "qarma128"},
		{name: "qarma64", opts: []Option{WithQARMA64()}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a := testAuth(t, tc.opts...)
			r := stats.NewRNG(0xA110C)
			const n = 40 // two-and-a-half sliced groups under QARMA-128
			lines := make([][LineBytes]byte, n)
			addrs := make([]uint64, n)
			for i := range lines {
				lines[i] = randLine(r)
				addrs[i] = r.Uint64() &^ 0x3F
			}
			tags := make([]Tag, n)
			ok := make([]bool, n)
			ccs := make([]ChunkCache, n)
			cands := make([][LineBytes]byte, n)
			for i := range cands {
				cands[i] = lines[0]
				cands[i][i%LineBytes] ^= 0x40
			}
			enc := make([]int, n)
			cc := a.Precompute(lines[0], addrs[0])

			if g := testing.AllocsPerRun(50, func() { a.ComputeBatch(tags, lines, addrs) }); g != 0 {
				t.Errorf("ComputeBatch allocates %.1f objects/op, want 0", g)
			}
			if g := testing.AllocsPerRun(50, func() { a.VerifyBatch(ok, tags, lines, addrs) }); g != 0 {
				t.Errorf("VerifyBatch allocates %.1f objects/op, want 0", g)
			}
			if g := testing.AllocsPerRun(50, func() { a.PrecomputeBatch(ccs, lines, addrs) }); g != 0 {
				t.Errorf("PrecomputeBatch allocates %.1f objects/op, want 0", g)
			}
			if g := testing.AllocsPerRun(50, func() { a.ComputeDeltaBatch(tags, enc, &cc, cands) }); g != 0 {
				t.Errorf("ComputeDeltaBatch allocates %.1f objects/op, want 0", g)
			}
		})
	}
}

// FuzzBatchMAC cross-checks the whole batch engine against the scalar path
// on fuzzer-chosen line content, addresses, batch sizes and cipher configs.
func FuzzBatchMAC(f *testing.F) {
	f.Add(uint64(1), uint8(1), false, []byte{0})
	f.Add(uint64(2), uint8(17), false, []byte{0xFF, 0x40, 7})
	f.Add(uint64(3), uint8(9), true, []byte("batch"))
	f.Add(uint64(0xDEAD), uint8(65), true, []byte{})
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, use64 bool, data []byte) {
		var opts []Option
		if use64 {
			opts = append(opts, WithQARMA64())
		}
		key := make([]byte, KeySize)
		r := stats.NewRNG(seed)
		for i := range key {
			key[i] = byte(r.Uint64())
		}
		a, err := New(key, opts...)
		if err != nil {
			t.Fatal(err)
		}
		n := 1 + int(nRaw)%80
		lines := make([][LineBytes]byte, n)
		addrs := make([]uint64, n)
		for i := range lines {
			lines[i] = randLine(r)
			// Mix fuzzer bytes into the line so the corpus drives content.
			for k, b := range data {
				lines[i][(k+i)%LineBytes] ^= b
			}
			addrs[i] = r.Uint64() &^ 0x3F
		}
		tags := make([]Tag, n)
		a.ComputeBatch(tags, lines, addrs)
		for i := range lines {
			if want := a.Compute(lines[i], addrs[i]); !tags[i].Equal(want) {
				t.Fatalf("line %d/%d: ComputeBatch != Compute", i, n)
			}
		}
		ok := make([]bool, n)
		a.VerifyBatch(ok, tags, lines, addrs)
		for i := range ok {
			if !ok[i] {
				t.Fatalf("line %d/%d: VerifyBatch rejected a fresh tag", i, n)
			}
		}
		// Candidate scoring against the first line's cache.
		cc := a.Precompute(lines[0], addrs[0])
		cands := lines
		dtags := make([]Tag, n)
		enc := make([]int, n)
		a.ComputeDeltaBatch(dtags, enc, &cc, cands)
		for i := range cands {
			wantTag, wantEnc := a.ComputeDelta(&cc, &cands[i])
			if !dtags[i].Equal(wantTag) || enc[i] != wantEnc {
				t.Fatalf("cand %d/%d: ComputeDeltaBatch != ComputeDelta", i, n)
			}
		}
	})
}
