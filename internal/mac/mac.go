// Package mac implements PT-Guard's message authentication code (§IV-F):
// the 64-byte cacheline is split into four 16-byte chunks, each chunk is
// XORed with its 16-byte address block and enciphered with QARMA-128, the
// four cipher outputs are XOR-folded into a 128-bit value, and the upper
// bits are dropped to produce the tag (96 bits by default).
//
// The package also provides the fault-tolerant "soft match" of §VI-C and
// the analytic security model of §VI-E (Eqs. 1 and 2).
package mac

import (
	"errors"
	"fmt"
	"math/bits"

	"ptguard/internal/qarma"
)

const (
	// DefaultTagBits is the paper's MAC width: 96 bits pooled from the
	// unused PFN bits of the eight PTEs in a line.
	DefaultTagBits = 96
	// MaxTagBits is the cipher block width ceiling for the tag.
	MaxTagBits = 128
	// LineBytes is the cacheline size the MAC covers.
	LineBytes = 64
	// KeySize is the secret key size: 32 bytes of SRAM (§IV-F).
	KeySize = qarma.KeySize
)

// Tag is a MAC tag of up to 128 bits, stored little-endian in 16 bytes with
// unused high bits zero.
type Tag struct {
	bits int
	data [16]byte
}

// Bits returns the tag width in bits.
func (t Tag) Bits() int { return t.bits }

// Bytes returns the ceil(bits/8) significant bytes of the tag.
func (t Tag) Bytes() []byte {
	out := make([]byte, (t.bits+7)/8)
	copy(out, t.data[:])
	return out
}

// Bit returns bit i of the tag.
func (t Tag) Bit(i int) uint64 {
	if i < 0 || i >= t.bits {
		return 0
	}
	return uint64(t.data[i/8] >> (i % 8) & 1)
}

// FlipBit returns a copy of t with bit i inverted (used by fault injection).
func (t Tag) FlipBit(i int) Tag {
	if i < 0 || i >= t.bits {
		return t
	}
	out := t
	out.data[i/8] ^= 1 << (i % 8)
	return out
}

// Equal reports whether two tags match exactly.
func (t Tag) Equal(o Tag) bool { return t.bits == o.bits && t.data == o.data }

// HammingDistance returns the number of differing bits between two tags of
// equal width.
func (t Tag) HammingDistance(o Tag) (int, error) {
	if t.bits != o.bits {
		return 0, fmt.Errorf("mac: width mismatch %d vs %d", t.bits, o.bits)
	}
	d := 0
	for i := range t.data {
		d += bits.OnesCount8(t.data[i] ^ o.data[i])
	}
	return d, nil
}

// SoftMatch reports whether the tags are within k bit-flips of each other:
// the fault-tolerant MAC verification of §VI-C. k=0 is an exact match.
func (t Tag) SoftMatch(o Tag, k int) (bool, error) {
	d, err := t.HammingDistance(o)
	if err != nil {
		return false, err
	}
	return d <= k, nil
}

// TagFromBytes builds a width-bits tag from raw little-endian bytes,
// masking off any bits beyond the width.
func TagFromBytes(raw []byte, width int) (Tag, error) {
	if width <= 0 || width > MaxTagBits {
		return Tag{}, fmt.Errorf("mac: tag width %d outside (0, 128]", width)
	}
	t := Tag{bits: width}
	copy(t.data[:], raw)
	maskTail(&t.data, width)
	return t, nil
}

func maskTail(data *[16]byte, width int) {
	for i := width; i < MaxTagBits; i++ {
		data[i/8] &^= 1 << (i % 8)
	}
}

// Authenticator computes line MACs with a fixed secret key.
// It is safe for concurrent use.
type Authenticator struct {
	cipher   *qarma.Cipher
	cipher64 *qarma.Cipher64
	tagBits  int
}

// Option configures an Authenticator.
type Option func(*config)

type config struct {
	rounds  int
	tagBits int
	tagSet  bool
	use64   bool
}

// WithRounds sets the QARMA forward round count (default qarma.DefaultRounds).
func WithRounds(r int) Option { return func(c *config) { c.rounds = r } }

// WithTagBits sets the MAC width. The paper uses 96; §VII-A discusses a
// 64-bit design point that trades correction strength for latency.
func WithTagBits(n int) Option {
	return func(c *config) { c.tagBits, c.tagSet = n, true }
}

// WithQARMA64 computes the MAC with the QARMA-64 cipher (eight 8-byte
// chunks) instead of QARMA-128: the natural primitive for the §VII-A 64-bit
// design point, with lower silicon latency. The tag width must not exceed
// 64 bits; if WithTagBits was not given, 64 is selected.
func WithQARMA64() Option { return func(c *config) { c.use64 = true } }

// New builds an Authenticator from a 32-byte secret key.
func New(key []byte, opts ...Option) (*Authenticator, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("mac: key must be %d bytes, got %d", KeySize, len(key))
	}
	cfg := config{rounds: qarma.DefaultRounds}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.use64 {
		if !cfg.tagSet {
			cfg.tagBits = 64
		}
		if cfg.tagBits <= 0 || cfg.tagBits > 64 {
			return nil, errors.New("mac: QARMA-64 tag width outside (0, 64]")
		}
		rounds := cfg.rounds
		if rounds == qarma.DefaultRounds {
			rounds = qarma.DefaultRounds64
		}
		// The 64-bit cipher consumes the first 16 key bytes.
		c64, err := qarma.NewCipher64(key[:qarma.Key64Size], rounds)
		if err != nil {
			return nil, err
		}
		return &Authenticator{cipher64: c64, tagBits: cfg.tagBits}, nil
	}
	if !cfg.tagSet {
		cfg.tagBits = DefaultTagBits
	}
	if cfg.tagBits <= 0 || cfg.tagBits > MaxTagBits {
		return nil, errors.New("mac: tag width outside (0, 128]")
	}
	c, err := qarma.NewCipher(key, cfg.rounds)
	if err != nil {
		return nil, err
	}
	return &Authenticator{cipher: c, tagBits: cfg.tagBits}, nil
}

// TagBits returns the configured MAC width.
func (a *Authenticator) TagBits() int { return a.tagBits }

// Compute returns the MAC over a 64-byte line image at physical address
// addr. Callers must zero the bits not covered by the MAC (the MAC field,
// the identifier field, the accessed bits and any ignored bits) before
// calling, per Table IV; internal/core does this.
func (a *Authenticator) Compute(line [LineBytes]byte, addr uint64) Tag {
	if a.cipher64 != nil {
		return a.compute64(line, addr)
	}
	var acc qarma.Block
	for i := 0; i < 4; i++ {
		var chunk, tweak qarma.Block
		copy(chunk[:], line[i*16:(i+1)*16])
		// A_i is the chunk's own 16-byte-aligned physical address,
		// which both binds the MAC to its location (§IV-G) and makes
		// the four chunk inputs distinct.
		chunkAddr := addr + uint64(i*16)
		for b := 0; b < 8; b++ {
			tweak[b] = byte(chunkAddr >> (8 * b))
		}
		q := a.cipher.Encrypt(xorBlock(chunk, tweak), tweak)
		acc = xorBlock(acc, q)
	}
	t := Tag{bits: a.tagBits}
	copy(t.data[:], acc[:])
	maskTail(&t.data, a.tagBits)
	return t
}

// compute64 folds eight QARMA-64 calls, one per 8-byte chunk, each bound to
// its chunk address.
func (a *Authenticator) compute64(line [LineBytes]byte, addr uint64) Tag {
	var acc uint64
	for i := 0; i < 8; i++ {
		var chunk uint64
		for b := 0; b < 8; b++ {
			chunk |= uint64(line[i*8+b]) << (8 * b)
		}
		chunkAddr := addr + uint64(i*8)
		acc ^= a.cipher64.Encrypt(chunk^chunkAddr, chunkAddr)
	}
	t := Tag{bits: a.tagBits}
	for b := 0; b < 8; b++ {
		t.data[b] = byte(acc >> (8 * b))
	}
	maskTail(&t.data, a.tagBits)
	return t
}

// ZeroLineTag returns the precomputed MAC-zero of §V-B: the tag of an
// all-zero line computed without the address input, shared by every zero
// line in memory. It costs 12 bytes of SRAM in hardware.
func (a *Authenticator) ZeroLineTag() Tag {
	if a.cipher64 != nil {
		var acc uint64
		for i := 0; i < 8; i++ {
			acc ^= a.cipher64.Encrypt(0, uint64(i))
		}
		t := Tag{bits: a.tagBits}
		for b := 0; b < 8; b++ {
			t.data[b] = byte(acc >> (8 * b))
		}
		maskTail(&t.data, a.tagBits)
		return t
	}
	var acc qarma.Block
	for i := 0; i < 4; i++ {
		var chunk, tweak qarma.Block
		// Without an address, the chunk index alone differentiates the
		// four cipher calls (identical inputs would XOR-cancel).
		tweak[15] = byte(i)
		q := a.cipher.Encrypt(chunk, tweak)
		acc = xorBlock(acc, q)
	}
	t := Tag{bits: a.tagBits}
	copy(t.data[:], acc[:])
	maskTail(&t.data, a.tagBits)
	return t
}

func xorBlock(x, y qarma.Block) qarma.Block {
	var out qarma.Block
	for i := range out {
		out[i] = x[i] ^ y[i]
	}
	return out
}
