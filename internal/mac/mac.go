// Package mac implements PT-Guard's message authentication code (§IV-F):
// the 64-byte cacheline is split into four 16-byte chunks, each chunk is
// XORed with its 16-byte address block and enciphered with QARMA-128, the
// four cipher outputs are XOR-folded into a 128-bit value, and the upper
// bits are dropped to produce the tag (96 bits by default).
//
// The package also provides the fault-tolerant "soft match" of §VI-C and
// the analytic security model of §VI-E (Eqs. 1 and 2).
package mac

import (
	"errors"
	"fmt"
	"math/bits"

	"ptguard/internal/qarma"
)

const (
	// DefaultTagBits is the paper's MAC width: 96 bits pooled from the
	// unused PFN bits of the eight PTEs in a line.
	DefaultTagBits = 96
	// MaxTagBits is the cipher block width ceiling for the tag.
	MaxTagBits = 128
	// LineBytes is the cacheline size the MAC covers.
	LineBytes = 64
	// KeySize is the secret key size: 32 bytes of SRAM (§IV-F).
	KeySize = qarma.KeySize
)

// Tag is a MAC tag of up to 128 bits, stored little-endian in 16 bytes with
// unused high bits zero.
type Tag struct {
	bits int
	data [16]byte
}

// Bits returns the tag width in bits.
func (t Tag) Bits() int { return t.bits }

// Bytes returns the ceil(bits/8) significant bytes of the tag.
func (t Tag) Bytes() []byte {
	out := make([]byte, (t.bits+7)/8)
	copy(out, t.data[:])
	return out
}

// SizeBytes returns ceil(bits/8), the number of significant tag bytes.
func (t Tag) SizeBytes() int { return (t.bits + 7) / 8 }

// Raw returns the tag's full 16-byte little-endian backing store (unused
// high bytes zero). With SizeBytes it gives hot paths an allocation-free
// alternative to Bytes: slice the returned array on the caller's stack.
func (t Tag) Raw() [16]byte { return t.data }

// AppendBytes appends the SizeBytes significant tag bytes to dst and
// returns the extended slice, the append-style counterpart of Bytes.
func (t Tag) AppendBytes(dst []byte) []byte {
	return append(dst, t.data[:(t.bits+7)/8]...)
}

// Bit returns bit i of the tag.
func (t Tag) Bit(i int) uint64 {
	if i < 0 || i >= t.bits {
		return 0
	}
	return uint64(t.data[i/8] >> (i % 8) & 1)
}

// FlipBit returns a copy of t with bit i inverted (used by fault injection).
func (t Tag) FlipBit(i int) Tag {
	if i < 0 || i >= t.bits {
		return t
	}
	out := t
	out.data[i/8] ^= 1 << (i % 8)
	return out
}

// Equal reports whether two tags match exactly.
func (t Tag) Equal(o Tag) bool { return t.bits == o.bits && t.data == o.data }

// HammingDistance returns the number of differing bits between two tags of
// equal width.
func (t Tag) HammingDistance(o Tag) (int, error) {
	if t.bits != o.bits {
		return 0, fmt.Errorf("mac: width mismatch %d vs %d", t.bits, o.bits)
	}
	d := 0
	for i := range t.data {
		d += bits.OnesCount8(t.data[i] ^ o.data[i])
	}
	return d, nil
}

// SoftMatch reports whether the tags are within k bit-flips of each other:
// the fault-tolerant MAC verification of §VI-C. k=0 is an exact match.
func (t Tag) SoftMatch(o Tag, k int) (bool, error) {
	d, err := t.HammingDistance(o)
	if err != nil {
		return false, err
	}
	return d <= k, nil
}

// TagFromBytes builds a width-bits tag from raw little-endian bytes,
// masking off any bits beyond the width.
func TagFromBytes(raw []byte, width int) (Tag, error) {
	if width <= 0 || width > MaxTagBits {
		return Tag{}, fmt.Errorf("mac: tag width %d outside (0, 128]", width)
	}
	t := Tag{bits: width}
	copy(t.data[:], raw)
	maskTail(&t.data, width)
	return t, nil
}

func maskTail(data *[16]byte, width int) {
	for i := width; i < MaxTagBits; i++ {
		data[i/8] &^= 1 << (i % 8)
	}
}

// Authenticator computes line MACs with a fixed secret key.
// It is safe for concurrent use.
type Authenticator struct {
	cipher   *qarma.Cipher
	cipher64 *qarma.Cipher64
	tagBits  int
}

// Option configures an Authenticator.
type Option func(*config)

type config struct {
	rounds  int
	tagBits int
	tagSet  bool
	use64   bool
}

// WithRounds sets the QARMA forward round count (default qarma.DefaultRounds).
func WithRounds(r int) Option { return func(c *config) { c.rounds = r } }

// WithTagBits sets the MAC width. The paper uses 96; §VII-A discusses a
// 64-bit design point that trades correction strength for latency.
func WithTagBits(n int) Option {
	return func(c *config) { c.tagBits, c.tagSet = n, true }
}

// WithQARMA64 computes the MAC with the QARMA-64 cipher (eight 8-byte
// chunks) instead of QARMA-128: the natural primitive for the §VII-A 64-bit
// design point, with lower silicon latency. The tag width must not exceed
// 64 bits; if WithTagBits was not given, 64 is selected.
func WithQARMA64() Option { return func(c *config) { c.use64 = true } }

// New builds an Authenticator from a 32-byte secret key.
func New(key []byte, opts ...Option) (*Authenticator, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("mac: key must be %d bytes, got %d", KeySize, len(key))
	}
	cfg := config{rounds: qarma.DefaultRounds}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.use64 {
		if !cfg.tagSet {
			cfg.tagBits = 64
		}
		if cfg.tagBits <= 0 || cfg.tagBits > 64 {
			return nil, errors.New("mac: QARMA-64 tag width outside (0, 64]")
		}
		rounds := cfg.rounds
		if rounds == qarma.DefaultRounds {
			rounds = qarma.DefaultRounds64
		}
		// The 64-bit cipher consumes the first 16 key bytes.
		c64, err := qarma.NewCipher64(key[:qarma.Key64Size], rounds)
		if err != nil {
			return nil, err
		}
		return &Authenticator{cipher64: c64, tagBits: cfg.tagBits}, nil
	}
	if !cfg.tagSet {
		cfg.tagBits = DefaultTagBits
	}
	if cfg.tagBits <= 0 || cfg.tagBits > MaxTagBits {
		return nil, errors.New("mac: tag width outside (0, 128]")
	}
	c, err := qarma.NewCipher(key, cfg.rounds)
	if err != nil {
		return nil, err
	}
	return &Authenticator{cipher: c, tagBits: cfg.tagBits}, nil
}

// TagBits returns the configured MAC width.
func (a *Authenticator) TagBits() int { return a.tagBits }

// Chunks returns the number of chunk encryptions one full MAC computation
// performs: 4 sixteen-byte chunks under QARMA-128, 8 eight-byte chunks
// under QARMA-64. It is the unit of the simulator's cipher-work accounting.
func (a *Authenticator) Chunks() int {
	if a.cipher64 != nil {
		return chunks64
	}
	return chunks128
}

const (
	chunks128 = LineBytes / qarma.BlockSize   // 4 chunks of 16 bytes
	chunks64  = LineBytes / qarma.Block64Size // 8 chunks of 8 bytes
)

// encryptChunk enciphers 16-byte chunk i of the line image at addr under
// QARMA-128. A_i is the chunk's own 16-byte-aligned physical address, which
// both binds the MAC to its location (§IV-G) and makes the chunk inputs
// distinct.
func (a *Authenticator) encryptChunk(line *[LineBytes]byte, addr uint64, i int) qarma.Block {
	var chunk, tweak qarma.Block
	copy(chunk[:], line[i*qarma.BlockSize:(i+1)*qarma.BlockSize])
	chunkAddr := addr + uint64(i*qarma.BlockSize)
	for b := 0; b < 8; b++ {
		tweak[b] = byte(chunkAddr >> (8 * b))
	}
	return a.cipher.Encrypt(xorBlock(chunk, tweak), tweak)
}

// encryptChunk64 enciphers 8-byte chunk i under QARMA-64, bound to the
// chunk's own address.
func (a *Authenticator) encryptChunk64(line *[LineBytes]byte, addr uint64, i int) uint64 {
	var chunk uint64
	for b := 0; b < 8; b++ {
		chunk |= uint64(line[i*qarma.Block64Size+b]) << (8 * b)
	}
	chunkAddr := addr + uint64(i*qarma.Block64Size)
	return a.cipher64.Encrypt(chunk^chunkAddr, chunkAddr)
}

// tagFromBlock masks a folded 128-bit accumulator down to the tag width.
func (a *Authenticator) tagFromBlock(acc qarma.Block) Tag {
	t := Tag{bits: a.tagBits}
	copy(t.data[:], acc[:])
	maskTail(&t.data, a.tagBits)
	return t
}

// tagFromUint64 masks a folded 64-bit accumulator down to the tag width.
func (a *Authenticator) tagFromUint64(acc uint64) Tag {
	t := Tag{bits: a.tagBits}
	for b := 0; b < 8; b++ {
		t.data[b] = byte(acc >> (8 * b))
	}
	maskTail(&t.data, a.tagBits)
	return t
}

// Compute returns the MAC over a 64-byte line image at physical address
// addr. Callers must zero the bits not covered by the MAC (the MAC field,
// the identifier field, the accessed bits and any ignored bits) before
// calling, per Table IV; internal/core does this. Compute performs zero
// heap allocations (enforced by TestComputeZeroAlloc).
func (a *Authenticator) Compute(line [LineBytes]byte, addr uint64) Tag {
	if a.cipher64 != nil {
		var acc uint64
		for i := 0; i < chunks64; i++ {
			acc ^= a.encryptChunk64(&line, addr, i)
		}
		return a.tagFromUint64(acc)
	}
	var acc qarma.Block
	for i := 0; i < chunks128; i++ {
		acc = xorBlock(acc, a.encryptChunk(&line, addr, i))
	}
	return a.tagFromBlock(acc)
}

// ChunkCache holds the per-chunk cipher outputs of one base line image at
// one address. The §VI-D correction search checks hundreds of candidate
// lines that each differ from the faulty base image in at most a chunk or
// two; caching the base chunk outputs lets each candidate re-encipher only
// its dirty chunks instead of recomputing the full four-chunk MAC.
type ChunkCache struct {
	base  [LineBytes]byte
	addr  uint64
	out   [chunks128]qarma.Block // QARMA-128 mode
	out64 [chunks64]uint64       // QARMA-64 mode
	use64 bool
}

// Addr returns the physical address the cache was primed for.
func (cc *ChunkCache) Addr() uint64 { return cc.addr }

// Precompute enciphers every chunk of the base line image and returns the
// primed cache. It costs exactly Chunks() chunk encryptions — the same
// cipher work as one Compute call over the base image.
func (a *Authenticator) Precompute(line [LineBytes]byte, addr uint64) ChunkCache {
	cc := ChunkCache{base: line, addr: addr, use64: a.cipher64 != nil}
	if cc.use64 {
		for i := 0; i < chunks64; i++ {
			cc.out64[i] = a.encryptChunk64(&cc.base, addr, i)
		}
		return cc
	}
	for i := 0; i < chunks128; i++ {
		cc.out[i] = a.encryptChunk(&cc.base, addr, i)
	}
	return cc
}

// ComputeDelta returns the MAC of cand at the cache's address,
// re-enciphering only the chunks where cand differs from the cached base
// image and XOR-folding the cached outputs for the clean chunks. The
// result is byte-identical to Compute(*cand, cc.Addr()); the second return
// value is the number of chunk encryptions actually performed (0 when cand
// equals the base, up to Chunks() when every chunk is dirty), which keeps
// the simulator's cipher-work accounting honest.
func (a *Authenticator) ComputeDelta(cc *ChunkCache, cand *[LineBytes]byte) (Tag, int) {
	encrypted := 0
	if cc.use64 {
		var acc uint64
		for i := 0; i < chunks64; i++ {
			if chunkEqual(cand, &cc.base, i*qarma.Block64Size, qarma.Block64Size) {
				acc ^= cc.out64[i]
				continue
			}
			acc ^= a.encryptChunk64(cand, cc.addr, i)
			encrypted++
		}
		return a.tagFromUint64(acc), encrypted
	}
	var acc qarma.Block
	for i := 0; i < chunks128; i++ {
		if chunkEqual(cand, &cc.base, i*qarma.BlockSize, qarma.BlockSize) {
			acc = xorBlock(acc, cc.out[i])
			continue
		}
		acc = xorBlock(acc, a.encryptChunk(cand, cc.addr, i))
		encrypted++
	}
	return a.tagFromBlock(acc), encrypted
}

// chunkEqual reports whether the n-byte chunks at offset off match.
func chunkEqual(a, b *[LineBytes]byte, off, n int) bool {
	for i := off; i < off+n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ZeroLineTag returns the precomputed MAC-zero of §V-B: the tag of an
// all-zero line computed without the address input, shared by every zero
// line in memory. It costs 12 bytes of SRAM in hardware.
func (a *Authenticator) ZeroLineTag() Tag {
	if a.cipher64 != nil {
		var acc uint64
		for i := 0; i < chunks64; i++ {
			acc ^= a.cipher64.Encrypt(0, uint64(i))
		}
		return a.tagFromUint64(acc)
	}
	var acc qarma.Block
	for i := 0; i < chunks128; i++ {
		var chunk, tweak qarma.Block
		// Without an address, the chunk index alone differentiates the
		// four cipher calls (identical inputs would XOR-cancel).
		tweak[15] = byte(i)
		q := a.cipher.Encrypt(chunk, tweak)
		acc = xorBlock(acc, q)
	}
	return a.tagFromBlock(acc)
}

func xorBlock(x, y qarma.Block) qarma.Block {
	var out qarma.Block
	for i := range out {
		out[i] = x[i] ^ y[i]
	}
	return out
}
