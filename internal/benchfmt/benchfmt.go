// Package benchfmt parses the text output of `go test -bench -benchmem`
// into a structured baseline so the performance trajectory of the repo can
// be tracked run over run (BENCH_<n>.json files written by
// cmd/ptguard-bench, `make bench-json`).
//
// The format it understands is the standard benchmark result line,
//
//	BenchmarkFig9Correction-8   2   612345678 ns/op   95.8 corrected-% ...
//
// i.e. a name with an optional -GOMAXPROCS suffix, an iteration count, and
// then (value, unit) pairs: the built-in ns/op, B/op and allocs/op plus any
// custom b.ReportMetric units (corrected-%, slowdown-%, ...). The header
// lines go test prints (goos, goarch, pkg, cpu) become file metadata.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if the line had none).
	Procs int `json:"procs"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op" and any
	// custom b.ReportMetric units.
	Metrics map[string]float64 `json:"metrics"`
}

// NsPerOp returns the ns/op metric (0 if absent).
func (r Result) NsPerOp() float64 { return r.Metrics["ns/op"] }

// AllocsPerOp returns the allocs/op metric (0 if absent).
func (r Result) AllocsPerOp() float64 { return r.Metrics["allocs/op"] }

// File is a full parsed benchmark run: the JSON document stored as
// BENCH_<n>.json.
type File struct {
	GOOS    string   `json:"goos,omitempty"`
	GOARCH  string   `json:"goarch,omitempty"`
	Pkg     string   `json:"pkg,omitempty"`
	CPU     string   `json:"cpu,omitempty"`
	Results []Result `json:"results"`
}

// Parse reads `go test -bench` output and returns the structured run.
// Non-benchmark lines (test chatter, PASS/ok trailers) are skipped; it is
// an error if no benchmark line is found at all.
func Parse(r io.Reader) (*File, error) {
	f := &File{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			f.GOOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			f.GOARCH = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			// Multi-package runs repeat the header; keep the first.
			if f.Pkg == "" {
				f.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			}
		case strings.HasPrefix(line, "cpu:"):
			if f.CPU == "" {
				f.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			}
		case strings.HasPrefix(line, "Benchmark"):
			res, ok, err := parseLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				f.Results = append(f.Results, res)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Results) == 0 {
		return nil, errors.New("benchfmt: no benchmark result lines found")
	}
	return f, nil
}

// parseLine parses one "BenchmarkName-8  N  v unit  v unit ..." line.
// ok=false (no error) is returned for Benchmark-prefixed lines that are not
// result lines (e.g. a bare name echoed on -v runs).
func parseLine(line string) (Result, bool, error) {
	fields := strings.Fields(line)
	// name, iterations, and at least one (value, unit) pair.
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Result{}, false, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false, nil
	}
	name, procs := splitProcs(fields[0])
	res := Result{
		Name:       name,
		Procs:      procs,
		Iterations: iters,
		Metrics:    make(map[string]float64, (len(fields)-2)/2),
	}
	for i := 2; i < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false, fmt.Errorf("benchfmt: bad value %q in %q: %w", fields[i], line, err)
		}
		res.Metrics[fields[i+1]] = v
	}
	return res, true, nil
}

// splitProcs splits "BenchmarkFoo-8" into ("BenchmarkFoo", 8); a name with
// no numeric -N suffix keeps its full form with Procs 1.
func splitProcs(s string) (string, int) {
	i := strings.LastIndexByte(s, '-')
	if i < 0 {
		return s, 1
	}
	n, err := strconv.Atoi(s[i+1:])
	if err != nil || n <= 0 {
		return s, 1
	}
	return s[:i], n
}

// Lookup returns the first result with the given (suffix-stripped) name.
func (f *File) Lookup(name string) (Result, bool) {
	for _, r := range f.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// Encode writes the file as indented, deterministic JSON (results in input
// order, metric keys sorted by encoding/json).
func (f *File) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(f)
}

// Decode reads a BENCH_<n>.json document.
func Decode(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, err
	}
	return &f, nil
}

// Regression is one benchmark metric that worsened past a threshold between
// two runs.
type Regression struct {
	// Name is the (suffix-stripped) benchmark name.
	Name string
	// Unit is the metric that regressed: "ns/op", or a throughput unit
	// ending in "/sec" (e.g. "campaign-jobs/sec").
	Unit string
	// Before and After are the metric's values in the two runs.
	Before, After float64
	// Pct is the regression size in percent of the before value: an
	// increase for ns/op, a decrease for "/sec" metrics.
	Pct float64
}

// Regressions returns the benchmarks present in both runs with a metric
// that worsened by more than thresholdPct percent, in after-file order.
// Two metric families are gated, with opposite polarity: ns/op (lower is
// better — an increase regresses) and custom "/sec" throughput metrics
// such as the campaign-jobs/sec scaling benchmarks (higher is better — a
// decrease regresses). Benchmarks missing from either file, or metrics
// without a positive value in both, are skipped — the gate judges only
// what both baselines measured.
func Regressions(before, after *File, thresholdPct float64) []Regression {
	var out []Regression
	for _, ar := range after.Results {
		br, ok := before.Lookup(ar.Name)
		if !ok {
			continue
		}
		units := make([]string, 0, len(ar.Metrics))
		for u := range ar.Metrics {
			if u == "ns/op" || strings.HasSuffix(u, "/sec") {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			bv, av := br.Metrics[u], ar.Metrics[u]
			if bv <= 0 || av <= 0 {
				continue
			}
			pct := 100 * (av - bv) / bv
			if strings.HasSuffix(u, "/sec") {
				pct = -pct // throughput: a drop is the regression
			}
			if pct > thresholdPct {
				out = append(out, Regression{Name: ar.Name, Unit: u, Before: bv, After: av, Pct: pct})
			}
		}
	}
	return out
}

// Compare renders a name-aligned comparison of shared metrics between two
// runs ("before" and "after"), one line per benchmark and metric, with the
// after/before ratio. Benchmarks present in only one file are skipped.
func Compare(before, after *File) string {
	var b strings.Builder
	for _, ar := range after.Results {
		br, ok := before.Lookup(ar.Name)
		if !ok {
			continue
		}
		units := make([]string, 0, len(ar.Metrics))
		for u := range ar.Metrics {
			if _, ok := br.Metrics[u]; ok {
				units = append(units, u)
			}
		}
		sort.Strings(units)
		for _, u := range units {
			bv, av := br.Metrics[u], ar.Metrics[u]
			ratio := "n/a"
			if bv != 0 {
				ratio = fmt.Sprintf("%.2fx", av/bv)
			}
			fmt.Fprintf(&b, "%-40s %-12s %14.4g -> %14.4g  (%s)\n", ar.Name, u, bv, av, ratio)
		}
	}
	return b.String()
}
