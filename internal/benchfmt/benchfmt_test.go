package benchfmt

import (
	"bytes"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: ptguard
cpu: AMD EPYC 7B13
BenchmarkGuardWrite-8     	  120000	     10446 ns/op	     528 B/op	       5 allocs/op
BenchmarkFig9Correction-8 	       1	1370647085 ns/op	        95.80 corrected-%	       100.0 coverage-%	149413432 B/op	  585805 allocs/op
BenchmarkNoSuffix 	     100	     12345 ns/op
PASS
ok  	ptguard	12.345s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if f.GOOS != "linux" || f.GOARCH != "amd64" || f.Pkg != "ptguard" || f.CPU != "AMD EPYC 7B13" {
		t.Errorf("bad header: %+v", f)
	}
	if len(f.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(f.Results))
	}
	gw, ok := f.Lookup("BenchmarkGuardWrite")
	if !ok {
		t.Fatal("BenchmarkGuardWrite missing")
	}
	if gw.Procs != 8 || gw.Iterations != 120000 {
		t.Errorf("GuardWrite header: %+v", gw)
	}
	if gw.NsPerOp() != 10446 || gw.AllocsPerOp() != 5 || gw.Metrics["B/op"] != 528 {
		t.Errorf("GuardWrite metrics: %+v", gw.Metrics)
	}
	fig9, ok := f.Lookup("BenchmarkFig9Correction")
	if !ok {
		t.Fatal("BenchmarkFig9Correction missing")
	}
	if fig9.Metrics["corrected-%"] != 95.80 || fig9.Metrics["coverage-%"] != 100 {
		t.Errorf("custom metrics not parsed: %+v", fig9.Metrics)
	}
	ns, ok := f.Lookup("BenchmarkNoSuffix")
	if !ok || ns.Procs != 1 {
		t.Errorf("suffix-less benchmark: %+v (ok=%v)", ns, ok)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok \tptguard\t0.1s\n")); err == nil {
		t.Error("no-benchmark input accepted")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	f, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(f.Results) {
		t.Fatalf("roundtrip lost results: %d vs %d", len(back.Results), len(f.Results))
	}
	for i := range f.Results {
		a, b := f.Results[i], back.Results[i]
		if a.Name != b.Name || a.Procs != b.Procs || a.Iterations != b.Iterations {
			t.Errorf("result %d header changed: %+v vs %+v", i, a, b)
		}
		for u, v := range a.Metrics {
			if b.Metrics[u] != v {
				t.Errorf("result %d metric %s: %g vs %g", i, u, v, b.Metrics[u])
			}
		}
	}
}

func TestCompare(t *testing.T) {
	before, err := Parse(strings.NewReader(
		"BenchmarkX-8 10 1000 ns/op 4 allocs/op\nBenchmarkOnlyBefore-8 1 5 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := Parse(strings.NewReader(
		"BenchmarkX-8 10 250 ns/op 0 allocs/op\nBenchmarkOnlyAfter-8 1 7 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	out := Compare(before, after)
	if !strings.Contains(out, "0.25x") {
		t.Errorf("ns/op ratio missing from:\n%s", out)
	}
	if strings.Contains(out, "OnlyBefore") || strings.Contains(out, "OnlyAfter") {
		t.Errorf("unshared benchmarks leaked into:\n%s", out)
	}
}

func TestRegressions(t *testing.T) {
	before, err := Parse(strings.NewReader(
		"BenchmarkFast-8 10 1000 ns/op\n" +
			"BenchmarkSlow-8 10 1000 ns/op\n" +
			"BenchmarkEdge-8 10 1000 ns/op\n" +
			"BenchmarkGone-8 10 1000 ns/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := Parse(strings.NewReader(
		"BenchmarkFast-8 10 500 ns/op\n" + // improved: never flagged
			"BenchmarkSlow-8 10 1250 ns/op\n" + // +25%
			"BenchmarkEdge-8 10 1100 ns/op\n" + // exactly +10%: not past the threshold
			"BenchmarkNew-8 10 9999 ns/op\n")) // unshared: skipped
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(before, after, 10)
	if len(regs) != 1 || regs[0].Name != "BenchmarkSlow" {
		t.Fatalf("Regressions = %+v, want exactly BenchmarkSlow", regs)
	}
	if regs[0].Pct != 25 || regs[0].Before != 1000 || regs[0].After != 1250 {
		t.Errorf("regression detail = %+v", regs[0])
	}
	if regs := Regressions(before, after, 30); len(regs) != 0 {
		t.Errorf("30%% threshold still flags %+v", regs)
	}
	// A tighter threshold catches the edge case too.
	if regs := Regressions(before, after, 5); len(regs) != 2 {
		t.Errorf("5%% threshold flags %+v, want 2", regs)
	}
}

func TestRegressionsThroughputMetrics(t *testing.T) {
	// "/sec" metrics regress in the opposite direction from ns/op: a
	// DROP in throughput is the failure. This gates the distributed
	// campaign scaling benchmarks (campaign-jobs/sec).
	before, err := Parse(strings.NewReader(
		"BenchmarkCampaignThroughput/proc-4-8 5 1000 ns/op 40.0 campaign-jobs/sec\n" +
			"BenchmarkSteady-8 5 1000 ns/op 100 campaign-jobs/sec\n" +
			"BenchmarkOther-8 5 1000 ns/op 3.5 flips/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := Parse(strings.NewReader(
		"BenchmarkCampaignThroughput/proc-4-8 5 1000 ns/op 25.0 campaign-jobs/sec\n" + // -37.5%
			"BenchmarkSteady-8 5 1000 ns/op 150 campaign-jobs/sec\n" + // improved: never flagged
			"BenchmarkOther-8 5 1000 ns/op 1.0 flips/op\n")) // not a gated unit
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(before, after, 10)
	if len(regs) != 1 {
		t.Fatalf("Regressions = %+v, want exactly the throughput drop", regs)
	}
	r := regs[0]
	if r.Name != "BenchmarkCampaignThroughput/proc-4" || r.Unit != "campaign-jobs/sec" {
		t.Errorf("regression identity = %+v", r)
	}
	if r.Before != 40 || r.After != 25 || r.Pct != 37.5 {
		t.Errorf("regression detail = %+v", r)
	}
	if regs := Regressions(before, after, 40); len(regs) != 0 {
		t.Errorf("40%% threshold still flags %+v", regs)
	}
}

func TestRegressionsMixedUnitsOneBenchmark(t *testing.T) {
	// One benchmark can regress on both families at once; each metric is
	// reported as its own regression with its unit attached.
	before, err := Parse(strings.NewReader("BenchmarkBoth-8 5 1000 ns/op 100 jobs/sec\n"))
	if err != nil {
		t.Fatal(err)
	}
	after, err := Parse(strings.NewReader("BenchmarkBoth-8 5 2000 ns/op 50 jobs/sec\n"))
	if err != nil {
		t.Fatal(err)
	}
	regs := Regressions(before, after, 10)
	if len(regs) != 2 {
		t.Fatalf("Regressions = %+v, want ns/op and jobs/sec", regs)
	}
	units := map[string]bool{}
	for _, r := range regs {
		units[r.Unit] = true
		if r.Name != "BenchmarkBoth" {
			t.Errorf("name = %q", r.Name)
		}
	}
	if !units["ns/op"] || !units["jobs/sec"] {
		t.Errorf("units flagged: %v", units)
	}
}
