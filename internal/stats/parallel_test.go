package stats

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// TestShardTrialsShardCountInvariance: the per-trial results must be
// identical whatever the shard count, because each trial is a pure function
// of its index. This is the contract every sharded Monte-Carlo loop in the
// repo rests on.
func TestShardTrialsShardCountInvariance(t *testing.T) {
	const n = 97
	trial := func(w *RNG, tr int) (uint64, error) {
		// Worker state is deliberately stateful (a shard-local RNG) but
		// unused for the result, mirroring how real workers carry guards.
		w.Uint64()
		return NewRNG(DeriveSeed(42, "shard-test/"+string(rune('a'+tr%26)))).Uint64() + uint64(tr), nil
	}
	newWorker := func() (*RNG, error) { return NewRNG(7), nil }
	want, err := shardTrials(n, 1, newWorker, trial)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{2, 3, 8, n, 4 * n} {
		got, err := shardTrials(n, shards, newWorker, trial)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(got) != n {
			t.Fatalf("shards=%d: got %d results, want %d", shards, len(got), n)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: trial %d = %d, want %d", shards, i, got[i], want[i])
			}
		}
	}
}

// TestShardTrialsContiguousRanges: each worker must see an in-order,
// contiguous subsequence of trial indices, and every index exactly once.
func TestShardTrialsContiguousRanges(t *testing.T) {
	const n, shards = 31, 4
	type worker struct{ seen []int }
	var mu sync.Mutex
	var workers []*worker
	results, err := shardTrials(n, shards,
		func() (*worker, error) {
			w := &worker{}
			mu.Lock()
			workers = append(workers, w)
			mu.Unlock()
			return w, nil
		},
		func(w *worker, tr int) (int, error) {
			w.seen = append(w.seen, tr)
			return tr, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r != i {
			t.Fatalf("results[%d] = %d, want %d", i, r, i)
		}
	}
	covered := make([]bool, n)
	for _, w := range workers {
		for i := 1; i < len(w.seen); i++ {
			if w.seen[i] != w.seen[i-1]+1 {
				t.Fatalf("worker saw non-contiguous trials %v", w.seen)
			}
		}
		for _, tr := range w.seen {
			if covered[tr] {
				t.Fatalf("trial %d ran twice", tr)
			}
			covered[tr] = true
		}
	}
	for tr, ok := range covered {
		if !ok {
			t.Fatalf("trial %d never ran", tr)
		}
	}
}

// TestShardTrialsErrors: worker and trial errors abort the run; n <= 0 is
// an empty no-error result.
func TestShardTrialsErrors(t *testing.T) {
	boom := errors.New("boom")
	if _, err := shardTrials(8, 4,
		func() (int, error) { return 0, boom },
		func(int, int) (int, error) { return 0, nil }); !errors.Is(err, boom) {
		t.Errorf("worker error not propagated: %v", err)
	}
	var ran atomic.Int64
	if _, err := shardTrials(8, 2,
		func() (int, error) { return 0, nil },
		func(_ int, tr int) (int, error) {
			ran.Add(1)
			if tr == 3 {
				return 0, boom
			}
			return tr, nil
		}); !errors.Is(err, boom) {
		t.Errorf("trial error not propagated: %v", err)
	}
	if got := ran.Load(); got > 8 {
		t.Errorf("ran %d trials, want <= 8", got)
	}
	if res, err := shardTrials(0, 4,
		func() (int, error) { return 0, nil },
		func(int, int) (int, error) { return 0, nil }); err != nil || res != nil {
		t.Errorf("n=0: got (%v, %v), want (nil, nil)", res, err)
	}
}

// TestDeriveSeedStability pins DeriveSeed's outputs: they are part of the
// reproducibility contract (campaign manifests record only the master
// seed), so the mixing function must never silently change.
func TestDeriveSeedStability(t *testing.T) {
	a := DeriveSeed(1, "x")
	if b := DeriveSeed(1, "x"); a != b {
		t.Errorf("DeriveSeed not deterministic: %#x vs %#x", a, b)
	}
	if b := DeriveSeed(2, "x"); a == b {
		t.Error("different campaign seeds collided")
	}
	if b := DeriveSeed(1, "y"); a == b {
		t.Error("different keys collided")
	}
}
