package stats

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{name: "single", xs: []float64{4}, want: 4},
		{name: "pair", xs: []float64{2, 4}, want: 3},
		{name: "negatives", xs: []float64{-1, 1}, want: 0},
		{name: "many", xs: []float64{1, 2, 3, 4, 5}, want: 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Mean(tt.xs)
			if err != nil {
				t.Fatalf("Mean(%v) error: %v", tt.xs, err)
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("Mean(%v) = %v, want %v", tt.xs, got, tt.want)
			}
		})
	}
}

func TestMeanEmpty(t *testing.T) {
	if _, err := Mean(nil); err == nil {
		t.Error("Mean(nil) expected error")
	}
}

func TestGeoMean(t *testing.T) {
	got, err := GeoMean([]float64{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2) > 1e-12 {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
}

func TestGeoMeanRejectsNonPositive(t *testing.T) {
	if _, err := GeoMean([]float64{1, 0}); err == nil {
		t.Error("GeoMean with zero expected error")
	}
	if _, err := GeoMean([]float64{-2, 4}); err == nil {
		t.Error("GeoMean with negative expected error")
	}
}

func TestStdDevAndStdErr(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sample std dev of the classic example is sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(sd-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", sd, want)
	}
	se, err := StdErr(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(se-want/math.Sqrt(8)) > 1e-12 {
		t.Errorf("StdErr = %v, want %v", se, want/math.Sqrt(8))
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if m, _ := Min(xs); m != -1 {
		t.Errorf("Min = %v, want -1", m)
	}
	if m, _ := Max(xs); m != 7 {
		t.Errorf("Max = %v, want 7", m)
	}
}

func TestComb(t *testing.T) {
	tests := []struct {
		n, k int
		want int64
	}{
		{5, 2, 10},
		{96, 0, 1},
		{96, 1, 96},
		{10, 10, 1},
		{10, 11, 0},
		{10, -1, 0},
	}
	for _, tt := range tests {
		if got := Comb(tt.n, tt.k); got.Cmp(big.NewInt(tt.want)) != 0 {
			t.Errorf("Comb(%d,%d) = %v, want %d", tt.n, tt.k, got, tt.want)
		}
	}
}

func TestCombSumMatchesPaperEq1Numerator(t *testing.T) {
	// Paper §VI-E: n=96, k=4 → sum_{h=0}^{4} C(96,h).
	want := big.NewInt(0)
	for _, v := range []int64{1, 96, 4560, 142880, 3321960} {
		want.Add(want, big.NewInt(v))
	}
	if got := CombSum(96, 4); got.Cmp(want) != 0 {
		t.Errorf("CombSum(96,4) = %v, want %v", got, want)
	}
}

func TestBinomialPMFSumsToOne(t *testing.T) {
	total := new(big.Float).SetPrec(256)
	for k := 0; k <= 20; k++ {
		total.Add(total, BinomialPMF(20, k, 0.3))
	}
	f, _ := total.Float64()
	if math.Abs(f-1) > 1e-12 {
		t.Errorf("PMF sum = %v, want 1", f)
	}
}

func TestBinomialTailEq2(t *testing.T) {
	// Paper Eq. 2: for n=96 and p_flip=1%, k=4 suffices for <1%
	// uncorrectable MACs, but k=3 does not keep it below 0.31%.
	tail4, _ := BinomialTail(96, 4, 0.01).Float64()
	if tail4 >= 0.01 {
		t.Errorf("P(>4 flips) = %v, want < 1%%", tail4)
	}
	tail0, _ := BinomialTail(96, 0, 0.01).Float64()
	if tail0 <= tail4 {
		t.Errorf("tail must decrease with k: k=0 %v vs k=4 %v", tail0, tail4)
	}
}

func TestLog2Big(t *testing.T) {
	x := new(big.Float).SetInt(new(big.Int).Lsh(big.NewInt(1), 100))
	got, err := Log2Big(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-100) > 1e-9 {
		t.Errorf("Log2Big(2^100) = %v, want 100", got)
	}
	if _, err := Log2Big(big.NewFloat(0)); err == nil {
		t.Error("Log2Big(0) expected error")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	a = NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds collide %d/1000 times", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGBernoulliRate(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	rate := float64(hits) / n
	if math.Abs(rate-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) rate = %v", rate)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(64)
		seen := make([]bool, 64)
		for _, v := range p {
			if v < 0 || v >= 64 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(17); v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
	if r.Intn(0) != 0 {
		t.Error("Intn(0) should return 0")
	}
}
