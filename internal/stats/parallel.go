package stats

import (
	"hash/fnv"
	"runtime"
	"sync"
)

// DeriveSeed maps (campaign seed, trial/job key) to a derived simulation
// seed: a pure function, so results never depend on worker count or
// scheduling order. The key is FNV-1a-hashed, mixed with the campaign seed,
// and finalised with the SplitMix64 mixer for avalanche. It is the
// determinism contract both the harness's parallel job pool and the
// in-process sharded trial loops rest on (internal/harness re-exports it).
func DeriveSeed(campaignSeed uint64, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	z := campaignSeed ^ h.Sum64()
	z += 0x9E3779B97F4A7C15
	z ^= z >> 30
	z *= 0xBF58476D1CE4E5B9
	z ^= z >> 27
	z *= 0x94D049BB133111EB
	z ^= z >> 31
	return z
}

// ShardTrials runs n independent Monte-Carlo trials across GOMAXPROCS
// goroutine shards and returns the per-trial results indexed by trial
// number. Each shard owns one worker state W (built by newWorker — a guard,
// a world, whatever the trial mutates), and each trial must be a pure
// function of (worker state, trial index): seed its randomness from
// DeriveSeed(seed, trialKey) rather than a shared stream. Under that
// contract the result slice is bit-identical whatever GOMAXPROCS is —
// sharding only changes which goroutine computes each entry, never the
// entry itself (determinism_test pins this serial-vs-parallel).
//
// The trial space is split into contiguous ranges, one per shard, so each
// worker state sees an in-order subsequence of trials. The first error
// (from newWorker or a trial) aborts the run.
func ShardTrials[W, R any](n int, newWorker func() (W, error), trial func(w W, t int) (R, error)) ([]R, error) {
	return shardTrials(n, runtime.GOMAXPROCS(0), newWorker, trial)
}

func shardTrials[W, R any](n, shards int, newWorker func() (W, error), trial func(w W, t int) (R, error)) ([]R, error) {
	if n <= 0 {
		return nil, nil
	}
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	results := make([]R, n)
	errs := make([]error, shards)
	var wg sync.WaitGroup
	// Contiguous split: shard s owns [s*n/shards, (s+1)*n/shards).
	for s := 0; s < shards; s++ {
		start, end := s*n/shards, (s+1)*n/shards
		if start == end {
			continue
		}
		wg.Add(1)
		go func(s, start, end int) {
			defer wg.Done()
			w, err := newWorker()
			if err != nil {
				errs[s] = err
				return
			}
			for t := start; t < end; t++ {
				r, terr := trial(w, t)
				if terr != nil {
					errs[s] = terr
					return
				}
				results[t] = r
			}
		}(s, start, end)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}
