// Package stats provides small numeric helpers used across the PT-Guard
// simulation: summary statistics, exact big-number binomials for the
// analytic security model, and a deterministic RNG.
package stats

import (
	"errors"
	"math"
	"math/big"
)

// ErrEmpty is returned by summary statistics invoked on an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// GeoMean returns the geometric mean of xs. All values must be positive.
func GeoMean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	logSum := 0.0
	for _, x := range xs {
		if x <= 0 {
			return 0, errors.New("stats: geomean requires positive values")
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs))), nil
}

// StdDev returns the sample standard deviation (n-1 denominator) of xs.
func StdDev(xs []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1)), nil
}

// StdErr returns the standard error of the mean of xs.
func StdErr(xs []float64) (float64, error) {
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	return sd / math.Sqrt(float64(len(xs))), nil
}

// Max returns the maximum of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Min returns the minimum of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Comb returns the binomial coefficient C(n, k) as an exact big integer.
// It returns zero for k < 0 or k > n.
func Comb(n, k int) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(int64(n), int64(k))
}

// CombSum returns sum_{h=0}^{k} C(n, h) as an exact big integer.
func CombSum(n, k int) *big.Int {
	total := big.NewInt(0)
	for h := 0; h <= k; h++ {
		total.Add(total, Comb(n, h))
	}
	return total
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p) using big floats,
// so tail probabilities far below float64 range stay exact enough.
func BinomialPMF(n, k int, p float64) *big.Float {
	if k < 0 || k > n || p < 0 || p > 1 {
		return big.NewFloat(0)
	}
	const prec = 256
	c := new(big.Float).SetPrec(prec).SetInt(Comb(n, k))
	pf := big.NewFloat(p).SetPrec(prec)
	qf := new(big.Float).SetPrec(prec).Sub(big.NewFloat(1), big.NewFloat(p))
	c.Mul(c, powFloat(pf, k, prec))
	c.Mul(c, powFloat(qf, n-k, prec))
	return c
}

// BinomialTail returns P(X > k) for X ~ Binomial(n, p). This is the paper's
// Eq. (2): the probability of an uncorrectable MAC (more than k bit-flips in
// an n-bit MAC) at per-bit flip probability p.
func BinomialTail(n, k int, p float64) *big.Float {
	const prec = 256
	total := new(big.Float).SetPrec(prec)
	for i := k + 1; i <= n; i++ {
		total.Add(total, BinomialPMF(n, i, p))
	}
	return total
}

func powFloat(x *big.Float, n int, prec uint) *big.Float {
	r := new(big.Float).SetPrec(prec).SetInt64(1)
	base := new(big.Float).SetPrec(prec).Set(x)
	for i := 0; i < n; i++ {
		r.Mul(r, base)
	}
	return r
}

// Log2Big returns log2 of a positive big float, used to express tiny attack
// probabilities as "effective MAC bits" (n_eff = -log2 p_escape).
func Log2Big(x *big.Float) (float64, error) {
	if x.Sign() <= 0 {
		return 0, errors.New("stats: log2 of non-positive value")
	}
	mant := new(big.Float)
	exp := x.MantExp(mant)
	m, _ := mant.Float64()
	return float64(exp) + math.Log2(m), nil
}
