package stats

// RNG is a small, deterministic pseudo-random number generator
// (xoshiro256** by Blackman & Vigna) used by every stochastic component of
// the simulation. A dedicated implementation keeps experiment results
// reproducible across Go releases, unlike math/rand's unspecified sources.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from a single 64-bit value via
// SplitMix64, which guarantees a well-mixed non-zero state.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Uint64n returns a uniform value in [0, n). n must be positive.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.Uint64() % n
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bernoulli returns true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
