// Package workload models the paper's evaluation workloads (§III): the 20
// SPEC CPU-2017 benchmarks (all int and fp except gcc, blender, parest) and
// the 5 GAP graph kernels on USA-road. Each workload is a synthetic memory
// reference generator whose footprint and locality are calibrated so the
// simulated cache hierarchy reproduces the benchmark's published LLC MPKI
// (Fig. 6 bottom panel); the slowdown experiments depend only on that MPKI
// and on page-walk frequency, which the generator also models.
package workload

import (
	"errors"
	"fmt"

	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// Profile characterises one benchmark.
type Profile struct {
	// Name is the benchmark name as it appears in Fig. 6.
	Name string
	// Suite is "SPEC" or "GAP".
	Suite string
	// TargetMPKI is the LLC misses per kilo-instruction the generator is
	// calibrated to (from Fig. 6's bottom panel and public SPEC-2017 /
	// GAP characterisations).
	TargetMPKI float64
	// MemRefFrac is the fraction of instructions that reference memory.
	MemRefFrac float64
	// FootprintPages is the resident working set in 4 KB pages.
	FootprintPages int
	// HotFraction is the share of references that go to a small hot
	// region (temporal locality); the rest stream over the footprint.
	HotFraction float64
	// HotPages is the size of the hot region in pages.
	HotPages int
	// WriteFrac is the fraction of memory references that are stores.
	WriteFrac float64
}

// Profiles returns the 25 evaluated workloads. MPKI values follow the
// paper's Fig. 6 bottom panel: GAP kernels, xalancbmk, lbm and fotonik3d
// above 10; mcf, omnetpp, cactuBSSN, bwaves, roms in the middle; the rest
// below 5.
func Profiles() []Profile {
	mk := func(name, suite string, mpki float64, footPages int) Profile {
		const memRefFrac = 0.35
		// The streaming share never reuses lines, so with a footprint
		// far above the 2 MB LLC its references all miss:
		// MPKI = 1000 * MemRefFrac * (1 - HotFraction). Invert that to
		// hit the benchmark's published MPKI.
		hot := 1 - mpki/(1000*memRefFrac)
		return Profile{
			Name:           name,
			Suite:          suite,
			TargetMPKI:     mpki,
			MemRefFrac:     memRefFrac,
			FootprintPages: footPages,
			HotFraction:    hot,
			HotPages:       8, // L1-resident: the temporal-locality share
			WriteFrac:      0.3,
		}
	}
	return []Profile{
		// SPECint 2017 (minus gcc).
		mk("perlbench", "SPEC", 0.8, 3000),
		mk("mcf", "SPEC", 14.5, 24000),
		mk("omnetpp", "SPEC", 8.1, 16000),
		mk("xalancbmk", "SPEC", 29.0, 30000),
		mk("x264", "SPEC", 0.7, 3000),
		mk("deepsjeng", "SPEC", 0.4, 2500),
		mk("leela", "SPEC", 0.3, 2000),
		mk("exchange2", "SPEC", 0.1, 1000),
		mk("xz", "SPEC", 2.6, 8000),
		// SPECfp 2017 (minus blender, parest).
		mk("bwaves", "SPEC", 6.2, 14000),
		mk("cactuBSSN", "SPEC", 5.1, 12000),
		mk("namd", "SPEC", 0.3, 2000),
		mk("povray", "SPEC", 0.1, 1000),
		mk("lbm", "SPEC", 20.1, 26000),
		mk("wrf", "SPEC", 2.5, 8000),
		mk("cam4", "SPEC", 1.5, 6000),
		mk("imagick", "SPEC", 0.2, 1500),
		mk("nab", "SPEC", 0.4, 2500),
		mk("fotonik3d", "SPEC", 12.6, 22000),
		mk("roms", "SPEC", 5.9, 13000),
		// GAP on USA-road: pointer-chasing graph kernels.
		mk("bc", "GAP", 11.8, 20000),
		mk("bfs", "GAP", 10.4, 19000),
		mk("cc", "GAP", 12.2, 21000),
		mk("pr", "GAP", 13.5, 22000),
		mk("sssp", "GAP", 14.8, 23000),
	}
}

// ProfileByName returns the named profile.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// Ref is one memory reference.
type Ref struct {
	// VAddr is the virtual byte address.
	VAddr uint64
	// Write marks a store.
	Write bool
}

// Generator produces the reference stream for one workload instance.
// Not safe for concurrent use.
type Generator struct {
	prof Profile
	rng  *stats.RNG
	// VBase is the virtual base of the workload's data region.
	vbase uint64
	// streamPos walks the footprint for the streaming share.
	streamPos uint64
}

// NewGenerator builds a generator; vbase is the virtual base address of the
// workload's mapped region, seed disambiguates instances.
func NewGenerator(prof Profile, vbase uint64, seed uint64) (*Generator, error) {
	if prof.FootprintPages <= 0 || prof.HotPages <= 0 {
		return nil, errors.New("workload: empty footprint")
	}
	if prof.HotPages > prof.FootprintPages {
		return nil, errors.New("workload: hot region exceeds footprint")
	}
	if prof.MemRefFrac <= 0 || prof.MemRefFrac > 1 {
		return nil, errors.New("workload: MemRefFrac outside (0, 1]")
	}
	return &Generator{prof: prof, rng: stats.NewRNG(seed ^ 0x9E3779B9), vbase: vbase}, nil
}

// Profile returns the generator's workload profile.
func (g *Generator) Profile() Profile { return g.prof }

// FootprintBytes returns the mapped region size the workload needs.
func (g *Generator) FootprintBytes() uint64 {
	return uint64(g.prof.FootprintPages) * pte.PageSize
}

// IsMemRef decides whether the next instruction references memory.
func (g *Generator) IsMemRef() bool { return g.rng.Bernoulli(g.prof.MemRefFrac) }

// Next produces the next memory reference: with probability HotFraction a
// random line in the hot region (high cache-hit share), otherwise the next
// line of a random-stride sweep over the full footprint (capacity misses).
func (g *Generator) Next() Ref {
	write := g.rng.Bernoulli(g.prof.WriteFrac)
	if g.rng.Bernoulli(g.prof.HotFraction) {
		page := uint64(g.rng.Intn(g.prof.HotPages))
		off := uint64(g.rng.Intn(pte.PageSize/pte.LineBytes)) * pte.LineBytes
		return Ref{VAddr: g.vbase + page*pte.PageSize + off, Write: write}
	}
	// Streaming share: jump a pseudo-random number of lines forward so
	// both spatial reuse and capacity pressure appear.
	g.streamPos += uint64(1 + g.rng.Intn(8))
	lines := uint64(g.prof.FootprintPages) * (pte.PageSize / pte.LineBytes)
	pos := g.streamPos % lines
	return Ref{VAddr: g.vbase + pos*pte.LineBytes, Write: write}
}
