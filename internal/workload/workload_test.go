package workload

import (
	"math"
	"testing"

	"ptguard/internal/pte"
)

func TestProfilesMatchPaperRoster(t *testing.T) {
	ps := Profiles()
	if len(ps) != 25 {
		t.Fatalf("profiles = %d, want 25 (20 SPEC + 5 GAP)", len(ps))
	}
	spec, gap := 0, 0
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
		switch p.Suite {
		case "SPEC":
			spec++
		case "GAP":
			gap++
		default:
			t.Errorf("%s: unknown suite %q", p.Name, p.Suite)
		}
	}
	if spec != 20 || gap != 5 {
		t.Errorf("suite split = %d SPEC / %d GAP, want 20/5", spec, gap)
	}
	// §III excludes gcc, blender, parest.
	for _, excluded := range []string{"gcc", "blender", "parest"} {
		if seen[excluded] {
			t.Errorf("%s must be excluded per §III", excluded)
		}
	}
	// Fig. 6: xalancbmk is the highest-MPKI workload at 29.
	x, err := ProfileByName("xalancbmk")
	if err != nil {
		t.Fatal(err)
	}
	if x.TargetMPKI != 29.0 {
		t.Errorf("xalancbmk MPKI = %v, want 29", x.TargetMPKI)
	}
	for _, p := range ps {
		if p.TargetMPKI > x.TargetMPKI {
			t.Errorf("%s MPKI %v exceeds xalancbmk", p.Name, p.TargetMPKI)
		}
	}
}

func TestProfileByNameUnknown(t *testing.T) {
	if _, err := ProfileByName("doom"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestProfileInvariants(t *testing.T) {
	for _, p := range Profiles() {
		t.Run(p.Name, func(t *testing.T) {
			if p.HotFraction <= 0 || p.HotFraction >= 1 {
				t.Errorf("HotFraction = %v outside (0,1)", p.HotFraction)
			}
			// Footprint must exceed the 2 MB LLC so the streaming
			// share misses (the calibration's premise).
			if p.FootprintPages*pte.PageSize <= 2<<20 {
				t.Errorf("footprint %d pages does not exceed the LLC", p.FootprintPages)
			}
			// Derived MPKI identity.
			implied := 1000 * p.MemRefFrac * (1 - p.HotFraction)
			if math.Abs(implied-p.TargetMPKI) > 1e-9 {
				t.Errorf("implied MPKI %v != target %v", implied, p.TargetMPKI)
			}
		})
	}
}

func TestGeneratorValidation(t *testing.T) {
	bad := Profile{FootprintPages: 0, HotPages: 1, MemRefFrac: 0.5}
	if _, err := NewGenerator(bad, 0, 1); err == nil {
		t.Error("empty footprint accepted")
	}
	bad = Profile{FootprintPages: 10, HotPages: 20, MemRefFrac: 0.5}
	if _, err := NewGenerator(bad, 0, 1); err == nil {
		t.Error("hot > footprint accepted")
	}
	bad = Profile{FootprintPages: 10, HotPages: 5, MemRefFrac: 0}
	if _, err := NewGenerator(bad, 0, 1); err == nil {
		t.Error("zero MemRefFrac accepted")
	}
}

func TestGeneratorStaysInFootprint(t *testing.T) {
	prof, err := ProfileByName("mcf")
	if err != nil {
		t.Fatal(err)
	}
	const vbase = 0x10000000000
	g, err := NewGenerator(prof, vbase, 7)
	if err != nil {
		t.Fatal(err)
	}
	end := vbase + g.FootprintBytes()
	for i := 0; i < 100000; i++ {
		r := g.Next()
		if r.VAddr < vbase || r.VAddr >= end {
			t.Fatalf("ref %#x outside [%#x, %#x)", r.VAddr, vbase, end)
		}
		if r.VAddr%pte.LineBytes != 0 {
			t.Fatalf("ref %#x not line aligned", r.VAddr)
		}
	}
}

func TestGeneratorRates(t *testing.T) {
	prof, _ := ProfileByName("xalancbmk")
	g, _ := NewGenerator(prof, 0x2000000000, 3)
	const n = 200000
	memRefs, writes := 0, 0
	for i := 0; i < n; i++ {
		if g.IsMemRef() {
			memRefs++
		}
		if g.Next().Write {
			writes++
		}
	}
	memRate := float64(memRefs) / n
	if math.Abs(memRate-prof.MemRefFrac) > 0.01 {
		t.Errorf("mem ref rate = %v, want %v", memRate, prof.MemRefFrac)
	}
	writeRate := float64(writes) / n
	if math.Abs(writeRate-prof.WriteFrac) > 0.01 {
		t.Errorf("write rate = %v, want %v", writeRate, prof.WriteFrac)
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	prof, _ := ProfileByName("lbm")
	a, _ := NewGenerator(prof, 0, 11)
	b, _ := NewGenerator(prof, 0, 11)
	c, _ := NewGenerator(prof, 0, 12)
	diff := false
	for i := 0; i < 1000; i++ {
		ra, rb, rc := a.Next(), b.Next(), c.Next()
		if ra != rb {
			t.Fatal("same seed diverged")
		}
		if ra != rc {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical streams")
	}
}
