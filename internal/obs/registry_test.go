package obs

import (
	"math"
	"testing"
)

// TestHistogramBucketBoundaries pins the power-of-two bucketing contract:
// bucket 0 holds only the value 0, bucket i holds [2^(i-1), 2^i - 1], and
// the last bucket absorbs everything up to MaxUint64.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v      uint64
		bucket int
	}{
		{v: 0, bucket: 0},
		{v: 1, bucket: 1},
		{v: 2, bucket: 2},
		{v: 3, bucket: 2},
		{v: 4, bucket: 3},
		{v: 7, bucket: 3},
		{v: 8, bucket: 4},
		{v: 1023, bucket: 10},
		{v: 1024, bucket: 11},
		{v: 1 << 63, bucket: 64},
		{v: math.MaxUint64, bucket: 64},
	}
	for _, c := range cases {
		h := &Histogram{}
		h.Observe(c.v)
		buckets := h.Buckets()
		for i, n := range buckets {
			want := uint64(0)
			if i == c.bucket {
				want = 1
			}
			if n != want {
				t.Errorf("Observe(%d): bucket[%d] = %d, want %d", c.v, i, n, want)
			}
		}
		// The chosen bucket's bound must accept the value and the previous
		// bucket's bound must not.
		if ub := BucketUpperBound(c.bucket); ub < c.v {
			t.Errorf("BucketUpperBound(%d) = %d < observed %d", c.bucket, ub, c.v)
		}
		if c.bucket > 0 {
			if lb := BucketUpperBound(c.bucket - 1); lb >= c.v && c.v > 0 {
				t.Errorf("BucketUpperBound(%d) = %d should be below %d", c.bucket-1, lb, c.v)
			}
		}
	}
}

func TestHistogramCountSumSnapshot(t *testing.T) {
	h := &Histogram{}
	for _, v := range []uint64{0, 1, 1, 5, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 1007 {
		t.Errorf("Sum = %d, want 1007", h.Sum())
	}
	snap := h.Snapshot()
	if snap.Count != 5 || snap.Sum != 1007 {
		t.Errorf("Snapshot = %+v", snap)
	}
	// Only non-empty buckets, ascending bounds.
	if len(snap.Buckets) != 4 {
		t.Fatalf("Snapshot buckets = %+v, want 4 entries", snap.Buckets)
	}
	for i := 1; i < len(snap.Buckets); i++ {
		if snap.Buckets[i].Le <= snap.Buckets[i-1].Le {
			t.Errorf("bucket bounds not ascending: %+v", snap.Buckets)
		}
	}
}

// TestNilMetricsNoOp is the zero-overhead contract: every method on every
// nil handle must be callable and inert.
func TestNilMetricsNoOp(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	c.Set(9)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}

	var g *Gauge
	g.Set(1.5)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}

	var h *Histogram
	h.Observe(42)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram observed")
	}
	if h.Snapshot().Count != 0 {
		t.Error("nil histogram snapshot non-empty")
	}

	var r *Registry
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Error("nil registry handed out live handles")
	}
	r.SetCounter("x", 1)
	r.SetGauge("x", 1)
	r.Reset()
	if snap := r.Snapshot(); snap.Counters != nil || snap.Gauges != nil {
		t.Error("nil registry snapshot non-empty")
	}
	if r.CounterNames() != nil {
		t.Error("nil registry has counter names")
	}

	var o *Observer
	if o.Enabled() {
		t.Error("nil observer enabled")
	}
	o.Emit("cat", "name", 1)
	o.EmitAt("cat", "name", 1, 1)
	o.EmitArgs("cat", "name", 1, nil)
	o.SetClock(func() uint64 { return 1 })
	o.Snapshot(1, 1)
	o.Reset()
	if o.ShouldSnapshot(math.MaxUint64) {
		t.Error("nil observer wants a snapshot")
	}
	if o.Now() != 0 {
		t.Error("nil observer has a clock")
	}
	if o.Registry() != nil || o.Tracer() != nil || o.Series() != nil {
		t.Error("nil observer handed out live components")
	}
	if o.RunMetrics(true) != nil {
		t.Error("nil observer produced metrics")
	}

	var tr *Tracer
	tr.Emit("a", "b", 1, 1)
	tr.Reset()
	if tr.Len() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer recorded events")
	}

	var s *Series
	s.Record(1, 1, Snapshot{})
	s.Reset()
	if s.Len() != 0 || s.Points() != nil {
		t.Error("nil series recorded points")
	}
}

func TestRegistryCreateOnReferenceAndReset(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits")
	c.Add(3)
	if r.Counter("hits") != c {
		t.Error("second reference created a new counter")
	}
	r.SetGauge("occ", 0.5)
	r.Histogram("lat").Observe(7)

	snap := r.Snapshot()
	if snap.Counters["hits"] != 3 || snap.Gauges["occ"] != 0.5 || snap.Histograms["lat"].Count != 1 {
		t.Errorf("snapshot = %+v", snap)
	}

	r.Reset()
	if c.Value() != 0 {
		t.Error("reset did not zero the cached handle")
	}
	if got := r.CounterNames(); len(got) != 1 || got[0] != "hits" {
		t.Errorf("reset dropped registrations: %v", got)
	}
	if r.Histogram("lat").Count() != 0 {
		t.Error("reset did not zero the histogram")
	}
}

func TestObserverSnapshotCadence(t *testing.T) {
	o := New(Options{SnapshotEvery: 100})
	if o.ShouldSnapshot(99) {
		t.Error("snapshot fired early")
	}
	if !o.ShouldSnapshot(100) {
		t.Error("snapshot did not fire at the cadence")
	}
	if o.ShouldSnapshot(150) {
		t.Error("snapshot re-fired within one period")
	}
	// A large jump advances past every elapsed period, firing once.
	if !o.ShouldSnapshot(1000) {
		t.Error("snapshot did not fire after a jump")
	}
	if o.ShouldSnapshot(1050) {
		t.Error("cadence did not advance past the jump")
	}

	o.Registry().SetCounter("x", 7)
	o.Snapshot(500, 1000)
	pts := o.Series().Points()
	if len(pts) != 1 || pts[0].Cycle != 500 || pts[0].Instructions != 1000 || pts[0].Counters["x"] != 7 {
		t.Errorf("series points = %+v", pts)
	}

	// SnapshotEvery 0 disables the periodic cadence entirely.
	o2 := New(Options{})
	if o2.ShouldSnapshot(math.MaxUint64) {
		t.Error("cadence fired with SnapshotEvery=0")
	}
}

func TestObserverReset(t *testing.T) {
	o := New(Options{SnapshotEvery: 10, TraceCapacity: 8})
	o.Registry().SetCounter("x", 1)
	o.Emit("cat", "ev", 0)
	o.Snapshot(1, 1)
	o.Reset()
	if o.Registry().Counter("x").Value() != 0 {
		t.Error("reset kept counter value")
	}
	if o.Tracer().Len() != 0 {
		t.Error("reset kept trace events")
	}
	if o.Series().Len() != 0 {
		t.Error("reset kept series points")
	}
	if !o.ShouldSnapshot(10) {
		t.Error("reset did not restart the snapshot cadence")
	}
}
