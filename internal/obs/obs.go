// Package obs is the unified observability subsystem for the simulated
// memory hierarchy: a typed metric registry (counters, gauges, power-of-two
// histograms), a simulated-cycle event tracer with Chrome trace_event
// export, and a periodic time-series snapshot recorder, all stdlib-only.
//
// The subsystem is designed to be zero-overhead when disabled: every method
// on every type is nil-safe, so instrumented components hold (possibly nil)
// metric handles and call them unconditionally. A nil *Observer, *Registry,
// *Tracer, *Counter, *Gauge or *Histogram turns the corresponding call into
// a no-op.
package obs

// Options parameterises one Observer.
type Options struct {
	// TraceCapacity bounds the tracer's ring buffer; 0 selects
	// DefaultTraceCapacity, negative disables tracing entirely.
	TraceCapacity int
	// SnapshotEvery is the number of retired instructions between periodic
	// time-series snapshots; 0 disables periodic snapshots (a run-final
	// snapshot is still recorded by the simulator).
	SnapshotEvery int
}

// Observer bundles the three observability pillars for one run: the metric
// registry, the event tracer, and the snapshot time series. A nil Observer
// is the disabled state; every method is a no-op on it.
//
// Observer is not safe for concurrent use: like the simulator itself, one
// Observer belongs to one run.
type Observer struct {
	reg    *Registry
	tracer *Tracer
	series *Series

	// clock maps "now" to a simulated-cycle timestamp; when unset, an
	// internal monotonic tick keeps event order meaningful in contexts
	// without a core clock (e.g. the fault campaigns).
	clock func() uint64
	tick  uint64

	snapshotEvery uint64
	nextSnapshot  uint64
}

// New builds an enabled Observer.
func New(opts Options) *Observer {
	o := &Observer{
		reg:    NewRegistry(),
		series: &Series{},
	}
	if opts.TraceCapacity >= 0 {
		o.tracer = NewTracer(opts.TraceCapacity)
	}
	if opts.SnapshotEvery > 0 {
		o.snapshotEvery = uint64(opts.SnapshotEvery)
		o.nextSnapshot = o.snapshotEvery
	}
	return o
}

// Enabled reports whether the observer collects anything.
func (o *Observer) Enabled() bool { return o != nil }

// Registry returns the metric registry (nil when disabled).
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Tracer returns the event tracer (nil when disabled or trace-less).
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.tracer
}

// Series returns the snapshot time series (nil when disabled).
func (o *Observer) Series() *Series {
	if o == nil {
		return nil
	}
	return o.series
}

// SetClock installs the simulated-cycle clock events are stamped with.
func (o *Observer) SetClock(fn func() uint64) {
	if o == nil {
		return
	}
	o.clock = fn
}

// Now returns the current simulated-cycle timestamp: the installed clock,
// or a monotonic internal tick when no clock is set.
func (o *Observer) Now() uint64 {
	if o == nil {
		return 0
	}
	if o.clock != nil {
		return o.clock()
	}
	o.tick++
	return o.tick
}

// Emit records one trace event at the current clock.
func (o *Observer) Emit(cat, name string, dur uint64) {
	if o == nil || o.tracer == nil {
		return
	}
	o.tracer.Emit(cat, name, o.Now(), dur)
}

// EmitAt records one trace event at an explicit cycle timestamp.
func (o *Observer) EmitAt(cat, name string, cycle, dur uint64) {
	if o == nil {
		return
	}
	o.tracer.Emit(cat, name, cycle, dur)
}

// EmitArgs records one trace event with key/value arguments at the current
// clock. Callers on hot paths should guard the args-map construction with
// Enabled to keep the disabled case allocation-free.
func (o *Observer) EmitArgs(cat, name string, dur uint64, args map[string]uint64) {
	if o == nil || o.tracer == nil {
		return
	}
	o.tracer.EmitArgs(cat, name, o.Now(), dur, args)
}

// ShouldSnapshot reports whether the periodic snapshot cadence has elapsed
// at the given retired-instruction count, advancing the cadence when it
// fires.
func (o *Observer) ShouldSnapshot(instructions uint64) bool {
	if o == nil || o.snapshotEvery == 0 || instructions < o.nextSnapshot {
		return false
	}
	for o.nextSnapshot <= instructions {
		o.nextSnapshot += o.snapshotEvery
	}
	return true
}

// Snapshot records one time-series point from the registry's current state.
func (o *Observer) Snapshot(cycle, instructions uint64) {
	if o == nil {
		return
	}
	o.series.Record(cycle, instructions, o.reg.Snapshot())
}

// Reset zeroes the registry, drops buffered trace events and series points,
// and restarts the snapshot cadence (the simulator's post-warm-up
// ResetStats path).
func (o *Observer) Reset() {
	if o == nil {
		return
	}
	o.reg.Reset()
	o.tracer.Reset()
	o.series.Reset()
	o.tick = 0
	o.nextSnapshot = o.snapshotEvery
}

// RunMetrics is the JSON-serialisable summary of one observed run: the
// final registry state, the snapshot time series, and (optionally) the
// traced events. Campaign runners embed it in job results so the
// checkpoint journal carries per-job observability data.
type RunMetrics struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
	Series     []SeriesPoint           `json:"series,omitempty"`
	Trace      []Event                 `json:"trace,omitempty"`
	Dropped    uint64                  `json:"trace_dropped,omitempty"`
}

// RunMetrics summarises the observer's collected data. includeTrace copies
// the (bounded) event ring into the summary; leave it off for large
// campaigns whose journal should stay small.
func (o *Observer) RunMetrics(includeTrace bool) *RunMetrics {
	if o == nil {
		return nil
	}
	snap := o.reg.Snapshot()
	rm := &RunMetrics{
		Counters:   snap.Counters,
		Gauges:     snap.Gauges,
		Histograms: snap.Histograms,
		Series:     o.series.Points(),
	}
	if includeTrace && o.tracer != nil {
		rm.Trace = o.tracer.Events()
		rm.Dropped = o.tracer.Dropped()
	}
	return rm
}
