package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// DebugServer is the optional live-inspection endpoint for long campaigns:
// expvar at /debug/vars (process stats plus anything published with
// PublishFunc) and the full pprof suite at /debug/pprof/.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// StartDebugServer listens on addr (e.g. "localhost:6060") and serves
// expvar and pprof in the background on a private mux, so importing this
// package never mutates http.DefaultServeMux.
func StartDebugServer(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: debug listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln) //nolint:errcheck // Serve returns when Close is called
	return &DebugServer{ln: ln, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (d *DebugServer) Addr() string {
	if d == nil {
		return ""
	}
	return d.ln.Addr().String()
}

// Close shuts the server down.
func (d *DebugServer) Close() error {
	if d == nil {
		return nil
	}
	return d.srv.Close()
}

// PublishFunc exposes fn's return value as the named expvar. Publishing the
// same name twice replaces nothing and does not panic (unlike
// expvar.Publish), so campaign CLIs can call it unconditionally.
func PublishFunc(name string, fn func() any) {
	if expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(fn))
}
