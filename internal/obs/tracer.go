package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// DefaultTraceCapacity is the ring-buffer size when Options leaves it zero:
// enough for the tail of a multi-hundred-thousand-instruction run without
// unbounded memory growth.
const DefaultTraceCapacity = 1 << 16

// Event is one traced occurrence at a simulated-cycle timestamp.
type Event struct {
	// Cat groups events for the trace viewer ("mmu", "mac", "ctb",
	// "dram", "fault", "recovery").
	Cat string `json:"cat"`
	// Name is the event within the category ("walk", "verify", ...).
	Name string `json:"name"`
	// Cycle is the simulated-cycle timestamp.
	Cycle uint64 `json:"cycle"`
	// Dur is the event's duration in cycles (0 for instants).
	Dur uint64 `json:"dur,omitempty"`
	// Args carries optional event detail (addresses, rows, counts).
	Args map[string]uint64 `json:"args,omitempty"`
}

// Tracer records events into a bounded ring buffer: when full, the oldest
// events are overwritten, so a trace always holds the most recent window.
// All methods are nil-safe.
type Tracer struct {
	buf     []Event
	next    int
	full    bool
	emitted uint64
}

// NewTracer builds a tracer with the given ring capacity (0 or negative
// selects DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{buf: make([]Event, 0, capacity)}
}

// Emit records one event.
func (t *Tracer) Emit(cat, name string, cycle, dur uint64) {
	t.EmitArgs(cat, name, cycle, dur, nil)
}

// EmitArgs records one event with arguments.
func (t *Tracer) EmitArgs(cat, name string, cycle, dur uint64, args map[string]uint64) {
	if t == nil {
		return
	}
	ev := Event{Cat: cat, Name: name, Cycle: cycle, Dur: dur, Args: args}
	t.emitted++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
		return
	}
	t.buf[t.next] = ev
	t.next++
	if t.next == len(t.buf) {
		t.next = 0
	}
	t.full = true
}

// Len returns the number of buffered events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.buf)
}

// Emitted returns the total number of events ever emitted.
func (t *Tracer) Emitted() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.emitted - uint64(len(t.buf))
}

// Events returns the buffered events in emission order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, len(t.buf))
	if t.full {
		out = append(out, t.buf[t.next:]...)
		out = append(out, t.buf[:t.next]...)
		return out
	}
	return append(out, t.buf...)
}

// Reset drops every buffered event and zeroes the emission counters.
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.buf = t.buf[:0]
	t.next = 0
	t.full = false
	t.emitted = 0
}

// WriteChromeTrace exports the buffered events as a Chrome trace_event
// JSON document viewable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. One simulated cycle maps to one microsecond of trace
// time.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	return WriteChromeTrace(w, []TraceTrack{{Name: "sim", Events: t.Events()}})
}

// TraceTrack is one named event stream in a merged Chrome trace; each
// track renders as its own thread row in the viewer.
type TraceTrack struct {
	Name   string
	Events []Event
}

// chromeEvent is the trace_event wire format: complete events ("ph": "X")
// with ts/dur in microseconds, plus thread_name metadata ("ph": "M").
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   uint64         `json:"ts"`
	Dur  uint64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports multiple tracks as one Chrome trace_event JSON
// document; track i becomes thread i, labelled by a thread_name metadata
// event.
func WriteChromeTrace(w io.Writer, tracks []TraceTrack) error {
	doc := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for tid, track := range tracks {
		name := track.Name
		if name == "" {
			name = fmt.Sprintf("track-%d", tid)
		}
		doc.TraceEvents = append(doc.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: tid,
			Args: map[string]any{"name": name},
		})
		for _, ev := range track.Events {
			ce := chromeEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: "X",
				TS: ev.Cycle, Dur: ev.Dur, PID: 0, TID: tid,
			}
			if len(ev.Args) > 0 {
				ce.Args = make(map[string]any, len(ev.Args))
				for k, v := range ev.Args {
					ce.Args[k] = v
				}
			}
			doc.TraceEvents = append(doc.TraceEvents, ce)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}
