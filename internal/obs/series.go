package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SeriesPoint is one periodic snapshot in a run's time series, keyed by
// simulated cycles and retired instructions so a single run yields a curve
// rather than one end-of-run number.
type SeriesPoint struct {
	// Job labels the run the point belongs to when several runs' series
	// are merged into one file (empty for single-run series).
	Job string `json:"job,omitempty"`
	// Cycle is the simulated-cycle timestamp of the snapshot.
	Cycle uint64 `json:"cycle"`
	// Instructions is the retired-instruction count at the snapshot.
	Instructions uint64 `json:"instructions"`
	// Counters and Gauges copy the registry state at the snapshot.
	Counters map[string]uint64  `json:"counters,omitempty"`
	Gauges   map[string]float64 `json:"gauges,omitempty"`
}

// Series accumulates snapshot points. All methods are nil-safe.
type Series struct {
	points []SeriesPoint
}

// Record appends one point built from a registry snapshot.
func (s *Series) Record(cycle, instructions uint64, snap Snapshot) {
	if s == nil {
		return
	}
	s.points = append(s.points, SeriesPoint{
		Cycle:        cycle,
		Instructions: instructions,
		Counters:     snap.Counters,
		Gauges:       snap.Gauges,
	})
}

// Len returns the number of recorded points.
func (s *Series) Len() int {
	if s == nil {
		return 0
	}
	return len(s.points)
}

// Points returns a copy of the recorded points.
func (s *Series) Points() []SeriesPoint {
	if s == nil {
		return nil
	}
	return append([]SeriesPoint(nil), s.points...)
}

// Reset drops every recorded point.
func (s *Series) Reset() {
	if s == nil {
		return
	}
	s.points = s.points[:0]
}

// WriteSeriesJSONL writes points as JSON Lines: one self-describing object
// per line, the format campaign tooling appends and greps.
func WriteSeriesJSONL(w io.Writer, points []SeriesPoint) error {
	enc := json.NewEncoder(w)
	for _, p := range points {
		if err := enc.Encode(p); err != nil {
			return err
		}
	}
	return nil
}

// WriteSeriesCSV writes points as CSV with a fixed header: job, cycle,
// instructions, then the sorted union of every counter and gauge name.
// Points missing a column emit an empty cell.
func WriteSeriesCSV(w io.Writer, points []SeriesPoint) error {
	counterSet := map[string]bool{}
	gaugeSet := map[string]bool{}
	for _, p := range points {
		for name := range p.Counters {
			counterSet[name] = true
		}
		for name := range p.Gauges {
			gaugeSet[name] = true
		}
	}
	counters := sortedKeys(counterSet)
	gauges := sortedKeys(gaugeSet)

	header := append([]string{"job", "cycle", "instructions"}, counters...)
	header = append(header, gauges...)
	if _, err := io.WriteString(w, strings.Join(header, ",")+"\n"); err != nil {
		return err
	}
	for _, p := range points {
		row := make([]string, 0, len(header))
		row = append(row, p.Job,
			strconv.FormatUint(p.Cycle, 10),
			strconv.FormatUint(p.Instructions, 10))
		for _, name := range counters {
			if v, ok := p.Counters[name]; ok {
				row = append(row, strconv.FormatUint(v, 10))
			} else {
				row = append(row, "")
			}
		}
		for _, name := range gauges {
			if v, ok := p.Gauges[name]; ok {
				row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
			} else {
				row = append(row, "")
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func sortedKeys(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
