package obs

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestTracerRingWraparound: a full ring overwrites the oldest events and
// Events() returns the surviving window oldest-first.
func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Emit("cat", fmt.Sprintf("ev%d", i), uint64(i), 0)
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
	if tr.Emitted() != 10 {
		t.Errorf("Emitted = %d, want 10", tr.Emitted())
	}
	if tr.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", tr.Dropped())
	}
	evs := tr.Events()
	for i, ev := range evs {
		want := fmt.Sprintf("ev%d", 6+i)
		if ev.Name != want || ev.Cycle != uint64(6+i) {
			t.Errorf("event[%d] = %+v, want name %s cycle %d", i, ev, want, 6+i)
		}
	}

	tr.Reset()
	if tr.Len() != 0 || tr.Emitted() != 0 || tr.Dropped() != 0 {
		t.Errorf("after Reset: len=%d emitted=%d dropped=%d", tr.Len(), tr.Emitted(), tr.Dropped())
	}
	// The ring is reusable after Reset without re-allocating.
	tr.Emit("cat", "again", 1, 2)
	if evs := tr.Events(); len(evs) != 1 || evs[0].Name != "again" {
		t.Errorf("post-reset events = %+v", evs)
	}
}

func TestTracerPartialRingInOrder(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Emit("c", fmt.Sprintf("e%d", i), uint64(i), 0)
	}
	if tr.Dropped() != 0 {
		t.Errorf("Dropped = %d, want 0", tr.Dropped())
	}
	evs := tr.Events()
	if len(evs) != 3 || evs[0].Name != "e0" || evs[2].Name != "e2" {
		t.Errorf("events = %+v", evs)
	}
}

// TestWriteChromeTraceGolden validates the trace_event export against the
// checked-in golden file and re-parses it as the viewer would.
func TestWriteChromeTraceGolden(t *testing.T) {
	tracks := []TraceTrack{
		{Name: "mcf/mac10/ptguard", Events: []Event{
			{Cat: "mmu", Name: "walk", Cycle: 100, Dur: 42},
			{Cat: "mac", Name: "verify", Cycle: 120, Dur: 10,
				Args: map[string]uint64{"addr": 0x1000}},
		}},
		{Events: []Event{ // unnamed track gets a synthetic name
			{Cat: "recovery", Name: "rebuild", Cycle: 7},
		}},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tracks); err != nil {
		t.Fatal(err)
	}

	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output diverged from golden file:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}

	// Structural validity: what Perfetto/chrome://tracing requires.
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   uint64         `json:"ts"`
			Dur  uint64         `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 5 { // 2 thread_name metadata + 3 events
		t.Fatalf("traceEvents = %d entries, want 5", len(doc.TraceEvents))
	}
	var meta, complete int
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
			if ev.Name != "thread_name" || ev.Args["name"] == "" {
				t.Errorf("bad metadata event: %+v", ev)
			}
		case "X":
			complete++
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if meta != 2 || complete != 3 {
		t.Errorf("meta=%d complete=%d, want 2 and 3", meta, complete)
	}
}

// TestWriteChromeTraceEmpty: zero tracks must still be a valid document with
// a non-null traceEvents array.
func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if string(doc["traceEvents"]) == "null" {
		t.Error("traceEvents encoded as null")
	}
}
