package obs

import (
	"math"
	"math/bits"
	"sort"
)

// Counter is a monotonically increasing uint64 metric. All methods are
// no-ops on a nil Counter, so components hold handles unconditionally and
// pay only an inlined nil check when observability is disabled.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v++
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Set overwrites the value: the feeding path for components that keep their
// own cheap counters and publish them at snapshot time.
func (c *Counter) Set(v uint64) {
	if c != nil {
		c.v = v
	}
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous float64 metric.
type Gauge struct{ v float64 }

// Set overwrites the value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// HistBuckets is the number of power-of-two histogram buckets: bucket 0
// holds the value 0, bucket i (i >= 1) holds values in [2^(i-1), 2^i - 1],
// and bucket 64 holds [2^63, MaxUint64].
const HistBuckets = 65

// Histogram counts uint64 observations in power-of-two buckets, the usual
// shape for latency-in-cycles distributions.
type Histogram struct {
	buckets [HistBuckets]uint64
	count   uint64
	sum     uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Buckets returns the raw bucket counts.
func (h *Histogram) Buckets() [HistBuckets]uint64 {
	if h == nil {
		return [HistBuckets]uint64{}
	}
	return h.buckets
}

// BucketUpperBound returns the largest value bucket i accepts.
func BucketUpperBound(i int) uint64 {
	switch {
	case i <= 0:
		return 0
	case i >= 64:
		return math.MaxUint64
	default:
		return 1<<uint(i) - 1
	}
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	// Le is the bucket's inclusive upper bound.
	Le uint64 `json:"le"`
	// Count is the number of observations in the bucket.
	Count uint64 `json:"count"`
}

// HistSnapshot is the serialisable state of one histogram.
type HistSnapshot struct {
	Count   uint64        `json:"count"`
	Sum     uint64        `json:"sum"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot returns the histogram's serialisable state, listing only
// non-empty buckets in ascending bound order.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Count: h.count, Sum: h.sum}
	for i, n := range h.buckets {
		if n > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: BucketUpperBound(i), Count: n})
		}
	}
	return s
}

// Registry is the typed metric namespace for one run. Metrics are created
// on first reference and live for the registry's lifetime; Reset zeroes
// their values without dropping registrations. A nil Registry hands out nil
// metric handles, keeping every downstream call a no-op.
//
// Registry is not safe for concurrent use (one registry per run, like the
// simulator components it observes).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it if needed (nil for a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// SetCounter sets the named counter to v: the one-line feeding path for
// components publishing their internal stats at snapshot time.
func (r *Registry) SetCounter(name string, v uint64) { r.Counter(name).Set(v) }

// SetGauge sets the named gauge to v.
func (r *Registry) SetGauge(name string, v float64) { r.Gauge(name).Set(v) }

// Snapshot is a point-in-time copy of every registered metric.
type Snapshot struct {
	Counters   map[string]uint64       `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry's current state. The zero Snapshot is
// returned for a nil registry.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.v
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.v
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			s.Histograms[name] = h.Snapshot()
		}
	}
	return s
}

// CounterNames returns every registered counter name, sorted (for
// deterministic CSV headers and tests).
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes every metric's value, keeping the registrations (and any
// handles components cached).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, c := range r.counters {
		c.v = 0
	}
	for _, g := range r.gauges {
		g.v = 0
	}
	for _, h := range r.hists {
		*h = Histogram{}
	}
}
