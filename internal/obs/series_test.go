package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func samplePoints() []SeriesPoint {
	return []SeriesPoint{
		{Job: "mcf/ptguard", Cycle: 100, Instructions: 50,
			Counters: map[string]uint64{"cpu.instructions": 50, "tlb.misses": 3},
			Gauges:   map[string]float64{"guard.ctb_occupancy": 0.25}},
		{Job: "mcf/ptguard", Cycle: 200, Instructions: 100,
			Counters: map[string]uint64{"cpu.instructions": 100}},
	}
}

func TestWriteSeriesJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesJSONL(&buf, samplePoints()); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines int
	for sc.Scan() {
		lines++
		var p SeriesPoint
		if err := json.Unmarshal(sc.Bytes(), &p); err != nil {
			t.Fatalf("line %d is not a JSON point: %v", lines, err)
		}
		if p.Job != "mcf/ptguard" {
			t.Errorf("line %d job = %q", lines, p.Job)
		}
	}
	if lines != 2 {
		t.Errorf("lines = %d, want 2", lines)
	}
}

func TestWriteSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, samplePoints()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	// Fixed prefix, then the sorted union of counters, then gauges.
	wantHeader := "job,cycle,instructions,cpu.instructions,tlb.misses,guard.ctb_occupancy"
	if lines[0] != wantHeader {
		t.Errorf("header = %q, want %q", lines[0], wantHeader)
	}
	if lines[1] != "mcf/ptguard,100,50,50,3,0.25" {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Missing columns are empty cells, not zeros.
	if lines[2] != "mcf/ptguard,200,100,100,," {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestRunMetricsIncludesSeriesAndTrace(t *testing.T) {
	o := New(Options{SnapshotEvery: 10, TraceCapacity: 4})
	o.Registry().SetCounter("x", 1)
	o.Emit("cat", "ev", 2)
	o.Snapshot(5, 10)

	rm := o.RunMetrics(true)
	if rm.Counters["x"] != 1 {
		t.Errorf("counters = %+v", rm.Counters)
	}
	if len(rm.Series) != 1 {
		t.Errorf("series = %+v", rm.Series)
	}
	if len(rm.Trace) != 1 || rm.Trace[0].Name != "ev" {
		t.Errorf("trace = %+v", rm.Trace)
	}

	// includeTrace=false keeps journals small.
	if rm := o.RunMetrics(false); rm.Trace != nil || rm.Dropped != 0 {
		t.Errorf("trace leaked into slim metrics: %+v", rm)
	}
}
