// Package cache implements the set-associative, write-back, LRU caches of
// the baseline system (Table III): 32 KB 8-way L1s, 256 KB 16-way L2, 2 MB
// 16-way L3, plus the 8 KB 4-way MMU page-walk cache.
package cache

import (
	"fmt"
	"strings"

	"ptguard/internal/obs"
	"ptguard/internal/pte"
)

// Config sizes one cache level.
type Config struct {
	// Name labels the level in stats output, e.g. "L1D".
	Name string
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the associativity.
	Ways int
}

// Table III presets.
var (
	// L1Config is the 32 KB 8-way L1.
	L1Config = Config{Name: "L1", SizeBytes: 32 << 10, Ways: 8}
	// L2Config is the 256 KB 16-way L2.
	L2Config = Config{Name: "L2", SizeBytes: 256 << 10, Ways: 16}
	// L3Config is the 2 MB 16-way LLC.
	L3Config = Config{Name: "L3", SizeBytes: 2 << 20, Ways: 16}
	// MMUConfig is the 8 KB 4-way MMU (page-walk) cache.
	MMUConfig = Config{Name: "MMU", SizeBytes: 8 << 10, Ways: 4}
)

type way struct {
	lineAddr uint64
	valid    bool
	dirty    bool
	lastUse  uint64
}

// Cache is one set-associative level. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	sets  [][]way
	clock uint64

	accesses, hits, misses, evictions, writebacks uint64
}

// New builds a cache; the line size is the system-wide 64 bytes.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache: invalid config %+v", cfg)
	}
	lines := cfg.SizeBytes / pte.LineBytes
	if lines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache: %d lines not divisible by %d ways", lines, cfg.Ways)
	}
	nSets := lines / cfg.Ways
	if nSets == 0 || nSets&(nSets-1) != 0 {
		return nil, fmt.Errorf("cache: set count %d not a power of two", nSets)
	}
	sets := make([][]way, nSets)
	for i := range sets {
		sets[i] = make([]way, cfg.Ways)
	}
	return &Cache{cfg: cfg, sets: sets}, nil
}

// Result describes one access.
type Result struct {
	// Hit reports whether the line was present.
	Hit bool
	// Writeback, when WBValid, is the line address of a dirty victim that
	// must be written to memory.
	Writeback uint64
	// WBValid marks Writeback as meaningful.
	WBValid bool
	// Evicted, when EvValid, is the line address of the victim (clean or
	// dirty) displaced by this access. Callers holding side state keyed by
	// cached addresses (the MMU walkers' entry-value maps) use it to trim
	// that state in lockstep with the cache.
	Evicted uint64
	// EvValid marks Evicted as meaningful.
	EvValid bool
}

// Access looks up addr (installing it on miss) and returns hit/writeback
// information. write marks the line dirty.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.clock++
	c.accesses++
	lineAddr := addr / pte.LineBytes
	set := c.sets[lineAddr%uint64(len(c.sets))]

	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			c.hits++
			set[i].lastUse = c.clock
			if write {
				set[i].dirty = true
			}
			return Result{Hit: true}
		}
	}
	c.misses++

	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	res := Result{}
	if set[victim].valid {
		c.evictions++
		res.Evicted = set[victim].lineAddr * pte.LineBytes
		res.EvValid = true
		if set[victim].dirty {
			c.writebacks++
			res.Writeback = set[victim].lineAddr * pte.LineBytes
			res.WBValid = true
		}
	}
	set[victim] = way{lineAddr: lineAddr, valid: true, dirty: write, lastUse: c.clock}
	return res
}

// Probe reports whether addr is present without disturbing LRU state.
func (c *Cache) Probe(addr uint64) bool {
	lineAddr := addr / pte.LineBytes
	set := c.sets[lineAddr%uint64(len(c.sets))]
	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			return true
		}
	}
	return false
}

// Invalidate drops addr if present, returning a writeback address for a
// dirty line. Used when PT-Guard refuses to forward a faulty PTE line.
func (c *Cache) Invalidate(addr uint64) Result {
	lineAddr := addr / pte.LineBytes
	set := c.sets[lineAddr%uint64(len(c.sets))]
	for i := range set {
		if set[i].valid && set[i].lineAddr == lineAddr {
			res := Result{}
			if set[i].dirty {
				res.Writeback = lineAddr * pte.LineBytes
				res.WBValid = true
			}
			set[i] = way{}
			return res
		}
	}
	return Result{}
}

// Stats summarises cache activity.
type Stats struct {
	Name                   string
	Accesses, Hits, Misses uint64
	Evictions, Writebacks  uint64
}

// Stats returns a snapshot.
func (c *Cache) Stats() Stats {
	return Stats{
		Name:     c.cfg.Name,
		Accesses: c.accesses, Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Writebacks: c.writebacks,
	}
}

// PublishObs feeds the cache counters into the metric registry under
// "cache.<name>." (the obs snapshot path; a nil registry is a no-op).
func (c *Cache) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	p := "cache." + strings.ToLower(c.cfg.Name) + "."
	r.SetCounter(p+"accesses", c.accesses)
	r.SetCounter(p+"hits", c.hits)
	r.SetCounter(p+"misses", c.misses)
	r.SetCounter(p+"evictions", c.evictions)
	r.SetCounter(p+"writebacks", c.writebacks)
}

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for i := range c.sets {
		for j := range c.sets[i] {
			c.sets[i][j] = way{}
		}
	}
	c.clock, c.accesses, c.hits, c.misses, c.evictions, c.writebacks = 0, 0, 0, 0, 0, 0
}

// ResetStats zeroes the counters but keeps cache contents (used after a
// warm-up phase).
func (c *Cache) ResetStats() {
	c.accesses, c.hits, c.misses, c.evictions, c.writebacks = 0, 0, 0, 0, 0
}
