package cache

import (
	"testing"

	"ptguard/internal/pte"
)

func mustCache(tb testing.TB, cfg Config) *Cache {
	tb.Helper()
	c, err := New(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "L1 preset", cfg: L1Config},
		{name: "L2 preset", cfg: L2Config},
		{name: "L3 preset", cfg: L3Config},
		{name: "MMU preset", cfg: MMUConfig},
		{name: "zero size", cfg: Config{Ways: 4}, wantErr: true},
		{name: "zero ways", cfg: Config{SizeBytes: 1024}, wantErr: true},
		{name: "non-pow2 sets", cfg: Config{SizeBytes: 3 * 64 * 4, Ways: 4}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestHitAfterMiss(t *testing.T) {
	c := mustCache(t, L1Config)
	if c.Access(0x1000, false).Hit {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000, false).Hit {
		t.Error("second access missed")
	}
	// Same line, different offset.
	if !c.Access(0x103F, false).Hit {
		t.Error("same-line access missed")
	}
	// Next line misses.
	if c.Access(0x1040, false).Hit {
		t.Error("adjacent line hit")
	}
}

func TestLRUEviction(t *testing.T) {
	// 4-way cache with a single set: 4*64 bytes.
	c := mustCache(t, Config{Name: "tiny", SizeBytes: 4 * 64, Ways: 4})
	for i := 0; i < 4; i++ {
		c.Access(uint64(i)*64, false)
	}
	c.Access(0, false) // refresh line 0
	// Fifth distinct line evicts the LRU: line 1.
	c.Access(4*64, false)
	if !c.Probe(0) {
		t.Error("recently used line evicted")
	}
	if c.Probe(1 * 64) {
		t.Error("LRU line survived")
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	c := mustCache(t, Config{Name: "tiny", SizeBytes: 2 * 64, Ways: 2})
	c.Access(0, true) // dirty
	c.Access(64, false)
	res := c.Access(128, false) // evicts line 0 (dirty)
	if !res.WBValid || res.Writeback != 0 {
		t.Errorf("expected writeback of addr 0, got %+v", res)
	}
	res2 := c.Access(192, false) // evicts line 64 (clean)
	if res2.WBValid {
		t.Errorf("clean eviction produced writeback: %+v", res2)
	}
	s := c.Stats()
	if s.Evictions != 2 || s.Writebacks != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, L1Config)
	c.Access(0x2000, true)
	res := c.Invalidate(0x2000)
	if !res.WBValid || res.Writeback != 0x2000 {
		t.Errorf("dirty invalidate = %+v", res)
	}
	if c.Probe(0x2000) {
		t.Error("line still present after invalidate")
	}
	if c.Invalidate(0x9999000).WBValid {
		t.Error("invalidating absent line produced writeback")
	}
}

func TestStatsAccounting(t *testing.T) {
	c := mustCache(t, L2Config)
	const n = 1000
	for i := 0; i < n; i++ {
		c.Access(uint64(i%100)*pte.LineBytes, false)
	}
	s := c.Stats()
	if s.Accesses != n {
		t.Errorf("accesses = %d, want %d", s.Accesses, n)
	}
	if s.Hits+s.Misses != s.Accesses {
		t.Error("hits + misses != accesses")
	}
	if s.Misses != 100 {
		t.Errorf("misses = %d, want 100 (one cold miss per line)", s.Misses)
	}
	c.Reset()
	if c.Stats().Accesses != 0 || c.Probe(0) {
		t.Error("Reset left residue")
	}
}

func TestWorkingSetLargerThanCacheThrashes(t *testing.T) {
	c := mustCache(t, Config{Name: "tiny", SizeBytes: 8 * 64, Ways: 2})
	// Sequential sweep over 4x the capacity, twice: second pass must
	// still miss everywhere (LRU on a streaming pattern).
	for pass := 0; pass < 2; pass++ {
		for i := 0; i < 32; i++ {
			c.Access(uint64(i)*64, false)
		}
	}
	s := c.Stats()
	if s.Hits != 0 {
		t.Errorf("streaming pattern got %d hits, want 0", s.Hits)
	}
}
