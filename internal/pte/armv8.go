package pte

import "fmt"

// ARMv8 level-3 page descriptor bit layout (Table II).
const (
	ArmBitValid      = 0
	ArmBitBlock      = 1
	ArmBitAccessed   = 10
	ArmBitCaching    = 11
	ArmBitReserved50 = 50
	ArmBitDirty      = 51
	ArmBitContiguous = 52
	ArmBitReserved63 = 63
)

// ARMv8 field masks (Table II). The 40-bit PFN is split: PFN[37:0] lives in
// bits 49:12 and PFN[39:38] in bits 9:8.
const (
	ArmMaskMemAttrs   uint64 = 0xF << 2
	ArmMaskAccessPerm uint64 = 0x3 << 6
	ArmMaskPFNHigh    uint64 = 0x3 << 8
	ArmMaskPFNLow     uint64 = ((1 << 38) - 1) << 12
	ArmMaskXN         uint64 = 0x3 << 53
	ArmMaskIgnored    uint64 = 0xF << 55
	ArmMaskHWAttrs    uint64 = 0xF << 59
)

// ArmEntry is a single 64-bit ARMv8 page descriptor.
type ArmEntry uint64

// Valid reports the valid bit.
func (e ArmEntry) Valid() bool { return e&1 == 1 }

// Accessed reports the access flag.
func (e ArmEntry) Accessed() bool { return e>>ArmBitAccessed&1 == 1 }

// PFN reassembles the 40-bit PFN from its two fields.
func (e ArmEntry) PFN() uint64 {
	low := uint64(e) & ArmMaskPFNLow >> 12
	high := uint64(e) & ArmMaskPFNHigh >> 8
	return high<<38 | low
}

// WithPFN returns a copy of e with both PFN fields replaced.
func (e ArmEntry) WithPFN(pfn uint64) ArmEntry {
	v := uint64(e) &^ (ArmMaskPFNLow | ArmMaskPFNHigh)
	v |= pfn << 12 & ArmMaskPFNLow
	v |= pfn >> 38 << 8 & ArmMaskPFNHigh
	return ArmEntry(v)
}

// FormatARMv8 returns the PT-Guard bit map for ARMv8 descriptors on a
// machine with physAddrBits of physical address (§IV-F notes the principles
// apply to any ISA). With at most 1 TB of memory the PFN needs 28 bits, so
// PFN bits 49:40 and the PFN[39:38] field (bits 9:8) are unused: 12 MAC bits
// per PTE, exactly as on x86_64. The identifier uses the 4 ignored bits
// 58:55 plus the two reserved bits 50 and 63 (48-bit identifier per line).
func FormatARMv8(physAddrBits int) (Format, error) {
	if physAddrBits <= PageShift || physAddrBits > 40 {
		return Format{}, fmt.Errorf("pte: physAddrBits %d outside (12, 40]", physAddrBits)
	}
	usedPFNBits := physAddrBits - PageShift
	if usedPFNBits > 28 {
		// More than 1 TB: fewer than 12 spare bits; PT-Guard targets
		// client systems below this (§I footnote 1).
		return Format{}, fmt.Errorf("pte: ARMv8 format needs <=1 TB, got 2^%d bytes", physAddrBits)
	}
	pfnMask := (uint64(1)<<usedPFNBits - 1) << 12
	// MAC occupies a fixed 12 bits per PTE: PFN bits 49:40 plus the
	// PFN[39:38] field. Bits 39:(12+usedPFNBits), if any, stay ignored
	// zeros, mirroring Table IV's "39:M" row on x86_64.
	macMask := uint64(0x3FF)<<40 | ArmMaskPFNHigh
	flags := uint64(1)<<ArmBitValid | uint64(1)<<ArmBitBlock |
		ArmMaskMemAttrs | ArmMaskAccessPerm | uint64(1)<<ArmBitCaching |
		uint64(1)<<ArmBitDirty | uint64(1)<<ArmBitContiguous |
		ArmMaskXN | ArmMaskHWAttrs
	ident := ArmMaskIgnored | uint64(1)<<ArmBitReserved50 | uint64(1)<<ArmBitReserved63
	return Format{
		Name:           "armv8",
		PhysAddrBits:   physAddrBits,
		ProtectedMask:  flags | pfnMask,
		MACMask:        macMask,
		IdentifierMask: ident,
		PFNMask:        pfnMask,
		FlagsMask:      flags,
		AccessedMask:   1 << ArmBitAccessed,
	}, nil
}
