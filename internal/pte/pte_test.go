package pte

import (
	"testing"
	"testing/quick"
)

func TestEntryBits(t *testing.T) {
	var e Entry
	e = e.SetBit(BitPresent, true).SetBit(BitWritable, true).SetBit(BitUserAccessible, true)
	if !e.Present() || !e.Writable() || !e.UserAccessible() {
		t.Error("flag setters/getters disagree")
	}
	e = e.SetBit(BitWritable, false)
	if e.Writable() {
		t.Error("SetBit(false) did not clear")
	}
	if e.Accessed() || e.Dirty() || e.NoExecute() {
		t.Error("unset flags report true")
	}
}

func TestEntryPFNRoundTrip(t *testing.T) {
	f := func(raw uint64, pfn uint64) bool {
		pfn &= 1<<PFNFieldWidth - 1
		e := Entry(raw).WithPFN(pfn)
		if e.PFN() != pfn {
			return false
		}
		// PFN update must not disturb non-PFN bits.
		return uint64(e)&^MaskPFNField == raw&^MaskPFNField
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntryProtectionKey(t *testing.T) {
	e := Entry(uint64(0xB) << 59)
	if e.ProtectionKey() != 0xB {
		t.Errorf("ProtectionKey = %#x, want 0xB", e.ProtectionKey())
	}
}

func TestLineBytesRoundTrip(t *testing.T) {
	f := func(vals [8]uint64) bool {
		var l Line
		for i, v := range vals {
			l[i] = Entry(v)
		}
		return LineFromBytes(l.Bytes()) == l
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFieldMasksAreDisjoint(t *testing.T) {
	// Table IV partitions the PTE: MAC, identifier and accessed bits are
	// never part of the protected set.
	f, err := FormatX86(40)
	if err != nil {
		t.Fatal(err)
	}
	if f.ProtectedMask&f.MACMask != 0 {
		t.Error("protected and MAC masks overlap")
	}
	if f.ProtectedMask&f.IdentifierMask != 0 {
		t.Error("protected and identifier masks overlap")
	}
	if f.MACMask&f.IdentifierMask != 0 {
		t.Error("MAC and identifier masks overlap")
	}
	if f.ProtectedMask&MaskAccessed != 0 {
		t.Error("accessed bit must not be protected (Table IV)")
	}
}

func TestFormatX86TableIVCounts(t *testing.T) {
	// Paper: with M=40 (1 TB), 12 unused PFN bits per PTE pool into a
	// 96-bit MAC, 7 reserved bits per PTE pool into a 56-bit identifier,
	// and flip-and-check covers (28+16) protected bits per PTE (§VI-D).
	f, err := FormatX86(40)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.MACBitsPerLine(); got != 96 {
		t.Errorf("MAC bits per line = %d, want 96", got)
	}
	if got := f.IdentifierBitsPerLine(); got != 56 {
		t.Errorf("identifier bits per line = %d, want 56", got)
	}
	if got := f.ProtectedBitsPerPTE(); got != 44 {
		t.Errorf("protected bits per PTE = %d, want 44 (28 PFN + 16 flags)", got)
	}
	if got := popcount(f.PFNMask); got != 28 {
		t.Errorf("usable PFN bits = %d, want 28", got)
	}
	if got := popcount(f.FlagsMask); got != 16 {
		t.Errorf("protected flag bits = %d, want 16", got)
	}
}

func TestFormatX86SmallerMemory(t *testing.T) {
	// 16 GB machine: M=34, so the PFN uses 22 bits and bits 39:34 are
	// ignored zeros; the MAC field position is unchanged.
	f, err := FormatX86(34)
	if err != nil {
		t.Fatal(err)
	}
	if got := popcount(f.PFNMask); got != 22 {
		t.Errorf("usable PFN bits = %d, want 22", got)
	}
	if f.MACMask != MaskMAC {
		t.Error("MAC mask must stay at bits 51:40")
	}
	if got := f.ProtectedBitsPerPTE(); got != 38 {
		t.Errorf("protected bits per PTE = %d, want 38 (22 PFN + 16 flags)", got)
	}
}

func TestFormatX86Validation(t *testing.T) {
	for _, bad := range []int{0, 12, 41, -3} {
		if _, err := FormatX86(bad); err == nil {
			t.Errorf("FormatX86(%d) expected error", bad)
		}
	}
}

func TestArmEntryPFNRoundTrip(t *testing.T) {
	f := func(raw uint64, pfn uint64) bool {
		pfn &= 1<<40 - 1
		e := ArmEntry(raw).WithPFN(pfn)
		if e.PFN() != pfn {
			return false
		}
		keep := ^(ArmMaskPFNLow | ArmMaskPFNHigh)
		return uint64(e)&keep == raw&keep
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArmEntrySplitPFNFields(t *testing.T) {
	// PFN[39:38] must land in bits 9:8 (Table II).
	e := ArmEntry(0).WithPFN(0x3 << 38)
	if uint64(e)&ArmMaskPFNHigh>>8 != 0x3 {
		t.Errorf("high PFN bits not in 9:8: %#x", uint64(e))
	}
	if uint64(e)&ArmMaskPFNLow != 0 {
		t.Errorf("low PFN field contaminated: %#x", uint64(e))
	}
}

func TestFormatARMv8Counts(t *testing.T) {
	f, err := FormatARMv8(40)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.MACBitsPerLine(); got != 96 {
		t.Errorf("ARMv8 MAC bits per line = %d, want 96", got)
	}
	if got := f.IdentifierBitsPerLine(); got != 48 {
		t.Errorf("ARMv8 identifier bits per line = %d, want 48", got)
	}
	if f.ProtectedMask&f.MACMask != 0 || f.ProtectedMask&f.IdentifierMask != 0 {
		t.Error("ARMv8 masks overlap")
	}
	if f.ProtectedMask>>ArmBitAccessed&1 != 0 {
		t.Error("ARMv8 accessed bit must not be protected")
	}
}

func TestFormatARMv8Validation(t *testing.T) {
	if _, err := FormatARMv8(41); err == nil {
		t.Error("FormatARMv8(41) expected error (needs <=1TB)")
	}
	if _, err := FormatARMv8(12); err == nil {
		t.Error("FormatARMv8(12) expected error")
	}
}
