package pte

import (
	"bytes"
	"testing"
)

// FuzzLineBytesRoundtrip: decoding any 64-byte memory image and re-encoding
// it must be the identity, and the entry-level view must agree with the
// little-endian byte layout.
func FuzzLineBytesRoundtrip(f *testing.F) {
	f.Add(make([]byte, LineBytes))
	f.Add(bytes.Repeat([]byte{0xFF}, LineBytes))
	seed := make([]byte, LineBytes)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, raw []byte) {
		var img [LineBytes]byte
		copy(img[:], raw) // short inputs zero-pad, long inputs truncate
		line := LineFromBytes(img)
		if got := line.Bytes(); got != img {
			t.Fatalf("roundtrip mismatch:\n in  %x\n out %x", img, got)
		}
		for i, e := range line {
			for b := 0; b < 8; b++ {
				if byte(uint64(e)>>uint(8*b)) != img[i*8+b] {
					t.Fatalf("entry %d byte %d disagrees with image", i, b)
				}
			}
		}
	})
}

// FuzzEntryFieldOps: PFN insertion/extraction and bit set/clear must be
// exact inverses and must not disturb other fields.
func FuzzEntryFieldOps(f *testing.F) {
	f.Add(uint64(0), uint64(0x25), 0)
	f.Add(^uint64(0), uint64(1)<<(PFNFieldWidth-1), BitNX)
	f.Fuzz(func(t *testing.T, raw, pfn uint64, bit int) {
		e := Entry(raw)
		pfn &= 1<<PFNFieldWidth - 1
		withPFN := e.WithPFN(pfn)
		if got := withPFN.PFN(); got != pfn {
			t.Fatalf("WithPFN(%#x).PFN() = %#x", pfn, got)
		}
		if uint64(withPFN)&^MaskPFNField != raw&^MaskPFNField {
			t.Fatalf("WithPFN disturbed non-PFN bits: %#x -> %#x", raw, uint64(withPFN))
		}
		bit &= 63
		if set := e.SetBit(bit, true); !set.Bit(bit) {
			t.Fatalf("SetBit(%d, true) not observable", bit)
		}
		if cleared := e.SetBit(bit, false); cleared.Bit(bit) {
			t.Fatalf("SetBit(%d, false) not observable", bit)
		}
	})
}
