// Package pte models page-table entries and PTE cachelines for the two
// architectures discussed in the paper: x86_64 (Table I) and ARMv8
// (Table II). It also encodes the MAC-protected bit map of Table IV, which
// the PT-Guard mechanism (internal/core) consumes as per-PTE masks.
package pte

import (
	"encoding/binary"
	"fmt"
)

const (
	// LineBytes is the cacheline size: 64 bytes.
	LineBytes = 64
	// PTEsPerLine is the number of 8-byte PTEs per cacheline.
	PTEsPerLine = 8
	// PageShift is log2 of the 4 KB page size used throughout (§III).
	PageShift = 12
	// PageSize is the OS page size in bytes.
	PageSize = 1 << PageShift
	// PFNFieldWidth is the architectural PFN width: 40 bits (4 PB reach).
	PFNFieldWidth = 40
)

// x86_64 PTE bit layout (Table I; PWT/PCD per the Intel SDM).
const (
	BitPresent        = 0
	BitWritable       = 1
	BitUserAccessible = 2
	BitWriteThrough   = 3
	BitCacheDisable   = 4
	BitAccessed       = 5
	BitDirty          = 6
	BitHugePage       = 7
	BitGlobal         = 8
	BitNX             = 63
)

// Field masks for the x86_64 PTE.
const (
	// MaskOSBits covers bits 11:9, usable by the OS.
	MaskOSBits uint64 = 0x7 << 9
	// MaskPFNField covers the architectural PFN field, bits 51:12.
	MaskPFNField uint64 = ((1 << PFNFieldWidth) - 1) << PageShift
	// MaskMAC covers bits 51:40, the 12 unused PFN bits per PTE that hold
	// one eighth of the 96-bit line MAC (Table IV).
	MaskMAC uint64 = 0xFFF << 40
	// MaskIdentifier covers bits 58:52, the 7 reserved bits per PTE that
	// hold one eighth of the 56-bit identifier (§V-A).
	MaskIdentifier uint64 = 0x7F << 52
	// MaskProtKeys covers bits 62:59, the Memory Protection Key domain.
	MaskProtKeys uint64 = 0xF << 59
	// MaskAccessed is the accessed bit, excluded from the MAC because the
	// hardware walker sets it asynchronously (Table IV).
	MaskAccessed uint64 = 1 << BitAccessed
)

// Entry is a single 64-bit x86_64 page-table entry.
type Entry uint64

// Bit reports whether bit n is set.
func (e Entry) Bit(n int) bool { return e>>uint(n)&1 == 1 }

// SetBit returns a copy of e with bit n set to v.
func (e Entry) SetBit(n int, v bool) Entry {
	if v {
		return e | 1<<uint(n)
	}
	return e &^ (1 << uint(n))
}

// Present reports the present bit.
func (e Entry) Present() bool { return e.Bit(BitPresent) }

// Writable reports the writable bit.
func (e Entry) Writable() bool { return e.Bit(BitWritable) }

// UserAccessible reports the user/supervisor bit.
func (e Entry) UserAccessible() bool { return e.Bit(BitUserAccessible) }

// Accessed reports the accessed bit.
func (e Entry) Accessed() bool { return e.Bit(BitAccessed) }

// Dirty reports the dirty bit.
func (e Entry) Dirty() bool { return e.Bit(BitDirty) }

// NoExecute reports the NX bit.
func (e Entry) NoExecute() bool { return e.Bit(BitNX) }

// PFN returns the page frame number stored in bits 51:12.
func (e Entry) PFN() uint64 { return uint64(e) & MaskPFNField >> PageShift }

// WithPFN returns a copy of e with the PFN field replaced.
func (e Entry) WithPFN(pfn uint64) Entry {
	return Entry(uint64(e)&^MaskPFNField | pfn<<PageShift&MaskPFNField)
}

// ProtectionKey returns the MPK domain in bits 62:59.
func (e Entry) ProtectionKey() uint64 { return uint64(e) & MaskProtKeys >> 59 }

// Flags returns the low 12 flag/programmable bits.
func (e Entry) Flags() uint64 { return uint64(e) & 0xFFF }

// String renders the entry for diagnostics.
func (e Entry) String() string {
	return fmt.Sprintf("PTE{pfn=%#x flags=%#03x nx=%t}", e.PFN(), e.Flags(), e.NoExecute())
}

// Line is one 64-byte PTE cacheline: eight 64-bit entries.
type Line [PTEsPerLine]Entry

// LineFromBytes decodes a 64-byte cacheline (little-endian, as in memory).
func LineFromBytes(b [LineBytes]byte) Line {
	var l Line
	for i := range l {
		l[i] = Entry(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return l
}

// Bytes encodes the line to its 64-byte memory image.
func (l Line) Bytes() [LineBytes]byte {
	var b [LineBytes]byte
	for i, e := range l {
		binary.LittleEndian.PutUint64(b[i*8:], uint64(e))
	}
	return b
}

// Format describes, for one architecture and one provisioned physical-memory
// size, which bits of each PTE are protected by the MAC, which hold the MAC,
// and which hold the identifier (Table IV generalised).
type Format struct {
	// Name identifies the architecture, e.g. "x86_64".
	Name string
	// PhysAddrBits is M, the number of bits of the maximum physical
	// address (e.g. 40 for 1 TB, 34 for 16 GB).
	PhysAddrBits int
	// ProtectedMask marks per-PTE bits covered by the MAC computation.
	ProtectedMask uint64
	// MACMask marks per-PTE bits holding 1/8th of the line MAC.
	MACMask uint64
	// IdentifierMask marks per-PTE bits holding 1/8th of the identifier.
	IdentifierMask uint64
	// PFNMask marks the usable PFN bits, (M-1):12 for x86_64.
	PFNMask uint64
	// FlagsMask marks the protected flag bits (used by correction's
	// majority vote, §VI-D step 4).
	FlagsMask uint64
	// AccessedMask marks the hardware-set accessed bit(s), excluded from
	// the MAC (Table IV).
	AccessedMask uint64
}

// FormatX86 returns the x86_64 format of Table IV for a machine whose
// maximum physical address has physAddrBits bits. physAddrBits must lie in
// [PageShift+1, 40]: PT-Guard targets client systems with at most 1 TB of
// DRAM, which leaves the 12 MAC bits per PTE free.
func FormatX86(physAddrBits int) (Format, error) {
	if physAddrBits <= PageShift || physAddrBits > 40 {
		return Format{}, fmt.Errorf("pte: physAddrBits %d outside (12, 40]", physAddrBits)
	}
	pfnMask := (uint64(1)<<(physAddrBits-PageShift) - 1) << PageShift
	// Flags 8:0 except accessed, plus OS bits 11:9 (Table IV rows 1-2),
	// plus protection keys and NX (row 6).
	flags := uint64(0x1FF)&^MaskAccessed | MaskOSBits
	high := MaskProtKeys | 1<<BitNX
	return Format{
		Name:           "x86_64",
		PhysAddrBits:   physAddrBits,
		ProtectedMask:  flags | pfnMask | high,
		MACMask:        MaskMAC,
		IdentifierMask: MaskIdentifier,
		PFNMask:        pfnMask,
		FlagsMask:      flags | high,
		AccessedMask:   MaskAccessed,
	}, nil
}

// MACBitsPerLine returns the MAC capacity of a line under f (96 for x86_64).
func (f Format) MACBitsPerLine() int { return popcount(f.MACMask) * PTEsPerLine }

// IdentifierBitsPerLine returns the identifier capacity (56 for x86_64).
func (f Format) IdentifierBitsPerLine() int { return popcount(f.IdentifierMask) * PTEsPerLine }

// ProtectedBitsPerPTE returns the number of MAC-covered bits per PTE
// (44 for x86_64 with M=40: 28 PFN + 16 flag bits, §VI-D step 2).
func (f Format) ProtectedBitsPerPTE() int { return popcount(f.ProtectedMask) }

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}
