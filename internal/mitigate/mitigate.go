// Package mitigate is the in-DRAM Rowhammer mitigation zoo: a controller
// plugin interface (modeled on Ramulator2's IControllerPlugin and the
// DRAMsim3 Graphene counter) with a registry, real tracker implementations
// — TRR sampler, SoftTRR, Graphene (Misra-Gries), PARA, and a per-row
// oracle — and a refresh-budget model that charges every mitigative
// refresh against a per-tREFI budget.
//
// The package is deliberately free of DRAM-device dependencies: a tracker
// sees the activation stream as (bank, row) pairs and answers with the
// rows it wants refreshed. The physics — charge loss, the outward
// disturbance of a mitigative refresh (the Half-Double lever), flip
// injection — live in internal/dram's MitigatedHammerer, which drives any
// Mitigator from this registry. That split lets internal/dram's TRR and
// SoftTRR delegate their tracking decisions here without an import cycle.
package mitigate

import (
	"errors"
	"fmt"
)

// Mitigator is the controller-plugin interface: the memory controller
// calls OnActivate for every row activation it issues, and the tracker
// answers with the victim rows it wants refreshed right now (nil for
// none). Implementations must be deterministic functions of the
// activation stream and their Config (PARA derives its randomness from
// Config.Seed and the refresh-window index).
//
// Mitigators are not safe for concurrent use: one instance per simulated
// channel, like the device they watch.
type Mitigator interface {
	// Name identifies the plugin in reports and campaign job keys.
	Name() string
	// OnActivate observes one activation of (bank, row) and returns the
	// rows (same bank) to refresh in response. The returned slice is
	// only valid until the next call into the mitigator (trackers reuse
	// a scratch buffer); callers must copy it if they queue refreshes.
	OnActivate(bank, row int) []int
	// OnRefreshWindow marks a tREFW boundary: per-window tracker state
	// (counter tables, sampler slots) resets.
	OnRefreshWindow()
	// Stats snapshots the tracker counters.
	Stats() Stats
}

// RefreshObserver is the optional interface for trackers that also see
// the activations caused by mitigative refreshes themselves. A refresh
// is a row activation of the refreshed row, which is exactly how
// Half-Double pushes disturbance to distance 2: distance-1 trackers
// (TRR, SoftTRR, Graphene, PARA) are blind to it and get defeated; the
// oracle implements this and follows the disturbance outward.
type RefreshObserver interface {
	// OnMitigativeRefresh observes the activation caused by refreshing
	// (bank, row) and may cascade further refreshes.
	OnMitigativeRefresh(bank, row int) []int
}

// RowRegistrar is the optional interface for trackers that protect only
// an explicitly registered row set (SoftTRR watches just the rows the
// kernel placed page tables in).
type RowRegistrar interface {
	// RegisterRow marks (bank, row) as protected.
	RegisterRow(bank, row int)
}

// Stats are the tracker counters every plugin reports. All fields are
// cumulative across refresh windows.
type Stats struct {
	// Refreshes is the number of mitigative refreshes the tracker asked
	// for (before any budget drop).
	Refreshes uint64
	// TrackedRows is the current number of occupied tracker entries.
	TrackedRows int
	// SamplerMisses counts activations the tracker could not attribute
	// to an entry because its table was full (TRR sampler evasion).
	SamplerMisses uint64
	// Evictions counts tracker entries displaced by the replacement
	// policy (Graphene's Misra-Gries spillover swap).
	Evictions uint64
	// WindowResets counts OnRefreshWindow calls.
	WindowResets uint64
}

// Config parameterises tracker construction. Zero values select
// per-tracker defaults documented on each constructor.
type Config struct {
	// Banks and RowsPerBank bound the row index space (used for
	// neighbour clamping and SoftTRR's registered-row bitset).
	Banks, RowsPerBank int
	// Threshold is the activation count at which the tracker mitigates
	// (the sampler threshold for TRR/SoftTRR, the Misra-Gries detection
	// threshold for Graphene, the per-row trip count for the oracle).
	Threshold int
	// TableSize bounds tracker state: sampler entries per bank for TRR,
	// Misra-Gries entries per bank for Graphene. Zero selects defaults.
	TableSize int
	// Prob is PARA's per-side refresh probability per activation.
	Prob float64
	// Seed feeds PARA's per-window derived RNG.
	Seed uint64
}

// validate checks the fields every tracker relies on.
func (c Config) validate() error {
	if c.Banks <= 0 || c.RowsPerBank <= 0 {
		return errors.New("mitigate: config needs positive Banks and RowsPerBank")
	}
	return nil
}

// ValidateThreshold is the shared sampler/threshold check that used to be
// copy-pasted between dram.TRR and dram.SoftTRR: a mitigation threshold
// must be positive to mean anything.
func ValidateThreshold(threshold int) error {
	if threshold <= 0 {
		return errors.New("mitigate: sampler threshold must be positive")
	}
	return nil
}

// Neighbours appends the in-range distance-1 neighbours of row to dst and
// returns it — the shared neighbour-refresh enumeration both TRR-style
// trackers and the dram engine use. The -1 neighbour precedes +1, the
// order the legacy TRR/SoftTRR loops used; equivalence tests pin it.
func Neighbours(dst []int, row, rowsPerBank int) []int {
	for _, d := range [2]int{-1, +1} {
		if v := row + d; v >= 0 && v < rowsPerBank {
			dst = append(dst, v)
		}
	}
	return dst
}

// Factory builds a tracker from a Config.
type Factory func(Config) (Mitigator, error)

// registry maps plugin names to factories. Registration happens in init
// functions, so Names is stable for the process lifetime.
var registry = map[string]Factory{}

// Register adds a plugin factory under name. It panics on duplicates:
// registration is an init-time programming act, not a runtime input.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("mitigate: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("mitigate: duplicate plugin %q", name))
	}
	registry[name] = f
}

// New builds the named plugin. The error lists the registered names so
// CLI flag messages stay self-documenting.
func New(name string, cfg Config) (Mitigator, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("mitigate: unknown mitigation %q (registered: %v)", name, Names())
	}
	return f(cfg)
}

// Names returns the registered plugin names, sorted.
func Names() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sortStrings(names)
	return names
}

// sortStrings is an allocation-free insertion sort: the registry holds a
// handful of names and this avoids importing sort just for them.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// None is the no-op mitigator: an unprotected device.
type None struct{ windows uint64 }

func init() {
	Register("none", func(Config) (Mitigator, error) { return &None{}, nil })
}

// Name implements Mitigator.
func (n *None) Name() string { return "none" }

// OnActivate implements Mitigator: it never refreshes.
func (n *None) OnActivate(bank, row int) []int { return nil }

// OnRefreshWindow implements Mitigator.
func (n *None) OnRefreshWindow() { n.windows++ }

// Stats implements Mitigator.
func (n *None) Stats() Stats { return Stats{WindowResets: n.windows} }
