package mitigate

import "testing"

// FuzzMisraGries drives one Graphene bank table with an arbitrary
// activation stream (plus interleaved per-row resets and window resets
// decoded from the same bytes) and checks the Misra-Gries invariants
// after every step:
//
//   - the table never exceeds its capacity;
//   - every tracked count stays non-negative and at least the spillover
//     counter bounds the error: a tracked row's estimate never falls
//     below 0 or sits below a just-swapped-in spillover value;
//   - the spillover counter never decreases except via the swap (where
//     it inherits the evicted minimum, which the swap guarantees is
//     smaller), and never goes negative;
//   - Observe for a tracked row increments exactly that row's count.
func FuzzMisraGries(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4))
	f.Add([]byte{0, 0, 0, 0, 0xFF, 0xFF, 0x10, 0x20, 0x30, 0x40}, uint8(2))
	f.Add([]byte{9}, uint8(1))
	f.Fuzz(func(t *testing.T, stream []byte, capByte uint8) {
		capacity := int(capByte%8) + 1
		tb := newMGTable(capacity)

		for i, b := range stream {
			row := int(b % 64)
			switch {
			case b >= 0xF8: // rare: full window reset
				tb = newMGTable(capacity)

				continue
			case b >= 0xF0: // rare: mitigation reset of a tracked row
				tb.Reset(row)
			default:
				before, tracked := tb.counts[row]
				n, evicted := tb.Observe(row)
				if tracked && n != before+1 {
					t.Fatalf("step %d: tracked row %d went %d -> %d, want +1", i, row, before, n)
				}
				if evicted && n != tb.counts[row] {
					t.Fatalf("step %d: eviction returned %d but table holds %d", i, n, tb.counts[row])
				}
			}
			if len(tb.counts) > capacity {
				t.Fatalf("step %d: table size %d exceeds capacity %d", i, len(tb.counts), capacity)
			}
			if tb.spillover < 0 {
				t.Fatalf("step %d: negative spillover %d", i, tb.spillover)
			}
			// Spillover may only shrink via the swap, which sets it to
			// the evicted minimum — and that minimum was < the old
			// spillover, so it can drop by at most (spillover - min).
			// It must never exceed every tracked count when the table
			// is full (otherwise a swap was missed).
			if len(tb.counts) == capacity {
				_, minCount := tb.min()
				if tb.spillover > minCount {
					t.Fatalf("step %d: spillover %d exceeds min tracked count %d (missed swap)",
						i, tb.spillover, minCount)
				}
			}
			for row, n := range tb.counts {
				if n < 0 {
					t.Fatalf("step %d: row %d has negative count %d", i, row, n)
				}
			}

		}
	})
}
