package mitigate

// Graphene implements the Misra-Gries frequent-element tracker of Park et
// al. (MICRO'20), per bank: a bounded counter table plus one spillover
// counter. Every activation either increments its row's entry, claims a
// free entry, or bumps the spillover counter — and when the spillover
// counter overtakes the smallest table entry, that entry's row is evicted
// and the new row takes its place with the spillover count (the classic
// Misra-Gries swap, cf. the DRAMsim3 Graphene counter). Any row whose
// true activation count exceeds spillover+Threshold is therefore
// guaranteed to be in the table and to trip the threshold: unlike the
// TRR sampler there is no capacity evasion, only budget exhaustion.
type Graphene struct {
	cfg     Config
	stats   Stats
	banks   map[int]*mgTable
	scratch []int
}

// DefaultGrapheneEntries is the per-bank Misra-Gries table size when
// Config.TableSize is zero. Graphene sizes its table as W/T+1 entries
// (W = activations per window, T = detection threshold); 64 comfortably
// covers the scaled-down campaign windows.
const DefaultGrapheneEntries = 64

func init() {
	Register("graphene", func(cfg Config) (Mitigator, error) { return NewGraphene(cfg) })
}

// NewGraphene builds the Misra-Gries tracker.
func NewGraphene(cfg Config) (*Graphene, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ValidateThreshold(cfg.Threshold); err != nil {
		return nil, err
	}
	if cfg.TableSize == 0 {
		cfg.TableSize = DefaultGrapheneEntries
	}
	return &Graphene{cfg: cfg, banks: make(map[int]*mgTable)}, nil
}

// Name implements Mitigator.
func (g *Graphene) Name() string { return "graphene" }

// OnActivate implements Mitigator: update the bank's Misra-Gries table
// and, if the activated row's estimated count crosses the threshold,
// refresh its neighbours and zero the entry.
func (g *Graphene) OnActivate(bank, row int) []int {
	t := g.banks[bank]
	if t == nil {
		t = newMGTable(g.cfg.TableSize)
		g.banks[bank] = t
	}
	n, evicted := t.Observe(row)
	if evicted {
		g.stats.Evictions++
	}
	if n < g.cfg.Threshold {
		return nil
	}
	t.Reset(row)
	g.scratch = Neighbours(g.scratch[:0], row, g.cfg.RowsPerBank)
	g.stats.Refreshes += uint64(len(g.scratch))
	return g.scratch
}

// OnRefreshWindow implements Mitigator: counter tables and spillover
// reset with the device refresh, Graphene's per-tREFW reset.
func (g *Graphene) OnRefreshWindow() {
	for bank := range g.banks {
		delete(g.banks, bank)
	}
	g.stats.TrackedRows = 0
	g.stats.WindowResets++
}

// Stats implements Mitigator.
func (g *Graphene) Stats() Stats {
	tracked := 0
	for _, t := range g.banks {
		tracked += len(t.counts)
	}
	g.stats.TrackedRows = tracked
	return g.stats
}

// mgTable is one bank's Misra-Gries state: bounded row->count map plus
// the spillover counter.
type mgTable struct {
	capacity  int
	counts    map[int]int
	spillover int
}

func newMGTable(capacity int) *mgTable {
	return &mgTable{capacity: capacity, counts: make(map[int]int, capacity)}
}

// Observe records one activation of row and returns the row's estimated
// count afterwards (0 if untracked) and whether another row was evicted.
func (t *mgTable) Observe(row int) (count int, evicted bool) {
	if n, ok := t.counts[row]; ok {
		t.counts[row] = n + 1
		return n + 1, false
	}
	if len(t.counts) < t.capacity {
		t.counts[row] = t.spillover + 1
		return t.spillover + 1, false
	}
	t.spillover++
	minRow, minCount := t.min()
	if t.spillover <= minCount {
		// The newcomer's upper bound is still below every entry: it
		// stays summarised in the spillover counter.
		return 0, false
	}
	// Misra-Gries swap: the smallest entry's row falls back into the
	// spillover pool and the newcomer inherits the spillover estimate.
	delete(t.counts, minRow)
	t.counts[row] = t.spillover
	t.spillover = minCount
	return t.counts[row], true
}

// Reset returns the entry for row to the spillover baseline after its
// neighbours were refreshed. Graphene resets a mitigated row's counter to
// the spillover count rather than zero (Park et al. §IV): dropping below
// the spillover would break the Misra-Gries bound that every tracked
// count dominates the summarised pool.
func (t *mgTable) Reset(row int) {
	if _, ok := t.counts[row]; ok {
		t.counts[row] = t.spillover
	}
}

// min returns the entry with the smallest count, ties broken by the
// smallest row number so eviction order never depends on map iteration.
func (t *mgTable) min() (minRow, minCount int) {
	first := true
	for row, n := range t.counts {
		if first || n < minCount || (n == minCount && row < minRow) {
			minRow, minCount, first = row, n, false
		}
	}
	return minRow, minCount
}
