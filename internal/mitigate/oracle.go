package mitigate

// Oracle is the upper-bound defense (cf. Ramulator2's OracleRH plugin):
// an exact activation counter per row, with no capacity limit and — the
// decisive part — visibility into the activations caused by mitigative
// refreshes themselves (it implements RefreshObserver). When any row's
// count reaches the threshold its neighbours are refreshed and the count
// clears; because refresh-activations are counted too, the oracle follows
// Half-Double's disturbance chain outward and refreshes distance-2 (and
// further) victims before they ever accumulate a flip threshold's worth
// of disturbance. As long as Threshold is below the device flip
// threshold, no row above threshold is ever missed.
type Oracle struct {
	cfg     Config
	stats   Stats
	counts  map[int]int32
	scratch []int
}

func init() {
	Register("oracle", func(cfg Config) (Mitigator, error) { return NewOracle(cfg) })
}

// NewOracle builds the per-row exact counter.
func NewOracle(cfg Config) (*Oracle, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ValidateThreshold(cfg.Threshold); err != nil {
		return nil, err
	}
	return &Oracle{cfg: cfg, counts: make(map[int]int32)}, nil
}

// Name implements Mitigator.
func (o *Oracle) Name() string { return "oracle" }

// observe is the single counting path for regular and refresh-induced
// activations.
func (o *Oracle) observe(bank, row int) []int {
	key := bank*o.cfg.RowsPerBank + row
	n := o.counts[key] + 1
	if int(n) < o.cfg.Threshold {
		o.counts[key] = n
		return nil
	}
	o.counts[key] = 0
	o.scratch = Neighbours(o.scratch[:0], row, o.cfg.RowsPerBank)
	o.stats.Refreshes += uint64(len(o.scratch))
	return o.scratch
}

// OnActivate implements Mitigator.
func (o *Oracle) OnActivate(bank, row int) []int { return o.observe(bank, row) }

// OnMitigativeRefresh implements RefreshObserver: a refresh activates the
// refreshed row, and the oracle counts it like any other activation —
// cascading refreshes outward when a refresh-heavy row itself crosses
// the threshold.
func (o *Oracle) OnMitigativeRefresh(bank, row int) []int { return o.observe(bank, row) }

// OnRefreshWindow implements Mitigator: the device refresh restores every
// row's charge, so the exact counters clear.
func (o *Oracle) OnRefreshWindow() {
	for k := range o.counts {
		delete(o.counts, k)
	}
	o.stats.WindowResets++
}

// Stats implements Mitigator.
func (o *Oracle) Stats() Stats {
	o.stats.TrackedRows = len(o.counts)
	return o.stats
}
