package mitigate

import (
	"fmt"

	"ptguard/internal/stats"
)

// PARA is Kim et al.'s stateless probabilistic mitigation: every
// activation refreshes each distance-1 neighbour with a small independent
// probability p. No tracker state means no table to overflow — many-sided
// patterns gain nothing — but protection is only statistical, and like
// every distance-1 scheme it never watches the activations its own
// refreshes cause, so sustained Half-Double pressure still reaches
// distance 2.
//
// Determinism: the RNG is reseeded at every refresh-window boundary from
// stats.DeriveSeed(Config.Seed, window index), so a PARA run is a pure
// function of (seed, activation stream) regardless of how many windows
// elapsed or what other components drew randomness.
type PARA struct {
	cfg     Config
	stats   Stats
	rng     *stats.RNG
	window  uint64
	scratch []int
}

// DefaultPARAProb is the per-side refresh probability when Config.Prob is
// zero. Real PARA uses ~0.001; the scaled-down campaign thresholds
// (hundreds, not thousands, of activations) need a proportionally higher
// rate for the same expected protection.
const DefaultPARAProb = 1.0 / 64

func init() {
	Register("para", func(cfg Config) (Mitigator, error) { return NewPARA(cfg) })
}

// NewPARA builds the probabilistic mitigator.
func NewPARA(cfg Config) (*PARA, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Prob == 0 {
		cfg.Prob = DefaultPARAProb
	}
	if cfg.Prob < 0 || cfg.Prob > 1 {
		return nil, fmt.Errorf("mitigate: PARA probability %v outside [0, 1]", cfg.Prob)
	}
	p := &PARA{cfg: cfg}
	p.reseed()
	return p, nil
}

// reseed derives the current window's RNG.
func (p *PARA) reseed() {
	p.rng = stats.NewRNG(stats.DeriveSeed(p.cfg.Seed, fmt.Sprintf("para/window/%d", p.window)))
}

// Name implements Mitigator.
func (p *PARA) Name() string { return "para" }

// OnActivate implements Mitigator: each in-range neighbour is refreshed
// with probability Prob. The Bernoulli draw happens for every neighbour
// on every activation (in -1, +1 order), so the consumed RNG stream — and
// with it the whole run — is reproducible.
func (p *PARA) OnActivate(bank, row int) []int {
	var nb [2]int
	p.scratch = p.scratch[:0]
	for _, v := range Neighbours(nb[:0], row, p.cfg.RowsPerBank) {
		if p.rng.Bernoulli(p.cfg.Prob) {
			p.scratch = append(p.scratch, v)
		}
	}
	p.stats.Refreshes += uint64(len(p.scratch))
	return p.scratch
}

// OnRefreshWindow implements Mitigator: PARA has no state to reset, but
// the RNG moves to the next window's derived stream.
func (p *PARA) OnRefreshWindow() {
	p.window++
	p.reseed()
	p.stats.WindowResets++
}

// Stats implements Mitigator.
func (p *PARA) Stats() Stats { return p.stats }
