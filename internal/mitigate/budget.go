package mitigate

import "errors"

// Budget models the refresh bandwidth a memory controller can actually
// spend on mitigation: real devices squeeze victim-row refreshes into
// the slack around regular tREFI refreshes, so only a handful fit per
// interval. Every mitigative refresh is charged against the current
// interval's allowance; when the allowance is exhausted the refresh is
// dropped — the tracker asked for protection the controller could not
// deliver (starvation), which is how aggressive many-sided patterns
// overwhelm even a perfect tracker.
//
// Time is measured in activations: an interval elapses every WindowActs
// activations and the allowance resets to PerWindow (unused slots do not
// accumulate — refresh slack is use-it-or-lose-it).
//
// All methods are nil-safe: a nil *Budget is the unlimited-bandwidth
// default and always admits the refresh.
type Budget struct {
	perWindow  int
	windowActs int

	available int
	acts      int

	issued, dropped uint64
	windows         uint64
	starvedWindows  uint64
	droppedThisWin  bool
}

// NewBudget builds a budget granting perWindow mitigative refreshes per
// windowActs activations.
func NewBudget(perWindow, windowActs int) (*Budget, error) {
	if perWindow <= 0 || windowActs <= 0 {
		return nil, errors.New("mitigate: budget needs positive per-window allowance and window length")
	}
	return &Budget{perWindow: perWindow, windowActs: windowActs, available: perWindow}, nil
}

// Tick advances time by one activation, rolling the interval over when
// WindowActs have elapsed.
func (b *Budget) Tick() {
	if b == nil {
		return
	}
	b.acts++
	if b.acts < b.windowActs {
		return
	}
	b.acts = 0
	b.available = b.perWindow
	b.windows++
	if b.droppedThisWin {
		b.starvedWindows++
		b.droppedThisWin = false
	}
}

// TryConsume charges one mitigative refresh against the current interval,
// reporting whether the controller had a slot for it. A dropped refresh
// marks the interval starved.
func (b *Budget) TryConsume() bool {
	if b == nil {
		return true
	}
	if b.available <= 0 {
		b.dropped++
		b.droppedThisWin = true
		return false
	}
	b.available--
	b.issued++
	return true
}

// BudgetStats snapshots the budget counters.
type BudgetStats struct {
	// Issued is the number of refreshes that fit in the budget.
	Issued uint64
	// Dropped is the number of refreshes that found no slot.
	Dropped uint64
	// Windows is the number of completed tREFI intervals.
	Windows uint64
	// StarvedWindows is the number of completed intervals in which at
	// least one refresh was dropped.
	StarvedWindows uint64
}

// Stats returns the budget counters (zero for a nil budget). The interval
// in flight is included in the starvation count so short runs that never
// complete a window still report their drops.
func (b *Budget) Stats() BudgetStats {
	if b == nil {
		return BudgetStats{}
	}
	s := BudgetStats{Issued: b.issued, Dropped: b.dropped, Windows: b.windows, StarvedWindows: b.starvedWindows}
	if b.droppedThisWin {
		s.StarvedWindows++
	}
	return s
}
