package mitigate

import (
	"reflect"
	"testing"
)

func testConfig() Config {
	return Config{Banks: 16, RowsPerBank: 1 << 15, Threshold: 32}
}

func TestRegistryNamesAndConstruction(t *testing.T) {
	want := []string{"graphene", "none", "oracle", "para", "softtrr", "trr"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		m, err := New(name, testConfig())
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := New("bogus", testConfig()); err == nil {
		t.Error("unknown mitigation accepted")
	}
}

func TestConfigValidation(t *testing.T) {
	for _, name := range []string{"trr", "softtrr", "graphene", "oracle"} {
		if _, err := New(name, Config{Banks: 16, RowsPerBank: 64, Threshold: 0}); err == nil {
			t.Errorf("%s accepted zero threshold", name)
		}
		if _, err := New(name, Config{Threshold: 10}); err == nil {
			t.Errorf("%s accepted zero geometry", name)
		}
	}
	if _, err := New("para", Config{Banks: 1, RowsPerBank: 64, Prob: 1.5}); err == nil {
		t.Error("para accepted probability > 1")
	}
}

func TestNeighboursClampsToBank(t *testing.T) {
	cases := []struct {
		row  int
		want []int
	}{
		{0, []int{1}},
		{1, []int{0, 2}},
		{63, []int{62}},
		{10, []int{9, 11}},
	}
	for _, tc := range cases {
		if got := Neighbours(nil, tc.row, 64); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Neighbours(%d) = %v, want %v", tc.row, got, tc.want)
		}
	}
}

// drive feeds a run of activations of one row and returns every refresh
// the tracker asked for, flattened.
func drive(m Mitigator, bank, row, acts int) []int {
	var out []int
	for i := 0; i < acts; i++ {
		out = append(out, m.OnActivate(bank, row)...)
	}
	return out
}

func TestTRRSamplerThresholdAndCapacity(t *testing.T) {
	cfg := Config{Banks: 2, RowsPerBank: 1024, Threshold: 10, TableSize: 2}
	m, err := NewTRRSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Captured rows mitigate every Threshold activations.
	if got := drive(m, 0, 100, 9); got != nil {
		t.Fatalf("refresh before threshold: %v", got)
	}
	if got := m.OnActivate(0, 100); !reflect.DeepEqual(got, []int{99, 101}) {
		t.Fatalf("10th activation refreshed %v, want [99 101]", got)
	}
	// Fill the second slot, then a third row must slip past unsampled.
	drive(m, 0, 200, 1)
	if got := drive(m, 0, 300, 50); got != nil {
		t.Fatalf("untracked row was mitigated: %v", got)
	}
	if s := m.Stats(); s.SamplerMisses != 50 {
		t.Errorf("SamplerMisses = %d, want 50", s.SamplerMisses)
	}
	// Other banks have their own tables.
	if got := drive(m, 1, 300, 10); !reflect.DeepEqual(got, []int{299, 301}) {
		t.Errorf("fresh bank did not track: %v", got)
	}
	// Window reset frees every slot.
	m.OnRefreshWindow()
	if got := drive(m, 0, 300, 10); !reflect.DeepEqual(got, []int{299, 301}) {
		t.Errorf("row still untracked after window reset: %v", got)
	}
}

func TestGrapheneSpilloverEvictionOrder(t *testing.T) {
	// Table of 2: rows 10 and 20 claim entries; spillover traffic from
	// rows 30..32 must first displace the *smaller* entry (row 20), and
	// ties must break toward the smaller row number.
	g, err := NewGraphene(Config{Banks: 1, RowsPerBank: 1024, Threshold: 100, TableSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	drive(g, 0, 10, 5) // table: 10->5
	drive(g, 0, 20, 2) // table: 10->5, 20->2
	// Two spillover activations: spillover reaches 2 == min entry, no
	// eviction yet.
	drive(g, 0, 30, 1)
	drive(g, 0, 31, 1)
	if s := g.Stats(); s.Evictions != 0 {
		t.Fatalf("premature eviction: %+v", s)
	}
	// Third spillover activation pushes spillover to 3 > 2: row 20 (the
	// min) is evicted, row 32 inherits the spillover estimate.
	drive(g, 0, 32, 1)
	s := g.Stats()
	if s.Evictions != 1 {
		t.Fatalf("Evictions = %d, want 1", s.Evictions)
	}
	// Row 20 must now be untracked (re-observing it goes to spillover);
	// row 32 must be tracked with count 3 (2 more to reach 5 -> still
	// below threshold, but incrementing works).
	tb := g.banks[0]
	if _, ok := tb.counts[20]; ok {
		t.Error("evicted row 20 still tracked")
	}
	if n := tb.counts[32]; n != 3 {
		t.Errorf("newcomer count = %d, want 3 (inherited spillover)", n)
	}
	if tb.spillover != 2 {
		t.Errorf("spillover = %d, want 2 (old min count)", tb.spillover)
	}
	// Tie-break determinism: equal-count entries evict the smaller row.
	g2, _ := NewGraphene(Config{Banks: 1, RowsPerBank: 1024, Threshold: 100, TableSize: 2})
	drive(g2, 0, 40, 1) // 40->1
	drive(g2, 0, 50, 1) // 50->1
	drive(g2, 0, 60, 2) // spillover 2 > 1: evict row 40 (smaller of the tie)
	tb2 := g2.banks[0]
	if _, ok := tb2.counts[40]; ok {
		t.Error("tie-break evicted the wrong row (40 survived)")
	}
	if _, ok := tb2.counts[50]; !ok {
		t.Error("tie-break evicted the wrong row (50 gone)")
	}
}

func TestGrapheneCatchesHeavyHitterDespiteNoise(t *testing.T) {
	// The Misra-Gries guarantee: a row activated more than
	// spillover+Threshold times is always detected, however much decoy
	// traffic tries to crowd it out. 8 decoys against a 4-entry table.
	g, err := NewGraphene(Config{Banks: 1, RowsPerBank: 1 << 15, Threshold: 64, TableSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	heavy := 500
	decoys := []int{100, 150, 200, 250, 300, 350, 400, 450}
	refreshed := false
	for i := 0; i < 64*12; i++ {
		if got := g.OnActivate(0, heavy); len(got) > 0 {
			refreshed = true
			break
		}
		if got := g.OnActivate(0, decoys[i%len(decoys)]); len(got) > 0 {
			// Decoy mitigations are fine; they just cost refreshes.
			continue
		}
	}
	if !refreshed {
		t.Error("heavy hitter was never mitigated despite decoy pressure")
	}
}

func TestPARADeterministicAtFixedSeed(t *testing.T) {
	run := func() []int {
		p, err := NewPARA(Config{Banks: 1, RowsPerBank: 1 << 15, Prob: 1.0 / 8, Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		var out []int
		for i := 0; i < 2000; i++ {
			out = append(out, p.OnActivate(0, 500)...)
			if i%512 == 511 {
				p.OnRefreshWindow()
			}
		}
		return out
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PARA not deterministic at fixed seed")
	}
	if len(a) == 0 {
		t.Fatal("PARA never refreshed at p=1/8 over 2000 activations")
	}
	// A different seed must give a different refresh schedule.
	p2, _ := NewPARA(Config{Banks: 1, RowsPerBank: 1 << 15, Prob: 1.0 / 8, Seed: 99})
	var c []int
	for i := 0; i < 2000; i++ {
		c = append(c, p2.OnActivate(0, 500)...)
		if i%512 == 511 {
			p2.OnRefreshWindow()
		}
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical PARA schedules")
	}
}

func TestOracleNeverMissesAboveThreshold(t *testing.T) {
	// Under any interleaving of activations, no row may accumulate
	// Threshold activations (regular or refresh-induced) without the
	// oracle refreshing its neighbours.
	const threshold = 16
	o, err := NewOracle(Config{Banks: 1, RowsPerBank: 4096, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	// Shadow exact counts, resetting on mitigation like the oracle does.
	shadow := map[int]int{}
	observe := func(row int, refreshes []int) {
		shadow[row]++
		if len(refreshes) > 0 {
			shadow[row] = 0
		}
		if shadow[row] >= threshold {
			t.Fatalf("row %d reached %d activations unmitigated", row, shadow[row])
		}
	}
	rows := []int{100, 101, 102, 200, 300, 301}
	for i := 0; i < 10000; i++ {
		row := rows[i%len(rows)]
		refreshes := o.OnActivate(0, row)
		observe(row, refreshes)
		// Feed refresh-activations back, like the engine does.
		for _, v := range append([]int(nil), refreshes...) {
			observe(v, o.OnMitigativeRefresh(0, v))
		}
	}
	if o.Stats().Refreshes == 0 {
		t.Error("oracle never refreshed")
	}
}

func TestBudgetChargesAndStarves(t *testing.T) {
	b, err := NewBudget(2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBudget(0, 10); err == nil {
		t.Error("zero allowance accepted")
	}
	// Two slots per 10-activation window.
	for i := 0; i < 2; i++ {
		if !b.TryConsume() {
			t.Fatalf("slot %d rejected with budget available", i)
		}
	}
	if b.TryConsume() {
		t.Fatal("third refresh admitted over budget")
	}
	for i := 0; i < 10; i++ {
		b.Tick()
	}
	if !b.TryConsume() {
		t.Fatal("window rollover did not replenish")
	}
	s := b.Stats()
	if s.Issued != 3 || s.Dropped != 1 || s.Windows != 1 || s.StarvedWindows != 1 {
		t.Errorf("stats = %+v, want issued 3 dropped 1 windows 1 starved 1", s)
	}
	// Nil budget is the unlimited default.
	var nb *Budget
	nb.Tick()
	if !nb.TryConsume() {
		t.Error("nil budget rejected a refresh")
	}
	if nb.Stats() != (BudgetStats{}) {
		t.Error("nil budget has nonzero stats")
	}
}

func TestSoftTRRRefreshesOnlyRegisteredRows(t *testing.T) {
	s, err := NewSoftTRR(Config{Banks: 2, RowsPerBank: 1024, Threshold: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.RegisterRow(0, 99)
	if got := drive(s, 0, 100, 5); !reflect.DeepEqual(got, []int{99}) {
		t.Errorf("refreshed %v, want just the registered row 99", got)
	}
	// Same row index in another bank is not registered.
	if got := drive(s, 1, 100, 5); got != nil {
		t.Errorf("unregistered bank refreshed %v", got)
	}
}

func TestNoneNeverMitigates(t *testing.T) {
	n, err := New("none", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got := drive(n, 0, 5, 1000); got != nil {
		t.Errorf("none mitigated: %v", got)
	}
}
