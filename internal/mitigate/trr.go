package mitigate

// TRRSampler models in-DRAM Target Row Refresh as deployed on DDR4: a
// small per-bank sampler table counts activations of the rows it managed
// to capture, and when a captured row crosses the sampler threshold its
// distance-1 neighbours are refreshed. The table is tiny in real devices
// (a handful of entries per bank), which is the TRRespass insight:
// many-sided patterns open more aggressor rows than the sampler can
// track, the excess activations go unsampled (SamplerMisses), and the
// untracked aggressors hammer unprotected (paper §II-B).
type TRRSampler struct {
	cfg   Config
	stats Stats
	// table maps bank -> row -> activation count; each bank holds at
	// most cfg.TableSize entries. A captured entry keeps its slot for
	// the whole refresh window (count resets on mitigation but the slot
	// is not freed), so decoy rows can hog the sampler.
	table map[int]map[int]int
	// scratch is the reused neighbour buffer handed to callers; the
	// engine consumes it before the next OnActivate.
	scratch []int
}

// DefaultSamplerEntries is the per-bank sampler capacity when
// Config.TableSize is zero: small enough that an 8-sided pattern
// overflows it, matching the table sizes inferred for real DDR4 TRR.
const DefaultSamplerEntries = 4

func init() {
	Register("trr", func(cfg Config) (Mitigator, error) { return NewTRRSampler(cfg) })
}

// NewTRRSampler builds the hardware-TRR sampler tracker.
func NewTRRSampler(cfg Config) (*TRRSampler, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ValidateThreshold(cfg.Threshold); err != nil {
		return nil, err
	}
	if cfg.TableSize == 0 {
		cfg.TableSize = DefaultSamplerEntries
	}
	if cfg.TableSize < 0 {
		return nil, ValidateThreshold(cfg.TableSize)
	}
	return &TRRSampler{cfg: cfg, table: make(map[int]map[int]int)}, nil
}

// Name implements Mitigator.
func (t *TRRSampler) Name() string { return "trr" }

// OnActivate implements Mitigator: count the activation if the row holds
// (or can claim) a sampler slot; on crossing the threshold, clear the
// counter and refresh both neighbours.
func (t *TRRSampler) OnActivate(bank, row int) []int {
	rows := t.table[bank]
	if rows == nil {
		rows = make(map[int]int)
		t.table[bank] = rows
	}
	n, tracked := rows[row]
	if !tracked {
		if len(rows) >= t.cfg.TableSize {
			// Sampler full: the activation slips past unobserved.
			t.stats.SamplerMisses++
			return nil
		}
		t.stats.TrackedRows++
	}
	n++
	if n < t.cfg.Threshold {
		rows[row] = n
		return nil
	}
	rows[row] = 0
	t.scratch = Neighbours(t.scratch[:0], row, t.cfg.RowsPerBank)
	t.stats.Refreshes += uint64(len(t.scratch))
	return t.scratch
}

// OnRefreshWindow implements Mitigator: the sampler table clears, freeing
// every slot for the next window.
func (t *TRRSampler) OnRefreshWindow() {
	for bank := range t.table {
		delete(t.table, bank)
	}
	t.stats.TrackedRows = 0
	t.stats.WindowResets++
}

// Stats implements Mitigator.
func (t *TRRSampler) Stats() Stats { return t.stats }

// SoftTRR models the software mitigation of Zhang et al. (paper §II-E
// item 3): the kernel uses PMU counters to watch activations near rows it
// knows hold page tables, and re-reads (refreshes) a registered PTE row
// when an adjacent aggressor gets hot. Unlike the hardware sampler it has
// no capacity limit — the kernel can count every row — but it protects
// only registered rows, and like every distance-1 tracker it is blind to
// the disturbance its own refreshes cause (Half-Double, which the paper
// calls out: "the design has the same vulnerabilities as TRR").
type SoftTRR struct {
	cfg   Config
	stats Stats
	// counts maps bank*RowsPerBank+row -> activations since last sample.
	counts map[int]int
	// pteRows is the registered-row bitset over the same index space.
	pteRows []uint64
	scratch []int
}

func init() {
	Register("softtrr", func(cfg Config) (Mitigator, error) { return NewSoftTRR(cfg) })
}

// NewSoftTRR builds the software tracker.
func NewSoftTRR(cfg Config) (*SoftTRR, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := ValidateThreshold(cfg.Threshold); err != nil {
		return nil, err
	}
	nRows := cfg.Banks * cfg.RowsPerBank
	return &SoftTRR{
		cfg:     cfg,
		counts:  make(map[int]int),
		pteRows: make([]uint64, (nRows+63)/64),
	}, nil
}

// Name implements Mitigator.
func (s *SoftTRR) Name() string { return "softtrr" }

// RegisterRow implements RowRegistrar: the kernel marks (bank, row) as
// holding page tables.
func (s *SoftTRR) RegisterRow(bank, row int) {
	idx := bank*s.cfg.RowsPerBank + row
	s.pteRows[idx/64] |= 1 << (idx % 64)
}

// registered reports whether (bank, row) is in the protected set.
func (s *SoftTRR) registered(bank, row int) bool {
	idx := bank*s.cfg.RowsPerBank + row
	return s.pteRows[idx/64]>>(idx%64)&1 == 1
}

// OnActivate implements Mitigator: every `Threshold` activations of an
// aggressor row, the kernel re-reads whichever of its distance-1
// neighbours are registered PTE rows. Unregistered neighbours get
// nothing — the kernel never looks at them.
func (s *SoftTRR) OnActivate(bank, row int) []int {
	key := bank*s.cfg.RowsPerBank + row
	n := s.counts[key] + 1
	if n < s.cfg.Threshold {
		s.counts[key] = n
		return nil
	}
	s.counts[key] = 0
	var nb [2]int
	s.scratch = s.scratch[:0]
	for _, v := range Neighbours(nb[:0], row, s.cfg.RowsPerBank) {
		if s.registered(bank, v) {
			s.scratch = append(s.scratch, v)
		}
	}
	s.stats.Refreshes += uint64(len(s.scratch))
	return s.scratch
}

// OnRefreshWindow implements Mitigator: the PMU counters reset with the
// device refresh (registered rows persist — the kernel's allocation map
// outlives any window).
func (s *SoftTRR) OnRefreshWindow() {
	for k := range s.counts {
		delete(s.counts, k)
	}
	s.stats.WindowResets++
}

// Stats implements Mitigator.
func (s *SoftTRR) Stats() Stats {
	s.stats.TrackedRows = len(s.counts)
	return s.stats
}
