package memctrl

import (
	"testing"

	"ptguard/internal/core"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// TestWriteLinesBatchMatchesScalar: the batched flush must leave stats,
// stored bytes, guard counters (minus batch telemetry) and total latency
// exactly as a sequential WriteLine loop would, for the guarded and the
// baseline controller.
func TestWriteLinesBatchMatchesScalar(t *testing.T) {
	for _, guarded := range []bool{true, false} {
		name := "guarded"
		if !guarded {
			name = "baseline"
		}
		t.Run(name, func(t *testing.T) {
			var gs, gb *core.Guard
			if guarded {
				gs, gb = testGuard(t, nil), testGuard(t, nil)
			}
			cs, err := New(testDevice(t), gs, 2)
			if err != nil {
				t.Fatal(err)
			}
			cb, err := New(testDevice(t), gb, 2)
			if err != nil {
				t.Fatal(err)
			}

			r := stats.NewRNG(0xF1005)
			var lines []pte.Line
			var addrs []uint64
			for i := 0; i < 30; i++ {
				switch i % 3 {
				case 0:
					lines = append(lines, pteLine(0x800+uint64(i)*8))
				case 1:
					lines = append(lines, pte.Line{})
				default:
					var d pte.Line
					for k := range d {
						d[k] = pte.Entry(r.Uint64() | pte.MaskMAC)
					}
					lines = append(lines, d)
				}
				addrs = append(addrs, uint64(0x10000+i*0x40))
			}

			sLat := 0
			for i := range lines {
				lat, werr := cs.WriteLine(addrs[i], lines[i])
				if werr != nil {
					t.Fatal(werr)
				}
				sLat += lat
			}
			bLat, werr := cb.WriteLinesBatch(addrs, lines)
			if werr != nil {
				t.Fatal(werr)
			}
			if bLat != sLat {
				t.Errorf("latency = %d, scalar %d", bLat, sLat)
			}
			if cb.Stats() != cs.Stats() {
				t.Errorf("stats diverge:\nbatch  %+v\nscalar %+v", cb.Stats(), cs.Stats())
			}
			for i := range lines {
				if cb.Device().ReadLine(addrs[i]) != cs.Device().ReadLine(addrs[i]) {
					t.Errorf("stored line %d diverges", i)
				}
			}
			if guarded {
				csc, cbc := gs.Counters(), gb.Counters()
				csc.MACBatches, cbc.MACBatches = 0, 0
				csc.BatchedMACComputes, cbc.BatchedMACComputes = 0, 0
				if csc != cbc {
					t.Errorf("guard counters diverge:\nbatch  %+v\nscalar %+v", cbc, csc)
				}
			}
		})
	}
}

func TestWriteLinesBatchLengthMismatchPanics(t *testing.T) {
	c, err := New(testDevice(t), testGuard(t, nil), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	c.WriteLinesBatch(make([]uint64, 2), make([]pte.Line, 3))
}
