package memctrl

import (
	"errors"
	"fmt"

	"ptguard/internal/core"
	"ptguard/internal/pte"
)

// RekeyStats summarises a full-memory re-key sweep.
type RekeyStats struct {
	// LinesScanned is the number of stored DRAM lines visited.
	LinesScanned int
	// Remacced is the number of protected lines re-embedded under the
	// new key.
	Remacced int
	// Failures counts protected PTE-pattern lines whose old-key check
	// failed during the sweep (bit flips surfaced mid-rekey).
	Failures int
}

// Rekey performs the §IV-F / §VII-B full-memory re-key: every stored line
// is read under the old key (verifying and stripping protected lines) and
// written back under a fresh guard built from newKey. Colliding lines lose
// their CTB entries naturally: under the new key they are (overwhelmingly
// likely) no longer colliding. The controller's guard is replaced on
// success.
//
// The sweep is slow by design — the paper invokes it only when the CTB
// fills up, which requires an active adversary (§VII-B).
func (c *Controller) Rekey(newKey []byte) (RekeyStats, error) {
	if c.guard == nil {
		return RekeyStats{}, errors.New("memctrl: rekey needs a guard")
	}
	cfg := c.guard.Config()
	cfg.Key = newKey
	next, err := core.NewGuard(cfg)
	if err != nil {
		return RekeyStats{}, fmt.Errorf("memctrl: new guard: %w", err)
	}

	// Collect the stored population first: the sweep touches every line, so
	// both the old-key reads and the new-key writes ride the guard's batch
	// MAC engine instead of running the cipher line-at-a-time. (This is a
	// cold path; the collection slices are throwaway.)
	var addrs []uint64
	var lines []pte.Line
	c.dev.Lines(func(addr uint64, line pte.Line) {
		addrs = append(addrs, addr)
		lines = append(lines, line)
	})
	stats := RekeyStats{LinesScanned: len(lines)}

	// Read under the old key with data-path semantics: protected lines
	// verify and strip, everything else passes through.
	rres := make([]core.ReadResult, len(lines))
	c.guard.OnReadBatch(rres, lines, addrs, false)

	// Not-stripped lines (unprotected, or colliding lines forwarded
	// verbatim) are rewritten as-is under the new guard so their collision
	// status is re-evaluated; stripped lines re-embed under the new key.
	winput := make([]pte.Line, len(lines))
	for i := range rres {
		if rres[i].Stripped {
			winput[i] = rres[i].Line
		} else {
			winput[i] = lines[i]
		}
	}
	wres := make([]core.WriteResult, len(lines))
	if _, werr := next.OnWriteBatch(wres, winput, addrs); werr != nil {
		return stats, werr
	}
	for i := range wres {
		if rres[i].Stripped && wres[i].Protected {
			stats.Remacced++
		}
		c.dev.WriteLine(addrs[i], wres[i].Line)
	}
	c.guard = next
	return stats, nil
}
