package memctrl

import (
	"errors"
	"fmt"

	"ptguard/internal/core"
	"ptguard/internal/pte"
)

// RekeyStats summarises a full-memory re-key sweep.
type RekeyStats struct {
	// LinesScanned is the number of stored DRAM lines visited.
	LinesScanned int
	// Remacced is the number of protected lines re-embedded under the
	// new key.
	Remacced int
	// Failures counts protected PTE-pattern lines whose old-key check
	// failed during the sweep (bit flips surfaced mid-rekey).
	Failures int
}

// Rekey performs the §IV-F / §VII-B full-memory re-key: every stored line
// is read under the old key (verifying and stripping protected lines) and
// written back under a fresh guard built from newKey. Colliding lines lose
// their CTB entries naturally: under the new key they are (overwhelmingly
// likely) no longer colliding. The controller's guard is replaced on
// success.
//
// The sweep is slow by design — the paper invokes it only when the CTB
// fills up, which requires an active adversary (§VII-B).
func (c *Controller) Rekey(newKey []byte) (RekeyStats, error) {
	if c.guard == nil {
		return RekeyStats{}, errors.New("memctrl: rekey needs a guard")
	}
	cfg := c.guard.Config()
	cfg.Key = newKey
	next, err := core.NewGuard(cfg)
	if err != nil {
		return RekeyStats{}, fmt.Errorf("memctrl: new guard: %w", err)
	}

	var stats RekeyStats
	var sweepErr error
	type pending struct {
		addr uint64
		line pte.Line
	}
	var updates []pending
	c.dev.Lines(func(addr uint64, line pte.Line) {
		if sweepErr != nil {
			return
		}
		stats.LinesScanned++
		// Read under the old key with data-path semantics: protected
		// lines verify and strip, everything else passes through.
		rd := c.guard.OnRead(line, addr, false)
		if !rd.Stripped {
			// Not protected under the old key (or a colliding line
			// forwarded verbatim): rewrite as-is under the new
			// guard so its collision status is re-evaluated.
			res, werr := next.OnWrite(line, addr)
			if werr != nil {
				sweepErr = werr
				return
			}
			updates = append(updates, pending{addr: addr, line: res.Line})
			return
		}
		res, werr := next.OnWrite(rd.Line, addr)
		if werr != nil {
			sweepErr = werr
			return
		}
		if res.Protected {
			stats.Remacced++
		}
		updates = append(updates, pending{addr: addr, line: res.Line})
	})
	if sweepErr != nil {
		return stats, sweepErr
	}
	for _, u := range updates {
		c.dev.WriteLine(u.addr, u.line)
	}
	c.guard = next
	return stats, nil
}
