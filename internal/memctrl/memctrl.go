// Package memctrl models the memory controller of Fig. 5: it serves line
// reads and writes against the DRAM device, drives the PT-Guard logic on
// both paths (MAC insertion on writes, verification on tagged page-table
// walks), and accounts the MAC latency the timing model charges.
package memctrl

import (
	"errors"

	"ptguard/internal/core"
	"ptguard/internal/dram"
	"ptguard/internal/obs"
	"ptguard/internal/pte"
)

// Controller fronts one DRAM device. guard == nil models the unprotected
// baseline. Not safe for concurrent use.
type Controller struct {
	dev   *dram.Device
	guard *core.Guard

	// contention is a fixed queueing penalty added to every access,
	// modelling shared-channel pressure in multicore runs (§VII-C).
	contention int

	stats Stats

	// Cached nil-safe histogram handles; nil when observability is off, so
	// the hot path pays only a nil-receiver method call.
	readHist, writeHist *obs.Histogram

	// wres is the reusable WriteLinesBatch result scratch; it grows to the
	// largest batch seen so steady-state flushes stay allocation-free.
	wres []core.WriteResult
}

// Stats summarises controller activity.
type Stats struct {
	Reads, Writes    uint64
	ReadMACCycles    uint64 // MAC latency charged on the read path
	WriteMACCycles   uint64 // MAC latency on writes (off the critical path)
	CheckFailures    uint64 // integrity exceptions raised
	CorrectedReads   uint64 // reads repaired by the correction engine
	CollisionErrors  uint64 // CTB-full events (re-key required)
	TotalReadCycles  uint64
	TotalWriteCycles uint64
}

// New builds a controller. guard may be nil for the baseline.
func New(dev *dram.Device, guard *core.Guard, contentionCycles int) (*Controller, error) {
	if dev == nil {
		return nil, errors.New("memctrl: nil DRAM device")
	}
	if contentionCycles < 0 {
		return nil, errors.New("memctrl: negative contention")
	}
	return &Controller{dev: dev, guard: guard, contention: contentionCycles}, nil
}

// Guard returns the attached PT-Guard instance (nil for baseline).
func (c *Controller) Guard() *core.Guard { return c.guard }

// Device returns the underlying DRAM device.
func (c *Controller) Device() *dram.Device { return c.dev }

// Stats returns a snapshot of the controller counters.
func (c *Controller) Stats() Stats { return c.stats }

// ReadLine fetches the line at addr. isPTE tags page-table-walk requests
// (the request-bus bit of Fig. 5). The returned latency covers DRAM timing,
// contention, and any MAC verification delay. ok is false when PT-Guard
// raised PTECheckFailed: the line must not be installed or consumed.
func (c *Controller) ReadLine(addr uint64, isPTE bool) (line pte.Line, latency int, ok bool) {
	c.stats.Reads++
	latency = c.dev.Access(addr, false) + c.contention
	data := c.dev.ReadLine(addr)
	if c.guard == nil {
		c.stats.TotalReadCycles += uint64(latency)
		c.readHist.Observe(uint64(latency))
		return data, latency, true
	}
	rd := c.guard.OnRead(data, addr, isPTE)
	if rd.MACComputed {
		macLat := c.guard.Config().MACLatencyCycles
		// Correction guesses serialise on the MAC unit; each guess
		// costs one MAC computation (§VI-E timing side channel).
		cycles := macLat * max(1, rd.Guesses)
		latency += cycles
		c.stats.ReadMACCycles += uint64(cycles)
	}
	if rd.Corrected {
		c.stats.CorrectedReads++
		// Persist the repair so subsequent reads see the clean line,
		// as the controller would write back the corrected PTE.
		fixed, err := c.guard.OnWrite(rd.Line, addr)
		if err == nil {
			c.dev.WriteLine(addr, fixed.Line)
		}
	}
	if rd.CheckFailed {
		c.stats.CheckFailures++
		c.stats.TotalReadCycles += uint64(latency)
		c.readHist.Observe(uint64(latency))
		return pte.Line{}, latency, false
	}
	c.stats.TotalReadCycles += uint64(latency)
	c.readHist.Observe(uint64(latency))
	return rd.Line, latency, true
}

// WriteLine stores a line (a dirty writeback or an OS store). The latency
// is reported for accounting but writes are posted: the core does not stall
// on them, matching the paper's read-path-only slowdown.
func (c *Controller) WriteLine(addr uint64, line pte.Line) (latency int, err error) {
	c.stats.Writes++
	latency = c.dev.Access(addr, true) + c.contention
	if c.guard == nil {
		c.dev.WriteLine(addr, line)
		c.stats.TotalWriteCycles += uint64(latency)
		c.writeHist.Observe(uint64(latency))
		return latency, nil
	}
	res, werr := c.guard.OnWrite(line, addr)
	if res.MACComputed {
		macLat := c.guard.Config().MACLatencyCycles
		latency += macLat
		c.stats.WriteMACCycles += uint64(macLat)
	}
	if werr != nil {
		if errors.Is(werr, core.ErrCTBFull) {
			c.stats.CollisionErrors++
		}
		// The data is still stored; the caller decides on re-keying.
		c.dev.WriteLine(addr, res.Line)
		c.stats.TotalWriteCycles += uint64(latency)
		c.writeHist.Observe(uint64(latency))
		return latency, werr
	}
	c.dev.WriteLine(addr, res.Line)
	c.stats.TotalWriteCycles += uint64(latency)
	c.writeHist.Observe(uint64(latency))
	return latency, nil
}

// WriteLinesBatch stores many lines in one call — the campaign setup /
// table-flush path. The guard MACs the whole population through its batch
// engine (one bit-sliced cipher pass per 64 lanes) instead of line-at-a-time;
// stats, stored bytes and the returned error are identical to calling
// WriteLine per element in order, and the returned latency is the sum of the
// per-line latencies. On error the remaining lines are still written (flush
// loops keep going); err is the first per-line error.
func (c *Controller) WriteLinesBatch(addrs []uint64, lines []pte.Line) (latency int, err error) {
	if len(addrs) != len(lines) {
		panic("memctrl: WriteLinesBatch slice lengths differ")
	}
	if c.guard == nil {
		for i := range lines {
			lat, _ := c.WriteLine(addrs[i], lines[i])
			latency += lat
		}
		return latency, nil
	}
	if cap(c.wres) < len(lines) {
		c.wres = make([]core.WriteResult, len(lines))
	}
	res := c.wres[:len(lines)]
	failed, werr := c.guard.OnWriteBatch(res, lines, addrs)
	macLat := c.guard.Config().MACLatencyCycles
	for i := range lines {
		c.stats.Writes++
		lat := c.dev.Access(addrs[i], true) + c.contention
		if res[i].MACComputed {
			lat += macLat
			c.stats.WriteMACCycles += uint64(macLat)
		}
		c.dev.WriteLine(addrs[i], res[i].Line)
		c.stats.TotalWriteCycles += uint64(lat)
		c.writeHist.Observe(uint64(lat))
		latency += lat
	}
	if werr != nil && errors.Is(werr, core.ErrCTBFull) {
		// The guard's write path only fails with ErrCTBFull, so every
		// failed line is a collision error, as the scalar loop would count.
		c.stats.CollisionErrors += uint64(failed)
	}
	return latency, werr
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ResetStats zeroes the controller counters (post-warm-up).
func (c *Controller) ResetStats() { c.stats = Stats{} }

// SetObserver attaches the observability subsystem to the controller and
// everything behind it (guard and DRAM device). It also caches latency
// histogram handles so each access records its cycle cost; a nil observer
// detaches and the handles fall back to nil-safe no-ops.
func (c *Controller) SetObserver(o *obs.Observer) {
	r := o.Registry() // nil when o is nil or disabled
	if r != nil {
		c.readHist = r.Histogram("memctrl.read_cycles")
		c.writeHist = r.Histogram("memctrl.write_cycles")
	} else {
		c.readHist, c.writeHist = nil, nil
	}
	if c.guard != nil {
		c.guard.SetObserver(o)
	}
	c.dev.SetObserver(o)
}

// PublishObs feeds the controller counters into the metric registry under
// "memctrl." and forwards to the guard and DRAM device (the obs snapshot
// path; a nil registry is a no-op).
func (c *Controller) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetCounter("memctrl.reads", c.stats.Reads)
	r.SetCounter("memctrl.writes", c.stats.Writes)
	r.SetCounter("memctrl.read_mac_cycles", c.stats.ReadMACCycles)
	r.SetCounter("memctrl.write_mac_cycles", c.stats.WriteMACCycles)
	r.SetCounter("memctrl.check_failures", c.stats.CheckFailures)
	r.SetCounter("memctrl.corrected_reads", c.stats.CorrectedReads)
	r.SetCounter("memctrl.collision_errors", c.stats.CollisionErrors)
	r.SetCounter("memctrl.total_read_cycles", c.stats.TotalReadCycles)
	r.SetCounter("memctrl.total_write_cycles", c.stats.TotalWriteCycles)
	if c.guard != nil {
		c.guard.PublishObs(r)
	}
	c.dev.PublishObs(r)
}
