package memctrl

import (
	"testing"

	"ptguard/internal/core"
	"ptguard/internal/dram"
	"ptguard/internal/mac"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

func testDevice(tb testing.TB) *dram.Device {
	tb.Helper()
	d, err := dram.NewDevice(dram.Geometry{}, dram.Timing{})
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

func testGuard(tb testing.TB, mutate func(*core.Config)) *core.Guard {
	tb.Helper()
	f, err := pte.FormatX86(40)
	if err != nil {
		tb.Fatal(err)
	}
	key := make([]byte, mac.KeySize)
	r := stats.NewRNG(0x5A5A)
	for i := range key {
		key[i] = byte(r.Uint64())
	}
	cfg := core.Config{Format: f, Key: key}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := core.NewGuard(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

func pteLine(base uint64) pte.Line {
	var l pte.Line
	flags := pte.Entry(0).SetBit(pte.BitPresent, true).SetBit(pte.BitWritable, true)
	for i := range l {
		l[i] = flags.WithPFN(base + uint64(i))
	}
	return l
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, 0); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := New(testDevice(t), nil, -1); err == nil {
		t.Error("negative contention accepted")
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	c, err := New(testDevice(t), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	line := pteLine(0x100)
	wLat, err := c.WriteLine(0x4000, line)
	if err != nil || wLat <= 0 {
		t.Fatalf("write: lat=%d err=%v", wLat, err)
	}
	got, rLat, ok := c.ReadLine(0x4000, false)
	if !ok || got != line || rLat <= 0 {
		t.Errorf("read: got=%v ok=%v lat=%d", got, ok, rLat)
	}
	s := c.Stats()
	if s.Reads != 1 || s.Writes != 1 || s.ReadMACCycles != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGuardedPTERoundTripChargesMAC(t *testing.T) {
	g := testGuard(t, nil)
	base, err := New(testDevice(t), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(testDevice(t), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	line := pteLine(0x200)
	if _, err := c.WriteLine(0x8000, line); err != nil {
		t.Fatal(err)
	}
	if _, err := base.WriteLine(0x8000, line); err != nil {
		t.Fatal(err)
	}
	got, guardedLat, ok := c.ReadLine(0x8000, true)
	if !ok {
		t.Fatal("clean PTE read failed check")
	}
	if got != line {
		t.Error("PTE not restored after strip")
	}
	_, baseLat, _ := base.ReadLine(0x8000, true)
	if guardedLat != baseLat+core.DefaultMACLatencyCycles {
		t.Errorf("guarded latency = %d, want base %d + %d MAC",
			guardedLat, baseLat, core.DefaultMACLatencyCycles)
	}
}

func TestTamperedPTEReadFailsClosed(t *testing.T) {
	g := testGuard(t, nil)
	c, err := New(testDevice(t), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.WriteLine(0x8000, pteLine(0x300)); err != nil {
		t.Fatal(err)
	}
	// Rowhammer the stored image directly.
	h, err := dram.NewHammerer(c.Device(), dram.HammerConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h.FlipLineBits(0x8000, []int{2}) // user-accessible bit of PTE 0
	line, _, ok := c.ReadLine(0x8000, true)
	if ok {
		t.Fatal("tampered PTE read returned ok")
	}
	if line != (pte.Line{}) {
		t.Error("faulty line leaked despite CheckFailed")
	}
	if c.Stats().CheckFailures != 1 {
		t.Error("CheckFailures not counted")
	}
}

func TestCorrectionRepairsAndPersists(t *testing.T) {
	g := testGuard(t, func(cfg *core.Config) {
		cfg.EnableCorrection = true
		cfg.SoftMatchK = 4
	})
	c, err := New(testDevice(t), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	line := pteLine(0x400)
	if _, err := c.WriteLine(0xC000, line); err != nil {
		t.Fatal(err)
	}
	h, _ := dram.NewHammerer(c.Device(), dram.HammerConfig{Seed: 2})
	h.FlipLineBits(0xC000, []int{13}) // PFN bit of PTE 0
	got, lat, ok := c.ReadLine(0xC000, true)
	if !ok || got != line {
		t.Fatalf("correction failed: ok=%v", ok)
	}
	if c.Stats().CorrectedReads != 1 {
		t.Error("CorrectedReads not counted")
	}
	// Correction guesses serialise on the MAC unit: latency far above a
	// single MAC delay (timing side channel of §VI-E).
	if lat < dram.DefaultTiming().RowEmpty+2*core.DefaultMACLatencyCycles {
		t.Errorf("corrected read latency %d suspiciously low", lat)
	}
	// The repair must persist: the next read is clean and fast.
	got2, _, ok2 := c.ReadLine(0xC000, true)
	if !ok2 || got2 != line {
		t.Error("repair did not persist")
	}
	if c.Stats().CorrectedReads != 1 {
		t.Error("second read should not need correction")
	}
}

func TestContentionAddsLatency(t *testing.T) {
	quiet, _ := New(testDevice(t), nil, 0)
	busy, _ := New(testDevice(t), nil, 50)
	_, a, _ := quiet.ReadLine(0x1000, false)
	_, b, _ := busy.ReadLine(0x1000, false)
	if b != a+50 {
		t.Errorf("contention latency: quiet=%d busy=%d", a, b)
	}
}

func TestWriteMACOffCriticalPath(t *testing.T) {
	g := testGuard(t, nil)
	c, _ := New(testDevice(t), g, 0)
	if _, err := c.WriteLine(0x2000, pteLine(0x500)); err != nil {
		t.Fatal(err)
	}
	s := c.Stats()
	if s.WriteMACCycles == 0 {
		t.Error("write MAC cycles not accounted")
	}
	if s.ReadMACCycles != 0 {
		t.Error("write charged to the read path")
	}
}

func TestRekeyPreservesProtectionAndData(t *testing.T) {
	g := testGuard(t, nil)
	c, err := New(testDevice(t), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One PTE line, one dense data line.
	pteL := pteLine(0x600)
	if _, err := c.WriteLine(0x1000, pteL); err != nil {
		t.Fatal(err)
	}
	var data pte.Line
	for i := range data {
		data[i] = pte.Entry(0x1234567890ABCDEF + uint64(i))
	}
	if _, err := c.WriteLine(0x2000, data); err != nil {
		t.Fatal(err)
	}
	oldImage := c.Device().ReadLine(0x1000)

	newKey := make([]byte, mac.KeySize)
	r := stats.NewRNG(0xFEED)
	for i := range newKey {
		newKey[i] = byte(r.Uint64())
	}
	st, err := c.Rekey(newKey)
	if err != nil {
		t.Fatal(err)
	}
	if st.LinesScanned < 2 || st.Remacced < 1 {
		t.Errorf("rekey stats = %+v", st)
	}
	// The stored PTE image must have changed (different key, new MAC)...
	if c.Device().ReadLine(0x1000) == oldImage {
		t.Error("PTE line image unchanged across rekey")
	}
	// ...but a walk under the new guard still verifies and restores it.
	got, _, ok := c.ReadLine(0x1000, true)
	if !ok || got != pteL {
		t.Error("post-rekey walk failed")
	}
	// Data line is untouched in value.
	gotData, _, ok := c.ReadLine(0x2000, false)
	if !ok || gotData != data {
		t.Error("data line changed across rekey")
	}
	// Old-key MACs must no longer verify: simulate a stale image.
	c.Device().WriteLine(0x1000, oldImage)
	if _, _, ok := c.ReadLine(0x1000, true); ok {
		t.Error("stale old-key MAC accepted after rekey")
	}
}

func TestRekeyClearsCollisions(t *testing.T) {
	g := testGuard(t, nil)
	c, err := New(testDevice(t), g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Build a colliding line under the old key the hard way: write a
	// protected line, then splice its (address-bound) MAC back as data.
	var line pte.Line
	line[0] = pte.Entry(0xAAA) &^ pte.Entry(pte.MaskMAC|pte.MaskIdentifier)
	res, err := c.WriteLine(0x3000, line)
	_ = res
	if err != nil {
		t.Fatal(err)
	}
	forged := c.Device().ReadLine(0x3000) // data | embedded MAC
	if _, err := c.WriteLine(0x3000, forged); err != nil {
		t.Fatal(err)
	}
	if c.Guard().CTBLen() != 1 {
		t.Fatalf("forged line not tracked: CTB len %d", c.Guard().CTBLen())
	}
	newKey := make([]byte, mac.KeySize)
	newKey[0] = 0x42
	if _, err := c.Rekey(newKey); err != nil {
		t.Fatal(err)
	}
	if c.Guard().CTBLen() != 0 {
		t.Errorf("CTB len = %d after rekey, want 0", c.Guard().CTBLen())
	}
	// The forged line's data must survive the sweep byte for byte.
	got, _, ok := c.ReadLine(0x3000, false)
	if !ok || got != forged {
		t.Error("colliding line data changed across rekey")
	}
}

func TestRekeyRequiresGuard(t *testing.T) {
	c, _ := New(testDevice(t), nil, 0)
	if _, err := c.Rekey(make([]byte, mac.KeySize)); err == nil {
		t.Error("rekey without guard accepted")
	}
}
