package tlb

import (
	"errors"

	"ptguard/internal/cache"
	"ptguard/internal/obs"
	"ptguard/internal/pte"
)

// MaxNestedAccesses is the worst-case memory cost of one 2-D page walk with
// cold MMU caches: each of the 4 guest levels needs a full 4-level stage-2
// walk to find the guest table's host frame plus 1 read of the guest entry
// itself (4 × 5 = 20), and the final guest-physical leaf address needs one
// more stage-2 walk (4) — 24 accesses per guest translation, the
// virtualization tax that makes hypervisor page tables such a rich
// Rowhammer target surface.
const MaxNestedAccesses = Levels*(Levels+1) + Levels

// NestedWalker performs 2-D (guest + stage-2/EPT) page walks. Guest-table
// entries are read at host-physical addresses obtained by walking the
// stage-2 tables; both dimensions keep their own MMU caches, mirroring the
// combined paging-structure caches of VMX hardware. The two line readers
// let the caller route each dimension through an independently
// PT-Guard-protected memory controller — the guard-placement matrix the
// inter-VM campaigns sweep.
// Not safe for concurrent use.
type NestedWalker struct {
	s2     *Walker              // stage-2 dimension, with its own MMU cache
	mmu    *cache.Cache         // guest-dimension MMU cache (host-address keyed)
	values map[uint64]pte.Entry // entry values backing MMU-cache presence
	read   LineReader           // guest-table line reads

	walks, guestAccesses, mmuHits uint64
	checkFailures                 uint64
	maxAccesses                   uint64
}

// NewNestedWalker builds a 2-D walker. guestRead serves guest-table lines,
// s2Read serves stage-2 table lines; each goes through its own (possibly
// guarded) controller.
func NewNestedWalker(guestRead, s2Read LineReader) (*NestedWalker, error) {
	if guestRead == nil || s2Read == nil {
		return nil, errors.New("tlb: nil nested line reader")
	}
	s2, err := NewWalker(s2Read)
	if err != nil {
		return nil, err
	}
	mmu, err := cache.New(cache.MMUConfig)
	if err != nil {
		return nil, err
	}
	return &NestedWalker{s2: s2, mmu: mmu, values: make(map[uint64]pte.Entry), read: guestRead}, nil
}

// NestedWalkResult describes one 2-D page walk.
type NestedWalkResult struct {
	// HostPFN is the final host frame (valid when !Fault && !CheckFailed).
	HostPFN uint64
	// GPA is the guest-physical address the guest walk resolved to (set
	// once the guest dimension completes, even if the final stage-2
	// translation then fails).
	GPA uint64
	// Entry is the guest leaf PTE.
	Entry pte.Entry
	// MemAccesses counts all PTE-line reads past the MMU caches, guest and
	// stage-2 combined; GuestAccesses and S2Accesses split it by dimension.
	MemAccesses   int
	GuestAccesses int
	S2Accesses    int
	// Fault reports a non-present entry in either dimension.
	Fault bool
	// CheckFailed reports a PT-Guard integrity exception in either
	// dimension: the walk aborted and no translation may be consumed.
	CheckFailed bool
	// Stage2 marks the faulting/failing access as a stage-2 one: the
	// hypervisor's tables, not the guest's, were the corrupted structure.
	Stage2 bool
}

// Walk translates the guest-virtual vaddr for the VM whose stage-2 root is
// s2root and whose guest CR3 (a guest-physical address) is gcr3.
func (w *NestedWalker) Walk(s2root, gcr3, vaddr uint64) NestedWalkResult {
	w.walks++
	res := NestedWalkResult{}
	defer func() {
		if a := uint64(res.MemAccesses); a > w.maxAccesses {
			w.maxAccesses = a
		}
	}()
	gbase := gcr3
	for level := 0; level < Levels; level++ {
		gea := entryAddr(gbase, vaddr, level)
		hea, ok := w.translateGPA(s2root, gea, &res)
		if !ok {
			return res
		}
		var entry pte.Entry
		// Upper guest levels consult the guest-dimension MMU cache, keyed
		// by the entry's host address (unique per VM, so no VMID needed).
		if level < Levels-1 {
			acc := w.mmu.Access(hea, false)
			if acc.EvValid {
				dropLineValues(w.values, acc.Evicted)
			}
			if v, vok := w.values[hea]; acc.Hit && vok {
				w.mmuHits++
				entry = v
			} else {
				e, fok := w.fetchGuestEntry(hea, &res)
				if !fok {
					return res
				}
				entry = e
				if !acc.Hit {
					w.values[hea] = entry
				}
			}
		} else {
			e, fok := w.fetchGuestEntry(hea, &res)
			if !fok {
				return res
			}
			entry = e
		}
		if !entry.Present() {
			res.Fault = true
			return res
		}
		if level == Levels-2 && entry.Bit(pte.BitHugePage) {
			// 2 MB guest page: the guest PDE is the leaf.
			res.Entry = entry
			res.GPA = (entry.PFN() + vaddr>>pte.PageShift&0x1FF) << pte.PageShift
			return w.finishLeaf(s2root, &res)
		}
		if level == Levels-1 {
			res.Entry = entry
			res.GPA = entry.PFN() << pte.PageShift
			return w.finishLeaf(s2root, &res)
		}
		gbase = entry.PFN() << pte.PageShift
	}
	res.Fault = true
	return res
}

// finishLeaf performs the final stage-2 walk of the guest leaf's
// guest-physical address, yielding the host frame.
func (w *NestedWalker) finishLeaf(s2root uint64, res *NestedWalkResult) NestedWalkResult {
	haddr, ok := w.translateGPA(s2root, res.GPA, res)
	if !ok {
		return *res
	}
	res.HostPFN = haddr >> pte.PageShift
	return *res
}

// translateGPA walks the stage-2 tables to turn a guest-physical address
// into a host-physical one, charging the stage-2 accesses to res. ok=false
// aborts the nested walk, tagging the failure as stage-2.
func (w *NestedWalker) translateGPA(s2root, gpa uint64, res *NestedWalkResult) (uint64, bool) {
	s2 := w.s2.Walk(s2root, gpa)
	res.MemAccesses += s2.MemAccesses
	res.S2Accesses += s2.MemAccesses
	switch {
	case s2.CheckFailed:
		w.checkFailures++
		res.CheckFailed = true
		res.Stage2 = true
		return 0, false
	case s2.Fault:
		res.Fault = true
		res.Stage2 = true
		return 0, false
	}
	return s2.PFN<<pte.PageShift | gpa&(pte.PageSize-1), true
}

// fetchGuestEntry reads the guest-table line containing the host address
// hea and extracts the 8-byte guest entry. ok=false aborts on an integrity
// exception in the guest dimension.
func (w *NestedWalker) fetchGuestEntry(hea uint64, res *NestedWalkResult) (pte.Entry, bool) {
	res.MemAccesses++
	res.GuestAccesses++
	w.guestAccesses++
	line, ok := w.read(hea &^ uint64(pte.LineBytes-1))
	if !ok {
		w.checkFailures++
		res.CheckFailed = true
		return 0, false
	}
	return line[hea/8%pte.PTEsPerLine], true
}

// Flush drops both dimensions' MMU caches (a full shootdown, e.g. after the
// hypervisor migrates table pages).
func (w *NestedWalker) Flush() {
	w.mmu.Reset()
	w.values = make(map[uint64]pte.Entry)
	w.s2.Flush()
}

// CachedValues returns the number of guest-dimension entry values backing
// MMU-cache presence (the stage-2 dimension reports its own via Stage2()).
func (w *NestedWalker) CachedValues() int { return len(w.values) }

// Stage2 exposes the stage-2 dimension's 1-D walker (stats, invalidation).
func (w *NestedWalker) Stage2() *Walker { return w.s2 }

// NestedStats summarises 2-D walker activity.
type NestedStats struct {
	// Walks counts nested translations; GuestAccesses and S2Accesses count
	// PTE-line reads past the MMU caches per dimension.
	Walks, GuestAccesses, S2Accesses uint64
	// MMUHits counts guest-dimension MMU-cache hits; the stage-2
	// dimension's hits are in the embedded walker's own stats.
	MMUHits uint64
	// CheckFailures counts walks aborted by a PT-Guard integrity
	// exception in either dimension.
	CheckFailures uint64
	// MaxAccesses is the largest per-walk memory-access count observed
	// (bounded by MaxNestedAccesses).
	MaxAccesses uint64
}

// Stats returns a snapshot.
func (w *NestedWalker) Stats() NestedStats {
	return NestedStats{
		Walks: w.walks, GuestAccesses: w.guestAccesses,
		S2Accesses: w.s2.Stats().MemAccesses,
		MMUHits:    w.mmuHits, CheckFailures: w.checkFailures,
		MaxAccesses: w.maxAccesses,
	}
}

// PublishObs feeds the 2-D walker counters into the metric registry under
// "walker2d." (the obs snapshot path; a nil registry is a no-op). The
// stage-2 dimension's 1-D counters land under "walker." via the embedded
// walker, so 1-D and 2-D walk pressure are distinguishable side by side.
func (w *NestedWalker) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetCounter("walker2d.walks", w.walks)
	r.SetCounter("walker2d.guest_accesses", w.guestAccesses)
	r.SetCounter("walker2d.s2_accesses", w.s2.Stats().MemAccesses)
	r.SetCounter("walker2d.mem_accesses", w.guestAccesses+w.s2.Stats().MemAccesses)
	r.SetCounter("walker2d.mmu_hits", w.mmuHits)
	r.SetCounter("walker2d.check_failures", w.checkFailures)
	r.SetCounter("walker2d.max_accesses", w.maxAccesses)
	w.s2.PublishObs(r)
}
