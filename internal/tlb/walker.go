package tlb

import (
	"errors"

	"ptguard/internal/cache"
	"ptguard/internal/obs"
	"ptguard/internal/pte"
)

// Levels is the x86_64 page-table depth: PML4, PDPT, PD, PT.
const Levels = 4

// LineReader fetches a PTE cacheline from the memory system (through the
// cache hierarchy and the PT-Guard-instrumented memory controller). ok is
// false when the integrity check failed and the line was not forwarded.
type LineReader func(physAddr uint64) (line pte.Line, ok bool)

// Walker performs hardware page-table walks. Entries of the three upper
// levels are cached in the MMU cache (8 KB, 4-way; Table III) so repeated
// walks skip their memory accesses.
// Not safe for concurrent use.
type Walker struct {
	mmu    *cache.Cache
	values map[uint64]pte.Entry // entry values backing MMU-cache presence
	read   LineReader

	walks, memAccesses, mmuHits uint64
	checkFailures               uint64
}

// NewWalker builds a walker over the given line reader.
func NewWalker(read LineReader) (*Walker, error) {
	if read == nil {
		return nil, errors.New("tlb: nil line reader")
	}
	mmu, err := cache.New(cache.MMUConfig)
	if err != nil {
		return nil, err
	}
	return &Walker{mmu: mmu, values: make(map[uint64]pte.Entry), read: read}, nil
}

// WalkResult describes one page-table walk.
type WalkResult struct {
	// PFN is the translated frame number (valid when !Fault && !CheckFailed).
	PFN uint64
	// Entry is the leaf PTE.
	Entry pte.Entry
	// MemAccesses counts PTE-line reads issued past the MMU cache.
	MemAccesses int
	// Fault reports a non-present entry at some level.
	Fault bool
	// CheckFailed reports a PT-Guard integrity exception: the walk
	// aborted and no translation may be consumed (§IV-F).
	CheckFailed bool
}

// entryAddr returns the physical address of the level's entry for vaddr.
// level 0 is the PML4, level 3 the leaf page table.
func entryAddr(tableBase, vaddr uint64, level int) uint64 {
	shift := uint(12 + 9*(Levels-1-level))
	index := vaddr >> shift & 0x1FF
	return tableBase + index*8
}

// Walk translates vaddr starting from the root table at cr3.
func (w *Walker) Walk(cr3, vaddr uint64) WalkResult {
	w.walks++
	res := WalkResult{}
	base := cr3
	for level := 0; level < Levels; level++ {
		ea := entryAddr(base, vaddr, level)
		var entry pte.Entry
		// Upper levels consult the MMU cache; the leaf level always
		// goes to the memory system (it is what the TLB caches).
		if level < Levels-1 {
			acc := w.mmu.Access(ea, false)
			if acc.EvValid {
				// Keep the value map in lockstep with the cache:
				// without this trim it grows one entry per distinct
				// table line ever walked, a real leak on
				// days-of-uptime fleet runs.
				dropLineValues(w.values, acc.Evicted)
			}
			if v, ok := w.values[ea]; acc.Hit && ok {
				w.mmuHits++
				entry = v
			} else {
				// A hit without a value is presence gone stale after
				// an invalidation; either way the entry comes from
				// memory, and a fresh install records its value.
				e, ok := w.fetchEntry(ea, &res)
				if !ok {
					return res
				}
				entry = e
				if !acc.Hit {
					w.values[ea] = entry
				}
			}
		} else {
			e, ok := w.fetchEntry(ea, &res)
			if !ok {
				return res
			}
			entry = e
		}
		if !entry.Present() {
			res.Fault = true
			return res
		}
		if level == Levels-2 && entry.Bit(pte.BitHugePage) {
			// 2 MB page: the PDE is the leaf; the walk is one level
			// shorter (why large pages reduce walk cost, §III).
			res.Entry = entry
			res.PFN = entry.PFN() + vaddr>>pte.PageShift&0x1FF
			return res
		}
		if level == Levels-1 {
			res.Entry = entry
			res.PFN = entry.PFN()
			return res
		}
		base = entry.PFN() << pte.PageShift
	}
	res.Fault = true
	return res
}

// fetchEntry reads the PTE line containing ea through the memory system and
// extracts the 8-byte entry. ok=false aborts the walk on an integrity
// exception.
func (w *Walker) fetchEntry(ea uint64, res *WalkResult) (pte.Entry, bool) {
	res.MemAccesses++
	w.memAccesses++
	line, ok := w.read(ea &^ uint64(pte.LineBytes-1))
	if !ok {
		w.checkFailures++
		res.CheckFailed = true
		return 0, false
	}
	return line[ea/8%pte.PTEsPerLine], true
}

// dropLineValues deletes the entry values backing one evicted cacheline:
// the MMU cache tracks 64-byte lines while the value map is keyed by 8-byte
// entry addresses, so an eviction clears all eight slots.
func dropLineValues(values map[uint64]pte.Entry, lineAddr uint64) {
	for i := 0; i < pte.PTEsPerLine; i++ {
		delete(values, lineAddr+uint64(i*8))
	}
}

// CachedValues returns the number of entry values backing MMU-cache
// presence: bounded by the cache's line capacity, a bound the leak
// regression test pins.
func (w *Walker) CachedValues() int { return len(w.values) }

// InvalidateEntry drops a cached upper-level entry (e.g. after the OS
// rewrites a page table).
func (w *Walker) InvalidateEntry(ea uint64) {
	w.mmu.Invalidate(ea)
	delete(w.values, ea)
}

// Flush drops the entire MMU cache (e.g. after the OS migrates a table
// page: every cached upper-level entry may point at the old frame).
func (w *Walker) Flush() {
	w.mmu.Reset()
	w.values = make(map[uint64]pte.Entry)
}

// WalkerStats summarises walker activity.
type WalkerStats struct {
	Walks, MemAccesses, MMUHits, CheckFailures uint64
}

// Stats returns a snapshot.
func (w *Walker) Stats() WalkerStats {
	return WalkerStats{
		Walks: w.walks, MemAccesses: w.memAccesses,
		MMUHits: w.mmuHits, CheckFailures: w.checkFailures,
	}
}

// PublishObs feeds the walker counters into the metric registry under
// "walker." (the obs snapshot path; a nil registry is a no-op).
func (w *Walker) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetCounter("walker.walks", w.walks)
	r.SetCounter("walker.mem_accesses", w.memAccesses)
	r.SetCounter("walker.mmu_hits", w.mmuHits)
	r.SetCounter("walker.check_failures", w.checkFailures)
}
