package tlb

import (
	"testing"

	"ptguard/internal/pte"
)

func TestTLBHitMiss(t *testing.T) {
	tl, err := New(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tl.Lookup(5); ok {
		t.Error("cold lookup hit")
	}
	tl.Insert(5, 0x123)
	pfn, ok := tl.Lookup(5)
	if !ok || pfn != 0x123 {
		t.Errorf("lookup = %#x,%v", pfn, ok)
	}
	s := tl.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v, want 0.5", got)
	}
}

func TestTLBLRUEviction(t *testing.T) {
	tl, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for v := uint64(0); v < 4; v++ {
		tl.Insert(v, v*10)
	}
	tl.Lookup(0) // refresh vpn 0
	tl.Insert(4, 40)
	if _, ok := tl.Lookup(0); !ok {
		t.Error("recently used entry evicted")
	}
	if _, ok := tl.Lookup(1); ok {
		t.Error("LRU entry survived")
	}
}

func TestTLBFlush(t *testing.T) {
	tl, _ := New(8)
	tl.Insert(1, 2)
	tl.Flush()
	if _, ok := tl.Lookup(1); ok {
		t.Error("entry survived flush")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := NewWalker(nil); err == nil {
		t.Error("nil reader accepted")
	}
}

// fakeMemory backs the walker with a simple 4-level page table for one
// virtual page.
type fakeMemory struct {
	lines map[uint64]pte.Line
	reads int
	fail  map[uint64]bool
}

func newFakeMemory() *fakeMemory {
	return &fakeMemory{lines: make(map[uint64]pte.Line), fail: make(map[uint64]bool)}
}

func (m *fakeMemory) setEntry(ea uint64, e pte.Entry) {
	lineAddr := ea &^ uint64(pte.LineBytes-1)
	line := m.lines[lineAddr]
	line[ea/8%pte.PTEsPerLine] = e
	m.lines[lineAddr] = line
}

func (m *fakeMemory) read(addr uint64) (pte.Line, bool) {
	m.reads++
	if m.fail[addr] {
		return pte.Line{}, false
	}
	return m.lines[addr], true
}

// buildMapping wires cr3 -> tables at 0x10000/0x20000/0x30000 -> leafPFN for
// the given vaddr.
func buildMapping(m *fakeMemory, cr3, vaddr, leafPFN uint64) {
	present := pte.Entry(0).SetBit(pte.BitPresent, true)
	bases := []uint64{cr3, 0x10000, 0x20000, 0x30000}
	for level := 0; level < Levels-1; level++ {
		m.setEntry(entryAddr(bases[level], vaddr, level), present.WithPFN(bases[level+1]>>pte.PageShift))
	}
	m.setEntry(entryAddr(bases[Levels-1], vaddr, Levels-1), present.WithPFN(leafPFN))
}

func TestWalkTranslates(t *testing.T) {
	m := newFakeMemory()
	const cr3, vaddr, leaf = 0x1000, 0x7f1234567000, 0xABCDE
	buildMapping(m, cr3, vaddr, leaf)
	w, err := NewWalker(m.read)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Walk(cr3, vaddr)
	if res.Fault || res.CheckFailed {
		t.Fatalf("walk failed: %+v", res)
	}
	if res.PFN != leaf {
		t.Errorf("PFN = %#x, want %#x", res.PFN, leaf)
	}
	if res.MemAccesses != Levels {
		t.Errorf("cold walk accesses = %d, want %d", res.MemAccesses, Levels)
	}
}

func TestWalkUsesMMUCache(t *testing.T) {
	m := newFakeMemory()
	const cr3, vaddr, leaf = 0x1000, 0x7f1234567000, 0xABCDE
	buildMapping(m, cr3, vaddr, leaf)
	w, _ := NewWalker(m.read)
	w.Walk(cr3, vaddr)
	// Second walk of the same page: upper levels hit the MMU cache, only
	// the leaf goes to memory.
	res := w.Walk(cr3, vaddr)
	if res.MemAccesses != 1 {
		t.Errorf("warm walk accesses = %d, want 1", res.MemAccesses)
	}
	if w.Stats().MMUHits != Levels-1 {
		t.Errorf("MMU hits = %d, want %d", w.Stats().MMUHits, Levels-1)
	}
}

func TestWalkFaultsOnNonPresent(t *testing.T) {
	m := newFakeMemory()
	w, _ := NewWalker(m.read)
	res := w.Walk(0x1000, 0x5000)
	if !res.Fault {
		t.Error("walk of unmapped address did not fault")
	}
}

func TestWalkAbortsOnCheckFailure(t *testing.T) {
	m := newFakeMemory()
	const cr3, vaddr, leaf = 0x1000, 0x7f1234567000, 0xABCDE
	buildMapping(m, cr3, vaddr, leaf)
	// Fail the leaf PTE line read (integrity exception).
	leafEA := entryAddr(0x30000, vaddr, Levels-1) &^ uint64(pte.LineBytes-1)
	m.fail[leafEA] = true
	w, _ := NewWalker(m.read)
	res := w.Walk(cr3, vaddr)
	if !res.CheckFailed {
		t.Fatal("integrity failure not propagated")
	}
	if res.PFN != 0 {
		t.Error("translation leaked despite CheckFailed")
	}
	if w.Stats().CheckFailures != 1 {
		t.Error("CheckFailures counter wrong")
	}
}

func TestInvalidateEntryForcesRefetch(t *testing.T) {
	m := newFakeMemory()
	const cr3, vaddr, leaf = 0x1000, 0x7f1234567000, 0xABCDE
	buildMapping(m, cr3, vaddr, leaf)
	w, _ := NewWalker(m.read)
	w.Walk(cr3, vaddr)
	ea := entryAddr(cr3, vaddr, 0)
	w.InvalidateEntry(ea)
	res := w.Walk(cr3, vaddr)
	if res.MemAccesses != 2 { // PML4 refetch + leaf
		t.Errorf("post-invalidate accesses = %d, want 2", res.MemAccesses)
	}
}

func TestEntryAddrIndexing(t *testing.T) {
	// vaddr bit slices: 47:39, 38:30, 29:21, 20:12.
	vaddr := uint64(0x0000_FFFF_FFFF_F000) // bits 47:12 all set
	for level := 0; level < Levels; level++ {
		ea := entryAddr(0, vaddr, level)
		if ea != 511*8 {
			t.Errorf("level %d entry addr = %#x, want %#x", level, ea, 511*8)
		}
	}
	if got := entryAddr(0x2000, 0, 0); got != 0x2000 {
		t.Errorf("index 0 entry addr = %#x", got)
	}
}

func TestWalkHugePage(t *testing.T) {
	m := newFakeMemory()
	const cr3, vaddr = 0x1000, 0x7f40_0020_3000
	present := pte.Entry(0).SetBit(pte.BitPresent, true)
	// PML4 -> PDPT -> PDE(huge).
	m.setEntry(entryAddr(cr3, vaddr, 0), present.WithPFN(0x10000>>pte.PageShift))
	m.setEntry(entryAddr(0x10000, vaddr, 1), present.WithPFN(0x20000>>pte.PageShift))
	huge := present.SetBit(pte.BitHugePage, true).WithPFN(0x80000)
	m.setEntry(entryAddr(0x20000, vaddr, 2), huge)

	w, err := NewWalker(m.read)
	if err != nil {
		t.Fatal(err)
	}
	res := w.Walk(cr3, vaddr)
	if res.Fault || res.CheckFailed {
		t.Fatalf("huge walk failed: %+v", res)
	}
	want := uint64(0x80000) + vaddr>>pte.PageShift&0x1FF
	if res.PFN != want {
		t.Errorf("PFN = %#x, want %#x", res.PFN, want)
	}
	if res.MemAccesses != 3 {
		t.Errorf("huge walk accesses = %d, want 3 (one level shorter)", res.MemAccesses)
	}
}

func TestTLBSpannedEntry(t *testing.T) {
	tl, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	// A 2 MB entry: 512 pages from VPN 0x200 -> PFN 0x80000.
	tl.InsertSpan(0x200, 0x80000, 512)
	for _, off := range []uint64{0, 1, 511} {
		pfn, ok := tl.Lookup(0x200 + off)
		if !ok || pfn != 0x80000+off {
			t.Fatalf("Lookup(+%d) = %#x,%v", off, pfn, ok)
		}
	}
	if _, ok := tl.Lookup(0x200 + 512); ok {
		t.Error("lookup beyond the span hit")
	}
	if _, ok := tl.Lookup(0x1FF); ok {
		t.Error("lookup below the span hit")
	}
	// Zero span defaults to one page.
	tl.InsertSpan(0x900, 0x1, 0)
	if _, ok := tl.Lookup(0x900); !ok {
		t.Error("zero-span insert unusable")
	}
}
