// Package tlb models the address-translation hardware of the baseline
// system (Table III): a 64-entry fully-associative TLB, an 8 KB 4-way MMU
// (page-walk) cache, and the 4-level x86_64 page-table walker that issues
// the tagged isPTE memory reads PT-Guard verifies.
package tlb

import (
	"fmt"

	"ptguard/internal/obs"
)

// DefaultEntries is the TLB capacity (Table III).
const DefaultEntries = 64

type tlbEntry struct {
	vmid    int // address-space tag: 0 for the bare-metal OS, per-VM otherwise
	vpn     uint64
	pfn     uint64
	span    uint64 // pages covered: 1 for 4 KB entries, 512 for 2 MB
	valid   bool
	lastUse uint64
}

// TLB is a fully-associative, LRU translation lookaside buffer.
// Not safe for concurrent use.
type TLB struct {
	entries []tlbEntry
	clock   uint64

	hits, misses uint64
}

// New builds a TLB with the given capacity (0 selects 64).
func New(entries int) (*TLB, error) {
	if entries == 0 {
		entries = DefaultEntries
	}
	if entries < 0 {
		return nil, fmt.Errorf("tlb: negative capacity %d", entries)
	}
	return &TLB{entries: make([]tlbEntry, entries)}, nil
}

// Lookup translates a virtual page number; ok is false on a TLB miss.
// Spanned (huge-page) entries translate every page they cover.
func (t *TLB) Lookup(vpn uint64) (pfn uint64, ok bool) { return t.LookupVM(0, vpn) }

// LookupVM translates a virtual page number within the given VM's address
// space; ok is false on a TLB miss. Entries are VMID-tagged (like hardware
// VPID/ASID tags), so translations of different tenants coexist without
// cross-VM flushes — and never alias.
func (t *TLB) LookupVM(vmid int, vpn uint64) (pfn uint64, ok bool) {
	t.clock++
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.vmid == vmid && vpn-e.vpn < e.span {
			e.lastUse = t.clock
			t.hits++
			return e.pfn + (vpn - e.vpn), true
		}
	}
	t.misses++
	return 0, false
}

// Insert installs a 4 KB translation, evicting the LRU entry if full.
func (t *TLB) Insert(vpn, pfn uint64) { t.InsertSpanVM(0, vpn, pfn, 1) }

// InsertVM installs a 4 KB translation tagged with the VM's VMID.
func (t *TLB) InsertVM(vmid int, vpn, pfn uint64) { t.InsertSpanVM(vmid, vpn, pfn, 1) }

// InsertSpan installs a translation covering span consecutive pages (512
// for a 2 MB huge-page entry), evicting the LRU entry if full.
func (t *TLB) InsertSpan(vpn, pfn, span uint64) { t.InsertSpanVM(0, vpn, pfn, span) }

// InsertSpanVM installs a VMID-tagged translation covering span consecutive
// pages, evicting the LRU entry if full.
func (t *TLB) InsertSpanVM(vmid int, vpn, pfn, span uint64) {
	if span == 0 {
		span = 1
	}
	t.clock++
	victim := 0
	for i := range t.entries {
		if !t.entries[i].valid {
			victim = i
			break
		}
		if t.entries[i].lastUse < t.entries[victim].lastUse {
			victim = i
		}
	}
	t.entries[victim] = tlbEntry{vmid: vmid, vpn: vpn, pfn: pfn, span: span, valid: true, lastUse: t.clock}
}

// Flush invalidates every entry (context switch / shootdown).
func (t *TLB) Flush() {
	for i := range t.entries {
		t.entries[i] = tlbEntry{}
	}
}

// FlushVM invalidates only the given VM's entries (the targeted shootdown a
// hypervisor issues after rewriting one tenant's tables); other tenants'
// translations stay warm.
func (t *TLB) FlushVM(vmid int) {
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].vmid == vmid {
			t.entries[i] = tlbEntry{}
		}
	}
}

// Stats reports hit/miss counts.
type Stats struct {
	Hits, Misses uint64
}

// Stats returns a snapshot.
func (t *TLB) Stats() Stats { return Stats{Hits: t.hits, Misses: t.misses} }

// MissRate returns misses/lookups (0 when idle).
func (s Stats) MissRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Misses) / float64(total)
}

// ResetStats zeroes the hit/miss counters but keeps the entries.
func (t *TLB) ResetStats() { t.hits, t.misses = 0, 0 }

// PublishObs feeds the TLB counters into the metric registry under "tlb."
// (the obs snapshot path; a nil registry is a no-op).
func (t *TLB) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetCounter("tlb.hits", t.hits)
	r.SetCounter("tlb.misses", t.misses)
	r.SetGauge("tlb.miss_rate", t.Stats().MissRate())
}
