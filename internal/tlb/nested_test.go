package tlb

import (
	"testing"

	"ptguard/internal/cache"
	"ptguard/internal/pte"
)

func TestTLBVMIDTagging(t *testing.T) {
	tl, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	tl.InsertVM(1, 5, 100)
	tl.InsertVM(2, 5, 200)
	if pfn, ok := tl.LookupVM(1, 5); !ok || pfn != 100 {
		t.Fatalf("vm1 lookup = (%d, %v), want (100, true)", pfn, ok)
	}
	if pfn, ok := tl.LookupVM(2, 5); !ok || pfn != 200 {
		t.Fatalf("vm2 lookup = (%d, %v), want (200, true)", pfn, ok)
	}
	if _, ok := tl.LookupVM(3, 5); ok {
		t.Fatal("vm3 must miss: same vpn, different VMID")
	}
	// The untagged API is VMID 0 and must not alias tagged entries.
	tl.Insert(5, 300)
	if pfn, ok := tl.Lookup(5); !ok || pfn != 300 {
		t.Fatalf("vmid-0 lookup = (%d, %v), want (300, true)", pfn, ok)
	}
	if pfn, _ := tl.LookupVM(1, 5); pfn != 100 {
		t.Fatal("vmid-0 insert clobbered a tagged entry")
	}
}

func TestTLBFlushVMIsTargeted(t *testing.T) {
	tl, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	tl.InsertVM(1, 10, 111)
	tl.InsertVM(2, 20, 222)
	tl.FlushVM(1)
	if _, ok := tl.LookupVM(1, 10); ok {
		t.Fatal("vm1 entry survived FlushVM(1)")
	}
	if pfn, ok := tl.LookupVM(2, 20); !ok || pfn != 222 {
		t.Fatal("vm2 entry did not survive FlushVM(1)")
	}
}

// syntheticReader fabricates a present, walkable entry for any address, so
// a walker can be driven over an unbounded set of distinct table lines.
func syntheticReader(addr uint64) (pte.Line, bool) {
	var line pte.Line
	for i := range line {
		ea := addr + uint64(i*8)
		e := pte.Entry(0).
			SetBit(pte.BitPresent, true).
			SetBit(pte.BitWritable, true).
			WithPFN(ea / pte.PageSize % (1 << 28))
		line[i] = e
	}
	return line, true
}

// TestWalkerValuesBounded pins the fix for the values-map leak: the
// entry-value map backing MMU-cache presence must stay bounded by the
// cache's line capacity across arbitrarily many walks, and flush cycles
// must clear it — days-of-uptime fleet runs walk millions of distinct
// table lines through one walker.
func TestWalkerValuesBounded(t *testing.T) {
	w, err := NewWalker(syntheticReader)
	if err != nil {
		t.Fatal(err)
	}
	// Bound: one value per entry slot of every cached line.
	bound := cache.MMUConfig.SizeBytes / pte.LineBytes * pte.PTEsPerLine
	const flushCycles = 8
	const walksPerCycle = 4000
	for cycle := 0; cycle < flushCycles; cycle++ {
		for i := 0; i < walksPerCycle; i++ {
			// Distinct roots spread walks over distinct table lines.
			cr3 := uint64(cycle*walksPerCycle+i+1) * pte.PageSize
			w.Walk(cr3, uint64(i)*pte.PageSize)
			if got := w.CachedValues(); got > bound {
				t.Fatalf("cycle %d walk %d: %d cached values, bound %d", cycle, i, got, bound)
			}
		}
		w.Flush()
		if got := w.CachedValues(); got != 0 {
			t.Fatalf("cycle %d: %d cached values after Flush, want 0", cycle, got)
		}
	}
}

// TestWalkerValuesTrimmedOnEviction drives enough distinct upper-level
// lines through the MMU cache to force evictions and checks the value map
// tracks the cache rather than history.
func TestWalkerValuesTrimmedOnEviction(t *testing.T) {
	w, err := NewWalker(syntheticReader)
	if err != nil {
		t.Fatal(err)
	}
	lines := cache.MMUConfig.SizeBytes / pte.LineBytes
	walks := lines * 64 // far past capacity
	for i := 0; i < walks; i++ {
		w.Walk(uint64(i+1)*pte.PageSize, 0)
	}
	if st := w.Stats(); st.Walks != uint64(walks) {
		t.Fatalf("walks = %d, want %d", st.Walks, walks)
	}
	bound := lines * pte.PTEsPerLine
	if got := w.CachedValues(); got > bound {
		t.Fatalf("%d cached values after %d walks, bound %d", got, walks, bound)
	}
}
