package cpu

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "in-order preset", cfg: InOrder()},
		{name: "o3 preset", cfg: OutOfOrder()},
		{name: "zero value defaults", cfg: Config{}},
		{name: "negative freq", cfg: Config{FreqGHz: -1}, wantErr: true},
		{name: "negative cpi", cfg: Config{BaseCPI: -1}, wantErr: true},
		{name: "overlap one", cfg: Config{MLPOverlap: 1}, wantErr: true},
		{name: "overlap negative", cfg: Config{MLPOverlap: -0.1}, wantErr: true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestInOrderAccounting(t *testing.T) {
	c, err := New(InOrder())
	if err != nil {
		t.Fatal(err)
	}
	c.Retire(1000)
	c.StallMemory(250)
	if got := c.Cycles(); math.Abs(got-1250) > 1e-9 {
		t.Errorf("cycles = %v, want 1250", got)
	}
	if c.Instructions() != 1000 {
		t.Errorf("instructions = %d", c.Instructions())
	}
	if got := c.IPC(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("IPC = %v, want 0.8", got)
	}
}

func TestOutOfOrderHidesStalls(t *testing.T) {
	o3, _ := New(OutOfOrder())
	io, _ := New(InOrder())
	for _, c := range []*Core{o3, io} {
		c.Retire(100)
		c.StallMemory(1000)
	}
	if o3.Cycles() >= io.Cycles() {
		t.Errorf("O3 cycles %v not below in-order %v", o3.Cycles(), io.Cycles())
	}
}

func TestSecondsAndZeroIPC(t *testing.T) {
	c, _ := New(InOrder())
	if c.IPC() != 0 {
		t.Error("idle IPC should be 0")
	}
	c.Retire(3_000_000_000)
	if got := c.Seconds(); math.Abs(got-1) > 1e-9 {
		t.Errorf("3G instructions at 3GHz = %v s, want 1", got)
	}
	c.ResetStats()
	if c.Cycles() != 0 || c.Instructions() != 0 {
		t.Error("ResetStats left residue")
	}
}
