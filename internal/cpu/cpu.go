// Package cpu provides the core timing models: the paper's 3 GHz in-order
// core (Table III), which stalls for the full latency of every memory
// access, and the out-of-order approximation of §VII-C, which overlaps part
// of the miss latency through memory-level parallelism.
package cpu

import (
	"errors"

	"ptguard/internal/obs"
)

// DefaultFreqGHz is the core clock (Table III).
const DefaultFreqGHz = 3.0

// Config parameterises a core.
type Config struct {
	// FreqGHz is the clock frequency; 0 selects 3 GHz.
	FreqGHz float64
	// BaseCPI is the no-stall cycles per instruction; 0 selects 1.0.
	BaseCPI float64
	// MLPOverlap is the fraction of memory-stall cycles hidden by
	// out-of-order execution (0 for the in-order core; §VII-C's O3 model
	// hides a substantial fraction).
	MLPOverlap float64
}

// InOrder returns the Table III in-order core.
func InOrder() Config { return Config{FreqGHz: DefaultFreqGHz, BaseCPI: 1} }

// OutOfOrder returns the §VII-C multicore approximation: an O3 core that
// retires two instructions per cycle on compute and hides 40% of each
// memory stall through memory-level parallelism.
func OutOfOrder() Config {
	return Config{FreqGHz: DefaultFreqGHz, BaseCPI: 0.5, MLPOverlap: 0.4}
}

// Core accumulates retired instructions and cycles.
// Not safe for concurrent use.
type Core struct {
	cfg    Config
	cycles float64
	instrs uint64
}

// New builds a core.
func New(cfg Config) (*Core, error) {
	if cfg.FreqGHz == 0 {
		cfg.FreqGHz = DefaultFreqGHz
	}
	if cfg.BaseCPI == 0 {
		cfg.BaseCPI = 1
	}
	if cfg.FreqGHz < 0 || cfg.BaseCPI < 0 {
		return nil, errors.New("cpu: negative frequency or CPI")
	}
	if cfg.MLPOverlap < 0 || cfg.MLPOverlap >= 1 {
		return nil, errors.New("cpu: MLPOverlap outside [0, 1)")
	}
	return &Core{cfg: cfg}, nil
}

// Retire accounts n instructions of base execution.
func (c *Core) Retire(n int) {
	c.instrs += uint64(n)
	c.cycles += float64(n) * c.cfg.BaseCPI
}

// StallMemory accounts a memory stall of lat cycles, discounted by the MLP
// overlap for out-of-order cores.
func (c *Core) StallMemory(lat int) {
	c.cycles += float64(lat) * (1 - c.cfg.MLPOverlap)
}

// Cycles returns the elapsed core cycles.
func (c *Core) Cycles() float64 { return c.cycles }

// Instructions returns the retired instruction count.
func (c *Core) Instructions() uint64 { return c.instrs }

// IPC returns instructions per cycle.
func (c *Core) IPC() float64 {
	if c.cycles == 0 {
		return 0
	}
	return float64(c.instrs) / c.cycles
}

// Seconds converts the cycle count to wall time at the configured clock.
func (c *Core) Seconds() float64 { return c.cycles / (c.cfg.FreqGHz * 1e9) }

// ResetStats zeroes the cycle and instruction counters (post-warm-up).
func (c *Core) ResetStats() { c.cycles, c.instrs = 0, 0 }

// PublishObs feeds the core counters into the metric registry under "cpu."
// (the obs snapshot path; a nil registry is a no-op).
func (c *Core) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetCounter("cpu.instructions", c.instrs)
	r.SetGauge("cpu.cycles", c.cycles)
	r.SetGauge("cpu.ipc", c.IPC())
}
