package dram

import (
	"errors"

	"ptguard/internal/mitigate"
)

// SoftTRR models the software mitigation of Zhang et al. (paper §II-E item
// 3): the kernel uses performance counters to track activations of rows
// holding page tables, and refreshes (re-reads) those rows when an adjacent
// aggressor gets hot. The paper's critique, which this model reproduces:
// the design inherits TRR's structural weaknesses — it only watches
// distance-1 neighbours, so Half-Double's distance-2 disturbance flips PTE
// rows anyway, and its sampler threshold must guess the true Rowhammer
// threshold.
//
// SoftTRR is now a thin wrapper: the registered-row tracking lives in the
// mitigate.SoftTRR plugin and the charge physics in MitigatedHammerer
// (equivalence with the previous hand-rolled loop is pinned in
// equivalence_test.go).
type SoftTRR struct {
	dev     *Device
	tracker *mitigate.SoftTRR
	mh      *MitigatedHammerer
}

// NewSoftTRR builds the software mitigation over a device/hammerer pair.
func NewSoftTRR(dev *Device, hmr *Hammerer, samplerThreshold int) (*SoftTRR, error) {
	if dev == nil || hmr == nil {
		return nil, errors.New("dram: SoftTRR needs a device and hammerer")
	}
	if err := mitigate.ValidateThreshold(samplerThreshold); err != nil {
		return nil, errors.New("dram: sampler threshold must be positive")
	}
	tracker, err := mitigate.NewSoftTRR(mitigate.Config{
		Banks:       dev.geo.Channels * dev.geo.BanksPerChannel,
		RowsPerBank: dev.geo.RowsPerBank,
		Threshold:   samplerThreshold,
	})
	if err != nil {
		return nil, err
	}
	mh, err := NewMitigatedHammerer(dev, hmr, MitigationConfig{Mitigator: tracker})
	if err != nil {
		return nil, err
	}
	return &SoftTRR{dev: dev, tracker: tracker, mh: mh}, nil
}

// RegisterPTERow marks the row containing addr as holding page tables; the
// kernel knows this from its own allocations.
func (s *SoftTRR) RegisterPTERow(addr uint64) {
	loc := s.dev.Locate(addr)
	s.tracker.RegisterRow(loc.Channel*s.dev.geo.BanksPerChannel+loc.Bank, loc.Row)
}

// Mitigations returns the number of software refreshes issued.
func (s *SoftTRR) Mitigations() uint64 { return s.mh.Refreshes() }

// HammerWithSoftTRR issues count activations to the aggressor row under the
// software mitigation. Physical disturbance on each neighbour accumulates
// with every aggressor activation and is relieved only by a refresh; the
// software's PMU-based sampler refreshes *registered* distance-1 PTE rows
// whenever its counter crosses the sampler threshold. Unregistered rows get
// no protection at all, and — as with hardware TRR — each mitigative
// refresh activates the refreshed row, so a PTE row at distance 2 still
// accumulates disturbance and flips (Half-Double; §II-E: "the design has
// the same vulnerabilities as TRR"). Returns the rows that received flips.
func (s *SoftTRR) HammerWithSoftTRR(aggressorAddr uint64, count int) []int {
	return s.mh.Hammer(aggressorAddr, count)
}
