package dram

import "errors"

// SoftTRR models the software mitigation of Zhang et al. (paper §II-E item
// 3): the kernel uses performance counters to track activations of rows
// holding page tables, and refreshes (re-reads) those rows when an adjacent
// aggressor gets hot. The paper's critique, which this model reproduces:
// the design inherits TRR's structural weaknesses — it only watches
// distance-1 neighbours, so Half-Double's distance-2 disturbance flips PTE
// rows anyway, and its sampler threshold must guess the true Rowhammer
// threshold.
type SoftTRR struct {
	dev *Device
	hmr *Hammerer
	// samplerThreshold is the activation count at which the kernel
	// issues a mitigative read of a tracked PTE row.
	samplerThreshold int
	// pteRows marks the rows registered as holding page tables: a dense
	// bitset over the device's rowIndex space (one bit per row).
	pteRows []uint64

	mitigations uint64
}

// NewSoftTRR builds the software mitigation over a device/hammerer pair.
func NewSoftTRR(dev *Device, hmr *Hammerer, samplerThreshold int) (*SoftTRR, error) {
	if dev == nil || hmr == nil {
		return nil, errors.New("dram: SoftTRR needs a device and hammerer")
	}
	if samplerThreshold <= 0 {
		return nil, errors.New("dram: sampler threshold must be positive")
	}
	nRows := dev.geo.Channels * dev.geo.BanksPerChannel * dev.geo.RowsPerBank
	return &SoftTRR{
		dev:              dev,
		hmr:              hmr,
		samplerThreshold: samplerThreshold,
		pteRows:          make([]uint64, (nRows+63)/64),
	}, nil
}

// RegisterPTERow marks the row containing addr as holding page tables; the
// kernel knows this from its own allocations.
func (s *SoftTRR) RegisterPTERow(addr uint64) {
	loc := s.dev.Locate(addr)
	bankIdx := loc.Channel*s.dev.geo.BanksPerChannel + loc.Bank
	idx := s.dev.rowIndex(bankIdx, loc.Row)
	s.pteRows[idx/64] |= 1 << (idx % 64)
}

// isPTERow reports whether the bitset marks (bankIdx, row).
func (s *SoftTRR) isPTERow(bankIdx, row int) bool {
	idx := s.dev.rowIndex(bankIdx, row)
	return s.pteRows[idx/64]>>(idx%64)&1 == 1
}

// Mitigations returns the number of software refreshes issued.
func (s *SoftTRR) Mitigations() uint64 { return s.mitigations }

// HammerWithSoftTRR issues count activations to the aggressor row under the
// software mitigation. Physical disturbance on each neighbour accumulates
// with every aggressor activation and is relieved only by a refresh; the
// software's PMU-based sampler refreshes *registered* distance-1 PTE rows
// whenever its counter crosses the sampler threshold. Unregistered rows get
// no protection at all, and — as with hardware TRR — each mitigative
// refresh activates the refreshed row, so a PTE row at distance 2 still
// accumulates disturbance and flips (Half-Double; §II-E: "the design has
// the same vulnerabilities as TRR"). Returns the rows that received flips.
func (s *SoftTRR) HammerWithSoftTRR(aggressorAddr uint64, count int) []int {
	loc := s.dev.Locate(aggressorAddr)
	bankIdx := loc.Channel*s.dev.geo.BanksPerChannel + loc.Bank

	// disturb tracks physical charge loss per row since its last refresh.
	disturb := make(map[int]int)
	var flipped []int
	trip := func(row int) {
		if row < 0 || row >= s.dev.geo.RowsPerBank {
			return
		}
		if disturb[row] < s.hmr.cfg.Threshold {
			return
		}
		if s.hmr.disturbRow(loc.Channel, loc.Bank, row) > 0 {
			flipped = append(flipped, row)
		}
		disturb[row] = 0 // the cells have flipped; model one burst per window
	}

	swCounter := 0
	for issued := 0; issued < count; issued++ {
		// Physical effect of the aggressor activation.
		disturb[loc.Row-1]++
		disturb[loc.Row+1]++
		swCounter++
		if swCounter >= s.samplerThreshold {
			swCounter = 0
			for _, d := range []int{-1, +1} {
				victim := loc.Row + d
				if victim < 0 || victim >= s.dev.geo.RowsPerBank {
					continue
				}
				if !s.isPTERow(bankIdx, victim) {
					continue // the kernel never looks at it
				}
				// Mitigative read: charge restored, but the
				// refresh activates the victim row, disturbing
				// the row one step further out.
				s.mitigations++
				disturb[victim] = 0
				disturb[victim+d]++
			}
		}
		trip(loc.Row - 2)
		trip(loc.Row - 1)
		trip(loc.Row + 1)
		trip(loc.Row + 2)
	}
	return flipped
}
