package dram

import (
	"reflect"
	"testing"

	"ptguard/internal/pte"
)

// This file pins the TRR/SoftTRR refactor onto the MitigatedHammerer
// engine: the legacy hand-rolled loops are preserved verbatim below and
// every (sampler, count, layout) grid point must produce identical
// flipped-row sequences, refresh counts, and memory images. The pinned
// regime is the meaningful one — sampler threshold below the flip
// threshold — which both legacy models assumed.

// legacyTRR is the pre-refactor dram.TRR, verbatim.
type legacyTRR struct {
	dev              *Device
	hmr              *Hammerer
	samplerThreshold int
	refreshes        uint64
}

func (t *legacyTRR) hammer(aggressorAddr uint64, count int) []int {
	loc := t.dev.Locate(aggressorAddr)
	bankIdx := loc.Channel*t.dev.geo.BanksPerChannel + loc.Bank
	agg := t.dev.rowIndex(bankIdx, loc.Row)

	var flipped []int
	for issued := 0; issued < count; issued++ {
		if t.dev.addActivations(bankIdx, loc.Row, 1) < t.samplerThreshold {
			continue
		}
		t.dev.activations[agg] = 0
		for _, d := range []int{-1, +1} {
			victim := loc.Row + d
			if victim < 0 || victim >= t.dev.geo.RowsPerBank {
				continue
			}
			t.refreshes++
			v := t.dev.rowIndex(bankIdx, victim)
			if t.dev.addActivations(bankIdx, victim, 1) >= t.hmr.cfg.Threshold {
				far := victim + d
				if far < 0 || far >= t.dev.geo.RowsPerBank {
					continue
				}
				if t.hmr.disturbRow(loc.Channel, loc.Bank, far) > 0 {
					flipped = append(flipped, far)
				}
				t.dev.activations[v] = 0
			}
		}
	}
	return flipped
}

// legacySoftTRR is the pre-refactor dram.SoftTRR, verbatim.
type legacySoftTRR struct {
	dev              *Device
	hmr              *Hammerer
	samplerThreshold int
	pteRows          []uint64
	mitigations      uint64
}

func newLegacySoftTRR(dev *Device, hmr *Hammerer, sampler int) *legacySoftTRR {
	nRows := dev.geo.Channels * dev.geo.BanksPerChannel * dev.geo.RowsPerBank
	return &legacySoftTRR{
		dev: dev, hmr: hmr, samplerThreshold: sampler,
		pteRows: make([]uint64, (nRows+63)/64),
	}
}

func (s *legacySoftTRR) registerPTERow(addr uint64) {
	loc := s.dev.Locate(addr)
	bankIdx := loc.Channel*s.dev.geo.BanksPerChannel + loc.Bank
	idx := s.dev.rowIndex(bankIdx, loc.Row)
	s.pteRows[idx/64] |= 1 << (idx % 64)
}

func (s *legacySoftTRR) isPTERow(bankIdx, row int) bool {
	idx := s.dev.rowIndex(bankIdx, row)
	return s.pteRows[idx/64]>>(idx%64)&1 == 1
}

func (s *legacySoftTRR) hammer(aggressorAddr uint64, count int) []int {
	loc := s.dev.Locate(aggressorAddr)
	bankIdx := loc.Channel*s.dev.geo.BanksPerChannel + loc.Bank

	disturb := make(map[int]int)
	var flipped []int
	trip := func(row int) {
		if row < 0 || row >= s.dev.geo.RowsPerBank {
			return
		}
		if disturb[row] < s.hmr.cfg.Threshold {
			return
		}
		if s.hmr.disturbRow(loc.Channel, loc.Bank, row) > 0 {
			flipped = append(flipped, row)
		}
		disturb[row] = 0
	}

	swCounter := 0
	for issued := 0; issued < count; issued++ {
		disturb[loc.Row-1]++
		disturb[loc.Row+1]++
		swCounter++
		if swCounter >= s.samplerThreshold {
			swCounter = 0
			for _, d := range []int{-1, +1} {
				victim := loc.Row + d
				if victim < 0 || victim >= s.dev.geo.RowsPerBank {
					continue
				}
				if !s.isPTERow(bankIdx, victim) {
					continue
				}
				s.mitigations++
				disturb[victim] = 0
				disturb[victim+d]++
			}
		}
		trip(loc.Row - 2)
		trip(loc.Row - 1)
		trip(loc.Row + 1)
		trip(loc.Row + 2)
	}
	return flipped
}

// worldSnapshot captures every stored line for memory-image comparison.
func worldSnapshot(d *Device) map[uint64]pte.Line {
	out := make(map[uint64]pte.Line)
	d.Lines(func(addr uint64, line pte.Line) { out[addr] = line })
	return out
}

func TestTRREquivalenceWithLegacy(t *testing.T) {
	cases := []struct {
		name            string
		aggRow          int
		sampler, thresh int
		count           int
		victims         []int // rows with stored data
	}{
		{"half-double-interior", 300, 50, 400, 50 * 400 * 2, []int{298, 299, 301, 302}},
		{"edge-row-zero", 0, 40, 300, 40 * 300 * 2, []int{1, 2}},
		{"edge-row-one", 1, 40, 300, 40 * 300 * 2, []int{0, 2, 3}},
		{"below-sampler", 500, 100, 400, 99, []int{499, 501}},
		{"single-crossing", 700, 30, 200, 30 * 200, []int{698, 702}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(legacy bool) ([]int, uint64, map[uint64]pte.Line) {
				d := newTestDevice(t)
				h, err := NewHammerer(d, HammerConfig{Threshold: tc.thresh, FlipProb: 0.5, Seed: 77})
				if err != nil {
					t.Fatal(err)
				}
				var data pte.Line
				data[0] = pte.Entry(0xDEADBEEF)
				for _, r := range tc.victims {
					d.WriteLine(d.AddrOfRow(5, r, 0), data)
				}
				agg := d.AddrOfRow(5, tc.aggRow, 0)
				if legacy {
					lt := &legacyTRR{dev: d, hmr: h, samplerThreshold: tc.sampler}
					return lt.hammer(agg, tc.count), lt.refreshes, worldSnapshot(d)
				}
				trr, err := NewTRR(d, h, tc.sampler)
				if err != nil {
					t.Fatal(err)
				}
				return trr.HammerWithTRR(agg, tc.count), trr.Refreshes(), worldSnapshot(d)
			}
			wantFlips, wantRefreshes, wantMem := run(true)
			gotFlips, gotRefreshes, gotMem := run(false)
			if !reflect.DeepEqual(gotFlips, wantFlips) {
				t.Errorf("flipped rows diverged: legacy %v, refactored %v", wantFlips, gotFlips)
			}
			if gotRefreshes != wantRefreshes {
				t.Errorf("refresh count diverged: legacy %d, refactored %d", wantRefreshes, gotRefreshes)
			}
			if !reflect.DeepEqual(gotMem, wantMem) {
				t.Error("memory images diverged after hammering")
			}
		})
	}
}

func TestSoftTRREquivalenceWithLegacy(t *testing.T) {
	cases := []struct {
		name            string
		aggRow          int
		sampler, thresh int
		count           int
		registered      []int // rows registered as PTE rows (also stored)
		unregistered    []int // rows only stored
	}{
		{"registered-neighbour", 400, 60, 500, 60 * 500 * 2, []int{399, 401}, nil},
		{"half-double-chain", 600, 40, 300, 40 * 300 * 2, []int{601, 602}, nil},
		{"unregistered-flips", 500, 100, 300, 2 * 300, nil, []int{499, 501}},
		{"mixed", 800, 50, 250, 50 * 250 * 2, []int{799}, []int{801, 802}},
		{"edge", 0, 30, 200, 30 * 200 * 2, []int{1, 2}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(legacy bool) ([]int, uint64, map[uint64]pte.Line) {
				d := newTestDevice(t)
				h, err := NewHammerer(d, HammerConfig{Threshold: tc.thresh, FlipProb: 0.5, Seed: 78})
				if err != nil {
					t.Fatal(err)
				}
				var data pte.Line
				data[1] = pte.Entry(0xCAFE)
				for _, r := range append(append([]int(nil), tc.registered...), tc.unregistered...) {
					d.WriteLine(d.AddrOfRow(4, r, 0), data)
				}
				agg := d.AddrOfRow(4, tc.aggRow, 0)
				if legacy {
					ls := newLegacySoftTRR(d, h, tc.sampler)
					for _, r := range tc.registered {
						ls.registerPTERow(d.AddrOfRow(4, r, 0))
					}
					return ls.hammer(agg, tc.count), ls.mitigations, worldSnapshot(d)
				}
				st, err := NewSoftTRR(d, h, tc.sampler)
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range tc.registered {
					st.RegisterPTERow(d.AddrOfRow(4, r, 0))
				}
				return st.HammerWithSoftTRR(agg, tc.count), st.Mitigations(), worldSnapshot(d)
			}
			wantFlips, wantMitigations, wantMem := run(true)
			gotFlips, gotMitigations, gotMem := run(false)
			if !reflect.DeepEqual(gotFlips, wantFlips) {
				t.Errorf("flipped rows diverged: legacy %v, refactored %v", wantFlips, gotFlips)
			}
			if gotMitigations != wantMitigations {
				t.Errorf("mitigation count diverged: legacy %d, refactored %d", wantMitigations, gotMitigations)
			}
			if !reflect.DeepEqual(gotMem, wantMem) {
				t.Error("memory images diverged after hammering")
			}
		})
	}
}
