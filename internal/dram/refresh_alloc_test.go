package dram

import "testing"

// RefreshWindow used to reallocate the whole activation map every window;
// with the dense counters it must reset in place. These gates keep the
// steady-state refresh path allocation-free.

func TestRefreshWindowZeroAlloc(t *testing.T) {
	d, err := NewDevice(Geometry{}, Timing{})
	if err != nil {
		t.Fatal(err)
	}
	// Warm the touched list's capacity once, as a long-running simulation
	// would, then require steady-state windows to stay off the heap.
	for i := 0; i < 64; i++ {
		d.Access(uint64(i)*8192, false)
	}
	d.RefreshWindow()
	if n := testing.AllocsPerRun(100, func() {
		for i := 0; i < 64; i++ {
			d.Access(uint64(i)*8192, i%2 == 0)
		}
		d.RefreshWindow()
	}); n != 0 {
		t.Errorf("steady-state access+refresh window allocates %.1f objects/op, want 0", n)
	}
}

func TestRefreshWindowClearsTouchedRowsOnly(t *testing.T) {
	d, err := NewDevice(Geometry{}, Timing{})
	if err != nil {
		t.Fatal(err)
	}
	addrs := []uint64{0, 1 << 20, 3 << 21}
	for _, a := range addrs {
		d.Access(a, false)
		d.Access(a, false) // row hit: no second activation
	}
	for _, a := range addrs {
		if d.Activations(a) != 1 {
			t.Fatalf("addr %#x: %d activations, want 1", a, d.Activations(a))
		}
	}
	d.RefreshWindow()
	for _, a := range addrs {
		if d.Activations(a) != 0 {
			t.Errorf("addr %#x: %d activations after refresh, want 0", a, d.Activations(a))
		}
	}
	if got := len(d.actTouched); got != 0 {
		t.Errorf("touched list holds %d entries after refresh, want 0", got)
	}
	if cap(d.actTouched) == 0 {
		t.Error("touched list capacity was released; reset must be in place")
	}
}

// BenchmarkRefreshWindow is the regression benchmark for the per-window
// reallocation bug: a window of accesses followed by the refresh must show
// zero allocs/op.
func BenchmarkRefreshWindow(b *testing.B) {
	d, err := NewDevice(Geometry{}, Timing{})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 128; j++ {
			d.Access(uint64(j)*8192+uint64(i%4)*524288, false)
		}
		d.RefreshWindow()
	}
}
