package dram

import (
	"testing"
	"testing/quick"

	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

func newTestDevice(tb testing.TB) *Device {
	tb.Helper()
	d, err := NewDevice(Geometry{}, Timing{})
	if err != nil {
		tb.Fatal(err)
	}
	return d
}

func TestDefaultGeometryCapacity(t *testing.T) {
	// Table III: 4 GB DDR4.
	if got := DefaultGeometry().Capacity(); got != 4<<30 {
		t.Errorf("capacity = %d, want 4 GiB", got)
	}
}

func TestNewDeviceValidation(t *testing.T) {
	if _, err := NewDevice(Geometry{Channels: -1, BanksPerChannel: 1, RowsPerBank: 1, RowBytes: 64}, Timing{}); err == nil {
		t.Error("negative channels accepted")
	}
	if _, err := NewDevice(Geometry{Channels: 1, BanksPerChannel: 1, RowsPerBank: 1, RowBytes: 32}, Timing{}); err == nil {
		t.Error("row smaller than a line accepted")
	}
}

func TestLocateAddrOfRowInverse(t *testing.T) {
	d := newTestDevice(t)
	f := func(bank uint8, row uint16, col uint8) bool {
		b := int(bank) % d.geo.BanksPerChannel
		r := int(row) % d.geo.RowsPerBank
		c := int(col) % (d.geo.RowBytes / pte.LineBytes)
		loc := d.Locate(d.AddrOfRow(b, r, c))
		return loc.Bank == b && loc.Row == r && loc.Column == c && loc.Channel == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowBufferTiming(t *testing.T) {
	d := newTestDevice(t)
	a := d.AddrOfRow(3, 100, 0)
	b := d.AddrOfRow(3, 100, 5) // same row, different column
	c := d.AddrOfRow(3, 200, 0) // same bank, different row

	if got := d.Access(a, false); got != DefaultTiming().RowEmpty {
		t.Errorf("first access latency = %d, want RowEmpty %d", got, DefaultTiming().RowEmpty)
	}
	if got := d.Access(b, false); got != DefaultTiming().RowHit {
		t.Errorf("row-hit latency = %d, want %d", got, DefaultTiming().RowHit)
	}
	if got := d.Access(c, false); got != DefaultTiming().RowConflict {
		t.Errorf("row-conflict latency = %d, want %d", got, DefaultTiming().RowConflict)
	}
	if got := d.Access(c, true); got != DefaultTiming().RowHit+DefaultTiming().WriteExtra {
		t.Errorf("write latency = %d", got)
	}
	s := d.Stats()
	if s.Reads != 3 || s.Writes != 1 || s.RowHits != 2 || s.RowMisses != 2 {
		t.Errorf("stats = %+v", s)
	}
}

func TestActivationTrackingAndRefresh(t *testing.T) {
	d := newTestDevice(t)
	a := d.AddrOfRow(1, 50, 0)
	b := d.AddrOfRow(1, 60, 0)
	for i := 0; i < 5; i++ {
		d.Access(a, false) // activate row 50
		d.Access(b, false) // conflict activates row 60
	}
	if got := d.Activations(a); got != 5 {
		t.Errorf("activations = %d, want 5", got)
	}
	d.RefreshWindow()
	if got := d.Activations(a); got != 0 {
		t.Errorf("activations after refresh = %d, want 0", got)
	}
}

func TestLineStorageRoundTrip(t *testing.T) {
	d := newTestDevice(t)
	var line pte.Line
	line[0] = pte.Entry(0xDEADBEEF)
	d.WriteLine(0x1040, line)
	if got := d.ReadLine(0x1040); got != line {
		t.Error("line storage round trip failed")
	}
	// Unaligned address maps to the containing line.
	if got := d.ReadLine(0x1077); got != line {
		t.Error("unaligned read missed the containing line")
	}
	if got := d.ReadLine(0x2000); got != (pte.Line{}) {
		t.Error("unwritten line not zero")
	}
}

func TestHammerBelowThresholdNoFlips(t *testing.T) {
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: 1000, FlipProb: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	victim := d.AddrOfRow(2, 101, 0)
	var data pte.Line
	data[0] = 0x1234
	d.WriteLine(victim, data)
	agg := d.AddrOfRow(2, 100, 0)
	if rows := h.HammerRow(agg, 999, []int{+1}); rows != nil {
		t.Errorf("flips below threshold: %v", rows)
	}
	if d.ReadLine(victim) != data {
		t.Error("victim changed below threshold")
	}
}

func TestHammerAboveThresholdFlips(t *testing.T) {
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: 1000, FlipProb: 0.5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	victim := d.AddrOfRow(2, 101, 0)
	var data pte.Line
	d.WriteLine(victim, data)
	agg := d.AddrOfRow(2, 100, 0)
	rows := h.HammerRow(agg, 2000, []int{+1})
	if len(rows) != 1 || rows[0] != 101 {
		t.Fatalf("flipped rows = %v, want [101]", rows)
	}
	if d.ReadLine(victim) == data {
		t.Error("victim unchanged above threshold at p=0.5")
	}
	if h.FlipsInjected() == 0 {
		t.Error("flip counter not incremented")
	}
}

func TestDoubleSidedFlipsVictim(t *testing.T) {
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: ThresholdDDR4, FlipProb: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	victim := d.AddrOfRow(4, 500, 0)
	var data pte.Line
	d.WriteLine(victim, data)
	if got := h.DoubleSided(victim, ThresholdDDR4); got != 2 {
		t.Errorf("double-sided hit count = %d, want 2 (both sides)", got)
	}
	if d.ReadLine(victim) == data {
		t.Error("double-sided hammering left victim intact")
	}
}

func TestInjectLineFaultsRate(t *testing.T) {
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	d.WriteLine(0x4000, pte.Line{})
	total := 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		d.WriteLine(0x4000, pte.Line{})
		total += h.InjectLineFaults(0x4000, FlipProbLPDDR4)
	}
	// Expected flips per 512-bit line at p=1/128 is 4.
	avg := float64(total) / trials
	if avg < 3.5 || avg > 4.5 {
		t.Errorf("average flips per line = %.2f, want ~4", avg)
	}
}

func TestFlipLineBitsSurgical(t *testing.T) {
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	d.WriteLine(0x8000, pte.Line{})
	h.FlipLineBits(0x8000, []int{0, 64, 511})
	got := d.ReadLine(0x8000)
	if uint64(got[0]) != 1 || uint64(got[1]) != 1 || uint64(got[7]) != 1<<63 {
		t.Errorf("surgical flips wrong: %v", got)
	}
	// Out-of-range bits are ignored.
	h.FlipLineBits(0x8000, []int{-1, 512})
	if d.ReadLine(0x8000) != got {
		t.Error("out-of-range flip changed the line")
	}
}

func TestTRRBlocksClassicHammer(t *testing.T) {
	// With the sampler threshold far below the flip threshold, classic
	// distance-1 hammering never flips: victims are refreshed in time.
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: ThresholdDDR4, FlipProb: 1, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	trr, err := NewTRR(d, h, ThresholdDDR4/4)
	if err != nil {
		t.Fatal(err)
	}
	victim := d.AddrOfRow(5, 300, 0)
	var data pte.Line
	d.WriteLine(victim, data)
	agg := d.AddrOfRow(5, 299, 0)
	flipped := trr.HammerWithTRR(agg, 10*ThresholdDDR4)
	for _, r := range flipped {
		if r == 300 {
			t.Fatal("TRR failed to protect the distance-1 victim")
		}
	}
	if trr.Refreshes() == 0 {
		t.Error("TRR never mitigated")
	}
}

func TestHalfDoubleDefeatsTRR(t *testing.T) {
	// §II-B: hammering row R while TRR refreshes R±1 flips bits in R±2.
	// Each mitigative refresh is one activation of the refreshed row, so
	// the distance-2 victim needs sampler*threshold aggressor activations
	// to flip; scaled-down thresholds keep the test fast.
	const (
		flipThreshold = 1000
		sampler       = 100
	)
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: flipThreshold, FlipProb: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	trr, err := NewTRR(d, h, sampler)
	if err != nil {
		t.Fatal(err)
	}
	// The true victim sits at distance 2 from the aggressor.
	victim := d.AddrOfRow(5, 302, 0)
	var data pte.Line
	d.WriteLine(victim, data)
	agg := d.AddrOfRow(5, 300, 0)
	flipped := trr.HammerWithTRR(agg, 2*sampler*flipThreshold)
	hitVictim := false
	for _, r := range flipped {
		if r == 302 {
			hitVictim = true
		}
		if r == 299 || r == 301 {
			t.Errorf("distance-1 row %d flipped despite TRR", r)
		}
	}
	if !hitVictim {
		t.Error("Half-Double failed to reach the distance-2 victim")
	}
	if d.ReadLine(victim) == data {
		t.Error("distance-2 victim data unchanged")
	}
}

func TestHammererValidation(t *testing.T) {
	d := newTestDevice(t)
	if _, err := NewHammerer(nil, HammerConfig{}); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewHammerer(d, HammerConfig{FlipProb: 1.5}); err == nil {
		t.Error("flip prob > 1 accepted")
	}
	if _, err := NewTRR(d, nil, 10); err == nil {
		t.Error("nil hammerer accepted")
	}
}

func TestDeterministicFaultInjection(t *testing.T) {
	mk := func() *Device {
		d := newTestDevice(t)
		var line pte.Line
		d.WriteLine(0x1000, line)
		h, _ := NewHammerer(d, HammerConfig{Seed: 99})
		h.InjectLineFaults(0x1000, 0.1)
		return d
	}
	if mk().ReadLine(0x1000) != mk().ReadLine(0x1000) {
		t.Error("same seed produced different faults")
	}
	_ = stats.NewRNG // keep import if unused elsewhere
}

func TestSoftTRRProtectsRegisteredPTERow(t *testing.T) {
	const (
		flipThreshold = 1000
		sampler       = 100
	)
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: flipThreshold, FlipProb: 1, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSoftTRR(d, h, sampler)
	if err != nil {
		t.Fatal(err)
	}
	pteRow := d.AddrOfRow(3, 400, 0)
	var data pte.Line
	d.WriteLine(pteRow, data)
	st.RegisterPTERow(pteRow)
	agg := d.AddrOfRow(3, 399, 0)
	flipped := st.HammerWithSoftTRR(agg, 5*flipThreshold)
	for _, r := range flipped {
		if r == 400 {
			t.Fatal("registered PTE row flipped despite SoftTRR")
		}
	}
	if st.Mitigations() == 0 {
		t.Error("SoftTRR never mitigated")
	}
}

func TestSoftTRRIgnoresUnregisteredRows(t *testing.T) {
	// SoftTRR only watches page-table rows; ordinary data rows next to a
	// hot aggressor flip as if unprotected.
	const flipThreshold = 1000
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: flipThreshold, FlipProb: 1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSoftTRR(d, h, flipThreshold/10)
	if err != nil {
		t.Fatal(err)
	}
	victim := d.AddrOfRow(3, 500, 0)
	var data pte.Line
	d.WriteLine(victim, data)
	agg := d.AddrOfRow(3, 499, 0)
	flipped := st.HammerWithSoftTRR(agg, 2*flipThreshold)
	found := false
	for _, r := range flipped {
		if r == 500 {
			found = true
		}
	}
	if !found {
		t.Error("unregistered data row survived; SoftTRR should not protect it")
	}
}

func TestHalfDoubleDefeatsSoftTRR(t *testing.T) {
	// §II-E item 3: SoftTRR inherits TRR's weakness — the mitigation's
	// refreshes of the distance-1 PTE row disturb the distance-2 PTE row.
	const (
		flipThreshold = 1000
		sampler       = 100
	)
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: flipThreshold, FlipProb: 0.5, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewSoftTRR(d, h, sampler)
	if err != nil {
		t.Fatal(err)
	}
	near := d.AddrOfRow(4, 601, 0) // distance 1: registered and mitigated
	far := d.AddrOfRow(4, 602, 0)  // distance 2: the Half-Double victim
	var data pte.Line
	d.WriteLine(near, data)
	d.WriteLine(far, data)
	st.RegisterPTERow(near)
	st.RegisterPTERow(far)
	agg := d.AddrOfRow(4, 600, 0)
	flipped := st.HammerWithSoftTRR(agg, 2*sampler*flipThreshold)
	hitFar := false
	for _, r := range flipped {
		if r == 601 {
			t.Error("distance-1 PTE row flipped despite mitigation")
		}
		if r == 602 {
			hitFar = true
		}
	}
	if !hitFar {
		t.Error("Half-Double failed to flip the distance-2 PTE row through SoftTRR")
	}
}

func TestSoftTRRValidation(t *testing.T) {
	d := newTestDevice(t)
	h, _ := NewHammerer(d, HammerConfig{Seed: 1})
	if _, err := NewSoftTRR(nil, h, 10); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewSoftTRR(d, h, 0); err == nil {
		t.Error("zero sampler accepted")
	}
}

func TestAutoRefreshBoundsHammering(t *testing.T) {
	d := newTestDevice(t)
	d.SetAutoRefresh(500) // refresh every 500 accesses
	h, err := NewHammerer(d, HammerConfig{Threshold: 1000, FlipProb: 1, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	victim := d.AddrOfRow(2, 101, 0)
	var data pte.Line
	d.WriteLine(victim, data)
	agg := d.AddrOfRow(2, 100, 0)
	// Hammer through Access (the refresh-aware path): activations never
	// accumulate past the window, so no flips occur even after far more
	// than the threshold in total accesses.
	for i := 0; i < 5000; i++ {
		d.Access(agg, false)
		// Force a precharge so every access activates.
		d.Access(d.AddrOfRow(2, 300, 0), false)
	}
	if got := d.Activations(agg); got >= 1000 {
		t.Errorf("activations = %d, refresh never bounded them", got)
	}
	if d.RefreshWindows() == 0 {
		t.Error("no refresh windows elapsed")
	}
	if d.ReadLine(victim) != data {
		t.Error("victim flipped despite auto-refresh pacing")
	}
	// Negative values disable cleanly.
	d.SetAutoRefresh(-5)
	_ = h
}
