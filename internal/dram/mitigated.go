package dram

import (
	"errors"
	"sort"

	"ptguard/internal/mitigate"
	"ptguard/internal/obs"
)

// maxRefreshCascade bounds the mitigative-refresh cascade one activation
// can trigger (only the oracle cascades, and only a few levels deep at
// sane thresholds); it guards against a misconfigured threshold of 1
// turning the refresh-begets-refresh feedback into an infinite loop.
const maxRefreshCascade = 1 << 12

// MitigationConfig wires a tracker plugin and its resource model into a
// MitigatedHammerer.
type MitigationConfig struct {
	// Mitigator is the tracker plugin watching the activation stream;
	// nil runs unmitigated (same as mitigate's "none").
	Mitigator mitigate.Mitigator
	// Budget, when non-nil, charges every mitigative refresh against a
	// per-tREFI allowance; refreshes that find no slot are dropped.
	Budget *mitigate.Budget
	// WindowActs, when positive, models the tREFW auto-refresh: every
	// WindowActs activations the device refreshes (charge restored
	// everywhere, disturbance ledger cleared) and the tracker's
	// OnRefreshWindow fires.
	WindowActs int
}

// MitigationStats snapshots one session's mitigation activity.
type MitigationStats struct {
	// Activations is the number of aggressor activations issued.
	Activations uint64
	// RefreshesIssued counts mitigative refreshes actually performed.
	RefreshesIssued uint64
	// RefreshesDropped counts refreshes the budget rejected.
	RefreshesDropped uint64
	// CascadeTruncated counts refresh requests discarded by the cascade
	// bound (nonzero only under degenerate thresholds).
	CascadeTruncated uint64
	// Tracker is the plugin's own counter snapshot.
	Tracker mitigate.Stats
	// Budget is the refresh-budget snapshot (zero when unbudgeted).
	Budget mitigate.BudgetStats
}

// MitigatedHammerer is the unified mitigation physics engine: it issues
// activations to aggressor rows while a mitigate.Mitigator plugin watches
// the stream, and it owns the charge ledger both the attack and the
// defense act on. Per activation: the aggressor's distance-1 neighbours
// lose charge; the tracker may answer with victim-row refreshes, each of
// which restores its target's charge but — being itself a row activation
// — pushes disturbance one row further out (the Half-Double lever);
// any row whose accumulated loss crosses the hammerer's flip threshold
// takes fault-model bit flips and its charge resets.
//
// The engine replaces the hand-rolled loops TRR and SoftTRR used to
// duplicate: both are now thin constructors over this type (equivalence
// pinned in equivalence_test.go).
type MitigatedHammerer struct {
	dev *Device
	hmr *Hammerer
	cfg MitigationConfig

	// disturb is the per-row charge-loss ledger since the row's last
	// refresh, dense over rowIndex like the device's activation
	// counters; disturbTouched lists nonzero entries for in-place
	// window clears.
	disturb        []int32
	disturbTouched []int32

	// dirty lists the rows whose ledger changed during the current
	// activation; they are tripped in ascending row order (the order
	// the legacy loops used, pinning RNG-stream compatibility).
	dirty []int

	// queue is the pending refresh list for the current activation,
	// carrying each refresh's source row so the outward push direction
	// is known; oracle cascades append to it mid-drain.
	queue []refreshOp

	stats      MitigationStats
	windowActs int
}

type refreshOp struct{ row, source int }

// NewMitigatedHammerer builds a session over a device/hammerer pair.
func NewMitigatedHammerer(dev *Device, hmr *Hammerer, cfg MitigationConfig) (*MitigatedHammerer, error) {
	if dev == nil || hmr == nil {
		return nil, errors.New("dram: mitigated hammerer needs a device and hammerer")
	}
	if cfg.WindowActs < 0 {
		return nil, errors.New("dram: negative refresh-window length")
	}
	nRows := dev.geo.Channels * dev.geo.BanksPerChannel * dev.geo.RowsPerBank
	return &MitigatedHammerer{
		dev:     dev,
		hmr:     hmr,
		cfg:     cfg,
		disturb: make([]int32, nRows),
	}, nil
}

// Stats returns the session counters, including the tracker's and the
// budget's own snapshots.
func (m *MitigatedHammerer) Stats() MitigationStats {
	s := m.stats
	if m.cfg.Mitigator != nil {
		s.Tracker = m.cfg.Mitigator.Stats()
	}
	s.Budget = m.cfg.Budget.Stats()
	return s
}

// Refreshes returns the number of mitigative refreshes performed.
func (m *MitigatedHammerer) Refreshes() uint64 { return m.stats.RefreshesIssued }

// PublishObs feeds the session, tracker, and budget counters into the
// metric registry under "mitigate." (nil registry = no-op, the
// zero-overhead disabled path).
func (m *MitigatedHammerer) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	s := m.Stats()
	r.SetCounter("mitigate.activations", s.Activations)
	r.SetCounter("mitigate.refreshes_issued", s.RefreshesIssued)
	r.SetCounter("mitigate.refreshes_dropped", s.RefreshesDropped)
	r.SetCounter("mitigate.tracker_refreshes", s.Tracker.Refreshes)
	r.SetCounter("mitigate.tracker_sampler_misses", s.Tracker.SamplerMisses)
	r.SetCounter("mitigate.tracker_evictions", s.Tracker.Evictions)
	r.SetGauge("mitigate.tracker_rows", float64(s.Tracker.TrackedRows))
	r.SetCounter("mitigate.budget_issued", s.Budget.Issued)
	r.SetCounter("mitigate.budget_dropped", s.Budget.Dropped)
	r.SetCounter("mitigate.budget_starved_windows", s.Budget.StarvedWindows)
}

// Hammer issues count activations to the single aggressor row containing
// aggressorAddr under the configured mitigation, returning the rows that
// received flips (a row appears once per flip burst).
func (m *MitigatedHammerer) Hammer(aggressorAddr uint64, count int) []int {
	loc := m.dev.Locate(aggressorAddr)
	return m.hammerRows(loc.Channel, loc.Bank, []int{loc.Row}, count)
}

// HammerPattern aims the pattern at the victim row containing victimAddr:
// the pattern's aggressor rows are activated round-robin in offset order
// until totalActs activations have been issued. Out-of-range aggressors
// are skipped at expansion time.
func (m *MitigatedHammerer) HammerPattern(p Pattern, victimAddr uint64, totalActs int) ([]int, error) {
	loc := m.dev.Locate(victimAddr)
	rows := make([]int, 0, len(p.Offsets))
	for _, off := range p.Offsets {
		if r := loc.Row + off; r >= 0 && r < m.dev.geo.RowsPerBank {
			rows = append(rows, r)
		}
	}
	if len(rows) == 0 {
		return nil, errors.New("dram: pattern has no in-range aggressor rows")
	}
	return m.hammerRows(loc.Channel, loc.Bank, rows, totalActs), nil
}

// hammerRows is the engine loop: one activation per iteration,
// round-robin across the aggressor rows.
func (m *MitigatedHammerer) hammerRows(channel, bank int, rows []int, count int) []int {
	bankIdx := channel*m.dev.geo.BanksPerChannel + bank
	var flipped []int
	for issued := 0; issued < count; issued++ {
		row := rows[issued%len(rows)]
		m.dev.addActivations(bankIdx, row, 1)
		m.stats.Activations++
		m.cfg.Budget.Tick()

		// Physics: the activation drains charge from both neighbours.
		m.bump(bankIdx, row-1)
		m.bump(bankIdx, row+1)

		// Defense: the tracker may answer with refreshes; drain the
		// queue, letting refresh-observing trackers cascade.
		if m.cfg.Mitigator != nil {
			m.queue = m.queue[:0]
			for _, v := range m.cfg.Mitigator.OnActivate(bankIdx, row) {
				m.queue = append(m.queue, refreshOp{row: v, source: row})
			}
			m.drainRefreshes(bankIdx)
		}

		// Any row whose ledger moved may have crossed the flip
		// threshold; trip in ascending row order.
		flipped = m.tripDirty(channel, bank, flipped)

		if m.cfg.WindowActs > 0 && m.stats.Activations%uint64(m.cfg.WindowActs) == 0 {
			m.refreshWindow()
		}
	}
	return flipped
}

// drainRefreshes performs every queued mitigative refresh: charge
// restored at the target, one unit of disturbance pushed outward (away
// from the source), and refresh-observing trackers get to cascade.
func (m *MitigatedHammerer) drainRefreshes(bankIdx int) {
	ro, observes := m.cfg.Mitigator.(mitigate.RefreshObserver)
	for i := 0; i < len(m.queue); i++ {
		op := m.queue[i]
		if op.row < 0 || op.row >= m.dev.geo.RowsPerBank {
			continue
		}
		if !m.cfg.Budget.TryConsume() {
			m.stats.RefreshesDropped++
			continue
		}
		m.stats.RefreshesIssued++
		m.resetDisturb(bankIdx, op.row)
		// The refresh is itself an activation of the refreshed row:
		// its far-side neighbour takes disturbance (Half-Double).
		if dir := sign(op.row - op.source); dir != 0 {
			m.bump(bankIdx, op.row+dir)
		}
		if observes && len(m.queue) < maxRefreshCascade {
			for _, v := range ro.OnMitigativeRefresh(bankIdx, op.row) {
				m.queue = append(m.queue, refreshOp{row: v, source: op.row})
			}
		} else if observes {
			m.stats.CascadeTruncated++
		}
	}
}

// tripDirty checks every row whose ledger changed this activation and
// injects fault-model flips into those past the flip threshold.
func (m *MitigatedHammerer) tripDirty(channel, bank int, flipped []int) []int {
	if len(m.dirty) == 0 {
		return flipped
	}
	sort.Ints(m.dirty)
	bankIdx := channel*m.dev.geo.BanksPerChannel + bank
	prev := -1
	for _, row := range m.dirty {
		if row == prev {
			continue
		}
		prev = row
		idx := m.dev.rowIndex(bankIdx, row)
		if int(m.disturb[idx]) < m.hmr.cfg.Threshold {
			continue
		}
		if m.hmr.disturbRow(channel, bank, row) > 0 {
			flipped = append(flipped, row)
		}
		// The cells discharged into the flip; one burst per crossing.
		m.disturb[idx] = 0
	}
	m.dirty = m.dirty[:0]
	return flipped
}

// bump drains one unit of charge from (bankIdx, row), registering the row
// in the touched and dirty lists. Out-of-range rows fall off the die edge.
func (m *MitigatedHammerer) bump(bankIdx, row int) {
	if row < 0 || row >= m.dev.geo.RowsPerBank {
		return
	}
	idx := m.dev.rowIndex(bankIdx, row)
	if m.disturb[idx] == 0 {
		m.disturbTouched = append(m.disturbTouched, idx)
	}
	m.disturb[idx]++
	m.markDirty(row)
}

// resetDisturb restores (bankIdx, row)'s charge.
func (m *MitigatedHammerer) resetDisturb(bankIdx, row int) {
	idx := m.dev.rowIndex(bankIdx, row)
	m.disturb[idx] = 0
	m.markDirty(row)
}

func (m *MitigatedHammerer) markDirty(row int) {
	for _, r := range m.dirty {
		if r == row {
			return
		}
	}
	m.dirty = append(m.dirty, row)
}

// refreshWindow models the tREFW boundary: the device refresh restores
// charge everywhere, so the ledger clears in place and the tracker's
// per-window state resets.
func (m *MitigatedHammerer) refreshWindow() {
	for _, idx := range m.disturbTouched {
		m.disturb[idx] = 0
	}
	m.disturbTouched = m.disturbTouched[:0]
	m.dev.RefreshWindow()
	if m.cfg.Mitigator != nil {
		m.cfg.Mitigator.OnRefreshWindow()
	}
}

func sign(d int) int {
	switch {
	case d > 0:
		return 1
	case d < 0:
		return -1
	default:
		return 0
	}
}
