package dram

import (
	"testing"

	"ptguard/internal/mitigate"
	"ptguard/internal/pte"
)

// mitigatedWorld builds a device with stored data ONLY in the victim row,
// so every row HammerPattern reports flipped is the victim row — the tests
// below ask exactly one question per tracker: did the victim's data flip?
func mitigatedWorld(t *testing.T, victimRow int) (*Device, *Hammerer, uint64) {
	t.Helper()
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: 64, FlipProb: 1, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var data pte.Line
	data[0] = pte.Entry(0xBADF00D)
	victimAddr := d.AddrOfRow(3, victimRow, 0)
	d.WriteLine(victimAddr, data)
	return d, h, victimAddr
}

func trackerConfig(d *Device, sampler int) mitigate.Config {
	geo := d.Geometry()
	return mitigate.Config{
		Banks:       geo.Channels * geo.BanksPerChannel,
		RowsPerBank: geo.RowsPerBank,
		Threshold:   sampler,
		Seed:        7,
	}
}

// runPattern drives the pattern at the victim through the given tracker
// and reports whether the victim row's data flipped, plus the stats.
func runPattern(t *testing.T, m mitigate.Mitigator, budget *mitigate.Budget,
	pattern Pattern, acts int) (bool, MitigationStats) {
	t.Helper()
	const victimRow = 1000
	d, h, victimAddr := mitigatedWorld(t, victimRow)
	if reg, ok := m.(mitigate.RowRegistrar); ok {
		// The OS registers the protected row and its blast radius, the
		// way SoftTRR registers every page-table row.
		loc := d.Locate(victimAddr)
		bankIdx := loc.Channel*d.Geometry().BanksPerChannel + loc.Bank
		for _, r := range []int{victimRow - 1, victimRow, victimRow + 1} {
			reg.RegisterRow(bankIdx, r)
		}
	}
	mh, err := NewMitigatedHammerer(d, h, MitigationConfig{
		Mitigator:  m,
		Budget:     budget,
		WindowActs: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	flipped, err := mh.HammerPattern(pattern, victimAddr, acts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range flipped {
		if r != victimRow {
			t.Fatalf("row %d flipped but only %d holds data", r, victimRow)
		}
	}
	return len(flipped) > 0, mh.Stats()
}

func newTracker(t *testing.T, d *Device, name string, sampler int) mitigate.Mitigator {
	t.Helper()
	m, err := mitigate.New(name, trackerConfig(d, sampler))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestHalfDoubleDefeatsDistanceOneTrackers is the §II-B regression: the
// half-double pattern's damage is carried inward by the mitigation's own
// refreshes, so every distance-1 tracker loses to it — while the oracle,
// which observes its own mitigative refreshes and cascades, does not, and
// with no mitigation at all the pattern is harmless.
func TestHalfDoubleDefeatsDistanceOneTrackers(t *testing.T) {
	const acts = 16000
	d := newTestDevice(t)
	pattern := HalfDoublePattern()

	for _, name := range []string{"trr", "softtrr", "graphene", "para"} {
		flipped, stats := runPattern(t, newTracker(t, d, name, 32), nil, pattern, acts)
		if !flipped {
			t.Errorf("%s survived half-double: distance-1 refreshes should carry the damage inward (stats %+v)",
				name, stats)
		}
		if stats.RefreshesIssued == 0 {
			t.Errorf("%s never refreshed under half-double", name)
		}
	}

	// No mitigation, no inward push: the victim at distance 2 is safe.
	if flipped, _ := runPattern(t, &mitigate.None{}, nil, pattern, acts); flipped {
		t.Error("half-double flipped the victim without any mitigation: damage must be mitigation-induced")
	}

	// The oracle counts its own refreshes as the activations they are,
	// so the carried disturbance is mitigated before it lands.
	if flipped, stats := runPattern(t, newTracker(t, d, "oracle", 32), nil, pattern, acts); flipped {
		t.Errorf("oracle lost to half-double despite refresh observation (stats %+v)", stats)
	}
}

// TestManySidedDefeatsSamplerNotGraphene is the TRRespass regression: the
// decoys-first many-sided pattern exhausts the TRR sampler's slots so the
// inner aggressors hammer unsampled, while Graphene's Misra-Gries table
// has no capacity evasion and stops the same stream.
func TestManySidedDefeatsSamplerNotGraphene(t *testing.T) {
	const acts = 8192
	d := newTestDevice(t)
	pattern, err := ManySidedPattern(4)
	if err != nil {
		t.Fatal(err)
	}

	cfg := trackerConfig(d, 32)
	cfg.TableSize = 4 // 8 aggressor rows vs 4 sampler slots
	trr, err := mitigate.NewTRRSampler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	flipped, stats := runPattern(t, trr, nil, pattern, acts)
	if !flipped {
		t.Errorf("4-entry sampler stopped an 8-row many-sided pattern (stats %+v)", stats)
	}
	if stats.Tracker.SamplerMisses == 0 {
		t.Error("many-sided pattern never overflowed the sampler")
	}

	// Graphene's detection threshold needs headroom below the flip
	// threshold: the pattern's ±2 aggressors half-double one extra unit
	// of disturbance inward per mitigation, so threshold/2 mitigates one
	// activation too late. Real deployments set tREFW/4-ish margins for
	// exactly this blast-radius reason.
	if flipped, stats := runPattern(t, newTracker(t, d, "graphene", 20), nil, pattern, acts); flipped {
		t.Errorf("graphene lost to many-sided despite the Misra-Gries guarantee (stats %+v)", stats)
	}
}

// TestClassicStoppedBySampler pins the control cell of the matrix: the
// classic double-sided pattern is exactly what distance-1 TRR was built
// for.
func TestClassicStoppedBySampler(t *testing.T) {
	d := newTestDevice(t)
	flipped, stats := runPattern(t, newTracker(t, d, "trr", 32), nil, ClassicPattern(), 8192)
	if flipped {
		t.Errorf("TRR lost to classic double-sided (stats %+v)", stats)
	}
	if stats.RefreshesIssued == 0 {
		t.Error("TRR never refreshed under classic hammering")
	}
}

// TestBudgetStarvationDefeatsPerfectTracker: a tracker with a perfect view
// still loses when the refresh budget drops its mitigations — the
// starvation lever of the refresh-budget model. Classic double-sided keeps
// the schedule deterministic: each mitigation wants two refreshes but the
// one-slot budget only admits the queue head, so the victim's own refresh
// is the one that drops, every time.
func TestBudgetStarvationDefeatsPerfectTracker(t *testing.T) {
	const acts = 8192
	d := newTestDevice(t)
	budget, err := mitigate.NewBudget(1, 256) // 1 refresh per 256 activations
	if err != nil {
		t.Fatal(err)
	}
	flipped, stats := runPattern(t, newTracker(t, d, "graphene", 32), budget, ClassicPattern(), acts)
	if stats.RefreshesDropped == 0 {
		t.Fatalf("budget dropped nothing under classic hammering (stats %+v)", stats)
	}
	if stats.Budget.StarvedWindows == 0 {
		t.Errorf("no starved windows despite dropped refreshes (stats %+v)", stats)
	}
	if !flipped {
		t.Error("victim survived although the tracker's refreshes were starved")
	}

	// The same tracker with no budget wins, so starvation is the only
	// difference between the two runs.
	if flipped, _ := runPattern(t, newTracker(t, d, "graphene", 32), nil, ClassicPattern(), acts); flipped {
		t.Error("unbudgeted graphene lost: starvation test would be meaningless")
	}
}

// TestHammerPatternValidation covers the pattern plumbing.
func TestHammerPatternValidation(t *testing.T) {
	if _, err := ManySidedPattern(0); err == nil {
		t.Error("ManySidedPattern(0) accepted")
	}
	if _, err := PatternByName("bogus"); err == nil {
		t.Error("unknown pattern name accepted")
	}
	for _, name := range PatternNames() {
		p, err := PatternByName(name)
		if err != nil {
			t.Fatalf("PatternByName(%q): %v", name, err)
		}
		if p.Name != name || len(p.Offsets) == 0 {
			t.Errorf("pattern %q malformed: %+v", name, p)
		}
	}
	// A pattern aimed at the die edge with no in-range aggressors errors.
	d := newTestDevice(t)
	h, err := NewHammerer(d, HammerConfig{Threshold: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mh, err := NewMitigatedHammerer(d, h, MitigationConfig{})
	if err != nil {
		t.Fatal(err)
	}
	edge := Pattern{Name: "off-die", Offsets: []int{-2, -1}}
	if _, err := mh.HammerPattern(edge, d.AddrOfRow(0, 0, 0), 10); err == nil {
		t.Error("pattern with no in-range aggressors accepted")
	}
}
