package dram

import "errors"

// TRR models the in-DRAM Target Row Refresh mitigation the paper's threat
// model assumes is deployed and defeated (§II-B): a sampler watches row
// activations and refreshes the immediate neighbours of a row that crosses
// the sampler threshold. The refresh restores victim charge — but the
// refresh operation itself activates the refreshed row, which is exactly
// the lever the Half-Double attack uses to flip bits two rows away.
type TRR struct {
	dev *Device
	hmr *Hammerer
	// samplerThreshold is the activation count at which TRR mitigates.
	samplerThreshold int
	// refreshes counts mitigative refreshes issued.
	refreshes uint64
}

// NewTRR attaches a TRR engine to a device/hammerer pair. The sampler
// threshold must be below the device's flip threshold for the mitigation to
// be useful against classic patterns.
func NewTRR(dev *Device, hmr *Hammerer, samplerThreshold int) (*TRR, error) {
	if dev == nil || hmr == nil {
		return nil, errors.New("dram: TRR needs a device and hammerer")
	}
	if samplerThreshold <= 0 {
		return nil, errors.New("dram: sampler threshold must be positive")
	}
	return &TRR{dev: dev, hmr: hmr, samplerThreshold: samplerThreshold}, nil
}

// Refreshes returns the number of mitigative refreshes issued.
func (t *TRR) Refreshes() uint64 { return t.refreshes }

// HammerWithTRR issues count activations to the aggressor row while TRR
// watches. Classic (distance-1) victims are protected: whenever the
// aggressor crosses the sampler threshold, both neighbours are refreshed
// (activation counters cleared). But each mitigative refresh activates the
// refreshed rows, so *their* neighbours — distance 2 from the aggressor —
// silently accumulate activations and eventually flip: Half-Double
// (Kogler et al., §II-B). Returns the rows that received flips.
func (t *TRR) HammerWithTRR(aggressorAddr uint64, count int) []int {
	loc := t.dev.Locate(aggressorAddr)
	bankIdx := loc.Channel*t.dev.geo.BanksPerChannel + loc.Bank
	agg := t.dev.rowIndex(bankIdx, loc.Row)

	var flipped []int
	for issued := 0; issued < count; issued++ {
		if t.dev.addActivations(bankIdx, loc.Row, 1) < t.samplerThreshold {
			continue
		}
		// Mitigate: refresh the distance-1 neighbours. Charge is
		// restored (their own disturbance resets) and the aggressor
		// counter clears.
		t.dev.activations[agg] = 0
		for _, d := range []int{-1, +1} {
			victim := loc.Row + d
			if victim < 0 || victim >= t.dev.geo.RowsPerBank {
				continue
			}
			t.refreshes++
			// The refresh is itself a row activation of the
			// victim row: its neighbours at distance 2 from the
			// original aggressor take disturbance.
			v := t.dev.rowIndex(bankIdx, victim)
			if t.dev.addActivations(bankIdx, victim, 1) >= t.hmr.cfg.Threshold {
				far := victim + d
				if far < 0 || far >= t.dev.geo.RowsPerBank {
					continue
				}
				if t.hmr.disturbRow(loc.Channel, loc.Bank, far) > 0 {
					flipped = append(flipped, far)
				}
				t.dev.activations[v] = 0
			}
		}
	}
	return flipped
}
