package dram

import (
	"errors"

	"ptguard/internal/mitigate"
)

// TRR models the in-DRAM Target Row Refresh mitigation the paper's threat
// model assumes is deployed and defeated (§II-B): a sampler watches row
// activations and refreshes the immediate neighbours of a row that crosses
// the sampler threshold. The refresh restores victim charge — but the
// refresh operation itself activates the refreshed row, which is exactly
// the lever the Half-Double attack uses to flip bits two rows away.
//
// TRR is now a thin wrapper: the tracking decision lives in the
// mitigate.TRRSampler plugin and the charge physics in MitigatedHammerer
// (equivalence with the previous hand-rolled loop is pinned in
// equivalence_test.go). The wrapper tracks with unlimited sampler
// capacity, the legacy behaviour; campaigns wanting the realistic
// capacity-limited sampler build the "trr" plugin from the registry
// directly.
type TRR struct {
	mh *MitigatedHammerer
}

// NewTRR attaches a TRR engine to a device/hammerer pair. The sampler
// threshold must be below the device's flip threshold for the mitigation to
// be useful against classic patterns.
func NewTRR(dev *Device, hmr *Hammerer, samplerThreshold int) (*TRR, error) {
	if dev == nil || hmr == nil {
		return nil, errors.New("dram: TRR needs a device and hammerer")
	}
	if err := mitigate.ValidateThreshold(samplerThreshold); err != nil {
		return nil, errors.New("dram: sampler threshold must be positive")
	}
	tracker, err := mitigate.NewTRRSampler(mitigate.Config{
		Banks:       dev.geo.Channels * dev.geo.BanksPerChannel,
		RowsPerBank: dev.geo.RowsPerBank,
		Threshold:   samplerThreshold,
		TableSize:   dev.geo.RowsPerBank, // legacy TRR never missed a row
	})
	if err != nil {
		return nil, err
	}
	mh, err := NewMitigatedHammerer(dev, hmr, MitigationConfig{Mitigator: tracker})
	if err != nil {
		return nil, err
	}
	return &TRR{mh: mh}, nil
}

// Refreshes returns the number of mitigative refreshes issued.
func (t *TRR) Refreshes() uint64 { return t.mh.Refreshes() }

// HammerWithTRR issues count activations to the aggressor row while TRR
// watches. Classic (distance-1) victims are protected: whenever the
// aggressor crosses the sampler threshold, both neighbours are refreshed.
// But each mitigative refresh activates the refreshed rows, so *their*
// neighbours — distance 2 from the aggressor — silently accumulate
// disturbance and eventually flip: Half-Double (Kogler et al., §II-B).
// Returns the rows that received flips.
func (t *TRR) HammerWithTRR(aggressorAddr uint64, count int) []int {
	return t.mh.Hammer(aggressorAddr, count)
}
