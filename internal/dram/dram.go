// Package dram models the DRAM device PT-Guard sits in front of: bank/row
// geometry, open-page timing, backing storage for 64-byte lines, and the
// Rowhammer disturbance model used for fault injection (paper §II, §VI-F).
package dram

import (
	"fmt"
	"sort"

	"ptguard/internal/obs"
	"ptguard/internal/pte"
)

// Geometry describes the module layout. The defaults model the paper's 4 GB
// DDR4 channel (Table III).
type Geometry struct {
	// Channels is the number of independent channels.
	Channels int
	// BanksPerChannel is the total banks (ranks x bank groups x banks).
	BanksPerChannel int
	// RowsPerBank is the number of DRAM rows in each bank.
	RowsPerBank int
	// RowBytes is the row (page) size in bytes.
	RowBytes int
}

// DefaultGeometry returns the 4 GB DDR4 layout of Table III: 1 channel,
// 16 banks, 32 Ki rows of 8 KB.
func DefaultGeometry() Geometry {
	return Geometry{Channels: 1, BanksPerChannel: 16, RowsPerBank: 1 << 15, RowBytes: 8192}
}

// Capacity returns the module capacity in bytes.
func (g Geometry) Capacity() uint64 {
	return uint64(g.Channels) * uint64(g.BanksPerChannel) * uint64(g.RowsPerBank) * uint64(g.RowBytes)
}

// Timing holds access latencies in CPU cycles at the core clock (3 GHz).
// They fold in controller queueing and bus transfer, sized so a typical
// LLC-miss-to-DRAM round trip costs ~200-260 cycles.
type Timing struct {
	// RowHit is the latency when the row buffer already holds the row.
	RowHit int
	// RowEmpty is the latency when the bank is precharged (activate+CAS).
	RowEmpty int
	// RowConflict is the latency when another row must first precharge.
	RowConflict int
	// WriteExtra is added to writes (write recovery).
	WriteExtra int
}

// DefaultTiming returns DDR4-like latencies at 3 GHz.
func DefaultTiming() Timing {
	return Timing{RowHit: 160, RowEmpty: 210, RowConflict: 260, WriteExtra: 20}
}

// Location identifies a line's physical placement.
type Location struct {
	Channel int
	Bank    int
	Row     int
	Column  int
}

// Device is a DRAM module: sparse line storage plus per-bank row-buffer
// state and per-row activation counters for the Rowhammer model.
// Device is not safe for concurrent use.
//
// The per-row bookkeeping (activation counters, flip attribution) is held
// in dense slices indexed by bank*RowsPerBank+row: the geometry is fixed at
// construction, so a direct index replaces the map hashing that used to
// dominate the activate path, and the refresh window resets in place
// instead of reallocating.
type Device struct {
	geo    Geometry
	timing Timing

	lines map[uint64]pte.Line

	// openRow tracks the row latched in each bank's row buffer (-1 when
	// precharged). Indexed by channel*BanksPerChannel+bank.
	openRow []int

	// activations counts row activations since the last refresh window,
	// indexed by rowIndex. actTouched lists the indices with a non-zero
	// count so RefreshWindow clears only what was touched (O(hot rows),
	// allocation-free) instead of zeroing the whole module.
	activations []int32
	actTouched  []int32

	// autoRefreshEvery, when positive, clears activation counters after
	// that many accesses: the periodic auto-refresh (tREFW) that bounds
	// how long an attacker can hammer before victim charge is restored.
	autoRefreshEvery int
	accessesSinceRef int

	// flips attributes injected bit flips to their rowIndex, so fault
	// campaigns can tell which rows and banks ate the faults; flipTouched
	// lists the rows with at least one flip for iteration.
	flips       []uint64
	flipTouched []int32
	flipsTotal  uint64

	reads, writes, rowHits, rowMisses uint64
	refreshWindows                    uint64

	// o, when set, receives row-activation and fault-injection trace
	// events (nil = observability disabled, the zero-overhead default).
	o *obs.Observer
}

// rowIndex flattens (global bank index, row) into the dense bookkeeping
// slices' index space.
func (d *Device) rowIndex(bankIdx, row int) int32 {
	return int32(bankIdx*d.geo.RowsPerBank + row)
}

// NewDevice builds a device; zero-value Geometry/Timing select defaults.
func NewDevice(geo Geometry, timing Timing) (*Device, error) {
	if geo == (Geometry{}) {
		geo = DefaultGeometry()
	}
	if timing == (Timing{}) {
		timing = DefaultTiming()
	}
	if geo.Channels <= 0 || geo.BanksPerChannel <= 0 || geo.RowsPerBank <= 0 || geo.RowBytes < pte.LineBytes {
		return nil, fmt.Errorf("dram: invalid geometry %+v", geo)
	}
	nBanks := geo.Channels * geo.BanksPerChannel
	open := make([]int, nBanks)
	for i := range open {
		open[i] = -1
	}
	nRows := nBanks * geo.RowsPerBank
	return &Device{
		geo:         geo,
		timing:      timing,
		lines:       make(map[uint64]pte.Line),
		openRow:     open,
		activations: make([]int32, nRows),
		flips:       make([]uint64, nRows),
	}, nil
}

// Geometry returns the device geometry.
func (d *Device) Geometry() Geometry { return d.geo }

// Locate maps a physical line address to its channel/bank/row/column using
// a row:bank:column interleaving (consecutive lines stripe across banks so
// streaming workloads hit open rows).
func (d *Device) Locate(addr uint64) Location {
	line := addr / pte.LineBytes
	linesPerRow := uint64(d.geo.RowBytes / pte.LineBytes)
	col := int(line % linesPerRow)
	line /= linesPerRow
	bank := int(line % uint64(d.geo.BanksPerChannel))
	line /= uint64(d.geo.BanksPerChannel)
	ch := int(line % uint64(d.geo.Channels))
	row := int(line / uint64(d.geo.Channels) % uint64(d.geo.RowsPerBank))
	return Location{Channel: ch, Bank: bank, Row: row, Column: col}
}

// RowBase returns the physical address of the first line in the same row as
// addr, plus the number of lines per row. Useful for placing victims.
func (d *Device) RowBase(addr uint64) (uint64, int) {
	linesPerRow := d.geo.RowBytes / pte.LineBytes
	rowSpan := uint64(linesPerRow * pte.LineBytes)
	return addr / rowSpan * rowSpan, linesPerRow
}

// AddrOfRow returns a physical address residing in (bank, row) of channel 0,
// at the given column. It inverts Locate for attack placement.
func (d *Device) AddrOfRow(bank, row, column int) uint64 {
	linesPerRow := uint64(d.geo.RowBytes / pte.LineBytes)
	line := uint64(row)*uint64(d.geo.Channels)*uint64(d.geo.BanksPerChannel) +
		uint64(bank) // channel 0
	return (line*linesPerRow + uint64(column)) * pte.LineBytes
}

// Access performs a timing access to the line at addr, returning its
// latency in CPU cycles. It updates the row buffer and the activation
// counter feeding the Rowhammer model.
func (d *Device) Access(addr uint64, write bool) int {
	loc := d.Locate(addr)
	bankIdx := loc.Channel*d.geo.BanksPerChannel + loc.Bank
	var lat int
	switch d.openRow[bankIdx] {
	case loc.Row:
		lat = d.timing.RowHit
		d.rowHits++
	case -1:
		lat = d.timing.RowEmpty
		d.activate(bankIdx, loc.Row)
		d.rowMisses++
	default:
		lat = d.timing.RowConflict
		d.activate(bankIdx, loc.Row)
		d.rowMisses++
	}
	d.openRow[bankIdx] = loc.Row
	if write {
		lat += d.timing.WriteExtra
		d.writes++
	} else {
		d.reads++
	}
	if d.autoRefreshEvery > 0 {
		d.accessesSinceRef++
		if d.accessesSinceRef >= d.autoRefreshEvery {
			d.RefreshWindow()
		}
	}
	return lat
}

// SetAutoRefresh makes the device clear activation counters every
// `accesses` accesses, modelling the tREFW refresh window that limits an
// attacker's hammering budget. Zero disables auto-refresh.
func (d *Device) SetAutoRefresh(accesses int) {
	if accesses < 0 {
		accesses = 0
	}
	d.autoRefreshEvery = accesses
}

// RefreshWindows returns how many refresh windows have elapsed.
func (d *Device) RefreshWindows() uint64 { return d.refreshWindows }

func (d *Device) activate(bankIdx, row int) {
	d.addActivations(bankIdx, row, 1)
	if d.o != nil {
		d.o.EmitArgs("dram", "act", 0,
			map[string]uint64{"bank": uint64(bankIdx), "row": uint64(row)})
	}
}

// addActivations bumps a row's activation counter, registering the row in
// the touched list on its first activation of the window, and returns the
// new count. It is the single mutation point for the dense counters.
func (d *Device) addActivations(bankIdx, row, count int) int {
	idx := d.rowIndex(bankIdx, row)
	if d.activations[idx] == 0 && count != 0 {
		d.actTouched = append(d.actTouched, idx)
	}
	d.activations[idx] += int32(count)
	return int(d.activations[idx])
}

// Activations returns the activation count of the row containing addr since
// the last refresh window.
func (d *Device) Activations(addr uint64) int {
	loc := d.Locate(addr)
	bankIdx := loc.Channel*d.geo.BanksPerChannel + loc.Bank
	return int(d.activations[d.rowIndex(bankIdx, loc.Row)])
}

// RefreshWindow models the periodic auto-refresh: activation counters reset
// (charge restored) and all banks precharge. The reset is in place — only
// the rows touched since the last window are cleared and the touched list's
// capacity is retained — so steady-state refresh costs zero allocations
// (BenchmarkRefreshWindow pins this).
func (d *Device) RefreshWindow() {
	for _, idx := range d.actTouched {
		d.activations[idx] = 0
	}
	d.actTouched = d.actTouched[:0]
	for i := range d.openRow {
		d.openRow[i] = -1
	}
	d.accessesSinceRef = 0
	d.refreshWindows++
}

// ReadLine returns the stored line image (zero if never written).
func (d *Device) ReadLine(addr uint64) pte.Line {
	return d.lines[addr/pte.LineBytes*pte.LineBytes]
}

// Contains reports whether the line at addr has ever been written,
// distinguishing a stored all-zero line from untouched memory.
func (d *Device) Contains(addr uint64) bool {
	_, ok := d.lines[addr/pte.LineBytes*pte.LineBytes]
	return ok
}

// WriteLine stores a line image.
func (d *Device) WriteLine(addr uint64, line pte.Line) {
	d.lines[addr/pte.LineBytes*pte.LineBytes] = line
}

// Lines calls fn for every stored line, in unspecified order. Used by the
// full-memory re-key sweep (§VII-B). fn must not mutate the device.
func (d *Device) Lines(fn func(addr uint64, line pte.Line)) {
	for addr, line := range d.lines {
		fn(addr, line)
	}
}

// StoredLines returns the number of materialised lines.
func (d *Device) StoredLines() int { return len(d.lines) }

// Stats reports device activity counters.
type Stats struct {
	Reads, Writes      uint64
	RowHits, RowMisses uint64
	// FlipsInjected is the total number of disturbance bit flips the
	// device absorbed; FlipCounts attributes them to (bank, row).
	FlipsInjected uint64
}

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		Reads: d.reads, Writes: d.writes,
		RowHits: d.rowHits, RowMisses: d.rowMisses,
		FlipsInjected: d.flipsTotal,
	}
}

// SetObserver attaches the observability subsystem: row activations emit
// "dram/act" trace events and injected flips emit "fault/flip" events.
// A nil observer detaches (the zero-overhead default).
func (d *Device) SetObserver(o *obs.Observer) { d.o = o }

// PublishObs feeds the device counters into the metric registry under
// "dram." (the obs snapshot path; a nil registry is a no-op). Row misses
// are published as row activations: every miss activates a row.
func (d *Device) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetCounter("dram.reads", d.reads)
	r.SetCounter("dram.writes", d.writes)
	r.SetCounter("dram.row_hits", d.rowHits)
	r.SetCounter("dram.row_activations", d.rowMisses)
	r.SetCounter("dram.flips_injected", d.flipsTotal)
	r.SetGauge("dram.stored_lines", float64(len(d.lines)))
}

// recordFlips attributes n injected flips to the (bank, row) of addr.
func (d *Device) recordFlips(addr uint64, n int) {
	loc := d.Locate(addr)
	bankIdx := loc.Channel*d.geo.BanksPerChannel + loc.Bank
	idx := d.rowIndex(bankIdx, loc.Row)
	if d.flips[idx] == 0 && n != 0 {
		d.flipTouched = append(d.flipTouched, idx)
	}
	d.flips[idx] += uint64(n)
	d.flipsTotal += uint64(n)
	if d.o != nil {
		d.o.EmitArgs("fault", "flip", 0, map[string]uint64{
			"bank": uint64(bankIdx), "row": uint64(loc.Row), "flips": uint64(n),
		})
	}
}

// FlipCount is the number of injected flips one (bank, row) received.
type FlipCount struct {
	Bank, Row int
	Flips     uint64
}

// FlipCounts returns per-row flip attribution for every row that received
// at least one flip, sorted by (bank, row) for deterministic output. The
// dense index already orders by (bank, row), so sorting the touched list
// suffices.
func (d *Device) FlipCounts() []FlipCount {
	touched := append([]int32(nil), d.flipTouched...)
	sort.Slice(touched, func(i, j int) bool { return touched[i] < touched[j] })
	out := make([]FlipCount, 0, len(touched))
	for _, idx := range touched {
		out = append(out, FlipCount{
			Bank:  int(idx) / d.geo.RowsPerBank,
			Row:   int(idx) % d.geo.RowsPerBank,
			Flips: d.flips[idx],
		})
	}
	return out
}

// BankFlips returns per-bank flip totals, indexed by the global bank index
// (channel*BanksPerChannel + bank).
func (d *Device) BankFlips() []uint64 {
	out := make([]uint64, d.geo.Channels*d.geo.BanksPerChannel)
	for _, idx := range d.flipTouched {
		out[int(idx)/d.geo.RowsPerBank] += d.flips[idx]
	}
	return out
}

// RowFlips returns the flips attributed to the row containing addr.
func (d *Device) RowFlips(addr uint64) uint64 {
	loc := d.Locate(addr)
	bankIdx := loc.Channel*d.geo.BanksPerChannel + loc.Bank
	return d.flips[d.rowIndex(bankIdx, loc.Row)]
}
