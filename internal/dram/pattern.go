package dram

import (
	"fmt"
	"sort"
)

// Pattern is a Rowhammer aggressor layout aimed at a victim row: the
// offsets are aggressor rows relative to the victim, activated
// round-robin in slice order by MitigatedHammerer.HammerPattern. Order
// matters against capacity-limited trackers — TRR-aware many-sided
// patterns open their decoy rows first so the sampler table is already
// full when the rows that matter start hammering (TRRespass, §II-B).
type Pattern struct {
	// Name identifies the pattern in reports and campaign job keys.
	Name string
	// Offsets are aggressor row offsets relative to the victim row.
	Offsets []int
}

// Canonical pattern names.
const (
	PatternClassic    = "classic"
	PatternHalfDouble = "half-double"
	PatternManySided  = "many-sided"
)

// ClassicPattern is double-sided Rowhammer: the two rows sandwiching the
// victim, the classic highest-yield pattern. Distance-1 trackers stop it.
func ClassicPattern() Pattern {
	return Pattern{Name: PatternClassic, Offsets: []int{-1, +1}}
}

// HalfDoublePattern hammers the rows at distance 2 from the victim: the
// mitigation's own refreshes of the distance-1 rows act as additional
// aggressors and carry the disturbance the final row inward (Kogler et
// al.; paper §II-B). Without a mitigation issuing refreshes, the pattern
// is harmless to the victim — its damage is entirely mitigation-induced.
func HalfDoublePattern() Pattern {
	return Pattern{Name: PatternHalfDouble, Offsets: []int{-2, +2}}
}

// ManySidedPattern builds a TRRespass-style n-sided pattern (2n aggressor
// rows): decoys at the largest distances first, then inward, with the
// victim's direct neighbours last — so a capacity-limited sampler has
// spent its slots on decoys before the damaging rows ever activate. n
// must be at least 1; n=1 degenerates to the classic pattern layout.
func ManySidedPattern(n int) (Pattern, error) {
	if n < 1 {
		return Pattern{}, fmt.Errorf("dram: many-sided pattern needs n >= 1, got %d", n)
	}
	offsets := make([]int, 0, 2*n)
	for d := n; d >= 1; d-- {
		offsets = append(offsets, -d, +d)
	}
	return Pattern{Name: PatternManySided, Offsets: offsets}, nil
}

// DefaultManySided is the sides count ManySidedPattern gets from
// PatternByName: 8 aggressor rows, enough to overflow the default
// 4-entry TRR sampler.
const DefaultManySided = 4

// PatternByName resolves a canonical pattern name. The many-sided
// pattern uses DefaultManySided sides.
func PatternByName(name string) (Pattern, error) {
	switch name {
	case PatternClassic:
		return ClassicPattern(), nil
	case PatternHalfDouble:
		return HalfDoublePattern(), nil
	case PatternManySided:
		return ManySidedPattern(DefaultManySided)
	default:
		return Pattern{}, fmt.Errorf("dram: unknown attack pattern %q (want %v)", name, PatternNames())
	}
}

// PatternNames returns the canonical pattern names, sorted.
func PatternNames() []string {
	names := []string{PatternClassic, PatternHalfDouble, PatternManySided}
	sort.Strings(names)
	return names
}
