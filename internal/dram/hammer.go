package dram

import (
	"errors"

	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// Rowhammer threshold presets from the paper (§II-A, Kim et al. 2020).
const (
	// ThresholdDDR3 is the 2014 threshold: 139K activations.
	ThresholdDDR3 = 139000
	// ThresholdDDR4 is the 2020 DDR4 threshold: 10K activations.
	ThresholdDDR4 = 10000
	// ThresholdLPDDR4 is the 2020 LPDDR4 threshold: 4.8K activations.
	ThresholdLPDDR4 = 4800
)

// Worst-case per-bit flip probabilities once a row is hammered past the
// threshold (§VI-A: 1% for LPDDR4, 0.1-0.2% for DDR4).
const (
	FlipProbLPDDR4 = 1.0 / 128
	FlipProbDDR4   = 1.0 / 512
)

// FlipModel chooses which bits of a stored line a disturbance flips. The
// uniform per-bit Bernoulli model is built in; internal/fault provides
// spatially-aware implementations (DQ-pin bursts, true/anti-cell polarity,
// per-row severity, targeted PTE bits). Implementations must be
// deterministic functions of the rng stream and their inputs.
type FlipModel interface {
	// Name identifies the model in reports and campaign job keys.
	Name() string
	// FlipBits returns the line-relative bit positions (0..511) to flip
	// in the stored line at loc. Duplicate positions toggle the bit
	// repeatedly (an even count cancels out).
	FlipBits(rng *stats.RNG, line pte.Line, loc Location) []int
}

// FlipObserver receives every injected bit flip, line address plus
// line-relative bit position. The fault oracle uses it to keep ground truth.
type FlipObserver func(addr uint64, bit int)

// HammerConfig parameterises the disturbance model.
type HammerConfig struct {
	// Threshold is the activation count beyond which neighbours flip.
	Threshold int
	// FlipProb is the per-bit flip probability applied to a victim row's
	// stored lines when its aggressor crosses the threshold. Ignored when
	// Model is set.
	FlipProb float64
	// Model overrides the uniform Bernoulli fault model with a pluggable
	// one. Nil selects Bernoulli(FlipProb).
	Model FlipModel
	// Seed feeds the deterministic fault RNG.
	Seed uint64
}

// Hammerer drives Rowhammer attacks against a Device: it issues activations
// to aggressor rows and injects bit flips into victim rows once thresholds
// are crossed, modelling single-sided, double-sided and Half-Double
// patterns.
type Hammerer struct {
	dev *Device
	cfg HammerConfig
	rng *stats.RNG

	observer FlipObserver
	flips    uint64
}

// NewHammerer builds a Hammerer for dev.
func NewHammerer(dev *Device, cfg HammerConfig) (*Hammerer, error) {
	if dev == nil {
		return nil, errors.New("dram: nil device")
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = ThresholdDDR4
	}
	if cfg.FlipProb < 0 || cfg.FlipProb > 1 {
		return nil, errors.New("dram: flip probability outside [0, 1]")
	}
	if cfg.FlipProb == 0 {
		cfg.FlipProb = FlipProbDDR4
	}
	return &Hammerer{dev: dev, cfg: cfg, rng: stats.NewRNG(cfg.Seed)}, nil
}

// SetObserver registers a callback invoked once per injected bit flip.
// A nil observer disables the hook.
func (h *Hammerer) SetObserver(obs FlipObserver) { h.observer = obs }

// Model returns the configured flip model (nil for uniform Bernoulli).
func (h *Hammerer) Model() FlipModel { return h.cfg.Model }

// FlipsInjected returns the total number of bits flipped so far.
func (h *Hammerer) FlipsInjected() uint64 { return h.flips }

// HammerRow issues count activations to the row containing aggressorAddr
// and, if the threshold is crossed, disturbs the rows at the given
// distances (±1 for classic Rowhammer; Half-Double reaches ±2 because the
// mitigation's refreshes of the ±1 rows act as additional aggressors,
// §II-B). It returns the victim row indices that received flips.
func (h *Hammerer) HammerRow(aggressorAddr uint64, count int, distances []int) []int {
	loc := h.dev.Locate(aggressorAddr)
	bankIdx := loc.Channel*h.dev.geo.BanksPerChannel + loc.Bank
	if h.dev.addActivations(bankIdx, loc.Row, count) < h.cfg.Threshold {
		return nil
	}
	var hit []int
	for _, d := range distances {
		victim := loc.Row + d
		if victim < 0 || victim >= h.dev.geo.RowsPerBank {
			continue
		}
		if h.disturbRow(loc.Channel, loc.Bank, victim) > 0 {
			hit = append(hit, victim)
		}
	}
	return hit
}

// DoubleSided hammers the two rows sandwiching the victim row, the classic
// highest-yield pattern.
func (h *Hammerer) DoubleSided(victimAddr uint64, countPerSide int) int {
	loc := h.dev.Locate(victimAddr)
	flipped := 0
	for _, d := range []int{-1, +1} {
		agg := loc.Row + d
		if agg < 0 || agg >= h.dev.geo.RowsPerBank {
			continue
		}
		aggAddr := h.dev.AddrOfRow(loc.Bank, agg, 0)
		for _, v := range h.HammerRow(aggAddr, countPerSide, []int{-d}) {
			if v == loc.Row {
				flipped++
			}
		}
	}
	return flipped
}

// disturbRow injects fault-model bit flips into every stored line of the
// victim row, returning the number of bits flipped.
func (h *Hammerer) disturbRow(channel, bank, row int) int {
	base := h.dev.AddrOfRow(bank, row, 0)
	_ = channel // AddrOfRow models channel 0; geometry default has one channel
	linesPerRow := h.dev.geo.RowBytes / pte.LineBytes
	flipped := 0
	for c := 0; c < linesPerRow; c++ {
		addr := base + uint64(c*pte.LineBytes)
		if !h.dev.Contains(addr) {
			continue // nothing stored; flips in unused cells are moot
		}
		flipped += h.injectAt(addr, Location{Channel: 0, Bank: bank, Row: row, Column: c})
	}
	return flipped
}

// InjectFaults applies the configured fault model once to the stored line at
// addr: the fault-campaign entry point. It returns the number of bits that
// ended up flipped.
func (h *Hammerer) InjectFaults(addr uint64) int {
	return h.injectAt(addr, h.dev.Locate(addr))
}

// injectAt draws the flip positions for one line from the configured model
// (or the uniform Bernoulli default) and applies them.
func (h *Hammerer) injectAt(addr uint64, loc Location) int {
	line := h.dev.ReadLine(addr)
	var bits []int
	if h.cfg.Model != nil {
		bits = h.cfg.Model.FlipBits(h.rng, line, loc)
	} else {
		for bit := 0; bit < pte.LineBytes*8; bit++ {
			if h.rng.Bernoulli(h.cfg.FlipProb) {
				bits = append(bits, bit)
			}
		}
	}
	return h.applyFlips(addr, bits)
}

// InjectLineFaults flips each bit of the stored line at addr independently
// with probability p: the uniform fault-injection methodology of §VI-F used
// for the Fig. 9 correction experiments. It returns the number of flips.
func (h *Hammerer) InjectLineFaults(addr uint64, p float64) int {
	var bits []int
	for bit := 0; bit < pte.LineBytes*8; bit++ {
		if h.rng.Bernoulli(p) {
			bits = append(bits, bit)
		}
	}
	return h.applyFlips(addr, bits)
}

// FlipLineBits flips the exact given bit positions (0..511) of the stored
// line at addr: the surgical injection used by targeted exploits (§II-C).
func (h *Hammerer) FlipLineBits(addr uint64, bitPositions []int) {
	h.applyFlips(addr, bitPositions)
}

// applyFlips is the single choke point every injection path goes through:
// it toggles the requested bits, attributes the flips to the line's (bank,
// row) in the device counters, and notifies the observer. Out-of-range
// positions are ignored.
func (h *Hammerer) applyFlips(addr uint64, bitPositions []int) int {
	if len(bitPositions) == 0 {
		return 0
	}
	key := addr / pte.LineBytes * pte.LineBytes
	line := h.dev.lines[key]
	flipped := 0
	for _, bit := range bitPositions {
		if bit < 0 || bit >= pte.LineBytes*8 {
			continue
		}
		line[bit/64] = pte.Entry(uint64(line[bit/64]) ^ 1<<uint(bit%64))
		flipped++
		if h.observer != nil {
			h.observer(key, bit)
		}
	}
	if flipped > 0 {
		h.dev.lines[key] = line
		h.flips += uint64(flipped)
		h.dev.recordFlips(key, flipped)
	}
	return flipped
}
