package baseline

import (
	"errors"

	"ptguard/internal/pte"
)

// MonotonicPointers models the defense of Wu et al. (§II-E item 1, §VIII-C):
// page tables live in DRAM true cells (which only flip 1→0) above a
// physical watermark, and all user pages sit below it. A PFN corrupted by
// true-cell flips can only decrease, so it can never point *up* into the
// page-table region — but nothing protects the other PTE fields.
type MonotonicPointers struct {
	// WatermarkPFN is the first frame of the page-table region.
	WatermarkPFN uint64
}

// NewMonotonicPointers builds the defense with the given watermark.
func NewMonotonicPointers(watermarkPFN uint64) (MonotonicPointers, error) {
	if watermarkPFN == 0 {
		return MonotonicPointers{}, errors.New("baseline: zero watermark")
	}
	return MonotonicPointers{WatermarkPFN: watermarkPFN}, nil
}

// FlipOutcome describes what a bit-flip in a PTE achieves against this
// defense.
type FlipOutcome struct {
	// Prevented reports the defense structurally stops the exploit.
	Prevented bool
	// Reason explains the outcome.
	Reason string
}

// EvaluateFlip analyses a single-bit corruption of a PTE under the
// monotonic-pointer defense. bit is the flipped bit index; the tampered
// entry is the original with that bit inverted (true cells: only 1→0 flips
// occur in the table region).
func (m MonotonicPointers) EvaluateFlip(original pte.Entry, bit int) FlipOutcome {
	if bit < 0 || bit > 63 {
		return FlipOutcome{Prevented: false, Reason: "invalid bit"}
	}
	inPFN := pte.MaskPFNField>>uint(bit)&1 == 1
	if !inPFN {
		// Metadata flips (user/supervisor, writable, NX, MPK) are
		// entirely unprotected: the defense only constrains PFNs.
		return FlipOutcome{Prevented: false, Reason: "metadata bit outside PFN: unprotected"}
	}
	if uint64(original)>>uint(bit)&1 == 0 {
		// A 0→1 flip would be needed to raise the PFN; true cells do
		// not flip that way (modulo the circuit effects the authors
		// themselves caveat).
		return FlipOutcome{Prevented: true, Reason: "0→1 flip cannot occur in true cells"}
	}
	// 1→0 flip: the PFN strictly decreases, moving further below the
	// watermark — it cannot newly reach the page-table region.
	tampered := original.PFN() &^ (1 << uint(bit-pte.PageShift))
	if tampered >= m.WatermarkPFN {
		return FlipOutcome{Prevented: false, Reason: "PFN still above watermark"}
	}
	return FlipOutcome{Prevented: true, Reason: "decreased PFN stays below the watermark"}
}

// ProtectsMetadata reports whether the defense covers non-PFN PTE fields.
// It does not — the gap PT-Guard closes (§VIII-C).
func (MonotonicPointers) ProtectsMetadata() bool { return false }
