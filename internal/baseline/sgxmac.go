package baseline

import (
	"errors"

	"ptguard/internal/mac"
	"ptguard/internal/pte"
)

// SGXStyleMAC models the conventional integrity-protection design the paper
// contrasts against (§II-F, §VIII-D): a 64-bit MAC per 64-byte line stored
// in a *separate* memory region. Detection is as strong as PT-Guard's, but
// every protected read costs a second DRAM access for the MAC line, and the
// MAC region consumes 12.5% of memory.
type SGXStyleMAC struct {
	auth *mac.Authenticator
	// macStore maps data-line addresses to their stored tags (the
	// separate MAC region).
	macStore map[uint64]mac.Tag
}

// StorageOverheadPct is the MAC region's share of memory: 8 bytes per 64.
const StorageOverheadPct = 12.5

// NewSGXStyleMAC builds the design with a 64-bit per-line MAC.
func NewSGXStyleMAC(key []byte) (*SGXStyleMAC, error) {
	auth, err := mac.New(key, mac.WithTagBits(64))
	if err != nil {
		return nil, err
	}
	return &SGXStyleMAC{auth: auth, macStore: make(map[uint64]mac.Tag)}, nil
}

// Write stores the line's MAC in the separate region.
func (s *SGXStyleMAC) Write(line pte.Line, addr uint64) {
	s.macStore[addr] = s.auth.Compute(line.Bytes(), addr)
}

// Read verifies the line against the stored MAC. extraAccesses reports the
// additional DRAM accesses the design needed (always 1: the MAC line).
func (s *SGXStyleMAC) Read(line pte.Line, addr uint64) (ok bool, extraAccesses int, err error) {
	stored, present := s.macStore[addr]
	if !present {
		return false, 1, errors.New("baseline: no MAC stored for line")
	}
	return s.auth.Compute(line.Bytes(), addr).Equal(stored), 1, nil
}

// MACRegionBytes returns the separate region's current size.
func (s *SGXStyleMAC) MACRegionBytes() int { return len(s.macStore) * 8 }
