package baseline

import (
	"errors"
	"math/bits"
)

// SECDED implements the extended Hamming (72,64) code of ECC DIMMs
// (§VIII-D): single-error correction, double-error detection. Like all ECC
// it miscorrects some ≥3-bit patterns — the opening Rowhammer exploits on
// ECC memory (ECCploit) use — whereas PT-Guard's cryptographic MAC cannot
// be fooled by any pattern.
type SECDED struct{}

// CodewordBits is the encoded width: 64 data + 7 Hamming + 1 overall parity.
const CodewordBits = 72

// Codeword is a 72-bit ECC codeword; bit positions 1..72 are stored in Lo
// (positions 1..64) and Hi (positions 65..72). Position 0 is unused.
type Codeword struct {
	Lo uint64 // positions 1..64, position p at bit p-1
	Hi uint8  // positions 65..72, position p at bit p-65
}

func (c Codeword) bit(p int) uint64 {
	if p <= 64 {
		return c.Lo >> uint(p-1) & 1
	}
	return uint64(c.Hi >> uint(p-65) & 1)
}

func (c *Codeword) setBit(p int, v uint64) {
	if p <= 64 {
		c.Lo = c.Lo&^(1<<uint(p-1)) | v<<uint(p-1)
	} else {
		c.Hi = c.Hi&^(1<<uint(p-65)) | uint8(v)<<uint(p-65)
	}
}

// Flip inverts codeword position p (1..72): the fault-injection hook.
func (c Codeword) Flip(p int) Codeword {
	if p < 1 || p > CodewordBits {
		return c
	}
	c.setBit(p, c.bit(p)^1)
	return c
}

// checkPositions are the Hamming parity positions (powers of two) and the
// overall parity position.
var checkPositions = []int{1, 2, 4, 8, 16, 32, 64}

const overallParityPos = 72

// isCheckPos reports whether position p holds a check bit.
func isCheckPos(p int) bool {
	return p == overallParityPos || p&(p-1) == 0
}

// Encode produces the codeword for 64 data bits.
func (SECDED) Encode(data uint64) Codeword {
	var cw Codeword
	// Scatter data into non-check positions.
	d := 0
	for p := 1; p <= CodewordBits; p++ {
		if isCheckPos(p) {
			continue
		}
		cw.setBit(p, data>>uint(d)&1)
		d++
	}
	// Hamming parities: check bit at 2^k covers positions with bit k set.
	for _, cp := range checkPositions {
		var parity uint64
		for p := 1; p < overallParityPos; p++ {
			if p&cp != 0 && !isCheckPos(p) {
				parity ^= cw.bit(p)
			}
		}
		cw.setBit(cp, parity)
	}
	// Overall parity covers everything else.
	var all uint64
	for p := 1; p < overallParityPos; p++ {
		all ^= cw.bit(p)
	}
	cw.setBit(overallParityPos, all)
	return cw
}

// DecodeStatus classifies a decode.
type DecodeStatus int

// Decode outcomes.
const (
	// DecodeOK means no error was observed.
	DecodeOK DecodeStatus = iota + 1
	// DecodeCorrected means a single-bit error was repaired (so the
	// decoder believes; a 3-bit pattern aliasing a single-bit syndrome
	// lands here too — a miscorrection).
	DecodeCorrected
	// DecodeUncorrectable means a double-bit error was detected.
	DecodeUncorrectable
)

// Decode extracts the data, correcting a single-bit error and detecting
// double-bit errors.
func (s SECDED) Decode(cw Codeword) (uint64, DecodeStatus, error) {
	syndrome := 0
	for _, cp := range checkPositions {
		var parity uint64
		for p := 1; p < overallParityPos; p++ {
			if p&cp != 0 {
				parity ^= cw.bit(p)
			}
		}
		if parity != 0 {
			syndrome |= cp
		}
	}
	var overall uint64
	for p := 1; p <= CodewordBits; p++ {
		overall ^= cw.bit(p)
	}
	switch {
	case syndrome == 0 && overall == 0:
		return s.extract(cw), DecodeOK, nil
	case overall == 1:
		// Odd weight: treat as single-bit error at the syndrome
		// position (or the overall parity bit when syndrome is 0).
		if syndrome == 0 {
			return s.extract(cw), DecodeCorrected, nil
		}
		if syndrome >= overallParityPos {
			return 0, DecodeUncorrectable, errors.New("baseline: syndrome outside codeword")
		}
		return s.extract(cw.Flip(syndrome)), DecodeCorrected, nil
	default:
		// syndrome != 0, even weight: double error detected.
		return 0, DecodeUncorrectable, nil
	}
}

func (SECDED) extract(cw Codeword) uint64 {
	var data uint64
	d := 0
	for p := 1; p <= CodewordBits; p++ {
		if isCheckPos(p) {
			continue
		}
		data |= cw.bit(p) << uint(d)
		d++
	}
	return data
}

// HammingDistance counts differing positions between two codewords.
func HammingDistance(a, b Codeword) int {
	return bits.OnesCount64(a.Lo^b.Lo) + bits.OnesCount8(a.Hi^b.Hi)
}
