package baseline

import (
	"ptguard/internal/pte"
	"ptguard/internal/qarma"
)

// EncryptedMemory models the design alternative §VII-A dismisses: encrypting
// page tables instead of authenticating them. Each 16-byte chunk of the
// line is enciphered with an address-derived tweak (an XTS-like mode).
// Confidentiality is strong, but there is no authentication signal: a
// Rowhammer flip in the ciphertext decrypts to a *pseudo-random* plaintext
// that the walker consumes silently — usually a crash, never a detection,
// and correction is impossible because the garbage carries no structure.
type EncryptedMemory struct {
	cipher *qarma.Cipher
}

// NewEncryptedMemory builds the encrypted-page-table baseline.
func NewEncryptedMemory(key []byte) (*EncryptedMemory, error) {
	c, err := qarma.NewCipher(key, qarma.DefaultRounds)
	if err != nil {
		return nil, err
	}
	return &EncryptedMemory{cipher: c}, nil
}

// Encrypt transforms a line for storage at addr.
func (m *EncryptedMemory) Encrypt(line pte.Line, addr uint64) pte.Line {
	return m.apply(line, addr, true)
}

// Decrypt inverts Encrypt. It has no way to report tampering: flipped
// ciphertext bits silently decrypt to garbage.
func (m *EncryptedMemory) Decrypt(line pte.Line, addr uint64) pte.Line {
	return m.apply(line, addr, false)
}

func (m *EncryptedMemory) apply(line pte.Line, addr uint64, enc bool) pte.Line {
	raw := line.Bytes()
	var out [pte.LineBytes]byte
	for c := 0; c < 4; c++ {
		var block, tweak qarma.Block
		copy(block[:], raw[c*16:(c+1)*16])
		chunkAddr := addr + uint64(c*16)
		for b := 0; b < 8; b++ {
			tweak[b] = byte(chunkAddr >> (8 * b))
		}
		var res qarma.Block
		if enc {
			res = m.cipher.Encrypt(block, tweak)
		} else {
			res = m.cipher.Decrypt(block, tweak)
		}
		copy(out[c*16:], res[:])
	}
	return pte.LineFromBytes(out)
}
