package baseline

import (
	"testing"
	"testing/quick"

	"ptguard/internal/mac"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

func TestSecWalkDetectsSmallErrors(t *testing.T) {
	var s SecWalk
	r := stats.NewRNG(1)
	for trial := 0; trial < 2000; trial++ {
		e := pte.Entry(r.Uint64())
		nFlips := 1 + r.Intn(4)
		flips := make([]int, 0, nFlips)
		seen := map[int]bool{}
		for len(flips) < nFlips {
			b := r.Intn(64)
			if !seen[b] {
				seen[b] = true
				flips = append(flips, b)
			}
		}
		if !s.Detects(e, flips) {
			t.Fatalf("random %d-bit error %v undetected", nFlips, flips)
		}
	}
}

func TestSecWalkChecksumLinearity(t *testing.T) {
	var s SecWalk
	f := func(a, b uint64) bool {
		return s.Checksum(pte.Entry(a))^s.Checksum(pte.Entry(b)) ==
			s.Checksum(pte.Entry(a^b))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSecWalkCraftedEscape(t *testing.T) {
	// §II-E: a surgical multi-bit pattern (a shifted generator
	// polynomial) fools the linear EDC — the ECCploit analogy.
	var s SecWalk
	r := stats.NewRNG(2)
	for _, shift := range []int{0, 5, 20, 37} {
		pattern, err := s.CraftEscape(shift)
		if err != nil {
			t.Fatal(err)
		}
		if len(pattern) <= 4 {
			t.Fatalf("escape pattern has %d flips; must exceed SecWalk's 4-flip guarantee", len(pattern))
		}
		e := pte.Entry(r.Uint64())
		if s.Detects(e, pattern) {
			t.Errorf("crafted pattern at shift %d was detected", shift)
		}
	}
	if _, err := s.CraftEscape(60); err == nil {
		t.Error("out-of-range shift accepted")
	}
}

func TestMonotonicPointersBlocksPFNAttack(t *testing.T) {
	m, err := NewMonotonicPointers(0x80000) // tables above 2 GB
	if err != nil {
		t.Fatal(err)
	}
	// A user PTE below the watermark.
	e := pte.Entry(0x107).WithPFN(0x4321)
	// Any 1->0 PFN flip decreases the PFN: prevented.
	out := m.EvaluateFlip(e, 12) // PFN bit 0, currently 1
	if !out.Prevented {
		t.Errorf("1->0 PFN flip not prevented: %s", out.Reason)
	}
	// A 0->1 flip cannot happen in true cells: prevented by placement.
	out = m.EvaluateFlip(e, 30)
	if !out.Prevented {
		t.Errorf("0->1 PFN flip outcome: %s", out.Reason)
	}
}

func TestMonotonicPointersMissesMetadata(t *testing.T) {
	// §VIII-C: the gap PT-Guard closes — metadata flips go through.
	m, _ := NewMonotonicPointers(0x80000)
	e := pte.Entry(0x107).WithPFN(0x4321)
	for _, bit := range []int{pte.BitUserAccessible, pte.BitWritable, pte.BitNX, 60} {
		out := m.EvaluateFlip(e, bit)
		if out.Prevented {
			t.Errorf("metadata bit %d wrongly reported protected", bit)
		}
	}
	if m.ProtectsMetadata() {
		t.Error("ProtectsMetadata must be false")
	}
	if _, err := NewMonotonicPointers(0); err == nil {
		t.Error("zero watermark accepted")
	}
}

func TestSGXStyleMACDetectsButCostsAccess(t *testing.T) {
	key := make([]byte, mac.KeySize)
	s, err := NewSGXStyleMAC(key)
	if err != nil {
		t.Fatal(err)
	}
	var line pte.Line
	line[0] = pte.Entry(0xABC).WithPFN(0x123)
	s.Write(line, 0x1000)

	ok, extra, err := s.Read(line, 0x1000)
	if err != nil || !ok {
		t.Fatalf("clean read failed: %v", err)
	}
	if extra != 1 {
		t.Errorf("extra accesses = %d, want 1 (the separate MAC fetch)", extra)
	}
	tampered := line
	tampered[0] = pte.Entry(uint64(tampered[0]) ^ 1<<2)
	ok, _, err = s.Read(tampered, 0x1000)
	if err != nil || ok {
		t.Error("tampered line passed the SGX-style check")
	}
	if _, _, err := s.Read(line, 0x9999); err == nil {
		t.Error("read without a stored MAC accepted")
	}
	if s.MACRegionBytes() != 8 {
		t.Errorf("MAC region = %d bytes, want 8", s.MACRegionBytes())
	}
}

func TestSECDEDRoundTrip(t *testing.T) {
	var s SECDED
	f := func(data uint64) bool {
		got, status, err := s.Decode(s.Encode(data))
		return err == nil && status == DecodeOK && got == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSECDEDCorrectsEverySingleBit(t *testing.T) {
	var s SECDED
	const data = 0xDEADBEEFCAFEF00D
	cw := s.Encode(data)
	for p := 1; p <= CodewordBits; p++ {
		got, status, err := s.Decode(cw.Flip(p))
		if err != nil {
			t.Fatalf("position %d: %v", p, err)
		}
		if status != DecodeCorrected || got != data {
			t.Fatalf("position %d: status=%v got=%#x", p, status, got)
		}
	}
}

func TestSECDEDDetectsDoubleBit(t *testing.T) {
	var s SECDED
	cw := s.Encode(0x0123456789ABCDEF)
	r := stats.NewRNG(3)
	for trial := 0; trial < 500; trial++ {
		a := 1 + r.Intn(CodewordBits)
		b := 1 + r.Intn(CodewordBits)
		if a == b {
			continue
		}
		_, status, _ := s.Decode(cw.Flip(a).Flip(b))
		if status != DecodeUncorrectable {
			t.Fatalf("double error (%d,%d) status = %v", a, b, status)
		}
	}
}

func TestSECDEDMiscorrectsSomeTripleBit(t *testing.T) {
	// The structural ECC weakness (§VIII-D): some 3-bit patterns alias a
	// single-bit syndrome and silently deliver wrong data — impossible
	// with a cryptographic MAC.
	var s SECDED
	const data = 0x5555AAAA3333CCCC
	cw := s.Encode(data)
	r := stats.NewRNG(4)
	miscorrections := 0
	for trial := 0; trial < 3000; trial++ {
		tampered := cw
		seen := map[int]bool{}
		for len(seen) < 3 {
			p := 1 + r.Intn(CodewordBits)
			if !seen[p] {
				seen[p] = true
				tampered = tampered.Flip(p)
			}
		}
		got, status, err := s.Decode(tampered)
		if err != nil {
			continue
		}
		if status == DecodeCorrected && got != data {
			miscorrections++
		}
	}
	if miscorrections == 0 {
		t.Error("no 3-bit miscorrections observed; SECDED model too strong")
	}
}

func TestCodewordFlipBounds(t *testing.T) {
	var s SECDED
	cw := s.Encode(42)
	if cw.Flip(0) != cw || cw.Flip(73) != cw {
		t.Error("out-of-range flip changed the codeword")
	}
	if HammingDistance(cw, cw.Flip(7)) != 1 {
		t.Error("HammingDistance wrong")
	}
}

func TestEncryptedMemoryRoundTrip(t *testing.T) {
	m, err := NewEncryptedMemory(make([]byte, mac.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	var line pte.Line
	for i := range line {
		line[i] = pte.Entry(0xAA00 + uint64(i)).WithPFN(0x1234 + uint64(i))
	}
	ct := m.Encrypt(line, 0x4000)
	if ct == line {
		t.Error("ciphertext equals plaintext")
	}
	if got := m.Decrypt(ct, 0x4000); got != line {
		t.Error("decrypt(encrypt) != identity")
	}
	// Address-bound: relocation garbles.
	if m.Decrypt(ct, 0x5000) == line {
		t.Error("ciphertext valid at a different address")
	}
}

func TestEncryptedMemoryCannotDetectTampering(t *testing.T) {
	// §VII-A: encryption provides no authentication — a single ciphertext
	// flip decrypts to pseudo-random garbage that is silently consumed.
	m, err := NewEncryptedMemory(make([]byte, mac.KeySize))
	if err != nil {
		t.Fatal(err)
	}
	var line pte.Line
	line[0] = pte.Entry(0x107).WithPFN(0x4444)
	ct := m.Encrypt(line, 0x8000)
	r := stats.NewRNG(5)
	garbageTranslations := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		tampered := ct
		bit := r.Intn(128) // flip inside the first chunk
		tampered[bit/64] = pte.Entry(uint64(tampered[bit/64]) ^ 1<<uint(bit%64))
		got := m.Decrypt(tampered, 0x8000)
		// No error signal exists; the only question is how wrong the
		// consumed PTE is.
		if got[0] != line[0] {
			garbageTranslations++
		}
	}
	if garbageTranslations != trials {
		t.Errorf("only %d/%d flips corrupted the PTE; expected all (full-block diffusion)", garbageTranslations, trials)
	}
}
