// Package baseline implements the prior page-table protections PT-Guard is
// compared against (§II-E, §VIII): SecWalk-style error-detection codes,
// monotonic pointers, SGX-style MACs in a separate memory region, and
// SECDED ECC. Each exposes the hooks the attack experiments need to show
// where the defense holds and where it breaks.
package baseline

import (
	"errors"
	"math/bits"

	"ptguard/internal/pte"
)

// EDCBits is SecWalk's per-PTE error-detection-code width (§II-E: "with
// limited space within a PTE, SecWalk is only able to store a 25-bit EDC").
const EDCBits = 25

// secwalkPoly is the generator polynomial of the 25-bit CRC, x^25 + x^23 +
// x^21 + x^11 + x^2 + 1 (an arbitrary fixed dense polynomial; the defense's
// weakness is structural, not polynomial-specific).
const secwalkPoly uint64 = 1<<25 | 1<<23 | 1<<21 | 1<<11 | 1<<2 | 1

// SecWalk models the SecWalk defense: a 25-bit linear (CRC) code over each
// 64-bit PTE payload, stored alongside the entry. Being linear and
// non-cryptographic, any error pattern that is a multiple of the generator
// polynomial passes the check — the ECCploit-style structural weakness the
// paper cites (§II-E item 2).
type SecWalk struct{}

// Checksum computes the 25-bit EDC of a PTE payload by polynomial long
// division: the remainder of the payload against the generator.
func (SecWalk) Checksum(e pte.Entry) uint32 {
	v := uint64(e)
	var rem uint64
	for i := 63; i >= 0; i-- {
		rem <<= 1
		if v>>uint(i)&1 == 1 {
			rem |= 1
		}
		if rem>>EDCBits&1 == 1 {
			rem ^= secwalkPoly
		}
	}
	return uint32(rem & (1<<EDCBits - 1))
}

// Verify reports whether the stored EDC matches the (possibly tampered)
// entry.
func (s SecWalk) Verify(e pte.Entry, storedEDC uint32) bool {
	return s.Checksum(e) == storedEDC
}

// Detects reports whether flipping the given payload bits of e would be
// caught: the EDC is recomputed over the tampered entry and compared.
func (s SecWalk) Detects(e pte.Entry, flipBits []int) bool {
	stored := s.Checksum(e)
	tampered := e
	for _, b := range flipBits {
		tampered = pte.Entry(uint64(tampered) ^ 1<<uint(b%64))
	}
	return !s.Verify(tampered, stored)
}

// CraftEscape returns an error pattern (bit positions within a 64-bit PTE)
// that the EDC cannot detect: a shifted copy of the generator polynomial,
// whose remainder is zero by construction. It demonstrates the surgical
// bit-flip attack of §II-E; the pattern has more than 4 flips, beyond
// SecWalk's guarantee.
func (SecWalk) CraftEscape(shift int) ([]int, error) {
	if shift < 0 || shift > 63-26 {
		return nil, errors.New("baseline: shift leaves the PTE payload")
	}
	var out []int
	p := secwalkPoly
	for p != 0 {
		b := bits.TrailingZeros64(p)
		p &= p - 1
		out = append(out, b+shift)
	}
	return out, nil
}
