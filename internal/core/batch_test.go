package core

import (
	"errors"
	"math/bits"
	"testing"
	"testing/quick"

	"ptguard/internal/obs"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// collidingLine crafts a line whose MAC-field bits equal the MAC the Guard
// would compute for it: the §IV-D collision case, which random content
// essentially never produces. The MAC covers only the protected bits, so
// writing the tag into the (disjoint) MAC field does not change it.
func collidingLine(g *Guard, base pte.Line, addr uint64) pte.Line {
	f := g.cfg.Format
	l := clearField(base, f.MACMask)
	if g.cfg.OptIdentifier {
		l = scatterField(l, f.IdentifierMask, g.ident)
	}
	tag := g.auth.Compute(maskedImage(l, f.ProtectedMask), addr)
	raw := tag.Raw()
	return scatterField(l, f.MACMask, raw[:tag.SizeBytes()])
}

// batchWorkload builds a write mix covering every classification the batch
// pass must reproduce: protected PTE lines (full and partial), all-zero
// lines, random data (MAC field busy), identifier-carrying data that does
// not collide, and crafted colliding lines — enough of the latter to
// overflow the default 4-entry CTB.
func batchWorkload(g *Guard, r *stats.RNG) (lines []pte.Line, addrs []uint64) {
	addr := uint64(0x10000)
	push := func(l pte.Line) {
		lines = append(lines, l)
		addrs = append(addrs, addr)
		addr += 0x40
	}
	for i := 0; i < 12; i++ {
		push(makePTELine(0x40000+uint64(i)*8, testFlags, 8))
		push(makePTELine(0x90000+uint64(i)*8, testFlags, 1+int(r.Uint64()%7)))
		push(pte.Line{})
		var data pte.Line
		for k := range data {
			data[k] = pte.Entry(r.Uint64() | pte.MaskMAC)
		}
		push(data)
		if g.cfg.OptIdentifier {
			// Identifier present, MAC field busy but (overwhelmingly) not
			// colliding: the collision check runs and clears.
			var ident pte.Line
			for k := range ident {
				ident[k] = pte.Entry(r.Uint64() | pte.MaskMAC)
			}
			push(scatterField(ident, g.cfg.Format.IdentifierMask, g.ident))
		}
	}
	for i := 0; i < 6; i++ {
		var base pte.Line
		for k := range base {
			base[k] = pte.Entry(r.Uint64())
		}
		push(collidingLine(g, base, addr))
	}
	return lines, addrs
}

// stripBatchTelemetry zeroes the counters the batch engine adds on top of
// the scalar path; everything else must match bit-for-bit.
func stripBatchTelemetry(c Counters) Counters {
	c.MACBatches = 0
	c.BatchedMACComputes = 0
	return c
}

var batchConfigs = []struct {
	name   string
	mutate func(*Config)
}{
	{name: "default"},
	{name: "tag64", mutate: func(c *Config) { c.TagBits = 64 }},
	{name: "qarma64", mutate: func(c *Config) { c.UseQARMA64 = true }},
	{name: "identifier", mutate: func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 0xA5A5A5A5A5A5A5
	}},
	{name: "zeromac", mutate: func(c *Config) { c.OptZeroMAC = true }},
	{name: "correction", mutate: func(c *Config) {
		c.EnableCorrection = true
		c.SoftMatchK = 4
	}},
	{name: "all-opts", mutate: func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 0x5EED5EED5EED5E
		c.OptZeroMAC = true
		c.EnableCorrection = true
		c.SoftMatchK = 4
	}},
}

// TestBatchMatchesScalarGuard is the Guard-level equivalence property:
// OnWriteBatch and OnReadBatch must be bit-identical to sequential
// OnWrite/OnRead — results, errors, counters (minus batch telemetry) and
// CTB state — across optimization configs, both ciphers, corrupted lines
// that trigger the correction search, colliding lines and CTB overflow.
func TestBatchMatchesScalarGuard(t *testing.T) {
	for _, tc := range batchConfigs {
		t.Run(tc.name, func(t *testing.T) {
			gs := newTestGuard(t, tc.mutate) // scalar reference
			gb := newTestGuard(t, tc.mutate) // batched

			lines, addrs := batchWorkload(gs, stats.NewRNG(0xBA7C11))
			n := len(lines)

			// Writes.
			sres := make([]WriteResult, n)
			sfailed := 0
			var serr error
			for i := range lines {
				r, err := gs.OnWrite(lines[i], addrs[i])
				sres[i] = r
				if err != nil {
					sfailed++
					if serr == nil {
						serr = err
					}
				}
			}
			bres := make([]WriteResult, n)
			bfailed, berr := gb.OnWriteBatch(bres, lines, addrs)
			if bfailed != sfailed {
				t.Fatalf("failed = %d, scalar %d", bfailed, sfailed)
			}
			if !errors.Is(berr, serr) {
				t.Fatalf("err = %v, scalar %v", berr, serr)
			}
			// Crafted collisions only register when the tag fills the MAC
			// field: with 64-bit tags in the 96-bit x86 field the stored
			// bytes can never equal the (shorter) tag, in either path.
			if sfailed == 0 && gs.cfg.TagBits == bits.OnesCount64(gs.cfg.Format.MACMask)*pte.PTEsPerLine {
				t.Fatal("workload did not overflow the CTB; colliding mix broken")
			}
			for i := range sres {
				if sres[i] != bres[i] {
					t.Fatalf("write %d: batch %+v != scalar %+v", i, bres[i], sres[i])
				}
			}
			if gs.CTBLen() != gb.CTBLen() {
				t.Fatalf("CTB len = %d, scalar %d", gb.CTBLen(), gs.CTBLen())
			}

			// Reads of the stored images, a quarter corrupted with 1-2
			// protected-bit flips (exercising verify failures and, when
			// enabled, the wave-batched correction search), under both
			// request types.
			r := stats.NewRNG(0xC0DE)
			stored := make([]pte.Line, n)
			for i := range stored {
				stored[i] = sres[i].Line
				if i%4 == 0 {
					m := gs.cfg.Format.ProtectedMask
					e := int(r.Uint64() % pte.PTEsPerLine)
					b := bits.TrailingZeros64(m >> (r.Uint64() % 40))
					stored[i][e] = pte.Entry(uint64(stored[i][e]) ^ 1<<uint(b%64))
				}
			}
			for _, isPTE := range []bool{true, false} {
				srd := make([]ReadResult, n)
				for i := range stored {
					srd[i] = gs.OnRead(stored[i], addrs[i], isPTE)
				}
				brd := make([]ReadResult, n)
				gb.OnReadBatch(brd, stored, addrs, isPTE)
				for i := range srd {
					if srd[i] != brd[i] {
						t.Fatalf("read %d (isPTE=%v): batch %+v != scalar %+v",
							i, isPTE, brd[i], srd[i])
					}
				}
			}

			cs := stripBatchTelemetry(gs.Counters())
			cb := stripBatchTelemetry(gb.Counters())
			if cs != cb {
				t.Fatalf("counters diverge:\nbatch  %+v\nscalar %+v", cb, cs)
			}
			if gb.Counters().MACBatches == 0 || gb.Counters().BatchedMACComputes == 0 {
				t.Error("batch telemetry counters never charged")
			}
		})
	}
}

// TestAuditBatch: the pure batch verifier must flag exactly the corrupted
// lines, treat CTB-tracked and zero-protected lines as clean, and leave
// Guard state untouched.
func TestAuditBatch(t *testing.T) {
	g := newTestGuard(t, func(c *Config) { c.OptZeroMAC = true })
	var lines []pte.Line
	var addrs []uint64
	for i := 0; i < 20; i++ {
		res, err := g.OnWrite(makePTELine(0x7000+uint64(i)*8, testFlags, 8), uint64(0x20000+i*0x40))
		if err != nil {
			t.Fatal(err)
		}
		lines = append(lines, res.Line)
		addrs = append(addrs, uint64(0x20000+i*0x40))
	}
	// A zero line under OptZeroMAC and a CTB-tracked address.
	zres, _ := g.OnWrite(pte.Line{}, 0x30000)
	lines, addrs = append(lines, zres.Line), append(addrs, 0x30000)
	var junk pte.Line
	junk[0] = pte.Entry(0xDEAD << 12)
	if err := g.ctb.add(0x30040); err != nil {
		t.Fatal(err)
	}
	lines, addrs = append(lines, junk), append(addrs, 0x30040)

	// Corrupt lines 3 and 7.
	lines[3][0] = pte.Entry(uint64(lines[3][0]) ^ 1<<20)
	lines[7][5] = pte.Entry(uint64(lines[7][5]) ^ 1<<13)

	before := g.Counters()
	ok := make([]bool, len(lines))
	g.AuditBatch(ok, lines, addrs)
	if g.Counters() != before {
		t.Error("AuditBatch perturbed Guard counters")
	}
	for i, clean := range ok {
		want := i != 3 && i != 7
		if clean != want {
			t.Errorf("line %d: audit clean=%v, want %v", i, clean, want)
		}
	}
}

// Bit-by-bit reference implementations the run-decomposed gather/scatter
// loops are checked against.
func gatherFieldRef(line pte.Line, mask uint64) []byte {
	n := bits.OnesCount64(mask) * pte.PTEsPerLine
	out := make([]byte, (n+7)/8)
	pos := 0
	for _, e := range line {
		m := mask
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			if uint64(e)>>uint(b)&1 == 1 {
				out[pos/8] |= 1 << (pos % 8)
			}
			pos++
		}
	}
	return out
}

func scatterFieldRef(line pte.Line, mask uint64, data []byte) pte.Line {
	pos := 0
	for i, e := range line {
		v := uint64(e) &^ mask
		m := mask
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			if pos/8 < len(data) && data[pos/8]>>(pos%8)&1 == 1 {
				v |= 1 << uint(b)
			}
			pos++
		}
		line[i] = pte.Entry(v)
	}
	return line
}

// TestGatherScatterRunsMatchRef quick-checks the run-decomposed field
// gather/scatter against the bit-by-bit reference on random masks
// (including single-run, alternating and full-width shapes that stress the
// 56-bit run cap) and short data slices (bits past the data must read 0).
func TestGatherScatterRunsMatchRef(t *testing.T) {
	edgeMasks := []uint64{0, 1, 1 << 63, ^uint64(0), 0xFFF_0000000000,
		0xAAAAAAAAAAAAAAAA, 0x7FFFFFFFFFFFFFFF, pte.MaskMAC, 1<<63 | 1}
	prop := func(seed uint64, maskSel uint8, trim uint8) bool {
		r := stats.NewRNG(seed)
		mask := r.Uint64()
		if int(maskSel)%3 == 0 {
			mask = edgeMasks[int(maskSel)%len(edgeMasks)]
		}
		var line pte.Line
		for i := range line {
			line[i] = pte.Entry(r.Uint64())
		}
		got := gatherField(line, mask)
		want := gatherFieldRef(line, mask)
		if len(got) != len(want) {
			t.Logf("mask %#x: gather length %d want %d", mask, len(got), len(want))
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				t.Logf("mask %#x: gather byte %d = %#x want %#x", mask, i, got[i], want[i])
				return false
			}
		}
		data := make([]byte, pte.LineBytes)
		for i := range data {
			data[i] = byte(r.Uint64())
		}
		data = data[:len(data)-int(trim)%len(data)]
		if scatterField(line, mask, data) != scatterFieldRef(line, mask, data) {
			t.Logf("mask %#x len %d: scatter mismatch", mask, len(data))
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestGuardBatchZeroAlloc: steady-state batch write, read and audit passes
// must not allocate — the scratch grows once and is reused.
func TestGuardBatchZeroAlloc(t *testing.T) {
	g := newTestGuard(t, nil)
	const n = 64
	lines := make([]pte.Line, n)
	addrs := make([]uint64, n)
	for i := range lines {
		lines[i] = makePTELine(0x11000+uint64(i)*8, testFlags, 8)
		addrs[i] = uint64(0x40000 + i*0x40)
	}
	wres := make([]WriteResult, n)
	if _, err := g.OnWriteBatch(wres, lines, addrs); err != nil {
		t.Fatal(err)
	}
	stored := make([]pte.Line, n)
	for i := range stored {
		stored[i] = wres[i].Line
	}
	rres := make([]ReadResult, n)
	ok := make([]bool, n)

	if a := testing.AllocsPerRun(20, func() {
		if _, err := g.OnWriteBatch(wres, lines, addrs); err != nil {
			t.Fatal(err)
		}
	}); a != 0 {
		t.Errorf("OnWriteBatch allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() {
		g.OnReadBatch(rres, stored, addrs, true)
	}); a != 0 {
		t.Errorf("OnReadBatch allocates %.1f objects/op, want 0", a)
	}
	if a := testing.AllocsPerRun(20, func() {
		g.AuditBatch(ok, stored, addrs)
	}); a != 0 {
		t.Errorf("AuditBatch allocates %.1f objects/op, want 0", a)
	}
}

// TestBatchObservability: with an observer attached, batch passes must feed
// the lines-per-batch histogram and the published batch counters — the
// -metrics-out view of batching traffic.
func TestBatchObservability(t *testing.T) {
	g := newTestGuard(t, nil)
	g.SetObserver(obs.New(obs.Options{}))
	const n = 10
	lines := make([]pte.Line, n)
	addrs := make([]uint64, n)
	for i := range lines {
		lines[i] = makePTELine(0x5000+uint64(i)*8, testFlags, 8)
		addrs[i] = uint64(0x60000 + i*0x40)
	}
	res := make([]WriteResult, n)
	if _, err := g.OnWriteBatch(res, lines, addrs); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	g.PublishObs(reg)
	snap := reg.Snapshot()
	if got := snap.Counters["guard.mac_batches"]; got != 1 {
		t.Errorf("guard.mac_batches = %d, want 1", got)
	}
	if got := snap.Counters["guard.batched_mac_computes"]; got != n {
		t.Errorf("guard.batched_mac_computes = %d, want %d", got, n)
	}
	hist := g.batchHist.Snapshot()
	if hist.Count != 1 || hist.Sum != n {
		t.Errorf("guard.batch_lines histogram = %+v, want one observation of %d", hist, n)
	}
}
