package core

import (
	"testing"

	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// The Guard's write (pattern match + MAC embed) and page-table-walk verify
// paths are exercised on every simulated DRAM access; these gates pin them
// to zero heap allocations per operation.

var (
	sinkWrite WriteResult
	sinkRead  ReadResult
)

func TestGuardWriteZeroAlloc(t *testing.T) {
	g := newTestGuard(t, nil)
	line := makePTELine(0xBEEF00, testFlags, pte.PTEsPerLine)
	if n := testing.AllocsPerRun(200, func() {
		w, err := g.OnWrite(line, 0x4000)
		if err != nil {
			t.Fatal(err)
		}
		sinkWrite = w
	}); n != 0 {
		t.Errorf("OnWrite (protected) allocates %.1f objects/op, want 0", n)
	}
}

func TestGuardWriteUnprotectedZeroAlloc(t *testing.T) {
	g := newTestGuard(t, nil)
	// A line with MAC-field bits set fails the pattern match and takes the
	// collision-check branch (one MAC compute + field compare).
	var line pte.Line
	for i := range line {
		line[i] = pte.Entry(testFlags | pte.MaskMAC).WithPFN(0x100 + uint64(i))
	}
	if n := testing.AllocsPerRun(200, func() {
		w, err := g.OnWrite(line, 0x4000)
		if err != nil {
			t.Fatal(err)
		}
		sinkWrite = w
	}); n != 0 {
		t.Errorf("OnWrite (collision check) allocates %.1f objects/op, want 0", n)
	}
}

func TestGuardWalkReadZeroAlloc(t *testing.T) {
	g := newTestGuard(t, nil)
	line := makePTELine(0xBEEF00, testFlags, pte.PTEsPerLine)
	protected := writePTE(t, g, line, 0x4000)
	if n := testing.AllocsPerRun(200, func() {
		rd := g.OnRead(protected, 0x4000, true)
		if rd.CheckFailed {
			t.Fatal("clean line failed verification")
		}
		sinkRead = rd
	}); n != 0 {
		t.Errorf("OnRead (PTE walk verify+strip) allocates %.1f objects/op, want 0", n)
	}
}

func TestGuardDataReadZeroAlloc(t *testing.T) {
	g := newTestGuard(t, nil)
	line := makePTELine(0xBEEF00, testFlags, pte.PTEsPerLine)
	protected := writePTE(t, g, line, 0x4000)
	if n := testing.AllocsPerRun(200, func() {
		sinkRead = g.OnRead(protected, 0x4000, false)
	}); n != 0 {
		t.Errorf("OnRead (data path) allocates %.1f objects/op, want 0", n)
	}
}

func TestIncrementalCorrectionZeroAlloc(t *testing.T) {
	g := correctionGuard(t, nil)
	line := makePTELine(0xBEEF00, testFlags, pte.PTEsPerLine)
	protected := writePTE(t, g, line, 0x4000)
	// One payload flip: correction succeeds via step-2 flip-and-check.
	faultyCorrectable := flipBit(protected, 3, pte.BitWritable)
	// Heavy corruption: the search runs to GMax and fails.
	faultyDead := protected
	for i := range faultyDead {
		faultyDead[i] = pte.Entry(uint64(faultyDead[i]) ^ 0x3FF<<12)
	}
	if n := testing.AllocsPerRun(100, func() {
		rd := g.OnRead(faultyCorrectable, 0x4000, true)
		if !rd.Corrected {
			t.Fatal("single payload flip not corrected")
		}
		sinkRead = rd
	}); n != 0 {
		t.Errorf("correction (successful guess) allocates %.1f objects/op, want 0", n)
	}
	if n := testing.AllocsPerRun(20, func() {
		sinkRead = g.OnRead(faultyDead, 0x4000, true)
	}); n != 0 {
		t.Errorf("correction (exhausted search) allocates %.1f objects/op, want 0", n)
	}
}

// TestIncrementalCorrectionEquivalence drives a fuzz-style corpus of faulty
// lines through two guards that differ only in DisableIncrementalMAC and
// asserts byte-identical verdicts, served lines, and guess counts — the
// incremental chunk cache must be a pure optimisation. It also asserts the
// cipher-work saving the cache exists for: the incremental search must
// spend well under half the chunk encryptions of the full-recompute path.
func TestIncrementalCorrectionEquivalence(t *testing.T) {
	fast := correctionGuard(t, nil)
	ref := correctionGuard(t, func(c *Config) { c.DisableIncrementalMAC = true })

	r := stats.NewRNG(0x16C4)
	const trials = 300
	corrected := 0
	for trial := 0; trial < trials; trial++ {
		// Mix realistic contiguous lines with arbitrary payloads, like the
		// FuzzMACEmbedVerifyStrip corpus.
		var line pte.Line
		if trial%3 == 0 {
			for i := range line {
				line[i] = pte.Entry(r.Uint64() &^ (pte.MaskMAC | pte.MaskIdentifier | 1<<pte.BitAccessed))
			}
		} else {
			line = makePTELine(r.Uint64()&0xFFFFF, testFlags, 1+r.Intn(pte.PTEsPerLine))
		}
		addr := (r.Uint64() & 0xFFFF_FFC0)
		wFast, errFast := fast.OnWrite(line, addr)
		wRef, errRef := ref.OnWrite(line, addr)
		if (errFast == nil) != (errRef == nil) || wFast.Line != wRef.Line {
			t.Fatalf("trial %d: guards disagree on the write path", trial)
		}
		if errFast != nil || !wFast.Protected {
			continue
		}
		faulty := wFast.Line
		for i, n := 0, 1+r.Intn(12); i < n; i++ {
			faulty = flipBit(faulty, r.Intn(pte.PTEsPerLine), r.Intn(64))
		}
		gotFast := fast.OnRead(faulty, addr, true)
		gotRef := ref.OnRead(faulty, addr, true)
		if gotFast.CheckFailed != gotRef.CheckFailed ||
			gotFast.Corrected != gotRef.Corrected ||
			gotFast.Guesses != gotRef.Guesses ||
			gotFast.Line != gotRef.Line {
			t.Fatalf("trial %d: incremental and full-recompute corrections diverge:\n%+v\n%+v",
				trial, gotFast, gotRef)
		}
		if gotFast.Corrected {
			corrected++
		}
	}
	if corrected == 0 {
		t.Fatal("corpus never exercised a successful correction")
	}

	fc, rc := fast.Counters(), ref.Counters()
	if fc.ReadMACComputes != rc.ReadMACComputes || fc.CorrectionGuesses != rc.CorrectionGuesses {
		t.Errorf("logical verify accounting diverged: fast %d/%d guesses, ref %d/%d",
			fc.ReadMACComputes, fc.CorrectionGuesses, rc.ReadMACComputes, rc.CorrectionGuesses)
	}
	if fc.ChunkEncrypts*2 >= rc.ChunkEncrypts {
		t.Errorf("incremental path spent %d chunk encryptions vs %d full-recompute: expected well under half",
			fc.ChunkEncrypts, rc.ChunkEncrypts)
	}
	t.Logf("chunk encryptions: incremental %d vs full %d (%.2fx saving) over %d guesses",
		fc.ChunkEncrypts, rc.ChunkEncrypts,
		float64(rc.ChunkEncrypts)/float64(fc.ChunkEncrypts), fc.CorrectionGuesses)
}
