package core

import (
	"math/bits"

	"ptguard/internal/pte"
)

// gatherFieldInto collects the bits selected by mask from each of the eight
// PTEs in the line, LSB-first within each PTE, PTE 0 first, into a
// little-endian byte stream written to buf. It returns the number of
// significant bytes. With the x86_64 MAC mask this yields the 96-bit pooled
// MAC field of Fig. 2. Taking a caller-owned buffer keeps the read/write
// hot paths allocation-free; a 64-byte buffer always suffices (64 bits per
// PTE x 8 PTEs = 64 bytes at most).
// The gather/scatter loops walk the mask by runs of consecutive set bits,
// not bit by bit: the real masks are a handful of contiguous runs (the
// x86_64 MAC field is one 12-bit run per PTE), so each PTE costs a few
// shift-and-mask steps instead of one iteration per selected bit. Runs are
// capped at 56 bits so a run shifted by the stream's intra-byte offset
// (<= 7) still fits one uint64; longer runs simply take two steps.
func gatherFieldInto(buf *[pte.LineBytes]byte, line pte.Line, mask uint64) int {
	n := bits.OnesCount64(mask) * pte.PTEsPerLine
	nb := (n + 7) / 8
	for i := 0; i < nb; i++ {
		buf[i] = 0
	}
	pos := 0
	for _, e := range line {
		m := mask
		v := uint64(e)
		for m != 0 {
			start := uint(bits.TrailingZeros64(m))
			run := uint(bits.TrailingZeros64(^(m >> start)))
			if run > 56 {
				run = 56
			}
			chunk := v >> start & (1<<run - 1)
			idx := pos >> 3
			merged := chunk << (uint(pos) & 7)
			for w := int(run + uint(pos)&7); w > 0; w -= 8 {
				buf[idx] |= byte(merged)
				merged >>= 8
				idx++
			}
			pos += int(run)
			if start+run >= 64 {
				m = 0
			} else {
				m &^= 1<<(start+run) - 1
			}
		}
	}
	return nb
}

// gatherField is the allocating convenience form of gatherFieldInto, kept
// for tests and cold paths.
func gatherField(line pte.Line, mask uint64) []byte {
	var buf [pte.LineBytes]byte
	n := gatherFieldInto(&buf, line, mask)
	out := make([]byte, n)
	copy(out, buf[:n])
	return out
}

// scatterField writes the bit stream into the mask-selected bits of each
// PTE, inverting gatherField. Bits past the end of data read as zero.
func scatterField(line pte.Line, mask uint64, data []byte) pte.Line {
	pos := 0
	for i, e := range line {
		v := uint64(e) &^ mask
		m := mask
		for m != 0 {
			start := uint(bits.TrailingZeros64(m))
			run := uint(bits.TrailingZeros64(^(m >> start)))
			if run > 56 {
				run = 56
			}
			off := uint(pos) & 7
			idx := pos >> 3
			var chunk uint64
			shift := uint(0)
			for w := int(run + off); w > 0; w -= 8 {
				if idx < len(data) {
					chunk |= uint64(data[idx]) << shift
				}
				idx++
				shift += 8
			}
			v |= chunk >> off & (1<<run - 1) << start
			pos += int(run)
			if start+run >= 64 {
				m = 0
			} else {
				m &^= 1<<(start+run) - 1
			}
		}
		line[i] = pte.Entry(v)
	}
	return line
}

// clearField zeroes the mask-selected bits in every PTE of the line.
func clearField(line pte.Line, mask uint64) pte.Line {
	for i := range line {
		line[i] = pte.Entry(uint64(line[i]) &^ mask)
	}
	return line
}

// fieldIsZero reports whether every mask-selected bit in every PTE is zero:
// the bit-pattern match of §IV-B performed on DRAM writes.
func fieldIsZero(line pte.Line, mask uint64) bool {
	for _, e := range line {
		if uint64(e)&mask != 0 {
			return false
		}
	}
	return true
}

// maskedImage returns the 64-byte image used as MAC input: only the bits of
// protectedMask survive in each PTE (Table IV), everything else is zero.
func maskedImage(line pte.Line, protectedMask uint64) [pte.LineBytes]byte {
	var masked pte.Line
	for i, e := range line {
		masked[i] = pte.Entry(uint64(e) & protectedMask)
	}
	return masked.Bytes()
}

// lineIsZero reports whether all 512 bits of the line are zero.
func lineIsZero(line pte.Line) bool {
	for _, e := range line {
		if e != 0 {
			return false
		}
	}
	return true
}
