package core

import "errors"

// ErrCTBFull is returned when a colliding line is found but the Collision
// Tracking Buffer has no free entry; the system must re-key (§IV-F, §VII-B).
var ErrCTBFull = errors.New("core: collision tracking buffer full, re-key required")

// DefaultCTBEntries is the paper's CTB size: 4 entries, 20 bytes of SRAM.
const DefaultCTBEntries = 4

// ctbEntryBytes is the SRAM cost per entry: a 40-bit line address (§IV-F
// provisions 20 bytes for 4 entries).
const ctbEntryBytes = 5

// ctb is the Collision Tracking Buffer: a tiny fully-associative SRAM
// structure at the memory controller holding line addresses whose data bits
// accidentally equal their own computed MAC (§IV-D).
type ctb struct {
	addrs []uint64
	cap   int
}

func newCTB(entries int) *ctb {
	return &ctb{addrs: make([]uint64, 0, entries), cap: entries}
}

// contains reports whether addr is tracked.
func (c *ctb) contains(addr uint64) bool {
	for _, a := range c.addrs {
		if a == addr {
			return true
		}
	}
	return false
}

// add tracks addr, returning ErrCTBFull when out of entries. Adding an
// already-tracked address is a no-op.
func (c *ctb) add(addr uint64) error {
	if c.contains(addr) {
		return nil
	}
	if len(c.addrs) >= c.cap {
		return ErrCTBFull
	}
	c.addrs = append(c.addrs, addr)
	return nil
}

// remove untracks addr: the OS wrote a benign value over the colliding line
// (§VII-B).
func (c *ctb) remove(addr uint64) {
	for i, a := range c.addrs {
		if a == addr {
			c.addrs = append(c.addrs[:i], c.addrs[i+1:]...)
			return
		}
	}
}

// reset clears the buffer (after a full-memory re-key).
func (c *ctb) reset() { c.addrs = c.addrs[:0] }

// len returns the number of tracked lines.
func (c *ctb) len() int { return len(c.addrs) }

// sramBytes returns the buffer's SRAM cost.
func (c *ctb) sramBytes() int { return c.cap * ctbEntryBytes }
