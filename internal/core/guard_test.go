package core

import (
	"testing"
	"testing/quick"

	"ptguard/internal/mac"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

func testKey() []byte {
	key := make([]byte, mac.KeySize)
	r := stats.NewRNG(0xA11CE)
	for i := range key {
		key[i] = byte(r.Uint64())
	}
	return key
}

func testFormat(tb testing.TB) pte.Format {
	tb.Helper()
	f, err := pte.FormatX86(40)
	if err != nil {
		tb.Fatal(err)
	}
	return f
}

func newTestGuard(tb testing.TB, mutate func(*Config)) *Guard {
	tb.Helper()
	cfg := Config{Format: testFormat(tb), Key: testKey()}
	if mutate != nil {
		mutate(&cfg)
	}
	g, err := NewGuard(cfg)
	if err != nil {
		tb.Fatalf("NewGuard: %v", err)
	}
	return g
}

// makePTELine builds a realistic PTE line: contiguous PFNs, uniform flags,
// MAC/identifier/ignored fields zero (as the trusted kernel writes them).
func makePTELine(basePFN uint64, flags uint64, valid int) pte.Line {
	var l pte.Line
	for i := 0; i < valid; i++ {
		l[i] = pte.Entry(flags).WithPFN(basePFN + uint64(i))
	}
	return l
}

const testFlags = uint64(1)<<pte.BitPresent | 1<<pte.BitWritable |
	1<<pte.BitUserAccessible | 1<<pte.BitGlobal

func TestNewGuardValidation(t *testing.T) {
	f := testFormat(t)
	tests := []struct {
		name    string
		cfg     Config
		wantErr bool
	}{
		{name: "ok", cfg: Config{Format: f, Key: testKey()}},
		{name: "no format", cfg: Config{Key: testKey()}, wantErr: true},
		{name: "bad key", cfg: Config{Format: f, Key: []byte{1}}, wantErr: true},
		{name: "tag too wide", cfg: Config{Format: f, Key: testKey(), TagBits: 128}, wantErr: true},
		{name: "bad soft k", cfg: Config{Format: f, Key: testKey(), SoftMatchK: -1}, wantErr: true},
		{name: "64-bit tag ok", cfg: Config{Format: f, Key: testKey(), TagBits: 64}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewGuard(tt.cfg)
			if (err != nil) != tt.wantErr {
				t.Errorf("err = %v, wantErr %v", err, tt.wantErr)
			}
		})
	}
}

func TestWriteEmbedsMACInPTELine(t *testing.T) {
	g := newTestGuard(t, nil)
	line := makePTELine(0x1234500, testFlags, 8)
	res, err := g.OnWrite(line, 0x4000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Protected || !res.MACComputed {
		t.Fatalf("PTE line not protected: %+v", res)
	}
	if fieldIsZero(res.Line, g.cfg.Format.MACMask) {
		t.Error("MAC field still zero after embedding")
	}
	// Architectural bits must be untouched.
	for i := range line {
		if uint64(res.Line[i])&^g.cfg.Format.MACMask != uint64(line[i]) {
			t.Fatalf("PTE %d architectural bits changed", i)
		}
	}
}

func TestWriteLeavesUnmatchedDataAlone(t *testing.T) {
	g := newTestGuard(t, nil)
	r := stats.NewRNG(1)
	var line pte.Line
	for i := range line {
		line[i] = pte.Entry(r.Uint64() | pte.MaskMAC) // MAC field busy
	}
	res, err := g.OnWrite(line, 0x8000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Protected {
		t.Error("non-matching line marked protected")
	}
	if res.Line != line {
		t.Error("non-matching line modified on write")
	}
}

func TestReadPTERoundTrip(t *testing.T) {
	g := newTestGuard(t, nil)
	line := makePTELine(0xBEEF00, testFlags, 8)
	w, err := g.OnWrite(line, 0x10040)
	if err != nil {
		t.Fatal(err)
	}
	rd := g.OnRead(w.Line, 0x10040, true)
	if rd.CheckFailed {
		t.Fatal("clean PTE line failed verification")
	}
	if !rd.Stripped {
		t.Error("MAC not stripped")
	}
	if rd.Line != line {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", rd.Line, line)
	}
}

func TestReadPTERoundTripProperty(t *testing.T) {
	g := newTestGuard(t, nil)
	f := func(pfns [8]uint32, flags uint16, addr uint32) bool {
		var line pte.Line
		for i, p := range pfns {
			line[i] = pte.Entry(uint64(flags) &^ (pte.MaskMAC | pte.MaskIdentifier)).
				WithPFN(uint64(p) & 0xFFFFFFF)
		}
		a := uint64(addr) &^ 63
		w, err := g.OnWrite(line, a)
		if err != nil || !w.Protected {
			return false
		}
		rd := g.OnRead(w.Line, a, true)
		return !rd.CheckFailed && rd.Line == line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDetectionOfEveryProtectedBitFlip(t *testing.T) {
	// §IV-G invariant: no tampered PTE line is ever consumed. Flip each
	// protected bit and each MAC bit in turn; every one must be detected.
	g := newTestGuard(t, nil)
	line := makePTELine(0xABC00, testFlags, 8)
	w, err := g.OnWrite(line, 0x7000)
	if err != nil {
		t.Fatal(err)
	}
	f := g.cfg.Format
	for i := 0; i < pte.PTEsPerLine; i++ {
		for b := 0; b < 64; b++ {
			bit := uint64(1) << uint(b)
			if f.ProtectedMask&bit == 0 && f.MACMask&bit == 0 {
				continue
			}
			tampered := w.Line
			tampered[i] = pte.Entry(uint64(tampered[i]) ^ bit)
			rd := g.OnRead(tampered, 0x7000, true)
			if !rd.CheckFailed {
				t.Fatalf("flip of PTE %d bit %d not detected", i, b)
			}
		}
	}
	if got := g.Counters().VerifyFailures; got == 0 {
		t.Error("VerifyFailures counter not incremented")
	}
}

func TestAccessedBitNotCovered(t *testing.T) {
	// The walker sets the accessed bit asynchronously; it is excluded
	// from the MAC (Table IV), so toggling it must not fail verification.
	g := newTestGuard(t, nil)
	line := makePTELine(0x999000, testFlags, 8)
	w, err := g.OnWrite(line, 0xC0000)
	if err != nil {
		t.Fatal(err)
	}
	touched := w.Line
	touched[3] = pte.Entry(uint64(touched[3]) | pte.MaskAccessed)
	rd := g.OnRead(touched, 0xC0000, true)
	if rd.CheckFailed {
		t.Fatal("accessed-bit change failed verification")
	}
	want := line
	want[3] = pte.Entry(uint64(want[3]) | pte.MaskAccessed)
	if rd.Line != want {
		t.Error("accessed bit lost in round trip")
	}
}

func TestDataReadForwardsUnprotectedUnchanged(t *testing.T) {
	g := newTestGuard(t, nil)
	r := stats.NewRNG(2)
	var line pte.Line
	for i := range line {
		line[i] = pte.Entry(r.Uint64() | 1<<41) // MAC field non-zero
	}
	w, err := g.OnWrite(line, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	rd := g.OnRead(w.Line, 0x2000, false)
	if rd.Stripped || rd.Line != line {
		t.Error("unprotected data line modified on read")
	}
}

func TestDataReadStripsProtectedData(t *testing.T) {
	// A regular data line that happens to match the pattern gets a MAC on
	// write, which must be removed transparently on read (§IV-C).
	g := newTestGuard(t, nil)
	var line pte.Line
	line[0] = pte.Entry(uint64(0xDEAD) &^ pte.MaskMAC)
	line[5] = pte.Entry(uint64(0xC0DE))
	w, err := g.OnWrite(line, 0x3000)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Protected {
		t.Fatal("pattern-matching data line not protected")
	}
	rd := g.OnRead(w.Line, 0x3000, false)
	if !rd.Stripped || rd.Line != line {
		t.Error("embedded MAC not stripped from data line")
	}
}

func TestDataReadWithFlipForwardsAsIs(t *testing.T) {
	// §IV-E: a protected data line with a bit flip fails the MAC compare
	// and is forwarded unchanged — same failure mode as the baseline.
	g := newTestGuard(t, nil)
	var line pte.Line
	line[2] = pte.Entry(0xF00D)
	w, err := g.OnWrite(line, 0x5000)
	if err != nil {
		t.Fatal(err)
	}
	flipped := w.Line
	flipped[2] = pte.Entry(uint64(flipped[2]) ^ 1<<13)
	rd := g.OnRead(flipped, 0x5000, false)
	if rd.Stripped {
		t.Error("flipped data line wrongly stripped")
	}
	if rd.Line != flipped {
		t.Error("flipped data line modified")
	}
	if rd.CheckFailed {
		t.Error("data reads must not raise PTECheckFailed")
	}
}

// craftCollidingLine builds a line whose MAC-field bits equal the MAC
// computed over its own protected bits: the known-plaintext construction of
// §IV-G an attacker uses to generate colliding lines.
func craftCollidingLine(g *Guard, seed, addr uint64) pte.Line {
	r := stats.NewRNG(seed)
	var line pte.Line
	for i := range line {
		line[i] = pte.Entry(r.Uint64())
	}
	f := g.cfg.Format
	tag := g.auth.Compute(maskedImage(line, f.ProtectedMask), addr)
	line = scatterField(line, f.MACMask, tag.Bytes())
	if g.cfg.OptIdentifier {
		line = scatterField(line, f.IdentifierMask, g.ident)
	}
	// Ensure it does not accidentally match the write pattern.
	if fieldIsZero(line, f.MACMask) {
		line[0] = pte.Entry(uint64(line[0]) | 1<<40)
	}
	return line
}

func TestCollisionTrackedAndForwarded(t *testing.T) {
	g := newTestGuard(t, nil)
	line := craftCollidingLine(g, 77, 0x9000)
	w, err := g.OnWrite(line, 0x9000)
	if err != nil {
		t.Fatal(err)
	}
	if !w.CollisionTracked {
		t.Fatal("colliding line not tracked")
	}
	if g.CTBLen() != 1 {
		t.Fatalf("CTB len = %d, want 1", g.CTBLen())
	}
	// The read must forward the data untouched, without stripping.
	rd := g.OnRead(line, 0x9000, false)
	if rd.Stripped || rd.MACComputed || rd.Line != line {
		t.Error("colliding line not forwarded verbatim")
	}
}

func TestCTBOverflowSignalsRekey(t *testing.T) {
	g := newTestGuard(t, nil)
	for i := 0; i < DefaultCTBEntries; i++ {
		addr := uint64(0x10000 + i*64)
		if _, err := g.OnWrite(craftCollidingLine(g, uint64(100+i), addr), addr); err != nil {
			t.Fatalf("collision %d: %v", i, err)
		}
	}
	addr := uint64(0x20000)
	_, err := g.OnWrite(craftCollidingLine(g, 999, addr), addr)
	if err != ErrCTBFull {
		t.Fatalf("err = %v, want ErrCTBFull", err)
	}
}

func TestCTBReleaseAfterBenignOverwrite(t *testing.T) {
	g := newTestGuard(t, nil)
	addr := uint64(0x9000)
	if _, err := g.OnWrite(craftCollidingLine(g, 7, addr), addr); err != nil {
		t.Fatal(err)
	}
	if g.CTBLen() != 1 {
		t.Fatal("collision not tracked")
	}
	// §VII-B: the OS writes a benign value; the entry is released.
	var benign pte.Line
	benign[0] = pte.Entry(uint64(1) << 42) // non-pattern, non-colliding
	if _, err := g.OnWrite(benign, addr); err != nil {
		t.Fatal(err)
	}
	if g.CTBLen() != 0 {
		t.Errorf("CTB len = %d after benign overwrite, want 0", g.CTBLen())
	}
}

func TestIdentifierSkipsMACOnDataReads(t *testing.T) {
	g := newTestGuard(t, func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 0xA5A5A5A5A5A5A5
	})
	r := stats.NewRNG(3)
	var line pte.Line
	for i := range line {
		line[i] = pte.Entry(r.Uint64() | 1<<41)
	}
	w, err := g.OnWrite(line, 0x6000)
	if err != nil {
		t.Fatal(err)
	}
	rd := g.OnRead(w.Line, 0x6000, false)
	if rd.MACComputed {
		t.Error("data read without identifier computed a MAC")
	}
	if g.Counters().IdentifierSkips != 1 {
		t.Errorf("IdentifierSkips = %d, want 1", g.Counters().IdentifierSkips)
	}
}

func TestIdentifierEmbeddedAndStripped(t *testing.T) {
	g := newTestGuard(t, func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 0x5EED5EED5EED5E
	})
	line := makePTELine(0x424200, testFlags, 8)
	w, err := g.OnWrite(line, 0xA000)
	if err != nil {
		t.Fatal(err)
	}
	if fieldIsZero(w.Line, g.cfg.Format.IdentifierMask) {
		t.Error("identifier not embedded")
	}
	rd := g.OnRead(w.Line, 0xA000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("optimized PTE round trip failed")
	}
	// Data-read path must also find and strip the protected line.
	rd2 := g.OnRead(w.Line, 0xA000, false)
	if !rd2.Stripped || rd2.Line != line {
		t.Error("data-path strip of identified line failed")
	}
}

func TestPTEWalkChecksMACEvenWithoutIdentifier(t *testing.T) {
	// §V-A: walks always verify, whatever the identifier bits say. A
	// tampered identifier must not let a flipped PTE through.
	g := newTestGuard(t, func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 0x11223344556677
	})
	line := makePTELine(0x313100, testFlags, 8)
	w, err := g.OnWrite(line, 0xB000)
	if err != nil {
		t.Fatal(err)
	}
	tampered := w.Line
	tampered[0] = pte.Entry(uint64(tampered[0]) ^ 1<<20)         // PFN flip
	tampered[1] = pte.Entry(uint64(tampered[1]) ^ uint64(1)<<52) // identifier flip
	rd := g.OnRead(tampered, 0xB000, true)
	if !rd.CheckFailed {
		t.Error("tampered PTE with broken identifier escaped the walk check")
	}
}

func TestZeroLineFastPath(t *testing.T) {
	g := newTestGuard(t, func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 0x0F0F0F0F0F0F0F
		c.OptZeroMAC = true
	})
	var zero pte.Line
	w, err := g.OnWrite(zero, 0xD000)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Protected || w.MACComputed {
		t.Fatalf("zero line write should embed MAC-zero without computing: %+v", w)
	}
	rd := g.OnRead(w.Line, 0xD000, false)
	if rd.MACComputed {
		t.Error("zero line read computed a MAC")
	}
	if rd.Line != zero {
		t.Error("zero line round trip failed")
	}
	// The walk path must take the same fast path.
	rdWalk := g.OnRead(w.Line, 0xD000, true)
	if rdWalk.CheckFailed || rdWalk.MACComputed || rdWalk.Line != zero {
		t.Error("zero PTE walk fast path failed")
	}
	if g.Counters().ZeroFastPathHits < 3 {
		t.Errorf("ZeroFastPathHits = %d, want >= 3", g.Counters().ZeroFastPathHits)
	}
}

func TestZeroFastPathRejectsTamperedZeroLine(t *testing.T) {
	g := newTestGuard(t, func(c *Config) { c.OptZeroMAC = true })
	var zero pte.Line
	w, err := g.OnWrite(zero, 0xE000)
	if err != nil {
		t.Fatal(err)
	}
	tampered := w.Line
	tampered[4] = pte.Entry(uint64(tampered[4]) | 1<<2) // user-accessible flip
	rd := g.OnRead(tampered, 0xE000, true)
	if !rd.CheckFailed {
		t.Error("tampered zero line escaped the walk check")
	}
}

func TestSRAMBudget(t *testing.T) {
	// §V-E: 52 bytes base, 71 bytes with both optimizations.
	base := newTestGuard(t, nil)
	if got := base.SRAMBytes(); got != 52 {
		t.Errorf("base SRAM = %d bytes, want 52", got)
	}
	opt := newTestGuard(t, func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 1
		c.OptZeroMAC = true
	})
	if got := opt.SRAMBytes(); got != 71 {
		t.Errorf("optimized SRAM = %d bytes, want 71", got)
	}
}

func TestCountersAccumulate(t *testing.T) {
	g := newTestGuard(t, nil)
	line := makePTELine(0x777000, testFlags, 8)
	w, _ := g.OnWrite(line, 0x1000)
	g.OnRead(w.Line, 0x1000, true)
	c := g.Counters()
	if c.Writes != 1 || c.Reads != 1 || c.ProtectedWrites != 1 || c.PTEWalkChecks != 1 {
		t.Errorf("counters = %+v", c)
	}
	g.ResetCounters()
	if g.Counters() != (Counters{}) {
		t.Error("ResetCounters left residue")
	}
}

// TestARMv8EndToEnd drives the guard with the ARMv8 descriptor format
// (Table II): the mechanism is format-generic (§IV-F).
func TestARMv8EndToEnd(t *testing.T) {
	f, err := pte.FormatARMv8(40)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGuard(Config{
		Format: f, Key: testKey(),
		EnableCorrection: true, SoftMatchK: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// An ARMv8 leaf line: valid entries with contiguous PFNs.
	var line pte.Line
	for i := 0; i < 8; i++ {
		e := pte.ArmEntry(0).WithPFN(0x55AA0 + uint64(i))
		e |= 1 << pte.ArmBitValid
		e |= 0x3 << 6 // access permissions
		line[i] = pte.Entry(e)
	}
	w, err := g.OnWrite(line, 0x7000)
	if err != nil {
		t.Fatal(err)
	}
	if !w.Protected {
		t.Fatal("ARMv8 PTE line not protected")
	}
	rd := g.OnRead(w.Line, 0x7000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Fatal("ARMv8 round trip failed")
	}
	// Detection: flip the valid bit.
	tampered := w.Line
	tampered[0] = pte.Entry(uint64(tampered[0]) ^ 1)
	rd = g.OnRead(tampered, 0x7000, true)
	if rd.CheckFailed {
		t.Fatal("single ARMv8 flip should be corrected, not rejected")
	}
	if rd.Line != line {
		t.Error("ARMv8 correction produced wrong payload")
	}
	// The ARMv8 accessed bit (bit 10) is uncovered.
	touched := w.Line
	touched[2] = pte.Entry(uint64(touched[2]) | 1<<pte.ArmBitAccessed)
	rd = g.OnRead(touched, 0x7000, true)
	if rd.CheckFailed {
		t.Error("ARMv8 accessed-bit change failed verification")
	}
	// PFN contiguity correction uses the split ARM PFN fields.
	multi := w.Line
	multi[3] = pte.Entry(uint64(multi[3]) ^ 1<<13 ^ 1<<15)
	rd = g.OnRead(multi, 0x7000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("ARMv8 PFN corruption not corrected via contiguity")
	}
}

// TestNonInterferenceProperty: lines that do not match the pattern pass
// through write and read paths bit-exactly (DESIGN.md invariant 2).
func TestNonInterferenceProperty(t *testing.T) {
	g := newTestGuard(t, nil)
	f := func(vals [8]uint64, addr uint32) bool {
		var line pte.Line
		for i, v := range vals {
			line[i] = pte.Entry(v)
		}
		// Force a pattern mismatch so the line is never protected.
		line[0] = pte.Entry(uint64(line[0]) | 1<<45)
		a := uint64(addr) &^ 63
		w, err := g.OnWrite(line, a)
		if err != nil || w.Protected || w.Line != line {
			return false
		}
		rd := g.OnRead(line, a, false)
		return rd.Line == line && !rd.CheckFailed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestOptimizedNonInterference: same invariant under the identifier and
// MAC-zero optimizations, including lines whose identifier field is busy.
func TestOptimizedNonInterference(t *testing.T) {
	g := newTestGuard(t, func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 0x99AABBCCDDEE11
		c.OptZeroMAC = true
	})
	f := func(vals [8]uint64, addr uint32) bool {
		var line pte.Line
		for i, v := range vals {
			line[i] = pte.Entry(v)
		}
		line[3] = pte.Entry(uint64(line[3]) | 1<<47) // MAC field busy
		a := uint64(addr) &^ 63
		w, err := g.OnWrite(line, a)
		if err != nil || w.Protected {
			return false
		}
		rd := g.OnRead(w.Line, a, false)
		return rd.Line == w.Line
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIdentifierCollisionForwardedUnchanged(t *testing.T) {
	// §V-A: a data line whose reserved bits accidentally equal the
	// identifier (once in 2^56) triggers a MAC computation on read; the
	// MAC mismatches and the line is forwarded unchanged — not tracked,
	// not stripped.
	const ident = 0x1337C0DEFACE55
	g := newTestGuard(t, func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = ident
	})
	r := stats.NewRNG(4)
	var line pte.Line
	for i := range line {
		line[i] = pte.Entry(r.Uint64() | 1<<44) // MAC field busy: no pattern match
	}
	// Craft the collision: scatter the identifier into the reserved bits.
	identBytes := make([]byte, 7)
	for i := range identBytes {
		identBytes[i] = byte(uint64(ident) >> (8 * i))
	}
	line = scatterField(line, g.cfg.Format.IdentifierMask, identBytes)

	w, err := g.OnWrite(line, 0x7700)
	if err != nil {
		t.Fatal(err)
	}
	if w.Protected {
		t.Fatal("identifier-colliding line wrongly protected")
	}
	if w.CollisionTracked {
		t.Fatal("identifier collision tracked in CTB (only MAC collisions are)")
	}
	rd := g.OnRead(w.Line, 0x7700, false)
	if !rd.MACComputed {
		t.Error("identifier match must trigger the MAC check")
	}
	if rd.Stripped || rd.Line != line {
		t.Error("identifier-colliding line modified on read")
	}
}

func TestQARMA64GuardRoundTripAndDetection(t *testing.T) {
	// The §VII-A 64-bit design point with its natural cipher: a 64-bit
	// MAC needs only 8 of the 12 spare bits per PTE.
	g := newTestGuard(t, func(c *Config) { c.UseQARMA64 = true })
	if g.Config().TagBits != 64 {
		t.Fatalf("tag bits = %d, want 64", g.Config().TagBits)
	}
	line := makePTELine(0x777700, testFlags, 8)
	w, err := g.OnWrite(line, 0x4000)
	if err != nil || !w.Protected {
		t.Fatalf("write: %+v err=%v", w, err)
	}
	rd := g.OnRead(w.Line, 0x4000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Fatal("QARMA-64 round trip failed")
	}
	tampered := w.Line
	tampered[1] = pte.Entry(uint64(tampered[1]) ^ 1<<2)
	if rd := g.OnRead(tampered, 0x4000, true); !rd.CheckFailed {
		t.Error("QARMA-64 guard missed tampering")
	}
}

// TestCounterInvariants drives a random operation mix and checks the
// bookkeeping identities the timing model depends on.
func TestCounterInvariants(t *testing.T) {
	g := newTestGuard(t, func(c *Config) {
		c.EnableCorrection = true
		c.SoftMatchK = 4
	})
	r := stats.NewRNG(0xC0117)
	var wantReads, wantWrites, wantWalks uint64
	for i := 0; i < 500; i++ {
		addr := uint64(0x1000 + r.Intn(64)*64)
		switch r.Intn(3) {
		case 0:
			line := makePTELine(uint64(0x100000+r.Intn(1<<16)), testFlags, 1+r.Intn(8))
			if _, err := g.OnWrite(line, addr); err != nil {
				t.Fatal(err)
			}
			wantWrites++
		case 1:
			var line pte.Line
			for j := range line {
				line[j] = pte.Entry(r.Uint64() | 1<<43)
			}
			g.OnRead(line, addr, false)
			wantReads++
		default:
			line := makePTELine(uint64(0x200000+r.Intn(1<<16)), testFlags, 8)
			w, err := g.OnWrite(line, addr)
			if err != nil {
				t.Fatal(err)
			}
			wantWrites++
			img := w.Line
			if r.Bernoulli(0.3) {
				img = flipBit(img, r.Intn(8), r.Intn(52))
			}
			g.OnRead(img, addr, true)
			wantReads++
			wantWalks++
		}
	}
	c := g.Counters()
	if c.Reads != wantReads || c.Writes != wantWrites || c.PTEWalkChecks != wantWalks {
		t.Errorf("op counts: %+v, want reads=%d writes=%d walks=%d", c, wantReads, wantWrites, wantWalks)
	}
	if c.StrippedReads > c.Reads {
		t.Error("StrippedReads exceeds Reads")
	}
	if c.Corrections > c.PTEWalkChecks {
		t.Error("Corrections exceed walk checks")
	}
	if c.VerifyFailures+c.Corrections > c.PTEWalkChecks {
		t.Error("failures + corrections exceed walk checks")
	}
	if c.ProtectedWrites > c.Writes {
		t.Error("ProtectedWrites exceeds Writes")
	}
	if c.CorrectionGuesses > 0 && c.ReadMACComputes < c.CorrectionGuesses/2 {
		t.Error("correction guesses not reflected in MAC computes")
	}
}
