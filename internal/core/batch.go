package core

import (
	"ptguard/internal/mac"
	"ptguard/internal/pte"
)

// This file holds the Guard's batch entry points. Campaign setup flushes,
// rekey sweeps and table audits touch thousands of PTE lines back to back;
// feeding their MAC computations through mac.ComputeBatch (and, below it,
// the bit-sliced qarma.EncryptBlocks kernel) amortises the cipher across up
// to 64 lanes per pass.
//
// Equivalence contract: OnWriteBatch and OnReadBatch are bit-identical to
// calling OnWrite/OnRead sequentially — same results, same counters, same
// CTB state, same trace events. The design that makes this safe is a
// two-pass structure:
//
//  1. classify every line and batch-compute the MACs the scalar path would
//     compute. Whether a line needs the MAC unit depends only on the line's
//     own content (bit-pattern match, identifier match, zero fast path) and,
//     for reads, on CTB membership — never on what an *earlier line in the
//     batch* did: writes decide before any CTB mutation, and reads never
//     mutate the CTB at all.
//  2. replay the scalar path per line in order, handing each its
//     precomputed tag. All state mutations (counters, CTB add/remove, trace
//     events) happen here, in the sequential order.
//
// The equivalence is pinned by the batched-vs-scalar properties in
// batch_test.go.

// batchScratch is the Guard-owned reusable marshalling state of the batch
// entry points; it grows to the largest batch seen and is then reused, so
// steady-state batches perform zero heap allocations.
type batchScratch struct {
	imgs  [][mac.LineBytes]byte // masked MAC inputs of the lines needing computation
	addrs []uint64              // their line addresses
	tags  []mac.Tag             // ComputeBatch output, parallel to imgs
	slot  []int                 // per batch line: index into imgs, or -1 (no MAC needed)
}

func (s *batchScratch) reset() {
	s.imgs = s.imgs[:0]
	s.addrs = s.addrs[:0]
	s.slot = s.slot[:0]
}

// push records that the line at batch position len(slot) needs a MAC over
// img at addr.
func (s *batchScratch) push(img [mac.LineBytes]byte, addr uint64) {
	s.slot = append(s.slot, len(s.imgs))
	s.imgs = append(s.imgs, img)
	s.addrs = append(s.addrs, addr)
}

func (s *batchScratch) skip() { s.slot = append(s.slot, -1) }

// pre returns the precomputed tag for batch position i, or nil when the
// classification pass decided no MAC is needed.
func (s *batchScratch) pre(i int) *mac.Tag {
	if k := s.slot[i]; k >= 0 {
		return &s.tags[k]
	}
	return nil
}

// batchMAC runs one sliced pass over the gathered images and accounts the
// batch-path telemetry (pass count and lines-per-batch histogram).
func (g *Guard) batchMAC() {
	n := len(g.bs.imgs)
	if n == 0 {
		return
	}
	if cap(g.bs.tags) < n {
		g.bs.tags = make([]mac.Tag, n)
	}
	g.bs.tags = g.bs.tags[:n]
	g.auth.ComputeBatch(g.bs.tags, g.bs.imgs, g.bs.addrs)
	g.ctr.MACBatches++
	g.batchHist.Observe(uint64(n))
}

// OnWriteBatch processes many lines through the DRAM write path in one
// call, MAC'ing them through the batch engine. res, lines and addrs must
// have equal length. It is bit-identical to calling OnWrite per line in
// order; the returned error is the first per-line error (sequential
// callers' flush loops keep writing past an error, and so does this), and
// failed counts the lines that would have returned one.
func (g *Guard) OnWriteBatch(res []WriteResult, lines []pte.Line, addrs []uint64) (failed int, err error) {
	if len(res) != len(lines) || len(addrs) != len(lines) {
		panic("core: OnWriteBatch slice lengths differ")
	}
	f := g.cfg.Format
	s := &g.bs
	s.reset()

	// Pass 1: classify. The write path runs the MAC unit for protected
	// non-zero lines and for unprotected lines whose bits could collide
	// with a stored MAC — both content-only decisions.
	var buf [pte.LineBytes]byte
	for i := range lines {
		pattern := fieldIsZero(lines[i], f.MACMask)
		if g.cfg.OptIdentifier {
			pattern = pattern && fieldIsZero(lines[i], f.IdentifierMask)
		}
		need := true
		if pattern {
			need = !(g.cfg.OptZeroMAC && lineIsZero(lines[i]))
		} else if g.cfg.OptIdentifier {
			n := gatherFieldInto(&buf, lines[i], f.IdentifierMask)
			need = bytesEqual(buf[:n], g.ident)
		}
		if need {
			s.push(maskedImage(lines[i], f.ProtectedMask), addrs[i])
		} else {
			s.skip()
		}
	}
	g.batchMAC()

	// Pass 2: sequential replay with precomputed tags.
	for i := range lines {
		r, werr := g.onWrite(lines[i], addrs[i], s.pre(i))
		res[i] = r
		if werr != nil {
			failed++
			if err == nil {
				err = werr
			}
		}
	}
	return failed, err
}

// OnReadBatch processes many lines arriving from DRAM in one call,
// verifying them through the batch engine. res, lines and addrs must have
// equal length. It is bit-identical to calling OnRead per line in order
// (reads never mutate the CTB, so the classification pass cannot go stale).
// Lines that fail verification still fall into the scalar correction
// search, which batches its own candidate waves (see correction.go).
func (g *Guard) OnReadBatch(res []ReadResult, lines []pte.Line, addrs []uint64, isPTE bool) {
	if len(res) != len(lines) || len(addrs) != len(lines) {
		panic("core: OnReadBatch slice lengths differ")
	}
	f := g.cfg.Format
	s := &g.bs
	s.reset()

	var buf [pte.LineBytes]byte
	for i := range lines {
		if g.ctb.contains(addrs[i]) {
			s.skip() // colliding line: forwarded unchecked
			continue
		}
		if !isPTE && g.cfg.OptIdentifier {
			n := gatherFieldInto(&buf, lines[i], f.IdentifierMask)
			if !bytesEqual(buf[:n], g.ident) {
				s.skip() // data read with no identifier: MAC unit skipped
				continue
			}
		}
		if g.cfg.OptZeroMAC {
			n := gatherFieldInto(&buf, lines[i], f.MACMask)
			stored, _ := mac.TagFromBytes(buf[:n], g.cfg.TagBits)
			if g.isZeroProtected(lines[i], stored, 0) {
				s.skip() // zero fast path: no computation
				continue
			}
		}
		s.push(maskedImage(lines[i], f.ProtectedMask), addrs[i])
	}
	g.batchMAC()

	for i := range lines {
		res[i] = g.onRead(lines[i], addrs[i], isPTE, s.pre(i))
	}
}

// AuditBatch batch-verifies stored line images without touching Guard
// state: ok[i] reports whether lines[i] at addrs[i] would pass the
// page-table-walk integrity check (CTB-tracked colliding lines audit as
// clean, since the read path forwards them unchecked; so do zero-protected
// lines and lines whose embedded MAC matches). It is a pure diagnostics /
// integrity-scrub path — no counters, corrections, CTB mutations or trace
// events — so campaigns can sweep a whole table population cheaply without
// perturbing the measured state.
func (g *Guard) AuditBatch(ok []bool, lines []pte.Line, addrs []uint64) {
	if len(ok) != len(lines) || len(addrs) != len(lines) {
		panic("core: AuditBatch slice lengths differ")
	}
	f := g.cfg.Format
	s := &g.bs
	s.reset()

	var buf [pte.LineBytes]byte
	for i := range lines {
		if g.ctb.contains(addrs[i]) {
			ok[i] = true
			s.skip()
			continue
		}
		n := gatherFieldInto(&buf, lines[i], f.MACMask)
		stored, _ := mac.TagFromBytes(buf[:n], g.cfg.TagBits)
		if g.cfg.OptZeroMAC && g.isZeroProtected(lines[i], stored, 0) {
			ok[i] = true
			s.skip()
			continue
		}
		ok[i] = false
		s.push(maskedImage(lines[i], f.ProtectedMask), addrs[i])
	}
	n := len(s.imgs)
	if n == 0 {
		return
	}
	if cap(s.tags) < n {
		s.tags = make([]mac.Tag, n)
	}
	s.tags = s.tags[:n]
	g.auth.ComputeBatch(s.tags, s.imgs, s.addrs)
	for i := range lines {
		if pre := s.pre(i); pre != nil {
			n := gatherFieldInto(&buf, lines[i], f.MACMask)
			stored, _ := mac.TagFromBytes(buf[:n], g.cfg.TagBits)
			ok[i] = pre.Equal(stored)
		}
	}
}
