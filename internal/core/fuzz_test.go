package core

import (
	"testing"

	"ptguard/internal/mac"
	"ptguard/internal/pte"
)

func fuzzGuard(tb testing.TB) (*Guard, pte.Format) {
	tb.Helper()
	format, err := pte.FormatX86(40)
	if err != nil {
		tb.Fatal(err)
	}
	key := make([]byte, mac.KeySize)
	for i := range key {
		key[i] = byte(i*11 + 3)
	}
	g, err := NewGuard(Config{Format: format, Key: key})
	if err != nil {
		tb.Fatal(err)
	}
	return g, format
}

// FuzzMACEmbedVerifyStrip drives the Guard's whole protect/verify/strip
// cycle with arbitrary PTE payloads and asserts the §IV invariants:
//
//  1. any line with a free MAC field is protected on write;
//  2. the unmodified DRAM image verifies and strips back to the original;
//  3. a single flip in any MAC-covered bit is detected (correction off);
//  4. a flip confined to uncovered bits (accessed, identifier field) passes
//     and never corrupts the protected payload.
func FuzzMACEmbedVerifyStrip(f *testing.F) {
	f.Add(make([]byte, pte.LineBytes), uint16(0), uint64(0x1000))
	typical := pte.Line{0x8000000000025067, 0x8000000000026067, 0, 0x25063, 0, 0, 0x7FFF067, 0}
	img := typical.Bytes()
	f.Add(img[:], uint16(5), uint64(0x40))      // accessed bit: uncovered
	f.Add(img[:], uint16(52), uint64(0x80))     // identifier field: uncovered
	f.Add(img[:], uint16(40), uint64(0x2000))   // MAC field bit: covered
	f.Add(img[:], uint16(64+12), uint64(0x100)) // PFN bit of PTE 1: covered
	f.Fuzz(func(t *testing.T, raw []byte, flipBit uint16, addr uint64) {
		g, format := fuzzGuard(t)
		var img [pte.LineBytes]byte
		copy(img[:], raw)
		line := pte.LineFromBytes(img)
		// Free the MAC field, as the trusted kernel does for table lines
		// (Table IV): the pattern match requires it.
		for i := range line {
			line[i] = pte.Entry(uint64(line[i]) &^ format.MACMask)
		}
		addr &^= pte.LineBytes - 1

		w, err := g.OnWrite(line, addr)
		if err != nil {
			t.Fatalf("OnWrite: %v", err)
		}
		if !w.Protected {
			t.Fatal("line with free MAC field not protected")
		}

		// Invariant 2: clean roundtrip.
		r := g.OnRead(w.Line, addr, true)
		if r.CheckFailed {
			t.Fatal("clean DRAM image failed verification")
		}
		if !r.Stripped {
			t.Fatal("verified line not stripped")
		}
		if r.Line != line {
			t.Fatalf("strip did not restore the original:\n want %v\n got  %v", line, r.Line)
		}

		// Invariants 3 and 4: single-bit flip in the DRAM image.
		bit := int(flipBit) % (pte.LineBytes * 8)
		flipped := w.Line
		flipped[bit/64] = pte.Entry(uint64(flipped[bit/64]) ^ 1<<uint(bit%64))
		covered := (format.ProtectedMask|format.MACMask)>>uint(bit%64)&1 == 1
		r2 := g.OnRead(flipped, addr, true)
		if covered && !r2.CheckFailed {
			t.Fatalf("flip of covered bit %d passed verification", bit)
		}
		if !covered {
			if r2.CheckFailed {
				t.Fatalf("flip of uncovered bit %d raised a false alarm", bit)
			}
			for i := range r2.Line {
				if uint64(r2.Line[i])&format.ProtectedMask != uint64(line[i])&format.ProtectedMask {
					t.Fatalf("uncovered flip at bit %d corrupted protected payload of PTE %d", bit, i)
				}
			}
		}
	})
}
