// Package core implements the PT-Guard mechanism of §IV-§VI: opportunistic
// MAC embedding in PTE cachelines on DRAM writes, integrity verification on
// page-table walks, MAC stripping on reads, collision tracking, the
// identifier and MAC-zero optimizations, and the best-effort correction
// engine.
//
// The Guard models the logic the paper places in the memory controller
// (Fig. 5). It operates on 64-byte line images plus their physical address
// and an isPTE flag (the request-bus tag added for page-table walks).
package core

import (
	"errors"
	"fmt"

	"ptguard/internal/mac"
	"ptguard/internal/obs"
	"ptguard/internal/pte"
)

// Paper default latencies and sizes.
const (
	// DefaultMACLatencyCycles is the QARMA-128 MAC latency at 3 GHz:
	// 3.4 ns ≈ 10 CPU cycles (§IV-F).
	DefaultMACLatencyCycles = 10
	// keySRAMBytes is the MAC key cost: 32 bytes (§IV-F).
	keySRAMBytes = 32
	// identifierSRAMBytes is the 56-bit identifier cost: 7 bytes (§V-E).
	identifierSRAMBytes = 7
	// zeroMACSRAMBytes is the precomputed MAC-zero cost: 12 bytes (§V-E).
	zeroMACSRAMBytes = 12
)

// Config configures a Guard. The zero value is not usable; call NewGuard.
type Config struct {
	// Format selects the PTE layout and bit masks (Table IV).
	Format pte.Format
	// Key is the 32-byte secret MAC key held in memory-controller SRAM.
	Key []byte
	// TagBits is the MAC width; 0 selects the paper's 96 bits (64 when
	// UseQARMA64 is set).
	TagBits int
	// UseQARMA64 computes MACs with the QARMA-64 cipher: the lower-latency
	// primitive natural for the §VII-A 64-bit design point.
	UseQARMA64 bool
	// Rounds is the QARMA forward round count; 0 selects the default.
	Rounds int
	// OptIdentifier enables the §V-A identifier optimization: the write
	// pattern match extends to the reserved bits, and data reads skip MAC
	// computation unless the identifier is present.
	OptIdentifier bool
	// Identifier is the predefined random identifier value; only the low
	// IdentifierBitsPerLine bits are used. Required if OptIdentifier.
	Identifier uint64
	// OptZeroMAC enables the §V-B zero-cacheline optimization.
	OptZeroMAC bool
	// EnableCorrection enables the §VI best-effort correction engine on
	// page-table-walk integrity failures.
	EnableCorrection bool
	// SoftMatchK is the fault-tolerant MAC budget: corrections accept a
	// MAC within k bit-flips (§VI-C). The paper uses 4. Ignored unless
	// EnableCorrection.
	SoftMatchK int
	// ZeroResetMaxBits is the "almost-zero PTE" threshold for correction
	// step 3; the paper resets PTEs with at most 4 protected bits set.
	ZeroResetMaxBits int
	// Ablation switches (DESIGN.md §5.5): disable individual correction
	// guess strategies to measure each one's contribution to the Fig. 9
	// correction rate. All false runs the full §VI-D algorithm.
	DisableFlipAndCheck bool
	DisableZeroReset    bool
	DisableFlagVote     bool
	DisableContiguity   bool
	// DisableIncrementalMAC makes every correction guess recompute the
	// full line MAC instead of riding the per-chunk cipher cache (the
	// reference path the equivalence tests compare against; also useful
	// to measure the incremental search's cipher-work saving).
	DisableIncrementalMAC bool
	// CTBEntries sizes the Collision Tracking Buffer; 0 selects 4.
	CTBEntries int
	// MACLatencyCycles is the MAC computation delay used by the timing
	// model; 0 selects 10 cycles.
	MACLatencyCycles int
}

func (c Config) withDefaults() Config {
	if c.TagBits == 0 {
		if c.UseQARMA64 {
			c.TagBits = 64
		} else {
			c.TagBits = mac.DefaultTagBits
		}
	}
	if c.CTBEntries == 0 {
		c.CTBEntries = DefaultCTBEntries
	}
	if c.MACLatencyCycles == 0 {
		c.MACLatencyCycles = DefaultMACLatencyCycles
	}
	if c.ZeroResetMaxBits == 0 {
		c.ZeroResetMaxBits = 4
	}
	return c
}

// Counters aggregates the Guard's observable activity, consumed by the
// timing model and the experiment harnesses.
type Counters struct {
	Writes            uint64 // DRAM writes observed
	Reads             uint64 // DRAM reads observed
	ProtectedWrites   uint64 // writes that matched the pattern (MAC embedded)
	WriteMACComputes  uint64 // MAC computations on the write path
	ReadMACComputes   uint64 // MAC computations on the read path
	ChunkEncrypts     uint64 // cipher chunk encryptions (4 per full QARMA-128 MAC, 8 per QARMA-64; correction guesses re-encipher only dirty chunks)
	PTEWalkChecks     uint64 // page-table-walk integrity checks
	VerifyFailures    uint64 // uncorrectable integrity failures
	Corrections       uint64 // successful best-effort corrections
	CorrectionGuesses uint64 // total correction guesses attempted
	StrippedReads     uint64 // protected lines whose MAC was removed on read
	IdentifierSkips   uint64 // data reads that skipped MAC (no identifier)
	ZeroFastPathHits  uint64 // MAC computations avoided via MAC-zero
	CollisionsTracked uint64 // colliding lines inserted into the CTB

	// Batch-engine telemetry (the perf path, not part of the mechanism):
	// MACBatches counts sliced-kernel batch passes (OnWriteBatch/OnReadBatch
	// calls that ran the MAC unit, plus correction-search candidate waves);
	// BatchedMACComputes counts the MAC computations those passes served — a
	// subset of WriteMACComputes+ReadMACComputes, splitting MAC traffic into
	// batched vs scalar.
	MACBatches         uint64
	BatchedMACComputes uint64
}

// Guard is the PT-Guard logic instance at the memory controller.
// Guard is not safe for concurrent use; the simulator serialises accesses
// as a real controller's single verification pipeline would.
type Guard struct {
	cfg     Config
	auth    *mac.Authenticator
	ctb     *ctb
	zeroTag mac.Tag
	ident   []byte // identifier bit-stream, sized to the identifier field
	ctr     Counters

	// o, when set, receives MAC embed/verify/strip and CTB hit/insert/full
	// trace events (nil = observability disabled; every emit is nil-safe).
	o *obs.Observer
	// batchHist records lines-per-batch for every sliced MAC pass (nil when
	// observability is off; Observe on a nil histogram is a no-op).
	batchHist *obs.Histogram
	// bs is the reusable batch-marshalling scratch (see batch.go).
	bs batchScratch
}

// NewGuard validates cfg and builds a Guard.
func NewGuard(cfg Config) (*Guard, error) {
	cfg = cfg.withDefaults()
	if cfg.Format.Name == "" {
		return nil, errors.New("core: config needs a PTE format")
	}
	macCapacity := cfg.Format.MACBitsPerLine()
	if cfg.TagBits > macCapacity {
		return nil, fmt.Errorf("core: %d-bit tag exceeds %d-bit line capacity", cfg.TagBits, macCapacity)
	}
	if cfg.SoftMatchK < 0 || cfg.SoftMatchK >= cfg.TagBits {
		return nil, fmt.Errorf("core: soft-match budget %d outside [0, tag bits)", cfg.SoftMatchK)
	}
	opts := []mac.Option{mac.WithTagBits(cfg.TagBits)}
	if cfg.UseQARMA64 {
		opts = append(opts, mac.WithQARMA64())
	}
	if cfg.Rounds != 0 {
		opts = append(opts, mac.WithRounds(cfg.Rounds))
	}
	auth, err := mac.New(cfg.Key, opts...)
	if err != nil {
		return nil, err
	}
	g := &Guard{
		cfg:  cfg,
		auth: auth,
		ctb:  newCTB(cfg.CTBEntries),
	}
	if cfg.OptZeroMAC {
		g.zeroTag = auth.ZeroLineTag()
	}
	if cfg.OptIdentifier {
		identBits := cfg.Format.IdentifierBitsPerLine()
		g.ident = make([]byte, (identBits+7)/8)
		for i := range g.ident {
			g.ident[i] = byte(cfg.Identifier >> (8 * i))
		}
		for i := identBits; i < len(g.ident)*8; i++ {
			g.ident[i/8] &^= 1 << (i % 8)
		}
	}
	return g, nil
}

// Config returns the effective configuration.
func (g *Guard) Config() Config { return g.cfg }

// Counters returns a snapshot of the activity counters.
func (g *Guard) Counters() Counters { return g.ctr }

// ResetCounters zeroes the activity counters.
func (g *Guard) ResetCounters() { g.ctr = Counters{} }

// SetObserver attaches the observability subsystem; MAC and CTB activity
// emit trace events through it, and the batch engine records its
// lines-per-batch histogram. A nil observer detaches.
func (g *Guard) SetObserver(o *obs.Observer) {
	g.o = o
	if r := o.Registry(); r != nil {
		g.batchHist = r.Histogram("guard.batch_lines")
	} else {
		g.batchHist = nil
	}
}

// PublishObs feeds the Guard counters into the metric registry under
// "guard." (the obs snapshot path; a nil registry is a no-op).
func (g *Guard) PublishObs(r *obs.Registry) {
	if r == nil {
		return
	}
	r.SetCounter("guard.writes", g.ctr.Writes)
	r.SetCounter("guard.reads", g.ctr.Reads)
	r.SetCounter("guard.protected_writes", g.ctr.ProtectedWrites)
	r.SetCounter("guard.write_mac_computes", g.ctr.WriteMACComputes)
	r.SetCounter("guard.read_mac_computes", g.ctr.ReadMACComputes)
	r.SetCounter("guard.chunk_encrypts", g.ctr.ChunkEncrypts)
	r.SetCounter("guard.pte_walk_checks", g.ctr.PTEWalkChecks)
	r.SetCounter("guard.verify_failures", g.ctr.VerifyFailures)
	r.SetCounter("guard.corrections", g.ctr.Corrections)
	r.SetCounter("guard.correction_guesses", g.ctr.CorrectionGuesses)
	r.SetCounter("guard.stripped_reads", g.ctr.StrippedReads)
	r.SetCounter("guard.identifier_skips", g.ctr.IdentifierSkips)
	r.SetCounter("guard.zero_fastpath_hits", g.ctr.ZeroFastPathHits)
	r.SetCounter("guard.collisions_tracked", g.ctr.CollisionsTracked)
	r.SetCounter("guard.mac_batches", g.ctr.MACBatches)
	r.SetCounter("guard.batched_mac_computes", g.ctr.BatchedMACComputes)
	r.SetGauge("guard.ctb_occupancy", float64(g.ctb.len()))
}

// CTBLen returns the number of colliding lines currently tracked.
func (g *Guard) CTBLen() int { return g.ctb.len() }

// CTBRelease untracks a colliding line after the OS rewrote it (§VII-B).
func (g *Guard) CTBRelease(addr uint64) { g.ctb.remove(addr) }

// SRAMBytes returns the mechanism's SRAM cost: 52 bytes for the base design
// and 71 bytes with both optimizations (§V-E).
func (g *Guard) SRAMBytes() int {
	n := keySRAMBytes + g.ctb.sramBytes()
	if g.cfg.OptIdentifier {
		n += identifierSRAMBytes
	}
	if g.cfg.OptZeroMAC {
		n += zeroMACSRAMBytes
	}
	return n
}

// WriteResult describes what the Guard did to a line on the DRAM write path.
type WriteResult struct {
	// Line is the image actually written to DRAM (MAC embedded if
	// Protected).
	Line pte.Line
	// Protected reports that the bit-pattern matched and a MAC (and
	// identifier, if enabled) was embedded.
	Protected bool
	// MACComputed reports that the write path ran the MAC unit.
	MACComputed bool
	// CollisionTracked reports the line was a colliding line and entered
	// the CTB.
	CollisionTracked bool
}

// OnWrite processes a 64-byte line on its way to DRAM (§IV-B, §IV-D).
// It returns ErrCTBFull if a colliding line cannot be tracked.
func (g *Guard) OnWrite(line pte.Line, addr uint64) (WriteResult, error) {
	return g.onWrite(line, addr, nil)
}

// onWrite is the write path proper. pre, when non-nil, is the line's MAC as
// precomputed by the batch engine (tag over maskedImage at addr — the one
// value both the embed and the collision-check branches need); the path
// still charges the same counters, so batched and scalar writes account
// identically.
func (g *Guard) onWrite(line pte.Line, addr uint64, pre *mac.Tag) (WriteResult, error) {
	g.ctr.Writes++
	f := g.cfg.Format

	pattern := fieldIsZero(line, f.MACMask)
	if g.cfg.OptIdentifier {
		pattern = pattern && fieldIsZero(line, f.IdentifierMask)
	}

	if pattern {
		res := WriteResult{Protected: true}
		var tag mac.Tag
		if g.cfg.OptZeroMAC && lineIsZero(line) {
			tag = g.zeroTag
			g.ctr.ZeroFastPathHits++
		} else {
			if pre != nil {
				tag = *pre
				g.ctr.BatchedMACComputes++
			} else {
				tag = g.auth.Compute(maskedImage(line, f.ProtectedMask), addr)
			}
			g.ctr.WriteMACComputes++
			g.ctr.ChunkEncrypts += uint64(g.auth.Chunks())
			res.MACComputed = true
			g.o.Emit("mac", "embed", uint64(g.cfg.MACLatencyCycles))
		}
		raw := tag.Raw()
		out := scatterField(line, f.MACMask, raw[:tag.SizeBytes()])
		if g.cfg.OptIdentifier {
			out = scatterField(out, f.IdentifierMask, g.ident)
		}
		// A previously colliding address overwritten by a protected
		// line is no longer colliding.
		g.ctb.remove(addr)
		res.Line = out
		g.ctr.ProtectedWrites++
		return res, nil
	}

	// Not a protected line: check whether its existing bits collide with
	// the MAC the read path would compute (§IV-D). Under the identifier
	// optimization a read only consults the MAC when the identifier
	// matches, so only such lines can collide (§V-A).
	var buf [pte.LineBytes]byte
	collisionPossible := true
	if g.cfg.OptIdentifier {
		n := gatherFieldInto(&buf, line, f.IdentifierMask)
		collisionPossible = bytesEqual(buf[:n], g.ident)
	}
	res := WriteResult{Line: line}
	if collisionPossible {
		var tag mac.Tag
		if pre != nil {
			tag = *pre
			g.ctr.BatchedMACComputes++
		} else {
			tag = g.auth.Compute(maskedImage(line, f.ProtectedMask), addr)
		}
		g.ctr.WriteMACComputes++
		g.ctr.ChunkEncrypts += uint64(g.auth.Chunks())
		res.MACComputed = true
		n := gatherFieldInto(&buf, line, f.MACMask)
		raw := tag.Raw()
		if bytesEqual(buf[:n], raw[:tag.SizeBytes()]) {
			if err := g.ctb.add(addr); err != nil {
				g.o.Emit("ctb", "full", 0)
				return res, err
			}
			res.CollisionTracked = true
			g.ctr.CollisionsTracked++
			g.o.Emit("ctb", "insert", 0)
		} else {
			g.ctb.remove(addr)
		}
	} else {
		g.ctb.remove(addr)
	}
	return res, nil
}

// ReadResult describes what the Guard did to a line on the DRAM read path.
type ReadResult struct {
	// Line is the image forwarded to the cache hierarchy. Meaningless if
	// CheckFailed: the line is not forwarded (§IV-F).
	Line pte.Line
	// CheckFailed mirrors the PTECheckFailed response-bus bit.
	CheckFailed bool
	// Stripped reports that an embedded MAC (and identifier) was removed.
	Stripped bool
	// MACComputed reports that the read path ran the MAC unit at least
	// once (the timing model charges MAC latency for it).
	MACComputed bool
	// Corrected reports the correction engine repaired the line.
	Corrected bool
	// Guesses is the number of correction guesses performed.
	Guesses int
}

// OnRead processes a 64-byte line arriving from DRAM. isPTE mirrors the
// request-bus bit set for page-table walks (§IV-F); such reads always
// verify integrity. Regular reads identify and strip embedded MACs.
func (g *Guard) OnRead(line pte.Line, addr uint64, isPTE bool) ReadResult {
	return g.onRead(line, addr, isPTE, nil)
}

// onRead is the read path proper; pre, when non-nil, is the line's MAC as
// precomputed by the batch engine.
func (g *Guard) onRead(line pte.Line, addr uint64, isPTE bool, pre *mac.Tag) ReadResult {
	g.ctr.Reads++
	if g.ctb.contains(addr) {
		// Colliding line: forward unmodified, no MAC check (§IV-D).
		g.o.Emit("ctb", "hit", 0)
		return ReadResult{Line: line}
	}
	if isPTE {
		return g.readPTE(line, addr, pre)
	}
	return g.readData(line, addr, pre)
}

// readPTE is the page-table-walk path: verify, then strip (§IV-C).
func (g *Guard) readPTE(line pte.Line, addr uint64, pre *mac.Tag) ReadResult {
	g.ctr.PTEWalkChecks++
	f := g.cfg.Format
	var buf [pte.LineBytes]byte
	n := gatherFieldInto(&buf, line, f.MACMask)
	stored, _ := mac.TagFromBytes(buf[:n], g.cfg.TagBits)

	// Zero fast path (§V-B): an all-zero payload carrying MAC-zero.
	if g.cfg.OptZeroMAC && g.isZeroProtected(line, stored, 0) {
		g.ctr.ZeroFastPathHits++
		g.ctr.StrippedReads++
		g.o.Emit("mac", "zero", 0)
		return ReadResult{Line: g.strip(line), Stripped: true}
	}

	var computed mac.Tag
	if pre != nil {
		computed = *pre
		g.ctr.BatchedMACComputes++
	} else {
		computed = g.auth.Compute(maskedImage(line, f.ProtectedMask), addr)
	}
	g.ctr.ReadMACComputes++
	g.ctr.ChunkEncrypts += uint64(g.auth.Chunks())
	g.o.Emit("mac", "verify", uint64(g.cfg.MACLatencyCycles))
	res := ReadResult{MACComputed: true}
	if computed.Equal(stored) {
		g.ctr.StrippedReads++
		res.Line = g.strip(line)
		res.Stripped = true
		g.o.Emit("mac", "strip", 0)
		return res
	}

	if g.cfg.EnableCorrection {
		corrected, guesses, ok := g.correct(line, addr, stored)
		res.Guesses = guesses
		g.ctr.CorrectionGuesses += uint64(guesses)
		if ok {
			g.ctr.Corrections++
			g.ctr.StrippedReads++
			res.Line = g.strip(corrected)
			res.Stripped = true
			res.Corrected = true
			return res
		}
	}
	g.ctr.VerifyFailures++
	res.CheckFailed = true
	return res
}

// readData is the regular-data path: detect an embedded MAC and remove it;
// otherwise forward the line untouched (§IV-C, §IV-E).
func (g *Guard) readData(line pte.Line, addr uint64, pre *mac.Tag) ReadResult {
	f := g.cfg.Format
	var buf [pte.LineBytes]byte
	if g.cfg.OptIdentifier {
		n := gatherFieldInto(&buf, line, f.IdentifierMask)
		if !bytesEqual(buf[:n], g.ident) {
			// No identifier: the common case; skip the MAC unit
			// entirely (§V-A).
			g.ctr.IdentifierSkips++
			return ReadResult{Line: line}
		}
	}
	n := gatherFieldInto(&buf, line, f.MACMask)
	stored, _ := mac.TagFromBytes(buf[:n], g.cfg.TagBits)
	if g.cfg.OptZeroMAC && g.isZeroProtected(line, stored, 0) {
		g.ctr.ZeroFastPathHits++
		g.ctr.StrippedReads++
		g.o.Emit("mac", "zero", 0)
		return ReadResult{Line: g.strip(line), Stripped: true}
	}
	var computed mac.Tag
	if pre != nil {
		computed = *pre
		g.ctr.BatchedMACComputes++
	} else {
		computed = g.auth.Compute(maskedImage(line, f.ProtectedMask), addr)
	}
	g.ctr.ReadMACComputes++
	g.ctr.ChunkEncrypts += uint64(g.auth.Chunks())
	g.o.Emit("mac", "verify", uint64(g.cfg.MACLatencyCycles))
	res := ReadResult{MACComputed: true}
	if computed.Equal(stored) {
		g.ctr.StrippedReads++
		res.Line = g.strip(line)
		res.Stripped = true
		g.o.Emit("mac", "strip", 0)
		return res
	}
	// MAC mismatch on a data read: either the line never carried a MAC,
	// or it carried one and has bit flips. Forward unchanged either way —
	// no worse than an unprotected baseline (§IV-E).
	res.Line = line
	return res
}

// isZeroProtected reports whether the line is an all-zero payload carrying
// MAC-zero (within k bit flips) in its MAC field.
func (g *Guard) isZeroProtected(line pte.Line, stored mac.Tag, k int) bool {
	cleared := clearField(line, g.cfg.Format.MACMask)
	if g.cfg.OptIdentifier {
		cleared = clearField(cleared, g.cfg.Format.IdentifierMask)
	}
	if !lineIsZero(cleared) {
		return false
	}
	ok, err := g.zeroTag.SoftMatch(stored, k)
	return err == nil && ok
}

// strip removes the MAC and identifier fields before the line is forwarded
// to the caches and TLB, restoring the architectural PTE image (§IV-C).
func (g *Guard) strip(line pte.Line) pte.Line {
	out := clearField(line, g.cfg.Format.MACMask)
	if g.cfg.OptIdentifier {
		out = clearField(out, g.cfg.Format.IdentifierMask)
	}
	return out
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
