package core

import (
	"math/bits"
	"testing"

	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

func correctionGuard(tb testing.TB, mutate func(*Config)) *Guard {
	tb.Helper()
	return newTestGuard(tb, func(c *Config) {
		c.EnableCorrection = true
		c.SoftMatchK = 4
		if mutate != nil {
			mutate(c)
		}
	})
}

// writePTE writes the line and returns the protected DRAM image.
func writePTE(tb testing.TB, g *Guard, line pte.Line, addr uint64) pte.Line {
	tb.Helper()
	w, err := g.OnWrite(line, addr)
	if err != nil {
		tb.Fatal(err)
	}
	if !w.Protected {
		tb.Fatal("test line did not match the protection pattern")
	}
	return w.Line
}

func flipBit(l pte.Line, entry, bit int) pte.Line {
	l[entry] = pte.Entry(uint64(l[entry]) ^ 1<<uint(bit))
	return l
}

func TestGMaxMatchesPaper(t *testing.T) {
	g := correctionGuard(t, nil)
	if got := g.GMax(); got != 372 {
		t.Errorf("GMax = %d, want 372 (§VI-D)", got)
	}
}

func TestCorrectSingleMACBitFlip(t *testing.T) {
	// Step 1: flips confined to the MAC field pass the soft retry.
	g := correctionGuard(t, nil)
	line := makePTELine(0x52AA00, testFlags, 8)
	img := writePTE(t, g, line, 0x4000)
	tampered := flipBit(img, 2, 43) // inside bits 51:40
	rd := g.OnRead(tampered, 0x4000, true)
	if rd.CheckFailed || !rd.Corrected {
		t.Fatalf("MAC-bit flip not corrected: %+v", rd)
	}
	if rd.Line != line {
		t.Error("corrected line differs from original")
	}
	if rd.Guesses != 1 {
		t.Errorf("guesses = %d, want 1 (soft retry)", rd.Guesses)
	}
}

func TestCorrectUpToKMACBitFlips(t *testing.T) {
	g := correctionGuard(t, nil)
	line := makePTELine(0x52AA00, testFlags, 8)
	img := writePTE(t, g, line, 0x4000)
	tampered := img
	for _, b := range []int{40, 45, 48, 51} { // 4 flips, spread over PTEs
		tampered = flipBit(tampered, b%8, b)
	}
	rd := g.OnRead(tampered, 0x4000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("4 MAC-bit flips not corrected with k=4")
	}
}

func TestCorrectSinglePayloadBitFlip(t *testing.T) {
	// Step 2 (flip and check) repairs any single protected-bit flip, for
	// every protected bit position.
	g := correctionGuard(t, nil)
	line := makePTELine(0x6F1200, testFlags, 8)
	img := writePTE(t, g, line, 0x8000)
	f := g.cfg.Format
	m := f.ProtectedMask
	for m != 0 {
		b := bits.TrailingZeros64(m)
		m &= m - 1
		tampered := flipBit(img, 5, b)
		rd := g.OnRead(tampered, 0x8000, true)
		if rd.CheckFailed || rd.Line != line {
			t.Fatalf("single payload flip at bit %d not corrected", b)
		}
	}
}

func TestCorrectPayloadPlusMACFlip(t *testing.T) {
	// Flip-and-check combined with the soft match handles one payload
	// flip alongside MAC-field faults.
	g := correctionGuard(t, nil)
	line := makePTELine(0x111100, testFlags, 8)
	img := writePTE(t, g, line, 0xC000)
	tampered := flipBit(flipBit(img, 3, 17), 6, 44)
	rd := g.OnRead(tampered, 0xC000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("payload+MAC flip pair not corrected")
	}
}

func TestCorrectAlmostZeroPTE(t *testing.T) {
	// Step 3: a zero PTE that picked up a few flips is reset to zero.
	g := correctionGuard(t, nil)
	line := makePTELine(0x898900, testFlags, 5) // PTEs 5..7 are zero
	img := writePTE(t, g, line, 0x2000)
	tampered := img
	for _, b := range []int{3, 15, 27} { // 3 flips in a zero PTE
		tampered = flipBit(tampered, 6, b)
	}
	rd := g.OnRead(tampered, 0x2000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("corrupted zero PTE not reset")
	}
}

func TestCorrectFlagsByMajorityVote(t *testing.T) {
	// Step 4: two flag flips in one PTE exceed flip-and-check but match
	// the majority flag pattern of the line (Insight 3).
	g := correctionGuard(t, nil)
	line := makePTELine(0x770000, testFlags, 8)
	img := writePTE(t, g, line, 0x3000)
	tampered := flipBit(flipBit(img, 4, pte.BitWritable), 4, pte.BitGlobal)
	rd := g.OnRead(tampered, 0x3000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("flag corruption not fixed by majority vote")
	}
}

func TestCorrectPFNByContiguity(t *testing.T) {
	// Step 5: two PFN flips in one PTE of a contiguous run are rebuilt
	// from a neighbouring base (Insight 2).
	g := correctionGuard(t, nil)
	line := makePTELine(0x9990A0, testFlags, 8)
	img := writePTE(t, g, line, 0x5000)
	tampered := flipBit(flipBit(img, 2, 12), 2, 14) // low PFN bits
	rd := g.OnRead(tampered, 0x5000, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("PFN corruption not fixed by contiguity")
	}
}

func TestCorrectTopPFNByMajority(t *testing.T) {
	// Step 5 first guess: a flipped high PFN bit is restored by the
	// top-20 majority vote.
	g := correctionGuard(t, nil)
	line := makePTELine(0xABC0F0, testFlags, 8)
	img := writePTE(t, g, line, 0x5100)
	tampered := flipBit(flipBit(img, 1, 30), 1, 35) // two high-PFN flips
	rd := g.OnRead(tampered, 0x5100, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("high-PFN corruption not fixed by top majority")
	}
}

func TestCorrectFlagsAndPFNTogether(t *testing.T) {
	// Steps 4∧5 combined: flag flips and PFN flips in different PTEs.
	g := correctionGuard(t, nil)
	line := makePTELine(0x414100, testFlags, 8)
	img := writePTE(t, g, line, 0x5200)
	tampered := flipBit(flipBit(img, 3, pte.BitWritable), 3, pte.BitPresent)
	tampered = flipBit(flipBit(tampered, 5, 13), 5, 16)
	rd := g.OnRead(tampered, 0x5200, true)
	if rd.CheckFailed || rd.Line != line {
		t.Error("combined flag+PFN corruption not fixed")
	}
}

func TestUncorrectableRaisesException(t *testing.T) {
	// Massive corruption beyond every strategy must still be *detected*.
	g := correctionGuard(t, nil)
	line := makePTELine(0xF0F000, testFlags, 8)
	img := writePTE(t, g, line, 0x6000)
	r := stats.NewRNG(42)
	tampered := img
	for i := 0; i < 40; i++ {
		tampered = flipBit(tampered, r.Intn(8), r.Intn(40))
	}
	rd := g.OnRead(tampered, 0x6000, true)
	if rd.Corrected {
		// A correction must still reproduce the exact original — a
		// different result would be a miscorrection.
		if rd.Line != line {
			t.Fatal("MISCORRECTION: corrected line differs from original")
		}
		return
	}
	if !rd.CheckFailed {
		t.Fatal("heavy corruption neither corrected nor detected")
	}
	if rd.Guesses > g.GMax() {
		t.Errorf("guesses %d exceeded GMax %d", rd.Guesses, g.GMax())
	}
}

func TestNoMiscorrectionUnderRandomFaults(t *testing.T) {
	// §VI-D: miscorrection probability is a MAC collision. Inject random
	// faults at a high rate and verify every "corrected" outcome equals
	// the original line exactly, and every other outcome is a detection.
	g := correctionGuard(t, nil)
	r := stats.NewRNG(2024)
	const trials = 300
	detected, corrected := 0, 0
	for trial := 0; trial < trials; trial++ {
		line := makePTELine(uint64(0x100000+trial*8), testFlags, 8)
		addr := uint64(0x40000 + trial*64)
		img := writePTE(t, g, line, addr)
		tampered := img
		flips := 1 + r.Intn(6)
		for i := 0; i < flips; i++ {
			bit := r.Intn(512)
			tampered = flipBit(tampered, bit/64, bit%64)
		}
		if tampered == img {
			continue
		}
		rd := g.OnRead(tampered, addr, true)
		// The MAC covers ProtectedMask bits; the accessed bit and the
		// ignored field 58:52 are architecturally uncovered in the
		// base design (Table IV) and may legitimately differ.
		cmp := g.cfg.Format.ProtectedMask
		switch {
		case rd.Corrected:
			corrected++
			for i := range rd.Line {
				if uint64(rd.Line[i])&cmp != uint64(line[i])&cmp {
					t.Fatalf("trial %d: miscorrection in protected bits", trial)
				}
				if uint64(rd.Line[i])&g.cfg.Format.MACMask != 0 {
					t.Fatalf("trial %d: MAC field not stripped", trial)
				}
			}
		case rd.CheckFailed:
			detected++
		default:
			// Flips confined to MAC/identifier fields can verify
			// via soft match and strip cleanly; the protected
			// payload must still match.
			for i := range rd.Line {
				if uint64(rd.Line[i])&cmp != uint64(line[i])&cmp {
					t.Fatalf("trial %d: silent acceptance of tampering", trial)
				}
			}
		}
	}
	if corrected == 0 {
		t.Error("no corrections exercised; test is vacuous")
	}
	t.Logf("corrected=%d detected=%d of %d faulty lines", corrected, detected, trials)
}

func TestCorrectionDisabledJustDetects(t *testing.T) {
	g := newTestGuard(t, nil) // correction off
	line := makePTELine(0x123400, testFlags, 8)
	img := writePTE(t, g, line, 0x7000)
	rd := g.OnRead(flipBit(img, 0, 14), 0x7000, true)
	if !rd.CheckFailed || rd.Corrected || rd.Guesses != 0 {
		t.Errorf("detection-only guard misbehaved: %+v", rd)
	}
}

func TestCorrectionWithZeroMACOptimization(t *testing.T) {
	// A zero line protected by MAC-zero must be correctable too.
	g := correctionGuard(t, func(c *Config) { c.OptZeroMAC = true })
	var zero pte.Line
	w, err := g.OnWrite(zero, 0x8800)
	if err != nil {
		t.Fatal(err)
	}
	tampered := flipBit(w.Line, 3, 21) // payload flip in a zero line
	rd := g.OnRead(tampered, 0x8800, true)
	if rd.CheckFailed || rd.Line != zero {
		t.Error("zero-line payload flip not corrected under MAC-zero")
	}
}

func TestNoMiscorrectionOptimizedFullLine(t *testing.T) {
	// With the identifier optimization the reserved bits 58:52 are owned
	// by PT-Guard and stripped, so a corrected line must reproduce the
	// original exactly (modulo the accessed bit).
	g := correctionGuard(t, func(c *Config) {
		c.OptIdentifier = true
		c.Identifier = 0x77665544332211
	})
	r := stats.NewRNG(909)
	corrected := 0
	for trial := 0; trial < 200; trial++ {
		line := makePTELine(uint64(0x200000+trial*8), testFlags, 8)
		addr := uint64(0x80000 + trial*64)
		img := writePTE(t, g, line, addr)
		tampered := img
		for i, flips := 0, 1+r.Intn(5); i < flips; i++ {
			bit := r.Intn(512)
			tampered = flipBit(tampered, bit/64, bit%64)
		}
		rd := g.OnRead(tampered, addr, true)
		if !rd.Corrected {
			continue
		}
		corrected++
		for i := range rd.Line {
			got := uint64(rd.Line[i]) &^ pte.MaskAccessed
			want := uint64(line[i]) &^ pte.MaskAccessed
			if got != want {
				t.Fatalf("trial %d entry %d: got %#x want %#x", trial, i, got, want)
			}
		}
	}
	if corrected == 0 {
		t.Error("no corrections exercised; test is vacuous")
	}
}

func TestAblationDisableFlipAndCheck(t *testing.T) {
	g := correctionGuard(t, func(c *Config) { c.DisableFlipAndCheck = true })
	line := makePTELine(0x313000, testFlags, 8)
	img := writePTE(t, g, line, 0x9000)
	// A single payload flip would normally be fixed by step 2; with the
	// step disabled it falls through to contiguity (PFN flips still fix).
	rd := g.OnRead(flipBit(img, 2, 13), 0x9000, true)
	if rd.CheckFailed {
		t.Error("PFN flip not recovered by later strategies")
	}
	// A single *flag* flip in one PTE is majority-correctable too; but a
	// flip in protection keys of one PTE with uniform neighbours is fixed
	// by the flag vote. Pick a case nothing later covers: a single flip
	// in a line with only one non-zero PTE (no vote, no contiguity).
	lone := makePTELine(0x717000, testFlags, 1)
	loneImg := writePTE(t, g, lone, 0x9400)
	rd = g.OnRead(flipBit(loneImg, 0, 20), 0x9400, true)
	if !rd.CheckFailed {
		t.Error("lone-PTE flip corrected despite flip-and-check disabled")
	}
	// Sanity: the full engine handles it.
	full := correctionGuard(t, nil)
	fullImg := writePTE(t, full, lone, 0x9400)
	rd = full.OnRead(flipBit(fullImg, 0, 20), 0x9400, true)
	if rd.CheckFailed {
		t.Error("full engine failed the lone-PTE flip")
	}
}

func TestAblationDisableZeroReset(t *testing.T) {
	g := correctionGuard(t, func(c *Config) { c.DisableZeroReset = true })
	line := makePTELine(0x515000, testFlags, 5)
	img := writePTE(t, g, line, 0xA000)
	tampered := img
	for _, b := range []int{3, 15, 27} { // 3 flips in a zero PTE
		tampered = flipBit(tampered, 6, b)
	}
	rd := g.OnRead(tampered, 0xA000, true)
	if !rd.CheckFailed {
		t.Error("zero-PTE corruption corrected despite zero reset disabled")
	}
}

func TestAblationDisableContiguity(t *testing.T) {
	g := correctionGuard(t, func(c *Config) { c.DisableContiguity = true })
	line := makePTELine(0x616000, testFlags, 8)
	img := writePTE(t, g, line, 0xB000)
	tampered := flipBit(flipBit(img, 2, 12), 2, 14) // 2 PFN flips
	rd := g.OnRead(tampered, 0xB000, true)
	if !rd.CheckFailed {
		t.Error("PFN corruption corrected despite contiguity disabled")
	}
	if rd.Guesses >= g.GMax() {
		t.Errorf("guesses %d should shrink with a stage disabled", rd.Guesses)
	}
}

func TestAblationDisableFlagVote(t *testing.T) {
	g := correctionGuard(t, func(c *Config) { c.DisableFlagVote = true })
	line := makePTELine(0x818000, testFlags, 8)
	img := writePTE(t, g, line, 0xC800)
	tampered := flipBit(flipBit(img, 4, pte.BitWritable), 4, pte.BitGlobal)
	rd := g.OnRead(tampered, 0xC800, true)
	if !rd.CheckFailed {
		t.Error("flag corruption corrected despite flag vote disabled")
	}
}

func TestCorrectAllZeroLine(t *testing.T) {
	// Edge case: the all-zero line (64% of real PTEs are zero, Insight 1).
	// A small scatter of flips across several zero PTEs defeats
	// flip-and-check (multiple corrupted entries) but the zero-reset
	// guess restores the whole line in one step.
	g := correctionGuard(t, nil)
	line := pte.Line{}
	img := writePTE(t, g, line, 0xA000)
	tampered := flipBit(img, 0, pte.BitPresent)
	tampered = flipBit(tampered, 3, 14) // low PFN bit
	tampered = flipBit(tampered, 6, pte.BitNX)
	rd := g.OnRead(tampered, 0xA000, true)
	if rd.CheckFailed || !rd.Corrected {
		t.Fatalf("scattered flips on the zero line not corrected: %+v", rd)
	}
	if rd.Line != line {
		t.Fatal("correction did not restore the all-zero line")
	}
	if got := g.Counters().Corrections; got != 1 {
		t.Errorf("Corrections counter = %d, want 1", got)
	}
}

func TestZeroResetBoundary(t *testing.T) {
	// The zero-reset guess fires for PTEs with at most ZeroResetMaxBits
	// protected bits set. Exactly at the threshold it must still fire;
	// one bit above, the PTE is no longer "almost zero" and the engine
	// must not zero it (it would be a miscorrection if a soft MAC
	// collision let it through — instead the line is detected).
	g := correctionGuard(t, nil) // default ZeroResetMaxBits = 4
	line := pte.Line{}
	img := writePTE(t, g, line, 0xB000)

	at := img
	for _, b := range []int{0, 1, 14, 63} { // exactly 4 protected bits
		at = flipBit(at, 2, b)
	}
	rd := g.OnRead(at, 0xB000, true)
	if rd.CheckFailed || !rd.Corrected || rd.Line != line {
		t.Fatalf("4 flips in one zero PTE (== ZeroResetMaxBits) not corrected: %+v", rd)
	}

	above := img
	for _, b := range []int{0, 1, 2, 14, 63} { // 5 bits: above threshold
		above = flipBit(above, 2, b)
	}
	rd = g.OnRead(above, 0xB000, true)
	if rd.Corrected {
		t.Fatalf("5 flips above the zero-reset threshold claimed corrected: %+v", rd)
	}
	if !rd.CheckFailed {
		t.Fatal("uncorrectable line not detected")
	}
}

func TestFailedCorrectionBurnsExactlyGMax(t *testing.T) {
	// The guess budget boundary: a correction that exhausts every
	// strategy must burn exactly GMax = 372 guesses (§VI-D) — no early
	// exit miscounting, no overrun — and the counters must record the
	// failure, not a correction.
	g := correctionGuard(t, nil)
	line := makePTELine(0x3C3000, testFlags, 8)
	img := writePTE(t, g, line, 0xD000)
	r := stats.NewRNG(7)
	tampered := img
	for i := 0; i < 48; i++ {
		tampered = flipBit(tampered, r.Intn(8), r.Intn(40))
	}
	rd := g.OnRead(tampered, 0xD000, true)
	if rd.Corrected {
		t.Skip("seed produced a correctable pattern; boundary not reached")
	}
	if !rd.CheckFailed {
		t.Fatal("heavy corruption not detected")
	}
	if rd.Guesses != g.GMax() {
		t.Errorf("failed correction burned %d guesses, want exactly GMax = %d", rd.Guesses, g.GMax())
	}
	ctr := g.Counters()
	if ctr.Corrections != 0 || ctr.VerifyFailures != 1 {
		t.Errorf("counters = %+v, want 0 corrections and 1 verify failure", ctr)
	}
	if ctr.CorrectionGuesses != uint64(g.GMax()) {
		t.Errorf("CorrectionGuesses = %d, want %d", ctr.CorrectionGuesses, g.GMax())
	}
}

func TestMiscorrectionAccountingOnSoftMatchCollision(t *testing.T) {
	// With a tiny 8-bit MAC and k=4, soft matches accept any candidate
	// whose tag lands within Hamming distance 4 of the stored tag: two
	// different candidates can both soft-match, and the engine serves the
	// first one it guesses. The Guard *believes* it corrected — the
	// Corrections counter increments — even when the served payload is
	// wrong. Only a ground-truth oracle can expose these (internal/fault).
	g := correctionGuard(t, func(c *Config) { c.TagBits = 8 })
	r := stats.NewRNG(99)
	miscorrections, corrections := 0, 0
	for trial := 0; trial < 200; trial++ {
		line := makePTELine(uint64(0x200000+trial*8), testFlags, 8)
		addr := uint64(0x80000 + trial*64)
		img := writePTE(t, g, line, addr)
		tampered := img
		for i := 0; i < 3; i++ { // 3 flips: beyond single-flip repair
			tampered = flipBit(tampered, r.Intn(8), r.Intn(40))
		}
		before := g.Counters().Corrections
		rd := g.OnRead(tampered, addr, true)
		claimed := g.Counters().Corrections > before
		if rd.Corrected != claimed {
			t.Fatalf("trial %d: ReadResult.Corrected=%t but counter delta=%t", trial, rd.Corrected, claimed)
		}
		if rd.Corrected {
			corrections++
			if rd.Line != line {
				miscorrections++
			}
		}
	}
	if miscorrections == 0 {
		t.Fatalf("8-bit MAC produced no miscorrection in 200 trials (%d claimed corrections): "+
			"soft-match collision accounting not exercised", corrections)
	}
	t.Logf("8-bit MAC: %d claimed corrections, %d of them miscorrections", corrections, miscorrections)
}
