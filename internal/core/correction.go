package core

import (
	"math/bits"

	"ptguard/internal/mac"
	"ptguard/internal/pte"
)

// GMax returns the maximum number of correction guesses the engine can make
// for the configured format. For x86_64 with M=40 this is the paper's 372
// (§VI-D): 1 soft retry + 44·8 flip-and-check + 1 zero reset + 1 flag
// majority + 9 PFN contiguity + 8 combined.
func (g *Guard) GMax() int {
	return 1 + g.cfg.Format.ProtectedBitsPerPTE()*pte.PTEsPerLine + 1 + 1 + 9 + 8
}

// correct implements the hardware-based correction algorithm of §VI-D: a
// sequence of guesses for the true PTE-line value, each validated by a
// soft MAC match (hamming distance <= SoftMatchK). A passing guess is the
// corrected line; a MAC collision would be needed to miscorrect.
func (g *Guard) correct(line pte.Line, addr uint64, stored mac.Tag) (pte.Line, int, bool) {
	f := g.cfg.Format
	k := g.cfg.SoftMatchK
	guesses := 0

	// The guess loop dominates the verify hot path: every candidate is the
	// faulty image with a handful of bits changed, i.e. it differs from the
	// base in at most a couple of 16-byte cipher chunks. Enciphering the
	// base image's chunks once and re-enciphering only each candidate's
	// dirty chunks cuts the cipher work of the x86_64 search (up to 372
	// guesses) by roughly 4x versus a full 4-chunk MAC per guess. Every
	// guess still counts as one ReadMACCompute (one logical verification);
	// ChunkEncrypts carries the honest cipher-work accounting.
	incremental := !g.cfg.DisableIncrementalMAC
	var cc mac.ChunkCache
	if incremental {
		cc = g.auth.Precompute(maskedImage(line, f.ProtectedMask), addr)
		g.ctr.ChunkEncrypts += uint64(g.auth.Chunks())
	}

	check := func(cand pte.Line) bool {
		guesses++
		if g.cfg.OptZeroMAC && g.isZeroProtected(cand, stored, k) {
			return true
		}
		img := maskedImage(cand, f.ProtectedMask)
		var computed mac.Tag
		if incremental {
			var enc int
			computed, enc = g.auth.ComputeDelta(&cc, &img)
			g.ctr.ChunkEncrypts += uint64(enc)
		} else {
			computed = g.auth.Compute(img, addr)
			g.ctr.ChunkEncrypts += uint64(g.auth.Chunks())
		}
		g.ctr.ReadMACComputes++
		ok, err := computed.SoftMatch(stored, k)
		return err == nil && ok
	}

	// Step 1: errors only in the MAC — retry with a soft match (§VI-C).
	if check(line) {
		return line, guesses, true
	}

	// Step 2: flip and check every protected bit (single bit-flip in the
	// payload, possibly alongside MAC-bit faults absorbed by soft match).
	// This is the bulk of the search (ProtectedBits x 8 candidates); on the
	// incremental path the candidates are scored in waves of 64 through
	// ComputeDeltaBatch, pooling their dirty chunks into shared sliced
	// cipher passes.
	if !g.cfg.DisableFlipAndCheck {
		if incremental {
			if cand, ok := g.flipAndCheckBatched(line, &cc, stored, k, &guesses); ok {
				return cand, guesses, true
			}
		} else {
			for i := 0; i < pte.PTEsPerLine; i++ {
				m := f.ProtectedMask
				for m != 0 {
					b := bits.TrailingZeros64(m)
					m &= m - 1
					cand := line
					cand[i] = pte.Entry(uint64(cand[i]) ^ 1<<uint(b))
					if check(cand) {
						return cand, guesses, true
					}
				}
			}
		}
	}

	// Step 3: reset almost-zero PTEs — Insight 1: 64% of PTEs are zero, so
	// a PTE with only a few protected bits set is likely a corrupted zero
	// PTE. Subsequent steps build on this zeroed view.
	zeroed := line
	if !g.cfg.DisableZeroReset {
		for i, e := range zeroed {
			n := bits.OnesCount64(uint64(e) & f.ProtectedMask)
			if n > 0 && n <= g.cfg.ZeroResetMaxBits {
				zeroed[i] = pte.Entry(uint64(e) &^ (f.ProtectedMask | f.AccessedMask))
			}
		}
		if check(zeroed) {
			return zeroed, guesses, true
		}
	}

	// Step 4: bitwise majority vote over the flags of non-zero PTEs —
	// Insight 3: >99% of lines have uniform flags.
	flagsFixed := zeroed
	if !g.cfg.DisableFlagVote {
		flagsFixed = g.majorityFlags(zeroed)
		if check(flagsFixed) {
			return flagsFixed, guesses, true
		}
	}

	if !g.cfg.DisableContiguity {
		// Step 5: PFN contiguity — Insight 2: PFNs are ±1 of their
		// neighbours. First a majority vote over the top PFN bits
		// (1 guess), then 8 base reconstructions of the bottom bits.
		topFixed := g.majorityTopPFN(zeroed)
		if check(topFixed) {
			return topFixed, guesses, true
		}
		for base := 0; base < pte.PTEsPerLine; base++ {
			cand, ok := g.contiguityFromBase(zeroed, base)
			if !ok {
				guesses++ // the hardware still burns the guess slot
				continue
			}
			if check(cand) {
				return cand, guesses, true
			}
		}

		// Steps 4∧5 together: PFN and flag bits are independent, so
		// combine the flag majority with each contiguity
		// reconstruction (8 guesses).
		if !g.cfg.DisableFlagVote {
			for base := 0; base < pte.PTEsPerLine; base++ {
				cand, ok := g.contiguityFromBase(flagsFixed, base)
				if !ok {
					guesses++
					continue
				}
				if check(cand) {
					return cand, guesses, true
				}
			}
		}
	}

	return pte.Line{}, guesses, false
}

// flipWave is the candidate wave size of the batched flip-and-check: it
// matches the batch MAC engine's candidate pooling group, and each step-2
// candidate dirties exactly one cipher chunk, so a full wave fills the
// 64-lane sliced kernel exactly once.
const flipWave = 64

// flipAndCheckBatched is the batched form of the step-2 search: candidates
// are generated in the same (PTE, bit) order as the scalar loop, scored in
// waves through ComputeDeltaBatch, and then *consumed sequentially* — each
// candidate charges CorrectionGuesses/ReadMACComputes/ChunkEncrypts exactly
// as the scalar check() would, and consumption stops at the first match. A
// wave's remaining lanes are speculative cipher work the hardware analog
// performs in parallel; the counters keep the sequential model's honest
// accounting, so batched and scalar searches are counter-identical (pinned
// by the equivalence tests).
func (g *Guard) flipAndCheckBatched(line pte.Line, cc *mac.ChunkCache, stored mac.Tag, k int, guesses *int) (pte.Line, bool) {
	f := g.cfg.Format
	var cands [flipWave]pte.Line
	var imgs [flipWave][mac.LineBytes]byte
	var tags [flipWave]mac.Tag
	var enc [flipWave]int
	n := 0

	flush := func() (pte.Line, bool) {
		g.auth.ComputeDeltaBatch(tags[:n], enc[:n], cc, imgs[:n])
		g.ctr.MACBatches++
		g.batchHist.Observe(uint64(n))
		for j := 0; j < n; j++ {
			*guesses++
			if g.cfg.OptZeroMAC && g.isZeroProtected(cands[j], stored, k) {
				return cands[j], true
			}
			g.ctr.ChunkEncrypts += uint64(enc[j])
			g.ctr.ReadMACComputes++
			g.ctr.BatchedMACComputes++
			if ok, err := tags[j].SoftMatch(stored, k); err == nil && ok {
				return cands[j], true
			}
		}
		n = 0
		return pte.Line{}, false
	}

	for i := 0; i < pte.PTEsPerLine; i++ {
		m := f.ProtectedMask
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			cand := line
			cand[i] = pte.Entry(uint64(cand[i]) ^ 1<<uint(b))
			cands[n] = cand
			imgs[n] = maskedImage(cand, f.ProtectedMask)
			n++
			if n == flipWave {
				if hit, ok := flush(); ok {
					return hit, true
				}
			}
		}
	}
	if n > 0 {
		if hit, ok := flush(); ok {
			return hit, true
		}
	}
	return pte.Line{}, false
}

// majorityFlags returns line with every protected flag bit of each non-zero
// PTE replaced by the bitwise majority across the non-zero PTEs.
func (g *Guard) majorityFlags(line pte.Line) pte.Line {
	f := g.cfg.Format
	var votes [64]int
	nonZero := 0
	for _, e := range line {
		if uint64(e)&f.ProtectedMask == 0 {
			continue
		}
		nonZero++
		m := f.FlagsMask
		for m != 0 {
			b := bits.TrailingZeros64(m)
			m &= m - 1
			if uint64(e)>>uint(b)&1 == 1 {
				votes[b]++
			}
		}
	}
	if nonZero == 0 {
		return line
	}
	var consensus uint64
	m := f.FlagsMask
	for m != 0 {
		b := bits.TrailingZeros64(m)
		m &= m - 1
		if 2*votes[b] > nonZero {
			consensus |= 1 << uint(b)
		}
	}
	out := line
	for i, e := range out {
		if uint64(e)&f.ProtectedMask == 0 {
			continue
		}
		out[i] = pte.Entry(uint64(e)&^f.FlagsMask | consensus)
	}
	return out
}

// contiguityBottomBits is the span of low PFN bits reconstructed from the
// base PTE in step 5; the paper majority-votes the top 20 of 28 PFN bits
// and rebuilds the bottom 8.
const contiguityBottomBits = 8

// usablePFN extracts only the machine-usable PFN bits. On a protected DRAM
// image the architectural PFN field also carries the embedded MAC (bits
// 51:40), which must never leak into PFN arithmetic.
func usablePFN(e pte.Entry, f pte.Format) uint64 {
	return uint64(e) & f.PFNMask >> pte.PageShift
}

// withUsablePFN replaces only the usable PFN bits, leaving the MAC field and
// everything else intact.
func withUsablePFN(e pte.Entry, f pte.Format, pfn uint64) pte.Entry {
	return pte.Entry(uint64(e)&^f.PFNMask | pfn<<pte.PageShift&f.PFNMask)
}

// majorityTopPFN returns line with the top PFN bits of each non-zero PTE
// replaced by their majority value.
func (g *Guard) majorityTopPFN(line pte.Line) pte.Line {
	f := g.cfg.Format
	width := bits.OnesCount64(f.PFNMask)
	if width <= contiguityBottomBits {
		return line
	}
	topBits := width - contiguityBottomBits
	var votes [64]int // fixed-size: keeps the correction search allocation-free
	nonZero := 0
	for _, e := range line {
		if uint64(e)&f.ProtectedMask == 0 {
			continue
		}
		nonZero++
		top := usablePFN(e, f) >> contiguityBottomBits
		for b := 0; b < topBits; b++ {
			if top>>uint(b)&1 == 1 {
				votes[b]++
			}
		}
	}
	if nonZero == 0 {
		return line
	}
	var consensus uint64
	for b, v := range votes {
		if 2*v > nonZero {
			consensus |= 1 << uint(b)
		}
	}
	out := line
	for i, e := range out {
		if uint64(e)&f.ProtectedMask == 0 {
			continue
		}
		low := usablePFN(e, f) & (1<<contiguityBottomBits - 1)
		out[i] = withUsablePFN(e, f, consensus<<contiguityBottomBits|low)
	}
	return out
}

// contiguityFromBase assumes the base PTE's PFN is correct and rebuilds
// every other non-zero PFN as base ± offset (Guess Strategy 2). It reports
// false when the base PTE is itself zero or the reconstruction would leave
// the PFN range.
func (g *Guard) contiguityFromBase(line pte.Line, base int) (pte.Line, bool) {
	f := g.cfg.Format
	if uint64(line[base])&f.ProtectedMask == 0 {
		return pte.Line{}, false
	}
	width := bits.OnesCount64(f.PFNMask)
	limit := uint64(1) << uint(width)
	basePFN := int64(usablePFN(line[base], f))
	out := line
	for i, e := range out {
		if i == base || uint64(e)&f.ProtectedMask == 0 {
			continue
		}
		v := basePFN + int64(i-base)
		if v < 0 || v >= int64(limit) {
			return pte.Line{}, false
		}
		out[i] = withUsablePFN(e, f, uint64(v))
	}
	return out, true
}
