package core
