package fault

import (
	"fmt"

	"ptguard/internal/pte"
)

// Outcome classifies one integrity-checked read against the oracle's
// ground truth.
type Outcome int

// Confusion-matrix cells. The first two cover fault-free reads, the rest
// faulty ones.
const (
	// CleanPass: no injected fault, the line was served unflagged.
	CleanPass Outcome = iota
	// FalseAlarm: no injected fault, but detection fired. Must be zero —
	// a MAC never rejects the value it was computed over.
	FalseAlarm
	// Detected: fault present, PTECheckFailed raised, nothing served.
	Detected
	// Corrected: fault present, the architectural payload was served.
	Corrected
	// Miscorrected: fault present, the correction engine claimed success
	// but served a wrong payload (needs a soft-MAC collision, §VI-D).
	Miscorrected
	// SilentCorruption: fault present, a wrong payload passed verification
	// with no detection and no correction claim (a hard MAC collision).
	SilentCorruption
)

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case CleanPass:
		return "clean-pass"
	case FalseAlarm:
		return "false-alarm"
	case Detected:
		return "detected"
	case Corrected:
		return "corrected"
	case Miscorrected:
		return "miscorrected"
	case SilentCorruption:
		return "silent-corruption"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Matrix is the per-campaign confusion matrix.
type Matrix struct {
	CleanPasses   uint64 `json:"clean_passes"`
	FalseAlarms   uint64 `json:"false_alarms"`
	Detected      uint64 `json:"detected"`
	Corrected     uint64 `json:"corrected"`
	Miscorrected  uint64 `json:"miscorrected"`
	Silent        uint64 `json:"silent_corruptions"`
	FlipsInjected uint64 `json:"flips_injected"`
}

// Judged returns the total number of classified reads.
func (m Matrix) Judged() uint64 {
	return m.CleanPasses + m.FalseAlarms + m.Detected + m.Corrected + m.Miscorrected + m.Silent
}

// Faulty returns the number of reads that had at least one net flip.
func (m Matrix) Faulty() uint64 {
	return m.Detected + m.Corrected + m.Miscorrected + m.Silent
}

// CorrectedPct returns corrected / faulty: the Fig. 9 y-axis.
func (m Matrix) CorrectedPct() float64 {
	if f := m.Faulty(); f > 0 {
		return 100 * float64(m.Corrected) / float64(f)
	}
	return 0
}

// CoveragePct returns (detected + corrected) / faulty: the fraction of
// faulty lines that could not harm the system.
func (m Matrix) CoveragePct() float64 {
	if f := m.Faulty(); f > 0 {
		return 100 * float64(m.Detected+m.Corrected) / float64(f)
	}
	return 0
}

// Add accumulates another matrix into m.
func (m *Matrix) Add(o Matrix) {
	m.CleanPasses += o.CleanPasses
	m.FalseAlarms += o.FalseAlarms
	m.Detected += o.Detected
	m.Corrected += o.Corrected
	m.Miscorrected += o.Miscorrected
	m.Silent += o.Silent
	m.FlipsInjected += o.FlipsInjected
}

// Oracle is the campaign ground truth: it learns every line's architectural
// content, records every injected flip (via dram.Hammerer's observer hook),
// and classifies each Guard verdict into the confusion matrix. Because it
// tracks flip *parity* per bit, a bit flipped twice correctly counts as
// clean.
// Oracle is not safe for concurrent use; each campaign job owns one.
type Oracle struct {
	format pte.Format
	truth  map[uint64]pte.Line
	flips  map[uint64]map[int]bool
	m      Matrix
}

// NewOracle builds an oracle judging payloads under the given PTE format
// (only format.ProtectedMask bits count as payload, per Table IV).
func NewOracle(format pte.Format) *Oracle {
	return &Oracle{
		format: format,
		truth:  make(map[uint64]pte.Line),
		flips:  make(map[uint64]map[int]bool),
	}
}

// Expect registers the architectural (pre-protection) content of the line
// at addr. Judgements for unregistered addresses return an error.
func (o *Oracle) Expect(addr uint64, arch pte.Line) {
	o.truth[addr/pte.LineBytes*pte.LineBytes] = arch
}

// RecordFlip toggles the ground-truth flip parity of one bit; wire it to
// dram.Hammerer.SetObserver so every injection path reports here.
func (o *Oracle) RecordFlip(addr uint64, bit int) {
	key := addr / pte.LineBytes * pte.LineBytes
	bits := o.flips[key]
	if bits == nil {
		bits = make(map[int]bool)
		o.flips[key] = bits
	}
	if bits[bit] {
		delete(bits, bit)
	} else {
		bits[bit] = true
	}
	o.m.FlipsInjected++
}

// PendingFlips returns the number of net (odd-parity) flips recorded for
// the line at addr since the last Judge or ClearFlips.
func (o *Oracle) PendingFlips(addr uint64) int {
	return len(o.flips[addr/pte.LineBytes*pte.LineBytes])
}

// ClearFlips forgets the recorded flips for addr (the campaign restored the
// pristine image without a judgement).
func (o *Oracle) ClearFlips(addr uint64) {
	delete(o.flips, addr/pte.LineBytes*pte.LineBytes)
}

// Judge classifies one read of the line at addr: served is the line the
// Guard forwarded, checkFailed mirrors PTECheckFailed, and
// correctionClaimed reports that the correction engine believed it repaired
// the line. The verdict is accumulated into the matrix and the line's flip
// record is consumed (the campaign restores the pristine image afterwards).
func (o *Oracle) Judge(addr uint64, served pte.Line, checkFailed, correctionClaimed bool) (Outcome, error) {
	key := addr / pte.LineBytes * pte.LineBytes
	arch, ok := o.truth[key]
	if !ok {
		return 0, fmt.Errorf("fault: no ground truth registered for line %#x", key)
	}
	faulty := len(o.flips[key]) > 0
	delete(o.flips, key)

	var out Outcome
	switch {
	case !faulty && checkFailed:
		out = FalseAlarm
	case !faulty:
		out = CleanPass
	case checkFailed:
		out = Detected
	case o.payloadMatches(served, arch):
		out = Corrected
	case correctionClaimed:
		out = Miscorrected
	default:
		out = SilentCorruption
	}
	o.bump(out)
	return out, nil
}

func (o *Oracle) bump(out Outcome) {
	switch out {
	case CleanPass:
		o.m.CleanPasses++
	case FalseAlarm:
		o.m.FalseAlarms++
	case Detected:
		o.m.Detected++
	case Corrected:
		o.m.Corrected++
	case Miscorrected:
		o.m.Miscorrected++
	case SilentCorruption:
		o.m.Silent++
	}
}

// payloadMatches compares only the MAC-covered bits: the accessed bit and
// other uncovered fields are out of scope by construction (Table IV).
func (o *Oracle) payloadMatches(got, want pte.Line) bool {
	for i := range got {
		if uint64(got[i])&o.format.ProtectedMask != uint64(want[i])&o.format.ProtectedMask {
			return false
		}
	}
	return true
}

// Matrix returns a snapshot of the confusion matrix.
func (o *Oracle) Matrix() Matrix { return o.m }
