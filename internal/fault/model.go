// Package fault is the pluggable fault-injection and recovery-validation
// subsystem. It provides spatially-aware Rowhammer flip models beyond the
// uniform per-bit Bernoulli of §VI-F — word-aligned bursts, per-DQ-pin
// faults, true/anti-cell polarity, per-row severity variation, and
// PThammer-style targeted PTE-bit flips — plus a ground-truth oracle that
// records every injected flip and cross-checks PT-Guard verdicts into a
// per-campaign confusion matrix, and a campaign runner that exercises the
// Guard end to end under each model.
//
// The models implement dram.FlipModel and plug into dram.Hammerer through
// HammerConfig.Model; existing callers that leave Model nil keep the
// uniform Bernoulli behaviour.
package fault

import (
	"fmt"
	"math/bits"

	"ptguard/internal/dram"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// lineBits is the number of bits in one 64-byte line.
const lineBits = pte.LineBytes * 8

// Uniform flips each bit of the line independently with probability P: the
// paper's §VI-F methodology, the model dram.Hammerer applies by default.
type Uniform struct {
	// P is the per-bit flip probability.
	P float64
}

// Name implements dram.FlipModel.
func (m Uniform) Name() string { return fmt.Sprintf("uniform(p=%g)", m.P) }

// FlipBits implements dram.FlipModel.
func (m Uniform) FlipBits(rng *stats.RNG, _ pte.Line, _ dram.Location) []int {
	var out []int
	for bit := 0; bit < lineBits; bit++ {
		if rng.Bernoulli(m.P) {
			out = append(out, bit)
		}
	}
	return out
}

// ExactBits flips exactly N distinct uniformly-chosen bits: the 1/2/3-bit
// fault models under which the paper reports its §VI correction-coverage
// table.
type ExactBits struct {
	// N is the exact number of distinct bit flips per line.
	N int
}

// Name implements dram.FlipModel.
func (m ExactBits) Name() string { return fmt.Sprintf("%dbit", m.N) }

// FlipBits implements dram.FlipModel.
func (m ExactBits) FlipBits(rng *stats.RNG, _ pte.Line, _ dram.Location) []int {
	n := m.N
	if n <= 0 {
		return nil
	}
	if n > lineBits {
		n = lineBits
	}
	seen := make(map[int]bool, n)
	out := make([]int, 0, n)
	for len(out) < n {
		b := rng.Intn(lineBits)
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

// Burst models a clustered multi-bit disturbance: with probability PLine a
// run of 1..MaxRun adjacent bits inside one 64-bit word flips together.
// Clustered flips inside a word are what multiple flips in one DRAM beat
// look like at the line level, and they stress correction harder than
// independent flips because several flips land in the same PTE.
type Burst struct {
	// PLine is the probability that a line receives a burst at all.
	PLine float64
	// MaxRun caps the burst length in bits; 0 selects 4.
	MaxRun int
}

// Name implements dram.FlipModel.
func (m Burst) Name() string {
	return fmt.Sprintf("burst(p=%g,run=%d)", m.PLine, m.maxRun())
}

func (m Burst) maxRun() int {
	if m.MaxRun <= 0 {
		return 4
	}
	return m.MaxRun
}

// FlipBits implements dram.FlipModel.
func (m Burst) FlipBits(rng *stats.RNG, _ pte.Line, _ dram.Location) []int {
	if !rng.Bernoulli(m.PLine) {
		return nil
	}
	run := 1 + rng.Intn(m.maxRun())
	word := rng.Intn(pte.PTEsPerLine)
	start := rng.Intn(64 - run + 1)
	out := make([]int, run)
	for i := range out {
		out[i] = word*64 + start + i
	}
	return out
}

// DQPin models a weak DQ pin on one DRAM chip: the same in-word bit
// position fails across several of the eight transfer beats (the eight
// 64-bit words of a line), producing stride-64 flip patterns no
// single-PTE-local model generates.
type DQPin struct {
	// PLine is the probability that a line is hit at all.
	PLine float64
	// Beats is the number of beats the pin corrupts; 0 selects 3.
	Beats int
}

// Name implements dram.FlipModel.
func (m DQPin) Name() string {
	return fmt.Sprintf("dqpin(p=%g,beats=%d)", m.PLine, m.beats())
}

func (m DQPin) beats() int {
	if m.Beats <= 0 {
		return 3
	}
	if m.Beats > pte.PTEsPerLine {
		return pte.PTEsPerLine
	}
	return m.Beats
}

// FlipBits implements dram.FlipModel.
func (m DQPin) FlipBits(rng *stats.RNG, _ pte.Line, _ dram.Location) []int {
	if !rng.Bernoulli(m.PLine) {
		return nil
	}
	pin := rng.Intn(64)
	beats := m.beats()
	perm := rng.Perm(pte.PTEsPerLine)
	out := make([]int, 0, beats)
	for _, w := range perm[:beats] {
		out = append(out, w*64+pin)
	}
	return out
}

// Polarity is the data-dependent model: DRAM cells store charge in true or
// anti polarity, and Rowhammer discharges cells, so true-cell rows only
// flip stored 1s to 0 and anti-cell rows only flip stored 0s to 1. Rows
// alternate polarity by row index, as on real devices where cell polarity
// is a layout property of the row.
type Polarity struct {
	// PTrue is the per-bit 1→0 flip probability on true-cell rows.
	PTrue float64
	// PAnti is the per-bit 0→1 flip probability on anti-cell rows.
	PAnti float64
}

// Name implements dram.FlipModel.
func (m Polarity) Name() string {
	return fmt.Sprintf("polarity(p1to0=%g,p0to1=%g)", m.PTrue, m.PAnti)
}

// FlipBits implements dram.FlipModel.
func (m Polarity) FlipBits(rng *stats.RNG, line pte.Line, loc dram.Location) []int {
	trueCell := loc.Row%2 == 0
	var out []int
	for bit := 0; bit < lineBits; bit++ {
		set := uint64(line[bit/64])>>uint(bit%64)&1 == 1
		switch {
		case trueCell && set:
			if rng.Bernoulli(m.PTrue) {
				out = append(out, bit)
			}
		case !trueCell && !set:
			if rng.Bernoulli(m.PAnti) {
				out = append(out, bit)
			}
		}
	}
	return out
}

// RowSeverity varies flip strength across rows: every (bank, row) draws a
// fixed severity factor from Factors via a deterministic hash, modelling
// the orders-of-magnitude spread in per-row Rowhammer susceptibility
// (strong rows, weak rows, immune rows). Within a row the flips are
// uniform Bernoulli at Base×factor.
type RowSeverity struct {
	// Base is the per-bit flip probability of a factor-1.0 row.
	Base float64
	// Factors is the severity palette rows draw from; empty selects
	// {0, 0.25, 1, 4} (immune, weak, nominal, strong).
	Factors []float64
}

// Name implements dram.FlipModel.
func (m RowSeverity) Name() string { return fmt.Sprintf("rowsev(base=%g)", m.Base) }

func (m RowSeverity) factors() []float64 {
	if len(m.Factors) == 0 {
		return []float64{0, 0.25, 1, 4}
	}
	return m.Factors
}

// rowFactor hashes (bank, row) into the severity palette with SplitMix64,
// so a row's severity is stable across the whole campaign.
func (m RowSeverity) rowFactor(loc dram.Location) float64 {
	f := m.factors()
	z := uint64(loc.Bank)<<32 | uint64(uint32(loc.Row))
	z += 0x9E3779B97F4A7C15
	z = (z ^ z>>30) * 0xBF58476D1CE4E5B9
	z = (z ^ z>>27) * 0x94D049BB133111EB
	z ^= z >> 31
	return f[z%uint64(len(f))]
}

// FlipBits implements dram.FlipModel.
func (m RowSeverity) FlipBits(rng *stats.RNG, _ pte.Line, loc dram.Location) []int {
	p := m.Base * m.rowFactor(loc)
	if p > 1 {
		p = 1
	}
	if p <= 0 {
		return nil
	}
	var out []int
	for bit := 0; bit < lineBits; bit++ {
		if rng.Bernoulli(p) {
			out = append(out, bit)
		}
	}
	return out
}

// Targeted aims flips at specific PTE bit positions the way PThammer and
// the §II-C exploits do: pick one PTE of the line and flip 1..MaxFlips
// distinct bits drawn from Mask (e.g. the PFN field to redirect a
// translation, or the U/S and NX flags to lift protections).
type Targeted struct {
	// Field names the targeted bit class for reports ("pfn", "flags").
	Field string
	// Mask selects the per-PTE candidate bits.
	Mask uint64
	// MaxFlips caps the flips per attacked PTE; 0 selects 2.
	MaxFlips int
}

// TargetedPFN aims at the usable PFN field (bits 39:12 for M=40), the
// translation-redirect attack of Fig. 1/PThammer.
func TargetedPFN(maxFlips int) Targeted {
	mask := (uint64(1)<<(40-pte.PageShift) - 1) << pte.PageShift
	return Targeted{Field: "pfn", Mask: mask, MaxFlips: maxFlips}
}

// TargetedFlags aims at the permission flags (P/W/US/NX), the §II-C
// metadata attacks.
func TargetedFlags(maxFlips int) Targeted {
	mask := uint64(1)<<pte.BitPresent | 1<<pte.BitWritable |
		1<<pte.BitUserAccessible | 1<<pte.BitNX
	return Targeted{Field: "flags", Mask: mask, MaxFlips: maxFlips}
}

// Name implements dram.FlipModel.
func (m Targeted) Name() string {
	return fmt.Sprintf("targeted(%s,flips=%d)", m.Field, m.maxFlips())
}

func (m Targeted) maxFlips() int {
	if m.MaxFlips <= 0 {
		return 2
	}
	return m.MaxFlips
}

// FlipBits implements dram.FlipModel.
func (m Targeted) FlipBits(rng *stats.RNG, _ pte.Line, _ dram.Location) []int {
	candidates := make([]int, 0, bits.OnesCount64(m.Mask))
	mask := m.Mask
	for mask != 0 {
		candidates = append(candidates, bits.TrailingZeros64(mask))
		mask &= mask - 1
	}
	if len(candidates) == 0 {
		return nil
	}
	n := 1 + rng.Intn(m.maxFlips())
	if n > len(candidates) {
		n = len(candidates)
	}
	entry := rng.Intn(pte.PTEsPerLine)
	perm := rng.Perm(len(candidates))
	out := make([]int, 0, n)
	for _, i := range perm[:n] {
		out = append(out, entry*64+candidates[i])
	}
	return out
}
