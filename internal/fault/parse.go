package fault

import (
	"fmt"
	"strconv"
	"strings"

	"ptguard/internal/dram"
)

// Parse builds a flip model from a spec string of the form
// "name" or "name:key=value,key=value". Probabilities accept fractions
// ("1/128") or decimals ("0.0078125").
//
// Supported specs:
//
//	uniform[:p=1/128]          per-bit Bernoulli (§VI-F default)
//	1bit | 2bit | 3bit         exactly N uniform flips (paper's N-bit models)
//	kbit:n=N                   exactly N uniform flips, any N
//	burst[:p=0.9,run=4]        word-aligned burst of adjacent bits
//	dqpin[:p=0.9,beats=3]      one DQ pin failing across transfer beats
//	polarity[:p1to0=1/128,p0to1=1/512]  true/anti-cell data-dependent flips
//	rowsev[:base=1/256]        per-row severity variation
//	targeted[:field=pfn,flips=2]        PThammer-style PFN/flag aiming
func Parse(spec string) (dram.FlipModel, error) {
	name, args, _ := strings.Cut(strings.TrimSpace(spec), ":")
	kv, err := parseArgs(args)
	if err != nil {
		return nil, fmt.Errorf("fault: spec %q: %w", spec, err)
	}
	m, err := build(strings.ToLower(name), kv)
	if err != nil {
		return nil, fmt.Errorf("fault: spec %q: %w", spec, err)
	}
	return m, nil
}

// MustParse is Parse for static specs; it panics on error.
func MustParse(spec string) dram.FlipModel {
	m, err := Parse(spec)
	if err != nil {
		panic(err)
	}
	return m
}

// Specs lists the supported model names for CLI help.
func Specs() []string {
	return []string{
		"uniform[:p=1/128]",
		"1bit | 2bit | 3bit | kbit:n=N",
		"burst[:p=0.9,run=4]",
		"dqpin[:p=0.9,beats=3]",
		"polarity[:p1to0=1/128,p0to1=1/512]",
		"rowsev[:base=1/256]",
		"targeted[:field=pfn|flags,flips=2]",
	}
}

// DefaultTaxonomy is the model sweep a fault campaign runs when none is
// requested: the paper's uniform and N-bit models plus every spatial and
// targeted shape in the taxonomy.
func DefaultTaxonomy() []dram.FlipModel {
	return []dram.FlipModel{
		ExactBits{N: 1},
		ExactBits{N: 2},
		ExactBits{N: 3},
		Uniform{P: 1.0 / 128},
		Burst{PLine: 0.9, MaxRun: 4},
		DQPin{PLine: 0.9, Beats: 3},
		Polarity{PTrue: 1.0 / 128, PAnti: 1.0 / 512},
		RowSeverity{Base: 1.0 / 256},
		TargetedPFN(2),
		TargetedFlags(2),
	}
}

func build(name string, kv map[string]string) (dram.FlipModel, error) {
	switch name {
	case "uniform":
		p, err := probArg(kv, "p", 1.0/128)
		if err != nil {
			return nil, err
		}
		return Uniform{P: p}, nil
	case "1bit", "2bit", "3bit":
		n := int(name[0] - '0')
		return ExactBits{N: n}, nil
	case "kbit":
		n, err := intArg(kv, "n", 0)
		if err != nil {
			return nil, err
		}
		if n <= 0 {
			return nil, fmt.Errorf("kbit needs n>=1, got %d", n)
		}
		return ExactBits{N: n}, nil
	case "burst":
		p, err := probArg(kv, "p", 0.9)
		if err != nil {
			return nil, err
		}
		run, err := intArg(kv, "run", 4)
		if err != nil {
			return nil, err
		}
		if run <= 0 || run > 64 {
			return nil, fmt.Errorf("burst run %d outside [1, 64]", run)
		}
		return Burst{PLine: p, MaxRun: run}, nil
	case "dqpin":
		p, err := probArg(kv, "p", 0.9)
		if err != nil {
			return nil, err
		}
		beats, err := intArg(kv, "beats", 3)
		if err != nil {
			return nil, err
		}
		if beats <= 0 || beats > 8 {
			return nil, fmt.Errorf("dqpin beats %d outside [1, 8]", beats)
		}
		return DQPin{PLine: p, Beats: beats}, nil
	case "polarity":
		pt, err := probArg(kv, "p1to0", 1.0/128)
		if err != nil {
			return nil, err
		}
		pa, err := probArg(kv, "p0to1", 1.0/512)
		if err != nil {
			return nil, err
		}
		return Polarity{PTrue: pt, PAnti: pa}, nil
	case "rowsev":
		base, err := probArg(kv, "base", 1.0/256)
		if err != nil {
			return nil, err
		}
		return RowSeverity{Base: base}, nil
	case "targeted":
		flips, err := intArg(kv, "flips", 2)
		if err != nil {
			return nil, err
		}
		if flips <= 0 {
			return nil, fmt.Errorf("targeted needs flips>=1, got %d", flips)
		}
		field := kv["field"]
		if field == "" {
			field = "pfn"
		}
		switch field {
		case "pfn":
			return TargetedPFN(flips), nil
		case "flags":
			return TargetedFlags(flips), nil
		default:
			return nil, fmt.Errorf("unknown targeted field %q (want pfn or flags)", field)
		}
	default:
		return nil, fmt.Errorf("unknown model %q", name)
	}
}

func parseArgs(args string) (map[string]string, error) {
	kv := make(map[string]string)
	for _, part := range strings.Split(args, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		k, v, ok := strings.Cut(part, "=")
		if !ok || k == "" || v == "" {
			return nil, fmt.Errorf("malformed argument %q (want key=value)", part)
		}
		kv[strings.ToLower(strings.TrimSpace(k))] = strings.TrimSpace(v)
	}
	return kv, nil
}

func probArg(kv map[string]string, key string, def float64) (float64, error) {
	raw, ok := kv[key]
	if !ok {
		return def, nil
	}
	v, err := parseProb(raw)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", key, err)
	}
	return v, nil
}

// parseProb parses "1/128" fractions or plain decimals into a probability.
func parseProb(raw string) (float64, error) {
	var v float64
	if num, den, ok := strings.Cut(raw, "/"); ok {
		n, err1 := strconv.ParseFloat(num, 64)
		d, err2 := strconv.ParseFloat(den, 64)
		if err1 != nil || err2 != nil || d == 0 {
			return 0, fmt.Errorf("invalid fraction %q", raw)
		}
		v = n / d
	} else {
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return 0, fmt.Errorf("invalid probability %q", raw)
		}
		v = f
	}
	if v < 0 || v > 1 {
		return 0, fmt.Errorf("probability %q outside [0, 1]", raw)
	}
	return v, nil
}

func intArg(kv map[string]string, key string, def int) (int, error) {
	raw, ok := kv[key]
	if !ok {
		return def, nil
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("%s: invalid integer %q", key, raw)
	}
	return v, nil
}
