package fault

import (
	"errors"
	"fmt"

	"ptguard/internal/core"
	"ptguard/internal/dram"
	"ptguard/internal/mac"
	"ptguard/internal/memctrl"
	"ptguard/internal/obs"
	"ptguard/internal/ostable"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

// CampaignConfig parameterises one fault-injection campaign: a single flip
// model exercised against a synthetic page-table population, with every
// Guard verdict cross-checked against the ground-truth oracle.
type CampaignConfig struct {
	// Model is the flip model under test; nil selects the paper's uniform
	// Bernoulli at the LPDDR4 worst case (1/128).
	Model dram.FlipModel
	// Lines is the number of faulty PTE cachelines to evaluate (trials
	// whose injection produced no net flip still feed the clean-pass /
	// false-alarm cells but do not count toward Lines).
	Lines int
	// Seed drives the population synthesiser and the fault RNG.
	Seed uint64
	// EnableCorrection turns on the §VI best-effort correction engine;
	// off, the campaign measures pure detection.
	EnableCorrection bool
	// SoftMatchK overrides the MAC fault budget; 0 selects the paper's 4.
	SoftMatchK int
	// TagBits overrides the MAC width; 0 selects 96. Small values make
	// miscorrections observable (§VI-D soft-match collisions).
	TagBits int
	// MaxTrials bounds the injection loop for models that rarely flip;
	// 0 selects 1000 x Lines.
	MaxTrials int
	// Obs, when set, builds an Observer over these options for the
	// campaign: Guard/DRAM events are traced (stamped with a per-trial
	// tick), metrics feed the registry, and the snapshot cadence counts
	// trials. The collected RunMetrics land in CampaignResult.Obs.
	Obs *obs.Options
}

func (c CampaignConfig) withDefaults() CampaignConfig {
	if c.Model == nil {
		c.Model = Uniform{P: dram.FlipProbLPDDR4}
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 1000 * c.Lines
	}
	return c
}

// CampaignResult is one campaign's confusion matrix plus the device-side
// flip attribution that satellite telemetry exposes.
type CampaignResult struct {
	// Model is the flip model's display name.
	Model string `json:"model"`
	// Mode is "correct" or "detect".
	Mode string `json:"mode"`
	// Matrix is the oracle's confusion matrix.
	Matrix Matrix `json:"matrix"`
	// Trials is the number of inject+read rounds performed (>= faulty
	// lines for models that do not always flip).
	Trials int `json:"trials"`
	// Guesses is the total correction guesses the Guard spent.
	Guesses uint64 `json:"guesses"`
	// Device snapshots the DRAM counters, including FlipsInjected.
	Device dram.Stats `json:"device"`
	// HotRows lists the (bank, row) pairs that absorbed the most flips,
	// most-hit first, capped at eight entries.
	HotRows []dram.FlipCount `json:"hot_rows,omitempty"`
	// Obs carries the campaign's observability data when CampaignConfig.Obs
	// was set.
	Obs *obs.RunMetrics `json:"obs,omitempty"`
}

// RunCampaign executes one fault-injection campaign end to end: synthesise
// page tables (§VI-B value locality), protect them through the memory
// controller, inject faults with the configured model, replay page-table
// walks through the Guard, and let the oracle classify every verdict.
func RunCampaign(cfg CampaignConfig) (CampaignResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Lines <= 0 {
		return CampaignResult{}, errors.New("fault: Lines must be positive")
	}
	k := cfg.SoftMatchK
	if k == 0 {
		k = 4
	}
	dev, err := dram.NewDevice(dram.Geometry{}, dram.Timing{})
	if err != nil {
		return CampaignResult{}, err
	}
	format, err := pte.FormatX86(40)
	if err != nil {
		return CampaignResult{}, err
	}
	key := make([]byte, mac.KeySize)
	kr := stats.NewRNG(cfg.Seed ^ 0xF19)
	for i := range key {
		key[i] = byte(kr.Uint64())
	}
	guard, err := core.NewGuard(core.Config{
		Format:           format,
		Key:              key,
		TagBits:          cfg.TagBits,
		EnableCorrection: cfg.EnableCorrection,
		SoftMatchK:       k,
	})
	if err != nil {
		return CampaignResult{}, err
	}
	ctrl, err := memctrl.New(dev, guard, 0)
	if err != nil {
		return CampaignResult{}, err
	}
	var observer *obs.Observer
	if cfg.Obs != nil {
		observer = obs.New(*cfg.Obs)
		// No core clock here: the internal monotonic tick orders events.
		ctrl.SetObserver(observer)
	}
	alloc, err := ostable.NewFrameAllocator(4096, dev.Geometry().Capacity()/pte.PageSize-4096)
	if err != nil {
		return CampaignResult{}, err
	}
	synth := ostable.DefaultSynthConfig()
	synth.Seed = cfg.Seed
	pop, err := ostable.NewPopulation(synth, alloc)
	if err != nil {
		return CampaignResult{}, err
	}
	hmr, err := dram.NewHammerer(dev, dram.HammerConfig{
		Model: cfg.Model,
		Seed:  cfg.Seed ^ 0xFA17,
	})
	if err != nil {
		return CampaignResult{}, err
	}

	oracle := NewOracle(format)
	hmr.SetObserver(oracle.RecordFlip)

	// Fixed pool of protected PTE lines from several synthetic processes,
	// as in attack.RunCorrection: every model sees the same population.
	type pooled struct {
		addr      uint64
		protected pte.Line
	}
	const poolProcesses = 6
	var pool []pooled
	for p := 0; p < poolProcesses; p++ {
		tables, serr := pop.SynthesizeProcess()
		if serr != nil {
			return CampaignResult{}, serr
		}
		var flushAddrs []uint64
		var flushLines []pte.Line
		tables.Lines(func(addr uint64, line pte.Line) {
			flushAddrs = append(flushAddrs, addr)
			flushLines = append(flushLines, line)
		})
		if _, werr := ctrl.WriteLinesBatch(flushAddrs, flushLines); werr != nil {
			return CampaignResult{}, werr
		}
		tables.LeafLines(func(addr uint64, archLine pte.Line) {
			oracle.Expect(addr, archLine)
			pool = append(pool, pooled{addr: addr, protected: dev.ReadLine(addr)})
		})
		// Keep tables alive: freeing would recycle frames and alias pool
		// addresses across processes.
	}
	if len(pool) == 0 {
		return CampaignResult{}, errors.New("fault: empty line pool")
	}
	// Ground-truth sanity: before any fault is injected, every pooled line
	// must batch-audit clean — a dirty line here means the pool snapshot and
	// the stored state already disagree, which would corrupt every verdict
	// the oracle hands out below.
	auditAddrs := make([]uint64, len(pool))
	auditLines := make([]pte.Line, len(pool))
	for i, entry := range pool {
		auditAddrs[i] = entry.addr
		auditLines[i] = entry.protected
	}
	auditOK := make([]bool, len(pool))
	guard.AuditBatch(auditOK, auditLines, auditAddrs)
	for i, clean := range auditOK {
		if !clean {
			return CampaignResult{}, fmt.Errorf("fault: pooled line %#x audits dirty before fault injection", auditAddrs[i])
		}
	}
	shuf := stats.NewRNG(cfg.Seed ^ 0x5F0F)
	for i := len(pool) - 1; i > 0; i-- {
		j := shuf.Intn(i + 1)
		pool[i], pool[j] = pool[j], pool[i]
	}

	res := CampaignResult{Model: cfg.Model.Name(), Mode: modeName(cfg.EnableCorrection)}
	for trial := 0; int(oracle.Matrix().Faulty()) < cfg.Lines; trial++ {
		if trial >= cfg.MaxTrials {
			break // model too weak to reach Lines faulty trials; report what we have
		}
		entry := pool[trial%len(pool)]
		dev.WriteLine(entry.addr, entry.protected)
		hmr.InjectFaults(entry.addr)

		before := guard.Counters()
		got, _, ok := ctrl.ReadLine(entry.addr, true)
		after := guard.Counters()
		res.Guesses += after.CorrectionGuesses - before.CorrectionGuesses
		claimed := after.Corrections > before.Corrections

		if _, jerr := oracle.Judge(entry.addr, got, !ok, claimed); jerr != nil {
			return CampaignResult{}, jerr
		}
		res.Trials++
		if observer.ShouldSnapshot(uint64(res.Trials)) {
			ctrl.PublishObs(observer.Registry())
			observer.Snapshot(observer.Now(), uint64(res.Trials))
		}
		// Restore the pristine protected image for the next pass.
		dev.WriteLine(entry.addr, entry.protected)
	}

	res.Matrix = oracle.Matrix()
	res.Device = dev.Stats()
	counts := dev.FlipCounts()
	for i := 0; i < len(counts); i++ { // selection by flips, stable (bank,row) order
		max := i
		for j := i + 1; j < len(counts); j++ {
			if counts[j].Flips > counts[max].Flips {
				max = j
			}
		}
		counts[i], counts[max] = counts[max], counts[i]
		if i == 7 {
			break
		}
	}
	if len(counts) > 8 {
		counts = counts[:8]
	}
	res.HotRows = counts
	if res.Matrix.FlipsInjected != res.Device.FlipsInjected {
		return CampaignResult{}, fmt.Errorf("fault: oracle saw %d flips but device recorded %d",
			res.Matrix.FlipsInjected, res.Device.FlipsInjected)
	}
	if observer != nil {
		ctrl.PublishObs(observer.Registry())
		observer.Registry().SetCounter("fault.trials", uint64(res.Trials))
		observer.Snapshot(observer.Now(), uint64(res.Trials))
		res.Obs = observer.RunMetrics(true)
	}
	return res, nil
}

func modeName(correction bool) string {
	if correction {
		return "correct"
	}
	return "detect"
}
