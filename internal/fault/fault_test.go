package fault

import (
	"testing"

	"ptguard/internal/dram"
	"ptguard/internal/pte"
	"ptguard/internal/stats"
)

func TestParseSpecs(t *testing.T) {
	cases := []struct {
		spec string
		name string
	}{
		{"uniform", "uniform(p=0.0078125)"},
		{"uniform:p=1/512", "uniform(p=0.001953125)"},
		{"1bit", "1bit"},
		{"2bit", "2bit"},
		{"3bit", "3bit"},
		{"kbit:n=5", "5bit"},
		{"burst", "burst(p=0.9,run=4)"},
		{"burst:p=0.5,run=2", "burst(p=0.5,run=2)"},
		{"dqpin:beats=5", "dqpin(p=0.9,beats=5)"},
		{"polarity", "polarity(p1to0=0.0078125,p0to1=0.001953125)"},
		{"rowsev:base=1/64", "rowsev(base=0.015625)"},
		{"targeted", "targeted(pfn,flips=2)"},
		{"targeted:field=flags,flips=1", "targeted(flags,flips=1)"},
	}
	for _, tc := range cases {
		m, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if m.Name() != tc.name {
			t.Errorf("Parse(%q).Name() = %q, want %q", tc.spec, m.Name(), tc.name)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "uniform:p=2", "uniform:p=x", "kbit", "kbit:n=0",
		"burst:run=65", "dqpin:beats=0", "targeted:field=mac", "uniform:p",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestModelsDeterministic(t *testing.T) {
	line := pte.Line{0x8000000000025, 0, 0x12345063, 0, 0, 0xFFFF0000067, 0, 0x1}
	loc := dram.Location{Bank: 3, Row: 101, Column: 7}
	for _, m := range DefaultTaxonomy() {
		a := m.FlipBits(stats.NewRNG(42), line, loc)
		b := m.FlipBits(stats.NewRNG(42), line, loc)
		if len(a) != len(b) {
			t.Fatalf("%s: nondeterministic flip count %d vs %d", m.Name(), len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: nondeterministic flips %v vs %v", m.Name(), a, b)
			}
		}
		for _, bit := range a {
			if bit < 0 || bit >= lineBits {
				t.Fatalf("%s: flip position %d outside [0, %d)", m.Name(), bit, lineBits)
			}
		}
	}
}

func TestExactBitsCount(t *testing.T) {
	rng := stats.NewRNG(7)
	for n := 1; n <= 4; n++ {
		m := ExactBits{N: n}
		for trial := 0; trial < 50; trial++ {
			flips := m.FlipBits(rng, pte.Line{}, dram.Location{})
			if len(flips) != n {
				t.Fatalf("ExactBits{%d} returned %d flips", n, len(flips))
			}
			seen := map[int]bool{}
			for _, b := range flips {
				if seen[b] {
					t.Fatalf("ExactBits{%d} returned duplicate bit %d", n, b)
				}
				seen[b] = true
			}
		}
	}
}

func TestBurstStaysInsideWord(t *testing.T) {
	rng := stats.NewRNG(9)
	m := Burst{PLine: 1, MaxRun: 8}
	for trial := 0; trial < 200; trial++ {
		flips := m.FlipBits(rng, pte.Line{}, dram.Location{})
		if len(flips) == 0 {
			t.Fatal("Burst with PLine=1 returned no flips")
		}
		word := flips[0] / 64
		for i, b := range flips {
			if b/64 != word {
				t.Fatalf("burst crosses word boundary: %v", flips)
			}
			if i > 0 && b != flips[i-1]+1 {
				t.Fatalf("burst not contiguous: %v", flips)
			}
		}
	}
}

func TestDQPinSamePinAcrossBeats(t *testing.T) {
	rng := stats.NewRNG(11)
	m := DQPin{PLine: 1, Beats: 4}
	for trial := 0; trial < 200; trial++ {
		flips := m.FlipBits(rng, pte.Line{}, dram.Location{})
		if len(flips) != 4 {
			t.Fatalf("DQPin beats=4 returned %d flips", len(flips))
		}
		pin := flips[0] % 64
		words := map[int]bool{}
		for _, b := range flips {
			if b%64 != pin {
				t.Fatalf("DQPin flips differ in pin position: %v", flips)
			}
			if words[b/64] {
				t.Fatalf("DQPin hit the same beat twice: %v", flips)
			}
			words[b/64] = true
		}
	}
}

func TestPolarityRespectsCellType(t *testing.T) {
	rng := stats.NewRNG(13)
	line := pte.Line{0xFFFFFFFFFFFFFFFF, 0, 0xF0F0F0F0F0F0F0F0, 0x0F0F0F0F0F0F0F0F, 0, 0xFFFFFFFFFFFFFFFF, 0, 0}
	m := Polarity{PTrue: 0.5, PAnti: 0.5}
	for row := 0; row < 2; row++ {
		loc := dram.Location{Row: row}
		for trial := 0; trial < 50; trial++ {
			for _, b := range m.FlipBits(rng, line, loc) {
				set := uint64(line[b/64])>>uint(b%64)&1 == 1
				if row%2 == 0 && !set {
					t.Fatalf("true-cell row flipped a stored 0 at bit %d", b)
				}
				if row%2 == 1 && set {
					t.Fatalf("anti-cell row flipped a stored 1 at bit %d", b)
				}
			}
		}
	}
}

func TestRowSeverityImmuneRows(t *testing.T) {
	m := RowSeverity{Base: 1, Factors: []float64{0}}
	rng := stats.NewRNG(17)
	for row := 0; row < 32; row++ {
		if flips := m.FlipBits(rng, pte.Line{}, dram.Location{Row: row}); len(flips) != 0 {
			t.Fatalf("immune row %d flipped %v", row, flips)
		}
	}
	// And with a single non-zero factor every row flips at Base.
	hot := RowSeverity{Base: 1, Factors: []float64{1}}
	if flips := hot.FlipBits(stats.NewRNG(17), pte.Line{}, dram.Location{}); len(flips) != lineBits {
		t.Fatalf("p=1 row flipped %d bits, want %d", len(flips), lineBits)
	}
}

func TestTargetedStaysInMask(t *testing.T) {
	rng := stats.NewRNG(19)
	pfn := TargetedPFN(3)
	flags := TargetedFlags(2)
	for trial := 0; trial < 200; trial++ {
		for _, tc := range []struct {
			m    Targeted
			mask uint64
		}{{pfn, pfn.Mask}, {flags, flags.Mask}} {
			flips := tc.m.FlipBits(rng, pte.Line{}, dram.Location{})
			if len(flips) == 0 {
				t.Fatalf("%s returned no flips", tc.m.Name())
			}
			entry := flips[0] / 64
			for _, b := range flips {
				if b/64 != entry {
					t.Fatalf("%s hit multiple PTEs: %v", tc.m.Name(), flips)
				}
				if tc.mask>>uint(b%64)&1 == 0 {
					t.Fatalf("%s flipped bit %d outside its mask", tc.m.Name(), b)
				}
			}
		}
	}
}

func TestOracleFlipParity(t *testing.T) {
	format, err := pte.FormatX86(40)
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(format)
	arch := pte.Line{0x25, 0x1067}
	o.Expect(0x1000, arch)

	// A bit flipped twice is clean: the judgement must be CleanPass.
	o.RecordFlip(0x1000, 7)
	o.RecordFlip(0x1000, 7)
	if n := o.PendingFlips(0x1000); n != 0 {
		t.Fatalf("PendingFlips after even parity = %d, want 0", n)
	}
	out, err := o.Judge(0x1000, arch, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if out != CleanPass {
		t.Fatalf("even-parity judgement = %v, want clean-pass", out)
	}
	if m := o.Matrix(); m.FlipsInjected != 2 || m.CleanPasses != 1 {
		t.Fatalf("matrix = %+v", m)
	}
}

func TestOracleOutcomes(t *testing.T) {
	format, err := pte.FormatX86(40)
	if err != nil {
		t.Fatal(err)
	}
	arch := pte.Line{0x8000000000025063}
	wrong := arch
	wrong[0] ^= 1 << pte.BitWritable // a protected payload bit

	cases := []struct {
		name        string
		flip        bool
		served      pte.Line
		checkFailed bool
		claimed     bool
		want        Outcome
	}{
		{"clean pass", false, arch, false, false, CleanPass},
		{"false alarm", false, arch, true, false, FalseAlarm},
		{"detected", true, pte.Line{}, true, false, Detected},
		{"corrected", true, arch, false, true, Corrected},
		{"benign uncovered flip", true, arch, false, false, Corrected},
		{"miscorrected", true, wrong, false, true, Miscorrected},
		{"silent corruption", true, wrong, false, false, SilentCorruption},
	}
	for _, tc := range cases {
		o := NewOracle(format)
		o.Expect(0, arch)
		if tc.flip {
			o.RecordFlip(0, 5)
		}
		out, jerr := o.Judge(0, tc.served, tc.checkFailed, tc.claimed)
		if jerr != nil {
			t.Fatalf("%s: %v", tc.name, jerr)
		}
		if out != tc.want {
			t.Errorf("%s: outcome = %v, want %v", tc.name, out, tc.want)
		}
	}

	o := NewOracle(format)
	if _, err := o.Judge(0x40, arch, false, false); err == nil {
		t.Error("Judge without ground truth succeeded, want error")
	}
}

// TestCampaignDetectionNoSilent is the acceptance check: under the uniform
// 1-, 2- and 3-bit models the detection-only Guard lets zero corrupted
// payloads through and raises zero false alarms.
func TestCampaignDetectionNoSilent(t *testing.T) {
	for _, n := range []int{1, 2, 3} {
		res, err := RunCampaign(CampaignConfig{
			Model: ExactBits{N: n},
			Lines: 300,
			Seed:  0xD5 + uint64(n),
		})
		if err != nil {
			t.Fatalf("%dbit: %v", n, err)
		}
		m := res.Matrix
		if m.Silent != 0 {
			t.Errorf("%dbit: %d silent corruptions, want 0", n, m.Silent)
		}
		if m.FalseAlarms != 0 {
			t.Errorf("%dbit: %d false alarms, want 0", n, m.FalseAlarms)
		}
		if m.Miscorrected != 0 {
			t.Errorf("%dbit: %d miscorrections in detection mode, want 0", n, m.Miscorrected)
		}
		if m.Faulty() != 300 {
			t.Errorf("%dbit: judged %d faulty lines, want 300", n, m.Faulty())
		}
		if m.FlipsInjected != uint64(n*res.Trials) {
			t.Errorf("%dbit: %d flips over %d trials", n, m.FlipsInjected, res.Trials)
		}
	}
}

// TestCampaignOneBitCorrection checks the §VI-F headline: with correction
// enabled, ~98-99%% of single-bit faults are corrected and none escape.
func TestCampaignOneBitCorrection(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Model:            ExactBits{N: 1},
		Lines:            400,
		Seed:             0xC0FFEE,
		EnableCorrection: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Matrix
	if m.Silent != 0 || m.Miscorrected != 0 || m.FalseAlarms != 0 {
		t.Fatalf("unsafe outcomes: %+v", m)
	}
	if pct := m.CorrectedPct(); pct < 95 {
		t.Errorf("1-bit correction rate %.1f%%, want >= 95%%", pct)
	}
	if m.CoveragePct() != 100 {
		t.Errorf("coverage %.1f%%, want 100%%", m.CoveragePct())
	}
	if res.Guesses == 0 {
		t.Error("correction campaign spent no guesses")
	}
}

// TestCampaignTinyTagMiscorrects shows the oracle catching miscorrections:
// with an 8-bit MAC, soft-match collisions let wrong payloads through, and
// only ground truth can tell them from real corrections.
func TestCampaignTinyTagMiscorrects(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Model:            ExactBits{N: 3},
		Lines:            200,
		Seed:             0xBAD,
		EnableCorrection: true,
		TagBits:          8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.Miscorrected+res.Matrix.Silent == 0 {
		t.Errorf("8-bit MAC produced no unsafe outcomes over %d faulty lines: %+v",
			res.Matrix.Faulty(), res.Matrix)
	}
}

// TestCampaignFlipAccounting cross-checks the satellite telemetry: the
// oracle, the hammerer and the device must agree on the flip count, and the
// per-row attribution must sum to the total.
func TestCampaignFlipAccounting(t *testing.T) {
	res, err := RunCampaign(CampaignConfig{
		Model: Burst{PLine: 0.8, MaxRun: 4},
		Lines: 200,
		Seed:  0x7EA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Matrix.FlipsInjected != res.Device.FlipsInjected {
		t.Fatalf("oracle counted %d flips, device %d",
			res.Matrix.FlipsInjected, res.Device.FlipsInjected)
	}
	if len(res.HotRows) == 0 {
		t.Fatal("no hot rows attributed")
	}
	var hot uint64
	for _, r := range res.HotRows {
		hot += r.Flips
	}
	if hot == 0 || hot > res.Device.FlipsInjected {
		t.Fatalf("hot-row sum %d inconsistent with total %d", hot, res.Device.FlipsInjected)
	}
}

// TestCampaignTargetedDetected: PThammer-style PFN/flag aiming never yields
// a usable corrupted translation.
func TestCampaignTargetedDetected(t *testing.T) {
	for _, m := range []dram.FlipModel{TargetedPFN(2), TargetedFlags(2)} {
		res, err := RunCampaign(CampaignConfig{
			Model:            m,
			Lines:            200,
			Seed:             0x717,
			EnableCorrection: true,
		})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if res.Matrix.Silent != 0 || res.Matrix.Miscorrected != 0 {
			t.Errorf("%s: unsafe outcomes %+v", m.Name(), res.Matrix)
		}
	}
}
