// Package report renders experiment results as aligned ASCII tables, CSV,
// and JSON, the output formats of every cmd/ binary and bench harness.
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// Table is a simple titled table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// New builds a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errors.New("report: table has no columns")
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	b.WriteString(line(t.Headers) + "\n")
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	b.WriteString(line(sep) + "\n")
	for _, row := range t.Rows {
		b.WriteString(line(row) + "\n")
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (headers first, no title).
func (t *Table) RenderCSV(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errors.New("report: table has no columns")
	}
	var b strings.Builder
	b.WriteString(csvLine(t.Headers))
	for _, row := range t.Rows {
		b.WriteString(csvLine(row))
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Results is the machine-readable form of a Table: the same title,
// headers and row cells, marshallable to/from JSON so campaign runners can
// persist and post-process reports programmatically.
type Results struct {
	Title   string     `json:"title,omitempty"`
	Headers []string   `json:"headers"`
	Rows    [][]string `json:"rows"`
}

// Results copies the table into its machine-readable form. Short rows are
// padded to the header width, mirroring AddRow; Rows is always non-nil so
// the JSON field encodes as [] rather than null.
func (t *Table) Results() Results {
	r := Results{
		Title:   t.Title,
		Headers: append([]string(nil), t.Headers...),
		Rows:    make([][]string, len(t.Rows)),
	}
	for i, row := range t.Rows {
		padded := make([]string, len(t.Headers))
		copy(padded, row)
		r.Rows[i] = padded
	}
	return r
}

// Table converts machine-readable results back into a renderable table.
func (r Results) Table() *Table {
	t := New(r.Title, r.Headers...)
	for _, row := range r.Rows {
		t.AddRow(row...)
	}
	return t
}

// RenderJSON writes the table as an indented JSON document (its Results
// form) followed by a newline.
func (t *Table) RenderJSON(w io.Writer) error {
	if len(t.Headers) == 0 {
		return errors.New("report: table has no columns")
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t.Results())
}

// Output formats accepted by Emit and EmitAll.
const (
	FormatTable = "table"
	FormatCSV   = "csv"
	FormatJSON  = "json"
)

// Format maps the conventional -csv/-json CLI flag pair onto a format name
// (the flags are mutually exclusive by construction: -json wins).
func Format(csv, json bool) string {
	switch {
	case json:
		return FormatJSON
	case csv:
		return FormatCSV
	default:
		return FormatTable
	}
}

// Emit writes the table in the named format: "table" (aligned ASCII),
// "csv", or "json". An empty format selects "table"; anything else is an
// error.
func Emit(w io.Writer, t *Table, format string) error {
	if t == nil {
		return errors.New("report: nil table")
	}
	switch format {
	case FormatTable, "":
		return t.Render(w)
	case FormatCSV:
		return t.RenderCSV(w)
	case FormatJSON:
		return t.RenderJSON(w)
	default:
		return fmt.Errorf("report: unknown output format %q (want table, csv, or json)", format)
	}
}

// EmitAll writes several tables in the named format. Table output separates
// tables with a blank line and CSV with a blank line between blocks; JSON
// emits a single indented array of each table's Results, so multi-table
// output stays one parseable document.
func EmitAll(w io.Writer, tables []*Table, format string) error {
	if format == FormatJSON {
		all := make([]Results, len(tables))
		for i, t := range tables {
			if t == nil {
				return errors.New("report: nil table")
			}
			all[i] = t.Results()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(all)
	}
	for i, t := range tables {
		if i > 0 {
			if _, err := io.WriteString(w, "\n"); err != nil {
				return err
			}
		}
		if err := Emit(w, t, format); err != nil {
			return err
		}
	}
	return nil
}

func csvLine(cells []string) string {
	parts := make([]string, len(cells))
	for i, c := range cells {
		if strings.ContainsAny(c, ",\"\n") {
			c = `"` + strings.ReplaceAll(c, `"`, `""`) + `"`
		}
		parts[i] = c
	}
	return strings.Join(parts, ",") + "\n"
}

func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Pct formats a percentage with two decimals.
func Pct(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) + "%" }

// F formats a float with the given precision.
func F(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }

// I formats an integer.
func I(v int) string { return strconv.Itoa(v) }

// U formats an unsigned counter.
func U(v uint64) string { return strconv.FormatUint(v, 10) }
