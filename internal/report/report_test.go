package report

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestRenderAligned(t *testing.T) {
	tbl := New("Demo", "name", "value")
	tbl.AddRow("alpha", "1")
	tbl.AddRow("b", "22222")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d, want 5:\n%s", len(lines), out)
	}
	if lines[0] != "Demo" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name ") || !strings.Contains(lines[1], "value") {
		t.Errorf("header line = %q", lines[1])
	}
	if !strings.HasPrefix(lines[3], "alpha") {
		t.Errorf("row line = %q", lines[3])
	}
}

func TestRenderShortRowPadded(t *testing.T) {
	tbl := New("", "a", "b", "c")
	tbl.AddRow("x")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "<nil>") {
		t.Error("padding failed")
	}
}

func TestRenderCSVEscapes(t *testing.T) {
	tbl := New("t", "name", "note")
	tbl.AddRow(`x,y`, `he said "hi"`)
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,note\n\"x,y\",\"he said \"\"hi\"\"\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestEmptyTableErrors(t *testing.T) {
	var tbl Table
	var sb strings.Builder
	if err := tbl.Render(&sb); err == nil {
		t.Error("render of column-less table accepted")
	}
	if err := tbl.RenderCSV(&sb); err == nil {
		t.Error("csv of column-less table accepted")
	}
	if err := tbl.RenderJSON(&sb); err == nil {
		t.Error("json of column-less table accepted")
	}
}

func TestRenderJSONRoundTrip(t *testing.T) {
	tbl := New("Fig. X", "name", "value", "note")
	tbl.AddRow("alpha", "1", `quote " and comma ,`)
	tbl.AddRow("short") // padded to header width
	var sb strings.Builder
	if err := tbl.RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("JSON output not newline-terminated")
	}
	var got Results
	if err := json.Unmarshal([]byte(out), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out)
	}
	want := Results{
		Title:   "Fig. X",
		Headers: []string{"name", "value", "note"},
		Rows: [][]string{
			{"alpha", "1", `quote " and comma ,`},
			{"short", "", ""},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip = %+v, want %+v", got, want)
	}
}

func TestResultsTableRoundTrip(t *testing.T) {
	tbl := New("T", "a", "b")
	tbl.AddRow("1", "2")
	back := tbl.Results().Table()
	if !reflect.DeepEqual(back, tbl) {
		t.Errorf("Results().Table() = %+v, want %+v", back, tbl)
	}
}

func TestResultsEmptyRowsEncodeAsArray(t *testing.T) {
	tbl := New("T", "a")
	raw, err := json.Marshal(tbl.Results())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(raw), `"rows":null`) {
		t.Errorf("rows encoded as null: %s", raw)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(12.345); got != "12.35%" {
		t.Errorf("Pct = %q", got)
	}
	if got := F(1.5, 1); got != "1.5" {
		t.Errorf("F = %q", got)
	}
	if got := I(-3); got != "-3" {
		t.Errorf("I = %q", got)
	}
	if got := U(7); got != "7" {
		t.Errorf("U = %q", got)
	}
}

func TestRenderAlignsUTF8(t *testing.T) {
	// Section signs and dashes are multi-byte; columns must align by rune
	// count, not byte count.
	tbl := New("", "name", "v")
	tbl.AddRow("§VI-D", "1")
	tbl.AddRow("plain", "2")
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	col := strings.Index(lines[2], "1")
	col2 := strings.Index(lines[3], "2")
	// Compare rune positions of the value column.
	r1 := len([]rune(lines[2][:col]))
	r2 := len([]rune(lines[3][:col2]))
	if r1 != r2 {
		t.Errorf("value column misaligned: %d vs %d runes\n%s", r1, r2, sb.String())
	}
}

func TestRenderCSVEscapesNewlines(t *testing.T) {
	tbl := New("t", "name", "note")
	tbl.AddRow("multi", "line one\nline two")
	var sb strings.Builder
	if err := tbl.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	want := "name,note\nmulti,\"line one\nline two\"\n"
	if sb.String() != want {
		t.Errorf("csv = %q, want %q", sb.String(), want)
	}
}

func TestFormatFlagMapping(t *testing.T) {
	if got := Format(false, false); got != FormatTable {
		t.Errorf("Format(false,false) = %q", got)
	}
	if got := Format(true, false); got != FormatCSV {
		t.Errorf("Format(true,false) = %q", got)
	}
	// -json wins over -csv.
	if got := Format(true, true); got != FormatJSON {
		t.Errorf("Format(true,true) = %q", got)
	}
}

func TestEmitFormats(t *testing.T) {
	tbl := New("T", "a", "b")
	tbl.AddRow("1", "2")

	var table, csv, jsonOut, dflt strings.Builder
	for _, c := range []struct {
		w      *strings.Builder
		format string
	}{
		{&table, FormatTable}, {&csv, FormatCSV}, {&jsonOut, FormatJSON}, {&dflt, ""},
	} {
		if err := Emit(c.w, tbl, c.format); err != nil {
			t.Fatalf("Emit(%q): %v", c.format, err)
		}
	}
	if table.String() != dflt.String() {
		t.Error("empty format did not default to table")
	}
	if !strings.HasPrefix(csv.String(), "a,b\n") {
		t.Errorf("csv = %q", csv.String())
	}
	var res Results
	if err := json.Unmarshal([]byte(jsonOut.String()), &res); err != nil {
		t.Fatalf("json output invalid: %v", err)
	}
}

func TestEmitUnknownFormat(t *testing.T) {
	tbl := New("T", "a")
	var sb strings.Builder
	err := Emit(&sb, tbl, "yaml")
	if err == nil {
		t.Fatal("unknown format accepted")
	}
	if !strings.Contains(err.Error(), `"yaml"`) {
		t.Errorf("error does not name the format: %v", err)
	}
	if err := Emit(&sb, nil, FormatTable); err == nil {
		t.Error("nil table accepted")
	}
}

func TestEmitAllJSONSingleDocument(t *testing.T) {
	t1 := New("one", "a")
	t1.AddRow("1")
	t2 := New("two", "b")
	t2.AddRow("2")

	var sb strings.Builder
	if err := EmitAll(&sb, []*Table{t1, t2}, FormatJSON); err != nil {
		t.Fatal(err)
	}
	var all []Results
	if err := json.Unmarshal([]byte(sb.String()), &all); err != nil {
		t.Fatalf("multi-table JSON is not one document: %v\n%s", err, sb.String())
	}
	if len(all) != 2 || all[0].Title != "one" || all[1].Title != "two" {
		t.Errorf("decoded = %+v", all)
	}

	// Table output separates tables with exactly one blank line.
	var tb strings.Builder
	if err := EmitAll(&tb, []*Table{t1, t2}, FormatTable); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tb.String(), "\n\ntwo\n") {
		t.Errorf("tables not blank-line separated:\n%s", tb.String())
	}
	if strings.HasSuffix(tb.String(), "\n\n") {
		t.Error("trailing blank line after last table")
	}
}
