package chaos

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	for _, p := range Points() {
		if in.Fire(p) {
			t.Errorf("nil injector fired %s", p)
		}
		if err := in.Err(p, "op"); err != nil {
			t.Errorf("nil injector returned error for %s: %v", p, err)
		}
	}
	in.Kill(ProcKill) // must not exit or panic
	if n := in.InjectedTotal(); n != 0 {
		t.Errorf("nil injector counted %d injections", n)
	}
}

func TestParseEmptySpecIsNil(t *testing.T) {
	in, err := Parse("  ", 1)
	if err != nil || in != nil {
		t.Fatalf("Parse(empty) = %v, %v; want nil, nil", in, err)
	}
}

func TestParseRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"no.such.point:after=1",
		"journal.write:after=0",
		"journal.write:after=x",
		"journal.write:times=0",
		"journal.write:p=2",
		"journal.write:wat=1",
		"journal.write:after",
		"journal.write:after=1;journal.write:after=2",
	} {
		if _, err := Parse(spec, 1); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
	}
}

func TestAfterTimesSchedule(t *testing.T) {
	in, err := Parse("worker.panic:after=3,times=2", 7)
	if err != nil {
		t.Fatal(err)
	}
	var fires []bool
	for i := 0; i < 6; i++ {
		fires = append(fires, in.Fire(WorkerPanic))
	}
	want := []bool{false, false, true, true, false, false}
	for i := range want {
		if fires[i] != want[i] {
			t.Fatalf("fires = %v, want %v", fires, want)
		}
	}
	if got := in.Injected()[WorkerPanic]; got != 2 {
		t.Errorf("injected count = %d, want 2", got)
	}
	// An unscheduled point never fires.
	if in.Fire(DiskFull) {
		t.Error("unscheduled point fired")
	}
}

func TestProbScheduleIsDeterministic(t *testing.T) {
	run := func(seed uint64) []bool {
		in, err := Parse("disk.full:p=0.5", seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, in.Fire(DiskFull))
		}
		return out
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different schedules")
		}
	}
	c := run(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical 64-hit schedules")
	}
	n := 0
	for _, f := range a {
		if f {
			n++
		}
	}
	if n == 0 || n == len(a) {
		t.Errorf("p=0.5 fired %d/%d hits", n, len(a))
	}
}

func TestErrIsTypedAndMatchable(t *testing.T) {
	in, err := Parse("journal.fsync:after=1", 1)
	if err != nil {
		t.Fatal(err)
	}
	ierr := in.Err(JournalFsync, "sync")
	if ierr == nil {
		t.Fatal("scheduled fault did not fire")
	}
	if !IsInjected(ierr) {
		t.Error("IsInjected = false for injected error")
	}
	if !errors.Is(ierr, &Error{Point: JournalFsync}) {
		t.Error("errors.Is by point failed")
	}
	if errors.Is(ierr, &Error{Point: DiskFull}) {
		t.Error("errors.Is matched the wrong point")
	}
	if !strings.Contains(ierr.Error(), "journal.fsync") {
		t.Errorf("error text %q lacks the point name", ierr)
	}
	if IsInjected(fmt.Errorf("organic failure")) {
		t.Error("IsInjected = true for organic error")
	}
}

func TestKillUsesExitOverride(t *testing.T) {
	in := New(1)
	code := -1
	in.SetExit(func(c int) { code = c })
	in.Kill(ProcKill)
	if code != KillExitCode {
		t.Fatalf("exit code = %d, want %d", code, KillExitCode)
	}
}

func TestPointsCatalogCoversSpecSyntax(t *testing.T) {
	// Every cataloged point must round-trip through Parse.
	for _, p := range Points() {
		if _, err := Parse(string(p)+":after=1", 1); err != nil {
			t.Errorf("catalog point %s rejected by Parse: %v", p, err)
		}
	}
}
