// Package chaos is the fault-injection framework behind the durability
// tests of internal/harness: a catalog of named fault points (journal
// write/fsync failure, short write followed by a crash, disk-full, worker
// panic, hung job, mid-campaign process kill) and a deterministic,
// seed-derived schedule that decides which hit of each point fires.
//
// The subsystem under test calls Fire/Err/Kill at its fault points; with a
// nil *Injector every call is a no-op, so production paths carry the hooks
// unconditionally and pay only an inlined nil check. Schedules are pure
// functions of (spec, seed), so a chaos run is exactly reproducible: the
// same spec and seed fault the same operations in the same order.
package chaos

import (
	"errors"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"

	"ptguard/internal/stats"
)

// Point names one injectable fault site.
type Point string

// The fault-point catalog. Every point is wired through internal/harness;
// cmd/ptguard-soak cycles a kill/corrupt/resume campaign over all of them.
const (
	// JournalWrite fails the journal record write (nothing is written).
	JournalWrite Point = "journal.write"
	// JournalFsync writes the record but fails the following fsync.
	JournalFsync Point = "journal.fsync"
	// JournalShortWrite writes a prefix of the record and then crashes the
	// process: the classic torn-write power-cut.
	JournalShortWrite Point = "journal.short-write"
	// DiskFull fails the journal write with an ENOSPC-shaped error.
	DiskFull Point = "disk.full"
	// WorkerPanic panics inside a job attempt (exercises panic recovery
	// and retry).
	WorkerPanic Point = "worker.panic"
	// JobHang blocks a job attempt until its context is cancelled
	// (exercises the per-job timeout and abandonment).
	JobHang Point = "job.hang"
	// ProcKill terminates the process immediately after a checkpoint
	// append (exercises kill-and-resume).
	ProcKill Point = "proc.kill"
	// WorkerKill kills a distributed worker process right after a job was
	// dispatched to it (exercises the coordinator's heartbeat-timeout /
	// crash-requeue path; a no-op on the in-process backend).
	WorkerKill Point = "worker.kill"
)

// KillExitCode is the exit status used by injected process kills, chosen to
// mimic SIGKILL's 128+9 shell convention so supervisors treat an injected
// kill exactly like a real one.
const KillExitCode = 137

// Points returns the full fault-point catalog, sorted.
func Points() []Point {
	pts := []Point{
		DiskFull, JobHang, JournalFsync, JournalShortWrite, JournalWrite,
		ProcKill, WorkerKill, WorkerPanic,
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i] < pts[j] })
	return pts
}

func knownPoint(p Point) bool {
	for _, q := range Points() {
		if q == p {
			return true
		}
	}
	return false
}

// Error is the error returned by an injected fault, distinguishable from
// organic failures via errors.As / Is.
type Error struct {
	Point Point
	Op    string
}

func (e *Error) Error() string {
	return fmt.Sprintf("chaos: injected %s fault at %s", e.Point, e.Op)
}

// Is reports equality by fault point, so
// errors.Is(err, &chaos.Error{Point: p}) matches any op at p.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	return ok && t.Point == e.Point && (t.Op == "" || t.Op == e.Op)
}

// IsInjected reports whether err originates from a chaos injection.
func IsInjected(err error) bool {
	var ce *Error
	return errors.As(err, &ce)
}

// rule schedules one point: fire on hits [After, After+Times), or (with
// Prob > 0) fire each hit independently with probability Prob drawn from
// the point's seed-derived RNG.
type rule struct {
	after int
	times int
	prob  float64
}

// Injector decides, per fault point, whether the current hit fires. Safe
// for concurrent use; a nil Injector never fires.
type Injector struct {
	mu    sync.Mutex
	seed  uint64
	rules map[Point]rule
	hits  map[Point]int
	fired map[Point]int
	rngs  map[Point]*stats.RNG

	// exit terminates the process on Kill; tests override it via SetExit.
	exit func(code int)
}

// New builds an injector with no rules (nothing fires until rules are
// added via Parse-style specs; see Parse).
func New(seed uint64) *Injector {
	return &Injector{
		seed:  seed,
		rules: make(map[Point]rule),
		hits:  make(map[Point]int),
		fired: make(map[Point]int),
		rngs:  make(map[Point]*stats.RNG),
		exit:  os.Exit,
	}
}

// Parse builds an injector from a schedule spec:
//
//	point:after=N[,times=M] [; point2:p=F] ...
//
// "after=N" fires the point on its N-th hit (1-based), "times=M" keeps it
// firing for M consecutive hits (default 1), and "p=F" instead fires each
// hit independently with probability F from a deterministic seed-derived
// stream. An empty spec returns a nil injector (all hooks no-ops).
func Parse(spec string, seed uint64) (*Injector, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	in := New(seed)
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, params, _ := strings.Cut(clause, ":")
		p := Point(strings.TrimSpace(name))
		if !knownPoint(p) {
			return nil, fmt.Errorf("chaos: unknown fault point %q (catalog: %v)", name, Points())
		}
		r := rule{after: 1, times: 1}
		if params != "" {
			for _, kv := range strings.Split(params, ",") {
				k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
				if !ok {
					return nil, fmt.Errorf("chaos: %s: malformed parameter %q (want k=v)", p, kv)
				}
				switch k {
				case "after":
					n, err := strconv.Atoi(v)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("chaos: %s: after=%q (want integer >= 1)", p, v)
					}
					r.after = n
				case "times":
					n, err := strconv.Atoi(v)
					if err != nil || n < 1 {
						return nil, fmt.Errorf("chaos: %s: times=%q (want integer >= 1)", p, v)
					}
					r.times = n
				case "p":
					f, err := strconv.ParseFloat(v, 64)
					if err != nil || f < 0 || f > 1 {
						return nil, fmt.Errorf("chaos: %s: p=%q (want probability in [0,1])", p, v)
					}
					r.prob = f
				default:
					return nil, fmt.Errorf("chaos: %s: unknown parameter %q", p, k)
				}
			}
		}
		if _, dup := in.rules[p]; dup {
			return nil, fmt.Errorf("chaos: duplicate rule for %s", p)
		}
		in.rules[p] = r
	}
	return in, nil
}

// SetExit overrides the process-termination function used by Kill and the
// short-write crash (tests substitute a panic or a recording stub).
func (in *Injector) SetExit(fn func(code int)) {
	if in == nil || fn == nil {
		return
	}
	in.mu.Lock()
	in.exit = fn
	in.mu.Unlock()
}

// Fire counts one hit of point p and reports whether the schedule fires a
// fault on this hit. Always false on a nil Injector or an unscheduled
// point.
func (in *Injector) Fire(p Point) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	r, ok := in.rules[p]
	if !ok {
		return false
	}
	in.hits[p]++
	var fire bool
	if r.prob > 0 {
		rng, ok := in.rngs[p]
		if !ok {
			rng = stats.NewRNG(stats.DeriveSeed(in.seed, "chaos/"+string(p)))
			in.rngs[p] = rng
		}
		fire = rng.Float64() < r.prob
	} else {
		h := in.hits[p]
		fire = h >= r.after && h < r.after+r.times
	}
	if fire {
		in.fired[p]++
	}
	return fire
}

// Err fires point p and, when the schedule says so, returns the injected
// *Error tagged with op; otherwise nil.
func (in *Injector) Err(p Point, op string) error {
	if in.Fire(p) {
		return &Error{Point: p, Op: op}
	}
	return nil
}

// Kill terminates the process with KillExitCode (or the SetExit override).
// It is called by the harness when ProcKill or the short-write crash
// fires; callers must treat it as not returning.
func (in *Injector) Kill(p Point) {
	if in == nil {
		return
	}
	in.mu.Lock()
	exit := in.exit
	in.mu.Unlock()
	fmt.Fprintf(os.Stderr, "chaos: injected process kill at %s\n", p)
	exit(KillExitCode)
}

// Injected returns how many times each point has fired so far.
func (in *Injector) Injected() map[Point]int {
	out := make(map[Point]int)
	if in == nil {
		return out
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	for p, n := range in.fired {
		out[p] = n
	}
	return out
}

// InjectedTotal returns the total number of fired faults.
func (in *Injector) InjectedTotal() int {
	n := 0
	for _, c := range in.Injected() {
		n += c
	}
	return n
}
