package harness

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
)

// Fingerprint canonicalises a campaign's identity for the checkpoint
// journal: the campaign kind, the campaign seed, and a digest of the
// spec's JSON form. Those three things determine every job key and every
// job result, so they are exactly what makes two runs "the same
// campaign".
//
// Execution knobs are deliberately excluded: worker count, backend
// (local pool vs distributed coordinator), journal path, timeouts, and
// retry policy change how the campaign runs, never what it computes. A
// journal written by a single-process run therefore resumes under the
// multi-process `proc` backend (and vice versa) at any worker count, and
// the merged report stays byte-identical — the guarantee the
// cross-backend determinism tests pin.
func Fingerprint(kind string, seed uint64, spec any) string {
	raw, err := json.Marshal(spec)
	if err != nil {
		// Unmarshalable specs (channels, cycles) don't occur in practice;
		// fall back to the printf form so the fingerprint stays a pure
		// function of the spec value rather than failing open.
		raw = []byte(fmt.Sprintf("%+v", spec))
	}
	sum := sha256.Sum256(raw)
	return fmt.Sprintf("%s seed=%d spec=%x", kind, seed, sum[:12])
}
