package harness

import (
	"context"
	"errors"
	"fmt"

	"ptguard/internal/attack"
	"ptguard/internal/report"
	"ptguard/internal/virt"
)

// ---------------------------------------------------------------------------
// Inter-VM campaign: tenant count × guard placement × attack target.

// VirtSpec declares the inter-VM Rowhammer campaign: every tenant-fleet
// size crossed with every guard placement and attack target, each cell run
// Trials times under derived seeds.
type VirtSpec struct {
	// Tenants are the fleet sizes to sweep; empty selects {4}.
	Tenants []int
	// Placements are guard placements ("none", "guest", "stage2", "both");
	// empty selects all four.
	Placements []string
	// Targets are attack surfaces ("guest", "stage2"); empty selects both.
	Targets []string
	// Trials is the number of trials per cell; zero selects 3.
	Trials int
	// PagesPerVM is each tenant's leaf mapping count; zero keeps the virt
	// default.
	PagesPerVM int
	// Correction enables the §VI correction engine on guarded layers.
	Correction bool
	// Threshold, Acts, FlipProb pass through to attack.RunVMTrial (zero
	// keeps its scaled defaults).
	Threshold int
	Acts      int
	FlipProb  float64
	// Obs configures per-job observability (nil disables).
	Obs *ObsSpec
}

func (s VirtSpec) withDefaults() VirtSpec {
	if len(s.Tenants) == 0 {
		s.Tenants = []int{4}
	}
	if len(s.Placements) == 0 {
		s.Placements = virt.PlacementNames()
	}
	if len(s.Targets) == 0 {
		s.Targets = attack.VMTargetNames()
	}
	if s.Trials == 0 {
		s.Trials = 3
	}
	return s
}

// validate fails the campaign on a bad name or fleet size before any job
// runs.
func (s VirtSpec) validate() error {
	for _, n := range s.Tenants {
		if n < 2 {
			return fmt.Errorf("harness: tenant count %d too small (need attacker and victim)", n)
		}
	}
	for _, p := range s.Placements {
		if _, err := virt.ParsePlacement(p); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
	}
	for _, tgt := range s.Targets {
		switch tgt {
		case attack.VMTargetGuest, attack.VMTargetStage2:
		default:
			return fmt.Errorf("harness: unknown inter-VM target %q (want %q or %q)",
				tgt, attack.VMTargetGuest, attack.VMTargetStage2)
		}
	}
	return nil
}

// Jobs expands the spec into one job per (tenants, target, placement,
// trial). Every job's seed derives from the campaign seed and the job key,
// so the sweep is byte-identical at any worker count.
func (s VirtSpec) Jobs(campaignSeed uint64) ([]Job[attack.VMTrialResult], error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	var jobs []Job[attack.VMTrialResult]
	for _, tenants := range s.Tenants {
		for _, target := range s.Targets {
			for _, placement := range s.Placements {
				for trial := 0; trial < s.Trials; trial++ {
					tenants, target, placement := tenants, target, placement
					key := fmt.Sprintf("vm/t%03d/%s/%s/%d", tenants, target, placement, trial)
					seed := DeriveSeed(campaignSeed, key)
					jobs = append(jobs, Job[attack.VMTrialResult]{
						Key: key,
						Run: func(context.Context) (attack.VMTrialResult, error) {
							res, err := attack.RunVMTrial(attack.VMTrialConfig{
								Tenants:    tenants,
								PagesPerVM: s.PagesPerVM,
								Placement:  placement,
								Target:     target,
								Correction: s.Correction,
								Seed:       seed,
								Threshold:  s.Threshold,
								Acts:       s.Acts,
								FlipProb:   s.FlipProb,
								Obs:        s.Obs.options(),
							})
							res.Obs = s.Obs.strip(res.Obs)
							return res, err
						},
					})
				}
			}
		}
	}
	return jobs, nil
}

// virtCell aggregates one sweep cell's trials.
type virtCell struct {
	res    attack.VMTrialResult
	trials int
	flips  int
	walks  int
	detect int
	s2det  int
	fault  int
	silent int
	intact int
	maxAcc int
}

// VirtTables aggregates trial results into the inter-VM matrix: one row per
// (tenants, target, placement) with trial-summed outcome counts, PT-Guard
// coverage, and the defense verdict.
func VirtTables(results []attack.VMTrialResult, spec VirtSpec) ([]*report.Table, error) {
	if len(results) == 0 {
		return nil, errors.New("harness: no inter-VM trial results")
	}
	spec = spec.withDefaults()
	cells := make(map[string]*virtCell)
	var order []string
	for _, r := range results {
		key := fmt.Sprintf("t%03d/%s/%s", r.Tenants, r.Target, r.Placement)
		c := cells[key]
		if c == nil {
			c = &virtCell{res: r}
			cells[key] = c
			order = append(order, key)
		}
		c.trials++
		c.flips += r.RowsFlipped
		c.walks += r.WalksChecked
		c.detect += r.Detected
		c.s2det += r.DetectedStage2
		c.fault += r.Faulted
		c.silent += r.Silent
		c.intact += r.Intact
		if r.MaxWalkAccesses > c.maxAcc {
			c.maxAcc = r.MaxWalkAccesses
		}
	}

	matrix := report.New(
		fmt.Sprintf("Inter-VM Rowhammer — %d trials per cell, victim pages walked post-attack", spec.Trials),
		"tenants", "target", "placement", "trials", "row flips", "walks",
		"detected", "s2 det", "faulted", "silent", "intact",
		"coverage %", "max walk", "verdict")
	for _, key := range order {
		c := cells[key]
		coverage := 100.0
		if bad := c.detect + c.silent; bad > 0 {
			coverage = 100 * float64(c.detect) / float64(bad)
		}
		verdict := "defended"
		switch {
		case c.silent > 0:
			verdict = "DEFEATED"
		case c.fault > 0:
			verdict = "crashed"
		case c.flips == 0:
			verdict = "no flips"
		}
		matrix.AddRow(report.I(c.res.Tenants), c.res.Target, c.res.Placement,
			report.I(c.trials), report.I(c.flips), report.I(c.walks),
			report.I(c.detect), report.I(c.s2det), report.I(c.fault),
			report.I(c.silent), report.I(c.intact),
			report.Pct(coverage), report.I(c.maxAcc), verdict)
	}
	return []*report.Table{matrix}, nil
}
