// Package harness is the experiment-campaign execution subsystem: it takes
// a declarative spec (workload × mode × seed × knobs grid), expands it into
// independent jobs, fans the jobs out over a worker pool, and aggregates
// the results deterministically — the N-worker output is byte-identical to
// the serial output because every job's seed is a pure function of the
// campaign seed and the job key, and results are collected in job order
// regardless of scheduling.
//
// The runner is robust by construction: a panicking job is recovered and
// retried (with exponential backoff and deterministic jitter) a bounded
// number of times, every job runs under a wall-clock timeout, a job that
// exhausts its attempts is quarantined as poison (reported, never wedging
// a worker), and finished jobs are checkpointed to a CRC-framed JSONL
// journal so an interrupted campaign resumes by skipping work already
// done. Every durability path carries a chaos fault-point hook
// (internal/chaos), so kills, torn writes, and disk faults are first-class
// test inputs — cmd/ptguard-soak runs that proof continuously.
package harness

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"time"

	"ptguard/internal/chaos"
	"ptguard/internal/stats"
)

// Job is one independent unit of work. Key must be unique within a
// campaign and stable across runs: it names the job in the checkpoint
// journal and seeds its derived RNG, so changing a key invalidates its
// checkpoint.
type Job[R any] struct {
	// Key uniquely identifies the job within the campaign.
	Key string
	// Run executes the job. The context carries the per-job deadline; a
	// job that ignores it is abandoned (its goroutine keeps running until
	// it returns, but its result is discarded and the job counts as
	// failed).
	Run func(ctx context.Context) (R, error)
}

// BackendLocal is the default execution backend: the in-process worker
// pool. Any other Options.Backend value requires an Executor.
const BackendLocal = "local"

// Executor runs job attempts somewhere other than this process — the
// pluggable half of a non-local Options.Backend (internal/dist provides
// the multi-process and TCP coordinators). Execute runs the job named by
// key and returns its JSON-encoded result; the returned error is the
// job's own failure (it burns a retry exactly like a local failure).
// Infrastructure failures — a crashed worker process, a lost connection,
// a heartbeat timeout — are the executor's to absorb (respawn, requeue on
// another worker) and surface only once requeueing is exhausted.
type Executor interface {
	Execute(ctx context.Context, key string) (json.RawMessage, error)
}

// Options configures a campaign run.
type Options struct {
	// Workers is the worker-pool size; 0 selects GOMAXPROCS. With a
	// non-local Backend it bounds in-flight remote attempts and should
	// match the executor's worker count.
	Workers int
	// Backend names the execution backend: "" or "local" runs jobs on the
	// in-process pool; any other value requires Executor. The backend is
	// an execution detail — it is deliberately excluded from Fingerprint,
	// so journals written under one backend resume under another.
	Backend string
	// Executor runs job attempts for a non-local Backend. Results cross a
	// JSON round-trip, which is byte-exact for the same reason journal
	// replay is.
	Executor Executor
	// Timeout bounds each job attempt's wall-clock time; 0 disables.
	Timeout time.Duration
	// Retries is the number of re-attempts after a failed or panicked
	// attempt (total attempts = Retries+1). A job that exhausts all
	// attempts is quarantined: reported in its outcome (and journaled with
	// its attempt history) without wedging a worker.
	Retries int
	// Backoff is the base delay before the first re-attempt; each further
	// re-attempt doubles it, capped by BackoffMax. The actual delay
	// carries deterministic per-(job, attempt) jitter in [0.5x, 1.5x), so
	// retry storms decorrelate without losing reproducibility. 0 retries
	// immediately.
	Backoff time.Duration
	// BackoffMax caps the exponential backoff; 0 selects 30s.
	BackoffMax time.Duration
	// DrainGrace is the window granted to in-flight job attempts when the
	// campaign context is cancelled (SIGINT/SIGTERM): attempts finishing
	// within it are journaled as completions instead of being abandoned.
	// 0 abandons in-flight work immediately on cancellation.
	DrainGrace time.Duration
	// JournalPath enables the JSONL checkpoint journal. Completed jobs
	// are appended as they finish; a re-run with the same path skips jobs
	// whose keys are already journaled, reusing the stored results.
	JournalPath string
	// Fingerprint guards the journal against being reused with a
	// different campaign: it is stored in the journal header and a
	// mismatch on resume is an error. Empty disables the check.
	Fingerprint string
	// Progress, when non-nil, receives periodic progress lines
	// (jobs done/failed/retried, jobs/sec, ETA) and a final summary.
	Progress io.Writer
	// ProgressEvery is the reporting period; 0 selects 2s.
	ProgressEvery time.Duration
	// LiveStatus, when non-nil, is bound to the campaign's live counters
	// so external pollers (the -debug-addr expvar endpoint) can snapshot
	// progress while the campaign runs.
	LiveStatus *LiveStatus
	// Chaos, when non-nil, injects scheduled faults at the harness's
	// durability fault points (journal writes/fsyncs, worker panics, hung
	// jobs, process kills). Nil runs fault-free.
	Chaos *chaos.Injector
}

// Outcome is one job's final state.
type Outcome[R any] struct {
	// Key is the job key.
	Key string
	// Result is the job's result (zero if Err != nil).
	Result R
	// Err is the terminal error after all attempts, nil on success.
	Err error
	// Attempts is the number of attempts executed (0 for journaled jobs).
	Attempts int
	// Elapsed is the wall-clock time across all attempts.
	Elapsed time.Duration
	// FromJournal marks a result restored from the checkpoint journal.
	FromJournal bool
	// Quarantined marks a poison job: every attempt failed on its own
	// merits (not campaign cancellation), so the job was given up on and
	// its failure journaled.
	Quarantined bool
	// PriorAttempts and PriorError carry the journaled failure history of
	// a job that was quarantined by an earlier (killed or resumed) run of
	// this campaign, so flaky-job history survives resume.
	PriorAttempts int
	PriorError    string
}

// Metrics summarises a campaign run.
type Metrics struct {
	// Total is the number of jobs in the campaign.
	Total int
	// Executed counts jobs that ran to success in this process.
	Executed int
	// Failed counts jobs whose final attempt failed.
	Failed int
	// Retried counts individual re-attempts across all jobs.
	Retried int
	// FromJournal counts jobs skipped because the journal had them.
	FromJournal int
	// Quarantined counts poison jobs that exhausted every attempt.
	Quarantined int
	// PriorFailures counts jobs whose journal carried failure history
	// from an earlier run of this campaign.
	PriorFailures int
	// JournalQuarantined counts corrupted journal records that were
	// quarantined on load (their jobs re-ran).
	JournalQuarantined int
	// JournalBytes counts checkpoint bytes appended by this process.
	JournalBytes int64
	// Backoffs counts retry backoff sleeps; BackoffTotal is their sum.
	Backoffs     int
	BackoffTotal time.Duration
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
}

// JobsPerSec returns the executed-job throughput. Journal-replayed jobs
// do not count — a resume that restores every job from the checkpoint did
// no work, so its throughput is 0, not N-jobs-over-epsilon. A degenerate
// elapsed time (zero, negative, or so small the division explodes)
// likewise reports 0 instead of an absurd or non-finite rate.
func (m Metrics) JobsPerSec() float64 {
	if m.Executed <= 0 || m.Elapsed <= 0 {
		return 0
	}
	rate := float64(m.Executed) / m.Elapsed.Seconds()
	if math.IsNaN(rate) || math.IsInf(rate, 0) {
		return 0
	}
	return rate
}

// Report holds a campaign's outcomes, in job order (deterministic: the
// order never depends on worker scheduling).
type Report[R any] struct {
	Outcomes []Outcome[R]
	Metrics  Metrics
	// Quarantined lists corrupted journal records rejected on load.
	Quarantined []QuarantinedRecord
}

// Err joins every job error, or returns nil if all jobs succeeded.
func (r *Report[R]) Err() error {
	var errs []error
	for _, o := range r.Outcomes {
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", o.Key, o.Err))
		}
	}
	return errors.Join(errs...)
}

// Results returns all results in job order, or the joined error if any
// job failed.
func (r *Report[R]) Results() ([]R, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]R, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Result
	}
	return out, nil
}

// Run executes the campaign: journaled jobs are restored, the rest fan out
// over the worker pool. The returned error covers harness-level failures
// (invalid jobs, journal I/O, context cancellation); per-job failures live
// in the outcomes and in Report.Err.
func Run[R any](ctx context.Context, jobs []Job[R], opts Options) (*Report[R], error) {
	start := time.Now()
	switch {
	case opts.Backend == "" || opts.Backend == BackendLocal:
		// The executor belongs to a non-local backend only; ignore it so a
		// caller flipping Backend back to local really runs locally.
		opts.Executor = nil
	case opts.Executor == nil:
		return nil, fmt.Errorf("harness: backend %q requires an Executor", opts.Backend)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Key == "" {
			return nil, errors.New("harness: job with empty key")
		}
		if j.Run == nil {
			return nil, fmt.Errorf("harness: job %q has no Run function", j.Key)
		}
		if seen[j.Key] {
			return nil, fmt.Errorf("harness: duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
	}

	var (
		jr *journal
		st *journalState
	)
	if opts.JournalPath != "" {
		var err error
		jr, st, err = openJournal(opts.JournalPath, opts.Fingerprint, opts.Chaos)
		if err != nil {
			return nil, err
		}
		defer jr.Close()
		if opts.Progress != nil {
			for _, q := range st.quarantined {
				fmt.Fprintf(opts.Progress, "harness: journal: quarantined corrupt record at %s\n", q)
			}
		}
	}

	outcomes := make([]Outcome[R], len(jobs))
	var pending []int
	c := &counters{}
	opts.LiveStatus.attach(len(jobs), c)
	if st != nil {
		c.journalQuarantined.Store(int64(len(st.quarantined)))
	}
	for i, j := range jobs {
		if st != nil {
			if f, ok := st.failures[j.Key]; ok {
				outcomes[i].PriorAttempts = f.Attempts
				outcomes[i].PriorError = f.Error
				c.priorFailures.Add(1)
			}
			if e, ok := st.completed[j.Key]; ok {
				var res R
				if err := e.decode(&res); err == nil {
					outcomes[i].Key = j.Key
					outcomes[i].Result = res
					outcomes[i].FromJournal = true
					c.fromJournal.Add(1)
					continue
				}
				// Undecodable checkpoint (e.g. the result type changed):
				// fall through and re-run the job.
			}
		}
		pending = append(pending, i)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) && len(pending) > 0 {
		workers = len(pending)
	}

	rep := startReporter(opts, len(jobs), c)

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				prior := outcomes[i]
				out := runJob(ctx, jobs[i], opts, c)
				out.PriorAttempts, out.PriorError = prior.PriorAttempts, prior.PriorError
				outcomes[i] = out
				if out.Err == nil {
					c.executed.Add(1)
					if jr != nil {
						if err := jr.append(out.Key, out.Result, out.Attempts, out.Elapsed); err != nil {
							c.journalErr(err)
						} else if opts.Chaos.Fire(chaos.ProcKill) {
							// Kill right after a checkpoint lands: the
							// canonical mid-campaign crash.
							opts.Chaos.Kill(chaos.ProcKill)
						}
					}
				} else {
					c.failed.Add(1)
					if out.Quarantined {
						c.quarantined.Add(1)
						if jr != nil {
							if err := jr.appendFailure(out.Key, out.Attempts, out.Elapsed, out.Err); err != nil {
								c.journalErr(err)
							}
						}
					}
				}
				c.journalBytes.Store(jr.Bytes())
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	rep.stop()

	m := Metrics{
		Total:              len(jobs),
		Executed:           int(c.executed.Load()),
		Failed:             int(c.failed.Load()),
		Retried:            int(c.retried.Load()),
		FromJournal:        int(c.fromJournal.Load()),
		Quarantined:        int(c.quarantined.Load()),
		PriorFailures:      int(c.priorFailures.Load()),
		JournalQuarantined: int(c.journalQuarantined.Load()),
		JournalBytes:       c.journalBytes.Load(),
		Backoffs:           int(c.backoffs.Load()),
		BackoffTotal:       time.Duration(c.backoffNanos.Load()),
		Elapsed:            time.Since(start),
	}
	report := &Report[R]{Outcomes: outcomes, Metrics: m}
	if st != nil {
		report.Quarantined = st.quarantined
	}
	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "harness: done: %d executed, %d from journal, %d failed, %d retried in %s (%.2f jobs/s)\n",
			m.Executed, m.FromJournal, m.Failed, m.Retried, m.Elapsed.Round(time.Millisecond), m.JobsPerSec())
	}
	if err := ctx.Err(); err != nil {
		return report, fmt.Errorf("harness: campaign interrupted: %w", err)
	}
	if err := c.takeJournalErr(); err != nil {
		return report, fmt.Errorf("harness: journal write failed: %w", err)
	}
	return report, nil
}

// runJob runs one job with bounded retry; panics and timeouts count as
// failed attempts. Re-attempts back off exponentially with deterministic
// per-(job, attempt) jitter. A job whose final attempt fails while the
// campaign is still live is quarantined as poison.
func runJob[R any](ctx context.Context, job Job[R], opts Options, c *counters) Outcome[R] {
	start := time.Now()
	out := Outcome[R]{Key: job.Key}
	for attempt := 1; attempt <= opts.Retries+1; attempt++ {
		if err := ctx.Err(); err != nil {
			out.Err = err
			break
		}
		out.Attempts = attempt
		res, err := runAttempt(ctx, job, opts)
		if err == nil {
			out.Result, out.Err = res, nil
			break
		}
		out.Err = err
		if ctx.Err() != nil {
			break // campaign cancelled: do not burn retries
		}
		if attempt <= opts.Retries {
			c.retried.Add(1)
			if d := backoffDelay(opts, job.Key, attempt); d > 0 {
				c.backoffs.Add(1)
				c.backoffNanos.Add(int64(d))
				if !sleepCtx(ctx, d) {
					out.Err = ctx.Err()
					out.Elapsed = time.Since(start)
					return out
				}
			}
		}
	}
	out.Elapsed = time.Since(start)
	// Poison quarantine: the job burnt every attempt on its own failures
	// (campaign-cancellation failures are not the job's fault).
	out.Quarantined = out.Err != nil && ctx.Err() == nil
	return out
}

// backoffDelay computes the delay before re-attempt number attempt+1:
// Backoff << (attempt-1), capped at BackoffMax, scaled by a deterministic
// jitter factor in [0.5, 1.5) derived from (job key, attempt). Pure
// function — a re-run of the same campaign backs off identically.
func backoffDelay(opts Options, key string, attempt int) time.Duration {
	if opts.Backoff <= 0 {
		return 0
	}
	max := opts.BackoffMax
	if max <= 0 {
		max = 30 * time.Second
	}
	d := opts.Backoff
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	u := stats.DeriveSeed(uint64(attempt), "backoff/"+key)
	jitter := 0.5 + float64(u%(1<<20))/float64(1<<20) // [0.5, 1.5)
	return time.Duration(float64(d) * jitter)
}

// sleepCtx sleeps for d or until ctx is cancelled; it reports whether the
// full sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// runAttempt executes one attempt under the per-job timeout, converting a
// panic into an error. The job runs in its own goroutine so a deadline can
// fire even if the job never checks the context; an over-deadline job is
// abandoned, not killed. When the campaign context (not the per-job
// deadline) is what fired, Options.DrainGrace grants the in-flight attempt
// a window to finish so its completion can still be journaled — the
// graceful-drain half of SIGINT handling.
func runAttempt[R any](ctx context.Context, job Job[R], opts Options) (R, error) {
	actx := ctx
	cancel := func() {}
	if opts.Timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, opts.Timeout)
	}
	defer cancel()
	type attempt struct {
		val R
		err error
	}
	ch := make(chan attempt, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				var zero R
				ch <- attempt{zero, fmt.Errorf("job panicked: %v", p)}
			}
		}()
		if opts.Chaos.Fire(chaos.WorkerPanic) {
			panic("chaos: injected worker panic")
		}
		if opts.Chaos.Fire(chaos.JobHang) {
			// A hung job: block until the attempt context dies, then fail.
			<-actx.Done()
			var zero R
			ch <- attempt{zero, &chaos.Error{Point: chaos.JobHang, Op: "job attempt"}}
			return
		}
		if opts.Executor != nil {
			var v R
			raw, err := opts.Executor.Execute(actx, job.Key)
			if err == nil {
				err = json.Unmarshal(raw, &v)
				if err != nil {
					err = fmt.Errorf("harness: decode remote result for %q: %w", job.Key, err)
				}
			}
			ch <- attempt{v, err}
			return
		}
		v, err := job.Run(actx)
		ch <- attempt{v, err}
	}()
	select {
	case a := <-ch:
		return a.val, a.err
	case <-actx.Done():
		if ctx.Err() != nil && opts.DrainGrace > 0 {
			// Campaign-level cancellation: drain rather than abandon.
			grace := time.NewTimer(opts.DrainGrace)
			defer grace.Stop()
			select {
			case a := <-ch:
				return a.val, a.err
			case <-grace.C:
			}
		}
		var zero R
		return zero, fmt.Errorf("job abandoned: %w", actx.Err())
	}
}
