// Package harness is the experiment-campaign execution subsystem: it takes
// a declarative spec (workload × mode × seed × knobs grid), expands it into
// independent jobs, fans the jobs out over a worker pool, and aggregates
// the results deterministically — the N-worker output is byte-identical to
// the serial output because every job's seed is a pure function of the
// campaign seed and the job key, and results are collected in job order
// regardless of scheduling.
//
// The runner is robust by construction: a panicking job is recovered and
// retried a bounded number of times, every job runs under a wall-clock
// timeout, and completed jobs are checkpointed to a JSONL journal so an
// interrupted campaign resumes by skipping work already done.
package harness

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Job is one independent unit of work. Key must be unique within a
// campaign and stable across runs: it names the job in the checkpoint
// journal and seeds its derived RNG, so changing a key invalidates its
// checkpoint.
type Job[R any] struct {
	// Key uniquely identifies the job within the campaign.
	Key string
	// Run executes the job. The context carries the per-job deadline; a
	// job that ignores it is abandoned (its goroutine keeps running until
	// it returns, but its result is discarded and the job counts as
	// failed).
	Run func(ctx context.Context) (R, error)
}

// Options configures a campaign run.
type Options struct {
	// Workers is the worker-pool size; 0 selects GOMAXPROCS.
	Workers int
	// Timeout bounds each job attempt's wall-clock time; 0 disables.
	Timeout time.Duration
	// Retries is the number of re-attempts after a failed or panicked
	// attempt (total attempts = Retries+1).
	Retries int
	// JournalPath enables the JSONL checkpoint journal. Completed jobs
	// are appended as they finish; a re-run with the same path skips jobs
	// whose keys are already journaled, reusing the stored results.
	JournalPath string
	// Fingerprint guards the journal against being reused with a
	// different campaign: it is stored in the journal header and a
	// mismatch on resume is an error. Empty disables the check.
	Fingerprint string
	// Progress, when non-nil, receives periodic progress lines
	// (jobs done/failed/retried, jobs/sec, ETA) and a final summary.
	Progress io.Writer
	// ProgressEvery is the reporting period; 0 selects 2s.
	ProgressEvery time.Duration
	// LiveStatus, when non-nil, is bound to the campaign's live counters
	// so external pollers (the -debug-addr expvar endpoint) can snapshot
	// progress while the campaign runs.
	LiveStatus *LiveStatus
}

// Outcome is one job's final state.
type Outcome[R any] struct {
	// Key is the job key.
	Key string
	// Result is the job's result (zero if Err != nil).
	Result R
	// Err is the terminal error after all attempts, nil on success.
	Err error
	// Attempts is the number of attempts executed (0 for journaled jobs).
	Attempts int
	// Elapsed is the wall-clock time across all attempts.
	Elapsed time.Duration
	// FromJournal marks a result restored from the checkpoint journal.
	FromJournal bool
}

// Metrics summarises a campaign run.
type Metrics struct {
	// Total is the number of jobs in the campaign.
	Total int
	// Executed counts jobs that ran to success in this process.
	Executed int
	// Failed counts jobs whose final attempt failed.
	Failed int
	// Retried counts individual re-attempts across all jobs.
	Retried int
	// FromJournal counts jobs skipped because the journal had them.
	FromJournal int
	// Elapsed is the campaign wall-clock time.
	Elapsed time.Duration
}

// JobsPerSec returns the executed-job throughput.
func (m Metrics) JobsPerSec() float64 {
	if m.Elapsed <= 0 {
		return 0
	}
	return float64(m.Executed) / m.Elapsed.Seconds()
}

// Report holds a campaign's outcomes, in job order (deterministic: the
// order never depends on worker scheduling).
type Report[R any] struct {
	Outcomes []Outcome[R]
	Metrics  Metrics
}

// Err joins every job error, or returns nil if all jobs succeeded.
func (r *Report[R]) Err() error {
	var errs []error
	for _, o := range r.Outcomes {
		if o.Err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", o.Key, o.Err))
		}
	}
	return errors.Join(errs...)
}

// Results returns all results in job order, or the joined error if any
// job failed.
func (r *Report[R]) Results() ([]R, error) {
	if err := r.Err(); err != nil {
		return nil, err
	}
	out := make([]R, len(r.Outcomes))
	for i, o := range r.Outcomes {
		out[i] = o.Result
	}
	return out, nil
}

// Run executes the campaign: journaled jobs are restored, the rest fan out
// over the worker pool. The returned error covers harness-level failures
// (invalid jobs, journal I/O, context cancellation); per-job failures live
// in the outcomes and in Report.Err.
func Run[R any](ctx context.Context, jobs []Job[R], opts Options) (*Report[R], error) {
	start := time.Now()
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		if j.Key == "" {
			return nil, errors.New("harness: job with empty key")
		}
		if j.Run == nil {
			return nil, fmt.Errorf("harness: job %q has no Run function", j.Key)
		}
		if seen[j.Key] {
			return nil, fmt.Errorf("harness: duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
	}

	var (
		jr        *journal
		completed map[string]journalEntry
	)
	if opts.JournalPath != "" {
		var err error
		jr, completed, err = openJournal(opts.JournalPath, opts.Fingerprint)
		if err != nil {
			return nil, err
		}
		defer jr.Close()
	}

	outcomes := make([]Outcome[R], len(jobs))
	var pending []int
	c := &counters{}
	opts.LiveStatus.attach(len(jobs), c)
	for i, j := range jobs {
		if e, ok := completed[j.Key]; ok {
			var res R
			if err := e.decode(&res); err == nil {
				outcomes[i] = Outcome[R]{Key: j.Key, Result: res, FromJournal: true}
				c.fromJournal.Add(1)
				continue
			}
			// Undecodable checkpoint (e.g. the result type changed):
			// fall through and re-run the job.
		}
		pending = append(pending, i)
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(pending) && len(pending) > 0 {
		workers = len(pending)
	}

	rep := startReporter(opts, len(jobs), c)

	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idxCh {
				out := runJob(ctx, jobs[i], opts, c)
				outcomes[i] = out
				if out.Err == nil {
					c.executed.Add(1)
					if jr != nil {
						if err := jr.append(out.Key, out.Result, out.Attempts, out.Elapsed); err != nil {
							c.journalErr(err)
						}
					}
				} else {
					c.failed.Add(1)
				}
			}
		}()
	}
feed:
	for _, i := range pending {
		select {
		case idxCh <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idxCh)
	wg.Wait()
	rep.stop()

	m := Metrics{
		Total:       len(jobs),
		Executed:    int(c.executed.Load()),
		Failed:      int(c.failed.Load()),
		Retried:     int(c.retried.Load()),
		FromJournal: int(c.fromJournal.Load()),
		Elapsed:     time.Since(start),
	}
	report := &Report[R]{Outcomes: outcomes, Metrics: m}
	if opts.Progress != nil {
		fmt.Fprintf(opts.Progress, "harness: done: %d executed, %d from journal, %d failed, %d retried in %s (%.2f jobs/s)\n",
			m.Executed, m.FromJournal, m.Failed, m.Retried, m.Elapsed.Round(time.Millisecond), m.JobsPerSec())
	}
	if err := ctx.Err(); err != nil {
		return report, fmt.Errorf("harness: campaign interrupted: %w", err)
	}
	if err := c.takeJournalErr(); err != nil {
		return report, fmt.Errorf("harness: journal write failed: %w", err)
	}
	return report, nil
}

// runJob runs one job with bounded retry; panics and timeouts count as
// failed attempts.
func runJob[R any](ctx context.Context, job Job[R], opts Options, c *counters) Outcome[R] {
	start := time.Now()
	out := Outcome[R]{Key: job.Key}
	for attempt := 1; attempt <= opts.Retries+1; attempt++ {
		if err := ctx.Err(); err != nil {
			out.Err = err
			break
		}
		out.Attempts = attempt
		res, err := runAttempt(ctx, job, opts.Timeout)
		if err == nil {
			out.Result, out.Err = res, nil
			break
		}
		out.Err = err
		if ctx.Err() != nil {
			break // campaign cancelled: do not burn retries
		}
		if attempt <= opts.Retries {
			c.retried.Add(1)
		}
	}
	out.Elapsed = time.Since(start)
	return out
}

// runAttempt executes one attempt under the per-job timeout, converting a
// panic into an error. The job runs in its own goroutine so a deadline can
// fire even if the job never checks the context; an over-deadline job is
// abandoned, not killed.
func runAttempt[R any](ctx context.Context, job Job[R], timeout time.Duration) (R, error) {
	actx := ctx
	cancel := func() {}
	if timeout > 0 {
		actx, cancel = context.WithTimeout(ctx, timeout)
	}
	defer cancel()
	type attempt struct {
		val R
		err error
	}
	ch := make(chan attempt, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				var zero R
				ch <- attempt{zero, fmt.Errorf("job panicked: %v", p)}
			}
		}()
		v, err := job.Run(actx)
		ch <- attempt{v, err}
	}()
	select {
	case a := <-ch:
		return a.val, a.err
	case <-actx.Done():
		var zero R
		return zero, fmt.Errorf("job abandoned: %w", actx.Err())
	}
}
