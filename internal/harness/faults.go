package harness

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"ptguard/internal/dram"
	"ptguard/internal/fault"
	"ptguard/internal/report"
)

// ---------------------------------------------------------------------------
// Fault-model taxonomy campaign: confusion matrix per (model, mode).

// Fault campaign modes.
const (
	FaultModeDetect  = "detect"
	FaultModeCorrect = "correct"
)

// FaultSpec declares the fault-injection campaign: every flip model in the
// taxonomy crossed with the detection-only and correction-enabled Guard,
// each run cross-checked against the ground-truth oracle.
type FaultSpec struct {
	// Models are fault.Parse specs; empty selects the default taxonomy.
	Models []string
	// Modes selects "detect" and/or "correct"; empty selects both.
	Modes []string
	// Lines is the number of faulty lines per (model, mode); zero
	// selects 400.
	Lines int
	// SoftMatchK overrides the correction fault budget; 0 selects 4.
	SoftMatchK int
	// TagBits overrides the MAC width; 0 selects 96.
	TagBits int
	// Obs, when set, collects per-campaign metrics/series/trace in each
	// job result (snapshot cadence counts trials).
	Obs *ObsSpec
}

func (s FaultSpec) withDefaults() FaultSpec {
	if len(s.Modes) == 0 {
		s.Modes = []string{FaultModeDetect, FaultModeCorrect}
	}
	if s.Lines == 0 {
		s.Lines = 400
	}
	return s
}

// models resolves the spec strings into flip models.
func (s FaultSpec) models() ([]dram.FlipModel, error) {
	if len(s.Models) == 0 {
		return fault.DefaultTaxonomy(), nil
	}
	out := make([]dram.FlipModel, 0, len(s.Models))
	for _, spec := range s.Models {
		m, err := fault.Parse(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	return out, nil
}

// Jobs expands the spec into one campaign job per (model, mode).
func (s FaultSpec) Jobs(campaignSeed uint64) ([]Job[fault.CampaignResult], error) {
	s = s.withDefaults()
	models, err := s.models()
	if err != nil {
		return nil, err
	}
	var jobs []Job[fault.CampaignResult]
	for _, m := range models {
		for _, mode := range s.Modes {
			m, mode := m, mode
			var correction bool
			switch mode {
			case FaultModeDetect:
			case FaultModeCorrect:
				correction = true
			default:
				return nil, fmt.Errorf("harness: unknown fault mode %q (want %s or %s)",
					mode, FaultModeDetect, FaultModeCorrect)
			}
			key := fmt.Sprintf("faults/%s/%s", m.Name(), mode)
			seed := DeriveSeed(campaignSeed, key)
			jobs = append(jobs, Job[fault.CampaignResult]{
				Key: key,
				Run: func(context.Context) (fault.CampaignResult, error) {
					res, err := fault.RunCampaign(fault.CampaignConfig{
						Model:            m,
						Lines:            s.Lines,
						Seed:             seed,
						EnableCorrection: correction,
						SoftMatchK:       s.SoftMatchK,
						TagBits:          s.TagBits,
						Obs:              s.Obs.options(),
					})
					res.Obs = s.Obs.strip(res.Obs)
					return res, err
				},
			})
		}
	}
	return jobs, nil
}

// FaultTables aggregates campaign results into the confusion-matrix table
// (one row per model and mode, with a TOTAL row) and a flip-attribution
// table showing where the injected faults landed in DRAM.
func FaultTables(results []fault.CampaignResult, spec FaultSpec) ([]*report.Table, error) {
	if len(results) == 0 {
		return nil, errors.New("harness: no fault campaign results")
	}
	spec = spec.withDefaults()
	matrix := report.New(
		fmt.Sprintf("Fault-model taxonomy — Guard confusion matrix (%d faulty lines per cell)", spec.Lines),
		"model", "mode", "flips", "faulty", "detected", "corrected",
		"miscorrected", "silent", "corrected %", "coverage %", "guesses")
	var total fault.Matrix
	var totalGuesses uint64
	for _, r := range results {
		m := r.Matrix
		matrix.AddRow(r.Model, r.Mode,
			report.U(m.FlipsInjected), report.U(m.Faulty()),
			report.U(m.Detected), report.U(m.Corrected),
			report.U(m.Miscorrected), report.U(m.Silent),
			report.Pct(m.CorrectedPct()), report.Pct(m.CoveragePct()),
			report.U(r.Guesses))
		total.Add(m)
		totalGuesses += r.Guesses
	}
	matrix.AddRow("TOTAL", "",
		report.U(total.FlipsInjected), report.U(total.Faulty()),
		report.U(total.Detected), report.U(total.Corrected),
		report.U(total.Miscorrected), report.U(total.Silent),
		report.Pct(total.CorrectedPct()), report.Pct(total.CoveragePct()),
		report.U(totalGuesses))

	attr := report.New("Flip attribution — hottest DRAM rows per campaign",
		"model", "mode", "total flips", "hottest rows (bank:row=flips)")
	for _, r := range results {
		var hot []string
		for i, fc := range r.HotRows {
			if i == 3 {
				break
			}
			hot = append(hot, fmt.Sprintf("%d:%d=%d", fc.Bank, fc.Row, fc.Flips))
		}
		attr.AddRow(r.Model, r.Mode, report.U(r.Device.FlipsInjected), strings.Join(hot, " "))
	}
	return []*report.Table{matrix, attr}, nil
}
