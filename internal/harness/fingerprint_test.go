package harness

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestFingerprintBackendInvariant pins the property the distributed
// backend depends on: the journal fingerprint is a function of (kind,
// seed, spec) only, so nothing about how the campaign executes — worker
// count, backend, timeouts — can invalidate a journal.
func TestFingerprintBackendInvariant(t *testing.T) {
	spec := CorrectionSpec{Lines: 40, Probs: []float64{0.5, 0.25}}
	base := Fingerprint("soak", 42, spec)

	// Identical inputs, identical fingerprint — regardless of any
	// execution configuration, which simply isn't an input.
	if got := Fingerprint("soak", 42, CorrectionSpec{Lines: 40, Probs: []float64{0.5, 0.25}}); got != base {
		t.Errorf("same campaign, different fingerprint: %q vs %q", got, base)
	}

	// Kind, seed, and spec each perturb it.
	if got := Fingerprint("sweep", 42, spec); got == base {
		t.Error("kind change did not change the fingerprint")
	}
	if got := Fingerprint("soak", 43, spec); got == base {
		t.Error("seed change did not change the fingerprint")
	}
	if got := Fingerprint("soak", 42, CorrectionSpec{Lines: 41, Probs: []float64{0.5, 0.25}}); got == base {
		t.Error("spec change did not change the fingerprint")
	}

	// The rendered form carries the kind and seed in the clear (journal
	// headers are read by humans mid-incident).
	if !strings.HasPrefix(base, "soak seed=42 spec=") {
		t.Errorf("fingerprint format drifted: %q", base)
	}
}

// TestFingerprintGolden pins the exact rendering: a drift here
// invalidates every journal on disk, which must be a deliberate act.
func TestFingerprintGolden(t *testing.T) {
	got := Fingerprint("gold", 7, struct {
		A int    `json:"a"`
		B string `json:"b"`
	}{1, "x"})
	const want = "gold seed=7 spec=ecf9e98ec0641e23113ff3ce"
	if got != want {
		t.Errorf("Fingerprint = %q, want %q", got, want)
	}
}

func TestJobsPerSecEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		m    Metrics
		want float64
	}{
		{"normal", Metrics{Executed: 10, Elapsed: 2 * time.Second}, 5},
		{"zero executed", Metrics{Executed: 0, Elapsed: time.Second}, 0},
		{"zero elapsed", Metrics{Executed: 10, Elapsed: 0}, 0},
		{"negative elapsed", Metrics{Executed: 10, Elapsed: -time.Second}, 0},
		// The replay case: every job came from the journal, nothing
		// executed, near-zero elapsed — the old code divided ~0 by ~0.
		{"all replayed", Metrics{Executed: 0, FromJournal: 100, Elapsed: time.Microsecond}, 0},
	}
	for _, c := range cases {
		got := c.m.JobsPerSec()
		if math.IsNaN(got) || math.IsInf(got, 0) {
			t.Errorf("%s: JobsPerSec = %v (non-finite)", c.name, got)
			continue
		}
		if got != c.want {
			t.Errorf("%s: JobsPerSec = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEtaString(t *testing.T) {
	cases := []struct {
		name      string
		remaining int64
		rate      float64
		want      string
	}{
		{"done", 0, 5, "0s"},
		{"overshot", -3, 5, "0s"},
		{"zero rate", 10, 0, "?"},
		{"negative rate", 10, -1, "?"},
		{"nan rate", 10, math.NaN(), "?"},
		// A vanishing rate used to overflow the float64->Duration
		// conversion into a negative ETA.
		{"vanishing rate", 1 << 40, 1e-18, "?"},
		{"normal", 10, 5, "2s"},
		{"subsecond", 1, 8, "0s"},
	}
	for _, c := range cases {
		if got := etaString(c.remaining, c.rate); got != c.want {
			t.Errorf("%s: etaString(%d, %v) = %q, want %q", c.name, c.remaining, c.rate, got, c.want)
		}
	}
}
