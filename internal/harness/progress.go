package harness

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// counters is the shared live state between workers and the reporter.
type counters struct {
	executed    atomic.Int64 // jobs run to success in this process
	failed      atomic.Int64
	retried     atomic.Int64 // individual re-attempts
	fromJournal atomic.Int64

	mu    sync.Mutex
	jrErr error
}

func (c *counters) journalErr(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jrErr == nil {
		c.jrErr = err
	}
}

func (c *counters) takeJournalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jrErr
}

// reporter periodically writes a progress line to Options.Progress.
type reporter struct {
	quit chan struct{}
	done chan struct{}
}

// startReporter launches the progress goroutine; with a nil Progress
// writer it returns an inert reporter.
func startReporter(opts Options, total int, c *counters) *reporter {
	r := &reporter{quit: make(chan struct{}), done: make(chan struct{})}
	if opts.Progress == nil {
		close(r.done)
		return r
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	start := time.Now()
	go func() {
		defer close(r.done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-r.quit:
				return
			case <-tick.C:
				executed := c.executed.Load()
				failed := c.failed.Load()
				retried := c.retried.Load()
				journaled := c.fromJournal.Load()
				finished := executed + failed + journaled
				elapsed := time.Since(start)
				rate := 0.0
				if elapsed > 0 {
					rate = float64(executed) / elapsed.Seconds()
				}
				eta := "?"
				if remaining := int64(total) - finished; remaining <= 0 {
					eta = "0s"
				} else if rate > 0 {
					eta = (time.Duration(float64(remaining)/rate*float64(time.Second))).Round(time.Second).String()
				}
				fmt.Fprintf(opts.Progress,
					"harness: %d/%d done (%d from journal), %d failed, %d retried, %.2f jobs/s, ETA %s\n",
					finished, total, journaled, failed, retried, rate, eta)
			}
		}
	}()
	return r
}

// stop terminates the reporter and waits for its goroutine to exit, so no
// progress line can interleave with the final summary.
func (r *reporter) stop() {
	select {
	case <-r.done:
		return
	default:
	}
	close(r.quit)
	<-r.done
}
