package harness

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// counters is the shared live state between workers and the reporter.
type counters struct {
	executed    atomic.Int64 // jobs run to success in this process
	failed      atomic.Int64
	retried     atomic.Int64 // individual re-attempts
	fromJournal atomic.Int64

	quarantined        atomic.Int64 // poison jobs that exhausted every attempt
	priorFailures      atomic.Int64 // jobs with journaled failure history
	journalQuarantined atomic.Int64 // corrupt journal records rejected on load
	journalBytes       atomic.Int64 // checkpoint bytes appended this process
	backoffs           atomic.Int64 // retry backoff sleeps
	backoffNanos       atomic.Int64 // total backoff time

	mu    sync.Mutex
	jrErr error
}

func (c *counters) journalErr(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jrErr == nil {
		c.jrErr = err
	}
}

func (c *counters) takeJournalErr() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.jrErr
}

// LiveStatus exposes a running campaign's counters for external polling:
// the CLIs publish a Snapshot over the -debug-addr expvar endpoint. Attach
// one via Options.LiveStatus; before Run starts (or with none attached) the
// snapshot is all zeros. Safe for concurrent use.
type LiveStatus struct {
	mu    sync.Mutex
	total int
	c     *counters
}

// StatusSnapshot is one point-in-time view of campaign progress.
type StatusSnapshot struct {
	Total       int   `json:"total"`
	Executed    int64 `json:"executed"`
	Failed      int64 `json:"failed"`
	Retried     int64 `json:"retried"`
	FromJournal int64 `json:"from_journal"`
	// Durability counters (journal v2 + chaos hardening).
	Quarantined        int64 `json:"quarantined"`
	PriorFailures      int64 `json:"prior_failures"`
	JournalQuarantined int64 `json:"journal_quarantined"`
	JournalBytes       int64 `json:"journal_bytes"`
	Backoffs           int64 `json:"backoffs"`
	BackoffMS          int64 `json:"backoff_ms"`
}

// attach binds the status to a campaign's live counters.
func (ls *LiveStatus) attach(total int, c *counters) {
	if ls == nil {
		return
	}
	ls.mu.Lock()
	ls.total, ls.c = total, c
	ls.mu.Unlock()
}

// Snapshot returns the current progress numbers.
func (ls *LiveStatus) Snapshot() StatusSnapshot {
	if ls == nil {
		return StatusSnapshot{}
	}
	ls.mu.Lock()
	total, c := ls.total, ls.c
	ls.mu.Unlock()
	if c == nil {
		return StatusSnapshot{}
	}
	return StatusSnapshot{
		Total:              total,
		Executed:           c.executed.Load(),
		Failed:             c.failed.Load(),
		Retried:            c.retried.Load(),
		FromJournal:        c.fromJournal.Load(),
		Quarantined:        c.quarantined.Load(),
		PriorFailures:      c.priorFailures.Load(),
		JournalQuarantined: c.journalQuarantined.Load(),
		JournalBytes:       c.journalBytes.Load(),
		Backoffs:           c.backoffs.Load(),
		BackoffMS:          c.backoffNanos.Load() / int64(time.Millisecond),
	}
}

// reporter periodically writes a progress line to Options.Progress.
type reporter struct {
	quit chan struct{}
	done chan struct{}
}

// startReporter launches the progress goroutine; with a nil Progress
// writer it returns an inert reporter.
func startReporter(opts Options, total int, c *counters) *reporter {
	r := &reporter{quit: make(chan struct{}), done: make(chan struct{})}
	if opts.Progress == nil {
		close(r.done)
		return r
	}
	every := opts.ProgressEvery
	if every <= 0 {
		every = 2 * time.Second
	}
	start := time.Now()
	go func() {
		defer close(r.done)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-r.quit:
				return
			case <-tick.C:
				executed := c.executed.Load()
				failed := c.failed.Load()
				retried := c.retried.Load()
				journaled := c.fromJournal.Load()
				finished := executed + failed + journaled
				elapsed := time.Since(start)
				rate := 0.0
				if elapsed > 0 {
					rate = float64(executed) / elapsed.Seconds()
				}
				eta := etaString(int64(total)-finished, rate)
				fmt.Fprintf(opts.Progress,
					"harness: %d/%d done (%d from journal), %d failed, %d retried, %.2f jobs/s, ETA %s\n",
					finished, total, journaled, failed, retried, rate, eta)
			}
		}
	}()
	return r
}

// maxETA caps the ETA the reporter will print: past a year the number is
// noise, and the float64->Duration conversion below would overflow into a
// negative duration anyway.
const maxETA = 365 * 24 * time.Hour

// etaString renders the time left at the current executed-job rate.
// Replayed jobs are already excluded from rate by the caller, so a
// resume that restored everything reports "0s" (remaining <= 0) rather
// than an ETA extrapolated from work it never did. A zero, non-finite, or
// vanishing rate yields "?" instead of a divide-by-zero Inf or an
// int64-overflowed negative duration.
func etaString(remaining int64, rate float64) string {
	if remaining <= 0 {
		return "0s"
	}
	if math.IsNaN(rate) || rate <= 0 {
		return "?"
	}
	secs := float64(remaining) / rate
	if math.IsNaN(secs) || secs > maxETA.Seconds() {
		return "?"
	}
	return time.Duration(secs * float64(time.Second)).Round(time.Second).String()
}

// stop terminates the reporter and waits for its goroutine to exit, so no
// progress line can interleave with the final summary.
func (r *reporter) stop() {
	select {
	case <-r.done:
		return
	default:
	}
	close(r.quit)
	<-r.done
}
