package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// intJob builds a trivial job returning v.
func intJob(key string, v int) Job[int] {
	return Job[int]{Key: key, Run: func(context.Context) (int, error) { return v, nil }}
}

func TestRunCollectsResultsInJobOrder(t *testing.T) {
	var jobs []Job[int]
	for i := 0; i < 20; i++ {
		jobs = append(jobs, intJob(fmt.Sprintf("job-%02d", i), i*i))
	}
	rep, err := Run(context.Background(), jobs, Options{Workers: 7})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rep.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
	if rep.Metrics.Executed != 20 || rep.Metrics.Failed != 0 {
		t.Fatalf("metrics = %+v", rep.Metrics)
	}
}

func TestRunRejectsInvalidJobs(t *testing.T) {
	if _, err := Run(context.Background(), []Job[int]{intJob("a", 1), intJob("a", 2)}, Options{}); err == nil {
		t.Error("duplicate key accepted")
	}
	if _, err := Run(context.Background(), []Job[int]{intJob("", 1)}, Options{}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := Run(context.Background(), []Job[int]{{Key: "x"}}, Options{}); err == nil {
		t.Error("nil Run accepted")
	}
}

func TestRetryOnPanic(t *testing.T) {
	var attempts atomic.Int64
	job := Job[int]{
		Key: "panicky",
		Run: func(context.Context) (int, error) {
			if attempts.Add(1) < 3 {
				panic("transient fault")
			}
			return 7, nil
		},
	}
	rep, err := Run(context.Background(), []Job[int]{job}, Options{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Err != nil || o.Result != 7 {
		t.Fatalf("outcome = %+v", o)
	}
	if o.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", o.Attempts)
	}
	if rep.Metrics.Retried != 2 {
		t.Errorf("retried = %d, want 2", rep.Metrics.Retried)
	}
}

func TestPanicExhaustsRetries(t *testing.T) {
	job := Job[int]{
		Key: "always-panics",
		Run: func(context.Context) (int, error) { panic("permanent fault") },
	}
	rep, err := Run(context.Background(), []Job[int]{job}, Options{Retries: 1})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Err == nil || !strings.Contains(o.Err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic error", o.Err)
	}
	if o.Attempts != 2 {
		t.Errorf("attempts = %d, want 2", o.Attempts)
	}
	if rep.Err() == nil {
		t.Error("Report.Err() = nil for failed campaign")
	}
	if _, err := rep.Results(); err == nil {
		t.Error("Results() succeeded for failed campaign")
	}
}

func TestPerJobTimeout(t *testing.T) {
	slow := Job[int]{
		Key: "ctx-aware",
		Run: func(ctx context.Context) (int, error) {
			select {
			case <-time.After(5 * time.Second):
				return 1, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		},
	}
	// A job that never checks its context must still be timed out
	// (abandoned) by the harness.
	stubborn := Job[int]{
		Key: "ctx-ignoring",
		Run: func(context.Context) (int, error) {
			time.Sleep(300 * time.Millisecond)
			return 2, nil
		},
	}
	rep, err := Run(context.Background(), []Job[int]{slow, stubborn},
		Options{Workers: 2, Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range rep.Outcomes {
		if o.Err == nil {
			t.Errorf("%s: expected timeout, got success", o.Key)
		} else if !errors.Is(o.Err, context.DeadlineExceeded) {
			t.Errorf("%s: err = %v, want deadline exceeded", o.Key, o.Err)
		}
	}
	if rep.Metrics.Failed != 2 {
		t.Errorf("failed = %d, want 2", rep.Metrics.Failed)
	}
}

func TestResumeFromJournal(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	var executions atomic.Int64
	mkJobs := func(n int, failFrom int) []Job[int] {
		var jobs []Job[int]
		for i := 0; i < n; i++ {
			i := i
			jobs = append(jobs, Job[int]{
				Key: fmt.Sprintf("job-%02d", i),
				Run: func(context.Context) (int, error) {
					executions.Add(1)
					if failFrom >= 0 && i >= failFrom {
						return 0, errors.New("simulated crash")
					}
					return 100 + i, nil
				},
			})
		}
		return jobs
	}

	// First run: jobs 4.. fail (standing in for an interrupted campaign);
	// only the three successes are checkpointed.
	opts := Options{Workers: 2, JournalPath: journal, Fingerprint: "spec-v1"}
	rep, err := Run(context.Background(), mkJobs(6, 3), opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.Executed != 3 || rep.Metrics.Failed != 3 {
		t.Fatalf("first run metrics = %+v", rep.Metrics)
	}

	// Second run resumes: the three journaled jobs are restored without
	// re-executing, the rest run (and now succeed).
	executions.Store(0)
	rep, err = Run(context.Background(), mkJobs(6, -1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := executions.Load(); got != 3 {
		t.Errorf("second run executed %d jobs, want 3", got)
	}
	if rep.Metrics.FromJournal != 3 || rep.Metrics.Executed != 3 {
		t.Errorf("second run metrics = %+v", rep.Metrics)
	}
	res, err := rep.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != 100+i {
			t.Errorf("result %d = %d, want %d", i, v, 100+i)
		}
		if (i < 3) != rep.Outcomes[i].FromJournal {
			t.Errorf("job %d FromJournal = %v", i, rep.Outcomes[i].FromJournal)
		}
	}

	// Third run: everything is journaled; nothing executes.
	executions.Store(0)
	rep, err = Run(context.Background(), mkJobs(6, -1), opts)
	if err != nil {
		t.Fatal(err)
	}
	if executions.Load() != 0 || rep.Metrics.FromJournal != 6 {
		t.Errorf("third run executed %d, metrics %+v", executions.Load(), rep.Metrics)
	}
}

func TestJournalToleratesTornTrailingLine(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	opts := Options{JournalPath: journal}
	if _, err := Run(context.Background(), []Job[int]{intJob("a", 1), intJob("b", 2)}, opts); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-append: a torn, half-written JSON line.
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":"c","resu`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	var ran atomic.Int64
	jobs := []Job[int]{intJob("a", 1), intJob("b", 2),
		{Key: "c", Run: func(context.Context) (int, error) { ran.Add(1); return 3, nil }}}
	rep, err := Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.FromJournal != 2 || ran.Load() != 1 {
		t.Errorf("metrics = %+v, c ran %d times", rep.Metrics, ran.Load())
	}
}

func TestJournalFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "campaign.jsonl")
	if _, err := Run(context.Background(), []Job[int]{intJob("a", 1)},
		Options{JournalPath: journal, Fingerprint: "spec-v1"}); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(), []Job[int]{intJob("a", 1)},
		Options{JournalPath: journal, Fingerprint: "spec-v2"})
	if err == nil || !strings.Contains(err.Error(), "different campaign") {
		t.Fatalf("err = %v, want fingerprint mismatch", err)
	}
}

func TestContextCancellationStopsCampaign(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	var jobs []Job[int]
	for i := 0; i < 50; i++ {
		jobs = append(jobs, Job[int]{
			Key: fmt.Sprintf("job-%02d", i),
			Run: func(ctx context.Context) (int, error) {
				if started.Add(1) == 2 {
					cancel()
				}
				<-ctx.Done()
				return 0, ctx.Err()
			},
		})
	}
	rep, err := Run(ctx, jobs, Options{Workers: 2})
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || started.Load() >= 50 {
		t.Errorf("cancellation did not stop the feed (started %d)", started.Load())
	}
}

func TestProgressReporterEmitsLines(t *testing.T) {
	var buf bytes.Buffer
	var jobs []Job[int]
	for i := 0; i < 8; i++ {
		i := i
		jobs = append(jobs, Job[int]{
			Key: fmt.Sprintf("job-%d", i),
			Run: func(context.Context) (int, error) {
				time.Sleep(5 * time.Millisecond)
				return i, nil
			},
		})
	}
	_, err := Run(context.Background(), jobs, Options{
		Workers: 2, Progress: &buf, ProgressEvery: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "jobs/s") || !strings.Contains(out, "ETA") {
		t.Errorf("progress output missing rate/ETA:\n%s", out)
	}
	if !strings.Contains(out, "harness: done: 8 executed") {
		t.Errorf("missing final summary:\n%s", out)
	}
}

func TestDeriveSeedIsStableAndSpread(t *testing.T) {
	a := DeriveSeed(42, "slowdown/mcf/mac10")
	if b := DeriveSeed(42, "slowdown/mcf/mac10"); a != b {
		t.Error("DeriveSeed not deterministic")
	}
	if a == DeriveSeed(43, "slowdown/mcf/mac10") {
		t.Error("campaign seed ignored")
	}
	if a == DeriveSeed(42, "slowdown/lbm/mac10") {
		t.Error("job key ignored")
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 1000; i++ {
		seen[DeriveSeed(42, fmt.Sprintf("k%d", i))] = true
	}
	if len(seen) != 1000 {
		t.Errorf("collisions in 1000 derived seeds: %d distinct", len(seen))
	}
}
