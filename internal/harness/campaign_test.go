package harness

import (
	"bytes"
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"ptguard/internal/attack"
	"ptguard/internal/sim"
)

// smallSlowdown is a fast Fig. 6-shaped campaign over the three smallest
// footprints.
var smallSlowdown = SlowdownSpec{
	Workloads:    []string{"exchange2", "povray", "leela"},
	Warmup:       500,
	Instructions: 1500,
}

func renderSlowdown(t *testing.T, rep *Report[SlowdownResult]) []byte {
	t.Helper()
	results, err := rep.Results()
	if err != nil {
		t.Fatal(err)
	}
	tables, err := SlowdownTables(results, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	for _, tbl := range tables {
		if err := tbl.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestCampaignWorkerCountDeterminism is the headline determinism
// regression: the same campaign seed must produce byte-identical
// aggregated reports with 1 worker and with 8, because per-job seeds are
// derived from (campaign seed, job key) and results aggregate in job
// order.
func TestCampaignWorkerCountDeterminism(t *testing.T) {
	run := func(workers int) (*Report[SlowdownResult], []byte) {
		jobs, err := smallSlowdown.Jobs(42)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return rep, renderSlowdown(t, rep)
	}
	repSerial, tableSerial := run(1)
	repParallel, tableParallel := run(8)

	serialResults, _ := repSerial.Results()
	parallelResults, _ := repParallel.Results()
	if !reflect.DeepEqual(serialResults, parallelResults) {
		t.Error("1-worker and 8-worker campaign results differ")
	}
	if !bytes.Equal(tableSerial, tableParallel) {
		t.Errorf("rendered reports differ:\n--- serial ---\n%s\n--- parallel ---\n%s",
			tableSerial, tableParallel)
	}
}

// TestCampaignJournalRoundTripDeterminism checks that results restored
// from the JSONL journal render the byte-identical report: the checkpoint
// must be lossless.
func TestCampaignJournalRoundTripDeterminism(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	jobs, err := smallSlowdown.Jobs(42)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Workers: 4, JournalPath: journal}
	rep1, err := Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	jobs2, _ := smallSlowdown.Jobs(42)
	rep2, err := Run(context.Background(), jobs2, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Metrics.FromJournal != len(jobs2) || rep2.Metrics.Executed != 0 {
		t.Fatalf("resume metrics = %+v, want all from journal", rep2.Metrics)
	}
	if a, b := renderSlowdown(t, rep1), renderSlowdown(t, rep2); !bytes.Equal(a, b) {
		t.Errorf("journaled report differs from live report:\n--- live ---\n%s\n--- journal ---\n%s", a, b)
	}
}

func TestSlowdownSpecRejectsUnknownWorkload(t *testing.T) {
	if _, err := (SlowdownSpec{Workloads: []string{"nonesuch"}}).Jobs(1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestMulticoreSpecJobsAndMixes(t *testing.T) {
	spec := MulticoreSpec{SameMixes: 2, MixMixes: 3}
	mixesA := spec.Mixes(7)
	mixesB := spec.Mixes(7)
	if !reflect.DeepEqual(mixesA, mixesB) {
		t.Error("mix expansion not deterministic")
	}
	if len(mixesA) != 5 {
		t.Fatalf("got %d mixes, want 5", len(mixesA))
	}
	jobs, err := spec.Jobs(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 5 {
		t.Fatalf("got %d jobs, want 5", len(jobs))
	}
	if _, err := (MulticoreSpec{Model: "bogus"}).Jobs(7); err == nil {
		t.Error("bogus contention model accepted")
	}
}

func TestAblationTablesAggregation(t *testing.T) {
	spec := AblationSpec{}
	jobs, err := spec.Jobs(9)
	if err != nil {
		t.Fatal(err)
	}
	// 5 strategies + 5 soft-k points + 3 widths.
	if len(jobs) != 13 {
		t.Fatalf("got %d ablation jobs, want 13", len(jobs))
	}
	// Aggregate fabricated results (no sims) to check table shape.
	var results []AblationResult
	fake := attack.CorrectionResult{Erroneous: 10, Corrected: 9, Detected: 1}
	for _, label := range []string{"full §VI-D algorithm", "without flip-and-check"} {
		results = append(results, AblationResult{Kind: AblationStrategy, Label: label, Correction: fake})
	}
	results = append(results,
		AblationResult{Kind: AblationSoftK, Label: "k=4", SoftK: 4, Correction: fake},
		AblationResult{Kind: AblationWidth, Label: "96-bit", TagBits: 96, Correction: fake})
	tables, err := AblationTables(results, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 3 {
		t.Fatalf("got %d tables, want 3", len(tables))
	}
	if len(tables[0].Rows) != 2 || len(tables[1].Rows) != 1 || len(tables[2].Rows) != 1 {
		t.Errorf("row split = %d/%d/%d, want 2/1/1",
			len(tables[0].Rows), len(tables[1].Rows), len(tables[2].Rows))
	}
	if _, err := AblationTables([]AblationResult{{Kind: "mystery"}}, spec); err == nil {
		t.Error("unknown ablation kind accepted")
	}
}

func TestCorrectionSpecDefaultsToFig9Probs(t *testing.T) {
	jobs, err := CorrectionSpec{}.Jobs(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(attack.Fig9FlipProbs) {
		t.Fatalf("got %d jobs, want %d", len(jobs), len(attack.Fig9FlipProbs))
	}
	tbl, err := CorrectionTable([]CorrectionPoint{
		{FlipProb: 1.0 / 512, Result: attack.CorrectionResult{Erroneous: 5, Corrected: 5}},
	}, CorrectionSpec{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 9", "corrected %", "100.00%"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("correction table missing %q:\n%s", want, buf.String())
		}
	}
}

func TestMulticoreTableSummaryRows(t *testing.T) {
	tbl, err := MulticoreTable([]sim.MulticoreResult{
		{Mix: "a-SAME", SlowdownPct: 1.5},
		{Mix: "MIX-01", SlowdownPct: 3.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"AVERAGE", "2.50%", "WORST (MIX-01)", "3.50%"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("multicore table missing %q:\n%s", want, out)
		}
	}
	if _, err := MulticoreTable(nil); err == nil {
		t.Error("empty result set accepted")
	}
}
