package harness

import (
	"context"
	"strings"
	"testing"

	"ptguard/internal/attack"
)

func TestVirtSpecJobsExpansion(t *testing.T) {
	spec := VirtSpec{Tenants: []int{2, 4}, Trials: 2}
	jobs, err := spec.Jobs(7)
	if err != nil {
		t.Fatal(err)
	}
	// 2 tenant counts × 2 targets × 4 placements × 2 trials.
	if want := 2 * 2 * 4 * 2; len(jobs) != want {
		t.Fatalf("expanded %d jobs, want %d", len(jobs), want)
	}
	seen := make(map[string]bool)
	for _, j := range jobs {
		if seen[j.Key] {
			t.Fatalf("duplicate job key %q", j.Key)
		}
		seen[j.Key] = true
		if !strings.HasPrefix(j.Key, "vm/t") {
			t.Fatalf("job key %q lacks the vm/ prefix", j.Key)
		}
	}
}

func TestVirtSpecValidation(t *testing.T) {
	if _, err := (VirtSpec{Tenants: []int{1}}).Jobs(1); err == nil {
		t.Fatal("accepted a 1-tenant sweep")
	}
	if _, err := (VirtSpec{Placements: []string{"ept"}}).Jobs(1); err == nil {
		t.Fatal("accepted an unknown placement")
	}
	if _, err := (VirtSpec{Targets: []string{"hypervisor"}}).Jobs(1); err == nil {
		t.Fatal("accepted an unknown target")
	}
}

func TestVirtCampaignEndToEnd(t *testing.T) {
	spec := VirtSpec{
		Tenants:    []int{3},
		Placements: []string{"none", "both"},
		Trials:     1,
		PagesPerVM: 4,
		Acts:       4096,
	}
	jobs, err := spec.Jobs(11)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), jobs, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	results, err := rep.Results()
	if err != nil {
		t.Fatal(err)
	}
	tables, err := VirtTables(results, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("got %d tables, want 1", len(tables))
	}
	// 1 tenant count × 2 targets × 2 placements.
	if got := len(tables[0].Rows); got != 4 {
		t.Fatalf("matrix has %d rows, want 4", got)
	}
	if !strings.Contains(tables[0].Title, "Inter-VM") {
		t.Fatalf("matrix title %q lacks Inter-VM", tables[0].Title)
	}
}

// TestVirtCampaignWorkerInvariance pins the acceptance criterion: the same
// seed produces identical results at any worker count.
func TestVirtCampaignWorkerInvariance(t *testing.T) {
	spec := VirtSpec{
		Tenants:    []int{2},
		Placements: []string{"guest"},
		Targets:    []string{attack.VMTargetGuest},
		Trials:     3,
		PagesPerVM: 4,
		Acts:       4096,
	}
	run := func(workers int) []attack.VMTrialResult {
		jobs, err := spec.Jobs(5)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		results, err := rep.Results()
		if err != nil {
			t.Fatal(err)
		}
		return results
	}
	a, b := run(1), run(4)
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs across worker counts:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
