package harness

import (
	"context"
	"errors"
	"fmt"

	"ptguard/internal/attack"
	"ptguard/internal/mac"
	"ptguard/internal/obs"
	"ptguard/internal/report"
	"ptguard/internal/sim"
	"ptguard/internal/stats"
	"ptguard/internal/workload"
)

// This file maps the paper's evaluation campaigns (Fig. 6/7 slowdowns,
// §VII-C multicore mixes, the Table-V-style ablations, and the Fig. 9
// correction sweep) onto harness jobs, and aggregates the job results back
// into report tables. Every job seeds its simulation with
// DeriveSeed(campaignSeed, jobKey), which is what makes a parallel run
// byte-identical to a serial one.

// DeriveSeed maps (campaign seed, job key) to the job's simulation seed: a
// pure function, so results never depend on worker count or scheduling
// order. It is stats.DeriveSeed, re-exported here because the job keys of
// every journal on disk were derived through this name.
func DeriveSeed(campaignSeed uint64, key string) uint64 {
	return stats.DeriveSeed(campaignSeed, key)
}

// ObsSpec turns on per-job observability for a campaign: each job's runs
// collect metrics, periodic time-series snapshots, and (optionally) trace
// events, all embedded in the job result so the checkpoint journal carries
// them. A nil *ObsSpec disables observability entirely.
type ObsSpec struct {
	// SnapshotEvery is the retired-instruction cadence of time-series
	// snapshots (trials for fault campaigns); 0 records only the run-final
	// snapshot.
	SnapshotEvery int
	// TraceCapacity bounds each run's event ring; 0 selects the default,
	// negative disables tracing.
	TraceCapacity int
	// IncludeTrace copies each run's traced events into the job result
	// (and therefore into the journal — mind the size on large campaigns).
	IncludeTrace bool
}

// options maps the spec onto obs.Options; nil stays nil (disabled).
func (o *ObsSpec) options() *obs.Options {
	if o == nil {
		return nil
	}
	return &obs.Options{TraceCapacity: o.TraceCapacity, SnapshotEvery: o.SnapshotEvery}
}

// strip drops the trace payload unless the spec asked for it.
func (o *ObsSpec) strip(rm *obs.RunMetrics) *obs.RunMetrics {
	if rm != nil && (o == nil || !o.IncludeTrace) {
		rm.Trace, rm.Dropped = nil, 0
	}
	return rm
}

// ---------------------------------------------------------------------------
// Fig. 6/7: per-workload slowdown grid.

// SlowdownSpec declares the Fig. 6/7 campaign: workloads × MAC latencies,
// each comparing the requested modes against the baseline.
type SlowdownSpec struct {
	// Workloads filters the benchmark set; empty selects all 25.
	Workloads []string
	// Modes are the protection modes; empty selects PTGuard and
	// PTGuardOptimized.
	Modes []sim.Mode
	// Warmup and Instructions parameterise each run; zero selects the
	// Fig. 6 defaults (200k / 400k).
	Warmup       int
	Instructions int
	// MACLatencies is the Fig. 7 sweep; empty selects {10}.
	MACLatencies []int
	// Obs, when set, collects per-mode metrics/series/trace in each job
	// result.
	Obs *ObsSpec
}

// SlowdownResult is one grid point: a workload's cross-mode comparison at
// one MAC latency. Obs, when the campaign ran with an ObsSpec, carries the
// per-mode observability data keyed by mode name.
type SlowdownResult struct {
	MACLatency int                        `json:"mac_latency"`
	Comparison sim.Comparison             `json:"comparison"`
	Obs        map[string]*obs.RunMetrics `json:"obs,omitempty"`
}

func (s SlowdownSpec) withDefaults() SlowdownSpec {
	if len(s.Modes) == 0 {
		s.Modes = []sim.Mode{sim.PTGuard, sim.PTGuardOptimized}
	}
	if s.Warmup == 0 {
		s.Warmup = 200_000
	}
	if s.Instructions == 0 {
		s.Instructions = 400_000
	}
	if len(s.MACLatencies) == 0 {
		s.MACLatencies = []int{10}
	}
	return s
}

// Jobs expands the spec into one job per (MAC latency, workload).
func (s SlowdownSpec) Jobs(campaignSeed uint64) ([]Job[SlowdownResult], error) {
	s = s.withDefaults()
	profs := workload.Profiles()
	if len(s.Workloads) > 0 {
		sel := make([]workload.Profile, 0, len(s.Workloads))
		for _, name := range s.Workloads {
			p, err := workload.ProfileByName(name)
			if err != nil {
				return nil, err
			}
			sel = append(sel, p)
		}
		profs = sel
	}
	var jobs []Job[SlowdownResult]
	for _, lat := range s.MACLatencies {
		for _, prof := range profs {
			prof, lat := prof, lat
			key := fmt.Sprintf("slowdown/%s/mac%d", prof.Name, lat)
			seed := DeriveSeed(campaignSeed, key)
			jobs = append(jobs, Job[SlowdownResult]{
				Key: key,
				Run: func(context.Context) (SlowdownResult, error) {
					cmp, met, err := sim.CompareObserved(prof, s.Warmup, s.Instructions, seed, lat, s.Modes, s.Obs.options())
					res := SlowdownResult{MACLatency: lat, Comparison: cmp}
					if met != nil {
						res.Obs = make(map[string]*obs.RunMetrics, len(met))
						for m, rm := range met {
							res.Obs[m.String()] = s.Obs.strip(rm)
						}
					}
					return res, err
				},
			})
		}
	}
	return jobs, nil
}

// SlowdownTables aggregates grid results into one Fig. 6-style table per
// MAC latency (several latencies form the Fig. 7 sweep), each with the
// AMEAN / GMEAN-IPC / WORST summary rows.
func SlowdownTables(results []SlowdownResult, modes []sim.Mode) ([]*report.Table, error) {
	if len(modes) == 0 {
		modes = []sim.Mode{sim.PTGuard, sim.PTGuardOptimized}
	}
	var order []int
	byLat := make(map[int][]sim.Comparison)
	for _, r := range results {
		if _, ok := byLat[r.MACLatency]; !ok {
			order = append(order, r.MACLatency)
		}
		byLat[r.MACLatency] = append(byLat[r.MACLatency], r.Comparison)
	}
	headers := []string{"workload", "suite", "LLC MPKI"}
	for _, m := range modes {
		headers = append(headers, m.String()+" slowdown")
	}
	var tables []*report.Table
	for _, lat := range order {
		cmps := byLat[lat]
		tbl := report.New(
			fmt.Sprintf("Fig. 6 — PT-Guard slowdown vs unprotected baseline (MAC latency %d cycles)", lat),
			headers...)
		for _, cmp := range cmps {
			row := []string{cmp.Workload, suiteOf(cmp.Workload), report.F(cmp.LLCMPKI, 1)}
			for _, m := range modes {
				row = append(row, report.Pct(cmp.SlowdownPct[m]))
			}
			tbl.AddRow(row...)
		}
		sums := make(map[sim.Mode]sim.SuiteSummary, len(modes))
		for _, m := range modes {
			sum, err := sim.Summarize(cmps, m)
			if err != nil {
				return nil, err
			}
			sums[m] = sum
		}
		amean := []string{"AMEAN", "", ""}
		gmean := []string{"GMEAN IPC", "", ""}
		worst := []string{"WORST", "", sums[modes[0]].WorstName}
		for _, m := range modes {
			amean = append(amean, report.Pct(sums[m].MeanPct))
			gmean = append(gmean, report.F(sums[m].GeoMeanIPC, 4))
			worst = append(worst, report.Pct(sums[m].WorstPct))
		}
		tbl.AddRow(amean...)
		tbl.AddRow(gmean...)
		tbl.AddRow(worst...)
		tables = append(tables, tbl)
	}
	return tables, nil
}

func suiteOf(name string) string {
	if p, err := workload.ProfileByName(name); err == nil {
		return p.Suite
	}
	return ""
}

// ---------------------------------------------------------------------------
// §VII-C: multicore mixes.

// MulticoreSpec declares the §VII-C campaign: SAME mixes (four copies of
// one benchmark) and MIX mixes (four random distinct benchmarks).
type MulticoreSpec struct {
	// SameMixes and MixMixes count the two mix families (paper: 18 / 16).
	SameMixes int
	MixMixes  int
	// Warmup and Instructions are per core; zero selects 100k / 200k.
	Warmup       int
	Instructions int
	// MACLatency is the PT-Guard check latency; zero selects 10.
	MACLatency int
	// Model selects the contention model: "shared" (default; one DRAM
	// device, real row-buffer interference) or "analytic" (constant
	// queueing delay).
	Model string
}

func (s MulticoreSpec) withDefaults() MulticoreSpec {
	if s.Warmup == 0 {
		s.Warmup = 100_000
	}
	if s.Instructions == 0 {
		s.Instructions = 200_000
	}
	if s.MACLatency == 0 {
		s.MACLatency = 10
	}
	if s.Model == "" {
		s.Model = "shared"
	}
	return s
}

// Mixes expands the mix list deterministically from the campaign seed
// (MIX membership is drawn from an RNG seeded by it).
func (s MulticoreSpec) Mixes(campaignSeed uint64) []sim.MulticoreMix {
	s = s.withDefaults()
	profiles := workload.Profiles()
	r := stats.NewRNG(campaignSeed)
	var mixes []sim.MulticoreMix
	for i := 0; i < s.SameMixes && i < len(profiles); i++ {
		p := profiles[i]
		mixes = append(mixes, sim.MulticoreMix{
			Name:      p.Name + "-SAME",
			Workloads: []workload.Profile{p, p, p, p},
		})
	}
	for i := 0; i < s.MixMixes; i++ {
		perm := r.Perm(len(profiles))
		mixes = append(mixes, sim.MulticoreMix{
			Name: fmt.Sprintf("MIX-%02d", i+1),
			Workloads: []workload.Profile{
				profiles[perm[0]], profiles[perm[1]], profiles[perm[2]], profiles[perm[3]],
			},
		})
	}
	return mixes
}

// Jobs expands the spec into one job per mix.
func (s MulticoreSpec) Jobs(campaignSeed uint64) ([]Job[sim.MulticoreResult], error) {
	s = s.withDefaults()
	compare := sim.CompareMulticoreShared
	switch s.Model {
	case "shared":
	case "analytic":
		compare = sim.CompareMulticore
	default:
		return nil, fmt.Errorf("harness: unknown multicore model %q", s.Model)
	}
	var jobs []Job[sim.MulticoreResult]
	for _, mix := range s.Mixes(campaignSeed) {
		mix := mix
		key := "multicore/" + mix.Name
		seed := DeriveSeed(campaignSeed, key)
		jobs = append(jobs, Job[sim.MulticoreResult]{
			Key: key,
			Run: func(context.Context) (sim.MulticoreResult, error) {
				return compare(mix, s.Warmup, s.Instructions, seed, s.MACLatency)
			},
		})
	}
	return jobs, nil
}

// MulticoreTable aggregates mix results with AVERAGE and WORST rows.
func MulticoreTable(results []sim.MulticoreResult) (*report.Table, error) {
	if len(results) == 0 {
		return nil, errors.New("harness: no multicore results")
	}
	tbl := report.New("§VII-C — 4-core slowdown (O3 cores, contended channel)",
		"mix", "slowdown")
	slowdowns := make([]float64, 0, len(results))
	worst, worstName := results[0].SlowdownPct, results[0].Mix
	for _, r := range results {
		slowdowns = append(slowdowns, r.SlowdownPct)
		if r.SlowdownPct > worst {
			worst, worstName = r.SlowdownPct, r.Mix
		}
		tbl.AddRow(r.Mix, report.Pct(r.SlowdownPct))
	}
	mean, err := stats.Mean(slowdowns)
	if err != nil {
		return nil, err
	}
	tbl.AddRow("AVERAGE", report.Pct(mean))
	tbl.AddRow("WORST ("+worstName+")", report.Pct(worst))
	return tbl, nil
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5 / §VII-A) and the Fig. 9 correction sweep.

// AblationSpec declares the three ablation grids: guess-strategy
// contributions, the soft-match budget k, and the MAC width design point.
type AblationSpec struct {
	// Lines is the number of faulty lines per configuration; zero
	// selects 400.
	Lines int
	// FlipProb is the per-bit flip probability; zero selects 1/128.
	FlipProb float64
	// SoftKs is the soft-match budget sweep; empty selects {1,2,4,6,8}.
	SoftKs []int
	// Widths is the MAC width sweep; empty selects {64,80,96}.
	Widths []int
}

// Ablation result kinds.
const (
	AblationStrategy = "strategy"
	AblationSoftK    = "soft-k"
	AblationWidth    = "width"
)

// AblationResult is one ablation grid point.
type AblationResult struct {
	Kind       string                  `json:"kind"`
	Label      string                  `json:"label"`
	SoftK      int                     `json:"soft_k,omitempty"`
	TagBits    int                     `json:"tag_bits,omitempty"`
	Correction attack.CorrectionResult `json:"correction"`
}

// strategyAblations lists the §VI-D guess strategies toggled off one at a
// time (DESIGN.md §5.5).
var strategyAblations = []struct {
	name   string
	mutate func(*attack.CorrectionConfig)
}{
	{name: "full §VI-D algorithm", mutate: func(*attack.CorrectionConfig) {}},
	{name: "without flip-and-check", mutate: func(c *attack.CorrectionConfig) { c.DisableFlipAndCheck = true }},
	{name: "without zero-PTE reset", mutate: func(c *attack.CorrectionConfig) { c.DisableZeroReset = true }},
	{name: "without flag majority vote", mutate: func(c *attack.CorrectionConfig) { c.DisableFlagVote = true }},
	{name: "without PFN contiguity", mutate: func(c *attack.CorrectionConfig) { c.DisableContiguity = true }},
}

func (s AblationSpec) withDefaults() AblationSpec {
	if s.Lines == 0 {
		s.Lines = 400
	}
	if s.FlipProb == 0 {
		s.FlipProb = 1.0 / 128
	}
	if len(s.SoftKs) == 0 {
		s.SoftKs = []int{1, 2, 4, 6, 8}
	}
	if len(s.Widths) == 0 {
		s.Widths = []int{64, 80, 96}
	}
	return s
}

// Jobs expands the spec into one job per ablation configuration.
func (s AblationSpec) Jobs(campaignSeed uint64) ([]Job[AblationResult], error) {
	s = s.withDefaults()
	var jobs []Job[AblationResult]
	add := func(key string, res AblationResult, mutate func(*attack.CorrectionConfig)) {
		seed := DeriveSeed(campaignSeed, key)
		jobs = append(jobs, Job[AblationResult]{
			Key: key,
			Run: func(context.Context) (AblationResult, error) {
				cfg := attack.CorrectionConfig{FlipProb: s.FlipProb, Lines: s.Lines, Seed: seed}
				mutate(&cfg)
				r, err := attack.RunCorrection(cfg)
				res.Correction = r
				return res, err
			},
		})
	}
	for _, tc := range strategyAblations {
		tc := tc
		add("ablation/strategy/"+tc.name,
			AblationResult{Kind: AblationStrategy, Label: tc.name}, tc.mutate)
	}
	for _, k := range s.SoftKs {
		k := k
		add(fmt.Sprintf("ablation/soft-k/%d", k),
			AblationResult{Kind: AblationSoftK, Label: fmt.Sprintf("k=%d", k), SoftK: k},
			func(c *attack.CorrectionConfig) { c.SoftMatchK = k })
	}
	for _, w := range s.Widths {
		w := w
		add(fmt.Sprintf("ablation/width/%d", w),
			AblationResult{Kind: AblationWidth, Label: fmt.Sprintf("%d-bit", w), TagBits: w},
			func(c *attack.CorrectionConfig) { c.TagBits = w })
	}
	return jobs, nil
}

// AblationTables aggregates ablation results into the three tables of
// cmd/ptguard-ablation: strategy contributions, the k trade-off (with the
// analytic security column), and the MAC-width design point.
func AblationTables(results []AblationResult, spec AblationSpec) ([]*report.Table, error) {
	spec = spec.withDefaults()
	steps := report.New(
		fmt.Sprintf("Correction guess strategies (p=%.5f, %d lines)", spec.FlipProb, spec.Lines),
		"configuration", "corrected %", "coverage %")
	kTbl := report.New("Soft-match budget k trade-off",
		"k", "corrected %", "effective MAC bits", "attack years")
	wTbl := report.New("MAC width design point (§VII-A)",
		"width", "corrected %", "effective MAC bits (k=4)")
	for _, r := range results {
		switch r.Kind {
		case AblationStrategy:
			steps.AddRow(r.Label, report.Pct(r.Correction.CorrectedPct()), report.Pct(r.Correction.CoveragePct()))
		case AblationSoftK:
			nEff, err := mac.EffectiveMACBits(96, r.SoftK, mac.GMaxPaper)
			if err != nil {
				return nil, err
			}
			kTbl.AddRow(report.I(r.SoftK), report.Pct(r.Correction.CorrectedPct()),
				report.F(nEff, 1), fmt.Sprintf("%.3g", mac.AttackYears(nEff, 50)))
		case AblationWidth:
			nEff, err := mac.EffectiveMACBits(r.TagBits, 4, mac.GMaxPaper)
			if err != nil {
				return nil, err
			}
			wTbl.AddRow(r.Label, report.Pct(r.Correction.CorrectedPct()), report.F(nEff, 1))
		default:
			return nil, fmt.Errorf("harness: unknown ablation kind %q", r.Kind)
		}
	}
	return []*report.Table{steps, kTbl, wTbl}, nil
}

// CorrectionSpec declares the Fig. 9 sweep: correction rate vs per-bit
// flip probability over the synthesised page-table population.
type CorrectionSpec struct {
	// Lines is the number of faulty lines per probability; zero selects
	// 400.
	Lines int
	// Probs is the probability sweep; empty selects attack.Fig9FlipProbs.
	Probs []float64
}

// CorrectionPoint is one Fig. 9 sweep point.
type CorrectionPoint struct {
	FlipProb float64                 `json:"flip_prob"`
	Result   attack.CorrectionResult `json:"result"`
}

func (s CorrectionSpec) withDefaults() CorrectionSpec {
	if s.Lines == 0 {
		s.Lines = 400
	}
	if len(s.Probs) == 0 {
		s.Probs = append([]float64(nil), attack.Fig9FlipProbs...)
	}
	return s
}

// Jobs expands the spec into one job per flip probability.
func (s CorrectionSpec) Jobs(campaignSeed uint64) ([]Job[CorrectionPoint], error) {
	s = s.withDefaults()
	var jobs []Job[CorrectionPoint]
	for _, p := range s.Probs {
		p := p
		key := fmt.Sprintf("correction/p=%g", p)
		seed := DeriveSeed(campaignSeed, key)
		jobs = append(jobs, Job[CorrectionPoint]{
			Key: key,
			Run: func(context.Context) (CorrectionPoint, error) {
				r, err := attack.RunCorrection(attack.CorrectionConfig{
					FlipProb: p, Lines: s.Lines, Seed: seed,
				})
				return CorrectionPoint{FlipProb: p, Result: r}, err
			},
		})
	}
	return jobs, nil
}

// CorrectionTable aggregates the Fig. 9 sweep.
func CorrectionTable(results []CorrectionPoint, spec CorrectionSpec) (*report.Table, error) {
	spec = spec.withDefaults()
	tbl := report.New(
		fmt.Sprintf("Fig. 9 — correction vs per-bit flip probability (%d lines)", spec.Lines),
		"p", "erroneous", "corrected %", "coverage %", "miscorrected")
	for _, r := range results {
		tbl.AddRow(fmt.Sprintf("%.5f", r.FlipProb), report.I(r.Result.Erroneous),
			report.Pct(r.Result.CorrectedPct()), report.Pct(r.Result.CoveragePct()),
			report.I(r.Result.Miscorrected))
	}
	return tbl, nil
}
