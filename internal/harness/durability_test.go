package harness

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ptguard/internal/chaos"
)

// mustChaos parses a chaos spec or fails the test.
func mustChaos(t *testing.T, spec string, seed uint64) *chaos.Injector {
	t.Helper()
	in, err := chaos.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestJournalV1BackwardCompat(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	// A v1 journal as PR-1 harnesses wrote it: plain JSONL, no CRC frames.
	v1 := `{"journal":"ptguard-harness","version":1,"fingerprint":"spec-v1"}
{"key":"a","result":101,"attempts":1,"elapsed_ms":1}
{"key":"b","result":102,"attempts":2,"elapsed_ms":2}
`
	if err := os.WriteFile(journal, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	jobs := []Job[int]{
		intJob("a", 101), intJob("b", 102),
		{Key: "c", Run: func(context.Context) (int, error) { ran.Add(1); return 103, nil }},
	}
	opts := Options{JournalPath: journal, Fingerprint: "spec-v1"}
	rep, err := Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.FromJournal != 2 || ran.Load() != 1 {
		t.Fatalf("metrics = %+v, c ran %d times", rep.Metrics, ran.Load())
	}
	res, err := rep.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{101, 102, 103} {
		if res[i] != want {
			t.Errorf("result %d = %d, want %d", i, res[i], want)
		}
	}
	// Opening a v1 journal compacts it to v2: CRC-framed records and a
	// version-2 header, rewritten atomically.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(data, []byte(`"version":2`)) {
		t.Errorf("journal not upgraded to v2:\n%s", data)
	}
	if !bytes.Contains(data, []byte(`"crc"`)) {
		t.Errorf("compacted journal lacks CRC frames:\n%s", data)
	}
}

func TestJournalQuarantinesCorruptMidFileRecord(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	opts := Options{Workers: 1, JournalPath: journal}
	jobs := []Job[int]{intJob("a", 1), intJob("b", 2), intJob("c", 3)}
	if _, err := Run(context.Background(), jobs, opts); err != nil {
		t.Fatal(err)
	}

	// Flip one byte inside the middle record (line 3: header, a, b, c).
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.Split(data, []byte("\n"))
	mid := lines[2]
	i := bytes.Index(mid, []byte(`"key":"b"`))
	if i < 0 {
		t.Fatalf("line layout unexpected: %s", mid)
	}
	mid[i+len(`"key":"`)] ^= 0x01 // "b" -> some other key byte
	if err := os.WriteFile(journal, bytes.Join(lines, []byte("\n")), 0o644); err != nil {
		t.Fatal(err)
	}

	var reran atomic.Int64
	jobs = []Job[int]{intJob("a", 1),
		{Key: "b", Run: func(context.Context) (int, error) { reran.Add(1); return 2, nil }},
		intJob("c", 3)}
	var progress bytes.Buffer
	opts.Progress = &progress
	rep, err := Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	// The corrupted record is quarantined — reported, and its job re-run —
	// while the intact records still satisfy the resume.
	if rep.Metrics.FromJournal != 2 || reran.Load() != 1 {
		t.Fatalf("metrics = %+v, b re-ran %d times", rep.Metrics, reran.Load())
	}
	if rep.Metrics.JournalQuarantined != 1 || len(rep.Quarantined) != 1 {
		t.Fatalf("quarantine not reported: metrics=%+v records=%v", rep.Metrics, rep.Quarantined)
	}
	q := rep.Quarantined[0]
	if q.Line != 3 || !strings.Contains(q.Reason, "CRC mismatch") {
		t.Errorf("quarantine record = %+v", q)
	}
	if !strings.Contains(progress.String(), "quarantined corrupt record") {
		t.Errorf("quarantine not surfaced in progress output:\n%s", progress.String())
	}
	if _, err := rep.Results(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalHandlesOversizedRecords(t *testing.T) {
	// A >16MB record aborted resume under the old bufio.Scanner line cap
	// with an opaque "token too long"; the streaming loader must take it.
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	big := strings.Repeat("x", 17<<20)
	opts := Options{JournalPath: journal}
	jobs := []Job[string]{{Key: "big", Run: func(context.Context) (string, error) { return big, nil }}}
	if _, err := Run(context.Background(), jobs, opts); err != nil {
		t.Fatal(err)
	}
	var ran atomic.Int64
	jobs = []Job[string]{{Key: "big", Run: func(context.Context) (string, error) { ran.Add(1); return big, nil }}}
	rep, err := Run(context.Background(), jobs, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.FromJournal != 1 || ran.Load() != 0 {
		t.Fatalf("oversized record not resumed: metrics=%+v ran=%d", rep.Metrics, ran.Load())
	}
	if rep.Outcomes[0].Result != big {
		t.Error("oversized result mismatch after resume")
	}
}

func TestFailureHistorySurvivesResume(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	opts := Options{JournalPath: journal, Retries: 1}
	fail := true
	mkJobs := func() []Job[int] {
		return []Job[int]{intJob("ok", 1), {
			Key: "flaky",
			Run: func(context.Context) (int, error) {
				if fail {
					return 0, errors.New("transient dependency down")
				}
				return 2, nil
			},
		}}
	}

	// First run: flaky exhausts its attempts and is quarantined; its
	// attempt count and final error are journaled.
	rep, err := Run(context.Background(), mkJobs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[1]
	if !o.Quarantined || o.Attempts != 2 {
		t.Fatalf("first-run outcome = %+v", o)
	}
	if rep.Metrics.Quarantined != 1 {
		t.Fatalf("metrics = %+v", rep.Metrics)
	}

	// Second run: flaky now succeeds, and the resumed campaign surfaces
	// the journaled failure history instead of losing it.
	fail = false
	rep, err = Run(context.Background(), mkJobs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	o = rep.Outcomes[1]
	if o.Err != nil || o.Result != 2 {
		t.Fatalf("second-run outcome = %+v", o)
	}
	if o.PriorAttempts != 2 || !strings.Contains(o.PriorError, "transient dependency down") {
		t.Errorf("failure history lost: PriorAttempts=%d PriorError=%q", o.PriorAttempts, o.PriorError)
	}
	if rep.Metrics.PriorFailures != 1 {
		t.Errorf("metrics = %+v", rep.Metrics)
	}

	// Third run: both journaled; history still surfaced on the restored
	// outcome.
	rep, err = Run(context.Background(), mkJobs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	o = rep.Outcomes[1]
	if !o.FromJournal || o.PriorAttempts != 2 {
		t.Errorf("third-run outcome = %+v", o)
	}
}

func TestBackoffDelayIsDeterministicAndBounded(t *testing.T) {
	opts := Options{Backoff: 10 * time.Millisecond, BackoffMax: 80 * time.Millisecond}
	for attempt := 1; attempt <= 6; attempt++ {
		a := backoffDelay(opts, "job-a", attempt)
		if b := backoffDelay(opts, "job-a", attempt); b != a {
			t.Fatalf("attempt %d: nondeterministic backoff %v vs %v", attempt, a, b)
		}
		base := opts.Backoff << (attempt - 1)
		if base > opts.BackoffMax {
			base = opts.BackoffMax
		}
		if a < base/2 || a >= base+base/2 {
			t.Errorf("attempt %d: delay %v outside [%v, %v)", attempt, a, base/2, base+base/2)
		}
	}
	if backoffDelay(Options{}, "job-a", 1) != 0 {
		t.Error("zero Backoff produced a delay")
	}
	if a, b := backoffDelay(opts, "job-a", 1), backoffDelay(opts, "job-b", 1); a == b {
		t.Error("jitter ignores the job key")
	}
}

func TestRetryBackoffCountersAndSleep(t *testing.T) {
	var attempts atomic.Int64
	job := Job[int]{Key: "flappy", Run: func(context.Context) (int, error) {
		if attempts.Add(1) < 3 {
			return 0, errors.New("flap")
		}
		return 9, nil
	}}
	start := time.Now()
	rep, err := Run(context.Background(), []Job[int]{job},
		Options{Retries: 2, Backoff: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Outcomes[0].Err != nil || rep.Outcomes[0].Result != 9 {
		t.Fatalf("outcome = %+v", rep.Outcomes[0])
	}
	if rep.Metrics.Backoffs != 2 || rep.Metrics.BackoffTotal <= 0 {
		t.Errorf("metrics = %+v", rep.Metrics)
	}
	// Two backoffs of >= 10ms (20ms halved by worst-case jitter) each.
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("campaign finished in %v; backoff did not sleep", elapsed)
	}
}

func TestBackoffSleepAbortsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job := Job[int]{Key: "doomed", Run: func(context.Context) (int, error) {
		cancel()
		return 0, errors.New("fails, then campaign is gone")
	}}
	start := time.Now()
	rep, err := Run(ctx, []Job[int]{job}, Options{Retries: 3, Backoff: 10 * time.Second})
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("backoff ignored cancellation (took %v)", elapsed)
	}
	if o := rep.Outcomes[0]; o.Quarantined {
		t.Errorf("cancellation-aborted job marked poison: %+v", o)
	}
}

func TestDrainGraceJournalsInFlightCompletion(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The job ignores its context (common for tight simulation loops) and
	// finishes shortly after the campaign is cancelled mid-flight.
	job := Job[int]{Key: "inflight", Run: func(context.Context) (int, error) {
		cancel()
		time.Sleep(50 * time.Millisecond)
		return 11, nil
	}}
	opts := Options{JournalPath: journal, DrainGrace: 2 * time.Second}
	rep, err := Run(ctx, []Job[int]{job}, opts)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want campaign interrupted", err)
	}
	if o := rep.Outcomes[0]; o.Err != nil || o.Result != 11 {
		t.Fatalf("drained outcome = %+v", o)
	}

	// The drained completion was journaled: a resume restores it.
	var ran atomic.Int64
	job2 := Job[int]{Key: "inflight", Run: func(context.Context) (int, error) { ran.Add(1); return 11, nil }}
	rep, err = Run(context.Background(), []Job[int]{job2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.FromJournal != 1 || ran.Load() != 0 {
		t.Fatalf("drain completion lost: metrics=%+v ran=%d", rep.Metrics, ran.Load())
	}
}

func TestNoDrainGraceAbandonsInFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	job := Job[int]{Key: "inflight", Run: func(context.Context) (int, error) {
		cancel()
		time.Sleep(50 * time.Millisecond)
		return 11, nil
	}}
	rep, err := Run(ctx, []Job[int]{job}, Options{})
	if err == nil {
		t.Fatal("cancelled campaign returned nil error")
	}
	if o := rep.Outcomes[0]; o.Err == nil {
		t.Fatalf("in-flight job not abandoned without grace: %+v", o)
	}
}

func TestChaosWorkerPanicIsRecoveredAndRetried(t *testing.T) {
	inj := mustChaos(t, "worker.panic:after=1", 1)
	rep, err := Run(context.Background(), []Job[int]{intJob("a", 5)},
		Options{Retries: 1, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Err != nil || o.Result != 5 || o.Attempts != 2 {
		t.Fatalf("outcome = %+v", o)
	}
	if rep.Metrics.Retried != 1 {
		t.Errorf("metrics = %+v", rep.Metrics)
	}
	if inj.Injected()[chaos.WorkerPanic] != 1 {
		t.Errorf("injections = %v", inj.Injected())
	}
}

func TestChaosJobHangHitsTimeoutAndRetries(t *testing.T) {
	inj := mustChaos(t, "job.hang:after=1", 1)
	rep, err := Run(context.Background(), []Job[int]{intJob("a", 5)},
		Options{Retries: 1, Timeout: 50 * time.Millisecond, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	o := rep.Outcomes[0]
	if o.Err != nil || o.Result != 5 || o.Attempts != 2 {
		t.Fatalf("outcome = %+v", o)
	}
}

func TestChaosJournalWriteFailureIsReportedNotFatal(t *testing.T) {
	for _, spec := range []string{"journal.write:after=2", "disk.full:after=2", "journal.fsync:after=2"} {
		t.Run(spec, func(t *testing.T) {
			journal := filepath.Join(t.TempDir(), "campaign.jsonl")
			inj := mustChaos(t, spec, 1)
			// Write 1 is the header; the fault lands on the first record.
			rep, err := Run(context.Background(),
				[]Job[int]{intJob("a", 1)},
				Options{Workers: 1, JournalPath: journal, Chaos: inj})
			if err == nil || !strings.Contains(err.Error(), "journal write failed") {
				t.Fatalf("err = %v, want journal write failure", err)
			}
			// The campaign still produced its full report in memory.
			if o := rep.Outcomes[0]; o.Err != nil || o.Result != 1 {
				t.Fatalf("outcome = %+v", o)
			}
			if inj.InjectedTotal() == 0 {
				t.Error("no fault fired")
			}
		})
	}
}

func TestChaosShortWriteThenCrashResumesExactly(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	jobs := func(execs *atomic.Int64) []Job[int] {
		var out []Job[int]
		for i := 0; i < 5; i++ {
			i := i
			out = append(out, Job[int]{
				Key: fmt.Sprintf("job-%d", i),
				Run: func(context.Context) (int, error) {
					if execs != nil {
						execs.Add(1)
					}
					return 100 + i, nil
				},
			})
		}
		return out
	}

	// Torn write on the 4th journal write (header + jobs 0,1, then half of
	// job 2's record), followed by a "crash" — stubbed to keep the test
	// process alive; the harness then sees a journal error and finishes.
	inj := mustChaos(t, "journal.short-write:after=4", 1)
	inj.SetExit(func(int) {})
	_, err := Run(context.Background(), jobs(nil),
		Options{Workers: 1, JournalPath: journal, Chaos: inj})
	if err == nil {
		t.Fatal("short-write run reported no journal error")
	}

	// Resume without chaos: the torn tail is shed, intact records are
	// reused, the rest re-run, and the merged results are exact.
	var execs atomic.Int64
	rep, err := Run(context.Background(), jobs(&execs), Options{Workers: 1, JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rep.Results()
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res {
		if v != 100+i {
			t.Errorf("result %d = %d, want %d", i, v, 100+i)
		}
	}
	if rep.Metrics.FromJournal == 0 || execs.Load() == int64(len(res)) {
		t.Errorf("resume reused nothing: metrics=%+v execs=%d", rep.Metrics, execs.Load())
	}
}

func TestChaosProcKillFiresAfterCheckpoint(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	inj := mustChaos(t, "proc.kill:after=2", 1)
	var code atomic.Int64
	code.Store(-1)
	inj.SetExit(func(c int) { code.Store(int64(c)) })
	rep, err := Run(context.Background(),
		[]Job[int]{intJob("a", 1), intJob("b", 2), intJob("c", 3)},
		Options{Workers: 1, JournalPath: journal, Chaos: inj})
	if err != nil {
		t.Fatal(err)
	}
	if code.Load() != chaos.KillExitCode {
		t.Fatalf("kill exit code = %d, want %d", code.Load(), chaos.KillExitCode)
	}
	// With the exit stubbed out the campaign runs to completion; the kill
	// fired after the second job's checkpoint landed.
	if rep.Metrics.Executed != 3 {
		t.Errorf("metrics = %+v", rep.Metrics)
	}
}

func TestJournalBytesCounter(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "campaign.jsonl")
	rep, err := Run(context.Background(), []Job[int]{intJob("a", 1), intJob("b", 2)},
		Options{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(journal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Metrics.JournalBytes != fi.Size() {
		t.Errorf("JournalBytes = %d, file size = %d", rep.Metrics.JournalBytes, fi.Size())
	}
}
