package harness

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

// smallMitigateSpec keeps trials cheap: low activation counts still cross
// the scaled flip threshold many times.
func smallMitigateSpec() MitigateSpec {
	return MitigateSpec{
		Mitigations: []string{"none", "trr", "graphene"},
		Patterns:    []string{"classic", "many-sided"},
		Trials:      1,
		Acts:        4096,
	}
}

func TestMitigateSpecValidation(t *testing.T) {
	bad := smallMitigateSpec()
	bad.Mitigations = []string{"bogus"}
	if _, err := bad.Jobs(1); err == nil {
		t.Error("unknown mitigation accepted")
	}
	bad = smallMitigateSpec()
	bad.Patterns = []string{"bogus"}
	if _, err := bad.Jobs(1); err == nil {
		t.Error("unknown pattern accepted")
	}
	bad = smallMitigateSpec()
	bad.Guard = []string{"maybe"}
	if _, err := bad.Jobs(1); err == nil {
		t.Error("unknown guard mode accepted")
	}
}

func TestMitigateCampaignDeterministicAcrossWorkers(t *testing.T) {
	spec := smallMitigateSpec()
	run := func(workers int) []string {
		jobs, err := spec.Jobs(99)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Run(context.Background(), jobs, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		results, err := rep.Results()
		if err != nil {
			t.Fatal(err)
		}
		tables, err := MitigateTables(results, spec)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := tables[0].RenderCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return strings.Split(sb.String(), "\n")
	}
	serial := run(1)
	parallel := run(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("matrix diverged across worker counts:\n1 worker:  %v\n4 workers: %v", serial, parallel)
	}
}

// TestMitigateMatrixSemantics pins the campaign-level story on one small
// matrix: unmitigated classic hammering corrupts PTEs silently when
// unprotected and is detected when protected; the TRR sampler stops
// classic but loses to many-sided.
func TestMitigateMatrixSemantics(t *testing.T) {
	spec := smallMitigateSpec()
	jobs, err := spec.Jobs(7)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(), jobs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := rep.Results()
	if err != nil {
		t.Fatal(err)
	}
	type cell struct{ flips, detected, silent int }
	matrix := make(map[string]cell)
	for _, r := range results {
		guard := GuardOff
		if r.Protected {
			guard = GuardOn
		}
		key := r.Mitigation + "/" + r.Pattern + "/" + guard
		c := matrix[key]
		c.flips += r.RowsFlipped
		c.detected += r.Detected
		c.silent += r.Silent
		matrix[key] = c
	}

	if c := matrix["none/classic/off"]; c.flips == 0 || c.silent == 0 {
		t.Errorf("unmitigated unprotected classic should corrupt silently: %+v", c)
	}
	if c := matrix["none/classic/on"]; c.detected == 0 || c.silent != 0 {
		t.Errorf("PT-Guard should detect unmitigated classic corruption: %+v", c)
	}
	if c := matrix["trr/classic/off"]; c.flips != 0 {
		t.Errorf("TRR should stop classic double-sided: %+v", c)
	}
	if c := matrix["trr/many-sided/off"]; c.flips == 0 {
		t.Errorf("many-sided should defeat the TRR sampler: %+v", c)
	}
}
