package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// buildJournal serialises a canonical v2 journal with n integer-result
// entries (job-i -> i*i+7) and returns its bytes. It uses the same frame
// writer as the live append path.
func buildJournal(t testing.TB, fingerprint string, n int) []byte {
	t.Helper()
	st := &journalState{
		completed: make(map[string]journalEntry),
		failures:  make(map[string]journalEntry),
		version:   journalVersion,
	}
	for i := 0; i < n; i++ {
		st.add(journalEntry{
			Key:      fmt.Sprintf("job-%d", i),
			Result:   json.RawMessage(strconv.Itoa(i*i + 7)),
			Attempts: 1,
		})
	}
	var buf bytes.Buffer
	if err := writeCompacted(&buf, fingerprint, st); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzJournalLoad feeds arbitrary bytes to the journal loader. Properties:
// it never panics, never errors except on a fingerprint mismatch, never
// accepts a journal whose header names a different campaign, and its
// surviving state round-trips exactly through an atomic compaction.
func FuzzJournalLoad(f *testing.F) {
	f.Add([]byte(nil))
	f.Add(buildJournal(f, "fp", 3))
	f.Add([]byte(`{"journal":"ptguard-harness","version":1,"fingerprint":"fp"}` + "\n" +
		`{"key":"a","result":1,"attempts":1,"elapsed_ms":0.5}` + "\n"))
	f.Add([]byte(`{"journal":"ptguard-harness","version":2,"fingerprint":"other"}` + "\n"))
	f.Add([]byte(`{"crc":"00000000","e":{"key":"a","result":1}}` + "\n"))
	f.Add([]byte("{\"key\":\"torn\",\"resu"))
	f.Add([]byte("\n\n\r\n{not json}\n" + strings.Repeat("x", 4096)))
	f.Fuzz(func(t *testing.T, data []byte) {
		const fp = "fuzz-fingerprint"
		st, err := loadJournal(bytes.NewReader(data), fp)
		if err != nil {
			// The only allowed hard failure on in-memory bytes is the
			// fingerprint mismatch; everything else must degrade to
			// quarantine or torn-tail handling.
			if !strings.Contains(err.Error(), "different campaign") {
				t.Fatalf("unexpected hard error: %v", err)
			}
			return
		}
		// Never accept a journal that declares a different campaign.
		if first, _, _ := bytes.Cut(data, []byte("\n")); len(first) > 0 {
			var h journalHeader
			if jerr := json.Unmarshal(first, &h); jerr == nil &&
				h.Magic == journalMagic && h.Fingerprint != "" && h.Fingerprint != fp {
				t.Fatalf("accepted journal with foreign fingerprint %q", h.Fingerprint)
			}
		}
		for key := range st.completed {
			if key == "" {
				t.Fatal("accepted record with empty key")
			}
		}
		// Compaction round-trip: rewriting the surviving state and loading
		// it back must reproduce it exactly and come back clean.
		var buf bytes.Buffer
		if err := writeCompacted(&buf, fp, st); err != nil {
			t.Fatalf("compact: %v", err)
		}
		st2, err := loadJournal(&buf, fp)
		if err != nil {
			t.Fatalf("reload after compaction: %v", err)
		}
		if st2.dirty() {
			t.Fatalf("compacted journal still dirty: %d quarantined, version %d, %d legacy, torn=%v",
				len(st2.quarantined), st2.version, st2.legacy, st2.tornTail)
		}
		if len(st2.completed) != len(st.completed) || len(st2.failures) != len(st.failures) {
			t.Fatalf("round-trip changed state: %d/%d completed, %d/%d failures",
				len(st2.completed), len(st.completed), len(st2.failures), len(st.failures))
		}
		for key, e := range st.completed {
			e2, ok := st2.completed[key]
			if !ok || !bytes.Equal(e.Result, e2.Result) {
				t.Fatalf("round-trip lost or changed %q", key)
			}
		}
	})
}

// FuzzJournalCorruption flips one byte anywhere in a valid v2 journal and
// asserts the CRC framing holds the line: every record the loader accepts
// decodes to exactly the value the original run produced — a corrupted
// record is quarantined or dropped, never silently accepted with wrong
// content.
func FuzzJournalCorruption(f *testing.F) {
	f.Add(uint8(3), uint32(40), byte(0x01))
	f.Add(uint8(5), uint32(0), byte(0xFF))
	f.Add(uint8(2), uint32(7), byte(0x20))
	f.Fuzz(func(t *testing.T, n uint8, off uint32, xor byte) {
		if xor == 0 {
			return // no-op flip
		}
		entries := int(n%6) + 2
		data := buildJournal(t, "fp", entries)
		pos := int(off) % len(data)
		data[pos] ^= xor
		st, err := loadJournal(bytes.NewReader(data), "fp")
		if err != nil {
			// Only a (corrupted-into-)foreign fingerprint may hard-fail.
			if !strings.Contains(err.Error(), "different campaign") {
				t.Fatalf("unexpected hard error: %v", err)
			}
			return
		}
		for key, e := range st.completed {
			var i int
			if !strings.HasPrefix(key, "job-") {
				t.Fatalf("accepted invented key %q", key)
			}
			if _, serr := fmt.Sscanf(key, "job-%d", &i); serr != nil || i < 0 || i >= entries {
				t.Fatalf("accepted invented key %q", key)
			}
			var got int
			if derr := e.decode(&got); derr != nil {
				t.Fatalf("accepted undecodable record %q: %v", key, derr)
			}
			if want := i*i + 7; got != want {
				t.Fatalf("CRC framing failed: %q = %d, want %d (flip at %d ^ %#x)",
					key, got, want, pos, xor)
			}
		}
	})
}
