package harness

import (
	"context"
	"errors"
	"fmt"

	"ptguard/internal/attack"
	"ptguard/internal/dram"
	"ptguard/internal/mitigate"
	"ptguard/internal/report"
)

// ---------------------------------------------------------------------------
// Mitigation head-to-head campaign: mitigation × attack pattern × PT-Guard.

// Guard modes for the mitigation matrix.
const (
	GuardOff = "off"
	GuardOn  = "on"
)

// MitigateSpec declares the head-to-head campaign: every mitigation plugin
// crossed with every attack pattern, with PT-Guard off and on, each cell
// run Trials times under derived seeds.
type MitigateSpec struct {
	// Mitigations are mitigate registry names; empty selects the whole
	// registry.
	Mitigations []string
	// Patterns are dram attack-pattern names; empty selects all.
	Patterns []string
	// Guard selects "off" and/or "on"; empty selects both.
	Guard []string
	// Trials is the number of trials per cell; zero selects 3.
	Trials int
	// Correction enables the §VI correction engine on protected trials.
	Correction bool
	// Threshold, Sampler, TableSize, Acts, WindowActs, BudgetPerWindow
	// pass through to attack.RunMitigationTrial (zero keeps its scaled
	// defaults; Budget stays disabled unless BudgetPerWindow > 0).
	Threshold       int
	Sampler         int
	TableSize       int
	Acts            int
	WindowActs      int
	BudgetPerWindow int
}

func (s MitigateSpec) withDefaults() MitigateSpec {
	if len(s.Mitigations) == 0 {
		s.Mitigations = mitigate.Names()
	}
	if len(s.Patterns) == 0 {
		s.Patterns = dram.PatternNames()
	}
	if len(s.Guard) == 0 {
		s.Guard = []string{GuardOff, GuardOn}
	}
	if s.Trials == 0 {
		s.Trials = 3
	}
	return s
}

// validate resolves every name through its registry so a typo fails the
// campaign before any job runs.
func (s MitigateSpec) validate() error {
	for _, m := range s.Mitigations {
		if _, err := mitigate.New(m, mitigate.Config{Banks: 1, RowsPerBank: 2, Threshold: 2}); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
	}
	for _, p := range s.Patterns {
		if _, err := dram.PatternByName(p); err != nil {
			return fmt.Errorf("harness: %w", err)
		}
	}
	for _, g := range s.Guard {
		if g != GuardOff && g != GuardOn {
			return fmt.Errorf("harness: unknown guard mode %q (want %s or %s)", g, GuardOff, GuardOn)
		}
	}
	return nil
}

// Jobs expands the spec into one job per (mitigation, pattern, guard,
// trial). Every job's seed derives from the campaign seed and the job key,
// so the matrix is byte-identical at any worker count.
func (s MitigateSpec) Jobs(campaignSeed uint64) ([]Job[attack.MitigationTrialResult], error) {
	s = s.withDefaults()
	if err := s.validate(); err != nil {
		return nil, err
	}
	var jobs []Job[attack.MitigationTrialResult]
	for _, m := range s.Mitigations {
		for _, p := range s.Patterns {
			for _, g := range s.Guard {
				for trial := 0; trial < s.Trials; trial++ {
					m, p, protected := m, p, g == GuardOn
					key := fmt.Sprintf("mitigate/%s/%s/%s/%d", m, p, g, trial)
					seed := DeriveSeed(campaignSeed, key)
					jobs = append(jobs, Job[attack.MitigationTrialResult]{
						Key: key,
						Run: func(context.Context) (attack.MitigationTrialResult, error) {
							return attack.RunMitigationTrial(attack.MitigationTrialConfig{
								Mitigation:      m,
								Pattern:         p,
								Protected:       protected,
								Correction:      protected && s.Correction,
								Seed:            seed,
								Threshold:       s.Threshold,
								Sampler:         s.Sampler,
								TableSize:       s.TableSize,
								Acts:            s.Acts,
								WindowActs:      s.WindowActs,
								BudgetPerWindow: s.BudgetPerWindow,
							})
						},
					})
				}
			}
		}
	}
	return jobs, nil
}

// mitigateCell aggregates one matrix cell's trials.
type mitigateCell struct {
	res     attack.MitigationTrialResult
	trials  int
	flips   int
	walks   int
	detect  int
	fault   int
	silent  int
	refresh uint64
	dropped uint64
	starved uint64
}

// MitigateTables aggregates trial results into the head-to-head matrix:
// one row per (mitigation, pattern, guard) with trial-summed outcome
// counts, the defense verdict, and the mitigation cost columns.
func MitigateTables(results []attack.MitigationTrialResult, spec MitigateSpec) ([]*report.Table, error) {
	if len(results) == 0 {
		return nil, errors.New("harness: no mitigation trial results")
	}
	spec = spec.withDefaults()
	cells := make(map[string]*mitigateCell)
	var order []string
	for _, r := range results {
		guard := GuardOff
		if r.Protected {
			guard = GuardOn
		}
		key := r.Mitigation + "/" + r.Pattern + "/" + guard
		c := cells[key]
		if c == nil {
			c = &mitigateCell{res: r}
			cells[key] = c
			order = append(order, key)
		}
		c.trials++
		c.flips += r.RowsFlipped
		c.walks += r.WalksChecked
		c.detect += r.Detected
		c.fault += r.Faulted
		c.silent += r.Silent
		c.refresh += r.Stats.RefreshesIssued
		c.dropped += r.Stats.RefreshesDropped
		c.starved += r.Stats.Budget.StarvedWindows
	}

	matrix := report.New(
		fmt.Sprintf("Mitigation head-to-head — %d trials per cell, %d victim pages walked per trial",
			spec.Trials, attack.VictimPages),
		"mitigation", "pattern", "guard", "trials", "row flips",
		"detected", "faulted", "silent", "coverage %", "verdict",
		"refreshes", "dropped", "starved wins")
	for _, key := range order {
		c := cells[key]
		coverage := 100.0
		if bad := c.detect + c.silent; bad > 0 {
			coverage = 100 * float64(c.detect) / float64(bad)
		}
		verdict := "defended"
		switch {
		case c.silent > 0:
			verdict = "DEFEATED"
		case c.fault > 0:
			verdict = "crashed"
		case c.flips == 0:
			verdict = "no flips"
		}
		guard := GuardOff
		if c.res.Protected {
			guard = GuardOn
		}
		matrix.AddRow(c.res.Mitigation, c.res.Pattern, guard,
			report.I(c.trials), report.I(c.flips),
			report.I(c.detect), report.I(c.fault), report.I(c.silent),
			report.Pct(coverage), verdict,
			report.U(c.refresh), report.U(c.dropped), report.U(c.starved))
	}
	return []*report.Table{matrix}, nil
}
